file(REMOVE_RECURSE
  "CMakeFiles/core_trigger_test.dir/core_trigger_test.cc.o"
  "CMakeFiles/core_trigger_test.dir/core_trigger_test.cc.o.d"
  "core_trigger_test"
  "core_trigger_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_trigger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
