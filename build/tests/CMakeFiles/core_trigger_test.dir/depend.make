# Empty dependencies file for core_trigger_test.
# This may be replaced when dependencies are built.
