# Empty compiler generated dependencies file for sketch_pcsa_test.
# This may be replaced when dependencies are built.
