file(REMOVE_RECURSE
  "CMakeFiles/sketch_pcsa_test.dir/sketch_pcsa_test.cc.o"
  "CMakeFiles/sketch_pcsa_test.dir/sketch_pcsa_test.cc.o.d"
  "sketch_pcsa_test"
  "sketch_pcsa_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_pcsa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
