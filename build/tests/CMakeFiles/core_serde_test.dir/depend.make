# Empty dependencies file for core_serde_test.
# This may be replaced when dependencies are built.
