file(REMOVE_RECURSE
  "CMakeFiles/core_serde_test.dir/core_serde_test.cc.o"
  "CMakeFiles/core_serde_test.dir/core_serde_test.cc.o.d"
  "core_serde_test"
  "core_serde_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_serde_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
