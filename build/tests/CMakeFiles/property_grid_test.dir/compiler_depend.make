# Empty compiler generated dependencies file for property_grid_test.
# This may be replaced when dependencies are built.
