file(REMOVE_RECURSE
  "CMakeFiles/property_grid_test.dir/property_grid_test.cc.o"
  "CMakeFiles/property_grid_test.dir/property_grid_test.cc.o.d"
  "property_grid_test"
  "property_grid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
