file(REMOVE_RECURSE
  "CMakeFiles/core_sliding_test.dir/core_sliding_test.cc.o"
  "CMakeFiles/core_sliding_test.dir/core_sliding_test.cc.o.d"
  "core_sliding_test"
  "core_sliding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_sliding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
