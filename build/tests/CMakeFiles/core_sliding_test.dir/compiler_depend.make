# Empty compiler generated dependencies file for core_sliding_test.
# This may be replaced when dependencies are built.
