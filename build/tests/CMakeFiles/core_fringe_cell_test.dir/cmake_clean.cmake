file(REMOVE_RECURSE
  "CMakeFiles/core_fringe_cell_test.dir/core_fringe_cell_test.cc.o"
  "CMakeFiles/core_fringe_cell_test.dir/core_fringe_cell_test.cc.o.d"
  "core_fringe_cell_test"
  "core_fringe_cell_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_fringe_cell_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
