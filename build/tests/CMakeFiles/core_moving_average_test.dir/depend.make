# Empty dependencies file for core_moving_average_test.
# This may be replaced when dependencies are built.
