# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for core_moving_average_test.
