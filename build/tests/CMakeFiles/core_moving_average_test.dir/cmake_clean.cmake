file(REMOVE_RECURSE
  "CMakeFiles/core_moving_average_test.dir/core_moving_average_test.cc.o"
  "CMakeFiles/core_moving_average_test.dir/core_moving_average_test.cc.o.d"
  "core_moving_average_test"
  "core_moving_average_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_moving_average_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
