# Empty compiler generated dependencies file for datagen_netflow_test.
# This may be replaced when dependencies are built.
