file(REMOVE_RECURSE
  "CMakeFiles/datagen_netflow_test.dir/datagen_netflow_test.cc.o"
  "CMakeFiles/datagen_netflow_test.dir/datagen_netflow_test.cc.o.d"
  "datagen_netflow_test"
  "datagen_netflow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datagen_netflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
