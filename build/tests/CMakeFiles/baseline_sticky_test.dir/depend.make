# Empty dependencies file for baseline_sticky_test.
# This may be replaced when dependencies are built.
