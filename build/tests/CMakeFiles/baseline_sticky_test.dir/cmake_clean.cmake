file(REMOVE_RECURSE
  "CMakeFiles/baseline_sticky_test.dir/baseline_sticky_test.cc.o"
  "CMakeFiles/baseline_sticky_test.dir/baseline_sticky_test.cc.o.d"
  "baseline_sticky_test"
  "baseline_sticky_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_sticky_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
