file(REMOVE_RECURSE
  "CMakeFiles/sketch_frequency_test.dir/sketch_frequency_test.cc.o"
  "CMakeFiles/sketch_frequency_test.dir/sketch_frequency_test.cc.o.d"
  "sketch_frequency_test"
  "sketch_frequency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_frequency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
