# Empty dependencies file for query_predicate_test.
# This may be replaced when dependencies are built.
