file(REMOVE_RECURSE
  "CMakeFiles/query_predicate_test.dir/query_predicate_test.cc.o"
  "CMakeFiles/query_predicate_test.dir/query_predicate_test.cc.o.d"
  "query_predicate_test"
  "query_predicate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_predicate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
