# Empty dependencies file for datagen_dataset_one_test.
# This may be replaced when dependencies are built.
