file(REMOVE_RECURSE
  "CMakeFiles/datagen_dataset_one_test.dir/datagen_dataset_one_test.cc.o"
  "CMakeFiles/datagen_dataset_one_test.dir/datagen_dataset_one_test.cc.o.d"
  "datagen_dataset_one_test"
  "datagen_dataset_one_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datagen_dataset_one_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
