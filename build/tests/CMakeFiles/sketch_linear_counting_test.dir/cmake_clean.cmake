file(REMOVE_RECURSE
  "CMakeFiles/sketch_linear_counting_test.dir/sketch_linear_counting_test.cc.o"
  "CMakeFiles/sketch_linear_counting_test.dir/sketch_linear_counting_test.cc.o.d"
  "sketch_linear_counting_test"
  "sketch_linear_counting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_linear_counting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
