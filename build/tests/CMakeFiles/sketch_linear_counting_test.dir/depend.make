# Empty dependencies file for sketch_linear_counting_test.
# This may be replaced when dependencies are built.
