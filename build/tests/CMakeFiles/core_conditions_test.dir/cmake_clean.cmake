file(REMOVE_RECURSE
  "CMakeFiles/core_conditions_test.dir/core_conditions_test.cc.o"
  "CMakeFiles/core_conditions_test.dir/core_conditions_test.cc.o.d"
  "core_conditions_test"
  "core_conditions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_conditions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
