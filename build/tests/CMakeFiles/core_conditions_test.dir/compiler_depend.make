# Empty compiler generated dependencies file for core_conditions_test.
# This may be replaced when dependencies are built.
