file(REMOVE_RECURSE
  "CMakeFiles/sketch_hll_test.dir/sketch_hll_test.cc.o"
  "CMakeFiles/sketch_hll_test.dir/sketch_hll_test.cc.o.d"
  "sketch_hll_test"
  "sketch_hll_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sketch_hll_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
