
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baseline_ilc_test.cc" "tests/CMakeFiles/baseline_ilc_test.dir/baseline_ilc_test.cc.o" "gcc" "tests/CMakeFiles/baseline_ilc_test.dir/baseline_ilc_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/implistat_query.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/implistat_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/implistat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/implistat_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/implistat_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/implistat_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/implistat_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/implistat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
