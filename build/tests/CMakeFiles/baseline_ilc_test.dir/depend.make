# Empty dependencies file for baseline_ilc_test.
# This may be replaced when dependencies are built.
