file(REMOVE_RECURSE
  "CMakeFiles/baseline_ilc_test.dir/baseline_ilc_test.cc.o"
  "CMakeFiles/baseline_ilc_test.dir/baseline_ilc_test.cc.o.d"
  "baseline_ilc_test"
  "baseline_ilc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_ilc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
