file(REMOVE_RECURSE
  "CMakeFiles/util_serde_test.dir/util_serde_test.cc.o"
  "CMakeFiles/util_serde_test.dir/util_serde_test.cc.o.d"
  "util_serde_test"
  "util_serde_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_serde_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
