file(REMOVE_RECURSE
  "CMakeFiles/stream_dictionary_test.dir/stream_dictionary_test.cc.o"
  "CMakeFiles/stream_dictionary_test.dir/stream_dictionary_test.cc.o.d"
  "stream_dictionary_test"
  "stream_dictionary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_dictionary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
