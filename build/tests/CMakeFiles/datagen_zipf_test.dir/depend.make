# Empty dependencies file for datagen_zipf_test.
# This may be replaced when dependencies are built.
