file(REMOVE_RECURSE
  "CMakeFiles/datagen_zipf_test.dir/datagen_zipf_test.cc.o"
  "CMakeFiles/datagen_zipf_test.dir/datagen_zipf_test.cc.o.d"
  "datagen_zipf_test"
  "datagen_zipf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datagen_zipf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
