file(REMOVE_RECURSE
  "CMakeFiles/core_nips_test.dir/core_nips_test.cc.o"
  "CMakeFiles/core_nips_test.dir/core_nips_test.cc.o.d"
  "core_nips_test"
  "core_nips_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_nips_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
