# Empty compiler generated dependencies file for core_nips_test.
# This may be replaced when dependencies are built.
