file(REMOVE_RECURSE
  "CMakeFiles/baseline_ds_test.dir/baseline_ds_test.cc.o"
  "CMakeFiles/baseline_ds_test.dir/baseline_ds_test.cc.o.d"
  "baseline_ds_test"
  "baseline_ds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_ds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
