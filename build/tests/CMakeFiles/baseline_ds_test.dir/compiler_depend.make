# Empty compiler generated dependencies file for baseline_ds_test.
# This may be replaced when dependencies are built.
