file(REMOVE_RECURSE
  "CMakeFiles/core_ensemble_test.dir/core_ensemble_test.cc.o"
  "CMakeFiles/core_ensemble_test.dir/core_ensemble_test.cc.o.d"
  "core_ensemble_test"
  "core_ensemble_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_ensemble_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
