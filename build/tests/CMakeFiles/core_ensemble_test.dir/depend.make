# Empty dependencies file for core_ensemble_test.
# This may be replaced when dependencies are built.
