file(REMOVE_RECURSE
  "CMakeFiles/datagen_olap_test.dir/datagen_olap_test.cc.o"
  "CMakeFiles/datagen_olap_test.dir/datagen_olap_test.cc.o.d"
  "datagen_olap_test"
  "datagen_olap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datagen_olap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
