# Empty dependencies file for datagen_olap_test.
# This may be replaced when dependencies are built.
