file(REMOVE_RECURSE
  "CMakeFiles/stream_csv_test.dir/stream_csv_test.cc.o"
  "CMakeFiles/stream_csv_test.dir/stream_csv_test.cc.o.d"
  "stream_csv_test"
  "stream_csv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
