# Empty dependencies file for baseline_lossy_test.
# This may be replaced when dependencies are built.
