file(REMOVE_RECURSE
  "CMakeFiles/baseline_lossy_test.dir/baseline_lossy_test.cc.o"
  "CMakeFiles/baseline_lossy_test.dir/baseline_lossy_test.cc.o.d"
  "baseline_lossy_test"
  "baseline_lossy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_lossy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
