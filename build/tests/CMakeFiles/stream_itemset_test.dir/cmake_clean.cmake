file(REMOVE_RECURSE
  "CMakeFiles/stream_itemset_test.dir/stream_itemset_test.cc.o"
  "CMakeFiles/stream_itemset_test.dir/stream_itemset_test.cc.o.d"
  "stream_itemset_test"
  "stream_itemset_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_itemset_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
