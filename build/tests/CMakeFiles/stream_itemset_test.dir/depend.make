# Empty dependencies file for stream_itemset_test.
# This may be replaced when dependencies are built.
