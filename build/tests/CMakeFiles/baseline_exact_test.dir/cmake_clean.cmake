file(REMOVE_RECURSE
  "CMakeFiles/baseline_exact_test.dir/baseline_exact_test.cc.o"
  "CMakeFiles/baseline_exact_test.dir/baseline_exact_test.cc.o.d"
  "baseline_exact_test"
  "baseline_exact_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_exact_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
