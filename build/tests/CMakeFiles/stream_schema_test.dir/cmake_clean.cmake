file(REMOVE_RECURSE
  "CMakeFiles/stream_schema_test.dir/stream_schema_test.cc.o"
  "CMakeFiles/stream_schema_test.dir/stream_schema_test.cc.o.d"
  "stream_schema_test"
  "stream_schema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
