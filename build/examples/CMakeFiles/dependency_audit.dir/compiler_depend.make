# Empty compiler generated dependencies file for dependency_audit.
# This may be replaced when dependencies are built.
