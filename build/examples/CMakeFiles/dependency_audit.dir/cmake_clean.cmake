file(REMOVE_RECURSE
  "CMakeFiles/dependency_audit.dir/dependency_audit.cc.o"
  "CMakeFiles/dependency_audit.dir/dependency_audit.cc.o.d"
  "dependency_audit"
  "dependency_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dependency_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
