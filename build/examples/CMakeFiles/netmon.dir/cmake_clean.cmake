file(REMOVE_RECURSE
  "CMakeFiles/netmon.dir/netmon.cc.o"
  "CMakeFiles/netmon.dir/netmon.cc.o.d"
  "netmon"
  "netmon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
