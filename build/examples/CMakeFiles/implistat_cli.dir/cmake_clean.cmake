file(REMOVE_RECURSE
  "CMakeFiles/implistat_cli.dir/implistat_cli.cc.o"
  "CMakeFiles/implistat_cli.dir/implistat_cli.cc.o.d"
  "implistat_cli"
  "implistat_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/implistat_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
