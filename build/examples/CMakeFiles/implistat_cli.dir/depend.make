# Empty dependencies file for implistat_cli.
# This may be replaced when dependencies are built.
