# Empty dependencies file for implistat_sketch.
# This may be replaced when dependencies are built.
