
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/count_min.cc" "src/CMakeFiles/implistat_sketch.dir/sketch/count_min.cc.o" "gcc" "src/CMakeFiles/implistat_sketch.dir/sketch/count_min.cc.o.d"
  "/root/repo/src/sketch/fm_sketch.cc" "src/CMakeFiles/implistat_sketch.dir/sketch/fm_sketch.cc.o" "gcc" "src/CMakeFiles/implistat_sketch.dir/sketch/fm_sketch.cc.o.d"
  "/root/repo/src/sketch/hyperloglog.cc" "src/CMakeFiles/implistat_sketch.dir/sketch/hyperloglog.cc.o" "gcc" "src/CMakeFiles/implistat_sketch.dir/sketch/hyperloglog.cc.o.d"
  "/root/repo/src/sketch/linear_counting.cc" "src/CMakeFiles/implistat_sketch.dir/sketch/linear_counting.cc.o" "gcc" "src/CMakeFiles/implistat_sketch.dir/sketch/linear_counting.cc.o.d"
  "/root/repo/src/sketch/pcsa.cc" "src/CMakeFiles/implistat_sketch.dir/sketch/pcsa.cc.o" "gcc" "src/CMakeFiles/implistat_sketch.dir/sketch/pcsa.cc.o.d"
  "/root/repo/src/sketch/space_saving.cc" "src/CMakeFiles/implistat_sketch.dir/sketch/space_saving.cc.o" "gcc" "src/CMakeFiles/implistat_sketch.dir/sketch/space_saving.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/implistat_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/implistat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
