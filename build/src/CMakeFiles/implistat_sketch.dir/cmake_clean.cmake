file(REMOVE_RECURSE
  "CMakeFiles/implistat_sketch.dir/sketch/count_min.cc.o"
  "CMakeFiles/implistat_sketch.dir/sketch/count_min.cc.o.d"
  "CMakeFiles/implistat_sketch.dir/sketch/fm_sketch.cc.o"
  "CMakeFiles/implistat_sketch.dir/sketch/fm_sketch.cc.o.d"
  "CMakeFiles/implistat_sketch.dir/sketch/hyperloglog.cc.o"
  "CMakeFiles/implistat_sketch.dir/sketch/hyperloglog.cc.o.d"
  "CMakeFiles/implistat_sketch.dir/sketch/linear_counting.cc.o"
  "CMakeFiles/implistat_sketch.dir/sketch/linear_counting.cc.o.d"
  "CMakeFiles/implistat_sketch.dir/sketch/pcsa.cc.o"
  "CMakeFiles/implistat_sketch.dir/sketch/pcsa.cc.o.d"
  "CMakeFiles/implistat_sketch.dir/sketch/space_saving.cc.o"
  "CMakeFiles/implistat_sketch.dir/sketch/space_saving.cc.o.d"
  "libimplistat_sketch.a"
  "libimplistat_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/implistat_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
