file(REMOVE_RECURSE
  "libimplistat_sketch.a"
)
