file(REMOVE_RECURSE
  "CMakeFiles/implistat_hash.dir/hash/hash64.cc.o"
  "CMakeFiles/implistat_hash.dir/hash/hash64.cc.o.d"
  "CMakeFiles/implistat_hash.dir/hash/hash_family.cc.o"
  "CMakeFiles/implistat_hash.dir/hash/hash_family.cc.o.d"
  "CMakeFiles/implistat_hash.dir/hash/linear_gf2.cc.o"
  "CMakeFiles/implistat_hash.dir/hash/linear_gf2.cc.o.d"
  "CMakeFiles/implistat_hash.dir/hash/multiply_shift.cc.o"
  "CMakeFiles/implistat_hash.dir/hash/multiply_shift.cc.o.d"
  "CMakeFiles/implistat_hash.dir/hash/tabulation.cc.o"
  "CMakeFiles/implistat_hash.dir/hash/tabulation.cc.o.d"
  "libimplistat_hash.a"
  "libimplistat_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/implistat_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
