
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hash/hash64.cc" "src/CMakeFiles/implistat_hash.dir/hash/hash64.cc.o" "gcc" "src/CMakeFiles/implistat_hash.dir/hash/hash64.cc.o.d"
  "/root/repo/src/hash/hash_family.cc" "src/CMakeFiles/implistat_hash.dir/hash/hash_family.cc.o" "gcc" "src/CMakeFiles/implistat_hash.dir/hash/hash_family.cc.o.d"
  "/root/repo/src/hash/linear_gf2.cc" "src/CMakeFiles/implistat_hash.dir/hash/linear_gf2.cc.o" "gcc" "src/CMakeFiles/implistat_hash.dir/hash/linear_gf2.cc.o.d"
  "/root/repo/src/hash/multiply_shift.cc" "src/CMakeFiles/implistat_hash.dir/hash/multiply_shift.cc.o" "gcc" "src/CMakeFiles/implistat_hash.dir/hash/multiply_shift.cc.o.d"
  "/root/repo/src/hash/tabulation.cc" "src/CMakeFiles/implistat_hash.dir/hash/tabulation.cc.o" "gcc" "src/CMakeFiles/implistat_hash.dir/hash/tabulation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/implistat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
