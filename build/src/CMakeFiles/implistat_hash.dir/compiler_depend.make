# Empty compiler generated dependencies file for implistat_hash.
# This may be replaced when dependencies are built.
