file(REMOVE_RECURSE
  "libimplistat_hash.a"
)
