file(REMOVE_RECURSE
  "CMakeFiles/implistat_util.dir/util/random.cc.o"
  "CMakeFiles/implistat_util.dir/util/random.cc.o.d"
  "CMakeFiles/implistat_util.dir/util/serde.cc.o"
  "CMakeFiles/implistat_util.dir/util/serde.cc.o.d"
  "CMakeFiles/implistat_util.dir/util/status.cc.o"
  "CMakeFiles/implistat_util.dir/util/status.cc.o.d"
  "libimplistat_util.a"
  "libimplistat_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/implistat_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
