file(REMOVE_RECURSE
  "libimplistat_util.a"
)
