# Empty compiler generated dependencies file for implistat_util.
# This may be replaced when dependencies are built.
