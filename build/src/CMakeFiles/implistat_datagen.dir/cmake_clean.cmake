file(REMOVE_RECURSE
  "CMakeFiles/implistat_datagen.dir/datagen/dataset_one.cc.o"
  "CMakeFiles/implistat_datagen.dir/datagen/dataset_one.cc.o.d"
  "CMakeFiles/implistat_datagen.dir/datagen/netflow_gen.cc.o"
  "CMakeFiles/implistat_datagen.dir/datagen/netflow_gen.cc.o.d"
  "CMakeFiles/implistat_datagen.dir/datagen/olap_gen.cc.o"
  "CMakeFiles/implistat_datagen.dir/datagen/olap_gen.cc.o.d"
  "CMakeFiles/implistat_datagen.dir/datagen/zipf.cc.o"
  "CMakeFiles/implistat_datagen.dir/datagen/zipf.cc.o.d"
  "libimplistat_datagen.a"
  "libimplistat_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/implistat_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
