
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/dataset_one.cc" "src/CMakeFiles/implistat_datagen.dir/datagen/dataset_one.cc.o" "gcc" "src/CMakeFiles/implistat_datagen.dir/datagen/dataset_one.cc.o.d"
  "/root/repo/src/datagen/netflow_gen.cc" "src/CMakeFiles/implistat_datagen.dir/datagen/netflow_gen.cc.o" "gcc" "src/CMakeFiles/implistat_datagen.dir/datagen/netflow_gen.cc.o.d"
  "/root/repo/src/datagen/olap_gen.cc" "src/CMakeFiles/implistat_datagen.dir/datagen/olap_gen.cc.o" "gcc" "src/CMakeFiles/implistat_datagen.dir/datagen/olap_gen.cc.o.d"
  "/root/repo/src/datagen/zipf.cc" "src/CMakeFiles/implistat_datagen.dir/datagen/zipf.cc.o" "gcc" "src/CMakeFiles/implistat_datagen.dir/datagen/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/implistat_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/implistat_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/implistat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
