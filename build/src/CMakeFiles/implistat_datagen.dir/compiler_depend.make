# Empty compiler generated dependencies file for implistat_datagen.
# This may be replaced when dependencies are built.
