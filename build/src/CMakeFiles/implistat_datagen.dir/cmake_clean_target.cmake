file(REMOVE_RECURSE
  "libimplistat_datagen.a"
)
