file(REMOVE_RECURSE
  "libimplistat_stream.a"
)
