
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/attribute_set.cc" "src/CMakeFiles/implistat_stream.dir/stream/attribute_set.cc.o" "gcc" "src/CMakeFiles/implistat_stream.dir/stream/attribute_set.cc.o.d"
  "/root/repo/src/stream/csv_io.cc" "src/CMakeFiles/implistat_stream.dir/stream/csv_io.cc.o" "gcc" "src/CMakeFiles/implistat_stream.dir/stream/csv_io.cc.o.d"
  "/root/repo/src/stream/itemset.cc" "src/CMakeFiles/implistat_stream.dir/stream/itemset.cc.o" "gcc" "src/CMakeFiles/implistat_stream.dir/stream/itemset.cc.o.d"
  "/root/repo/src/stream/schema.cc" "src/CMakeFiles/implistat_stream.dir/stream/schema.cc.o" "gcc" "src/CMakeFiles/implistat_stream.dir/stream/schema.cc.o.d"
  "/root/repo/src/stream/tuple_stream.cc" "src/CMakeFiles/implistat_stream.dir/stream/tuple_stream.cc.o" "gcc" "src/CMakeFiles/implistat_stream.dir/stream/tuple_stream.cc.o.d"
  "/root/repo/src/stream/value_dictionary.cc" "src/CMakeFiles/implistat_stream.dir/stream/value_dictionary.cc.o" "gcc" "src/CMakeFiles/implistat_stream.dir/stream/value_dictionary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/implistat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
