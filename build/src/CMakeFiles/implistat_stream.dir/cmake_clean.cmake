file(REMOVE_RECURSE
  "CMakeFiles/implistat_stream.dir/stream/attribute_set.cc.o"
  "CMakeFiles/implistat_stream.dir/stream/attribute_set.cc.o.d"
  "CMakeFiles/implistat_stream.dir/stream/csv_io.cc.o"
  "CMakeFiles/implistat_stream.dir/stream/csv_io.cc.o.d"
  "CMakeFiles/implistat_stream.dir/stream/itemset.cc.o"
  "CMakeFiles/implistat_stream.dir/stream/itemset.cc.o.d"
  "CMakeFiles/implistat_stream.dir/stream/schema.cc.o"
  "CMakeFiles/implistat_stream.dir/stream/schema.cc.o.d"
  "CMakeFiles/implistat_stream.dir/stream/tuple_stream.cc.o"
  "CMakeFiles/implistat_stream.dir/stream/tuple_stream.cc.o.d"
  "CMakeFiles/implistat_stream.dir/stream/value_dictionary.cc.o"
  "CMakeFiles/implistat_stream.dir/stream/value_dictionary.cc.o.d"
  "libimplistat_stream.a"
  "libimplistat_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/implistat_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
