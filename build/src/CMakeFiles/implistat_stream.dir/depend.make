# Empty dependencies file for implistat_stream.
# This may be replaced when dependencies are built.
