
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/distinct_sampling.cc" "src/CMakeFiles/implistat_baseline.dir/baseline/distinct_sampling.cc.o" "gcc" "src/CMakeFiles/implistat_baseline.dir/baseline/distinct_sampling.cc.o.d"
  "/root/repo/src/baseline/exact_counter.cc" "src/CMakeFiles/implistat_baseline.dir/baseline/exact_counter.cc.o" "gcc" "src/CMakeFiles/implistat_baseline.dir/baseline/exact_counter.cc.o.d"
  "/root/repo/src/baseline/ilc.cc" "src/CMakeFiles/implistat_baseline.dir/baseline/ilc.cc.o" "gcc" "src/CMakeFiles/implistat_baseline.dir/baseline/ilc.cc.o.d"
  "/root/repo/src/baseline/lossy_counting.cc" "src/CMakeFiles/implistat_baseline.dir/baseline/lossy_counting.cc.o" "gcc" "src/CMakeFiles/implistat_baseline.dir/baseline/lossy_counting.cc.o.d"
  "/root/repo/src/baseline/sticky_sampling.cc" "src/CMakeFiles/implistat_baseline.dir/baseline/sticky_sampling.cc.o" "gcc" "src/CMakeFiles/implistat_baseline.dir/baseline/sticky_sampling.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/implistat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/implistat_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/implistat_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/implistat_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/implistat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
