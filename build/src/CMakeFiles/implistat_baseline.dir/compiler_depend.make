# Empty compiler generated dependencies file for implistat_baseline.
# This may be replaced when dependencies are built.
