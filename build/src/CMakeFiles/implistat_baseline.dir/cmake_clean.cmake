file(REMOVE_RECURSE
  "CMakeFiles/implistat_baseline.dir/baseline/distinct_sampling.cc.o"
  "CMakeFiles/implistat_baseline.dir/baseline/distinct_sampling.cc.o.d"
  "CMakeFiles/implistat_baseline.dir/baseline/exact_counter.cc.o"
  "CMakeFiles/implistat_baseline.dir/baseline/exact_counter.cc.o.d"
  "CMakeFiles/implistat_baseline.dir/baseline/ilc.cc.o"
  "CMakeFiles/implistat_baseline.dir/baseline/ilc.cc.o.d"
  "CMakeFiles/implistat_baseline.dir/baseline/lossy_counting.cc.o"
  "CMakeFiles/implistat_baseline.dir/baseline/lossy_counting.cc.o.d"
  "CMakeFiles/implistat_baseline.dir/baseline/sticky_sampling.cc.o"
  "CMakeFiles/implistat_baseline.dir/baseline/sticky_sampling.cc.o.d"
  "libimplistat_baseline.a"
  "libimplistat_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/implistat_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
