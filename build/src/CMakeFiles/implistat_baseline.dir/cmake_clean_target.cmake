file(REMOVE_RECURSE
  "libimplistat_baseline.a"
)
