file(REMOVE_RECURSE
  "CMakeFiles/implistat_query.dir/query/engine.cc.o"
  "CMakeFiles/implistat_query.dir/query/engine.cc.o.d"
  "CMakeFiles/implistat_query.dir/query/parser.cc.o"
  "CMakeFiles/implistat_query.dir/query/parser.cc.o.d"
  "CMakeFiles/implistat_query.dir/query/predicate.cc.o"
  "CMakeFiles/implistat_query.dir/query/predicate.cc.o.d"
  "CMakeFiles/implistat_query.dir/query/query.cc.o"
  "CMakeFiles/implistat_query.dir/query/query.cc.o.d"
  "libimplistat_query.a"
  "libimplistat_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/implistat_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
