# Empty compiler generated dependencies file for implistat_query.
# This may be replaced when dependencies are built.
