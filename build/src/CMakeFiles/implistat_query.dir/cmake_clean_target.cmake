file(REMOVE_RECURSE
  "libimplistat_query.a"
)
