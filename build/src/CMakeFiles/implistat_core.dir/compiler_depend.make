# Empty compiler generated dependencies file for implistat_core.
# This may be replaced when dependencies are built.
