file(REMOVE_RECURSE
  "libimplistat_core.a"
)
