file(REMOVE_RECURSE
  "CMakeFiles/implistat_core.dir/core/ci.cc.o"
  "CMakeFiles/implistat_core.dir/core/ci.cc.o.d"
  "CMakeFiles/implistat_core.dir/core/conditions.cc.o"
  "CMakeFiles/implistat_core.dir/core/conditions.cc.o.d"
  "CMakeFiles/implistat_core.dir/core/fringe_cell.cc.o"
  "CMakeFiles/implistat_core.dir/core/fringe_cell.cc.o.d"
  "CMakeFiles/implistat_core.dir/core/incremental.cc.o"
  "CMakeFiles/implistat_core.dir/core/incremental.cc.o.d"
  "CMakeFiles/implistat_core.dir/core/nips.cc.o"
  "CMakeFiles/implistat_core.dir/core/nips.cc.o.d"
  "CMakeFiles/implistat_core.dir/core/nips_ci_ensemble.cc.o"
  "CMakeFiles/implistat_core.dir/core/nips_ci_ensemble.cc.o.d"
  "CMakeFiles/implistat_core.dir/core/sliding.cc.o"
  "CMakeFiles/implistat_core.dir/core/sliding.cc.o.d"
  "CMakeFiles/implistat_core.dir/core/trigger.cc.o"
  "CMakeFiles/implistat_core.dir/core/trigger.cc.o.d"
  "libimplistat_core.a"
  "libimplistat_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/implistat_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
