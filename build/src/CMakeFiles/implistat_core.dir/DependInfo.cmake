
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ci.cc" "src/CMakeFiles/implistat_core.dir/core/ci.cc.o" "gcc" "src/CMakeFiles/implistat_core.dir/core/ci.cc.o.d"
  "/root/repo/src/core/conditions.cc" "src/CMakeFiles/implistat_core.dir/core/conditions.cc.o" "gcc" "src/CMakeFiles/implistat_core.dir/core/conditions.cc.o.d"
  "/root/repo/src/core/fringe_cell.cc" "src/CMakeFiles/implistat_core.dir/core/fringe_cell.cc.o" "gcc" "src/CMakeFiles/implistat_core.dir/core/fringe_cell.cc.o.d"
  "/root/repo/src/core/incremental.cc" "src/CMakeFiles/implistat_core.dir/core/incremental.cc.o" "gcc" "src/CMakeFiles/implistat_core.dir/core/incremental.cc.o.d"
  "/root/repo/src/core/nips.cc" "src/CMakeFiles/implistat_core.dir/core/nips.cc.o" "gcc" "src/CMakeFiles/implistat_core.dir/core/nips.cc.o.d"
  "/root/repo/src/core/nips_ci_ensemble.cc" "src/CMakeFiles/implistat_core.dir/core/nips_ci_ensemble.cc.o" "gcc" "src/CMakeFiles/implistat_core.dir/core/nips_ci_ensemble.cc.o.d"
  "/root/repo/src/core/sliding.cc" "src/CMakeFiles/implistat_core.dir/core/sliding.cc.o" "gcc" "src/CMakeFiles/implistat_core.dir/core/sliding.cc.o.d"
  "/root/repo/src/core/trigger.cc" "src/CMakeFiles/implistat_core.dir/core/trigger.cc.o" "gcc" "src/CMakeFiles/implistat_core.dir/core/trigger.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/implistat_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/implistat_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/implistat_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/implistat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
