file(REMOVE_RECURSE
  "CMakeFiles/table3_olap_cardinalities.dir/table3_olap_cardinalities.cc.o"
  "CMakeFiles/table3_olap_cardinalities.dir/table3_olap_cardinalities.cc.o.d"
  "table3_olap_cardinalities"
  "table3_olap_cardinalities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_olap_cardinalities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
