# Empty dependencies file for table3_olap_cardinalities.
# This may be replaced when dependencies are built.
