# Empty dependencies file for fig7b_workload_b.
# This may be replaced when dependencies are built.
