file(REMOVE_RECURSE
  "CMakeFiles/fig7b_workload_b.dir/fig7b_workload_b.cc.o"
  "CMakeFiles/fig7b_workload_b.dir/fig7b_workload_b.cc.o.d"
  "fig7b_workload_b"
  "fig7b_workload_b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_workload_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
