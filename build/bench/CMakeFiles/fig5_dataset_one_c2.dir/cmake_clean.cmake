file(REMOVE_RECURSE
  "CMakeFiles/fig5_dataset_one_c2.dir/fig5_dataset_one_c2.cc.o"
  "CMakeFiles/fig5_dataset_one_c2.dir/fig5_dataset_one_c2.cc.o.d"
  "fig5_dataset_one_c2"
  "fig5_dataset_one_c2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_dataset_one_c2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
