# Empty compiler generated dependencies file for fig5_dataset_one_c2.
# This may be replaced when dependencies are built.
