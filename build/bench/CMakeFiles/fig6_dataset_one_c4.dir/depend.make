# Empty dependencies file for fig6_dataset_one_c4.
# This may be replaced when dependencies are built.
