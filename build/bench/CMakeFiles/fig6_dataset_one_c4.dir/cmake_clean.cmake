file(REMOVE_RECURSE
  "CMakeFiles/fig6_dataset_one_c4.dir/fig6_dataset_one_c4.cc.o"
  "CMakeFiles/fig6_dataset_one_c4.dir/fig6_dataset_one_c4.cc.o.d"
  "fig6_dataset_one_c4"
  "fig6_dataset_one_c4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_dataset_one_c4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
