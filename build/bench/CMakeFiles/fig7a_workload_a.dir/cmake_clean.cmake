file(REMOVE_RECURSE
  "CMakeFiles/fig7a_workload_a.dir/fig7a_workload_a.cc.o"
  "CMakeFiles/fig7a_workload_a.dir/fig7a_workload_a.cc.o.d"
  "fig7a_workload_a"
  "fig7a_workload_a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_workload_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
