# Empty compiler generated dependencies file for fig7a_workload_a.
# This may be replaced when dependencies are built.
