# Empty dependencies file for ablation_bitmaps.
# This may be replaced when dependencies are built.
