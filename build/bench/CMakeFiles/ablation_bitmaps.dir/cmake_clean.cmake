file(REMOVE_RECURSE
  "CMakeFiles/ablation_bitmaps.dir/ablation_bitmaps.cc.o"
  "CMakeFiles/ablation_bitmaps.dir/ablation_bitmaps.cc.o.d"
  "ablation_bitmaps"
  "ablation_bitmaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bitmaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
