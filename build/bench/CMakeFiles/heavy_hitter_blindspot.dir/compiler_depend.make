# Empty compiler generated dependencies file for heavy_hitter_blindspot.
# This may be replaced when dependencies are built.
