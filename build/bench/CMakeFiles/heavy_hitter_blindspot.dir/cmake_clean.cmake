file(REMOVE_RECURSE
  "CMakeFiles/heavy_hitter_blindspot.dir/heavy_hitter_blindspot.cc.o"
  "CMakeFiles/heavy_hitter_blindspot.dir/heavy_hitter_blindspot.cc.o.d"
  "heavy_hitter_blindspot"
  "heavy_hitter_blindspot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heavy_hitter_blindspot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
