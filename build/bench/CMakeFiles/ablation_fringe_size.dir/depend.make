# Empty dependencies file for ablation_fringe_size.
# This may be replaced when dependencies are built.
