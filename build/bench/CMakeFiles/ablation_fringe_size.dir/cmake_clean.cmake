file(REMOVE_RECURSE
  "CMakeFiles/ablation_fringe_size.dir/ablation_fringe_size.cc.o"
  "CMakeFiles/ablation_fringe_size.dir/ablation_fringe_size.cc.o.d"
  "ablation_fringe_size"
  "ablation_fringe_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fringe_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
