# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig4_dataset_one_c1.
