file(REMOVE_RECURSE
  "CMakeFiles/fig4_dataset_one_c1.dir/fig4_dataset_one_c1.cc.o"
  "CMakeFiles/fig4_dataset_one_c1.dir/fig4_dataset_one_c1.cc.o.d"
  "fig4_dataset_one_c1"
  "fig4_dataset_one_c1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_dataset_one_c1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
