# Empty compiler generated dependencies file for fig4_dataset_one_c1.
# This may be replaced when dependencies are built.
