file(REMOVE_RECURSE
  "CMakeFiles/ablation_hash_kinds.dir/ablation_hash_kinds.cc.o"
  "CMakeFiles/ablation_hash_kinds.dir/ablation_hash_kinds.cc.o.d"
  "ablation_hash_kinds"
  "ablation_hash_kinds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hash_kinds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
