# Empty compiler generated dependencies file for ablation_hash_kinds.
# This may be replaced when dependencies are built.
