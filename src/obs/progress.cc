#include "obs/progress.h"

#include <cinttypes>
#include <cstdio>
#include <iostream>

namespace implistat::obs {

namespace {

constexpr const char* kTrackedGaugeHelp =
    "Itemsets currently tracked across all fringes (the section 4.6 "
    "budget occupancy); refreshed at progress-report boundaries";
constexpr const char* kBudgetGaugeHelp =
    "Configured itemset budget: num_bitmaps * capacity_factor * (2^F - 1); "
    "0 when unbounded";
constexpr const char* kMemoryGaugeHelp =
    "MemoryBytes() of the probed estimator, fringe-cell heap included; "
    "refreshed at progress-report boundaries";

}  // namespace

StreamProgressReporter::StreamProgressReporter(StreamProgressOptions options,
                                               Probe probe)
    : every_(options.every),
      options_(options),
      probe_(std::move(probe)),
      rate_(options.rate_horizon >= 1 ? options.rate_horizon : 1),
      start_(std::chrono::steady_clock::now()),
      last_report_(start_),
      tracked_gauge_(MetricsRegistry::Global().GetGauge(
          "nips_tracked_itemsets", kTrackedGaugeHelp)),
      budget_gauge_(MetricsRegistry::Global().GetGauge("nips_itemset_budget",
                                                       kBudgetGaugeHelp)),
      memory_gauge_(MetricsRegistry::Global().GetGauge(
          "implistat_estimator_memory_bytes", kMemoryGaugeHelp)) {}

void StreamProgressReporter::TickBatch(uint64_t n) {
  if (n == 0) return;
  uint64_t before = tuples_;
  tuples_ += n;
  if (every_ != 0 && tuples_ / every_ != before / every_) {
    Report(/*final=*/false);
  }
}

void StreamProgressReporter::Report(bool final) {
  auto now = std::chrono::steady_clock::now();
  double interval_s =
      std::chrono::duration<double>(now - last_report_).count();
  uint64_t interval_tuples = tuples_ - last_reported_tuples_;
  if (interval_tuples > 0 && interval_s > 0) {
    rate_.AddSample(static_cast<double>(interval_tuples) / interval_s);
  }
  last_report_ = now;
  last_reported_tuples_ = tuples_;

  ProgressStats stats;
  if (probe_) stats = probe_();
  tracked_gauge_->Set(static_cast<int64_t>(stats.tracked_itemsets));
  budget_gauge_->Set(static_cast<int64_t>(stats.itemset_budget));
  memory_gauge_->Set(static_cast<int64_t>(stats.memory_bytes));

  char line[256];
  int n = std::snprintf(line, sizeof(line), "[%s] %stuples=%" PRIu64
                        " rate=%.3g/s",
                        options_.tag, final ? "done: " : "", tuples_,
                        rate_.Average());
  auto append = [&](const char* fmt, auto... args) {
    if (n < 0 || n >= static_cast<int>(sizeof(line))) return;
    int r = std::snprintf(line + n, sizeof(line) - static_cast<size_t>(n),
                          fmt, args...);
    if (r > 0) n += r;
  };
  if (stats.has_estimates) {
    if (stats.implication >= 0) append(" S=%.1f", stats.implication);
    if (stats.non_implication >= 0) append(" ~S=%.1f", stats.non_implication);
  }
  if (stats.has_tracking) {
    if (stats.itemset_budget > 0) {
      append(" tracked=%zu/%zu", stats.tracked_itemsets,
             stats.itemset_budget);
    } else {
      append(" tracked=%zu", stats.tracked_itemsets);
    }
  }
  if (stats.memory_bytes > 0) append(" mem=%zuB", stats.memory_bytes);
  if (final) {
    append(" elapsed=%.2fs",
           std::chrono::duration<double>(now - start_).count());
  }

  std::ostream& out = options_.out != nullptr ? *options_.out : std::cerr;
  out << line << "\n";
  out.flush();
}

}  // namespace implistat::obs
