// JSON snapshot exporter — a pure function over a RegistrySnapshot, so the
// core needs no I/O (the caller decides where the string goes).
//
// Layout (one object per metric, histogram buckets trimmed to the highest
// non-empty bucket, "le" bounds as strings so 2^63-1 survives double-only
// JSON readers):
//
//   {
//     "format": "implistat-metrics-v1",
//     "metrics": [
//       {"name": "...", "type": "counter", "help": "...",
//        "labels": {"condition": "confidence"}, "value": 42},
//       {"name": "...", "type": "gauge", "value": -3},
//       {"name": "...", "type": "histogram", "count": 7, "sum": 123,
//        "buckets": [{"le": "0", "count": 1}, {"le": "1", "count": 2}]}
//     ]
//   }

#ifndef IMPLISTAT_OBS_EXPORT_JSON_H_
#define IMPLISTAT_OBS_EXPORT_JSON_H_

#include <string>

#include "obs/metrics.h"

namespace implistat::obs {

std::string WriteMetricsJson(const RegistrySnapshot& snapshot);

}  // namespace implistat::obs

#endif  // IMPLISTAT_OBS_EXPORT_JSON_H_
