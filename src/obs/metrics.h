// Low-overhead metrics for the NIPS/CI pipeline (§4.6's budget made
// visible): counters, gauges and power-of-two-bucket histograms behind a
// registry, plus a ScopedTimer for nanosecond latency capture.
//
// Design constraints, in order:
//   1. Hot-path cost. Metric mutations are single relaxed atomic RMWs on
//      handles the call site caches once; registration (the only locked
//      path) happens on first use. Even one uncontended RMW (~5 ns) is
//      too expensive for a per-tuple path that itself costs single-digit
//      nanoseconds, so the instrumented hot paths (NipsCi::Observe,
//      Nips::ObserveAt, FringeCell) accumulate events in plain member /
//      thread-local counters and fold them into the registry at read
//      boundaries (estimate / serialize / memory / tracked-itemset
//      calls — see Nips::FlushMetrics). Latency timers are sampled
//      (kLatencySampleMask) so the steady_clock reads amortize to under
//      a tenth of a nanosecond per tuple.
//   2. Zero cost when disabled. Two parallel implementations live side by
//      side: `real` (always compiled, so one build exercises both) and
//      `nullimpl` (every method an empty inline). The `obs::Counter` etc.
//      aliases pick one per the IMPLISTAT_METRICS macro (a CMake option,
//      default ON); call sites additionally guard with
//      IMPLISTAT_IF_METRICS so a disabled build emits no code at all —
//      not even the registration static's guard load.
//   3. Exporters stay pure. Snapshot() copies every value into plain
//      structs (RegistrySnapshot); the JSON/Prometheus writers in
//      export_json.h / export_prometheus.h are pure functions over that
//      copy and need no locks or I/O in the core.
//
// Thread safety: counters/gauges/histograms are safe for concurrent
// mutation from any thread; Snapshot() is consistent per metric (values
// are relaxed loads, so cross-metric skew of in-flight updates is
// possible — fine for monitoring).

#ifndef IMPLISTAT_OBS_METRICS_H_
#define IMPLISTAT_OBS_METRICS_H_

#ifndef IMPLISTAT_METRICS
#define IMPLISTAT_METRICS 1
#endif

#include <atomic>
#include <array>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace implistat::obs {

constexpr bool kMetricsEnabled = IMPLISTAT_METRICS != 0;

/// Estimator Observe() latency is sampled 1-in-(mask+1) to keep the two
/// clock reads off the common path. At ~65 ns for the clock pair and a
/// per-tuple update cost of single-digit nanoseconds, 1-in-1024 keeps
/// the amortized timing cost below 0.1 ns/tuple while a multi-million
/// tuple stream still collects thousands of samples.
constexpr uint64_t kLatencySampleMask = 1023;

enum class MetricKind : uint8_t { kCounter, kGauge, kHistogram };

/// Bucket i of a histogram counts values v with std::bit_width(v) == i,
/// i.e. bucket 0 holds exactly the zeros and bucket i >= 1 holds
/// [2^(i-1), 2^i). The inclusive upper bound of bucket i is 2^i - 1.
constexpr int kHistogramBuckets = 65;

/// Point-in-time copy of one metric — plain data, shared by the enabled
/// and disabled builds (exporters are compiled unconditionally).
struct MetricSnapshot {
  std::string name;
  std::string help;
  std::string label_key;    // empty when unlabelled
  std::string label_value;  // empty when unlabelled
  MetricKind kind = MetricKind::kCounter;
  uint64_t counter_value = 0;
  int64_t gauge_value = 0;
  uint64_t hist_count = 0;
  uint64_t hist_sum = 0;
  std::vector<uint64_t> hist_buckets;  // size kHistogramBuckets
};

/// All registered metrics, sorted by (name, label_key, label_value) so
/// exporter output is deterministic and label variants of one family are
/// contiguous.
struct RegistrySnapshot {
  std::vector<MetricSnapshot> metrics;
};

/// Inclusive upper bound of histogram bucket `i` (2^i - 1; UINT64_MAX for
/// the last bucket). Shared by both implementations and the exporters.
constexpr uint64_t HistogramBucketUpperBound(int i) {
  if (i <= 0) return 0;
  if (i >= 64) return ~uint64_t{0};
  return (uint64_t{1} << i) - 1;
}

// ---------------------------------------------------------------------------
// Real implementation (always compiled; aliased as obs::* when enabled).
// ---------------------------------------------------------------------------
namespace real {

class Counter {
 public:
  void Increment(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

class Histogram {
 public:
  void Record(uint64_t value) {
    buckets_[std::bit_width(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t BucketCount(int i) const {
    return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Named metrics, one optional (key, value) label per handle. Handles are
/// stable for the registry's lifetime; re-registering an existing
/// (name, label) returns the same handle, so independent translation
/// units can share a metric. Registering one name under two kinds aborts.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name, std::string_view help = "",
                      std::string_view label_key = {},
                      std::string_view label_value = {});
  Gauge* GetGauge(std::string_view name, std::string_view help = "",
                  std::string_view label_key = {},
                  std::string_view label_value = {});
  Histogram* GetHistogram(std::string_view name, std::string_view help = "",
                          std::string_view label_key = {},
                          std::string_view label_value = {});

  RegistrySnapshot Snapshot() const;

  size_t NumMetrics() const;

  /// The process-wide registry the core instrumentation reports to.
  static MetricsRegistry& Global();

 private:
  struct Entry {
    MetricKind kind;
    std::string name, help, label_key, label_value;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& GetEntry(MetricKind kind, std::string_view name,
                  std::string_view help, std::string_view label_key,
                  std::string_view label_value);

  mutable std::mutex mu_;
  // Keyed by name + '\x01' + label_key + '\x01' + label_value: sorted, and
  // all label variants of one name are contiguous.
  std::map<std::string, Entry> metrics_;
};

/// Records the elapsed wall time, in nanoseconds, into a histogram when it
/// leaves scope. Null-safe: a null histogram skips the clock entirely.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h) : h_(h) {
    if (h_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    if (h_ == nullptr) return;
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
    h_->Record(ns > 0 ? static_cast<uint64_t>(ns) : 0);
  }

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace real

// ---------------------------------------------------------------------------
// Null implementation — the disabled fast path. Every method is an empty
// inline so instrumented call sites compile away; the registry hands out
// shared dummy handles and snapshots empty.
// ---------------------------------------------------------------------------
namespace nullimpl {

class Counter {
 public:
  void Increment(uint64_t = 1) {}
  uint64_t Value() const { return 0; }
};

class Gauge {
 public:
  void Set(int64_t) {}
  void Add(int64_t) {}
  int64_t Value() const { return 0; }
};

class Histogram {
 public:
  void Record(uint64_t) {}
  uint64_t Count() const { return 0; }
  uint64_t Sum() const { return 0; }
  uint64_t BucketCount(int) const { return 0; }
};

class MetricsRegistry {
 public:
  Counter* GetCounter(std::string_view, std::string_view = "",
                      std::string_view = {}, std::string_view = {}) {
    static Counter c;
    return &c;
  }
  Gauge* GetGauge(std::string_view, std::string_view = "",
                  std::string_view = {}, std::string_view = {}) {
    static Gauge g;
    return &g;
  }
  Histogram* GetHistogram(std::string_view, std::string_view = "",
                          std::string_view = {}, std::string_view = {}) {
    static Histogram h;
    return &h;
  }
  RegistrySnapshot Snapshot() const { return {}; }
  size_t NumMetrics() const { return 0; }
  static MetricsRegistry& Global() {
    static MetricsRegistry r;
    return r;
  }
};

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram*) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

}  // namespace nullimpl

#if IMPLISTAT_METRICS
using Counter = real::Counter;
using Gauge = real::Gauge;
using Histogram = real::Histogram;
using MetricsRegistry = real::MetricsRegistry;
using ScopedTimer = real::ScopedTimer;
#else
using Counter = nullimpl::Counter;
using Gauge = nullimpl::Gauge;
using Histogram = nullimpl::Histogram;
using MetricsRegistry = nullimpl::MetricsRegistry;
using ScopedTimer = nullimpl::ScopedTimer;
#endif

}  // namespace implistat::obs

/// Guards an instrumentation statement so a disabled build discards it at
/// compile time (no handle lookup, no static-init guard, nothing).
#define IMPLISTAT_IF_METRICS(...)                           \
  do {                                                      \
    if constexpr (::implistat::obs::kMetricsEnabled) {      \
      __VA_ARGS__;                                          \
    }                                                       \
  } while (0)

#endif  // IMPLISTAT_OBS_METRICS_H_
