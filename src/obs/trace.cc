#include "obs/trace.h"

#include <unistd.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <mutex>

#include "util/random.h"

namespace implistat::obs {

namespace tracereal {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// One thread's flight recorder. Created on the thread's first span, kept
// alive by the global registry after the thread exits so late Snapshot()
// calls still see its spans. The mutex is only ever *held* briefly: a
// writer try_locks (and drops the span on collision), a snapshotter
// locks for the copy.
struct SpanRing {
  std::mutex mu;
  std::vector<SpanRecord> slots{Tracer::kRingCapacity};
  uint64_t head = 0;  // total spans ever written; slot = head % capacity
  uint32_t tid = 0;
};

std::atomic<uint32_t> g_sample_every_n{64};
std::atomic<uint64_t> g_dropped{0};

std::mutex& RegistryMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

// Never destroyed: rings must outlive any thread and any static-teardown
// snapshot.
std::vector<std::shared_ptr<SpanRing>>& Rings() {
  static auto* rings = new std::vector<std::shared_ptr<SpanRing>>();
  return *rings;
}

struct ThreadState {
  std::shared_ptr<SpanRing> ring;
  SpanContext stack[Tracer::kMaxDepth];
  size_t depth = 0;
  uint64_t root_counter = 0;
  Rng rng;

  ThreadState()
      : rng(SplitMix64(NowNs() ^
                       (static_cast<uint64_t>(getpid()) << 32) ^
                       reinterpret_cast<uint64_t>(this))) {
    ring = std::make_shared<SpanRing>();
    std::lock_guard<std::mutex> lock(RegistryMutex());
    ring->tid = static_cast<uint32_t>(Rings().size());
    Rings().push_back(ring);
  }

  uint64_t NonZero64() {
    uint64_t v;
    do {
      v = rng.Next64();
    } while (v == 0);
    return v;
  }
};

ThreadState& Tls() {
  thread_local ThreadState state;
  return state;
}

}  // namespace

void Tracer::SetSampleEveryN(uint32_t n) {
  g_sample_every_n.store(n, std::memory_order_relaxed);
}

uint32_t Tracer::SampleEveryN() {
  return g_sample_every_n.load(std::memory_order_relaxed);
}

SpanContext Tracer::CurrentContext() {
  ThreadState& state = Tls();
  if (state.depth == 0) return SpanContext();
  return state.stack[state.depth - 1];
}

std::vector<SpanRecord> Tracer::Snapshot() {
  // Copy the ring list first so ring locks are never held while the
  // registry lock is (and vice versa) — no ordering to get wrong.
  std::vector<std::shared_ptr<SpanRing>> rings;
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    rings = Rings();
  }
  std::vector<SpanRecord> spans;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    const uint64_t capacity = ring->slots.size();
    const uint64_t first = ring->head > capacity ? ring->head - capacity : 0;
    for (uint64_t i = first; i < ring->head; ++i) {
      spans.push_back(ring->slots[i % capacity]);
    }
  }
  return spans;
}

uint64_t Tracer::Dropped() {
  return g_dropped.load(std::memory_order_relaxed);
}

ScopedSpan::ScopedSpan(const char* name, const char* category) {
  Begin(name, category, SpanContext(), false);
}

ScopedSpan::ScopedSpan(const char* name, const char* category,
                       const SpanContext& parent) {
  Begin(name, category, parent, true);
}

void ScopedSpan::Begin(const char* name, const char* category,
                       const SpanContext& parent, bool force_inherit) {
  ThreadState& state = Tls();
  SpanContext effective = parent;
  if (!force_inherit || !effective.valid()) {
    effective = state.depth > 0 ? state.stack[state.depth - 1] : SpanContext();
  }
  if (effective.valid()) {
    // Nested or remote-parented: the root's sampling decision rides
    // along, so a trace is recorded everywhere or nowhere.
    sampled_ = effective.sampled;
    context_.trace_hi = effective.trace_hi;
    context_.trace_lo = effective.trace_lo;
    record_.parent_id = effective.span_id;
  } else {
    const uint32_t n = Tracer::SampleEveryN();
    sampled_ = n != 0 && (state.root_counter++ % n) == 0;
    context_.trace_hi = state.NonZero64();
    context_.trace_lo = state.NonZero64();
    record_.parent_id = 0;
  }
  context_.span_id = state.NonZero64();
  context_.sampled = sampled_;
  if (state.depth < Tracer::kMaxDepth) {
    state.stack[state.depth++] = context_;
    pushed_ = true;
  }
  if (!sampled_) return;
  record_.trace_hi = context_.trace_hi;
  record_.trace_lo = context_.trace_lo;
  record_.span_id = context_.span_id;
  record_.name = name;
  record_.category = category;
  record_.start_ns = NowNs();
}

ScopedSpan::~ScopedSpan() {
  ThreadState& state = Tls();
  if (pushed_) --state.depth;
  if (!sampled_) return;
  record_.duration_ns = NowNs() - record_.start_ns;
  SpanRing& ring = *state.ring;
  record_.tid = ring.tid;
  // Never block a serving thread on the dump path: a collision with a
  // concurrent Snapshot() drops this one span.
  if (!ring.mu.try_lock()) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ring.slots[ring.head % ring.slots.size()] = record_;
  ++ring.head;
  ring.mu.unlock();
}

void ScopedSpan::Annotate(const char* key, uint64_t value) {
  if (!sampled_) return;
  for (auto& slot : record_.annotations) {
    if (slot.key == nullptr) {
      slot.key = key;
      slot.value = value;
      return;
    }
  }
}

void ScopedSpan::SetDetail(const char* detail) {
  if (!sampled_) return;
  std::snprintf(record_.detail, sizeof(record_.detail), "%s", detail);
}

}  // namespace tracereal

// ---------------------------------------------------------------------------
// Export — compiled unconditionally (pure functions over plain structs),
// like the metric exporters.
// ---------------------------------------------------------------------------

namespace {

void AppendEscaped(std::string* out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

void AppendHex64(std::string* out, uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  out->append(buf);
}

}  // namespace

std::string TraceIdHex(uint64_t trace_hi, uint64_t trace_lo) {
  std::string hex;
  hex.reserve(32);
  AppendHex64(&hex, trace_hi);
  AppendHex64(&hex, trace_lo);
  return hex;
}

std::string WriteTraceJson(const std::vector<SpanRecord>& spans) {
  std::string out;
  out.reserve(64 + spans.size() * 256);
  out.append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  const long pid = static_cast<long>(getpid());
  bool first = true;
  char buf[160];
  for (const SpanRecord& span : spans) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"name\":\"");
    AppendEscaped(&out, span.name);
    out.append("\",\"cat\":\"");
    AppendEscaped(&out, span.category);
    // trace_event ts/dur are microseconds; keep nanosecond precision in
    // the fraction so sub-microsecond phases stay visible.
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%ld,"
                  "\"tid\":%u,\"args\":{",
                  static_cast<double>(span.start_ns) / 1000.0,
                  static_cast<double>(span.duration_ns) / 1000.0, pid,
                  span.tid);
    out.append(buf);
    out.append("\"trace_id\":\"");
    AppendHex64(&out, span.trace_hi);
    AppendHex64(&out, span.trace_lo);
    out.append("\",\"span_id\":\"");
    AppendHex64(&out, span.span_id);
    out.append("\",\"parent_id\":\"");
    AppendHex64(&out, span.parent_id);
    out.push_back('"');
    if (span.detail[0] != '\0') {
      out.append(",\"detail\":\"");
      AppendEscaped(&out, span.detail);
      out.push_back('"');
    }
    for (const auto& annotation : span.annotations) {
      if (annotation.key == nullptr) continue;
      out.append(",\"");
      AppendEscaped(&out, annotation.key);
      std::snprintf(buf, sizeof(buf), "\":%" PRIu64, annotation.value);
      out.append(buf);
    }
    out.append("}}");
  }
  out.append("]}");
  return out;
}

}  // namespace implistat::obs
