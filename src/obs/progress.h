// StreamProgressReporter: one-line pipeline progress every N tuples.
//
// The paper's pitch (§4.6) is a fixed budget — 64 bitmaps × fringe 4 →
// 1920 tracked itemsets — that holds while the stream grows without
// bound. This reporter makes that visible while a stream drains:
//
//   [implistat] tuples=300000 rate=2.41e+06/s S=812.4 ~S=190.2
//       tracked=1887/1920 mem=145312B
//
// Throughput is a MovingAverage over the last few reporting intervals
// (so a rate dip is visible instead of being averaged into the whole
// run); estimates come from an optional probe callback the caller
// supplies (see obs/estimator_probe.h for the standard one), invoked only
// at reporting boundaries so the per-tuple cost is one increment and one
// compare. Each report also refreshes the nips_tracked_itemsets /
// nips_itemset_budget / implistat_estimator_memory_bytes gauges so
// snapshot exports agree with the printed line.

#ifndef IMPLISTAT_OBS_PROGRESS_H_
#define IMPLISTAT_OBS_PROGRESS_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>

#include "core/moving_average.h"
#include "obs/metrics.h"

namespace implistat::obs {

/// What the probe reports at a boundary. Negative estimates mean "cannot
/// answer" (mirrors ImplicationEstimator) and are omitted from the line;
/// zero budget means "no fringe budget to compare against".
struct ProgressStats {
  double implication = -1.0;
  double non_implication = -1.0;
  size_t tracked_itemsets = 0;
  size_t itemset_budget = 0;
  size_t memory_bytes = 0;
  bool has_estimates = false;
  bool has_tracking = false;
};

struct StreamProgressOptions {
  /// Report every `every` tuples; 0 reports only on Finish().
  uint64_t every = 100000;
  /// MovingAverage horizon, in reporting intervals, for the rate.
  size_t rate_horizon = 8;
  /// Destination stream; nullptr means std::cerr.
  std::ostream* out = nullptr;
  /// Line prefix tag.
  const char* tag = "implistat";
};

class StreamProgressReporter {
 public:
  using Probe = std::function<ProgressStats()>;

  explicit StreamProgressReporter(StreamProgressOptions options,
                                  Probe probe = nullptr);

  /// Counts one tuple; emits a report line every `options.every` tuples.
  void Tick() {
    ++tuples_;
    if (every_ != 0 && tuples_ % every_ == 0) Report(/*final=*/false);
  }

  /// Counts `n` tuples at once (batch ingest); reports at most once.
  void TickBatch(uint64_t n);

  /// Emits a final summary line and refreshes the gauges. Idempotent in
  /// the sense that each call reports the state at that moment.
  void Finish() { Report(/*final=*/true); }

  uint64_t tuples_seen() const { return tuples_; }

  /// Mean tuples/sec over the MovingAverage horizon (0 before the first
  /// report).
  double RateTuplesPerSec() const { return rate_.Average(); }

 private:
  void Report(bool final);

  uint64_t every_;
  StreamProgressOptions options_;
  Probe probe_;
  uint64_t tuples_ = 0;
  uint64_t last_reported_tuples_ = 0;
  MovingAverage rate_;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_report_;
  Gauge* tracked_gauge_;
  Gauge* budget_gauge_;
  Gauge* memory_gauge_;
};

}  // namespace implistat::obs

#endif  // IMPLISTAT_OBS_PROGRESS_H_
