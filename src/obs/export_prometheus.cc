#include "obs/export_prometheus.h"

#include <cinttypes>
#include <cstdio>

namespace implistat::obs {

namespace {

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendI64(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf);
}

// HELP lines escape backslash and newline; label values additionally
// escape the double quote (exposition format 0.0.4).
void AppendHelpEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '\\') {
      out->append("\\\\");
    } else if (c == '\n') {
      out->append("\\n");
    } else {
      out->push_back(c);
    }
  }
}

void AppendLabelValueEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '\\') {
      out->append("\\\\");
    } else if (c == '"') {
      out->append("\\\"");
    } else if (c == '\n') {
      out->append("\\n");
    } else {
      out->push_back(c);
    }
  }
}

void AppendLabel(std::string* out, const std::string& key,
                 const std::string& value, bool* any) {
  out->push_back(*any ? ',' : '{');
  *any = true;
  out->append(key);
  out->append("=\"");
  AppendLabelValueEscaped(out, value);
  out->push_back('"');
}

// Series line: name[{labels}] value\n. `extra_key`/`extra_value` append a
// synthetic label (used for histogram `le`).
void AppendSeries(std::string* out, const std::string& name,
                  const MetricSnapshot& m, const std::string& extra_key,
                  const std::string& extra_value, uint64_t value) {
  out->append(name);
  bool any = false;
  if (!m.label_key.empty()) AppendLabel(out, m.label_key, m.label_value, &any);
  if (!extra_key.empty()) AppendLabel(out, extra_key, extra_value, &any);
  if (any) out->push_back('}');
  out->push_back(' ');
  AppendU64(out, value);
  out->push_back('\n');
}

std::string BucketBoundLabel(int i) {
  if (i >= kHistogramBuckets - 1) return "+Inf";
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, HistogramBucketUpperBound(i));
  return buf;
}

void AppendHeader(std::string* out, const MetricSnapshot& m) {
  out->append("# HELP ");
  out->append(m.name);
  out->push_back(' ');
  AppendHelpEscaped(out, m.help.empty() ? m.name : m.help);
  out->append("\n# TYPE ");
  out->append(m.name);
  switch (m.kind) {
    case MetricKind::kCounter:
      out->append(" counter\n");
      break;
    case MetricKind::kGauge:
      out->append(" gauge\n");
      break;
    case MetricKind::kHistogram:
      out->append(" histogram\n");
      break;
  }
}

}  // namespace

std::string WriteMetricsPrometheus(const RegistrySnapshot& snapshot) {
  std::string out;
  out.reserve(256 + snapshot.metrics.size() * 160);
  const std::string* prev_name = nullptr;
  for (const MetricSnapshot& m : snapshot.metrics) {
    // The snapshot is sorted, so label variants of one family are
    // contiguous: emit HELP/TYPE once per name.
    if (prev_name == nullptr || *prev_name != m.name) AppendHeader(&out, m);
    prev_name = &m.name;
    switch (m.kind) {
      case MetricKind::kCounter:
        AppendSeries(&out, m.name, m, "", "", m.counter_value);
        break;
      case MetricKind::kGauge: {
        out.append(m.name);
        if (!m.label_key.empty()) {
          bool any = false;
          AppendLabel(&out, m.label_key, m.label_value, &any);
          out.push_back('}');
        }
        out.push_back(' ');
        AppendI64(&out, m.gauge_value);
        out.push_back('\n');
        break;
      }
      case MetricKind::kHistogram: {
        int highest = -1;
        for (int i = 0; i < static_cast<int>(m.hist_buckets.size()); ++i) {
          if (m.hist_buckets[static_cast<size_t>(i)] != 0) highest = i;
        }
        uint64_t cumulative = 0;
        for (int i = 0; i <= highest && i < kHistogramBuckets - 1; ++i) {
          cumulative += m.hist_buckets[static_cast<size_t>(i)];
          AppendSeries(&out, m.name + "_bucket", m, "le", BucketBoundLabel(i),
                       cumulative);
        }
        AppendSeries(&out, m.name + "_bucket", m, "le", "+Inf", m.hist_count);
        AppendSeries(&out, m.name + "_sum", m, "", "", m.hist_sum);
        AppendSeries(&out, m.name + "_count", m, "", "", m.hist_count);
        break;
      }
    }
  }
  return out;
}

}  // namespace implistat::obs
