#include "obs/metrics.h"

#include "util/logging.h"

namespace implistat::obs::real {

namespace {

std::string MetricKey(std::string_view name, std::string_view label_key,
                      std::string_view label_value) {
  std::string key;
  key.reserve(name.size() + label_key.size() + label_value.size() + 2);
  key.append(name);
  key.push_back('\x01');
  key.append(label_key);
  key.push_back('\x01');
  key.append(label_value);
  return key;
}

}  // namespace

MetricsRegistry::Entry& MetricsRegistry::GetEntry(MetricKind kind,
                                                  std::string_view name,
                                                  std::string_view help,
                                                  std::string_view label_key,
                                                  std::string_view label_value) {
  IMPLISTAT_CHECK(!name.empty()) << "metric name must not be empty";
  IMPLISTAT_CHECK(label_key.empty() == label_value.empty())
      << "metric " << name << ": label key and value must come together";
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      metrics_.try_emplace(MetricKey(name, label_key, label_value));
  Entry& entry = it->second;
  if (inserted) {
    entry.kind = kind;
    entry.name = std::string(name);
    entry.help = std::string(help);
    entry.label_key = std::string(label_key);
    entry.label_value = std::string(label_value);
    switch (kind) {
      case MetricKind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        entry.histogram = std::make_unique<Histogram>();
        break;
    }
  } else {
    IMPLISTAT_CHECK(entry.kind == kind)
        << "metric " << name << " re-registered under a different kind";
    if (entry.help.empty() && !help.empty()) entry.help = std::string(help);
  }
  return entry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help,
                                     std::string_view label_key,
                                     std::string_view label_value) {
  return GetEntry(MetricKind::kCounter, name, help, label_key, label_value)
      .counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 std::string_view label_key,
                                 std::string_view label_value) {
  return GetEntry(MetricKind::kGauge, name, help, label_key, label_value)
      .gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         std::string_view label_key,
                                         std::string_view label_value) {
  return GetEntry(MetricKind::kHistogram, name, help, label_key, label_value)
      .histogram.get();
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  RegistrySnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.metrics.reserve(metrics_.size());
  for (const auto& [key, entry] : metrics_) {
    MetricSnapshot m;
    m.name = entry.name;
    m.help = entry.help;
    m.label_key = entry.label_key;
    m.label_value = entry.label_value;
    m.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        m.counter_value = entry.counter->Value();
        break;
      case MetricKind::kGauge:
        m.gauge_value = entry.gauge->Value();
        break;
      case MetricKind::kHistogram: {
        m.hist_count = entry.histogram->Count();
        m.hist_sum = entry.histogram->Sum();
        m.hist_buckets.resize(kHistogramBuckets);
        for (int i = 0; i < kHistogramBuckets; ++i) {
          m.hist_buckets[static_cast<size_t>(i)] =
              entry.histogram->BucketCount(i);
        }
        break;
      }
    }
    snap.metrics.push_back(std::move(m));
  }
  return snap;
}

size_t MetricsRegistry::NumMetrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

}  // namespace implistat::obs::real
