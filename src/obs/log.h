// Leveled structured logging: one JSON object per line, machine-parseable
// where the old scattered std::cerr one-liners were not. The serving and
// cluster tiers emit events here for the things an operator greps for at
// 3am — connection accepts/closes, backpressure drops, peer health
// transitions (HEALTHY -> DEGRADED -> STALE), checkpoint writes, fold
// failures.
//
//   {"ts_ms":1723200000123,"level":"warn","component":"cluster",
//    "event":"peer_health","peer":"127.0.0.1:7070","from":"DEGRADED",
//    "to":"STALE","consecutive_failures":3}
//
// Usage: the builder emits on destruction, so a log statement is one
// expression:
//
//   obs::LogEvent(obs::LogLevel::kInfo, "net.server", "conn_accept")
//       .U64("fd", fd).I64("connections", n);
//
// Events below the global level (SetMinLogLevel) cost one relaxed load
// and build nothing. The sink defaults to stderr behind a mutex (whole
// lines, so concurrent writers never interleave mid-line); tests install
// a capturing sink via SetLogSink. This is control-plane logging —
// events fire on connection/peer/checkpoint cadence, never per tuple —
// so unlike metrics and traces it stays compiled in under
// IMPLISTAT_METRICS=OFF: a constrained edge still wants to say why it
// dropped a connection.

#ifndef IMPLISTAT_OBS_LOG_H_
#define IMPLISTAT_OBS_LOG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace implistat::obs {

enum class LogLevel : uint8_t { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

const char* LogLevelName(LogLevel level);

/// Events below `level` are discarded at the call site. Default: kInfo.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

/// Receives one complete JSON line (no trailing newline). Must be
/// thread-safe or internally serialized; pass nullptr to restore the
/// default stderr sink. The previous sink is returned so tests can
/// restore it.
using LogSink = std::function<void(std::string_view line)>;
LogSink SetLogSink(LogSink sink);

/// One structured event; fields append in call order and the line is
/// emitted when the builder dies. Field keys must be plain ASCII
/// identifiers (they are not escaped); values are escaped as needed.
class LogEvent {
 public:
  LogEvent(LogLevel level, std::string_view component,
           std::string_view event);
  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;
  ~LogEvent();

  LogEvent& Str(std::string_view key, std::string_view value);
  LogEvent& U64(std::string_view key, uint64_t value);
  LogEvent& I64(std::string_view key, int64_t value);
  LogEvent& F64(std::string_view key, double value);
  LogEvent& Bool(std::string_view key, bool value);

 private:
  bool enabled_;
  std::string line_;
};

}  // namespace implistat::obs

#endif  // IMPLISTAT_OBS_LOG_H_
