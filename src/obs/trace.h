// Distributed tracing for the serving and cluster tiers: where one slow
// QUERY through the edge -> mid -> root hierarchy actually spends its
// time (decode? engine apply? fan-out pull?) and how many bytes each
// synopsis ship costs — the paper's constrained-environment accounting
// (cheap edges shipping compact summaries) made visible per request.
//
// Model:
//  * A trace is a 128-bit id minted at the first span of a request (or
//    propagated in from the wire, net/wire.h v3); spans are timed
//    intervals with a 64-bit id, a parent id, a static name, and a few
//    inline annotations (no allocation).
//  * ScopedSpan is the only way to record: it stamps the start on
//    construction, links itself under the thread's current span (or an
//    explicit remote parent from the wire), becomes the current span for
//    its scope, and appends a finished SpanRecord to the thread's ring
//    when it leaves scope.
//  * Each thread owns a fixed-capacity ring of finished spans. Writers
//    never allocate and never block: the ring mutex is try_lock'ed, and
//    a collision with a concurrent TRACE_DUMP drops the span (counted in
//    dropped()). Old spans are overwritten FIFO — the rings are a flight
//    recorder, not a database.
//  * Sampling is decided once per trace at the root: 1-in-N by a cheap
//    thread-local counter (SetSampleEveryN; 0 disables, 1 records every
//    request). Unsampled spans cost two branches and no clock reads.
//    Propagated contexts carry the root's decision, so one QUERY is
//    either traced end to end or not at all.
//
// Like obs/metrics.h, the whole subsystem compiles out under
// -DIMPLISTAT_METRICS=OFF: the nullimpl aliases make ScopedSpan an empty
// object and Snapshot() empty, so a constrained edge build pays zero —
// not even the sampling branches. SpanContext itself stays real in both
// modes: it is wire data (net/wire.h v3 frames carry it), and a
// tracing-disabled server must still parse and forward it.
//
// Export is Chrome trace_event JSON (WriteTraceJson): load the dump of
// any node — or several nodes' dumps side by side — directly in Perfetto
// (ui.perfetto.dev) or chrome://tracing. Spans that crossed a socket
// share a trace id via args.trace_id.

#ifndef IMPLISTAT_OBS_TRACE_H_
#define IMPLISTAT_OBS_TRACE_H_

#ifndef IMPLISTAT_METRICS
#define IMPLISTAT_METRICS 1
#endif

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace implistat::obs {

/// Propagated trace identity: who this request belongs to (128-bit trace
/// id), which span caused it (the parent for the next hop), and whether
/// the root sampled it. Plain wire data — NOT gated by IMPLISTAT_METRICS;
/// net/wire.h encodes it into v3 frames in every build mode.
struct SpanContext {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;
  bool sampled = false;

  bool valid() const { return (trace_hi | trace_lo) != 0; }
};

/// One finished span, plain data (snapshots and the exporter are compiled
/// unconditionally, like MetricSnapshot).
struct SpanRecord {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root span of its process-local tree
  uint64_t start_ns = 0;   // CLOCK_MONOTONIC (steady_clock) nanoseconds
  uint64_t duration_ns = 0;
  const char* name = "";      // static string literal, never freed
  const char* category = "";  // static: "server", "client", "cluster", ...
  /// Small dynamic detail (peer name, message type), truncated to fit.
  char detail[32] = {0};
  /// Inline numeric annotations; key == nullptr marks an unused slot.
  struct Annotation {
    const char* key = nullptr;  // static string literal
    uint64_t value = 0;
  };
  Annotation annotations[4];
  /// Ring (thread) index the span was recorded on — the Perfetto tid.
  uint32_t tid = 0;
};

/// 16-byte lowercase-hex trace id ("<hi><lo>", 32 chars) — the join key
/// across dumps from different nodes.
std::string TraceIdHex(uint64_t trace_hi, uint64_t trace_lo);

/// Chrome trace_event JSON ("X" complete events, ts/dur in microseconds)
/// over a span snapshot. Pure function; loads directly in Perfetto.
std::string WriteTraceJson(const std::vector<SpanRecord>& spans);

// ---------------------------------------------------------------------------
// Real implementation (always compiled; aliased when enabled).
// ---------------------------------------------------------------------------
namespace tracereal {

/// Process-wide tracing state: sampling config and the registry of
/// per-thread span rings. All methods are thread-safe.
class Tracer {
 public:
  /// Root sampling rate: record 1 trace in every `n` started at this
  /// process. 0 disables new roots entirely; 1 records every trace.
  /// Propagated (incoming) contexts keep their origin's decision.
  static void SetSampleEveryN(uint32_t n);
  static uint32_t SampleEveryN();

  /// The calling thread's current span context (invalid when no span is
  /// open). What a client attaches to an outgoing v3 frame.
  static SpanContext CurrentContext();

  /// Copies every thread's ring, oldest first per thread. Safe to call
  /// from any thread at any time.
  static std::vector<SpanRecord> Snapshot();

  /// Spans dropped because a ring write collided with a Snapshot().
  static uint64_t Dropped();

  /// Spans per thread ring (compile-time; exposed for tests).
  static constexpr size_t kRingCapacity = 2048;
  /// Maximum open-span nesting per thread; deeper spans still time
  /// correctly but are recorded with parent links only to the tracked
  /// depth (in practice request handling nests 3-4 deep).
  static constexpr size_t kMaxDepth = 16;
};

/// RAII span. Construction decides sampling (root) or inherits it
/// (nested/remote parent); destruction records into the thread ring.
class ScopedSpan {
 public:
  /// Child of the thread's current span, or a new sampled-1-in-N root
  /// when none is open.
  ScopedSpan(const char* name, const char* category);
  /// Child of an explicit remote parent (a context that arrived on the
  /// wire, or one captured before hopping threads). An invalid parent
  /// falls back to the local-root rule above.
  ScopedSpan(const char* name, const char* category,
             const SpanContext& parent);

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

  /// True when this span will be recorded (annotation work can be
  /// skipped otherwise).
  bool sampled() const { return sampled_; }

  /// The context to propagate for work caused by this span.
  SpanContext context() const { return context_; }

  /// Attaches a numeric annotation (first 4 stick; key must be a static
  /// string literal). No-op on unsampled spans.
  void Annotate(const char* key, uint64_t value);

  /// Sets the span's free-form detail (truncated to the inline buffer).
  /// No-op on unsampled spans.
  void SetDetail(const char* detail);

 private:
  void Begin(const char* name, const char* category,
             const SpanContext& parent, bool force_inherit);

  SpanContext context_;
  SpanRecord record_;
  bool sampled_ = false;
  bool pushed_ = false;
};

}  // namespace tracereal

// ---------------------------------------------------------------------------
// Null implementation — the disabled fast path, mirroring obs::nullimpl.
// ---------------------------------------------------------------------------
namespace tracenull {

class Tracer {
 public:
  static void SetSampleEveryN(uint32_t) {}
  static uint32_t SampleEveryN() { return 0; }
  static SpanContext CurrentContext() { return SpanContext(); }
  static std::vector<SpanRecord> Snapshot() { return {}; }
  static uint64_t Dropped() { return 0; }
  static constexpr size_t kRingCapacity = 0;
  static constexpr size_t kMaxDepth = 0;
};

class ScopedSpan {
 public:
  ScopedSpan(const char*, const char*) {}
  ScopedSpan(const char*, const char*, const SpanContext&) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  bool sampled() const { return false; }
  SpanContext context() const { return SpanContext(); }
  void Annotate(const char*, uint64_t) {}
  void SetDetail(const char*) {}
};

}  // namespace tracenull

#if IMPLISTAT_METRICS
using Tracer = tracereal::Tracer;
using ScopedSpan = tracereal::ScopedSpan;
#else
using Tracer = tracenull::Tracer;
using ScopedSpan = tracenull::ScopedSpan;
#endif

/// Whether this translation unit sees the real tracer (mirrors
/// kMetricsEnabled; tests gate end-to-end span assertions on it).
inline constexpr bool kTraceEnabled = IMPLISTAT_METRICS != 0;

}  // namespace implistat::obs

#endif  // IMPLISTAT_OBS_TRACE_H_
