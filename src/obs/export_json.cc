#include "obs/export_json.h"

#include <cinttypes>
#include <cstdio>

namespace implistat::obs {

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

void AppendString(std::string* out, const std::string& s) {
  out->push_back('"');
  AppendEscaped(out, s);
  out->push_back('"');
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendI64(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf);
}

// The "le" bound as Prometheus would print it, kept identical across the
// two exporters so a snapshot round-trips between them.
std::string BucketBoundLabel(int i) {
  if (i >= kHistogramBuckets - 1) return "+Inf";
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, HistogramBucketUpperBound(i));
  return buf;
}

}  // namespace

std::string WriteMetricsJson(const RegistrySnapshot& snapshot) {
  std::string out;
  out.reserve(256 + snapshot.metrics.size() * 128);
  out.append("{\n  \"format\": \"implistat-metrics-v1\",\n  \"metrics\": [");
  bool first = true;
  for (const MetricSnapshot& m : snapshot.metrics) {
    if (!first) out.push_back(',');
    first = false;
    out.append("\n    {\"name\": ");
    AppendString(&out, m.name);
    out.append(", \"type\": ");
    switch (m.kind) {
      case MetricKind::kCounter:
        out.append("\"counter\"");
        break;
      case MetricKind::kGauge:
        out.append("\"gauge\"");
        break;
      case MetricKind::kHistogram:
        out.append("\"histogram\"");
        break;
    }
    if (!m.help.empty()) {
      out.append(", \"help\": ");
      AppendString(&out, m.help);
    }
    if (!m.label_key.empty()) {
      out.append(", \"labels\": {");
      AppendString(&out, m.label_key);
      out.append(": ");
      AppendString(&out, m.label_value);
      out.push_back('}');
    }
    switch (m.kind) {
      case MetricKind::kCounter:
        out.append(", \"value\": ");
        AppendU64(&out, m.counter_value);
        break;
      case MetricKind::kGauge:
        out.append(", \"value\": ");
        AppendI64(&out, m.gauge_value);
        break;
      case MetricKind::kHistogram: {
        out.append(", \"count\": ");
        AppendU64(&out, m.hist_count);
        out.append(", \"sum\": ");
        AppendU64(&out, m.hist_sum);
        out.append(", \"buckets\": [");
        int highest = -1;
        for (int i = 0; i < static_cast<int>(m.hist_buckets.size()); ++i) {
          if (m.hist_buckets[static_cast<size_t>(i)] != 0) highest = i;
        }
        for (int i = 0; i <= highest; ++i) {
          if (i > 0) out.append(", ");
          out.append("{\"le\": ");
          AppendString(&out, BucketBoundLabel(i));
          out.append(", \"count\": ");
          AppendU64(&out, m.hist_buckets[static_cast<size_t>(i)]);
          out.push_back('}');
        }
        out.push_back(']');
        break;
      }
    }
    out.push_back('}');
  }
  out.append("\n  ]\n}\n");
  return out;
}

}  // namespace implistat::obs
