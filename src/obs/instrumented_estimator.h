// Instrumentation decorator over the shared ImplicationEstimator
// interface — the one place where NIPS/CI, the exact counter, DS, ILC and
// ISS get comparable ingest metrics, labelled by estimator name:
//
//   implistat_estimator_observe_total{estimator="ILC"}
//   implistat_estimator_observe_latency_ns{estimator="ILC"}  (sampled)
//
// QueryEngine wraps every estimator it builds (MaybeInstrument), so any
// query run — CLI, benches, examples — feeds the same families. A
// metrics-disabled build returns the estimator unwrapped: not even the
// extra virtual hop survives.
//
// Header-only: depends only on the core interface header, so obs stays a
// leaf library.

#ifndef IMPLISTAT_OBS_INSTRUMENTED_ESTIMATOR_H_
#define IMPLISTAT_OBS_INSTRUMENTED_ESTIMATOR_H_

#include <memory>
#include <string>
#include <utility>

#include "core/estimator.h"
#include "obs/metrics.h"

namespace implistat::obs {

class InstrumentedEstimator final : public ImplicationEstimator {
 public:
  explicit InstrumentedEstimator(std::unique_ptr<ImplicationEstimator> inner)
      : inner_(std::move(inner)),
        observes_(MetricsRegistry::Global().GetCounter(
            "implistat_estimator_observe_total",
            "Stream elements fed to this estimator via Observe()",
            "estimator", inner_->name())),
        latency_(MetricsRegistry::Global().GetHistogram(
            "implistat_estimator_observe_latency_ns",
            "Sampled per-element Observe() latency in nanoseconds "
            "(1 in 1024 calls timed)",
            "estimator", inner_->name())) {}

  // The hot path counts into a plain member; the shared counter only sees
  // bulk Increments on sampling boundaries and at the estimate/memory
  // read boundaries below, mirroring NipsCi::FlushMetrics.
  void Observe(ItemsetKey a, ItemsetKey b) override {
    if ((++calls_ & kLatencySampleMask) == 0) [[unlikely]] {
      Flush();
      ScopedTimer timer(latency_);
      inner_->Observe(a, b);
      return;
    }
    inner_->Observe(a, b);
  }

  // Batch-fed elements are bulk-counted (no per-element sampling); the
  // count reaches the shared counter at the next read boundary.
  void ObserveBatch(std::span<const ItemsetPair> batch) override {
    calls_ += batch.size();
    inner_->ObserveBatch(batch);
  }

  double EstimateImplicationCount() const override {
    Flush();
    return inner_->EstimateImplicationCount();
  }
  double EstimateNonImplicationCount() const override {
    Flush();
    return inner_->EstimateNonImplicationCount();
  }
  double EstimateSupportedDistinct() const override {
    Flush();
    return inner_->EstimateSupportedDistinct();
  }
  double EstimateStdError() const override {
    Flush();
    return inner_->EstimateStdError();
  }
  size_t MemoryBytes() const override {
    Flush();
    return inner_->MemoryBytes();
  }
  std::string name() const override { return inner_->name(); }

  // Durable state passes straight through to the wrapped estimator: the
  // decorator's counters are observability, not state. A snapshot taken
  // through the wrapper restores into a bare estimator and vice versa.
  StatusOr<std::string> SerializeState() const override {
    Flush();
    return inner_->SerializeState();
  }
  Status RestoreState(std::string_view snapshot) override {
    return inner_->RestoreState(snapshot);
  }
  Status MergeFrom(const ImplicationEstimator& other) override {
    // Unwrap the other side too, so wrapper-to-wrapper merges hit the
    // concrete estimators' fast paths instead of the wire fallback.
    if (const auto* wrapped =
            dynamic_cast<const InstrumentedEstimator*>(&other)) {
      return inner_->MergeFrom(*wrapped->inner());
    }
    return inner_->MergeFrom(other);
  }

  // Delta shipping passes through like the other durable-state calls: a
  // patch produced through the wrapper applies to a bare estimator and
  // vice versa (the fragment carries no decorator state).
  StatusOr<std::string> SerializeDelta(uint64_t since_epoch,
                                       uint64_t current_epoch) const override {
    Flush();
    return inner_->SerializeDelta(since_epoch, current_epoch);
  }
  Status ApplyDelta(std::string_view fragment) override {
    return inner_->ApplyDelta(fragment);
  }
  void NoteSnapshotEpoch(uint64_t epoch) const override {
    inner_->NoteSnapshotEpoch(epoch);
  }

  const ImplicationEstimator* inner() const { return inner_.get(); }
  ImplicationEstimator* inner() { return inner_.get(); }

 private:
  void Flush() const {
    if (calls_ != flushed_) {
      observes_->Increment(calls_ - flushed_);
      flushed_ = calls_;
    }
  }

  std::unique_ptr<ImplicationEstimator> inner_;
  Counter* observes_;
  Histogram* latency_;
  uint64_t calls_ = 0;
  mutable uint64_t flushed_ = 0;
};

/// Wraps when metrics are compiled in; identity otherwise.
inline std::unique_ptr<ImplicationEstimator> MaybeInstrument(
    std::unique_ptr<ImplicationEstimator> estimator) {
  if constexpr (kMetricsEnabled) {
    return std::make_unique<InstrumentedEstimator>(std::move(estimator));
  } else {
    return estimator;
  }
}

/// Sees through the decorator (for readouts that need the concrete type,
/// e.g. TrackedItemsets on NipsCi).
inline const ImplicationEstimator* Unwrap(const ImplicationEstimator* est) {
  if (const auto* wrapped = dynamic_cast<const InstrumentedEstimator*>(est)) {
    return wrapped->inner();
  }
  return est;
}

}  // namespace implistat::obs

#endif  // IMPLISTAT_OBS_INSTRUMENTED_ESTIMATOR_H_
