// The standard StreamProgressReporter probe: reads S / ~S / memory from
// any ImplicationEstimator and, when the estimator is (or wraps) a NipsCi
// ensemble, the tracked-itemset occupancy against the §4.6 budget.
//
// Header-only on purpose: it needs core headers (NipsCi), and keeping it
// out of the obs library avoids an obs -> core -> obs link cycle — only
// executables that already link both include this.

#ifndef IMPLISTAT_OBS_ESTIMATOR_PROBE_H_
#define IMPLISTAT_OBS_ESTIMATOR_PROBE_H_

#include "core/nips_ci_ensemble.h"
#include "obs/instrumented_estimator.h"
#include "obs/progress.h"
#include "parallel/sharded_nips_ci.h"

namespace implistat::obs {

inline ProgressStats ProbeEstimator(const ImplicationEstimator& estimator) {
  const ImplicationEstimator* est = Unwrap(&estimator);
  ProgressStats stats;
  stats.implication = est->EstimateImplicationCount();
  stats.non_implication = est->EstimateNonImplicationCount();
  stats.memory_bytes = est->MemoryBytes();
  stats.has_estimates = true;
  const NipsCi* nips = dynamic_cast<const NipsCi*>(est);
  if (const auto* sharded = dynamic_cast<const ShardedNipsCi*>(est)) {
    // Probing quiesces the parallel pipeline (ensemble() drains), so pick
    // a coarse progress cadence when combining --threads with
    // --metrics-every.
    nips = &sharded->ensemble();
  }
  if (nips != nullptr) {
    stats.tracked_itemsets = nips->TrackedItemsets();
    stats.itemset_budget =
        static_cast<size_t>(nips->num_bitmaps()) *
        nips->bitmap(0).ItemBudget();
    stats.has_tracking = true;
  }
  return stats;
}

/// Probe bound to an estimator the caller keeps alive for the reporter's
/// lifetime.
inline StreamProgressReporter::Probe MakeEstimatorProbe(
    const ImplicationEstimator* estimator) {
  return [estimator] { return ProbeEstimator(*estimator); };
}

}  // namespace implistat::obs

#endif  // IMPLISTAT_OBS_ESTIMATOR_PROBE_H_
