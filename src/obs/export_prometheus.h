// Prometheus text-format exporter (exposition format 0.0.4) — a pure
// function over a RegistrySnapshot.
//
// One # HELP / # TYPE pair per metric family (label variants of the same
// name share them); histograms expand to the conventional
// `_bucket{le="..."}` / `_sum` / `_count` series with cumulative bucket
// counts. Bucket lists are trimmed: bounds above the highest non-empty
// bucket collapse into the mandatory `le="+Inf"` line.

#ifndef IMPLISTAT_OBS_EXPORT_PROMETHEUS_H_
#define IMPLISTAT_OBS_EXPORT_PROMETHEUS_H_

#include <string>

#include "obs/metrics.h"

namespace implistat::obs {

std::string WriteMetricsPrometheus(const RegistrySnapshot& snapshot);

}  // namespace implistat::obs

#endif  // IMPLISTAT_OBS_EXPORT_PROMETHEUS_H_
