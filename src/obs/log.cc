#include "obs/log.h"

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <mutex>

namespace implistat::obs {

namespace {

std::atomic<uint8_t> g_min_level{static_cast<uint8_t>(LogLevel::kInfo)};

// Leaked (never destroyed): log statements may run during static teardown.
std::mutex& SinkMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

LogSink& SinkSlot() {
  static LogSink* sink = new LogSink();
  return *sink;
}

// stderr, serialized so concurrent events never interleave mid-line.
std::mutex& StderrMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

void DefaultSink(std::string_view line) {
  std::lock_guard<std::mutex> lock(StderrMutex());
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fputc('\n', stderr);
}

void Emit(std::string_view line) {
  LogSink sink;
  {
    std::lock_guard<std::mutex> lock(SinkMutex());
    sink = SinkSlot();
  }
  if (sink) {
    sink(line);
  } else {
    DefaultSink(line);
  }
}

void AppendEscaped(std::string* out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out->append(buf);
    } else {
      out->push_back(c);
    }
  }
}

uint64_t NowEpochMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<uint8_t>(level), std::memory_order_relaxed);
}

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

LogSink SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  LogSink previous = SinkSlot();
  SinkSlot() = std::move(sink);
  return previous;
}

LogEvent::LogEvent(LogLevel level, std::string_view component,
                   std::string_view event)
    : enabled_(static_cast<uint8_t>(level) >=
               g_min_level.load(std::memory_order_relaxed)) {
  if (!enabled_) return;
  line_.reserve(160);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "{\"ts_ms\":%" PRIu64 ",\"level\":\"",
                NowEpochMs());
  line_.append(buf);
  line_.append(LogLevelName(level));
  line_.append("\",\"component\":\"");
  AppendEscaped(&line_, component);
  line_.append("\",\"event\":\"");
  AppendEscaped(&line_, event);
  line_.push_back('"');
}

LogEvent::~LogEvent() {
  if (!enabled_) return;
  line_.push_back('}');
  Emit(line_);
}

LogEvent& LogEvent::Str(std::string_view key, std::string_view value) {
  if (!enabled_) return *this;
  line_.append(",\"");
  line_.append(key);
  line_.append("\":\"");
  AppendEscaped(&line_, value);
  line_.push_back('"');
  return *this;
}

LogEvent& LogEvent::U64(std::string_view key, uint64_t value) {
  if (!enabled_) return *this;
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  line_.append(",\"");
  line_.append(key);
  line_.append("\":");
  line_.append(buf);
  return *this;
}

LogEvent& LogEvent::I64(std::string_view key, int64_t value) {
  if (!enabled_) return *this;
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  line_.append(",\"");
  line_.append(key);
  line_.append("\":");
  line_.append(buf);
  return *this;
}

LogEvent& LogEvent::F64(std::string_view key, double value) {
  if (!enabled_) return *this;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  line_.append(",\"");
  line_.append(key);
  line_.append("\":");
  line_.append(buf);
  return *this;
}

LogEvent& LogEvent::Bool(std::string_view key, bool value) {
  if (!enabled_) return *this;
  line_.append(",\"");
  line_.append(key);
  line_.append("\":");
  line_.append(value ? "true" : "false");
  return *this;
}

}  // namespace implistat::obs
