// Byte-level serialization primitives and the snapshot envelope.
//
// NIPS/CI sketches are mergeable (see core/nips.h), which makes them
// useful in the paper's distributed settings — sensor networks and router
// hierarchies aggregating summaries instead of raw streams (§1-2). These
// helpers give the sketches a compact wire format: little-endian fixed
// integers, LEB128 varints, IEEE doubles. Readers validate bounds and
// return Status instead of crashing on malformed input.
//
// Durable state (checkpoints shipped between processes or written to disk)
// additionally travels inside a self-describing envelope — magic, format
// version, estimator kind, payload length, CRC32C trailer — so a reader can
// reject truncation, bit-flips, version skew, and kind mismatch before it
// ever parses a payload byte. The envelope lives in util/envelope.h
// (included here for compatibility); see DESIGN.md §7 for the wire format.

#ifndef IMPLISTAT_UTIL_SERDE_H_
#define IMPLISTAT_UTIL_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "util/envelope.h"
#include "util/status.h"
#include "util/status_or.h"

namespace implistat {

class ByteWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) { PutFixed(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutFixed(&v, sizeof(v)); }

  /// LEB128: compact for the small counters that dominate sketch state.
  void PutVarint64(uint64_t v);

  void PutDouble(double v) { PutFixed(&v, sizeof(v)); }

  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  /// Raw bytes, no length prefix (caller must know the length on read).
  void PutBytes(std::string_view bytes) { out_.append(bytes); }

  /// Varint length followed by the bytes; pairs with ReadLengthPrefixed.
  void PutLengthPrefixed(std::string_view bytes) {
    PutVarint64(bytes.size());
    out_.append(bytes);
  }

  const std::string& str() const { return out_; }
  std::string Release() { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  void PutFixed(const void* data, size_t n) {
    out_.append(reinterpret_cast<const char*>(data), n);
  }

  // Little-endian assumed (checked in serde.cc for the build platform).
  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Status ReadU8(uint8_t* v);
  Status ReadU32(uint32_t* v);
  Status ReadU64(uint64_t* v);
  Status ReadVarint64(uint64_t* v);
  Status ReadDouble(double* v);
  Status ReadBool(bool* v);

  /// Reads exactly `n` raw bytes; the view aliases the reader's buffer.
  Status ReadBytes(size_t n, std::string_view* out);

  /// Reads a varint length then that many bytes (view into the buffer).
  Status ReadLengthPrefixed(std::string_view* out);

  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  Status ReadFixed(void* out, size_t n);

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace implistat

#endif  // IMPLISTAT_UTIL_SERDE_H_
