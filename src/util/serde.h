// Byte-level serialization primitives.
//
// NIPS/CI sketches are mergeable (see core/nips.h), which makes them
// useful in the paper's distributed settings — sensor networks and router
// hierarchies aggregating summaries instead of raw streams (§1-2). These
// helpers give the sketches a compact wire format: little-endian fixed
// integers, LEB128 varints, IEEE doubles. Readers validate bounds and
// return Status instead of crashing on malformed input.

#ifndef IMPLISTAT_UTIL_SERDE_H_
#define IMPLISTAT_UTIL_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "util/status.h"

namespace implistat {

class ByteWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) { PutFixed(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutFixed(&v, sizeof(v)); }

  /// LEB128: compact for the small counters that dominate sketch state.
  void PutVarint64(uint64_t v);

  void PutDouble(double v) { PutFixed(&v, sizeof(v)); }

  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  const std::string& str() const { return out_; }
  std::string Release() { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  void PutFixed(const void* data, size_t n) {
    out_.append(reinterpret_cast<const char*>(data), n);
  }

  // Little-endian assumed (checked in serde.cc for the build platform).
  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  Status ReadU8(uint8_t* v);
  Status ReadU32(uint32_t* v);
  Status ReadU64(uint64_t* v);
  Status ReadVarint64(uint64_t* v);
  Status ReadDouble(double* v);
  Status ReadBool(bool* v);

  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  Status ReadFixed(void* out, size_t n);

  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace implistat

#endif  // IMPLISTAT_UTIL_SERDE_H_
