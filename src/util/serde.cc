#include "util/serde.h"

#include <bit>

namespace implistat {

static_assert(std::endian::native == std::endian::little,
              "fixed-width serde assumes a little-endian build platform");

void ByteWriter::PutVarint64(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

Status ByteReader::ReadFixed(void* out, size_t n) {
  if (pos_ + n > data_.size()) {
    return Status::OutOfRange("serde: truncated input");
  }
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status ByteReader::ReadU8(uint8_t* v) { return ReadFixed(v, sizeof(*v)); }
Status ByteReader::ReadU32(uint32_t* v) { return ReadFixed(v, sizeof(*v)); }
Status ByteReader::ReadU64(uint64_t* v) { return ReadFixed(v, sizeof(*v)); }
Status ByteReader::ReadDouble(double* v) { return ReadFixed(v, sizeof(*v)); }

Status ByteReader::ReadVarint64(uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    uint8_t byte;
    IMPLISTAT_RETURN_NOT_OK(ReadU8(&byte));
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("serde: varint too long");
}

Status ByteReader::ReadBool(bool* v) {
  uint8_t byte;
  IMPLISTAT_RETURN_NOT_OK(ReadU8(&byte));
  if (byte > 1) return Status::InvalidArgument("serde: bad bool");
  *v = byte == 1;
  return Status::OK();
}

Status ByteReader::ReadBytes(size_t n, std::string_view* out) {
  if (n > remaining()) {
    return Status::OutOfRange("serde: truncated input");
  }
  *out = data_.substr(pos_, n);
  pos_ += n;
  return Status::OK();
}

Status ByteReader::ReadLengthPrefixed(std::string_view* out) {
  uint64_t len;
  IMPLISTAT_RETURN_NOT_OK(ReadVarint64(&len));
  if (len > remaining()) {
    return Status::OutOfRange("serde: length-prefixed field truncated");
  }
  return ReadBytes(static_cast<size_t>(len), out);
}

}  // namespace implistat
