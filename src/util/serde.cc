#include "util/serde.h"

#include <bit>

namespace implistat {

static_assert(std::endian::native == std::endian::little,
              "fixed-width serde assumes a little-endian build platform");

void ByteWriter::PutVarint64(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

Status ByteReader::ReadFixed(void* out, size_t n) {
  if (pos_ + n > data_.size()) {
    return Status::OutOfRange("serde: truncated input");
  }
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Status ByteReader::ReadU8(uint8_t* v) { return ReadFixed(v, sizeof(*v)); }
Status ByteReader::ReadU32(uint32_t* v) { return ReadFixed(v, sizeof(*v)); }
Status ByteReader::ReadU64(uint64_t* v) { return ReadFixed(v, sizeof(*v)); }
Status ByteReader::ReadDouble(double* v) { return ReadFixed(v, sizeof(*v)); }

Status ByteReader::ReadVarint64(uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    uint8_t byte;
    IMPLISTAT_RETURN_NOT_OK(ReadU8(&byte));
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return Status::OK();
    }
  }
  return Status::InvalidArgument("serde: varint too long");
}

Status ByteReader::ReadBool(bool* v) {
  uint8_t byte;
  IMPLISTAT_RETURN_NOT_OK(ReadU8(&byte));
  if (byte > 1) return Status::InvalidArgument("serde: bad bool");
  *v = byte == 1;
  return Status::OK();
}

Status ByteReader::ReadBytes(size_t n, std::string_view* out) {
  if (n > remaining()) {
    return Status::OutOfRange("serde: truncated input");
  }
  *out = data_.substr(pos_, n);
  pos_ += n;
  return Status::OK();
}

Status ByteReader::ReadLengthPrefixed(std::string_view* out) {
  uint64_t len;
  IMPLISTAT_RETURN_NOT_OK(ReadVarint64(&len));
  if (len > remaining()) {
    return Status::OutOfRange("serde: length-prefixed field truncated");
  }
  return ReadBytes(static_cast<size_t>(len), out);
}

namespace {

// CRC32C (Castagnoli, reflected polynomial 0x82f63b78), one 256-entry
// table built at static-init time. Throughput is irrelevant here: the
// checksum guards checkpoint files, not the ingest hot path.
struct Crc32cTable {
  uint32_t entries[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0);
      }
      entries[i] = crc;
    }
  }
};

const Crc32cTable& CrcTable() {
  static const Crc32cTable table;
  return table;
}

}  // namespace

uint32_t Crc32c(std::string_view data) {
  const Crc32cTable& table = CrcTable();
  uint32_t crc = ~0u;
  for (char c : data) {
    crc = (crc >> 8) ^ table.entries[(crc ^ static_cast<uint8_t>(c)) & 0xff];
  }
  return ~crc;
}

std::string WrapSnapshot(SnapshotKind kind, std::string_view payload) {
  ByteWriter out;
  out.PutU32(kSnapshotMagic);
  out.PutVarint64(kSnapshotFormatVersion);
  out.PutU8(static_cast<uint8_t>(kind));
  out.PutVarint64(payload.size());
  out.PutBytes(payload);
  std::string bytes = out.Release();
  uint32_t crc = Crc32c(bytes);
  bytes.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return bytes;
}

namespace {

const char* SnapshotKindName(SnapshotKind kind) {
  switch (kind) {
    case SnapshotKind::kNipsCi: return "nips_ci";
    case SnapshotKind::kExactCounter: return "exact_counter";
    case SnapshotKind::kDistinctSampling: return "distinct_sampling";
    case SnapshotKind::kIlc: return "ilc";
    case SnapshotKind::kIss: return "implication_sticky_sampling";
    case SnapshotKind::kLossyCounting: return "lossy_counting";
    case SnapshotKind::kStickySampling: return "sticky_sampling";
    case SnapshotKind::kSlidingNipsCi: return "sliding_nips_ci";
    case SnapshotKind::kQueryEngine: return "query_engine";
    case SnapshotKind::kIncrementalTracker: return "incremental_tracker";
  }
  return "unknown";
}

// Shared header parse for UnwrapSnapshot / PeekSnapshotKind: checks magic
// and version, leaves `reader` positioned at the kind byte.
Status ReadSnapshotHeader(ByteReader& reader) {
  uint32_t magic;
  IMPLISTAT_RETURN_NOT_OK(reader.ReadU32(&magic));
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument("snapshot: bad magic (not a snapshot?)");
  }
  uint64_t version;
  IMPLISTAT_RETURN_NOT_OK(reader.ReadVarint64(&version));
  if (version != kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        "snapshot: unsupported format version " + std::to_string(version) +
        " (this build reads version " +
        std::to_string(kSnapshotFormatVersion) + ")");
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::string_view> UnwrapSnapshot(std::string_view bytes,
                                          SnapshotKind expected_kind) {
  // The CRC trailer covers everything before it; verify before trusting
  // any header field beyond the magic/version sanity checks.
  ByteReader reader(bytes);
  IMPLISTAT_RETURN_NOT_OK(ReadSnapshotHeader(reader));
  uint8_t kind_byte;
  IMPLISTAT_RETURN_NOT_OK(reader.ReadU8(&kind_byte));
  uint64_t payload_len;
  IMPLISTAT_RETURN_NOT_OK(reader.ReadVarint64(&payload_len));
  if (payload_len > reader.remaining()) {
    return Status::OutOfRange("snapshot: truncated payload");
  }
  std::string_view payload;
  IMPLISTAT_RETURN_NOT_OK(reader.ReadBytes(payload_len, &payload));
  uint32_t stored_crc;
  if (reader.remaining() != sizeof(stored_crc)) {
    return Status::InvalidArgument(
        "snapshot: trailing bytes after payload");
  }
  IMPLISTAT_RETURN_NOT_OK(reader.ReadU32(&stored_crc));
  uint32_t actual_crc = Crc32c(bytes.substr(0, bytes.size() - sizeof(stored_crc)));
  if (stored_crc != actual_crc) {
    return Status::InvalidArgument("snapshot: CRC32C mismatch (corrupt snapshot)");
  }
  if (kind_byte != static_cast<uint8_t>(expected_kind)) {
    return Status::InvalidArgument(
        std::string("snapshot: kind mismatch: expected ") +
        SnapshotKindName(expected_kind) + ", found tag " +
        std::to_string(kind_byte));
  }
  return payload;
}

StatusOr<SnapshotKind> PeekSnapshotKind(std::string_view bytes) {
  ByteReader reader(bytes);
  IMPLISTAT_RETURN_NOT_OK(ReadSnapshotHeader(reader));
  uint8_t kind_byte;
  IMPLISTAT_RETURN_NOT_OK(reader.ReadU8(&kind_byte));
  return static_cast<SnapshotKind>(kind_byte);
}

}  // namespace implistat
