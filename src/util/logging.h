// Minimal assertion macros in the CHECK/DCHECK style.
//
// IMPLISTAT_CHECK(cond) aborts with a message when `cond` is false; extra
// context can be streamed onto it. IMPLISTAT_DCHECK compiles away in
// release (NDEBUG) builds. These guard internal invariants; user-facing
// validation should return Status instead.

#ifndef IMPLISTAT_UTIL_LOGGING_H_
#define IMPLISTAT_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace implistat {
namespace internal_logging {

class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* expr) {
    stream_ << file << ":" << line << " check failed: " << expr << " ";
  }
  [[noreturn]] ~CheckFailStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

// Swallows streamed arguments when the check passes.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace implistat

#define IMPLISTAT_CHECK(cond)                                               \
  (cond) ? (void)0                                                          \
         : (void)(::implistat::internal_logging::CheckFailStream(__FILE__,  \
                                                                 __LINE__,  \
                                                                 #cond))    \
               .operator<<("")

// The ternary above cannot accept further <<; provide the canonical macro
// as an if-else so `IMPLISTAT_CHECK(x) << "detail"` works.
#undef IMPLISTAT_CHECK
#define IMPLISTAT_CHECK(cond)                                      \
  switch (0)                                                       \
  case 0:                                                          \
  default:                                                         \
    if (cond)                                                      \
      ;                                                            \
    else                                                           \
      ::implistat::internal_logging::CheckFailStream(__FILE__, __LINE__, #cond)

#ifdef NDEBUG
#define IMPLISTAT_DCHECK(cond) \
  if (true)                    \
    ;                          \
  else                         \
    ::implistat::internal_logging::NullStream()
#else
#define IMPLISTAT_DCHECK(cond) IMPLISTAT_CHECK(cond)
#endif

#endif  // IMPLISTAT_UTIL_LOGGING_H_
