// Durable file I/O for checkpoints.
//
// A checkpoint that can be torn by a crash mid-write is worse than no
// checkpoint: restore would read half a snapshot and (at best) fail the
// CRC. WriteFileAtomic gives the standard write-temp → fsync → rename →
// fsync-directory sequence, so a checkpoint file is either the complete
// old version or the complete new version, never a mix.

#ifndef IMPLISTAT_UTIL_FILEIO_H_
#define IMPLISTAT_UTIL_FILEIO_H_

#include <string>
#include <string_view>

#include "util/status.h"
#include "util/status_or.h"

namespace implistat {

/// Reads the entire file at `path` into a string.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Atomically replaces `path` with `contents`: writes `path`.tmp.<pid>,
/// fsyncs it, renames over `path`, then fsyncs the containing directory
/// so the rename itself is durable. On any failure the temp file is
/// unlinked and `path` is untouched.
Status WriteFileAtomic(const std::string& path, std::string_view contents);

}  // namespace implistat

#endif  // IMPLISTAT_UTIL_FILEIO_H_
