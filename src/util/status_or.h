// StatusOr<T>: the union of a Status and a value of type T.
//
// A StatusOr is either OK and holds a T, or holds a non-OK Status. Callers
// must check ok() (or status()) before dereferencing; accessing the value of
// a non-OK StatusOr aborts the process (see logging.h).

#ifndef IMPLISTAT_UTIL_STATUS_OR_H_
#define IMPLISTAT_UTIL_STATUS_OR_H_

#include <optional>
#include <utility>

#include "util/logging.h"
#include "util/status.h"

namespace implistat {

template <typename T>
class StatusOr {
 public:
  /// Constructs from a value; the result is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status. Passing an OK status is a programming
  /// error (there would be no value) and aborts.
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    IMPLISTAT_CHECK(!status_.ok())
        << "StatusOr constructed from OK status without a value";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    IMPLISTAT_CHECK(ok()) << "StatusOr::value on error: " << status_;
    return *value_;
  }
  T& value() & {
    IMPLISTAT_CHECK(ok()) << "StatusOr::value on error: " << status_;
    return *value_;
  }
  T&& value() && {
    IMPLISTAT_CHECK(ok()) << "StatusOr::value on error: " << status_;
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a StatusOr expression to `lhs`, or returns its
/// status from the enclosing function.
#define IMPLISTAT_ASSIGN_OR_RETURN(lhs, expr)    \
  auto IMPLISTAT_CONCAT_(_so_, __LINE__) = (expr);  \
  if (!IMPLISTAT_CONCAT_(_so_, __LINE__).ok())      \
    return IMPLISTAT_CONCAT_(_so_, __LINE__).status(); \
  lhs = std::move(IMPLISTAT_CONCAT_(_so_, __LINE__)).value()

#define IMPLISTAT_CONCAT_IMPL_(a, b) a##b
#define IMPLISTAT_CONCAT_(a, b) IMPLISTAT_CONCAT_IMPL_(a, b)

}  // namespace implistat

#endif  // IMPLISTAT_UTIL_STATUS_OR_H_
