#include "util/random.h"

namespace implistat {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  // Expand the seed through SplitMix64 per the xoshiro authors' advice;
  // guarantees a nonzero state for every seed.
  uint64_t s = seed;
  for (auto& word : s_) {
    s += 0x9e3779b97f4a7c15ULL;
    word = SplitMix64(s);
  }
}

uint64_t Rng::Next64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t bound) {
  // Lemire's nearly-divisionless method.
  uint64_t x = Next64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = Next64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

uint64_t Rng::UniformRange(uint64_t lo, uint64_t hi) {
  return lo + Uniform(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

Rng Rng::Fork() { return Rng(Next64()); }

}  // namespace implistat
