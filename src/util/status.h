// Status: lightweight error propagation without exceptions.
//
// Follows the RocksDB/Arrow idiom: fallible operations return a Status (or a
// StatusOr<T>, see status_or.h) instead of throwing. Statuses carry a coarse
// code plus a human-readable message. The OK status is cheap to construct
// and copy (no allocation).

#ifndef IMPLISTAT_UTIL_STATUS_H_
#define IMPLISTAT_UTIL_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace implistat {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
  kIOError,
  kUnavailable,        // transport lost; retry after reconnecting
  kDeadlineExceeded,   // the caller's deadline expired before completion
};

/// Returns the canonical name of a status code, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_unique<Rep>(Rep{code, std::move(message)})) {}

  Status(const Status& other)
      : rep_(other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr) {}
  Status& operator=(const Status& other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  std::string_view message() const {
    return rep_ ? std::string_view(rep_->message) : std::string_view();
  }

  /// Returns "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // nullptr means OK; keeps the common case allocation-free.
  std::unique_ptr<Rep> rep_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller of the enclosing function.
#define IMPLISTAT_RETURN_NOT_OK(expr)               \
  do {                                              \
    ::implistat::Status _st = (expr);               \
    if (!_st.ok()) return _st;                      \
  } while (false)

}  // namespace implistat

#endif  // IMPLISTAT_UTIL_STATUS_H_
