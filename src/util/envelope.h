// The self-describing envelope that frames every byte string crossing a
// durability or process boundary: checkpoints on disk (util/serde.h users)
// and request/response frames on a socket (src/net/wire.h).
//
//   offset  field
//   ------  -----------------------------------------------------------
//   0       magic (4 bytes, little-endian u32; identifies the envelope
//           family — snapshots and wire frames use different magics)
//   4       format version (varint)
//   ..      tag (1 byte; SnapshotKind for snapshots, message type for
//           wire frames)
//   ..      payload length (varint)
//   ..      payload bytes
//   end-4   CRC32C (little-endian u32) over every preceding byte
//
// Readers check, in order: magic, version, framing (lengths), CRC, then
// the tag — each failure is a distinct Status, never a crash, and never a
// partial parse of the payload. This header is the public surface; net
// code and estimators alike use it instead of reaching into serde
// internals.

#ifndef IMPLISTAT_UTIL_ENVELOPE_H_
#define IMPLISTAT_UTIL_ENVELOPE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"
#include "util/status_or.h"

namespace implistat {

/// CRC32C (Castagnoli) of `data`; software table implementation.
uint32_t Crc32c(std::string_view data);

// ---------------------------------------------------------------------------
// Generic tagged envelope. An envelope family is a (magic, version, name)
// triple; WrapEnvelope/UnwrapEnvelope are pure functions over it, so the
// snapshot envelope below and the net frame envelope (src/net/wire.h)
// share one implementation — and one set of corruption checks.
// ---------------------------------------------------------------------------

struct EnvelopeFamily {
  uint32_t magic;
  uint64_t version;
  /// Used in error messages ("snapshot: bad magic", "frame: bad magic").
  const char* name;
};

/// Wraps `payload` in an envelope of `family` carrying `tag`.
std::string WrapEnvelope(const EnvelopeFamily& family, uint8_t tag,
                         std::string_view payload);

/// Wraps `payload` stamped with an explicit `version` instead of
/// family.version — how a current-version peer answers an older client
/// in the client's own dialect (see src/net/wire.h v2 compatibility).
std::string WrapEnvelopeAt(const EnvelopeFamily& family, uint64_t version,
                           uint8_t tag, std::string_view payload);

/// Validates magic, version, framing and CRC; on success stores the tag
/// and returns a view of the payload (aliasing `bytes`, which must
/// outlive the result).
StatusOr<std::string_view> UnwrapEnvelope(const EnvelopeFamily& family,
                                          std::string_view bytes,
                                          uint8_t* tag);

/// Like UnwrapEnvelope, but accepts any version in
/// [min_version, family.version] and stores the envelope's actual
/// version in `*version` so the caller can interpret the payload (and
/// phrase its replies) in the peer's dialect.
StatusOr<std::string_view> UnwrapEnvelopeRange(const EnvelopeFamily& family,
                                               uint64_t min_version,
                                               std::string_view bytes,
                                               uint8_t* tag,
                                               uint64_t* version);

/// Reads just the tag of a valid-looking envelope (magic + version
/// checked, checksum not). Useful for dispatch before full validation.
StatusOr<uint8_t> PeekEnvelopeTag(const EnvelopeFamily& family,
                                  std::string_view bytes);

// ---------------------------------------------------------------------------
// Snapshot envelope: the durable-state family (magic "IMPS").
// ---------------------------------------------------------------------------

/// Identifies which estimator (or container) produced a snapshot payload.
/// Values are part of the wire format — append only, never renumber.
enum class SnapshotKind : uint8_t {
  kNipsCi = 1,           // NipsCi and ShardedNipsCi (interchangeable)
  kExactCounter = 2,     // ExactImplicationCounter
  kDistinctSampling = 3, // DistinctSampling
  kIlc = 4,              // Ilc (Implication Lossy Counting)
  kIss = 5,              // ImplicationStickySampling
  kLossyCounting = 6,    // plain frequent-items LossyCounting
  kStickySampling = 7,   // plain frequent-items StickySampling
  kSlidingNipsCi = 8,    // SlidingNipsCi / SlidingNipsCiEstimator
  kQueryEngine = 9,      // full QueryEngine checkpoint (legacy 1:1 layout)
  kIncrementalTracker = 10,  // IncrementalTracker checkpoint vector
  kValueDictionary = 11,     // per-attribute ValueDictionary vector
  kQueryEngineV2 = 12,   // QueryEngine checkpoint with a synopsis store
  kSynopsisStore = 13,   // shared-synopsis section nested in kQueryEngineV2
  kTriggerStore = 14,    // armed-trigger section nested in kQueryEngineV2
  kDeltaSnapshot = 15,   // delta patch between two epochs (src/delta/)
};

/// Canonical lowercase name of a snapshot kind (for error messages).
const char* SnapshotKindName(SnapshotKind kind);

inline constexpr uint32_t kSnapshotMagic = 0x53504d49;  // "IMPS"
inline constexpr uint64_t kSnapshotFormatVersion = 1;

inline constexpr EnvelopeFamily kSnapshotEnvelope{
    kSnapshotMagic, kSnapshotFormatVersion, "snapshot"};

/// Wraps `payload` in a snapshot envelope tagged `kind`.
std::string WrapSnapshot(SnapshotKind kind, std::string_view payload);

/// Validates the envelope and returns a view of the payload (aliasing
/// `bytes`, which must outlive the result). Rejects bad magic, version
/// skew, kind mismatch against `expected_kind`, truncation/length
/// mismatch, and checksum failure — each with a descriptive Status.
StatusOr<std::string_view> UnwrapSnapshot(std::string_view bytes,
                                          SnapshotKind expected_kind);

/// Reads just the kind tag of a valid-looking envelope (magic + version
/// checked, checksum not). Useful for dispatch before full validation.
StatusOr<SnapshotKind> PeekSnapshotKind(std::string_view bytes);

}  // namespace implistat

#endif  // IMPLISTAT_UTIL_ENVELOPE_H_
