// Deterministic pseudo-random generation.
//
// Two layers: SplitMix64 for seeding/stateless mixing, and Xoshiro256**
// as the workhorse generator for workload synthesis. Both are seeded
// explicitly so every experiment in this repository is reproducible.

#ifndef IMPLISTAT_UTIL_RANDOM_H_
#define IMPLISTAT_UTIL_RANDOM_H_

#include <cstdint>

namespace implistat {

/// One step of the SplitMix64 mixing function: a high-quality stateless
/// 64-bit mixer (also usable as an integer hash finalizer).
uint64_t SplitMix64(uint64_t x);

/// Xoshiro256** PRNG. Satisfies the UniformRandomBitGenerator concept so it
/// can drive <random> distributions, but the methods below avoid the
/// distribution objects for speed and cross-platform determinism.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  using result_type = uint64_t;
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~uint64_t{0}; }
  uint64_t operator()() { return Next64(); }

  uint64_t Next64();

  /// Uniform integer in [0, bound). Requires bound > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t Uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t UniformRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Derives an independent generator; useful for giving each component of
  /// an experiment its own stream without correlated state.
  Rng Fork();

  /// The raw 256-bit generator state, for checkpointing. A restored Rng
  /// continues the exact sequence the saved one would have produced.
  struct State {
    uint64_t words[4];
  };
  State state() const { return {{s_[0], s_[1], s_[2], s_[3]}}; }

  /// Restores a previously captured state. Returns false (and leaves the
  /// generator unchanged) for the all-zero state, which Xoshiro256**
  /// cannot escape.
  bool set_state(const State& state) {
    if ((state.words[0] | state.words[1] | state.words[2] |
         state.words[3]) == 0) {
      return false;
    }
    for (int i = 0; i < 4; ++i) s_[i] = state.words[i];
    return true;
  }

 private:
  uint64_t s_[4];
};

}  // namespace implistat

#endif  // IMPLISTAT_UTIL_RANDOM_H_
