#include "util/status.h"

namespace implistat {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += rep_->message;
  return out;
}

}  // namespace implistat
