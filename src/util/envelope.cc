#include "util/envelope.h"

#include <cstring>
#include <string>

#include "util/serde.h"

namespace implistat {

namespace {

// CRC32C (Castagnoli, reflected polynomial 0x82f63b78). Every wire
// frame — including the OBSERVE_BATCH ingest path — and every
// checkpoint passes through this, so it dispatches at first use to the
// SSE4.2 crc32 instruction when the CPU has it (8 bytes/cycle-ish) and
// falls back to a 256-entry table built at static-init time.
struct Crc32cTable {
  uint32_t entries[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0x82f63b78u : 0);
      }
      entries[i] = crc;
    }
  }
};

const Crc32cTable& CrcTable() {
  static const Crc32cTable table;
  return table;
}

// Shared header parse for unwrap/peek: checks magic and that the version
// falls in [min_version, family.version], leaves `reader` positioned at
// the tag byte. `version_out` may be null.
Status ReadEnvelopeHeader(const EnvelopeFamily& family, uint64_t min_version,
                          ByteReader& reader, uint64_t* version_out) {
  const std::string what(family.name);
  uint32_t magic;
  IMPLISTAT_RETURN_NOT_OK(reader.ReadU32(&magic));
  if (magic != family.magic) {
    return Status::InvalidArgument(what + ": bad magic (not a " + what +
                                   "?)");
  }
  uint64_t version;
  IMPLISTAT_RETURN_NOT_OK(reader.ReadVarint64(&version));
  if (version < min_version || version > family.version) {
    return Status::InvalidArgument(
        what + ": unsupported format version " + std::to_string(version) +
        " (this build reads versions " + std::to_string(min_version) +
        ".." + std::to_string(family.version) + ")");
  }
  if (version_out != nullptr) *version_out = version;
  return Status::OK();
}

// Body shared by the exact and ranged unwraps: tag, payload length,
// payload, CRC — with `reader` already past the header.
StatusOr<std::string_view> UnwrapEnvelopeBody(const EnvelopeFamily& family,
                                              std::string_view bytes,
                                              ByteReader& reader,
                                              uint8_t* tag) {
  const std::string what(family.name);
  uint8_t tag_byte;
  IMPLISTAT_RETURN_NOT_OK(reader.ReadU8(&tag_byte));
  uint64_t payload_len;
  IMPLISTAT_RETURN_NOT_OK(reader.ReadVarint64(&payload_len));
  if (payload_len > reader.remaining()) {
    return Status::OutOfRange(what + ": truncated payload");
  }
  std::string_view payload;
  IMPLISTAT_RETURN_NOT_OK(reader.ReadBytes(payload_len, &payload));
  uint32_t stored_crc;
  if (reader.remaining() != sizeof(stored_crc)) {
    return Status::InvalidArgument(what + ": trailing bytes after payload");
  }
  IMPLISTAT_RETURN_NOT_OK(reader.ReadU32(&stored_crc));
  uint32_t actual_crc =
      Crc32c(bytes.substr(0, bytes.size() - sizeof(stored_crc)));
  if (stored_crc != actual_crc) {
    return Status::InvalidArgument(what +
                                   ": CRC32C mismatch (corrupt " + what +
                                   ")");
  }
  *tag = tag_byte;
  return payload;
}

}  // namespace

namespace {

uint32_t Crc32cTableWalk(std::string_view data) {
  const Crc32cTable& table = CrcTable();
  uint32_t crc = ~0u;
  for (char c : data) {
    crc = (crc >> 8) ^ table.entries[(crc ^ static_cast<uint8_t>(c)) & 0xff];
  }
  return ~crc;
}

#if defined(__x86_64__) || defined(__i386__)
__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(
    std::string_view data) {
  uint64_t crc = ~0u;
  const char* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    crc = __builtin_ia32_crc32di(crc, chunk);
    p += 8;
    n -= 8;
  }
  uint32_t crc32 = static_cast<uint32_t>(crc);
  while (n > 0) {
    crc32 = __builtin_ia32_crc32qi(crc32, static_cast<uint8_t>(*p));
    ++p;
    --n;
  }
  return ~crc32;
}
#endif

uint32_t (*ResolveCrc32c())(std::string_view) {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("sse4.2")) return &Crc32cHardware;
#endif
  return &Crc32cTableWalk;
}

}  // namespace

uint32_t Crc32c(std::string_view data) {
  static uint32_t (*const impl)(std::string_view) = ResolveCrc32c();
  return impl(data);
}

std::string WrapEnvelope(const EnvelopeFamily& family, uint8_t tag,
                         std::string_view payload) {
  return WrapEnvelopeAt(family, family.version, tag, payload);
}

std::string WrapEnvelopeAt(const EnvelopeFamily& family, uint64_t version,
                           uint8_t tag, std::string_view payload) {
  ByteWriter out;
  out.PutU32(family.magic);
  out.PutVarint64(version);
  out.PutU8(tag);
  out.PutVarint64(payload.size());
  out.PutBytes(payload);
  std::string bytes = out.Release();
  uint32_t crc = Crc32c(bytes);
  bytes.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return bytes;
}

StatusOr<std::string_view> UnwrapEnvelope(const EnvelopeFamily& family,
                                          std::string_view bytes,
                                          uint8_t* tag) {
  ByteReader reader(bytes);
  IMPLISTAT_RETURN_NOT_OK(
      ReadEnvelopeHeader(family, family.version, reader, nullptr));
  return UnwrapEnvelopeBody(family, bytes, reader, tag);
}

StatusOr<std::string_view> UnwrapEnvelopeRange(const EnvelopeFamily& family,
                                               uint64_t min_version,
                                               std::string_view bytes,
                                               uint8_t* tag,
                                               uint64_t* version) {
  ByteReader reader(bytes);
  IMPLISTAT_RETURN_NOT_OK(
      ReadEnvelopeHeader(family, min_version, reader, version));
  return UnwrapEnvelopeBody(family, bytes, reader, tag);
}

StatusOr<uint8_t> PeekEnvelopeTag(const EnvelopeFamily& family,
                                  std::string_view bytes) {
  ByteReader reader(bytes);
  IMPLISTAT_RETURN_NOT_OK(
      ReadEnvelopeHeader(family, family.version, reader, nullptr));
  uint8_t tag_byte;
  IMPLISTAT_RETURN_NOT_OK(reader.ReadU8(&tag_byte));
  return tag_byte;
}

const char* SnapshotKindName(SnapshotKind kind) {
  switch (kind) {
    case SnapshotKind::kNipsCi: return "nips_ci";
    case SnapshotKind::kExactCounter: return "exact_counter";
    case SnapshotKind::kDistinctSampling: return "distinct_sampling";
    case SnapshotKind::kIlc: return "ilc";
    case SnapshotKind::kIss: return "implication_sticky_sampling";
    case SnapshotKind::kLossyCounting: return "lossy_counting";
    case SnapshotKind::kStickySampling: return "sticky_sampling";
    case SnapshotKind::kSlidingNipsCi: return "sliding_nips_ci";
    case SnapshotKind::kQueryEngine: return "query_engine";
    case SnapshotKind::kIncrementalTracker: return "incremental_tracker";
    case SnapshotKind::kValueDictionary: return "value_dictionary";
    case SnapshotKind::kQueryEngineV2: return "query_engine_v2";
    case SnapshotKind::kSynopsisStore: return "synopsis_store";
    case SnapshotKind::kTriggerStore: return "trigger_store";
    case SnapshotKind::kDeltaSnapshot: return "delta_snapshot";
  }
  return "unknown";
}

std::string WrapSnapshot(SnapshotKind kind, std::string_view payload) {
  return WrapEnvelope(kSnapshotEnvelope, static_cast<uint8_t>(kind), payload);
}

StatusOr<std::string_view> UnwrapSnapshot(std::string_view bytes,
                                          SnapshotKind expected_kind) {
  uint8_t tag;
  IMPLISTAT_ASSIGN_OR_RETURN(std::string_view payload,
                             UnwrapEnvelope(kSnapshotEnvelope, bytes, &tag));
  if (tag != static_cast<uint8_t>(expected_kind)) {
    return Status::InvalidArgument(
        std::string("snapshot: kind mismatch: expected ") +
        SnapshotKindName(expected_kind) + ", found tag " +
        std::to_string(tag));
  }
  return payload;
}

StatusOr<SnapshotKind> PeekSnapshotKind(std::string_view bytes) {
  IMPLISTAT_ASSIGN_OR_RETURN(uint8_t tag,
                             PeekEnvelopeTag(kSnapshotEnvelope, bytes));
  return static_cast<SnapshotKind>(tag);
}

}  // namespace implistat
