#include "util/fileio.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace implistat {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

// Directory of `path` for the post-rename fsync ("." when no separator).
std::string DirnameOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

StatusOr<std::string> ReadFileToString(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open", path);
  std::string contents;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = Errno("read", path);
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    contents.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return contents;
}

Status WriteFileAtomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open", tmp);

  auto fail = [&](const std::string& what) {
    Status status = Errno(what, tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  };

  std::string_view rest = contents;
  while (!rest.empty()) {
    ssize_t n = ::write(fd, rest.data(), rest.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail("write");
    }
    rest.remove_prefix(static_cast<size_t>(n));
  }
  if (::fsync(fd) != 0) return fail("fsync");
  if (::close(fd) != 0) {
    Status status = Errno("close", tmp);
    ::unlink(tmp.c_str());
    return status;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status status = Errno("rename", tmp);
    ::unlink(tmp.c_str());
    return status;
  }

  // Make the rename durable: fsync the directory entry. Failure here is
  // reported (the data might not survive a power cut) but the file is
  // already complete and consistent.
  const std::string dir = DirnameOf(path);
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) return Errno("open directory", dir);
  if (::fsync(dfd) != 0) {
    Status status = Errno("fsync directory", dir);
    ::close(dfd);
    return status;
  }
  ::close(dfd);
  return Status::OK();
}

}  // namespace implistat
