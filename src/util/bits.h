// Bit-manipulation helpers used by the probabilistic counting machinery.
//
// The central primitive is RhoLsb(y): the 0-based position of the least
// significant 1-bit — the paper's p(y) function (§4.1.1), which decides the
// bitmap cell an itemset hashes into.

#ifndef IMPLISTAT_UTIL_BITS_H_
#define IMPLISTAT_UTIL_BITS_H_

#include <bit>
#include <cstdint>

namespace implistat {

/// Position of the least significant 1-bit of `y`, 0-based; the paper's
/// p(y). Returns 64 for y == 0 (no 1-bit at all).
inline int RhoLsb(uint64_t y) { return y == 0 ? 64 : std::countr_zero(y); }

/// Position of the most significant 1-bit, 0-based; -1 for y == 0.
inline int MsbPosition(uint64_t y) {
  return y == 0 ? -1 : 63 - std::countl_zero(y);
}

/// Number of leading zeros of `y` in a w-bit register (HyperLogLog rank
/// helper). Requires 1 <= w <= 64.
inline int LeadingZeros(uint64_t y, int w) {
  if (y == 0) return w;
  int lz = std::countl_zero(y) - (64 - w);
  return lz < 0 ? 0 : lz;
}

inline int PopCount(uint64_t y) { return std::popcount(y); }

/// True when `y` is a power of two (and nonzero).
inline bool IsPowerOfTwo(uint64_t y) { return y != 0 && (y & (y - 1)) == 0; }

/// Smallest power of two >= y (y = 0 maps to 1).
inline uint64_t NextPowerOfTwo(uint64_t y) {
  return y <= 1 ? 1 : uint64_t{1} << (64 - std::countl_zero(y - 1));
}

/// ceil(log2(y)) for y >= 1.
inline int CeilLog2(uint64_t y) {
  return y <= 1 ? 0 : 64 - std::countl_zero(y - 1);
}

/// floor(log2(y)) for y >= 1.
inline int FloorLog2(uint64_t y) { return MsbPosition(y); }

}  // namespace implistat

#endif  // IMPLISTAT_UTIL_BITS_H_
