#include "hash/hash_family.h"

#include "hash/linear_gf2.h"
#include "hash/multiply_shift.h"
#include "hash/tabulation.h"
#include "util/logging.h"
#include "util/random.h"

namespace implistat {

std::unique_ptr<Hasher64> MakeHasher(HashKind kind, uint64_t seed) {
  switch (kind) {
    case HashKind::kMix:
      return std::make_unique<MixHasher>(seed);
    case HashKind::kMultiplyShift:
      return std::make_unique<MultiplyShiftHasher>(seed);
    case HashKind::kTabulation:
      return std::make_unique<TabulationHasher>(seed);
    case HashKind::kLinearGf2:
      return std::make_unique<LinearGf2Hasher>(seed);
  }
  IMPLISTAT_CHECK(false) << "unknown HashKind";
  return nullptr;
}

std::unique_ptr<Hasher64> HashFamily::Make(uint64_t index) const {
  return MakeHasher(kind_, SplitMix64(master_seed_ + 0x1234567 + index));
}

}  // namespace implistat
