// Simple tabulation hashing (Zobrist / Patrascu–Thorup).
//
// The 64-bit key is split into 8 bytes; each byte indexes a table of random
// 64-bit words and the results are XOR-ed. 3-independent, and known to
// behave like full randomness for many streaming estimators — a good match
// for the bitmap sketches here when the mix hasher is considered too
// "magical" for an analysis.

#ifndef IMPLISTAT_HASH_TABULATION_H_
#define IMPLISTAT_HASH_TABULATION_H_

#include <array>
#include <cstdint>
#include <memory>

#include "hash/hash64.h"

namespace implistat {

class TabulationHasher final : public Hasher64 {
 public:
  explicit TabulationHasher(uint64_t seed);

  uint64_t Hash(uint64_t key) const override;
  std::unique_ptr<Hasher64> Clone() const override;

 private:
  // 8 tables of 256 random words, filled from the seed.
  std::array<std::array<uint64_t, 256>, 8> tables_;
};

}  // namespace implistat

#endif  // IMPLISTAT_HASH_TABULATION_H_
