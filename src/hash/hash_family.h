// Seeded families of hash functions.
//
// A HashFamily hands out independent Hasher64 instances by index — one per
// bitmap of a stochastic-averaging ensemble, one per trial of an
// experiment — deterministically from a master seed.

#ifndef IMPLISTAT_HASH_HASH_FAMILY_H_
#define IMPLISTAT_HASH_HASH_FAMILY_H_

#include <cstdint>
#include <memory>

#include "hash/hash64.h"

namespace implistat {

enum class HashKind {
  kMix,            // SplitMix64 finalizer (default)
  kMultiplyShift,  // 2-independent
  kTabulation,     // 3-independent
  kLinearGf2,      // GF(2) linear, bijective
};

std::unique_ptr<Hasher64> MakeHasher(HashKind kind, uint64_t seed);

class HashFamily {
 public:
  HashFamily(HashKind kind, uint64_t master_seed)
      : kind_(kind), master_seed_(master_seed) {}

  /// The i-th member of the family; members for distinct i are seeded
  /// independently (SplitMix64 of the master seed and index).
  std::unique_ptr<Hasher64> Make(uint64_t index) const;

  HashKind kind() const { return kind_; }
  uint64_t master_seed() const { return master_seed_; }

 private:
  HashKind kind_;
  uint64_t master_seed_;
};

}  // namespace implistat

#endif  // IMPLISTAT_HASH_HASH_FAMILY_H_
