#include "hash/multiply_shift.h"

#include "util/random.h"

namespace implistat {

namespace {
unsigned __int128 Combine(uint64_t hi, uint64_t lo) {
  return (static_cast<unsigned __int128>(hi) << 64) | lo;
}
}  // namespace

MultiplyShiftHasher::MultiplyShiftHasher(uint64_t seed) {
  Rng rng(seed);
  a_ = Combine(rng.Next64(), rng.Next64() | 1);  // odd multiplier
  b_ = Combine(rng.Next64(), rng.Next64());
}

MultiplyShiftHasher::MultiplyShiftHasher(uint64_t a_hi, uint64_t a_lo,
                                         uint64_t b_hi, uint64_t b_lo)
    : a_(Combine(a_hi, a_lo | 1)), b_(Combine(b_hi, b_lo)) {}

uint64_t MultiplyShiftHasher::Hash(uint64_t key) const {
  unsigned __int128 v = a_ * key + b_;
  return static_cast<uint64_t>(v >> 64);
}

std::unique_ptr<Hasher64> MultiplyShiftHasher::Clone() const {
  auto copy = std::make_unique<MultiplyShiftHasher>(0);
  copy->a_ = a_;
  copy->b_ = b_;
  return copy;
}

}  // namespace implistat
