#include "hash/linear_gf2.h"

#include "util/random.h"

namespace implistat {

namespace {

// Gaussian elimination over GF(2): true iff the 64 columns are linearly
// independent (matrix nonsingular).
bool IsNonsingular(const std::array<uint64_t, 64>& columns) {
  std::array<uint64_t, 64> rows = columns;  // treat as row vectors; rank is
                                            // the same for M and M^T.
  int rank = 0;
  for (int bit = 63; bit >= 0 && rank < 64; --bit) {
    int pivot = -1;
    for (int i = rank; i < 64; ++i) {
      if ((rows[i] >> bit) & 1) {
        pivot = i;
        break;
      }
    }
    if (pivot < 0) continue;
    std::swap(rows[rank], rows[pivot]);
    for (int i = 0; i < 64; ++i) {
      if (i != rank && ((rows[i] >> bit) & 1)) rows[i] ^= rows[rank];
    }
    ++rank;
  }
  return rank == 64;
}

}  // namespace

LinearGf2Hasher::LinearGf2Hasher(uint64_t seed) {
  Rng rng(seed);
  do {
    for (auto& col : columns_) col = rng.Next64();
  } while (!IsNonsingular(columns_));
  offset_ = rng.Next64();
}

uint64_t LinearGf2Hasher::Hash(uint64_t key) const {
  // M·x = XOR of the columns selected by the 1-bits of x.
  uint64_t h = offset_;
  uint64_t x = key;
  while (x) {
    int j = __builtin_ctzll(x);
    h ^= columns_[j];
    x &= x - 1;
  }
  return h;
}

std::unique_ptr<Hasher64> LinearGf2Hasher::Clone() const {
  auto copy = std::make_unique<LinearGf2Hasher>(*this);
  return copy;
}

}  // namespace implistat
