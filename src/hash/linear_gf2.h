// Linear hash functions over GF(2).
//
// h(x) = M·x ⊕ c where M is a random 64×64 bit matrix and c a random
// vector, all arithmetic over GF(2). This is the "linear hash function"
// family the paper's approximation section (§4.7.1) and Alon–Matias–
// Szegedy's F0 analysis use: for such h the probabilistic-counting bound
// P[(1/c) ≤ F̂0/F0 ≤ c] ≥ 1 − 2/c holds.

#ifndef IMPLISTAT_HASH_LINEAR_GF2_H_
#define IMPLISTAT_HASH_LINEAR_GF2_H_

#include <array>
#include <cstdint>
#include <memory>

#include "hash/hash64.h"

namespace implistat {

class LinearGf2Hasher final : public Hasher64 {
 public:
  /// Draws the matrix rows and offset from `seed`. Rows are re-drawn until
  /// the matrix is nonsingular so the map is a bijection (distinct keys
  /// stay distinct, which the fringe-zone bookkeeping relies on).
  explicit LinearGf2Hasher(uint64_t seed);

  uint64_t Hash(uint64_t key) const override;
  std::unique_ptr<Hasher64> Clone() const override;

 private:
  // columns_[j] is the j-th column of M, so M·x = XOR of columns where x
  // has a 1-bit; evaluated with a parity trick per row instead (see .cc).
  std::array<uint64_t, 64> columns_;
  uint64_t offset_;
};

}  // namespace implistat

#endif  // IMPLISTAT_HASH_LINEAR_GF2_H_
