#include "hash/hash64.h"

#include "util/random.h"

namespace implistat {

MixHasher::MixHasher(uint64_t seed) : mask_(SplitMix64(seed)) {}

uint64_t MixHasher::Hash(uint64_t key) const {
  return SplitMix64(key ^ mask_);
}

std::unique_ptr<Hasher64> MixHasher::Clone() const {
  auto copy = std::make_unique<MixHasher>(0);
  copy->mask_ = mask_;
  return copy;
}

uint64_t MixHash(uint64_t key, uint64_t seed) {
  return SplitMix64(key ^ SplitMix64(seed));
}

}  // namespace implistat
