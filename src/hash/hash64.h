// 64-bit hash function abstraction.
//
// NIPS/CI and every sketch in this repository consume hashes through the
// Hasher64 interface so that hash families can be swapped: the default
// mixer (SplitMix64 finalizer), 2-independent multiply-shift, 3-independent
// tabulation, and the GF(2) linear family the paper's (ε,δ) analysis
// (§4.7.1, following Alon–Matias–Szegedy) relies on.

#ifndef IMPLISTAT_HASH_HASH64_H_
#define IMPLISTAT_HASH_HASH64_H_

#include <cstdint>
#include <memory>

namespace implistat {

class Hasher64 {
 public:
  virtual ~Hasher64() = default;

  /// Maps a 64-bit key to a 64-bit hash, uniform over binary strings of
  /// length 64 for a random member of the family.
  virtual uint64_t Hash(uint64_t key) const = 0;

  /// Clones this hasher (same seed / tables).
  virtual std::unique_ptr<Hasher64> Clone() const = 0;
};

/// Stateless strong mixer: SplitMix64 of the key XOR-ed with a *mixed*
/// seed mask. The mask is SplitMix64(seed), not the raw seed: with a raw
/// mask, seeds differing only in low bits would XOR-permute any dense key
/// set onto itself and "independent" trials would see identical hash
/// multisets. Excellent avalanche; the default everywhere.
class MixHasher final : public Hasher64 {
 public:
  explicit MixHasher(uint64_t seed);
  uint64_t Hash(uint64_t key) const override;
  std::unique_ptr<Hasher64> Clone() const override;
 private:
  uint64_t mask_;
};

/// Convenience free function: MixHasher(seed).Hash(key) without the
/// object. Mixes the seed on every call; prefer the class in hot loops.
uint64_t MixHash(uint64_t key, uint64_t seed);

}  // namespace implistat

#endif  // IMPLISTAT_HASH_HASH64_H_
