#include "hash/tabulation.h"

#include "util/random.h"

namespace implistat {

TabulationHasher::TabulationHasher(uint64_t seed) {
  Rng rng(seed);
  for (auto& table : tables_) {
    for (auto& word : table) word = rng.Next64();
  }
}

uint64_t TabulationHasher::Hash(uint64_t key) const {
  uint64_t h = 0;
  for (int i = 0; i < 8; ++i) {
    h ^= tables_[i][(key >> (8 * i)) & 0xff];
  }
  return h;
}

std::unique_ptr<Hasher64> TabulationHasher::Clone() const {
  auto copy = std::make_unique<TabulationHasher>(0);
  copy->tables_ = tables_;
  return copy;
}

}  // namespace implistat
