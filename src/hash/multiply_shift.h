// 2-independent multiply-shift hashing (Dietzfelbinger et al.).
//
// h(x) = ((a*x + b) mod 2^128) >> 64 computed in 128-bit arithmetic with
// odd multiplier a. Pairwise independence is what the classic analysis of
// probabilistic counting assumes of its hash functions.

#ifndef IMPLISTAT_HASH_MULTIPLY_SHIFT_H_
#define IMPLISTAT_HASH_MULTIPLY_SHIFT_H_

#include <cstdint>
#include <memory>

#include "hash/hash64.h"

namespace implistat {

class MultiplyShiftHasher final : public Hasher64 {
 public:
  /// Draws (a, b) from `seed`; `a` is forced odd.
  explicit MultiplyShiftHasher(uint64_t seed);

  /// Constructs with explicit parameters (a is forced odd).
  MultiplyShiftHasher(uint64_t a_hi, uint64_t a_lo, uint64_t b_hi,
                      uint64_t b_lo);

  uint64_t Hash(uint64_t key) const override;
  std::unique_ptr<Hasher64> Clone() const override;

 private:
  unsigned __int128 a_;
  unsigned __int128 b_;
};

}  // namespace implistat

#endif  // IMPLISTAT_HASH_MULTIPLY_SHIFT_H_
