#include "cql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace implistat {
namespace cql {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentBody(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '.' || c == '-';
}

}  // namespace

bool Token::IsKeyword(std::string_view kw) const {
  return kind == TokenKind::kIdent && EqualsIgnoreCase(text, kw);
}

StatusOr<std::vector<Token>> Tokenize(std::string_view source,
                                      Diagnostic* diag) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = source.size();
  auto fail = [&](size_t at, size_t len, std::string message) -> Status {
    if (diag != nullptr) *diag = Diagnostic{std::move(message), {at, len}};
    return Status::InvalidArgument("lex error");
  };
  while (i < n) {
    char c = source[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '-' && i + 1 < n && source[i + 1] == '-') {
      // SQL-style comment to end of line.
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      while (i < n && IsIdentBody(source[i])) ++i;
      Token t;
      t.kind = TokenKind::kIdent;
      t.text = source.substr(start, i - start);
      t.span = {start, i - start};
      tokens.push_back(t);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(source[i + 1])))) {
      while (i < n && (std::isdigit(static_cast<unsigned char>(source[i])) ||
                       source[i] == '.')) {
        ++i;
      }
      if (i < n && (source[i] == 'e' || source[i] == 'E')) {
        size_t j = i + 1;
        if (j < n && (source[j] == '+' || source[j] == '-')) ++j;
        if (j < n && std::isdigit(static_cast<unsigned char>(source[j]))) {
          i = j;
          while (i < n && std::isdigit(static_cast<unsigned char>(source[i]))) {
            ++i;
          }
        }
      }
      std::string text(source.substr(start, i - start));
      char* end = nullptr;
      double value = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return fail(start, i - start, "malformed numeric literal");
      }
      Token t;
      t.kind = TokenKind::kNumber;
      t.text = source.substr(start, i - start);
      t.span = {start, i - start};
      t.number = value;
      tokens.push_back(t);
      continue;
    }
    if (c == '\'') {
      ++i;
      size_t body = i;
      while (i < n && source[i] != '\'') ++i;
      if (i >= n) {
        return fail(start, 1, "unterminated string literal");
      }
      Token t;
      t.kind = TokenKind::kString;
      t.text = source.substr(body, i - body);
      t.span = {start, i - start + 1};
      tokens.push_back(t);
      ++i;  // closing quote
      continue;
    }
    // Two-character operators first, then single punctuation.
    static constexpr std::string_view kTwoChar[] = {"<=", ">=", "!=", "==",
                                                    "&&", "||"};
    std::string_view rest = source.substr(i);
    bool matched = false;
    for (std::string_view op : kTwoChar) {
      if (rest.substr(0, op.size()) == op) {
        Token t;
        t.kind = TokenKind::kPunct;
        t.text = source.substr(i, op.size());
        t.span = {i, op.size()};
        tokens.push_back(t);
        i += op.size();
        matched = true;
        break;
      }
    }
    if (matched) continue;
    static constexpr std::string_view kOneChar = "()+-*/%<>=,!";
    if (kOneChar.find(c) != std::string_view::npos) {
      Token t;
      t.kind = TokenKind::kPunct;
      t.text = source.substr(i, 1);
      t.span = {i, 1};
      tokens.push_back(t);
      ++i;
      continue;
    }
    return fail(i, 1, std::string("unexpected character '") + c + "'");
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.text = std::string_view();
  end.span = {n, 1};
  tokens.push_back(end);
  return tokens;
}

}  // namespace cql
}  // namespace implistat
