// Position-annotated diagnostics with source-line caret rendering.
//
// Every stage of the continuous-query frontend (lexer, parser, sema)
// reports errors through Diagnostic rather than bare strings, so a user
// who typos a trigger rule sees *where* the problem is:
//
//   trigger parse error at 1:24: unknown query label 'laoyl'
//     CREATE TRIGGER t ON x WHEN laoyl > 10
//                            ^
//
// The same machinery backs ParseImplicationQuery's SELECT grammar (see
// query/parser.cc), keeping one rendering style across both languages.

#ifndef IMPLISTAT_CQL_DIAG_H_
#define IMPLISTAT_CQL_DIAG_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "util/status.h"

namespace implistat {
namespace cql {

/// A half-open byte range into the source text being compiled. `offset`
/// is 0-based; rendering converts to 1-based line:column.
struct SourceSpan {
  size_t offset = 0;
  size_t length = 1;
};

struct Diagnostic {
  std::string message;
  SourceSpan span;
};

/// 1-based line/column for an offset into `source`.
struct LineCol {
  size_t line = 1;
  size_t column = 1;
};
LineCol LocateOffset(std::string_view source, size_t offset);

/// Renders `diag` against its source as a multi-line, human-readable
/// message: a "<prefix> at L:C: <message>" header, the offending source
/// line, and a caret underlining the span.
std::string RenderDiagnostic(std::string_view source, const Diagnostic& diag,
                             std::string_view prefix);

/// Convenience: RenderDiagnostic wrapped in InvalidArgument.
Status DiagnosticToStatus(std::string_view source, const Diagnostic& diag,
                          std::string_view prefix);

}  // namespace cql
}  // namespace implistat

#endif  // IMPLISTAT_CQL_DIAG_H_
