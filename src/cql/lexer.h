// Tokenizer for the continuous-query trigger language.
//
// Tokens carry their byte span in the source so every later stage can
// attach a caret diagnostic (cql/diag.h). Keywords are not distinguished
// here: identifiers are classified case-insensitively by the parser, so
// `create trigger` and `CREATE TRIGGER` both work while query labels stay
// case-sensitive.

#ifndef IMPLISTAT_CQL_LEXER_H_
#define IMPLISTAT_CQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "cql/diag.h"
#include "util/status_or.h"

namespace implistat {
namespace cql {

enum class TokenKind : uint8_t {
  kIdent,   // bare identifier or keyword
  kNumber,  // decimal literal, optional fraction/exponent
  kString,  // 'single quoted', used for labels with spaces
  kPunct,   // operators and delimiters, possibly two chars (<= >= != &&)
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string_view text;  // aliases the source buffer
  SourceSpan span;
  double number = 0.0;  // valid when kind == kNumber

  bool IsPunct(std::string_view p) const {
    return kind == TokenKind::kPunct && text == p;
  }
  /// Case-insensitive keyword test for kIdent tokens.
  bool IsKeyword(std::string_view kw) const;
};

/// Tokenizes `source` in full (the kEnd sentinel is appended on success).
/// On failure returns a caret-renderable Diagnostic via `diag`.
StatusOr<std::vector<Token>> Tokenize(std::string_view source,
                                      Diagnostic* diag);

}  // namespace cql
}  // namespace implistat

#endif  // IMPLISTAT_CQL_LEXER_H_
