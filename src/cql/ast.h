// Abstract syntax for trigger rules.
//
//   CREATE TRIGGER <name> ON <query-label>
//     WHEN <expr> [EVERY <n> TUPLES] [COOLDOWN <n>]
//
// <expr> is arithmetic/comparison over query estimates (bare labels or
// the VALUE keyword for the ON label), MOVING_AVG(label, window),
// DELTA(label), and numeric literals. Nodes keep their source span so
// sema can point a caret at the exact subexpression it rejects.

#ifndef IMPLISTAT_CQL_AST_H_
#define IMPLISTAT_CQL_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cql/diag.h"

namespace implistat {
namespace cql {

enum class ExprKind : uint8_t {
  kLiteral,    // numeric constant
  kLabelRef,   // current estimate of a registered query (or VALUE)
  kMovingAvg,  // MOVING_AVG(label, window)
  kDelta,      // DELTA(label): estimate now minus previous epoch
  kUnary,      // - !
  kBinary,     // + - * / % < <= > >= = != AND OR
};

enum class BinaryOp : uint8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kLt,
  kLe,
  kGt,
  kGe,
  kEq,
  kNe,
  kAnd,
  kOr,
};

enum class UnaryOp : uint8_t { kNeg, kNot };

struct Expr {
  ExprKind kind = ExprKind::kLiteral;
  SourceSpan span;

  double literal = 0.0;        // kLiteral
  std::string label;           // kLabelRef/kMovingAvg/kDelta; empty = VALUE
  bool label_is_value = false;  // true when written as the VALUE keyword
  uint64_t window = 0;         // kMovingAvg
  BinaryOp binary_op = BinaryOp::kAdd;
  UnaryOp unary_op = UnaryOp::kNeg;
  std::unique_ptr<Expr> lhs;  // kUnary operand / kBinary left
  std::unique_ptr<Expr> rhs;  // kBinary right
};

/// A parsed-but-unresolved CREATE TRIGGER statement.
struct TriggerDecl {
  std::string name;
  std::string on_label;
  SourceSpan on_label_span;
  std::unique_ptr<Expr> condition;
  uint64_t every_tuples = 0;    // 0: engine default
  uint64_t cooldown_tuples = 0;  // 0: no cooldown
};

}  // namespace cql
}  // namespace implistat

#endif  // IMPLISTAT_CQL_AST_H_
