// Semantic analysis + compilation: resolve labels against the registered
// queries, type-check (arithmetic over numbers, comparisons yield
// booleans, WHEN must be boolean), and lower the AST to postfix bytecode.
//
// Label resolution goes through the LabelCatalog interface so this layer
// stays below query/ in the library graph: QueryEngine implements the
// catalog, cql never includes it.

#ifndef IMPLISTAT_CQL_SEMA_H_
#define IMPLISTAT_CQL_SEMA_H_

#include <string>
#include <string_view>

#include "cql/ast.h"
#include "cql/bytecode.h"
#include "util/status_or.h"

namespace implistat {
namespace cql {

class LabelCatalog {
 public:
  virtual ~LabelCatalog() = default;
  /// True when a registered, active query carries this label.
  virtual bool HasLabel(std::string_view label) const = 0;
};

/// Moving-average windows are bounded: each (trigger, slot) keeps a ring
/// of `window` doubles across checkpoints.
inline constexpr uint64_t kMaxMovingAvgWindow = 1 << 16;

/// A fully compiled trigger, ready to arm.
struct CompiledTrigger {
  std::string name;
  std::string source;    // original statement text, kept for display
  std::string on_label;  // resolved subject query
  uint64_t every_tuples = 0;
  uint64_t cooldown_tuples = 0;
  Program program;
};

/// Parses, resolves, type-checks, and compiles one CREATE TRIGGER
/// statement. `default_every` fills in a missing EVERY clause. Errors
/// are caret-rendered against `source`.
StatusOr<CompiledTrigger> CompileTrigger(std::string_view source,
                                         const LabelCatalog& catalog,
                                         uint64_t default_every);

/// Compiles an already-parsed declaration (shared by CompileTrigger and
/// tests that build ASTs directly).
StatusOr<CompiledTrigger> CompileTriggerDecl(std::string_view source,
                                             const TriggerDecl& decl,
                                             const LabelCatalog& catalog,
                                             uint64_t default_every);

}  // namespace cql
}  // namespace implistat

#endif  // IMPLISTAT_CQL_SEMA_H_
