#include "cql/parser.h"

#include <cctype>
#include <cmath>
#include <string>
#include <utility>

#include "cql/lexer.h"

namespace implistat {
namespace cql {

namespace {

// Binding powers, weakest first. Comparison chains (`a < b < c`) parse
// left-associatively; sema rejects comparing a boolean so they diagnose
// cleanly instead of silently meaning `(a < b) < c`.
enum Precedence : int {
  kPrecNone = 0,
  kPrecOr = 1,
  kPrecAnd = 2,
  kPrecCompare = 3,
  kPrecAdd = 4,
  kPrecMul = 5,
  kPrecUnary = 6,
};

struct InfixOp {
  BinaryOp op;
  int precedence;
};

class Parser {
 public:
  Parser(std::string_view source, std::vector<Token> tokens)
      : source_(source), tokens_(std::move(tokens)) {}

  StatusOr<TriggerDecl> ParseTriggerStatement() {
    TriggerDecl decl;
    if (!ConsumeKeyword("CREATE")) return Expected("CREATE");
    if (!ConsumeKeyword("TRIGGER")) return Expected("TRIGGER");
    StatusOr<std::string> name = ConsumeName("trigger name");
    if (!name.ok()) return name.status();
    decl.name = std::move(name).value();
    if (!ConsumeKeyword("ON")) return Expected("ON");
    SourceSpan on_span = Peek().span;
    StatusOr<std::string> label = ConsumeName("query label");
    if (!label.ok()) return label.status();
    decl.on_label = std::move(label).value();
    decl.on_label_span = on_span;
    if (!ConsumeKeyword("WHEN")) return Expected("WHEN");
    StatusOr<std::unique_ptr<Expr>> cond = ParseExpr(kPrecNone);
    if (!cond.ok()) return cond.status();
    decl.condition = std::move(cond).value();
    while (true) {
      if (ConsumeKeyword("EVERY")) {
        StatusOr<uint64_t> n = ConsumePositiveInt("EVERY");
        if (!n.ok()) return n.status();
        decl.every_tuples = *n;
        if (!ConsumeKeyword("TUPLES")) return Expected("TUPLES");
      } else if (ConsumeKeyword("COOLDOWN")) {
        StatusOr<uint64_t> n = ConsumePositiveInt("COOLDOWN");
        if (!n.ok()) return n.status();
        decl.cooldown_tuples = *n;
        ConsumeKeyword("TUPLES");  // optional unit, for symmetry
      } else {
        break;
      }
    }
    ConsumePunct(";");
    if (Peek().kind != TokenKind::kEnd) {
      return Fail(Peek().span, "trailing input after trigger statement");
    }
    return decl;
  }

  StatusOr<std::unique_ptr<Expr>> ParseBareExpression() {
    StatusOr<std::unique_ptr<Expr>> expr = ParseExpr(kPrecNone);
    if (!expr.ok()) return expr.status();
    if (Peek().kind != TokenKind::kEnd) {
      return Fail(Peek().span, "trailing input after expression");
    }
    return expr;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool ConsumeKeyword(std::string_view kw) {
    if (!Peek().IsKeyword(kw)) return false;
    ++pos_;
    return true;
  }
  bool ConsumePunct(std::string_view p) {
    if (!Peek().IsPunct(p)) return false;
    ++pos_;
    return true;
  }

  Status Fail(SourceSpan span, std::string message) const {
    return DiagnosticToStatus(source_, {std::move(message), span},
                              "trigger parse error");
  }
  Status Expected(std::string_view what) {
    std::string got = Peek().kind == TokenKind::kEnd
                          ? "end of input"
                          : "'" + std::string(Peek().text) + "'";
    return Fail(Peek().span,
                "expected " + std::string(what) + ", found " + got);
  }

  StatusOr<std::string> ConsumeName(std::string_view what) {
    const Token& t = Peek();
    if (t.kind != TokenKind::kIdent && t.kind != TokenKind::kString) {
      return Expected(what);
    }
    Advance();
    return std::string(t.text);
  }

  StatusOr<uint64_t> ConsumePositiveInt(std::string_view clause) {
    const Token& t = Peek();
    if (t.kind != TokenKind::kNumber) {
      return Fail(t.span, std::string(clause) + " needs a positive count");
    }
    double v = t.number;
    if (!(v >= 1.0) || v != std::floor(v) || v > 1e15) {
      return Fail(t.span,
                  std::string(clause) + " count must be a positive integer");
    }
    Advance();
    return static_cast<uint64_t>(v);
  }

  bool MatchInfix(const Token& t, InfixOp* out) const {
    if (t.kind == TokenKind::kPunct) {
      std::string_view p = t.text;
      if (p == "+") *out = {BinaryOp::kAdd, kPrecAdd};
      else if (p == "-") *out = {BinaryOp::kSub, kPrecAdd};
      else if (p == "*") *out = {BinaryOp::kMul, kPrecMul};
      else if (p == "/") *out = {BinaryOp::kDiv, kPrecMul};
      else if (p == "%") *out = {BinaryOp::kMod, kPrecMul};
      else if (p == "<") *out = {BinaryOp::kLt, kPrecCompare};
      else if (p == "<=") *out = {BinaryOp::kLe, kPrecCompare};
      else if (p == ">") *out = {BinaryOp::kGt, kPrecCompare};
      else if (p == ">=") *out = {BinaryOp::kGe, kPrecCompare};
      else if (p == "=" || p == "==") *out = {BinaryOp::kEq, kPrecCompare};
      else if (p == "!=") *out = {BinaryOp::kNe, kPrecCompare};
      else if (p == "&&") *out = {BinaryOp::kAnd, kPrecAnd};
      else if (p == "||") *out = {BinaryOp::kOr, kPrecOr};
      else return false;
      return true;
    }
    if (t.IsKeyword("AND")) {
      *out = {BinaryOp::kAnd, kPrecAnd};
      return true;
    }
    if (t.IsKeyword("OR")) {
      *out = {BinaryOp::kOr, kPrecOr};
      return true;
    }
    return false;
  }

  StatusOr<std::unique_ptr<Expr>> ParseExpr(int min_precedence) {
    StatusOr<std::unique_ptr<Expr>> lhs = ParsePrefix();
    if (!lhs.ok()) return lhs.status();
    std::unique_ptr<Expr> node = std::move(lhs).value();
    while (true) {
      InfixOp op;
      if (!MatchInfix(Peek(), &op) || op.precedence <= min_precedence) break;
      SourceSpan op_span = Advance().span;
      StatusOr<std::unique_ptr<Expr>> rhs = ParseExpr(op.precedence);
      if (!rhs.ok()) return rhs.status();
      auto combined = std::make_unique<Expr>();
      combined->kind = ExprKind::kBinary;
      combined->span = op_span;
      combined->binary_op = op.op;
      combined->lhs = std::move(node);
      combined->rhs = std::move(rhs).value();
      node = std::move(combined);
    }
    return node;
  }

  StatusOr<std::unique_ptr<Expr>> ParsePrefix() {
    const Token& t = Peek();
    if (t.IsPunct("-") || t.IsPunct("!") || t.IsKeyword("NOT")) {
      UnaryOp op = t.IsPunct("-") ? UnaryOp::kNeg : UnaryOp::kNot;
      SourceSpan span = Advance().span;
      StatusOr<std::unique_ptr<Expr>> operand = ParseExpr(kPrecUnary);
      if (!operand.ok()) return operand.status();
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kUnary;
      node->span = span;
      node->unary_op = op;
      node->lhs = std::move(operand).value();
      return node;
    }
    if (t.IsPunct("(")) {
      Advance();
      StatusOr<std::unique_ptr<Expr>> inner = ParseExpr(kPrecNone);
      if (!inner.ok()) return inner.status();
      if (!ConsumePunct(")")) return Expected("')'");
      return inner;
    }
    if (t.kind == TokenKind::kNumber) {
      Advance();
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kLiteral;
      node->span = t.span;
      node->literal = t.number;
      return node;
    }
    if (t.IsKeyword("MOVING_AVG") || t.IsKeyword("DELTA")) {
      bool is_ma = t.IsKeyword("MOVING_AVG");
      SourceSpan call_span = Advance().span;
      if (!ConsumePunct("(")) return Expected("'('");
      auto node = std::make_unique<Expr>();
      node->kind = is_ma ? ExprKind::kMovingAvg : ExprKind::kDelta;
      node->span = call_span;
      const Token& arg = Peek();
      if (arg.IsKeyword("VALUE")) {
        node->label_is_value = true;
        Advance();
      } else if (arg.kind == TokenKind::kIdent ||
                 arg.kind == TokenKind::kString) {
        node->label = std::string(arg.text);
        Advance();
      } else {
        return Expected("query label");
      }
      if (is_ma) {
        if (!ConsumePunct(",")) return Expected("','");
        StatusOr<uint64_t> w = ConsumePositiveInt("MOVING_AVG window");
        if (!w.ok()) return w.status();
        node->window = *w;
      }
      if (!ConsumePunct(")")) return Expected("')'");
      return node;
    }
    if (t.IsKeyword("VALUE")) {
      Advance();
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kLabelRef;
      node->span = t.span;
      node->label_is_value = true;
      return node;
    }
    if (t.kind == TokenKind::kIdent || t.kind == TokenKind::kString) {
      Advance();
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kLabelRef;
      node->span = t.span;
      node->label = std::string(t.text);
      return node;
    }
    return Expected("an expression");
  }

  std::string_view source_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

StatusOr<std::vector<Token>> LexOrRender(std::string_view source) {
  Diagnostic diag;
  StatusOr<std::vector<Token>> tokens = Tokenize(source, &diag);
  if (!tokens.ok()) {
    return DiagnosticToStatus(source, diag, "trigger parse error");
  }
  return tokens;
}

}  // namespace

StatusOr<TriggerDecl> ParseCreateTrigger(std::string_view source) {
  StatusOr<std::vector<Token>> tokens = LexOrRender(source);
  if (!tokens.ok()) return tokens.status();
  Parser parser(source, std::move(tokens).value());
  return parser.ParseTriggerStatement();
}

StatusOr<std::unique_ptr<Expr>> ParseExpression(std::string_view source) {
  StatusOr<std::vector<Token>> tokens = LexOrRender(source);
  if (!tokens.ok()) return tokens.status();
  Parser parser(source, std::move(tokens).value());
  return parser.ParseBareExpression();
}

std::vector<std::string> SplitStatements(std::string_view script) {
  std::vector<std::string> statements;
  std::string current;
  bool meaningful = false;  // current holds more than whitespace/comments
  for (size_t i = 0; i < script.size(); ++i) {
    const char c = script[i];
    if (c == '-' && i + 1 < script.size() && script[i + 1] == '-') {
      while (i < script.size() && script[i] != '\n') ++i;
      current.push_back('\n');
      continue;
    }
    if (c == '\'') {
      // Copy the quoted run verbatim; an unterminated string just runs
      // to the end of the script and the parser diagnoses it properly.
      current.push_back(c);
      meaningful = true;
      while (++i < script.size()) {
        current.push_back(script[i]);
        if (script[i] == '\'') break;
      }
      continue;
    }
    if (c == ';') {
      if (meaningful) statements.push_back(std::move(current));
      current.clear();
      meaningful = false;
      continue;
    }
    current.push_back(c);
    if (!std::isspace(static_cast<unsigned char>(c))) meaningful = true;
  }
  if (meaningful) statements.push_back(std::move(current));
  return statements;
}

}  // namespace cql
}  // namespace implistat
