// TriggerEngine: armed trigger programs evaluated at epoch boundaries.
//
// QueryEngine owns one of these (created lazily on first install) and
// calls Tick(tuples_seen) from its ingest paths. Tick is a single
// compare against the earliest due epoch, so per-tuple cost is
// negligible until a trigger is actually due; evaluation then refreshes
// the trigger's input slots (estimates, moving-average rings, deltas),
// runs the bytecode VM, and applies edge-triggered semantics: a firing
// is recorded only on a false→true transition, and COOLDOWN suppresses
// re-arming for that many tuples after a firing.
//
// The whole engine — specs, compiled programs, MA rings, armed/cooldown
// state — serializes into the kTriggerStore snapshot section so firings
// resume correctly across checkpoint/restore (mid-cooldown included).
// Restore decodes into temporaries and refuses bad bytes wholesale.

#ifndef IMPLISTAT_CQL_TRIGGER_ENGINE_H_
#define IMPLISTAT_CQL_TRIGGER_ENGINE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cql/sema.h"
#include "util/serde.h"
#include "util/status_or.h"

namespace implistat {
namespace cql {

/// Estimate lookup for armed triggers; QueryEngine implements this.
class EstimateSource : public LabelCatalog {
 public:
  /// Current estimate for the active query carrying `label`.
  virtual StatusOr<double> EstimateForLabel(std::string_view label) const = 0;
};

struct TriggerFiring {
  std::string trigger;
  uint64_t epoch = 0;  // tuples_seen at the evaluation that fired
  double value = 0.0;  // evaluated WHEN-expression value
};

/// A trigger's externally visible state (CLI listings, tests).
struct TriggerInfo {
  std::string name;
  std::string source;
  std::string on_label;
  uint64_t every_tuples = 0;
  uint64_t cooldown_tuples = 0;
  uint64_t fired_count = 0;
  bool in_cooldown = false;
};

class TriggerEngine {
 public:
  /// `source` must outlive the engine (QueryEngine passes an adapter it
  /// owns). `default_every` fills in triggers without an EVERY clause.
  explicit TriggerEngine(const EstimateSource* source,
                         uint64_t default_every = 1024);

  /// Parses + compiles + arms one CREATE TRIGGER statement. Duplicate
  /// names are AlreadyExists. Returns the trigger name.
  StatusOr<std::string> Install(std::string_view statement,
                                uint64_t tuples_seen);

  Status Remove(std::string_view name);
  bool Has(std::string_view name) const;
  size_t num_triggers() const { return armed_.size(); }
  std::vector<TriggerInfo> List() const;

  /// Ingest-path hook. Cheap no-op unless some trigger's epoch boundary
  /// has been crossed.
  void Tick(uint64_t tuples_seen) {
    if (tuples_seen < next_due_) return;
    Evaluate(tuples_seen);
  }

  bool has_pending_firings() const { return !firings_.empty(); }
  std::vector<TriggerFiring> TakeFirings();

  /// kTriggerStore payload (the caller wraps it in the envelope).
  void SerializeTo(ByteWriter* out) const;
  /// Replaces this engine's triggers from a serialized payload. Validates
  /// everything (programs, labels vs. the catalog, ring shapes) before
  /// touching state; on error the engine is left unchanged.
  Status RestoreFrom(std::string_view payload);

 private:
  struct SlotState {
    std::vector<double> ring;  // kMovingAvg: `window` samples
    uint64_t ring_pos = 0;
    uint64_t ring_count = 0;
    double prev = 0.0;  // kDelta / kMovingAvg bookkeeping
    bool has_prev = false;
  };
  struct Armed {
    CompiledTrigger compiled;
    uint64_t next_eval = 0;
    bool prev_condition = false;
    uint64_t cooldown_until = 0;
    uint64_t fired_count = 0;
    std::vector<SlotState> slots;
    std::vector<double> slot_values;  // scratch, sized at arm time
  };

  void Evaluate(uint64_t tuples_seen);
  void RecomputeNextDue();
  static Armed ArmFromCompiled(CompiledTrigger compiled, uint64_t tuples_seen);

  const EstimateSource* source_;
  uint64_t default_every_;
  std::vector<Armed> armed_;
  std::vector<TriggerFiring> firings_;
  uint64_t next_due_ = UINT64_MAX;
};

}  // namespace cql
}  // namespace implistat

#endif  // IMPLISTAT_CQL_TRIGGER_ENGINE_H_
