// Flat postfix bytecode for trigger conditions, plus the stack VM.
//
// Sema compiles a type-checked expression into a Program: a constant
// pool, a slot table naming the runtime inputs (query estimates, moving
// averages, deltas), and a postfix instruction stream. Evaluation is a
// single forward pass over the instructions with a fixed-size value
// stack — no allocation, no pointer chasing — so the ingest path can
// afford it at every epoch boundary.
//
// Programs serialize (versioned, bounds-checked on read) both for the
// kTriggerStore checkpoint section and for tests' round-trip fuzzing.

#ifndef IMPLISTAT_CQL_BYTECODE_H_
#define IMPLISTAT_CQL_BYTECODE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/serde.h"
#include "util/status_or.h"

namespace implistat {
namespace cql {

enum class OpCode : uint8_t {
  kPushConst = 0,  // arg: constant pool index
  kLoadSlot = 1,   // arg: slot table index
  kAdd = 2,
  kSub = 3,
  kMul = 4,
  kDiv = 5,
  kMod = 6,
  kNeg = 7,
  kLt = 8,
  kLe = 9,
  kGt = 10,
  kGe = 11,
  kEq = 12,
  kNe = 13,
  kAnd = 14,
  kOr = 15,
  kNot = 16,
};

struct Instruction {
  OpCode op = OpCode::kPushConst;
  uint16_t arg = 0;
};

enum class SlotKind : uint8_t {
  kEstimate = 0,   // current estimate of `label`
  kMovingAvg = 1,  // ring-buffered average of the last `window` epochs
  kDelta = 2,      // estimate now minus estimate at the previous epoch
};

struct SlotSpec {
  SlotKind kind = SlotKind::kEstimate;
  std::string label;
  uint64_t window = 0;  // kMovingAvg only

  bool operator==(const SlotSpec& o) const {
    return kind == o.kind && label == o.label && window == o.window;
  }
};

/// Deepest value stack any program may need; compilation rejects
/// expressions that exceed it (they would need >64 nested operands).
inline constexpr size_t kMaxEvalStack = 64;

class Program {
 public:
  std::vector<Instruction> code;
  std::vector<double> consts;
  std::vector<SlotSpec> slots;
  uint32_t max_stack = 0;

  /// Evaluates against `slot_values[0..slots.size())`. Boolean results
  /// are 1.0/0.0; comparisons involving NaN are false. The caller owns
  /// slot refresh (ring pushes, delta bookkeeping) — the VM only reads.
  double Eval(const double* slot_values) const;

  /// True iff `value` counts as a satisfied condition (non-zero, non-NaN).
  static bool Truthy(double value);

  void SerializeTo(ByteWriter* out) const;
  static StatusOr<Program> Deserialize(ByteReader* in);
};

}  // namespace cql
}  // namespace implistat

#endif  // IMPLISTAT_CQL_BYTECODE_H_
