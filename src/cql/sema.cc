#include "cql/sema.h"

#include <utility>

#include "cql/parser.h"

namespace implistat {
namespace cql {

namespace {

enum class ExprType : uint8_t { kNumber, kBool };

class Compiler {
 public:
  Compiler(std::string_view source, const LabelCatalog& catalog,
           std::string_view on_label, Program* program)
      : source_(source),
        catalog_(catalog),
        on_label_(on_label),
        program_(program) {}

  StatusOr<ExprType> Compile(const Expr& expr) {
    switch (expr.kind) {
      case ExprKind::kLiteral: {
        uint16_t idx = InternConst(expr.literal);
        Emit(OpCode::kPushConst, idx);
        Push(expr.span);
        return ExprType::kNumber;
      }
      case ExprKind::kLabelRef:
      case ExprKind::kMovingAvg:
      case ExprKind::kDelta: {
        StatusOr<std::string> label = ResolveLabel(expr);
        if (!label.ok()) return label.status();
        SlotSpec spec;
        spec.label = std::move(label).value();
        if (expr.kind == ExprKind::kMovingAvg) {
          spec.kind = SlotKind::kMovingAvg;
          if (expr.window < 1 || expr.window > kMaxMovingAvgWindow) {
            return Fail(expr.span,
                        "MOVING_AVG window must be between 1 and " +
                            std::to_string(kMaxMovingAvgWindow));
          }
          spec.window = expr.window;
        } else if (expr.kind == ExprKind::kDelta) {
          spec.kind = SlotKind::kDelta;
        }
        StatusOr<uint16_t> slot = InternSlot(std::move(spec), expr.span);
        if (!slot.ok()) return slot.status();
        Emit(OpCode::kLoadSlot, *slot);
        Push(expr.span);
        return ExprType::kNumber;
      }
      case ExprKind::kUnary: {
        StatusOr<ExprType> operand = Compile(*expr.lhs);
        if (!operand.ok()) return operand.status();
        if (expr.unary_op == UnaryOp::kNeg) {
          if (*operand != ExprType::kNumber) {
            return Fail(expr.span, "unary '-' needs a numeric operand");
          }
          Emit(OpCode::kNeg, 0);
          return ExprType::kNumber;
        }
        if (*operand != ExprType::kBool) {
          return Fail(expr.span, "NOT needs a boolean operand");
        }
        Emit(OpCode::kNot, 0);
        return ExprType::kBool;
      }
      case ExprKind::kBinary: {
        StatusOr<ExprType> lhs = Compile(*expr.lhs);
        if (!lhs.ok()) return lhs.status();
        StatusOr<ExprType> rhs = Compile(*expr.rhs);
        if (!rhs.ok()) return rhs.status();
        --depth_;  // every binary op folds two operands into one
        switch (expr.binary_op) {
          case BinaryOp::kAdd:
          case BinaryOp::kSub:
          case BinaryOp::kMul:
          case BinaryOp::kDiv:
          case BinaryOp::kMod:
            if (*lhs != ExprType::kNumber || *rhs != ExprType::kNumber) {
              return Fail(expr.span, "arithmetic needs numeric operands");
            }
            Emit(ArithOp(expr.binary_op), 0);
            return ExprType::kNumber;
          case BinaryOp::kLt:
          case BinaryOp::kLe:
          case BinaryOp::kGt:
          case BinaryOp::kGe:
          case BinaryOp::kEq:
          case BinaryOp::kNe:
            if (*lhs != ExprType::kNumber || *rhs != ExprType::kNumber) {
              return Fail(expr.span,
                          "comparison needs numeric operands (did you chain "
                          "comparisons? use AND)");
            }
            Emit(ArithOp(expr.binary_op), 0);
            return ExprType::kBool;
          case BinaryOp::kAnd:
          case BinaryOp::kOr:
            if (*lhs != ExprType::kBool || *rhs != ExprType::kBool) {
              return Fail(expr.span,
                          "AND/OR need boolean operands (comparisons)");
            }
            Emit(expr.binary_op == BinaryOp::kAnd ? OpCode::kAnd : OpCode::kOr,
                 0);
            return ExprType::kBool;
        }
        return Fail(expr.span, "unknown operator");
      }
    }
    return Fail(expr.span, "unknown expression");
  }

 private:
  static OpCode ArithOp(BinaryOp op) {
    switch (op) {
      case BinaryOp::kAdd: return OpCode::kAdd;
      case BinaryOp::kSub: return OpCode::kSub;
      case BinaryOp::kMul: return OpCode::kMul;
      case BinaryOp::kDiv: return OpCode::kDiv;
      case BinaryOp::kMod: return OpCode::kMod;
      case BinaryOp::kLt: return OpCode::kLt;
      case BinaryOp::kLe: return OpCode::kLe;
      case BinaryOp::kGt: return OpCode::kGt;
      case BinaryOp::kGe: return OpCode::kGe;
      case BinaryOp::kEq: return OpCode::kEq;
      case BinaryOp::kNe: return OpCode::kNe;
      default: return OpCode::kAdd;  // unreachable for AND/OR
    }
  }

  Status Fail(SourceSpan span, std::string message) {
    return DiagnosticToStatus(source_, {std::move(message), span},
                              "trigger error");
  }

  StatusOr<std::string> ResolveLabel(const Expr& expr) {
    std::string label =
        expr.label_is_value ? std::string(on_label_) : expr.label;
    if (!catalog_.HasLabel(label)) {
      return Fail(expr.span, "unknown query label '" + label +
                                 "' (no active query carries it)");
    }
    return label;
  }

  uint16_t InternConst(double value) {
    for (size_t i = 0; i < program_->consts.size(); ++i) {
      if (program_->consts[i] == value) return static_cast<uint16_t>(i);
    }
    program_->consts.push_back(value);
    return static_cast<uint16_t>(program_->consts.size() - 1);
  }

  StatusOr<uint16_t> InternSlot(SlotSpec spec, SourceSpan span) {
    for (size_t i = 0; i < program_->slots.size(); ++i) {
      if (program_->slots[i] == spec) return static_cast<uint16_t>(i);
    }
    if (program_->slots.size() >= 256) {
      return Fail(span, "trigger references too many distinct inputs");
    }
    program_->slots.push_back(std::move(spec));
    return static_cast<uint16_t>(program_->slots.size() - 1);
  }

  void Emit(OpCode op, uint16_t arg) { program_->code.push_back({op, arg}); }

  // depth_ tracks the value stack across emitted pushes so we can cap
  // max_stack at compile time and keep Eval allocation- and check-free.
  void Push(SourceSpan span) {
    (void)span;
    ++depth_;
    if (depth_ > program_->max_stack) {
      program_->max_stack = static_cast<uint32_t>(depth_);
    }
  }

  std::string_view source_;
  const LabelCatalog& catalog_;
  std::string_view on_label_;
  Program* program_;
  size_t depth_ = 0;
};

}  // namespace

StatusOr<CompiledTrigger> CompileTriggerDecl(std::string_view source,
                                             const TriggerDecl& decl,
                                             const LabelCatalog& catalog,
                                             uint64_t default_every) {
  if (!catalog.HasLabel(decl.on_label)) {
    return DiagnosticToStatus(
        source,
        {"unknown query label '" + decl.on_label +
             "' (no active query carries it)",
         decl.on_label_span},
        "trigger error");
  }
  CompiledTrigger out;
  out.name = decl.name;
  out.source = std::string(source);
  out.on_label = decl.on_label;
  out.every_tuples = decl.every_tuples != 0 ? decl.every_tuples : default_every;
  out.cooldown_tuples = decl.cooldown_tuples;
  Compiler compiler(source, catalog, decl.on_label, &out.program);
  StatusOr<ExprType> type = compiler.Compile(*decl.condition);
  if (!type.ok()) return type.status();
  if (*type != ExprType::kBool) {
    return DiagnosticToStatus(
        source,
        {"WHEN condition must be boolean (use a comparison)",
         decl.condition->span},
        "trigger error");
  }
  if (out.program.max_stack > kMaxEvalStack) {
    return DiagnosticToStatus(
        source, {"expression too deeply nested", decl.condition->span},
        "trigger error");
  }
  return out;
}

StatusOr<CompiledTrigger> CompileTrigger(std::string_view source,
                                         const LabelCatalog& catalog,
                                         uint64_t default_every) {
  StatusOr<TriggerDecl> decl = ParseCreateTrigger(source);
  if (!decl.ok()) return decl.status();
  return CompileTriggerDecl(source, *decl, catalog, default_every);
}

}  // namespace cql
}  // namespace implistat
