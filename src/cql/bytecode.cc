#include "cql/bytecode.h"

#include <cmath>

namespace implistat {
namespace cql {

namespace {
constexpr uint8_t kProgramFormatVersion = 1;
constexpr uint8_t kMaxOpCode = static_cast<uint8_t>(OpCode::kNot);
constexpr size_t kMaxProgramCode = 4096;
constexpr size_t kMaxProgramConsts = 1024;
constexpr size_t kMaxProgramSlots = 256;
constexpr size_t kMaxSlotLabelBytes = 4096;
}  // namespace

bool Program::Truthy(double value) {
  return value != 0.0 && !std::isnan(value);
}

double Program::Eval(const double* slot_values) const {
  double stack[kMaxEvalStack];
  size_t sp = 0;
  for (const Instruction& ins : code) {
    switch (ins.op) {
      case OpCode::kPushConst:
        stack[sp++] = consts[ins.arg];
        break;
      case OpCode::kLoadSlot:
        stack[sp++] = slot_values[ins.arg];
        break;
      case OpCode::kNeg:
        stack[sp - 1] = -stack[sp - 1];
        break;
      case OpCode::kNot:
        stack[sp - 1] = Truthy(stack[sp - 1]) ? 0.0 : 1.0;
        break;
      default: {
        double rhs = stack[--sp];
        double lhs = stack[sp - 1];
        double r = 0.0;
        switch (ins.op) {
          case OpCode::kAdd: r = lhs + rhs; break;
          case OpCode::kSub: r = lhs - rhs; break;
          case OpCode::kMul: r = lhs * rhs; break;
          case OpCode::kDiv: r = lhs / rhs; break;
          case OpCode::kMod: r = std::fmod(lhs, rhs); break;
          case OpCode::kLt: r = lhs < rhs ? 1.0 : 0.0; break;
          case OpCode::kLe: r = lhs <= rhs ? 1.0 : 0.0; break;
          case OpCode::kGt: r = lhs > rhs ? 1.0 : 0.0; break;
          case OpCode::kGe: r = lhs >= rhs ? 1.0 : 0.0; break;
          case OpCode::kEq: r = lhs == rhs ? 1.0 : 0.0; break;
          case OpCode::kNe: r = lhs != rhs ? 1.0 : 0.0; break;
          case OpCode::kAnd: r = Truthy(lhs) && Truthy(rhs) ? 1.0 : 0.0; break;
          case OpCode::kOr: r = Truthy(lhs) || Truthy(rhs) ? 1.0 : 0.0; break;
          default: break;  // unreachable: push/unary handled above
        }
        stack[sp - 1] = r;
        break;
      }
    }
  }
  return sp > 0 ? stack[sp - 1] : 0.0;
}

void Program::SerializeTo(ByteWriter* out) const {
  out->PutU8(kProgramFormatVersion);
  out->PutVarint64(max_stack);
  out->PutVarint64(code.size());
  for (const Instruction& ins : code) {
    out->PutU8(static_cast<uint8_t>(ins.op));
    out->PutVarint64(ins.arg);
  }
  out->PutVarint64(consts.size());
  for (double c : consts) out->PutDouble(c);
  out->PutVarint64(slots.size());
  for (const SlotSpec& s : slots) {
    out->PutU8(static_cast<uint8_t>(s.kind));
    out->PutLengthPrefixed(s.label);
    out->PutVarint64(s.window);
  }
}

StatusOr<Program> Program::Deserialize(ByteReader* in) {
  uint8_t version = 0;
  if (Status s = in->ReadU8(&version); !s.ok()) return s;
  if (version != kProgramFormatVersion) {
    return Status::InvalidArgument("trigger program: unsupported version " +
                                   std::to_string(version));
  }
  Program p;
  uint64_t max_stack = 0;
  if (Status s = in->ReadVarint64(&max_stack); !s.ok()) return s;
  if (max_stack == 0 || max_stack > kMaxEvalStack) {
    return Status::InvalidArgument("trigger program: bad stack depth");
  }
  p.max_stack = static_cast<uint32_t>(max_stack);
  uint64_t num_code = 0;
  if (Status s = in->ReadVarint64(&num_code); !s.ok()) return s;
  if (num_code == 0 || num_code > kMaxProgramCode) {
    return Status::InvalidArgument("trigger program: bad code length");
  }
  p.code.reserve(num_code);
  for (uint64_t i = 0; i < num_code; ++i) {
    uint8_t op = 0;
    uint64_t arg = 0;
    if (Status s = in->ReadU8(&op); !s.ok()) return s;
    if (Status s = in->ReadVarint64(&arg); !s.ok()) return s;
    if (op > kMaxOpCode || arg > UINT16_MAX) {
      return Status::InvalidArgument("trigger program: bad instruction");
    }
    p.code.push_back({static_cast<OpCode>(op), static_cast<uint16_t>(arg)});
  }
  uint64_t num_consts = 0;
  if (Status s = in->ReadVarint64(&num_consts); !s.ok()) return s;
  if (num_consts > kMaxProgramConsts) {
    return Status::InvalidArgument("trigger program: too many constants");
  }
  p.consts.resize(num_consts);
  for (double& c : p.consts) {
    if (Status s = in->ReadDouble(&c); !s.ok()) return s;
  }
  uint64_t num_slots = 0;
  if (Status s = in->ReadVarint64(&num_slots); !s.ok()) return s;
  if (num_slots > kMaxProgramSlots) {
    return Status::InvalidArgument("trigger program: too many slots");
  }
  p.slots.resize(num_slots);
  for (SlotSpec& slot : p.slots) {
    uint8_t kind = 0;
    std::string_view label;
    if (Status s = in->ReadU8(&kind); !s.ok()) return s;
    if (kind > static_cast<uint8_t>(SlotKind::kDelta)) {
      return Status::InvalidArgument("trigger program: bad slot kind");
    }
    if (Status s = in->ReadLengthPrefixed(&label); !s.ok()) return s;
    if (label.size() > kMaxSlotLabelBytes) {
      return Status::InvalidArgument("trigger program: slot label too long");
    }
    slot.kind = static_cast<SlotKind>(kind);
    slot.label = std::string(label);
    if (Status s = in->ReadVarint64(&slot.window); !s.ok()) return s;
  }
  // The Eval loop indexes pools without bounds checks, so validate every
  // operand and simulate stack depth before accepting the program.
  size_t depth = 0;
  for (const Instruction& ins : p.code) {
    switch (ins.op) {
      case OpCode::kPushConst:
        if (ins.arg >= p.consts.size()) {
          return Status::InvalidArgument("trigger program: const out of range");
        }
        ++depth;
        break;
      case OpCode::kLoadSlot:
        if (ins.arg >= p.slots.size()) {
          return Status::InvalidArgument("trigger program: slot out of range");
        }
        ++depth;
        break;
      case OpCode::kNeg:
      case OpCode::kNot:
        if (depth < 1) {
          return Status::InvalidArgument("trigger program: stack underflow");
        }
        break;
      default:
        if (depth < 2) {
          return Status::InvalidArgument("trigger program: stack underflow");
        }
        --depth;
        break;
    }
    if (depth > p.max_stack) {
      return Status::InvalidArgument("trigger program: stack overflow");
    }
  }
  if (depth != 1) {
    return Status::InvalidArgument("trigger program: unbalanced stack");
  }
  return p;
}

}  // namespace cql
}  // namespace implistat
