#include "cql/trigger_engine.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace implistat {
namespace cql {

namespace {

constexpr uint8_t kTriggerStoreVersion = 1;
constexpr uint64_t kMaxTriggers = 4096;
constexpr size_t kMaxStatementBytes = 1 << 16;

struct TriggerMetrics {
  obs::Counter* fired;
  obs::Counter* evals;
  obs::Histogram* eval_ns;
  static TriggerMetrics& Get() {
    static TriggerMetrics m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      TriggerMetrics t;
      t.fired = reg.GetCounter("implistat_triggers_fired_total",
                               "trigger firings recorded");
      t.evals = reg.GetCounter("implistat_trigger_evals_total",
                               "trigger epoch evaluations");
      t.eval_ns = reg.GetHistogram("implistat_trigger_eval_ns",
                                   "nanoseconds per trigger epoch sweep");
      return t;
    }();
    return m;
  }
};

uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TriggerEngine::TriggerEngine(const EstimateSource* source,
                             uint64_t default_every)
    : source_(source), default_every_(default_every == 0 ? 1 : default_every) {}

TriggerEngine::Armed TriggerEngine::ArmFromCompiled(CompiledTrigger compiled,
                                                    uint64_t tuples_seen) {
  Armed armed;
  armed.slots.resize(compiled.program.slots.size());
  for (size_t i = 0; i < compiled.program.slots.size(); ++i) {
    const SlotSpec& spec = compiled.program.slots[i];
    if (spec.kind == SlotKind::kMovingAvg) {
      armed.slots[i].ring.assign(spec.window, 0.0);
    }
  }
  armed.slot_values.assign(compiled.program.slots.size(), 0.0);
  // First evaluation lands on the next epoch boundary after "now".
  uint64_t every = compiled.every_tuples == 0 ? 1 : compiled.every_tuples;
  armed.next_eval = tuples_seen + every;
  armed.compiled = std::move(compiled);
  return armed;
}

StatusOr<std::string> TriggerEngine::Install(std::string_view statement,
                                             uint64_t tuples_seen) {
  if (statement.size() > kMaxStatementBytes) {
    return Status::InvalidArgument("trigger statement too long");
  }
  if (armed_.size() >= kMaxTriggers) {
    return Status::ResourceExhausted("too many armed triggers");
  }
  StatusOr<CompiledTrigger> compiled =
      CompileTrigger(statement, *source_, default_every_);
  if (!compiled.ok()) return compiled.status();
  if (Has(compiled->name)) {
    return Status::AlreadyExists("trigger '" + compiled->name +
                                 "' already installed");
  }
  std::string name = compiled->name;
  armed_.push_back(ArmFromCompiled(std::move(compiled).value(), tuples_seen));
  RecomputeNextDue();
  return name;
}

Status TriggerEngine::Remove(std::string_view name) {
  for (size_t i = 0; i < armed_.size(); ++i) {
    if (armed_[i].compiled.name == name) {
      armed_.erase(armed_.begin() + static_cast<ptrdiff_t>(i));
      RecomputeNextDue();
      return Status::OK();
    }
  }
  return Status::NotFound("no trigger named '" + std::string(name) + "'");
}

bool TriggerEngine::Has(std::string_view name) const {
  for (const Armed& armed : armed_) {
    if (armed.compiled.name == name) return true;
  }
  return false;
}

std::vector<TriggerInfo> TriggerEngine::List() const {
  std::vector<TriggerInfo> out;
  out.reserve(armed_.size());
  for (const Armed& armed : armed_) {
    TriggerInfo info;
    info.name = armed.compiled.name;
    info.source = armed.compiled.source;
    info.on_label = armed.compiled.on_label;
    info.every_tuples = armed.compiled.every_tuples;
    info.cooldown_tuples = armed.compiled.cooldown_tuples;
    info.fired_count = armed.fired_count;
    info.in_cooldown = armed.cooldown_until > armed.next_eval -
                                                  armed.compiled.every_tuples;
    out.push_back(std::move(info));
  }
  return out;
}

void TriggerEngine::RecomputeNextDue() {
  next_due_ = UINT64_MAX;
  for (const Armed& armed : armed_) {
    next_due_ = std::min(next_due_, armed.next_eval);
  }
}

void TriggerEngine::Evaluate(uint64_t tuples_seen) {
  obs::ScopedSpan span("trigger.eval", "cql");
  TriggerMetrics& metrics = TriggerMetrics::Get();
  uint64_t start_ns = MonotonicNanos();
  size_t evaluated = 0;
  // One estimate fetch per label per pass: N triggers watching the same
  // query cost one readout, not N. Linear scan — a pass touches a
  // handful of distinct labels.
  std::vector<std::pair<std::string_view, StatusOr<double>>> label_cache;
  auto estimate_for = [&](std::string_view label) -> StatusOr<double> {
    for (const auto& [cached_label, estimate] : label_cache) {
      if (cached_label == label) return estimate;
    }
    label_cache.emplace_back(label, source_->EstimateForLabel(label));
    return label_cache.back().second;
  };
  for (Armed& armed : armed_) {
    if (tuples_seen < armed.next_eval) continue;
    // A large batch may cross several boundaries at once; we evaluate
    // once at the batch edge and schedule the next boundary after it.
    uint64_t every = armed.compiled.every_tuples;
    uint64_t missed = (tuples_seen - armed.next_eval) / every;
    armed.next_eval += (missed + 1) * every;
    ++evaluated;

    bool inputs_ok = true;
    for (size_t i = 0; i < armed.compiled.program.slots.size(); ++i) {
      const SlotSpec& spec = armed.compiled.program.slots[i];
      SlotState& state = armed.slots[i];
      StatusOr<double> estimate = estimate_for(spec.label);
      if (!estimate.ok()) {
        // Referenced query vanished (deactivated): skip this epoch
        // rather than firing on garbage.
        inputs_ok = false;
        break;
      }
      double current = *estimate;
      switch (spec.kind) {
        case SlotKind::kEstimate:
          armed.slot_values[i] = current;
          break;
        case SlotKind::kMovingAvg: {
          state.ring[state.ring_pos] = current;
          state.ring_pos = (state.ring_pos + 1) % state.ring.size();
          if (state.ring_count < state.ring.size()) ++state.ring_count;
          double sum = 0.0;
          for (uint64_t j = 0; j < state.ring_count; ++j) sum += state.ring[j];
          armed.slot_values[i] =
              state.ring_count == 0 ? current
                                    : sum / static_cast<double>(state.ring_count);
          break;
        }
        case SlotKind::kDelta:
          armed.slot_values[i] = state.has_prev ? current - state.prev : 0.0;
          state.prev = current;
          state.has_prev = true;
          break;
      }
    }
    if (!inputs_ok) continue;

    double value = armed.compiled.program.Eval(armed.slot_values.data());
    bool condition = Program::Truthy(value);
    bool rising_edge = condition && !armed.prev_condition;
    armed.prev_condition = condition;
    if (rising_edge && tuples_seen >= armed.cooldown_until) {
      armed.cooldown_until = tuples_seen + armed.compiled.cooldown_tuples;
      ++armed.fired_count;
      firings_.push_back({armed.compiled.name, tuples_seen, value});
      metrics.fired->Increment();
    }
  }
  RecomputeNextDue();
  if (evaluated > 0) {
    metrics.evals->Increment(evaluated);
    metrics.eval_ns->Record(MonotonicNanos() - start_ns);
    span.Annotate("evaluated", evaluated);
    span.Annotate("fired", firings_.size());
  }
}

std::vector<TriggerFiring> TriggerEngine::TakeFirings() {
  std::vector<TriggerFiring> out;
  out.swap(firings_);
  return out;
}

void TriggerEngine::SerializeTo(ByteWriter* out) const {
  out->PutU8(kTriggerStoreVersion);
  out->PutVarint64(default_every_);
  out->PutVarint64(armed_.size());
  for (const Armed& armed : armed_) {
    out->PutLengthPrefixed(armed.compiled.name);
    out->PutLengthPrefixed(armed.compiled.source);
    out->PutLengthPrefixed(armed.compiled.on_label);
    out->PutVarint64(armed.compiled.every_tuples);
    out->PutVarint64(armed.compiled.cooldown_tuples);
    ByteWriter program;
    armed.compiled.program.SerializeTo(&program);
    out->PutLengthPrefixed(program.str());
    out->PutVarint64(armed.next_eval);
    out->PutBool(armed.prev_condition);
    out->PutVarint64(armed.cooldown_until);
    out->PutVarint64(armed.fired_count);
    out->PutVarint64(armed.slots.size());
    for (const SlotState& slot : armed.slots) {
      out->PutBool(slot.has_prev);
      out->PutDouble(slot.prev);
      out->PutVarint64(slot.ring_pos);
      out->PutVarint64(slot.ring_count);
      out->PutVarint64(slot.ring.size());
      for (double v : slot.ring) out->PutDouble(v);
    }
  }
}

Status TriggerEngine::RestoreFrom(std::string_view payload) {
  ByteReader in(payload);
  uint8_t version = 0;
  if (Status s = in.ReadU8(&version); !s.ok()) return s;
  if (version != kTriggerStoreVersion) {
    return Status::InvalidArgument("trigger store: unsupported version " +
                                   std::to_string(version));
  }
  uint64_t default_every = 0;
  if (Status s = in.ReadVarint64(&default_every); !s.ok()) return s;
  if (default_every == 0) {
    return Status::InvalidArgument("trigger store: bad default epoch");
  }
  uint64_t count = 0;
  if (Status s = in.ReadVarint64(&count); !s.ok()) return s;
  if (count > kMaxTriggers) {
    return Status::InvalidArgument("trigger store: too many triggers");
  }
  std::vector<Armed> restored;
  restored.reserve(count);
  for (uint64_t t = 0; t < count; ++t) {
    Armed armed;
    std::string_view name, source, on_label, program_blob;
    if (Status s = in.ReadLengthPrefixed(&name); !s.ok()) return s;
    if (Status s = in.ReadLengthPrefixed(&source); !s.ok()) return s;
    if (Status s = in.ReadLengthPrefixed(&on_label); !s.ok()) return s;
    if (name.empty() || name.size() > kMaxStatementBytes ||
        source.size() > kMaxStatementBytes ||
        on_label.size() > kMaxStatementBytes) {
      return Status::InvalidArgument("trigger store: bad string field");
    }
    armed.compiled.name = std::string(name);
    armed.compiled.source = std::string(source);
    armed.compiled.on_label = std::string(on_label);
    if (Status s = in.ReadVarint64(&armed.compiled.every_tuples); !s.ok()) {
      return s;
    }
    if (armed.compiled.every_tuples == 0) {
      return Status::InvalidArgument("trigger store: bad epoch length");
    }
    if (Status s = in.ReadVarint64(&armed.compiled.cooldown_tuples); !s.ok()) {
      return s;
    }
    if (Status s = in.ReadLengthPrefixed(&program_blob); !s.ok()) return s;
    ByteReader program_in(program_blob);
    StatusOr<Program> program = Program::Deserialize(&program_in);
    if (!program.ok()) return program.status();
    if (program_in.remaining() != 0) {
      return Status::InvalidArgument("trigger store: trailing program bytes");
    }
    armed.compiled.program = std::move(program).value();
    // Labels must still resolve against the restored query catalog.
    if (!source_->HasLabel(armed.compiled.on_label)) {
      return Status::InvalidArgument(
          "trigger store: trigger '" + armed.compiled.name +
          "' references unknown query label '" + armed.compiled.on_label +
          "'");
    }
    for (const SlotSpec& spec : armed.compiled.program.slots) {
      if (!source_->HasLabel(spec.label)) {
        return Status::InvalidArgument(
            "trigger store: trigger '" + armed.compiled.name +
            "' references unknown query label '" + spec.label + "'");
      }
      if (spec.kind == SlotKind::kMovingAvg &&
          (spec.window == 0 || spec.window > kMaxMovingAvgWindow)) {
        return Status::InvalidArgument("trigger store: bad moving-avg window");
      }
    }
    if (Status s = in.ReadVarint64(&armed.next_eval); !s.ok()) return s;
    if (Status s = in.ReadBool(&armed.prev_condition); !s.ok()) return s;
    if (Status s = in.ReadVarint64(&armed.cooldown_until); !s.ok()) return s;
    if (Status s = in.ReadVarint64(&armed.fired_count); !s.ok()) return s;
    uint64_t num_slots = 0;
    if (Status s = in.ReadVarint64(&num_slots); !s.ok()) return s;
    if (num_slots != armed.compiled.program.slots.size()) {
      return Status::InvalidArgument("trigger store: slot count mismatch");
    }
    armed.slots.resize(num_slots);
    for (uint64_t i = 0; i < num_slots; ++i) {
      SlotState& slot = armed.slots[i];
      const SlotSpec& spec = armed.compiled.program.slots[i];
      if (Status s = in.ReadBool(&slot.has_prev); !s.ok()) return s;
      if (Status s = in.ReadDouble(&slot.prev); !s.ok()) return s;
      if (Status s = in.ReadVarint64(&slot.ring_pos); !s.ok()) return s;
      if (Status s = in.ReadVarint64(&slot.ring_count); !s.ok()) return s;
      uint64_t ring_size = 0;
      if (Status s = in.ReadVarint64(&ring_size); !s.ok()) return s;
      uint64_t expected =
          spec.kind == SlotKind::kMovingAvg ? spec.window : 0;
      if (ring_size != expected || slot.ring_count > ring_size ||
          (ring_size != 0 && slot.ring_pos >= ring_size)) {
        return Status::InvalidArgument("trigger store: bad ring shape");
      }
      slot.ring.resize(ring_size);
      for (double& v : slot.ring) {
        if (Status s = in.ReadDouble(&v); !s.ok()) return s;
      }
    }
    armed.slot_values.assign(armed.compiled.program.slots.size(), 0.0);
    restored.push_back(std::move(armed));
  }
  if (in.remaining() != 0) {
    return Status::InvalidArgument("trigger store: trailing bytes");
  }
  default_every_ = default_every;
  armed_ = std::move(restored);
  firings_.clear();
  RecomputeNextDue();
  return Status::OK();
}

}  // namespace cql
}  // namespace implistat
