// Pratt parser for trigger rules (grammar in DESIGN.md §13).
//
// ParseCreateTrigger compiles one statement's worth of tokens into a
// TriggerDecl AST. Errors come back as InvalidArgument whose message is
// already caret-rendered against the source text.

#ifndef IMPLISTAT_CQL_PARSER_H_
#define IMPLISTAT_CQL_PARSER_H_

#include <string_view>
#include <vector>

#include "cql/ast.h"
#include "util/status_or.h"

namespace implistat {
namespace cql {

/// Parses `CREATE TRIGGER name ON label WHEN expr [EVERY n TUPLES]
/// [COOLDOWN n]`. A trailing `;` is tolerated. Label resolution happens
/// later in sema; this only checks shape.
StatusOr<TriggerDecl> ParseCreateTrigger(std::string_view source);

/// Parses a bare boolean/arithmetic expression (used by tests and the
/// VM fuzzer to exercise the expression grammar in isolation).
StatusOr<std::unique_ptr<Expr>> ParseExpression(std::string_view source);

/// Splits a trigger script into individual statements on top-level `;`,
/// honouring single-quoted strings and `--` line comments. Whitespace-
/// and comment-only chunks are dropped, so a file of statements each
/// ending in `;` (with or without a trailing newline) round-trips
/// cleanly into ParseCreateTrigger inputs.
std::vector<std::string> SplitStatements(std::string_view script);

}  // namespace cql
}  // namespace implistat

#endif  // IMPLISTAT_CQL_PARSER_H_
