#include "cql/diag.h"

#include <algorithm>

namespace implistat {
namespace cql {

LineCol LocateOffset(std::string_view source, size_t offset) {
  offset = std::min(offset, source.size());
  LineCol lc;
  size_t line_start = 0;
  for (size_t i = 0; i < offset; ++i) {
    if (source[i] == '\n') {
      ++lc.line;
      line_start = i + 1;
    }
  }
  lc.column = offset - line_start + 1;
  return lc;
}

namespace {

std::string_view LineContaining(std::string_view source, size_t offset) {
  offset = std::min(offset, source.size());
  size_t begin = source.rfind('\n', offset == 0 ? 0 : offset - 1);
  begin = (begin == std::string_view::npos || offset == 0) ? 0 : begin + 1;
  if (begin > offset) begin = offset;
  size_t end = source.find('\n', offset);
  if (end == std::string_view::npos) end = source.size();
  return source.substr(begin, end - begin);
}

}  // namespace

std::string RenderDiagnostic(std::string_view source, const Diagnostic& diag,
                             std::string_view prefix) {
  LineCol lc = LocateOffset(source, diag.span.offset);
  std::string out;
  out.append(prefix);
  out.append(" at ");
  out.append(std::to_string(lc.line));
  out.push_back(':');
  out.append(std::to_string(lc.column));
  out.append(": ");
  out.append(diag.message);
  std::string_view line = LineContaining(source, diag.span.offset);
  if (!line.empty()) {
    out.append("\n  ");
    out.append(line);
    out.append("\n  ");
    // Tabs keep their width so the caret stays under the right glyph.
    for (size_t i = 0; i + 1 < lc.column; ++i) {
      out.push_back(i < line.size() && line[i] == '\t' ? '\t' : ' ');
    }
    size_t width = std::max<size_t>(diag.span.length, 1);
    width = std::min(width, line.size() - std::min(lc.column - 1, line.size()) + 1);
    for (size_t i = 0; i < std::max<size_t>(width, 1); ++i) out.push_back('^');
  }
  return out;
}

Status DiagnosticToStatus(std::string_view source, const Diagnostic& diag,
                          std::string_view prefix) {
  return Status::InvalidArgument(RenderDiagnostic(source, diag, prefix));
}

}  // namespace cql
}  // namespace implistat
