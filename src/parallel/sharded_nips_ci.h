// ShardedNipsCi — parallel ingest for the NIPS/CI ensemble.
//
// Stochastic averaging (§4.5) already routes every tuple to exactly one
// of the m bitmaps by its hash's routing bits, so the ensemble is
// embarrassingly shardable: partition the m bitmaps into T disjoint
// contiguous ranges, give each range to one worker thread, and no two
// threads ever touch the same bitmap.
//
//   caller ("router" thread)                      worker t (t = 0..T-1)
//   ------------------------                      ---------------------
//   hash each tuple once (RouteOf)                FrontWait on its ring
//   append (a, b, bitmap, cell) to the            ObserveRouted each record
//     owning shard's open batch                     (prefetching a few ahead)
//   CommitPush when the batch fills               PopFront, repeat
//
// Ordering guarantee → bit-identical estimates: each bitmap belongs to
// exactly one shard, each shard's ring is FIFO, and the router appends in
// stream order, so every bitmap sees exactly the subsequence of the
// stream it would have seen under sequential NipsCi::Observe, in the same
// order. Sketch state — and therefore Estimate() and Serialize() — is
// byte-identical to a sequential NipsCi with the same options and seed
// (tests/parallel_determinism_test.cc proves this under TSAN).
//
// Threading contract:
//  * Single router: Observe/ObserveBatch/Drain and all read accessors
//    must come from one thread at a time — the SPSC rings have exactly
//    one producer. A second thread opening a batch trips an
//    IMPLISTAT_CHECK (crash over silent corruption).
//  * Quiesce-before-read: NipsCi's read paths (FlushMetrics and
//    everything that calls it) mutate unsynchronized bookkeeping, so
//    every read accessor here first Drain()s — commit open batches, wait
//    until every ring is empty. The ring's release/acquire handoff makes
//    all worker effects (bitmap state, thread-local metric flushes)
//    visible to the router before the read proceeds. Reads mid-stream
//    are therefore safe and exact; they just stall the pipeline.
//
// Observability (the PR 1 batched-flush pattern, extended across
// threads): the router counts routed tuples per shard in plain members
// and folds them into `implistat_shard_tuples_total{shard=...}` at
// Drain(); `implistat_queue_depth{shard=...}` records each ring's depth
// in batches at the moment a drain began — a measure of how far ahead
// the router runs. Workers flush their thread-local dirty-exclusion
// counts after every batch, so a snapshot taken after any read boundary
// is exact (see fringe_cell.h).

#ifndef IMPLISTAT_PARALLEL_SHARDED_NIPS_CI_H_
#define IMPLISTAT_PARALLEL_SHARDED_NIPS_CI_H_

#include <array>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/nips_ci_ensemble.h"
#include "parallel/spsc_ring.h"

namespace implistat {

/// One pre-routed stream element in flight to a shard worker.
struct RoutedTuple {
  ItemsetKey a;
  ItemsetKey b;
  uint32_t bitmap;
  int32_t cell;
};

/// Records per ring slot. Big enough to amortize the publish/wake
/// handshake to well under a nanosecond per tuple; small enough that a
/// batch (12 KiB) stays cache-resident while the worker drains it.
inline constexpr size_t kIngestBatchCapacity = 512;

struct IngestBatch {
  uint32_t size = 0;
  std::array<RoutedTuple, kIngestBatchCapacity> records;
};

struct ShardedNipsCiOptions {
  /// Worker threads T; clamped nowhere — must be 1..ensemble.num_bitmaps
  /// (checked). T = 1 still runs the full router/queue/worker pipeline
  /// (useful as the parallelism-free overhead baseline).
  int threads = 2;
  /// Ring capacity per shard, in batches (rounded up to a power of two).
  /// Deeper rings let the router absorb longer worker stalls before
  /// blocking.
  size_t queue_capacity = 32;
  NipsCiOptions ensemble;
};

class ShardedNipsCi final : public ImplicationEstimator {
 public:
  ShardedNipsCi(ImplicationConditions conditions,
                ShardedNipsCiOptions options);
  ~ShardedNipsCi() override;

  ShardedNipsCi(const ShardedNipsCi&) = delete;
  ShardedNipsCi& operator=(const ShardedNipsCi&) = delete;

  /// Router-side ingest: hash, pack, dispatch. Blocks only when the
  /// owning shard's ring is full.
  void Observe(ItemsetKey a, ItemsetKey b) override;
  void ObserveBatch(std::span<const ItemsetPair> batch) override;

  /// Commits open batches and waits until every shard's ring is empty
  /// and its effects are visible (the quiesce barrier). Also folds the
  /// per-shard ingest counters into the metrics registry. Router thread
  /// only. Const because read accessors call it — the same bookkeeping-
  /// side-effect convention as NipsCi::FlushMetrics, with the thread
  /// contract making it sound.
  void Drain() const;

  /// All reads drain first, then answer from the inner ensemble;
  /// bit-identical to the sequential estimator's answers.
  CiEstimate Estimate() const;
  double EstimateImplicationCount() const override;
  double EstimateNonImplicationCount() const override;
  double EstimateSupportedDistinct() const override;
  double EstimateStdError() const override;
  size_t MemoryBytes() const override;
  std::string name() const override { return "NIPS/CI[sharded]"; }

  size_t TrackedItemsets() const;
  std::string Serialize() const;

  /// Durable-state contract (core/estimator.h). Snapshots drain first and
  /// carry the kNipsCi kind — a sharded checkpoint restores into a
  /// sequential NipsCi and vice versa, byte-for-byte interchangeable.
  /// RestoreState additionally requires the snapshot's bitmap count to
  /// match this pipeline's (the bitmap→shard partition depends on m).
  StatusOr<std::string> SerializeState() const override;
  Status RestoreState(std::string_view snapshot) override;
  Status MergeFrom(const ImplicationEstimator& other) override;

  /// The quiesced inner ensemble (drains first) — for Merge with /
  /// comparison against sequential sketches and for probes.
  const NipsCi& ensemble() const;

  int threads() const { return static_cast<int>(shards_.size()); }

  /// Tuples routed so far (router-side exact count).
  uint64_t RoutedTuples() const;

 private:
  struct Shard;

  void Push(NipsCi::Route route, ItemsetKey a, ItemsetKey b);
  void WorkerLoop(Shard* shard);
  void ProcessBatch(const IngestBatch& batch);
  // Latches the router thread id on first use; aborts if a second thread
  // ever routes. Called on the cold per-batch path, not per tuple.
  void CheckRouterThread() const;

  NipsCi inner_;
  std::vector<int> shard_of_;  // bitmap index -> shard index
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::atomic<std::thread::id> router_thread_{};
};

}  // namespace implistat

#endif  // IMPLISTAT_PARALLEL_SHARDED_NIPS_CI_H_
