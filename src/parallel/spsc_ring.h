// Bounded single-producer / single-consumer ring with in-place slots.
//
// The parallel ingest layer (sharded_nips_ci.h) moves fixed-size record
// batches from the router thread to each shard worker through one of
// these. The slots live inside the ring, so the producer fills the tail
// slot in place and publishes it with one release store — no allocation,
// no copying, no locks on the steady-state path.
//
// Protocol (exactly one producer thread, one consumer thread):
//   producer:  T* s = ring.BeginPushWait();  fill *s;  ring.CommitPush();
//   consumer:  T* s = ring.FrontWait();      use *s;   ring.PopFront();
// A slot returned by BeginPush stays owned by the producer until
// CommitPush; a slot returned by Front stays owned by the consumer until
// PopFront (it may be reset in place before the pop — the producer will
// reuse it).
//
// Blocking: both waits spin briefly, then park on the C++20 atomic
// wait/notify futex. The notifying side pays a syscall only when the
// peer is actually parked, so a keeping-up pipeline never enters the
// kernel. On an oversubscribed host (fewer cores than threads) parking
// kicks in immediately after the spin budget, which is what makes the
// 1-core degenerate case degrade gracefully instead of livelocking.
//
// Memory ordering: CommitPush stores tail_ with release and PopFront
// stores head_ with release, so everything the producer wrote into a slot
// happens-before the consumer's use of it, and everything the consumer
// did while holding a slot (including side effects like bitmap updates)
// happens-before the producer observing the slot free — WaitEmpty's
// acquire load of head_ is the quiesce barrier ShardedNipsCi::Drain
// relies on.

#ifndef IMPLISTAT_PARALLEL_SPSC_RING_H_
#define IMPLISTAT_PARALLEL_SPSC_RING_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/bits.h"

namespace implistat {

/// Pause hint for spin loops; a no-op where the ISA has none.
inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two, minimum 2.
  explicit SpscRing(size_t min_capacity)
      : slots_(NextPowerOfTwo(min_capacity < 2 ? 2 : min_capacity)),
        mask_(slots_.size() - 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return slots_.size(); }

  // ---- producer side -------------------------------------------------

  /// The tail slot to fill, or nullptr when the ring is full. Repeated
  /// calls before CommitPush return the same slot.
  T* BeginPush() {
    uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_cache_ == slots_.size()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (t - head_cache_ == slots_.size()) return nullptr;
    }
    return &slots_[t & mask_];
  }

  /// BeginPush that spins briefly, then parks until the consumer frees a
  /// slot.
  T* BeginPushWait() {
    if (T* slot = BeginPush()) return slot;
    for (int spin = 0; spin < kSpinsBeforePark; ++spin) {
      CpuRelax();
      if (T* slot = BeginPush()) return slot;
    }
    for (;;) {
      uint64_t h = head_.load(std::memory_order_acquire);
      if (T* slot = BeginPush()) return slot;
      head_.wait(h, std::memory_order_acquire);
    }
  }

  /// Publishes the slot handed out by BeginPush.
  void CommitPush() {
    tail_.store(tail_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
    tail_.notify_one();
  }

  /// Producer-side barrier: returns once the consumer has popped every
  /// committed slot. On return, all consumer-side effects of processing
  /// them are visible to the caller.
  void WaitEmpty() const {
    for (;;) {
      uint64_t h = head_.load(std::memory_order_acquire);
      if (h == tail_.load(std::memory_order_relaxed)) return;
      for (int spin = 0; spin < kSpinsBeforePark; ++spin) {
        CpuRelax();
        if (head_.load(std::memory_order_acquire) != h) break;
      }
      head_.wait(h, std::memory_order_acquire);
    }
  }

  // ---- consumer side -------------------------------------------------

  /// Oldest committed slot, or nullptr when the ring is empty. Repeated
  /// calls before PopFront return the same slot.
  T* Front() {
    uint64_t h = head_.load(std::memory_order_relaxed);
    if (tail_cache_ == h) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (tail_cache_ == h) return nullptr;
    }
    return &slots_[h & mask_];
  }

  /// Front that spins briefly, then parks until the producer commits.
  T* FrontWait() {
    if (T* slot = Front()) return slot;
    for (int spin = 0; spin < kSpinsBeforePark; ++spin) {
      CpuRelax();
      if (T* slot = Front()) return slot;
    }
    for (;;) {
      uint64_t t = tail_.load(std::memory_order_acquire);
      if (T* slot = Front()) return slot;
      tail_.wait(t, std::memory_order_acquire);
    }
  }

  /// Releases the slot handed out by Front back to the producer.
  void PopFront() {
    head_.store(head_.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
    head_.notify_one();
  }

  // ---- either side (approximate) -------------------------------------

  size_t SizeApprox() const {
    return static_cast<size_t>(tail_.load(std::memory_order_acquire) -
                               head_.load(std::memory_order_acquire));
  }

 private:
  // ~1 µs of spinning before the futex; batches arrive on a much coarser
  // cadence, so a keeping-up peer is caught in the spin window.
  static constexpr int kSpinsBeforePark = 1024;

  std::vector<T> slots_;
  const uint64_t mask_;
  // Producer-owned line: published tail plus the producer's cached view
  // of head. Consumer-owned line likewise. Keeping the pairs on separate
  // cache lines avoids ping-ponging the indices between cores.
  alignas(64) std::atomic<uint64_t> tail_{0};
  uint64_t head_cache_ = 0;
  alignas(64) std::atomic<uint64_t> head_{0};
  uint64_t tail_cache_ = 0;
};

}  // namespace implistat

#endif  // IMPLISTAT_PARALLEL_SPSC_RING_H_
