#include "parallel/sharded_nips_ci.h"

#include <algorithm>

#include "core/fringe_cell.h"
#include "obs/metrics.h"
#include "util/logging.h"
#include "util/serde.h"

namespace implistat {

struct ShardedNipsCi::Shard {
  explicit Shard(size_t queue_capacity) : queue(queue_capacity) {}

  SpscRing<IngestBatch> queue;
  std::thread worker;

  // Router-owned: the ring slot currently being filled (nullptr between
  // batches) and the exact routed-tuple count with its flushed watermark
  // (folded into `tuples` at Drain — plain members, never touched by the
  // worker).
  IngestBatch* open = nullptr;
  uint64_t routed = 0;
  uint64_t routed_flushed = 0;

  obs::Counter* tuples = nullptr;
  obs::Gauge* depth = nullptr;
};

ShardedNipsCi::ShardedNipsCi(ImplicationConditions conditions,
                             ShardedNipsCiOptions options)
    : inner_(conditions, options.ensemble) {
  const int m = inner_.num_bitmaps();
  IMPLISTAT_CHECK(options.threads >= 1 && options.threads <= m)
      << "threads must be in 1.." << m;
  const int t_count = options.threads;
  // Balanced contiguous ranges: shard s owns bitmaps [s*m/T, (s+1)*m/T).
  // Contiguity keeps each worker's bitmaps adjacent in memory.
  shard_of_.resize(static_cast<size_t>(m));
  for (int b = 0; b < m; ++b) {
    shard_of_[static_cast<size_t>(b)] =
        static_cast<int>(static_cast<int64_t>(b) * t_count / m);
  }
  shards_.reserve(static_cast<size_t>(t_count));
  for (int s = 0; s < t_count; ++s) {
    shards_.push_back(std::make_unique<Shard>(options.queue_capacity));
    IMPLISTAT_IF_METRICS({
      auto& reg = obs::MetricsRegistry::Global();
      const std::string label = std::to_string(s);
      shards_.back()->tuples = reg.GetCounter(
          "implistat_shard_tuples_total",
          "Tuples routed to this ingest shard (folded in at drain/read "
          "boundaries; summed over shards this is the parallel stream "
          "length n)",
          "shard", label);
      shards_.back()->depth = reg.GetGauge(
          "implistat_queue_depth",
          "Shard ring depth in batches when the last drain began (how "
          "far the router ran ahead of this worker)",
          "shard", label);
    });
  }
  for (auto& shard : shards_) {
    shard->worker = std::thread(&ShardedNipsCi::WorkerLoop, this,
                                shard.get());
  }
}

ShardedNipsCi::~ShardedNipsCi() {
  Drain();
  // Poison pill per shard: an empty committed batch. Workers exit after
  // processing it; the router never commits an empty batch otherwise.
  for (auto& shard : shards_) {
    shard->open = shard->queue.BeginPushWait();
    shard->open->size = 0;
    shard->queue.CommitPush();
    shard->open = nullptr;
  }
  for (auto& shard : shards_) shard->worker.join();
}

void ShardedNipsCi::CheckRouterThread() const {
  const std::thread::id self = std::this_thread::get_id();
  std::thread::id expected{};
  if (!router_thread_.compare_exchange_strong(expected, self,
                                              std::memory_order_relaxed)) {
    IMPLISTAT_CHECK(expected == self)
        << "ShardedNipsCi: single-router contract violated — ingest and "
           "reads must stay on one thread (the rings are SPSC)";
  }
}

void ShardedNipsCi::Push(NipsCi::Route route, ItemsetKey a, ItemsetKey b) {
  Shard& shard = *shards_[static_cast<size_t>(
      shard_of_[static_cast<size_t>(route.bitmap)])];
  IngestBatch* open = shard.open;
  if (open == nullptr) [[unlikely]] {
    CheckRouterThread();
    open = shard.queue.BeginPushWait();
    shard.open = open;
  }
  open->records[open->size++] = RoutedTuple{a, b, route.bitmap, route.cell};
  ++shard.routed;
  if (open->size == kIngestBatchCapacity) [[unlikely]] {
    shard.queue.CommitPush();
    shard.open = nullptr;
  }
}

void ShardedNipsCi::Observe(ItemsetKey a, ItemsetKey b) {
  Push(inner_.RouteOf(a), a, b);
}

void ShardedNipsCi::ObserveBatch(std::span<const ItemsetPair> batch) {
  // Hash a chunk in a tight loop, then dispatch; mirrors the sequential
  // NipsCi::ObserveBatch structure with Push replacing the cell update.
  constexpr size_t kChunk = 32;
  NipsCi::Route routes[kChunk];
  for (size_t base = 0; base < batch.size(); base += kChunk) {
    const size_t n = std::min(kChunk, batch.size() - base);
    for (size_t i = 0; i < n; ++i) {
      routes[i] = inner_.RouteOf(batch[base + i].a);
    }
    for (size_t i = 0; i < n; ++i) {
      const ItemsetPair& p = batch[base + i];
      Push(routes[i], p.a, p.b);
    }
  }
}

void ShardedNipsCi::WorkerLoop(Shard* shard) {
  for (;;) {
    IngestBatch* batch = shard->queue.FrontWait();
    const bool stop = batch->size == 0;
    ProcessBatch(*batch);
    // Make this thread's pending dirty-exclusion counts visible before
    // the slot is released: the PopFront release / WaitEmpty acquire pair
    // orders them before any router-side snapshot.
    IMPLISTAT_IF_METRICS(FlushDirtyExclusionMetrics());
    batch->size = 0;  // reset the slot for reuse before handing it back
    shard->queue.PopFront();
    if (stop) return;
  }
}

void ShardedNipsCi::ProcessBatch(const IngestBatch& batch) {
  constexpr uint32_t kPrefetchAhead = 8;
  const uint32_t n = batch.size;
  for (uint32_t i = 0; i < n; ++i) {
    if (i + kPrefetchAhead < n) {
      const RoutedTuple& ahead = batch.records[i + kPrefetchAhead];
      inner_.bitmap(static_cast<int>(ahead.bitmap))
          .PrefetchCell(ahead.cell);
    }
    const RoutedTuple& r = batch.records[i];
    inner_.ObserveRouted(NipsCi::Route{r.bitmap, r.cell}, r.a, r.b);
  }
}

void ShardedNipsCi::Drain() const {
  CheckRouterThread();
  for (const auto& shard : shards_) {
    if (shard->open != nullptr && shard->open->size > 0) {
      shard->queue.CommitPush();
      shard->open = nullptr;
    }
    IMPLISTAT_IF_METRICS(shard->depth->Set(
        static_cast<int64_t>(shard->queue.SizeApprox())));
  }
  for (const auto& shard : shards_) {
    shard->queue.WaitEmpty();  // the quiesce barrier (acquire)
  }
  IMPLISTAT_IF_METRICS({
    for (const auto& shard : shards_) {
      if (shard->routed != shard->routed_flushed) {
        shard->tuples->Increment(shard->routed - shard->routed_flushed);
        shard->routed_flushed = shard->routed;
      }
    }
  });
  // Quiesced: workers are parked with all effects visible, so the inner
  // ensemble's const-but-mutating read bookkeeping is safe to run.
  inner_.FlushMetrics();
}

CiEstimate ShardedNipsCi::Estimate() const {
  Drain();
  return inner_.Estimate();
}

double ShardedNipsCi::EstimateImplicationCount() const {
  return Estimate().implication;
}

double ShardedNipsCi::EstimateNonImplicationCount() const {
  return Estimate().non_implication;
}

double ShardedNipsCi::EstimateSupportedDistinct() const {
  return Estimate().supported_distinct;
}

double ShardedNipsCi::EstimateStdError() const {
  return ensemble().EstimateStdError();  // ensemble() drains first
}

size_t ShardedNipsCi::MemoryBytes() const {
  Drain();
  size_t bytes = sizeof(*this) + inner_.MemoryBytes();
  for (const auto& shard : shards_) {
    bytes += sizeof(Shard) + shard->queue.capacity() * sizeof(IngestBatch);
  }
  return bytes;
}

size_t ShardedNipsCi::TrackedItemsets() const {
  Drain();
  return inner_.TrackedItemsets();
}

std::string ShardedNipsCi::Serialize() const {
  Drain();
  return inner_.Serialize();
}

StatusOr<std::string> ShardedNipsCi::SerializeState() const {
  Drain();
  return WrapSnapshot(SnapshotKind::kNipsCi, inner_.Serialize());
}

Status ShardedNipsCi::RestoreState(std::string_view snapshot) {
  IMPLISTAT_ASSIGN_OR_RETURN(std::string_view payload,
                             UnwrapSnapshot(snapshot, SnapshotKind::kNipsCi));
  IMPLISTAT_ASSIGN_OR_RETURN(NipsCi restored, NipsCi::Deserialize(payload));
  // The bitmap→shard partition (shard_of_) and the worker count were sized
  // for this pipeline's m; a snapshot with a different ensemble width
  // cannot be adopted in place.
  if (restored.num_bitmaps() != inner_.num_bitmaps()) {
    return Status::InvalidArgument(
        "ShardedNipsCi::RestoreState: snapshot has " +
        std::to_string(restored.num_bitmaps()) + " bitmaps, pipeline has " +
        std::to_string(inner_.num_bitmaps()));
  }
  // Quiesce, then swap the inner ensemble while every worker is parked in
  // FrontWait with the rings empty; the next ring handoff (release →
  // acquire) publishes the restored state to the workers.
  Drain();
  inner_ = std::move(restored);
  return Status::OK();
}

Status ShardedNipsCi::MergeFrom(const ImplicationEstimator& other) {
  Drain();
  if (const auto* sharded = dynamic_cast<const ShardedNipsCi*>(&other)) {
    return inner_.Merge(sharded->ensemble());  // ensemble() drains `other`
  }
  // NipsCi::MergeFrom handles both the direct NipsCi cast and the
  // wire-contract fallback for anything else that snapshots as kNipsCi.
  return inner_.MergeFrom(other);
}

const NipsCi& ShardedNipsCi::ensemble() const {
  Drain();
  return inner_;
}

uint64_t ShardedNipsCi::RoutedTuples() const {
  uint64_t n = 0;
  for (const auto& shard : shards_) n += shard->routed;
  return n;
}

}  // namespace implistat
