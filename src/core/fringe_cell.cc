#include "core/fringe_cell.h"

#include <algorithm>
#include <vector>

#include "obs/metrics.h"

namespace implistat {

namespace {

// §3.1.1 monotone-dirty events, split by the violated condition. Handles
// are process-global and shared with nips.cc (same names → same counters);
// registration happens on first use or via RegisterNipsMetrics().
struct DirtyMetrics {
  obs::Counter* multiplicity;
  obs::Counter* confidence;

  static DirtyMetrics& Get() {
    static DirtyMetrics m{
        obs::MetricsRegistry::Global().GetCounter(
            "nips_dirty_exclusions_total",
            "Itemsets newly excluded as non-implications (section 3.1.1 "
            "monotone-dirty events), by violated condition",
            "condition", "multiplicity"),
        obs::MetricsRegistry::Global().GetCounter(
            "nips_dirty_exclusions_total",
            "Itemsets newly excluded as non-implications (section 3.1.1 "
            "monotone-dirty events), by violated condition",
            "condition", "confidence"),
    };
    return m;
  }
};

// Dirty transitions happen per itemset lifetime — frequent enough that an
// atomic RMW each would show up on the ingest path. They are counted with
// plain thread-local increments and folded into the shared counters by
// FlushDirtyExclusionMetrics() (called from Nips::FlushMetrics at read
// boundaries). Concurrent ingest threads each carry their own pending
// counts; a thread's remainder becomes visible at its next flush.
struct PendingDirty {
  uint64_t multiplicity = 0;
  uint64_t confidence = 0;
};
thread_local PendingDirty t_pending_dirty;

void CountDirtyExclusion(DirtyReason reason) {
  if (reason == DirtyReason::kMultiplicity) {
    ++t_pending_dirty.multiplicity;
  } else {
    ++t_pending_dirty.confidence;
  }
}

}  // namespace

void FlushDirtyExclusionMetrics() {
  if constexpr (obs::kMetricsEnabled) {
    DirtyMetrics& m = DirtyMetrics::Get();  // also pre-registers
    PendingDirty& p = t_pending_dirty;
    if (p.multiplicity != 0) {
      m.multiplicity->Increment(p.multiplicity);
      p.multiplicity = 0;
    }
    if (p.confidence != 0) {
      m.confidence->Increment(p.confidence);
      p.confidence = 0;
    }
  }
}

FringeCell::Outcome FringeCell::Observe(ItemsetKey a, ItemsetKey b,
                                        const ImplicationConditions& cond) {
  ItemsetState& state = items_[a];
  bool was_dirty = state.dirty();
  bool dirty = state.Observe(b, cond);
  if (state.supported(cond)) has_supported_ = true;
  if (dirty && !was_dirty) {
    IMPLISTAT_IF_METRICS(CountDirtyExclusion(state.dirty_reason()));
  }
  return dirty ? Outcome::kNonImplication : Outcome::kUndecided;
}

FringeCell::Outcome FringeCell::Merge(const FringeCell& other,
                                      const ImplicationConditions& cond) {
  Outcome outcome = Outcome::kUndecided;
  for (const auto& [key, other_state] : other.items_) {
    auto [it, inserted] = items_.try_emplace(key, other_state);
    if (!inserted) {
      // Count only exclusions the merge itself discovers; a dirty state
      // arriving from the other side was already counted where it turned
      // dirty (or predates this process — see DirtyReason).
      bool was_dirty = it->second.dirty();
      it->second.Merge(other_state, cond);
      if (!was_dirty && it->second.dirty()) {
        IMPLISTAT_IF_METRICS(CountDirtyExclusion(it->second.dirty_reason()));
      }
    }
    if (it->second.dirty()) outcome = Outcome::kNonImplication;
    if (it->second.supported(cond)) has_supported_ = true;
  }
  if (other.has_supported_) has_supported_ = true;
  return outcome;
}

void FringeCell::SerializeTo(ByteWriter* out) const {
  out->PutBool(has_supported_);
  out->PutVarint64(items_.size());
  // Canonical order: the map iterates in insertion-history order, which a
  // restore cannot reproduce, so sort by key — two cells with the same
  // tracked itemsets serialize to the same bytes no matter how they got
  // there (live stream, merge, or an earlier restore).
  std::vector<ItemsetKey> keys;
  keys.reserve(items_.size());
  for (const auto& [key, state] : items_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (ItemsetKey key : keys) {
    out->PutU64(key);
    items_.at(key).SerializeTo(out);
  }
}

StatusOr<FringeCell> FringeCell::Deserialize(ByteReader* in) {
  FringeCell cell;
  IMPLISTAT_RETURN_NOT_OK(in->ReadBool(&cell.has_supported_));
  uint64_t items;
  IMPLISTAT_RETURN_NOT_OK(in->ReadVarint64(&items));
  if (items > (uint64_t{1} << 28)) {
    return Status::InvalidArgument("FringeCell: implausible itemset count");
  }
  for (uint64_t i = 0; i < items; ++i) {
    ItemsetKey key;
    IMPLISTAT_RETURN_NOT_OK(in->ReadU64(&key));
    IMPLISTAT_ASSIGN_OR_RETURN(ItemsetState state,
                               ItemsetState::Deserialize(in));
    cell.items_.emplace(key, std::move(state));
  }
  return cell;
}

void FringeCell::SerializeItemPatchTo(uint64_t since_stamp,
                                      ByteWriter* out) const {
  out->PutBool(has_supported_);
  out->PutVarint64(items_.size());
  std::vector<ItemsetKey> changed;
  for (const auto& [key, stamp] : stamps_) {
    if (stamp > since_stamp) changed.push_back(key);
  }
  // Canonical key order, matching SerializeTo: the patch bytes for a
  // given change set are unique no matter the observation order.
  std::sort(changed.begin(), changed.end());
  out->PutVarint64(changed.size());
  for (ItemsetKey key : changed) {
    out->PutU64(key);
    items_.at(key).SerializeTo(out);
  }
}

StatusOr<FringeCell::ItemPatch> FringeCell::DeserializeItemPatch(
    ByteReader* in) {
  ItemPatch patch;
  IMPLISTAT_RETURN_NOT_OK(in->ReadBool(&patch.has_supported));
  IMPLISTAT_RETURN_NOT_OK(in->ReadVarint64(&patch.total_items));
  if (patch.total_items > (uint64_t{1} << 28)) {
    return Status::InvalidArgument("ItemPatch: implausible itemset count");
  }
  uint64_t changed;
  IMPLISTAT_RETURN_NOT_OK(in->ReadVarint64(&changed));
  if (changed > patch.total_items) {
    return Status::InvalidArgument("ItemPatch: more changes than itemsets");
  }
  ItemsetKey prev = 0;
  for (uint64_t i = 0; i < changed; ++i) {
    ItemsetKey key;
    IMPLISTAT_RETURN_NOT_OK(in->ReadU64(&key));
    if (i > 0 && key <= prev) {
      return Status::InvalidArgument("ItemPatch: keys out of order");
    }
    prev = key;
    IMPLISTAT_ASSIGN_OR_RETURN(ItemsetState state,
                               ItemsetState::Deserialize(in));
    patch.items.emplace_back(key, std::move(state));
  }
  return patch;
}

size_t FringeCell::NewKeys(const ItemPatch& patch) const {
  size_t inserts = 0;
  for (const auto& [key, state] : patch.items) {
    if (items_.find(key) == items_.end()) ++inserts;
  }
  return inserts;
}

size_t FringeCell::ApplyItemPatch(ItemPatch&& patch) {
  const size_t before = items_.size();
  for (auto& [key, state] : patch.items) {
    items_.insert_or_assign(key, std::move(state));
  }
  has_supported_ = patch.has_supported;
  return items_.size() - before;
}

size_t FringeCell::MemoryBytes() const {
  // The map's bucket array is real heap the fringe budget must answer for
  // (§4.6 is a memory claim); it used to be omitted, undercounting every
  // populated cell by bucket_count * sizeof(pointer).
  size_t bytes = sizeof(*this) + items_.bucket_count() * sizeof(void*);
  for (const auto& [key, state] : items_) {
    bytes += sizeof(key) + state.MemoryBytes() +
             2 * sizeof(void*);  // hash-table node overhead, approximately
  }
  // Delta-tracking stamps (one u64 per itemset touched since tracking
  // began; empty unless the owning bitmap serves deltas).
  bytes += stamps_.bucket_count() * sizeof(void*) +
           stamps_.size() * (sizeof(ItemsetKey) + sizeof(uint64_t) +
                             2 * sizeof(void*));
  return bytes;
}

}  // namespace implistat
