#include "core/fringe_cell.h"

namespace implistat {

FringeCell::Outcome FringeCell::Observe(ItemsetKey a, ItemsetKey b,
                                        const ImplicationConditions& cond) {
  ItemsetState& state = items_[a];
  bool dirty = state.Observe(b, cond);
  if (state.supported(cond)) has_supported_ = true;
  return dirty ? Outcome::kNonImplication : Outcome::kUndecided;
}

FringeCell::Outcome FringeCell::Merge(const FringeCell& other,
                                      const ImplicationConditions& cond) {
  Outcome outcome = Outcome::kUndecided;
  for (const auto& [key, other_state] : other.items_) {
    auto [it, inserted] = items_.try_emplace(key, other_state);
    if (!inserted) it->second.Merge(other_state, cond);
    if (it->second.dirty()) outcome = Outcome::kNonImplication;
    if (it->second.supported(cond)) has_supported_ = true;
  }
  if (other.has_supported_) has_supported_ = true;
  return outcome;
}

void FringeCell::SerializeTo(ByteWriter* out) const {
  out->PutBool(has_supported_);
  out->PutVarint64(items_.size());
  for (const auto& [key, state] : items_) {
    out->PutU64(key);
    state.SerializeTo(out);
  }
}

StatusOr<FringeCell> FringeCell::Deserialize(ByteReader* in) {
  FringeCell cell;
  IMPLISTAT_RETURN_NOT_OK(in->ReadBool(&cell.has_supported_));
  uint64_t items;
  IMPLISTAT_RETURN_NOT_OK(in->ReadVarint64(&items));
  if (items > (uint64_t{1} << 28)) {
    return Status::InvalidArgument("FringeCell: implausible itemset count");
  }
  for (uint64_t i = 0; i < items; ++i) {
    ItemsetKey key;
    IMPLISTAT_RETURN_NOT_OK(in->ReadU64(&key));
    IMPLISTAT_ASSIGN_OR_RETURN(ItemsetState state,
                               ItemsetState::Deserialize(in));
    cell.items_.emplace(key, std::move(state));
  }
  return cell;
}

size_t FringeCell::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [key, state] : items_) {
    bytes += sizeof(key) + state.MemoryBytes() +
             2 * sizeof(void*);  // hash-table node overhead, approximately
  }
  return bytes;
}

}  // namespace implistat
