#include "core/sliding.h"

#include <string>
#include <utility>
#include <vector>

#include "util/logging.h"
#include "util/random.h"
#include "util/serde.h"

namespace implistat {

SlidingNipsCi::SlidingNipsCi(ImplicationConditions conditions,
                             SlidingOptions options)
    : conditions_(conditions),
      options_(options),
      next_seed_(options.estimator.seed) {
  IMPLISTAT_CHECK(options_.stride >= 1);
  IMPLISTAT_CHECK(options_.window >= options_.stride);
  IMPLISTAT_CHECK(options_.window % options_.stride == 0)
      << "stride must divide window";
}

void SlidingNipsCi::Observe(ItemsetKey a, ItemsetKey b) {
  if (tuples_ % options_.stride == 0) {
    // Open a new origin. Each gets its own hash seed so that the
    // estimators' errors are independent.
    NipsCiOptions opts = options_.estimator;
    opts.seed = SplitMix64(next_seed_++ + 0x51d1);
    origins_.push_back(
        Origin{tuples_, std::make_unique<NipsCi>(conditions_, opts)});
  }
  for (Origin& origin : origins_) origin.estimator->Observe(a, b);
  ++tuples_;
  // Retire origins more than one window old; the youngest origin at least
  // `window` old answers window queries, older ones are no longer needed.
  while (origins_.size() >= 2 &&
         origins_[1].start + options_.window <= tuples_) {
    origins_.pop_front();
  }
}

double SlidingNipsCi::WindowEstimate() const {
  if (origins_.empty()) return 0.0;
  // The front origin is the youngest one that is >= window old (or the
  // stream start before a full window has elapsed).
  return origins_.front().estimator->EstimateImplicationCount();
}

double SlidingNipsCi::WindowNonImplicationEstimate() const {
  if (origins_.empty()) return 0.0;
  return origins_.front().estimator->EstimateNonImplicationCount();
}

size_t SlidingNipsCi::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const Origin& origin : origins_) {
    bytes += sizeof(Origin) + origin.estimator->MemoryBytes();
  }
  return bytes;
}

StatusOr<std::string> SlidingNipsCi::SerializeState() const {
  ByteWriter out;
  conditions_.SerializeTo(&out);
  out.PutVarint64(options_.window);
  out.PutVarint64(options_.stride);
  out.PutVarint64(tuples_);
  out.PutVarint64(next_seed_);
  out.PutVarint64(origins_.size());
  for (const Origin& origin : origins_) {
    out.PutVarint64(origin.start);
    out.PutLengthPrefixed(origin.estimator->Serialize());
  }
  return WrapSnapshot(SnapshotKind::kSlidingNipsCi, out.Release());
}

Status SlidingNipsCi::RestoreState(std::string_view snapshot) {
  IMPLISTAT_ASSIGN_OR_RETURN(
      std::string_view payload,
      UnwrapSnapshot(snapshot, SnapshotKind::kSlidingNipsCi));
  ByteReader in(payload);
  IMPLISTAT_ASSIGN_OR_RETURN(ImplicationConditions conditions,
                             ImplicationConditions::Deserialize(&in));
  SlidingOptions options = options_;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&options.window));
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&options.stride));
  // The constructor CHECK-aborts on these; a corrupt snapshot must fail
  // with a Status instead.
  if (options.stride < 1 || options.window < options.stride ||
      options.window % options.stride != 0) {
    return Status::InvalidArgument("SlidingNipsCi: bad window geometry");
  }
  uint64_t tuples, next_seed, num_origins;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&tuples));
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&next_seed));
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&num_origins));
  // Steady state keeps window/stride + 1 origins; allow that bound (the
  // retirement loop keeps at most one origin older than a window).
  if (num_origins > options.window / options.stride + 1 ||
      num_origins > in.remaining()) {
    return Status::InvalidArgument("SlidingNipsCi: implausible origin count");
  }
  std::deque<Origin> origins;
  uint64_t prev_start = 0;
  for (uint64_t i = 0; i < num_origins; ++i) {
    uint64_t start;
    IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&start));
    // Origins open at stride boundaries, in increasing order, never in
    // the future.
    if (start % options.stride != 0 || start > tuples ||
        (i > 0 && start <= prev_start)) {
      return Status::InvalidArgument("SlidingNipsCi: bad origin start");
    }
    prev_start = start;
    std::string_view sketch_bytes;
    IMPLISTAT_RETURN_NOT_OK(in.ReadLengthPrefixed(&sketch_bytes));
    IMPLISTAT_ASSIGN_OR_RETURN(NipsCi decoded,
                               NipsCi::Deserialize(sketch_bytes));
    if (!(decoded.conditions() == conditions)) {
      return Status::InvalidArgument(
          "SlidingNipsCi: origin conditions differ from the window's");
    }
    origins.push_back(
        Origin{start, std::make_unique<NipsCi>(std::move(decoded))});
  }
  if (!in.AtEnd()) {
    return Status::InvalidArgument("SlidingNipsCi: trailing bytes");
  }
  conditions_ = conditions;
  options_ = options;
  origins_ = std::move(origins);
  tuples_ = tuples;
  next_seed_ = next_seed;
  // The restored origins carry no stamp bookkeeping: any baseline noted
  // before the restore is unsound, so forget it and let the next delta
  // request resync with a full snapshot.
  delta_epochs_.clear();
  return Status::OK();
}

namespace {
constexpr uint8_t kSlidingDeltaVersion = 1;
}  // namespace

void SlidingNipsCi::RecordDeltaEpoch(uint64_t epoch) {
  for (uint64_t e : delta_epochs_) {
    if (e == epoch) return;
  }
  delta_epochs_.push_back(epoch);
  while (delta_epochs_.size() > kMaxDeltaEpochs) delta_epochs_.pop_front();
}

void SlidingNipsCi::NoteSnapshotEpoch(uint64_t epoch) {
  for (Origin& origin : origins_) origin.estimator->NoteSnapshotEpoch(epoch);
  RecordDeltaEpoch(epoch);
}

StatusOr<std::string> SlidingNipsCi::SerializeDelta(uint64_t since_epoch,
                                                    uint64_t current_epoch) {
  bool known = false;
  for (uint64_t e : delta_epochs_) known = known || e == since_epoch;
  if (!known) {
    return Status::NotFound("SlidingNipsCi: no delta baseline at epoch " +
                            std::to_string(since_epoch));
  }
  ByteWriter out;
  out.PutU8(kSlidingDeltaTag);
  out.PutU8(kSlidingDeltaVersion);
  out.PutVarint64(options_.window);
  out.PutVarint64(options_.stride);
  out.PutVarint64(tuples_);
  out.PutVarint64(next_seed_);
  out.PutVarint64(origins_.size());
  for (Origin& origin : origins_) {
    out.PutVarint64(origin.start);
    StatusOr<std::string> patch =
        origin.estimator->SerializeDelta(since_epoch, current_epoch);
    if (patch.ok()) {
      out.PutU8(1);  // patch against the baseline
      out.PutLengthPrefixed(*patch);
    } else if (patch.status().code() == StatusCode::kNotFound) {
      // Origin opened after the baseline (or lost its marks to a merge):
      // ship it whole and start tracking from the new epoch.
      out.PutU8(2);  // full sketch
      out.PutLengthPrefixed(origin.estimator->Serialize());
      origin.estimator->NoteSnapshotEpoch(current_epoch);
    } else {
      return patch.status();
    }
  }
  RecordDeltaEpoch(current_epoch);
  return out.Release();
}

Status SlidingNipsCi::ApplyDelta(std::string_view fragment) {
  ByteReader in(fragment);
  uint8_t tag, version;
  IMPLISTAT_RETURN_NOT_OK(in.ReadU8(&tag));
  if (tag != kSlidingDeltaTag) {
    return Status::InvalidArgument(
        "SlidingNipsCi: not a sliding-window delta fragment");
  }
  IMPLISTAT_RETURN_NOT_OK(in.ReadU8(&version));
  if (version != kSlidingDeltaVersion) {
    return Status::InvalidArgument("SlidingNipsCi: unknown delta version " +
                                   std::to_string(version));
  }
  uint64_t window, stride, tuples, next_seed, num_origins;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&window));
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&stride));
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&tuples));
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&next_seed));
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&num_origins));
  if (window != options_.window || stride != options_.stride) {
    return Status::InvalidArgument(
        "SlidingNipsCi: delta window geometry differs from this window's");
  }
  if (tuples < tuples_) {
    return Status::InvalidArgument(
        "SlidingNipsCi: delta regresses the tuple clock");
  }
  if (num_origins > window / stride + 1 || num_origins > in.remaining()) {
    return Status::InvalidArgument("SlidingNipsCi: implausible origin count");
  }

  // Phase 1: decode and validate every shipped origin without touching any
  // state, so a refusal anywhere leaves the window byte-identical.
  struct Pending {
    uint64_t start = 0;
    size_t existing = 0;           // index into origins_ (patch mode)
    NipsCi::DeltaFragment patch;   // patch mode
    std::unique_ptr<NipsCi> full;  // full mode
  };
  std::vector<Pending> pending;
  pending.reserve(num_origins);
  uint64_t prev_start = 0;
  // Shipped starts increase and the sender only retires from the front,
  // so a forward scan matches patch-mode origins to the ones we hold.
  size_t cursor = 0;
  for (uint64_t i = 0; i < num_origins; ++i) {
    uint64_t start;
    IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&start));
    if (start % stride != 0 || start > tuples ||
        (i > 0 && start <= prev_start)) {
      return Status::InvalidArgument("SlidingNipsCi: bad origin start");
    }
    prev_start = start;
    uint8_t mode;
    IMPLISTAT_RETURN_NOT_OK(in.ReadU8(&mode));
    std::string_view bytes;
    IMPLISTAT_RETURN_NOT_OK(in.ReadLengthPrefixed(&bytes));
    Pending p;
    p.start = start;
    if (mode == 1) {
      while (cursor < origins_.size() && origins_[cursor].start < start) {
        ++cursor;
      }
      if (cursor == origins_.size() || origins_[cursor].start != start) {
        return Status::InvalidArgument(
            "SlidingNipsCi: delta patches an origin this window does not "
            "hold");
      }
      IMPLISTAT_ASSIGN_OR_RETURN(
          p.patch, origins_[cursor].estimator->DecodeDeltaFragment(bytes));
      p.existing = cursor;
      ++cursor;
    } else if (mode == 2) {
      IMPLISTAT_ASSIGN_OR_RETURN(NipsCi decoded, NipsCi::Deserialize(bytes));
      if (!(decoded.conditions() == conditions_)) {
        return Status::InvalidArgument(
            "SlidingNipsCi: origin conditions differ from the window's");
      }
      p.full = std::make_unique<NipsCi>(std::move(decoded));
    } else {
      return Status::InvalidArgument("SlidingNipsCi: bad origin mode");
    }
    pending.push_back(std::move(p));
  }
  if (!in.AtEnd()) {
    return Status::InvalidArgument("SlidingNipsCi: trailing delta bytes");
  }

  // Phase 2: infallible. Rebuild the deque in shipped order; origins the
  // sender no longer lists were retired there and drop here.
  std::deque<Origin> rebuilt;
  for (Pending& p : pending) {
    if (p.full) {
      rebuilt.push_back(Origin{p.start, std::move(p.full)});
    } else {
      Origin& old = origins_[p.existing];
      old.estimator->ApplyDeltaFragment(std::move(p.patch));
      rebuilt.push_back(Origin{p.start, std::move(old.estimator)});
    }
  }
  origins_ = std::move(rebuilt);
  tuples_ = tuples;
  next_seed_ = next_seed;
  return Status::OK();
}

}  // namespace implistat
