#include "core/sliding.h"

#include "util/logging.h"
#include "util/random.h"

namespace implistat {

SlidingNipsCi::SlidingNipsCi(ImplicationConditions conditions,
                             SlidingOptions options)
    : conditions_(conditions),
      options_(options),
      next_seed_(options.estimator.seed) {
  IMPLISTAT_CHECK(options_.stride >= 1);
  IMPLISTAT_CHECK(options_.window >= options_.stride);
  IMPLISTAT_CHECK(options_.window % options_.stride == 0)
      << "stride must divide window";
}

void SlidingNipsCi::Observe(ItemsetKey a, ItemsetKey b) {
  if (tuples_ % options_.stride == 0) {
    // Open a new origin. Each gets its own hash seed so that the
    // estimators' errors are independent.
    NipsCiOptions opts = options_.estimator;
    opts.seed = SplitMix64(next_seed_++ + 0x51d1);
    origins_.push_back(
        Origin{tuples_, std::make_unique<NipsCi>(conditions_, opts)});
  }
  for (Origin& origin : origins_) origin.estimator->Observe(a, b);
  ++tuples_;
  // Retire origins more than one window old; the youngest origin at least
  // `window` old answers window queries, older ones are no longer needed.
  while (origins_.size() >= 2 &&
         origins_[1].start + options_.window <= tuples_) {
    origins_.pop_front();
  }
}

double SlidingNipsCi::WindowEstimate() const {
  if (origins_.empty()) return 0.0;
  // The front origin is the youngest one that is >= window old (or the
  // stream start before a full window has elapsed).
  return origins_.front().estimator->EstimateImplicationCount();
}

double SlidingNipsCi::WindowNonImplicationEstimate() const {
  if (origins_.empty()) return 0.0;
  return origins_.front().estimator->EstimateNonImplicationCount();
}

size_t SlidingNipsCi::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const Origin& origin : origins_) {
    bytes += sizeof(Origin) + origin.estimator->MemoryBytes();
  }
  return bytes;
}

}  // namespace implistat
