#include "core/sliding.h"

#include "util/logging.h"
#include "util/random.h"
#include "util/serde.h"

namespace implistat {

SlidingNipsCi::SlidingNipsCi(ImplicationConditions conditions,
                             SlidingOptions options)
    : conditions_(conditions),
      options_(options),
      next_seed_(options.estimator.seed) {
  IMPLISTAT_CHECK(options_.stride >= 1);
  IMPLISTAT_CHECK(options_.window >= options_.stride);
  IMPLISTAT_CHECK(options_.window % options_.stride == 0)
      << "stride must divide window";
}

void SlidingNipsCi::Observe(ItemsetKey a, ItemsetKey b) {
  if (tuples_ % options_.stride == 0) {
    // Open a new origin. Each gets its own hash seed so that the
    // estimators' errors are independent.
    NipsCiOptions opts = options_.estimator;
    opts.seed = SplitMix64(next_seed_++ + 0x51d1);
    origins_.push_back(
        Origin{tuples_, std::make_unique<NipsCi>(conditions_, opts)});
  }
  for (Origin& origin : origins_) origin.estimator->Observe(a, b);
  ++tuples_;
  // Retire origins more than one window old; the youngest origin at least
  // `window` old answers window queries, older ones are no longer needed.
  while (origins_.size() >= 2 &&
         origins_[1].start + options_.window <= tuples_) {
    origins_.pop_front();
  }
}

double SlidingNipsCi::WindowEstimate() const {
  if (origins_.empty()) return 0.0;
  // The front origin is the youngest one that is >= window old (or the
  // stream start before a full window has elapsed).
  return origins_.front().estimator->EstimateImplicationCount();
}

double SlidingNipsCi::WindowNonImplicationEstimate() const {
  if (origins_.empty()) return 0.0;
  return origins_.front().estimator->EstimateNonImplicationCount();
}

size_t SlidingNipsCi::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const Origin& origin : origins_) {
    bytes += sizeof(Origin) + origin.estimator->MemoryBytes();
  }
  return bytes;
}

StatusOr<std::string> SlidingNipsCi::SerializeState() const {
  ByteWriter out;
  conditions_.SerializeTo(&out);
  out.PutVarint64(options_.window);
  out.PutVarint64(options_.stride);
  out.PutVarint64(tuples_);
  out.PutVarint64(next_seed_);
  out.PutVarint64(origins_.size());
  for (const Origin& origin : origins_) {
    out.PutVarint64(origin.start);
    out.PutLengthPrefixed(origin.estimator->Serialize());
  }
  return WrapSnapshot(SnapshotKind::kSlidingNipsCi, out.Release());
}

Status SlidingNipsCi::RestoreState(std::string_view snapshot) {
  IMPLISTAT_ASSIGN_OR_RETURN(
      std::string_view payload,
      UnwrapSnapshot(snapshot, SnapshotKind::kSlidingNipsCi));
  ByteReader in(payload);
  IMPLISTAT_ASSIGN_OR_RETURN(ImplicationConditions conditions,
                             ImplicationConditions::Deserialize(&in));
  SlidingOptions options = options_;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&options.window));
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&options.stride));
  // The constructor CHECK-aborts on these; a corrupt snapshot must fail
  // with a Status instead.
  if (options.stride < 1 || options.window < options.stride ||
      options.window % options.stride != 0) {
    return Status::InvalidArgument("SlidingNipsCi: bad window geometry");
  }
  uint64_t tuples, next_seed, num_origins;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&tuples));
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&next_seed));
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&num_origins));
  // Steady state keeps window/stride + 1 origins; allow that bound (the
  // retirement loop keeps at most one origin older than a window).
  if (num_origins > options.window / options.stride + 1 ||
      num_origins > in.remaining()) {
    return Status::InvalidArgument("SlidingNipsCi: implausible origin count");
  }
  std::deque<Origin> origins;
  uint64_t prev_start = 0;
  for (uint64_t i = 0; i < num_origins; ++i) {
    uint64_t start;
    IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&start));
    // Origins open at stride boundaries, in increasing order, never in
    // the future.
    if (start % options.stride != 0 || start > tuples ||
        (i > 0 && start <= prev_start)) {
      return Status::InvalidArgument("SlidingNipsCi: bad origin start");
    }
    prev_start = start;
    std::string_view sketch_bytes;
    IMPLISTAT_RETURN_NOT_OK(in.ReadLengthPrefixed(&sketch_bytes));
    IMPLISTAT_ASSIGN_OR_RETURN(NipsCi decoded,
                               NipsCi::Deserialize(sketch_bytes));
    if (!(decoded.conditions() == conditions)) {
      return Status::InvalidArgument(
          "SlidingNipsCi: origin conditions differ from the window's");
    }
    origins.push_back(
        Origin{start, std::make_unique<NipsCi>(std::move(decoded))});
  }
  if (!in.AtEnd()) {
    return Status::InvalidArgument("SlidingNipsCi: trailing bytes");
  }
  conditions_ = conditions;
  options_ = options;
  origins_ = std::move(origins);
  tuples_ = tuples;
  next_seed_ = next_seed;
  return Status::OK();
}

}  // namespace implistat
