#include "core/incremental.h"

#include "util/logging.h"

namespace implistat {

IncrementalTracker::IncrementalTracker(const ImplicationEstimator* estimator)
    : estimator_(estimator) {
  IMPLISTAT_CHECK(estimator_ != nullptr);
}

Checkpoint IncrementalTracker::Mark(std::string label) {
  Checkpoint cp;
  cp.tuples = tuples_;
  cp.implication = estimator_->EstimateImplicationCount();
  cp.non_implication = estimator_->EstimateNonImplicationCount();
  cp.label = std::move(label);
  checkpoints_.push_back(cp);
  return cp;
}

}  // namespace implistat
