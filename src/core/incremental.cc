#include "core/incremental.h"

#include "util/logging.h"
#include "util/serde.h"

namespace implistat {

IncrementalTracker::IncrementalTracker(const ImplicationEstimator* estimator)
    : estimator_(estimator) {
  IMPLISTAT_CHECK(estimator_ != nullptr);
}

Checkpoint IncrementalTracker::Mark(std::string label) {
  Checkpoint cp;
  cp.tuples = tuples_;
  cp.implication = estimator_->EstimateImplicationCount();
  cp.non_implication = estimator_->EstimateNonImplicationCount();
  cp.label = std::move(label);
  checkpoints_.push_back(cp);
  return cp;
}

StatusOr<std::string> IncrementalTracker::SerializeState() const {
  ByteWriter out;
  out.PutVarint64(tuples_);
  out.PutVarint64(checkpoints_.size());
  for (const Checkpoint& cp : checkpoints_) {
    out.PutVarint64(cp.tuples);
    out.PutDouble(cp.implication);
    out.PutDouble(cp.non_implication);
    out.PutLengthPrefixed(cp.label);
  }
  return WrapSnapshot(SnapshotKind::kIncrementalTracker, out.Release());
}

Status IncrementalTracker::RestoreState(std::string_view snapshot) {
  IMPLISTAT_ASSIGN_OR_RETURN(
      std::string_view payload,
      UnwrapSnapshot(snapshot, SnapshotKind::kIncrementalTracker));
  ByteReader in(payload);
  uint64_t tuples, num_checkpoints;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&tuples));
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&num_checkpoints));
  if (num_checkpoints > in.remaining() / 18 + 1) {
    return Status::InvalidArgument(
        "IncrementalTracker: implausible checkpoint count");
  }
  std::vector<Checkpoint> checkpoints;
  checkpoints.reserve(num_checkpoints);
  for (uint64_t i = 0; i < num_checkpoints; ++i) {
    Checkpoint cp;
    IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&cp.tuples));
    IMPLISTAT_RETURN_NOT_OK(in.ReadDouble(&cp.implication));
    IMPLISTAT_RETURN_NOT_OK(in.ReadDouble(&cp.non_implication));
    std::string_view label;
    IMPLISTAT_RETURN_NOT_OK(in.ReadLengthPrefixed(&label));
    cp.label.assign(label);
    checkpoints.push_back(std::move(cp));
  }
  if (!in.AtEnd()) {
    return Status::InvalidArgument("IncrementalTracker: trailing bytes");
  }
  tuples_ = tuples;
  checkpoints_ = std::move(checkpoints);
  return Status::OK();
}

}  // namespace implistat
