// NipsCi — the user-facing implication-count estimator: NIPS bitmaps with
// stochastic averaging, read out by CI.
//
// The paper's configuration (§6, Table 5) is 64 bitmaps with a fringe of 4
// cells and capacity factor 2, i.e. room for 64·2·(2⁴−1) = 1920 itemsets —
// independent of attribute cardinality and stream length (§4.6).

#ifndef IMPLISTAT_CORE_NIPS_CI_ENSEMBLE_H_
#define IMPLISTAT_CORE_NIPS_CI_ENSEMBLE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/ci.h"
#include "core/estimator.h"
#include "core/nips.h"
#include "hash/hash_family.h"
#include "obs/metrics.h"
#include "util/bits.h"

namespace implistat {

struct NipsCiOptions {
  /// Number of bitmaps m; must be a power of two. m = 1 disables
  /// stochastic averaging.
  int num_bitmaps = 64;
  NipsOptions nips;
  HashKind hash_kind = HashKind::kMix;
  uint64_t seed = 0;
};

class NipsCi final : public ImplicationEstimator {
 public:
  NipsCi(ImplicationConditions conditions, NipsCiOptions options);

  void Observe(ItemsetKey a, ItemsetKey b) override;

  /// Batched fast path: one virtual call per batch, hashes precomputed in
  /// a tight loop, each target cell software-prefetched before its update.
  /// Bit-identical to calling Observe per element (same routing, same
  /// per-bitmap order); the ingest count stays exact, only the sampled
  /// latency histogram skips batch-fed tuples.
  void ObserveBatch(std::span<const ItemsetPair> batch) override;

  /// Where a key lands: which bitmap of the ensemble (the §4.5 stochastic-
  /// averaging routing bits) and which cell of that bitmap (p() of the
  /// remaining bits). Exposed so an external ingest layer can hash once on
  /// a router thread and apply the observation elsewhere — this struct and
  /// ObserveRouted are the entire contract between NipsCi and the sharded
  /// pipeline in src/parallel/sharded_nips_ci.h.
  struct Route {
    uint32_t bitmap;
    int32_t cell;
  };
  Route RouteOf(ItemsetKey a) const {
    uint64_t h = hasher_->Hash(a);
    return Route{static_cast<uint32_t>(h & (bitmaps_.size() - 1)),
                 static_cast<int32_t>(RhoLsb(h >> route_bits_))};
  }

  /// Applies one pre-routed observation. Does NOT count toward the ingest
  /// metrics (the routing layer owns tuple accounting). Concurrent calls
  /// are safe if and only if no two threads ever touch the same bitmap —
  /// the disjoint-shard guarantee ShardedNipsCi maintains.
  void ObserveRouted(Route route, ItemsetKey a, ItemsetKey b) {
    bitmaps_[route.bitmap].ObserveAt(route.cell, a, b);
  }

  double EstimateImplicationCount() const override;
  double EstimateNonImplicationCount() const override;
  double EstimateSupportedDistinct() const override;
  /// Leave-one-bitmap-out jackknife 1σ on the implication count (see
  /// core/ci.h); 0 for m = 1.
  double EstimateStdError() const override;
  size_t MemoryBytes() const override;
  std::string name() const override { return "NIPS/CI"; }

  /// All three estimates in one pass over the bitmaps.
  CiEstimate Estimate() const;

  /// Total itemsets currently held across all fringes (the §4.6 budget).
  size_t TrackedItemsets() const;

  /// Folds the batched ingest count and every bitmap's pending fringe
  /// events into the global metrics registry. Observe() stays atomic-free:
  /// it counts into a plain member and this drains it at read boundaries
  /// (Estimate / Serialize / MemoryBytes / TrackedItemsets all call it),
  /// so any snapshot taken after an estimate is exact.
  ///
  /// Thread contract (quiesce-before-read): despite being const, this —
  /// and therefore every read accessor above — mutates unsynchronized
  /// bookkeeping and walks the bitmaps. It must never run concurrently
  /// with ObserveRouted/ObserveAt on any bitmap of this ensemble. Parallel
  /// ingest must drain its queues and barrier its workers first;
  /// ShardedNipsCi enforces exactly that before touching these reads (see
  /// src/parallel/sharded_nips_ci.h).
  void FlushMetrics() const;

  /// Folds another node's ensemble into this one. Both must be configured
  /// identically — same conditions, bitmap count/options, hash kind and
  /// seed — so their bitmaps are hash-compatible. This is the distributed
  /// aggregation path (§1-2): edge nodes stream locally, ship kilobyte
  /// summaries, and an aggregator merges them into the statistics of the
  /// combined traffic (see examples/hierarchy.cc for the DDoS
  /// first-hop/last-hop scenario).
  Status Merge(const NipsCi& other);

  /// Wire format for shipping the sketch between nodes. Raw payload, no
  /// envelope — SerializeState wraps this in the self-describing snapshot
  /// envelope (util/serde.h) for durable use.
  std::string Serialize() const;
  static StatusOr<NipsCi> Deserialize(std::string_view bytes);

  /// Durable-state contract (core/estimator.h): Serialize/Deserialize/
  /// Merge behind the kNipsCi snapshot envelope. MergeFrom accepts any
  /// estimator whose snapshot is a hash-compatible NIPS/CI ensemble —
  /// notably ShardedNipsCi, whose snapshots are interchangeable with
  /// sequential ones.
  StatusOr<std::string> SerializeState() const override;
  Status RestoreState(std::string_view snapshot) override;
  Status MergeFrom(const ImplicationEstimator& other) override;

  // --- Delta shipping (src/delta/) ---------------------------------------
  //
  // NoteSnapshotEpoch(E) records every bitmap's change clock as the
  // baseline a receiver of the epoch-E full snapshot holds; a later
  // SerializeDelta(E, E') ships only the bitmaps (and within them, only
  // the fringe cells and itemsets) that moved since, then records E' as
  // a fresh baseline. Baselines survive observes but not Merge or
  // RestoreState — both invalidate the stamp bookkeeping, so they drop
  // every mark and the next delta request resyncs with a full snapshot
  // (SerializeDelta → NotFound). At most kMaxDeltaMarks baselines are
  // remembered; older ones also resync.

  StatusOr<std::string> SerializeDelta(uint64_t since_epoch,
                                       uint64_t current_epoch) const override;
  Status ApplyDelta(std::string_view fragment) override;
  void NoteSnapshotEpoch(uint64_t epoch) const override;

  /// Decoded, target-validated delta fragment (per-bitmap patches).
  /// Split from ApplyDelta so a container (SlidingNipsCi) can validate
  /// patches for ALL its origins before mutating any of them.
  struct DeltaFragment {
    std::vector<std::pair<size_t, Nips::DeltaPatch>> bitmaps;
  };
  StatusOr<DeltaFragment> DecodeDeltaFragment(std::string_view fragment) const;
  void ApplyDeltaFragment(DeltaFragment&& decoded);

  int num_bitmaps() const { return static_cast<int>(bitmaps_.size()); }
  const Nips& bitmap(int i) const { return bitmaps_[i]; }
  const ImplicationConditions& conditions() const { return conditions_; }

 private:
  // One remembered delta baseline: the per-bitmap change clocks at the
  // moment the epoch's full snapshot (or delta) was served.
  struct DeltaMark {
    uint64_t epoch;
    std::vector<uint64_t> clocks;
  };
  static constexpr size_t kMaxDeltaMarks = 8;

  // NoteSnapshotEpoch/SerializeDelta are const in the estimator contract
  // (serving a snapshot is logically read-only); the mark bookkeeping is
  // their mutable side effect, same discipline as FlushMetrics. Subject
  // to the same quiesce-before-read thread contract.
  void RecordDeltaMark(uint64_t epoch);
  const DeltaMark* FindDeltaMark(uint64_t epoch) const;

  void ObserveImpl(ItemsetKey a, ItemsetKey b);
  // Cold 1-in-1024 path: flushes the batched tuple count and times the
  // observe. Outlined (and kept out of Observe) so the hot path keeps a
  // single ObserveImpl call site and inlines exactly like a metrics-off
  // build.
  void ObserveSampled(ItemsetKey a, ItemsetKey b);

  ImplicationConditions conditions_;
  NipsCiOptions options_;
  std::unique_ptr<Hasher64> hasher_;
  std::vector<Nips> bitmaps_;
  // Exact ingest count, kept as (completed windows, countdown within the
  // window) so the per-tuple cost is a single decrement-and-test of a hot
  // member — no atomics, no registry. ObserveSampled refills the window;
  // ObserveCalls() reconstructs the exact total; FlushMetrics pushes the
  // delta into the registry at read boundaries (mutable: flushing from
  // const readers is a bookkeeping side effect).
  uint64_t ObserveCalls() const {
    return observe_count_base_ +
           (obs::kLatencySampleMask + 1 - sample_countdown_);
  }

  int route_bits_;
  uint64_t sample_countdown_ = obs::kLatencySampleMask + 1;
  uint64_t observe_count_base_ = 0;
  mutable uint64_t observe_flushed_ = 0;
  mutable std::deque<DeltaMark> delta_marks_;
};

/// First byte of every NipsCi delta fragment (cross-kind apply check).
inline constexpr uint8_t kNipsCiDeltaTag = 1;

}  // namespace implistat

#endif  // IMPLISTAT_CORE_NIPS_CI_ENSEMBLE_H_
