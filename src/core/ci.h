// CI — Counting Implications (Algorithm 2).
//
// Reads the bitmap(s) maintained by NIPS and turns the raw positions
// R_F0sup and R_~S into estimates:
//
//   F̂0_sup = 2^R_F0sup / φ,   ~Ŝ = 2^R_~S / φ,   Ŝ = F̂0_sup − ~Ŝ,
//
// with φ = 0.775351 the Flajolet–Martin correction. (Algorithm 2 line 9
// prints the uncorrected 2^R difference; applying φ to both terms — as the
// paper's reliance on [14]'s estimator implies — keeps the difference
// unbiased, and RawEstimate() preserves the literal form for comparison.)
// For an ensemble of m bitmaps the standard stochastic-averaging form
// m·2^mean(R)/φ is used for each term.

#ifndef IMPLISTAT_CORE_CI_H_
#define IMPLISTAT_CORE_CI_H_

#include <span>

#include "core/nips.h"

namespace implistat {

struct CiEstimate {
  double supported_distinct = 0;  // F̂0_sup(A)
  double non_implication = 0;     // ~Ŝ
  double implication = 0;         // Ŝ = F̂0_sup − ~Ŝ, clamped at 0
};

/// Estimates from a single NIPS bitmap.
CiEstimate CiFromBitmap(const Nips& nips);

/// Estimates from an ensemble of bitmaps via stochastic averaging.
CiEstimate CiFromEnsemble(std::span<const Nips> bitmaps);

/// Leave-one-bitmap-out jackknife standard errors for the ensemble
/// readout: each field holds the 1σ error bar of the corresponding
/// CiFromEnsemble estimate. Stochastic averaging routes ~1/m of the keys
/// to each bitmap, so every leave-one-out readout is rescaled by m/(m−1)
/// before the usual jackknife variance. All-zero for m < 2 (a single
/// bitmap carries no dispersion information).
CiEstimate CiEnsembleStdError(std::span<const Nips> bitmaps);

/// The literal Algorithm 2 return value, 2^R_F0sup − 2^R_~S, without the φ
/// correction (single bitmap).
double CiRawEstimate(const Nips& nips);

}  // namespace implistat

#endif  // IMPLISTAT_CORE_CI_H_
