// Moving averages of periodically sampled statistics.
//
// Table 2's "complex implication" closes with "... over a sliding window
// of 1h": a moving aggregate of an implication statistic. The estimators
// produce point-in-time counts; MovingAverage smooths periodic samples of
// them over a fixed horizon (ring buffer, O(1) update).

#ifndef IMPLISTAT_CORE_MOVING_AVERAGE_H_
#define IMPLISTAT_CORE_MOVING_AVERAGE_H_

#include <cstddef>
#include <vector>

#include "util/logging.h"

namespace implistat {

class MovingAverage {
 public:
  /// Averages over the last `horizon` samples.
  explicit MovingAverage(size_t horizon) : samples_(horizon, 0.0) {
    IMPLISTAT_CHECK(horizon >= 1);
  }

  void AddSample(double value) {
    size_t slot = count_ % samples_.size();
    if (count_ >= samples_.size()) sum_ -= samples_[slot];
    samples_[slot] = value;
    sum_ += value;
    ++count_;
  }

  /// Mean of the samples currently in the horizon; 0 before any sample.
  double Average() const {
    size_t n = count_ < samples_.size() ? count_ : samples_.size();
    return n == 0 ? 0.0 : sum_ / static_cast<double>(n);
  }

  /// Most recent sample, or 0 before any.
  double Latest() const {
    return count_ == 0 ? 0.0
                       : samples_[(count_ - 1) % samples_.size()];
  }

  size_t samples_seen() const { return count_; }
  size_t horizon() const { return samples_.size(); }

 private:
  std::vector<double> samples_;
  double sum_ = 0;
  size_t count_ = 0;
};

}  // namespace implistat

#endif  // IMPLISTAT_CORE_MOVING_AVERAGE_H_
