#include "core/conditions.h"

#include <algorithm>

namespace implistat {

namespace {
// Tolerance for the confidence comparison: counters are integers, so
// γ_c(a) = sum/support; a tiny slack keeps e.g. 0.9·support == sum from
// flapping on rounding.
constexpr double kConfidenceEpsilon = 1e-9;
}  // namespace

Status ImplicationConditions::Validate() const {
  if (max_multiplicity == 0) {
    return Status::InvalidArgument("max_multiplicity must be >= 1");
  }
  if (min_support == 0) {
    return Status::InvalidArgument(
        "min_support must be >= 1 (it is an absolute tuple count)");
  }
  if (!(min_top_confidence > 0.0) || min_top_confidence > 1.0) {
    return Status::InvalidArgument("min_top_confidence must be in (0, 1]");
  }
  if (confidence_c == 0) {
    return Status::InvalidArgument("confidence_c must be >= 1");
  }
  return Status::OK();
}

bool ItemsetState::Observe(ItemsetKey b, const ImplicationConditions& cond) {
  ++support_;
  if (dirty_) return true;  // monotone: stays a non-implication

  if (!mult_exceeded_) {
    auto it = std::find_if(
        b_counts_.begin(), b_counts_.end(),
        [b](const std::pair<ItemsetKey, uint64_t>& e) { return e.first == b; });
    if (it != b_counts_.end()) {
      ++it->second;
    } else if (b_counts_.size() < cond.max_multiplicity) {
      b_counts_.emplace_back(b, 1);
      if (mult_ <= cond.max_multiplicity) ++mult_;
    } else if (cond.strict_multiplicity) {
      // A (K+1)-th distinct b: multiplicity condition is violated for good;
      // the individual pair counters are no longer needed.
      mult_exceeded_ = true;
      if (mult_ <= cond.max_multiplicity) ++mult_;
      b_counts_.clear();
      b_counts_.shrink_to_fit();
    } else if (unlimited_tracking_) {
      b_counts_.emplace_back(b, 1);
      if (mult_ <= cond.max_multiplicity) ++mult_;
    } else {
      // Tracking-bound mode: admit the newcomer only by evicting a counter
      // that is still at 1 (an established counter cannot be displaced by
      // a single occurrence). The support counter above is unaffected.
      if (mult_ <= cond.max_multiplicity) ++mult_;
      auto victim = std::find_if(
          b_counts_.begin(), b_counts_.end(),
          [](const std::pair<ItemsetKey, uint64_t>& e) {
            return e.second == 1;
          });
      if (victim != b_counts_.end()) {
        victim->first = b;
        victim->second = 1;
      }
    }
  }

  if (support_ < cond.min_support) return false;
  // Support condition holds: any violation of the other two conditions now
  // makes the itemset a non-implication forever (§3.1.1).
  if (mult_exceeded_ ||
      TopConfidence(cond.confidence_c) + kConfidenceEpsilon <
          cond.min_top_confidence) {
    dirty_ = true;
    dirty_reason_ =
        mult_exceeded_ ? DirtyReason::kMultiplicity : DirtyReason::kConfidence;
    b_counts_.clear();
    b_counts_.shrink_to_fit();
  }
  return dirty_;
}

double ItemsetState::TopConfidence(uint32_t c) const {
  if (support_ == 0 || b_counts_.empty()) return 0.0;
  // K is small, so copying the counts and partially sorting is cheap.
  std::vector<uint64_t> counts;
  counts.reserve(b_counts_.size());
  for (const auto& [key, n] : b_counts_) counts.push_back(n);
  size_t take = std::min<size_t>(c, counts.size());
  std::partial_sort(counts.begin(), counts.begin() + take, counts.end(),
                    std::greater<uint64_t>());
  uint64_t sum = 0;
  for (size_t i = 0; i < take; ++i) sum += counts[i];
  return static_cast<double>(sum) / static_cast<double>(support_);
}

bool operator==(const ImplicationConditions& a,
                const ImplicationConditions& b) {
  return a.max_multiplicity == b.max_multiplicity &&
         a.min_support == b.min_support &&
         a.min_top_confidence == b.min_top_confidence &&
         a.confidence_c == b.confidence_c &&
         a.strict_multiplicity == b.strict_multiplicity;
}

void ImplicationConditions::SerializeTo(ByteWriter* out) const {
  out->PutU32(max_multiplicity);
  out->PutVarint64(min_support);
  out->PutDouble(min_top_confidence);
  out->PutU32(confidence_c);
  out->PutBool(strict_multiplicity);
}

StatusOr<ImplicationConditions> ImplicationConditions::Deserialize(
    ByteReader* in) {
  ImplicationConditions cond;
  IMPLISTAT_RETURN_NOT_OK(in->ReadU32(&cond.max_multiplicity));
  IMPLISTAT_RETURN_NOT_OK(in->ReadVarint64(&cond.min_support));
  IMPLISTAT_RETURN_NOT_OK(in->ReadDouble(&cond.min_top_confidence));
  IMPLISTAT_RETURN_NOT_OK(in->ReadU32(&cond.confidence_c));
  IMPLISTAT_RETURN_NOT_OK(in->ReadBool(&cond.strict_multiplicity));
  IMPLISTAT_RETURN_NOT_OK(cond.Validate());
  return cond;
}

void ItemsetState::Merge(const ItemsetState& other,
                         const ImplicationConditions& cond) {
  support_ += other.support_;
  if (other.dirty_) {
    dirty_ = true;
    if (dirty_reason_ == DirtyReason::kNone) dirty_reason_ = other.dirty_reason_;
  }
  if (other.mult_exceeded_) mult_exceeded_ = true;
  if (dirty_) {
    b_counts_.clear();
    b_counts_.shrink_to_fit();
    return;
  }
  // Fold the other side's pair counters under this state's policy. The
  // per-pair counts add exactly when both sides tracked the pair.
  if (!mult_exceeded_) {
    for (const auto& [b, count] : other.b_counts_) {
      auto it = std::find_if(
          b_counts_.begin(), b_counts_.end(),
          [b = b](const std::pair<ItemsetKey, uint64_t>& e) {
            return e.first == b;
          });
      if (it != b_counts_.end()) {
        it->second += count;
      } else if (b_counts_.size() < cond.max_multiplicity ||
                 unlimited_tracking_) {
        b_counts_.emplace_back(b, count);
        if (mult_ <= cond.max_multiplicity) ++mult_;
      } else if (cond.strict_multiplicity) {
        mult_exceeded_ = true;
        if (mult_ <= cond.max_multiplicity) ++mult_;
        b_counts_.clear();
        b_counts_.shrink_to_fit();
        break;
      } else {
        // Tracking-bound mode: displace a counter this newcomer outweighs.
        auto victim = std::min_element(
            b_counts_.begin(), b_counts_.end(),
            [](const auto& x, const auto& y) { return x.second < y.second; });
        if (mult_ <= cond.max_multiplicity) ++mult_;
        if (victim->second < count) {
          victim->first = b;
          victim->second = count;
        }
      }
    }
  }
  // Re-evaluate the conditions on the merged counters.
  if (support_ >= cond.min_support &&
      (mult_exceeded_ ||
       TopConfidence(cond.confidence_c) + 1e-9 < cond.min_top_confidence)) {
    dirty_ = true;
    if (dirty_reason_ == DirtyReason::kNone) {
      dirty_reason_ = mult_exceeded_ ? DirtyReason::kMultiplicity
                                     : DirtyReason::kConfidence;
    }
    b_counts_.clear();
    b_counts_.shrink_to_fit();
  }
}

void ItemsetState::SerializeTo(ByteWriter* out) const {
  out->PutVarint64(support_);
  out->PutU32(mult_);
  out->PutBool(dirty_);
  out->PutBool(mult_exceeded_);
  out->PutBool(unlimited_tracking_);
  out->PutVarint64(b_counts_.size());
  for (const auto& [b, count] : b_counts_) {
    out->PutU64(b);
    out->PutVarint64(count);
  }
}

StatusOr<ItemsetState> ItemsetState::Deserialize(ByteReader* in) {
  ItemsetState state;
  IMPLISTAT_RETURN_NOT_OK(in->ReadVarint64(&state.support_));
  IMPLISTAT_RETURN_NOT_OK(in->ReadU32(&state.mult_));
  IMPLISTAT_RETURN_NOT_OK(in->ReadBool(&state.dirty_));
  IMPLISTAT_RETURN_NOT_OK(in->ReadBool(&state.mult_exceeded_));
  IMPLISTAT_RETURN_NOT_OK(in->ReadBool(&state.unlimited_tracking_));
  uint64_t pairs;
  IMPLISTAT_RETURN_NOT_OK(in->ReadVarint64(&pairs));
  // Each pair costs at least 9 encoded bytes (fixed u64 + 1-byte varint):
  // bounding the count by the bytes actually present keeps a corrupt
  // length from forcing a huge reserve before the reads fail.
  if (pairs > (uint64_t{1} << 24) || pairs > in->remaining() / 9) {
    return Status::InvalidArgument("ItemsetState: implausible pair count");
  }
  state.b_counts_.reserve(pairs);
  for (uint64_t i = 0; i < pairs; ++i) {
    ItemsetKey b;
    uint64_t count;
    IMPLISTAT_RETURN_NOT_OK(in->ReadU64(&b));
    IMPLISTAT_RETURN_NOT_OK(in->ReadVarint64(&count));
    state.b_counts_.emplace_back(b, count);
  }
  return state;
}

size_t ItemsetState::MemoryBytes() const {
  return sizeof(*this) +
         b_counts_.capacity() * sizeof(std::pair<ItemsetKey, uint64_t>);
}

}  // namespace implistat
