// Common interface for implication-count estimators.
//
// Implementations: the paper's NIPS/CI (core/nips_ci_ensemble.h), the exact
// hash-table counter, Distinct Sampling, Implication Lossy Counting and
// Implication Sticky Sampling (src/baseline). All consume a stream of
// (a, b) itemset pairs produced by projecting tuples (see query/engine.h
// for the end-to-end path) and estimate the cardinality S of
// { a : a → B } under shared ImplicationConditions.

#ifndef IMPLISTAT_CORE_ESTIMATOR_H_
#define IMPLISTAT_CORE_ESTIMATOR_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "stream/itemset.h"
#include "util/status.h"
#include "util/status_or.h"

namespace implistat {

/// One stream element: the packed projections of a tuple on A and B.
struct ItemsetPair {
  ItemsetKey a;
  ItemsetKey b;
};

class ImplicationEstimator {
 public:
  virtual ~ImplicationEstimator() = default;

  /// Feeds one stream element: itemset `a` of A appeared with itemset `b`
  /// of B in a tuple.
  virtual void Observe(ItemsetKey a, ItemsetKey b) = 0;

  /// Feeds a batch of stream elements; semantically identical to calling
  /// Observe on each element in order. Estimators override this to
  /// amortize dispatch across the batch (one virtual call instead of
  /// `batch.size()`, hashes precomputed, target cells prefetched — see
  /// NipsCi::ObserveBatch); the default simply loops.
  virtual void ObserveBatch(std::span<const ItemsetPair> batch) {
    for (const ItemsetPair& p : batch) Observe(p.a, p.b);
  }

  /// Estimate of the implication count S = |{a : a → B}|.
  virtual double EstimateImplicationCount() const = 0;

  /// Estimate of the non-implication count ~S (supported itemsets that
  /// violate a condition). Negative when the estimator cannot answer.
  virtual double EstimateNonImplicationCount() const { return -1.0; }

  /// 1σ error bar on EstimateImplicationCount, when the estimator can
  /// quantify its own uncertainty (NIPS/CI answers with a
  /// leave-one-bitmap-out jackknife, the exact counter with 0). Negative
  /// when unknown — the default for the sampling baselines.
  virtual double EstimateStdError() const { return -1.0; }

  /// Estimate of F0_sup(A): distinct itemsets meeting the minimum support.
  /// Negative when the estimator cannot answer.
  virtual double EstimateSupportedDistinct() const { return -1.0; }

  /// Approximate memory footprint in bytes.
  virtual size_t MemoryBytes() const = 0;

  virtual std::string name() const = 0;

  // --- Durable state -------------------------------------------------------
  //
  // The paper's distributed settings ship estimator *state*, not streams:
  // sensor nodes and routers snapshot their summaries, hand them up a
  // hierarchy, and merge them (§1-2, §5). These three methods are that
  // contract. Snapshots are self-describing envelopes (util/serde.h) —
  // versioned, kind-tagged, CRC-protected — so they can cross process
  // restarts, binary upgrades, and unreliable links.
  //
  // Defaults are honest Unimplemented errors rather than silent no-ops:
  // an estimator that cannot checkpoint must say so, not fake it.

  /// Serializes the full estimator state into a snapshot envelope.
  virtual StatusOr<std::string> SerializeState() const {
    return Status::Unimplemented(name() + ": SerializeState not supported");
  }

  /// Replaces this estimator's state with a snapshot produced by
  /// SerializeState on a compatible estimator. On failure the estimator
  /// is left exactly as it was (no partial mutation).
  virtual Status RestoreState(std::string_view snapshot) {
    (void)snapshot;
    return Status::Unimplemented(name() + ": RestoreState not supported");
  }

  /// Folds another estimator's state into this one, as if this estimator
  /// had also observed the other's stream. Implementations accept any
  /// `other` whose SerializeState produces a compatible snapshot (e.g.
  /// sharded and sequential NIPS/CI merge freely). On failure this
  /// estimator is unchanged.
  virtual Status MergeFrom(const ImplicationEstimator& other) {
    (void)other;
    return Status::Unimplemented(name() + ": MergeFrom not supported");
  }
};

}  // namespace implistat

#endif  // IMPLISTAT_CORE_ESTIMATOR_H_
