// Common interface for implication-count estimators.
//
// Implementations: the paper's NIPS/CI (core/nips_ci_ensemble.h), the exact
// hash-table counter, Distinct Sampling, Implication Lossy Counting and
// Implication Sticky Sampling (src/baseline). All consume a stream of
// (a, b) itemset pairs produced by projecting tuples (see query/engine.h
// for the end-to-end path) and estimate the cardinality S of
// { a : a → B } under shared ImplicationConditions.

#ifndef IMPLISTAT_CORE_ESTIMATOR_H_
#define IMPLISTAT_CORE_ESTIMATOR_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "stream/itemset.h"
#include "util/status.h"
#include "util/status_or.h"

namespace implistat {

/// One stream element: the packed projections of a tuple on A and B.
struct ItemsetPair {
  ItemsetKey a;
  ItemsetKey b;
};

class ImplicationEstimator {
 public:
  virtual ~ImplicationEstimator() = default;

  /// Feeds one stream element: itemset `a` of A appeared with itemset `b`
  /// of B in a tuple.
  virtual void Observe(ItemsetKey a, ItemsetKey b) = 0;

  /// Feeds a batch of stream elements; semantically identical to calling
  /// Observe on each element in order. Estimators override this to
  /// amortize dispatch across the batch (one virtual call instead of
  /// `batch.size()`, hashes precomputed, target cells prefetched — see
  /// NipsCi::ObserveBatch); the default simply loops.
  virtual void ObserveBatch(std::span<const ItemsetPair> batch) {
    for (const ItemsetPair& p : batch) Observe(p.a, p.b);
  }

  /// Estimate of the implication count S = |{a : a → B}|.
  virtual double EstimateImplicationCount() const = 0;

  /// Estimate of the non-implication count ~S (supported itemsets that
  /// violate a condition). Negative when the estimator cannot answer.
  virtual double EstimateNonImplicationCount() const { return -1.0; }

  /// 1σ error bar on EstimateImplicationCount, when the estimator can
  /// quantify its own uncertainty (NIPS/CI answers with a
  /// leave-one-bitmap-out jackknife, the exact counter with 0). Negative
  /// when unknown — the default for the sampling baselines.
  virtual double EstimateStdError() const { return -1.0; }

  /// Estimate of F0_sup(A): distinct itemsets meeting the minimum support.
  /// Negative when the estimator cannot answer.
  virtual double EstimateSupportedDistinct() const { return -1.0; }

  /// Approximate memory footprint in bytes.
  virtual size_t MemoryBytes() const = 0;

  virtual std::string name() const = 0;

  // --- Durable state -------------------------------------------------------
  //
  // The paper's distributed settings ship estimator *state*, not streams:
  // sensor nodes and routers snapshot their summaries, hand them up a
  // hierarchy, and merge them (§1-2, §5). These three methods are that
  // contract. Snapshots are self-describing envelopes (util/serde.h) —
  // versioned, kind-tagged, CRC-protected — so they can cross process
  // restarts, binary upgrades, and unreliable links.
  //
  // Defaults are honest Unimplemented errors rather than silent no-ops:
  // an estimator that cannot checkpoint must say so, not fake it.

  /// Serializes the full estimator state into a snapshot envelope.
  virtual StatusOr<std::string> SerializeState() const {
    return Status::Unimplemented(name() + ": SerializeState not supported");
  }

  /// Replaces this estimator's state with a snapshot produced by
  /// SerializeState on a compatible estimator. On failure the estimator
  /// is left exactly as it was (no partial mutation).
  virtual Status RestoreState(std::string_view snapshot) {
    (void)snapshot;
    return Status::Unimplemented(name() + ": RestoreState not supported");
  }

  /// Folds another estimator's state into this one, as if this estimator
  /// had also observed the other's stream. Implementations accept any
  /// `other` whose SerializeState produces a compatible snapshot (e.g.
  /// sharded and sequential NIPS/CI merge freely). On failure this
  /// estimator is unchanged.
  virtual Status MergeFrom(const ImplicationEstimator& other) {
    (void)other;
    return Status::Unimplemented(name() + ": MergeFrom not supported");
  }

  // --- Delta state (src/delta/) -------------------------------------------
  //
  // A supervisor that already holds an edge's snapshot at epoch E does
  // not need the whole state again at epoch E' — only what changed in
  // between. Estimators that track dirtiness cheaply (NIPS/CI: fringe
  // cells touched since the last serve) implement the pair below; the
  // Unimplemented default makes full snapshots the fallback for every
  // other kind, decided per-pull by the server (net/server.cc).
  //
  // Epoch bookkeeping is the server's: NoteSnapshotEpoch(E) tells the
  // estimator "a full snapshot at epoch E was served" so a later
  // SerializeDelta(E, E') knows which baseline the receiver holds.
  // Implementations keep a bounded set of remembered baselines; a
  // SerializeDelta against a forgotten (or never-served) epoch returns
  // NotFound, which the server answers with a full snapshot instead —
  // the resync path, not an error.

  /// Serializes the changes between the remembered baseline at
  /// `since_epoch` and the current state as a kDeltaSnapshot payload
  /// fragment (the envelope is added by src/delta/). `current_epoch` is
  /// remembered as a new baseline for future deltas. NotFound when
  /// `since_epoch` is not a remembered baseline; Unimplemented when the
  /// kind has no cheap diff.
  virtual StatusOr<std::string> SerializeDelta(uint64_t since_epoch,
                                               uint64_t current_epoch) const {
    (void)since_epoch;
    (void)current_epoch;
    return Status::Unimplemented(name() + ": SerializeDelta not supported");
  }

  /// Applies a delta fragment produced by SerializeDelta on an estimator
  /// whose state at `since_epoch` was byte-identical to this one's. On
  /// failure this estimator is left exactly as it was (decode into
  /// temporaries, validate, then mutate — same contract as
  /// RestoreState). After a successful apply, SerializeState here equals
  /// SerializeState on the sender.
  virtual Status ApplyDelta(std::string_view fragment) {
    (void)fragment;
    return Status::Unimplemented(name() + ": ApplyDelta not supported");
  }

  /// Notes that a full snapshot of the current state was served at
  /// `epoch`, establishing a delta baseline. Const because serving a
  /// snapshot is logically read-only; the baseline bookkeeping is
  /// mutable metadata. Default: no-op (kinds without deltas).
  virtual void NoteSnapshotEpoch(uint64_t epoch) const { (void)epoch; }
};

}  // namespace implistat

#endif  // IMPLISTAT_CORE_ESTIMATOR_H_
