// Implication conditions (§3.1.1) and the per-itemset state machine that
// evaluates them.
//
// An implication a → B holds under conditions (K, σ, γ, c) when
//   1. multiplicity |Φ(a→B)| ≤ K   (a appears with at most K itemsets of B),
//   2. support φ(a) ≥ σ            (absolute tuple count),
//   3. top-c confidence γ_c(a→B) ≥ γ (the c largest φ(a,b)/φ(a) sum to ≥ γ).
//
// Semantics are monotone-dirty: the first time an itemset satisfies the
// support condition but violates 1 or 3, it is excluded from the
// implication count forever, even if a later suffix of the stream would
// satisfy the conditions again. Every estimator in this library (NIPS, the
// exact baseline, distinct sampling, ILC) shares ItemsetState so they all
// answer exactly the same question.

#ifndef IMPLISTAT_CORE_CONDITIONS_H_
#define IMPLISTAT_CORE_CONDITIONS_H_

#include <cstdint>
#include <vector>

#include "stream/itemset.h"
#include "util/serde.h"
#include "util/status.h"
#include "util/status_or.h"

namespace implistat {

struct ImplicationConditions {
  /// Maximum multiplicity K (condition 1).
  uint32_t max_multiplicity = 1;
  /// Minimum support σ, an absolute number of tuples (condition 2; §3.1
  /// explains why absolute rather than relative).
  uint64_t min_support = 1;
  /// Minimum top-c confidence γ in (0, 1] (condition 3).
  double min_top_confidence = 1.0;
  /// The c of the top-c confidence; typically c ≤ K.
  uint32_t confidence_c = 1;
  /// Governs how the multiplicity condition is enforced.
  ///
  /// true (the §3.1.1 definition): a (K+1)-th distinct b makes a supported
  /// itemset a non-implication outright — needed for one-to-many queries
  /// like "sources contacting more than ten destinations".
  ///
  /// false (the Algorithm 1 / §6.1 behaviour): K only bounds the per-
  /// itemset counters; at most K pair counters are kept (a new b can evict
  /// a counter still at 1) and violations are detected solely through the
  /// top-c confidence. This matches the paper's own experiments, whose
  /// qualifying itemsets deliberately carry a few extra noise pairs.
  bool strict_multiplicity = true;

  Status Validate() const;

  void SerializeTo(ByteWriter* out) const;
  static StatusOr<ImplicationConditions> Deserialize(ByteReader* in);
};

bool operator==(const ImplicationConditions& a,
                const ImplicationConditions& b);

/// Which condition turned an itemset dirty (§3.1.1). Observability only —
/// it does not affect estimates and is not serialized, so states decoded
/// from the wire report kNone.
enum class DirtyReason : uint8_t {
  kNone = 0,
  kMultiplicity = 1,  // condition 1: |Φ(a→B)| > K
  kConfidence = 2,    // condition 3: γ_c(a→B) < γ
};

/// Tracks one itemset a of A: its support, the supports of the (a, b)
/// pairs, and whether a is a known non-implication ("dirty").
class ItemsetState {
 public:
  /// With `unlimited_tracking` the state keeps a counter for *every*
  /// distinct b (exact semantics — what the ground-truth counter uses);
  /// otherwise at most K pair counters are kept, per the estimator memory
  /// bounds of §4.6. The flag is irrelevant under strict multiplicity,
  /// where a (K+1)-th b settles the itemset's fate anyway.
  explicit ItemsetState(bool unlimited_tracking = false)
      : unlimited_tracking_(unlimited_tracking) {}

  /// Records one occurrence of (a, b) and re-evaluates the conditions.
  /// Returns true iff the itemset is dirty after the update.
  bool Observe(ItemsetKey b, const ImplicationConditions& cond);

  /// Known non-implication: satisfied σ at some point while violating the
  /// multiplicity or top-c confidence condition.
  bool dirty() const { return dirty_; }

  /// The condition that made this state dirty; kNone while clean (and for
  /// deserialized states — see DirtyReason).
  DirtyReason dirty_reason() const { return dirty_reason_; }

  /// φ(a) ≥ σ.
  bool supported(const ImplicationConditions& cond) const {
    return support_ >= cond.min_support;
  }

  uint64_t support() const { return support_; }

  /// Number of distinct b itemsets seen with a. Saturates at K + 1 once
  /// the multiplicity condition is violated (the individual pairs are
  /// dropped to keep the state O(K)).
  uint32_t multiplicity() const { return mult_; }

  /// Sum of the c largest confidences φ(a,b)/φ(a); 0 when support is 0.
  double TopConfidence(uint32_t c) const;

  /// Folds another node's state for the same itemset into this one
  /// (distributed aggregation, §1-2: summaries are merged up a hierarchy
  /// instead of shipping raw streams). Supports add; pair counters merge
  /// under this state's tracking policy; dirtiness is inherited from
  /// either side and the conditions are re-evaluated on the merged
  /// counters. Exact for the concatenation of the two streams up to the
  /// order-dependence inherent in monotone-dirty semantics (an itemset
  /// is merged-dirty iff some node-local prefix violated the conditions).
  void Merge(const ItemsetState& other, const ImplicationConditions& cond);

  size_t MemoryBytes() const;

  void SerializeTo(ByteWriter* out) const;
  static StatusOr<ItemsetState> Deserialize(ByteReader* in);

 private:
  uint64_t support_ = 0;
  std::vector<std::pair<ItemsetKey, uint64_t>> b_counts_;
  uint32_t mult_ = 0;
  bool dirty_ = false;
  bool mult_exceeded_ = false;
  bool unlimited_tracking_ = false;
  DirtyReason dirty_reason_ = DirtyReason::kNone;
};

}  // namespace implistat

#endif  // IMPLISTAT_CORE_CONDITIONS_H_
