// NIPS — Non-Implication Probabilistic Sampling (Algorithm 1).
//
// One FM-style bitmap whose undecided cells (the floating fringe, §4.3.2)
// carry per-itemset counters. The recording event is the discovery of a
// non-implication: once a tracked itemset of a cell violates the
// implication conditions, the cell's value becomes 1 and its memory is
// freed.
//
// Bounding the fringe: a fringe of F cells corresponds to an itemset
// budget of capacity_factor · (2^F − 1) per bitmap (§4.3.2: cells at
// distance 0,1,2,.. from the fringe's right edge expect 1,2,4,.. itemsets,
// doubled for hash-function slack). We enforce the budget directly: when
// the tracked-itemset count exceeds it, the leftmost undecided cells — the
// most populated ones, which would be decided first anyway — are forced to
// value 1 and freed, exactly the §4.3.3 fixation step. Forcing on memory
// pressure rather than eagerly on every float of the fringe's right edge
// avoids a bias the literal reading would introduce: the rightmost hashed
// cell overshoots log2(F0) by a Gumbel-distributed excess, and anchoring
// the forced zone at (rightmost − F) inflates the non-implication estimate
// whenever ~S ≲ F0 even for counts Lemma 2 declares safe. With the budget
// rule the minimum reliably-estimable non-implication count is
// ~2^-F · F0(A), matching §4.3.3 (6.25% of F0 at F = 4).
//
// This class operates on pre-computed cell positions so that an ensemble
// (nips_ci_ensemble.h) can split one hash into routing bits and p() bits;
// use NipsCi for the user-facing estimator.

#ifndef IMPLISTAT_CORE_NIPS_H_
#define IMPLISTAT_CORE_NIPS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/conditions.h"
#include "core/fringe_cell.h"
#include "stream/itemset.h"

namespace implistat {

struct NipsOptions {
  /// Fringe size F in cells; the per-bitmap itemset budget is
  /// capacity_factor · (2^F − 1). 0 (or negative) means unbounded — every
  /// undecided cell keeps its itemsets (the straw-man of §4.2, the
  /// "Unbounded Fringe" series of Figures 4–6).
  int fringe_size = 4;
  /// Budget multiplier ("we can double the allocated memory", §4.3.2).
  /// 0 = unlimited. Algorithm 1's per-cell "overflowed" condition is
  /// realized at bitmap granularity by this budget: a cell population
  /// that outgrows the fringe's allocation triggers the same
  /// force-leftmost-to-one fixation.
  int capacity_factor = 2;
  /// Bitmap length L in cells.
  int bitmap_bits = 58;
};

class Nips {
 public:
  Nips(ImplicationConditions conditions, NipsOptions options);

  /// Records that itemset `a` (hashed to cell `cell`) appeared with `b`.
  /// `cell` must be >= 0; positions beyond the bitmap land in its last
  /// cell.
  void ObserveAt(int cell, ItemsetKey a, ItemsetKey b);

  /// Cache hint that `cell`'s slot is about to be touched by ObserveAt.
  /// The batched ingest paths (NipsCi::ObserveBatch, the shard workers of
  /// src/parallel) issue these a few records ahead so the cell loads of a
  /// batch overlap instead of serializing on misses.
  void PrefetchCell(int cell) const {
    if (cell >= options_.bitmap_bits) cell = options_.bitmap_bits - 1;
    __builtin_prefetch(&cells_[static_cast<size_t>(cell)], /*rw=*/1,
                       /*locality=*/1);
  }

  /// Raw position R_~S: index of the leftmost cell whose value is not 1.
  /// Feeds the non-implication estimate (Algorithm 2, lines 5–8).
  int RNonImplication() const;

  /// Raw position R_F0sup: index of the leftmost cell with neither value 1
  /// nor a tracked itemset meeting the minimum support (Algorithm 2, lines
  /// 1–4, with the §4.4 "virtual one" rule).
  int RSupport() const;

  /// Cell value as the bitmap sees it.
  bool CellIsOne(int cell) const;

  /// Itemsets currently tracked across the fringe; bounded by
  /// ItemBudget() in bounded mode. A read boundary: folds pending metric
  /// events into the global registry (see FlushMetrics).
  size_t TrackedItemsets() const;

  /// Folds this bitmap's pending fringe-traffic events (plus the calling
  /// thread's dirty-exclusion counts) into the global metrics registry.
  /// The ingest path deliberately never touches an atomic — events
  /// accumulate in plain members and become visible here. Called from
  /// every read accessor (TrackedItemsets / MemoryBytes / SerializeTo)
  /// and from NipsCi before estimates and snapshots; no-op when metrics
  /// are compiled out.
  void FlushMetrics() const;

  /// The per-bitmap itemset budget, or 0 when unbounded.
  size_t ItemBudget() const;

  /// Folds another bitmap into this one: cell values OR together,
  /// undecided cells merge their tracked itemsets, then the budget is
  /// re-enforced. Both bitmaps must have identical conditions and options
  /// (and, in an ensemble, the same hash function — see NipsCi::Merge).
  /// The merged bitmap summarizes the concatenation of the two input
  /// streams, up to the node-local prefix semantics of the monotone-dirty
  /// rule (see ItemsetState::Merge).
  Status Merge(const Nips& other);

  size_t MemoryBytes() const;

  void SerializeTo(ByteWriter* out) const;
  static StatusOr<Nips> Deserialize(ByteReader* in);

  // --- Delta shipping (src/delta/) ---------------------------------------
  //
  // Once tracking is enabled, every mutation — a fringe-cell observe, a
  // cell settling to 1, the rightmost hashed position advancing — bumps
  // change_clock() and stamps the touched cell (and itemset). A delta
  // section then ships the fringe header plus exactly the cells stamped
  // after the receiver's baseline clock; applying it to a bitmap that was
  // byte-identical at that clock reproduces this bitmap byte-for-byte
  // (SerializeTo equality). Tracking costs nothing until enabled — the
  // hot path tests one bool.

  /// Starts stamping mutations. Idempotent. State mutated before this
  /// call is never shipped in a delta (the baseline full snapshot that
  /// enabled tracking already carries it).
  void EnableDeltaTracking() { delta_tracking_ = true; }
  bool delta_tracking() const { return delta_tracking_; }

  /// Monotone mutation counter; equal clocks mean byte-identical state
  /// (while tracking is on and no Merge/restore intervened).
  uint64_t change_clock() const { return clock_; }

  /// Decoded, target-validated form of one bitmap's delta section.
  struct DeltaPatch {
    struct CellPatch {
      int index = 0;
      bool settled = false;        // cell decided to 1 since the baseline
      bool cell_has_supported = false;
      FringeCell::ItemPatch items; // live cells only (!settled)
    };
    int fringe_left = 0;
    int fringe_right = -1;
    std::vector<CellPatch> cells;
  };

  /// Serializes the changes since `since_clock` (a clock value recorded
  /// at the receiver's baseline snapshot).
  void SerializeDeltaTo(uint64_t since_clock, ByteWriter* out) const;

  /// Decodes one delta section AND validates it against this bitmap (the
  /// intended apply target): fringe bounds monotone, settled cells not
  /// already settled, item counts consistent. Any mismatch — corruption
  /// or a desynced baseline — refuses without touching *this.
  StatusOr<DeltaPatch> DecodeDeltaSection(ByteReader* in) const;

  /// Applies a patch validated by DecodeDeltaSection. Infallible.
  void ApplyDeltaPatch(DeltaPatch&& patch);

  int fringe_left() const { return fringe_left_; }
  int fringe_right() const { return fringe_right_; }
  const ImplicationConditions& conditions() const { return conditions_; }
  const NipsOptions& options() const { return options_; }

 private:
  struct Cell {
    bool one = false;            // decided value 1
    bool has_supported = false;  // saw an itemset with φ(a) ≥ σ
    uint64_t stamp = 0;          // change_clock() at last mutation
    std::unique_ptr<FringeCell> data;
  };

  // Why a cell settled to value 1 — distinguishes the §4.3.3 forced
  // fixation (its freed itemsets are "evictions") from genuine
  // non-implication / merge settles ("promotions"). Observability only.
  enum class SettleCause { kNonImplication, kBudget, kMerge };

  bool bounded() const { return options_.fringe_size > 0; }

  // Marks `cell` as value 1 and releases its tracked itemsets.
  void DecideOne(int cell, SettleCause cause);

  // Advances fringe_left_ past decided cells.
  void ShrinkLeft();

  // Forces leftmost undecided cells to 1 until the budget holds (§4.3.3
  // fixation).
  void EnforceBudget();

  // Lifetime event totals, kept with plain adds on the (rare) settle path
  // so ObserveAt stays instrumentation-free: cumulative insertions are
  // derived, not counted — every itemset that ever entered is either
  // still tracked or left through an eviction/promotion, so
  //   insertions == tracked_ + evictions + promotions
  // at all times. FlushMetrics() (const — a bookkeeping side effect,
  // hence the mutable reported state) pushes the delta against what was
  // last reported into the registry's atomics at read boundaries.
  struct EventTotals {
    uint64_t evictions = 0;
    uint64_t promotions = 0;
    uint64_t settled_non_implication = 0;
    uint64_t settled_budget = 0;
    uint64_t settled_merge = 0;
  };

  ImplicationConditions conditions_;
  NipsOptions options_;
  std::vector<Cell> cells_;
  EventTotals totals_;
  mutable EventTotals reported_;
  mutable uint64_t insertions_reported_ = 0;
  size_t tracked_ = 0;
  int fringe_left_ = 0;    // leftmost undecided cell (Zone-1 ends here)
  int fringe_right_ = -1;  // rightmost hashed cell; -1 before any input
  bool delta_tracking_ = false;
  uint64_t clock_ = 0;     // mutation counter; see EnableDeltaTracking
};

}  // namespace implistat

#endif  // IMPLISTAT_CORE_NIPS_H_
