// Sliding-window implication counts (§3.2, Figure 2).
//
// The paper supports sliding queries by "maintaining a vector of
// implication counts with different origins and appropriately retiring old
// ones". SlidingNipsCi keeps one NipsCi per origin, started every `stride`
// tuples and retired once its origin falls more than one window behind;
// the window estimate is read from the youngest estimator whose origin is
// at least `window` tuples old (the count of itemsets that appeared and
// held the conditions over, at most, the last window + stride tuples).

#ifndef IMPLISTAT_CORE_SLIDING_H_
#define IMPLISTAT_CORE_SLIDING_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "core/estimator.h"
#include "core/nips_ci_ensemble.h"

namespace implistat {

struct SlidingOptions {
  /// Window length in tuples.
  uint64_t window = 100000;
  /// A new origin is opened every `stride` tuples; the window estimate's
  /// granularity. Must divide the window for exact retirement.
  uint64_t stride = 10000;
  NipsCiOptions estimator;
};

class SlidingNipsCi {
 public:
  SlidingNipsCi(ImplicationConditions conditions, SlidingOptions options);

  /// Feeds one (a, b) element; advances the clock by one tuple.
  void Observe(ItemsetKey a, ItemsetKey b);

  /// Implication count over (approximately) the trailing window. Before a
  /// full window has elapsed, this is the count since the stream start.
  double WindowEstimate() const;

  /// Non-implication count over the same trailing window.
  double WindowNonImplicationEstimate() const;

  /// Number of estimators currently maintained (window/stride + 1 in
  /// steady state).
  size_t num_origins() const { return origins_.size(); }

  uint64_t tuples_seen() const { return tuples_; }
  size_t MemoryBytes() const;

  /// Durable state (kSlidingNipsCi envelope): the tuple clock, the seed
  /// cursor, and every live origin's sketch round-trip, so a restored
  /// window continues opening/retiring origins exactly where the saved
  /// one would have.
  StatusOr<std::string> SerializeState() const;
  Status RestoreState(std::string_view snapshot);

 private:
  struct Origin {
    uint64_t start;  // stream position at which this estimator began
    std::unique_ptr<NipsCi> estimator;
  };

  ImplicationConditions conditions_;
  SlidingOptions options_;
  std::deque<Origin> origins_;
  uint64_t tuples_ = 0;
  uint64_t next_seed_ = 0;
};

/// Adapts SlidingNipsCi to the ImplicationEstimator interface so the
/// query engine can serve windowed queries (WITH WINDOW = n in the query
/// syntax) through the same code path as lifetime queries.
class SlidingNipsCiEstimator final : public ImplicationEstimator {
 public:
  SlidingNipsCiEstimator(ImplicationConditions conditions,
                         SlidingOptions options)
      : sliding_(conditions, options) {}

  void Observe(ItemsetKey a, ItemsetKey b) override {
    sliding_.Observe(a, b);
  }
  double EstimateImplicationCount() const override {
    return sliding_.WindowEstimate();
  }
  double EstimateNonImplicationCount() const override {
    return sliding_.WindowNonImplicationEstimate();
  }
  size_t MemoryBytes() const override { return sliding_.MemoryBytes(); }
  std::string name() const override { return "NIPS/CI-sliding"; }

  /// Durable-state contract (core/estimator.h), forwarded to the wrapped
  /// window. MergeFrom stays Unimplemented: two windows' origins are not
  /// aligned on a shared stream position, so there is no sound merge.
  StatusOr<std::string> SerializeState() const override {
    return sliding_.SerializeState();
  }
  Status RestoreState(std::string_view snapshot) override {
    return sliding_.RestoreState(snapshot);
  }

  const SlidingNipsCi& sliding() const { return sliding_; }

 private:
  SlidingNipsCi sliding_;
};

}  // namespace implistat

#endif  // IMPLISTAT_CORE_SLIDING_H_
