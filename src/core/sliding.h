// Sliding-window implication counts (§3.2, Figure 2).
//
// The paper supports sliding queries by "maintaining a vector of
// implication counts with different origins and appropriately retiring old
// ones". SlidingNipsCi keeps one NipsCi per origin, started every `stride`
// tuples and retired once its origin falls more than one window behind;
// the window estimate is read from the youngest estimator whose origin is
// at least `window` tuples old (the count of itemsets that appeared and
// held the conditions over, at most, the last window + stride tuples).

#ifndef IMPLISTAT_CORE_SLIDING_H_
#define IMPLISTAT_CORE_SLIDING_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>

#include "core/estimator.h"
#include "core/nips_ci_ensemble.h"

namespace implistat {

struct SlidingOptions {
  /// Window length in tuples.
  uint64_t window = 100000;
  /// A new origin is opened every `stride` tuples; the window estimate's
  /// granularity. Must divide the window for exact retirement.
  uint64_t stride = 10000;
  NipsCiOptions estimator;
};

class SlidingNipsCi {
 public:
  SlidingNipsCi(ImplicationConditions conditions, SlidingOptions options);

  /// Feeds one (a, b) element; advances the clock by one tuple.
  void Observe(ItemsetKey a, ItemsetKey b);

  /// Implication count over (approximately) the trailing window. Before a
  /// full window has elapsed, this is the count since the stream start.
  double WindowEstimate() const;

  /// Non-implication count over the same trailing window.
  double WindowNonImplicationEstimate() const;

  /// Number of estimators currently maintained (window/stride + 1 in
  /// steady state).
  size_t num_origins() const { return origins_.size(); }

  uint64_t tuples_seen() const { return tuples_; }
  size_t MemoryBytes() const;

  /// Durable state (kSlidingNipsCi envelope): the tuple clock, the seed
  /// cursor, and every live origin's sketch round-trip, so a restored
  /// window continues opening/retiring origins exactly where the saved
  /// one would have.
  StatusOr<std::string> SerializeState() const;
  Status RestoreState(std::string_view snapshot);

  // --- Delta shipping (src/delta/) ---------------------------------------
  //
  // The sliding window is the kind deltas pay for most: a full snapshot
  // re-ships every origin (window/stride + 1 of them), but between two
  // polls a mature origin's bitmaps barely move — only the youngest
  // origins churn. A delta ships, per live origin, either a NipsCi delta
  // fragment (origin existed at the baseline) or its full sketch (origin
  // opened since); origins the sender retired simply stop appearing, and
  // the receiver drops them. Applying to a byte-identical baseline
  // reproduces the sender's SerializeState byte-for-byte.

  /// Records epoch `epoch` as a delta baseline (forwarded to every
  /// origin's ensemble, which starts stamping mutations).
  void NoteSnapshotEpoch(uint64_t epoch);

  /// Ships the changes since `since_epoch`; NotFound when that epoch was
  /// never noted (or has been forgotten) — the caller resyncs with a
  /// full snapshot.
  StatusOr<std::string> SerializeDelta(uint64_t since_epoch,
                                       uint64_t current_epoch);

  /// Applies a delta produced against a byte-identical baseline of this
  /// window. Decode-and-validate happens for every origin before any
  /// origin mutates; on failure the window is untouched.
  Status ApplyDelta(std::string_view fragment);

 private:
  struct Origin {
    uint64_t start;  // stream position at which this estimator began
    std::unique_ptr<NipsCi> estimator;
  };
  static constexpr size_t kMaxDeltaEpochs = 8;

  void RecordDeltaEpoch(uint64_t epoch);

  ImplicationConditions conditions_;
  SlidingOptions options_;
  std::deque<Origin> origins_;
  uint64_t tuples_ = 0;
  uint64_t next_seed_ = 0;
  // Epochs with a remembered baseline (per-origin clocks live in the
  // origins' own ensembles; this gates the NotFound answer).
  std::deque<uint64_t> delta_epochs_;
};

/// Adapts SlidingNipsCi to the ImplicationEstimator interface so the
/// query engine can serve windowed queries (WITH WINDOW = n in the query
/// syntax) through the same code path as lifetime queries.
class SlidingNipsCiEstimator final : public ImplicationEstimator {
 public:
  SlidingNipsCiEstimator(ImplicationConditions conditions,
                         SlidingOptions options)
      : sliding_(conditions, options) {}

  void Observe(ItemsetKey a, ItemsetKey b) override {
    sliding_.Observe(a, b);
  }
  double EstimateImplicationCount() const override {
    return sliding_.WindowEstimate();
  }
  double EstimateNonImplicationCount() const override {
    return sliding_.WindowNonImplicationEstimate();
  }
  size_t MemoryBytes() const override { return sliding_.MemoryBytes(); }
  std::string name() const override { return "NIPS/CI-sliding"; }

  /// Durable-state contract (core/estimator.h), forwarded to the wrapped
  /// window. MergeFrom stays Unimplemented: two windows' origins are not
  /// aligned on a shared stream position, so there is no sound merge.
  StatusOr<std::string> SerializeState() const override {
    return sliding_.SerializeState();
  }
  Status RestoreState(std::string_view snapshot) override {
    return sliding_.RestoreState(snapshot);
  }

  /// Delta contract (core/estimator.h). The const_casts mirror NipsCi:
  /// serving a delta is logically read-only, the baseline bookkeeping is
  /// its mutable side effect (quiesce-before-read still applies).
  StatusOr<std::string> SerializeDelta(uint64_t since_epoch,
                                       uint64_t current_epoch) const override {
    return const_cast<SlidingNipsCi&>(sliding_).SerializeDelta(since_epoch,
                                                               current_epoch);
  }
  Status ApplyDelta(std::string_view fragment) override {
    return sliding_.ApplyDelta(fragment);
  }
  void NoteSnapshotEpoch(uint64_t epoch) const override {
    const_cast<SlidingNipsCi&>(sliding_).NoteSnapshotEpoch(epoch);
  }

  const SlidingNipsCi& sliding() const { return sliding_; }

 private:
  SlidingNipsCi sliding_;
};

/// First byte of every sliding-window delta fragment (cross-kind apply
/// check against kNipsCiDeltaTag).
inline constexpr uint8_t kSlidingDeltaTag = 2;

}  // namespace implistat

#endif  // IMPLISTAT_CORE_SLIDING_H_
