#include "core/nips_ci_ensemble.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "delta/codec.h"
#include "obs/metrics.h"
#include "util/bits.h"
#include "util/logging.h"
#include "util/serde.h"

namespace implistat {

namespace {

// Pipeline-level ingest and distribution metrics for the user-facing
// estimator (per-bitmap fringe traffic lives in nips.cc).
struct NipsCiMetrics {
  obs::Counter* tuples_observed;
  obs::Histogram* observe_latency_ns;
  obs::Counter* merges;
  obs::Counter* serializes;
  obs::Counter* serialize_bytes;
  obs::Counter* deserializes;

  static NipsCiMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static NipsCiMetrics m{
        reg.GetCounter("implistat_tuples_observed_total",
                       "Tuples ingested through NipsCi::Observe (the "
                       "stream length n as the sketch saw it)"),
        reg.GetHistogram("implistat_observe_latency_ns",
                         "Sampled NipsCi::Observe latency in nanoseconds "
                         "(1 in 1024 calls timed; power-of-two buckets)"),
        reg.GetCounter("nips_merges_total",
                       "Ensemble merges folded in via NipsCi::Merge (the "
                       "distributed-aggregation path)"),
        reg.GetCounter("nips_serializes_total",
                       "Sketches serialized for the wire"),
        reg.GetCounter("nips_serialize_bytes_total",
                       "Wire bytes produced by NipsCi::Serialize"),
        reg.GetCounter("nips_deserializes_total",
                       "Sketches decoded from the wire"),
    };
    return m;
  }
};

}  // namespace

NipsCi::NipsCi(ImplicationConditions conditions, NipsCiOptions options)
    : conditions_(conditions),
      options_(options),
      hasher_(MakeHasher(options.hash_kind, options.seed)),
      route_bits_(CeilLog2(static_cast<uint64_t>(options.num_bitmaps))) {
  IMPLISTAT_CHECK(options.num_bitmaps >= 1 &&
                  IsPowerOfTwo(static_cast<uint64_t>(options.num_bitmaps)))
      << "num_bitmaps must be a power of two";
  // Routing consumes log2(m) hash bits; shrink the per-bitmap length to
  // what the remaining bits can feed.
  if (options_.nips.bitmap_bits + route_bits_ > 64) {
    options_.nips.bitmap_bits = 64 - route_bits_;
  }
  IMPLISTAT_CHECK(options_.nips.bitmap_bits >= 1)
      << "too many bitmaps for a 64-bit hash";
  bitmaps_.reserve(static_cast<size_t>(options.num_bitmaps));
  for (int i = 0; i < options.num_bitmaps; ++i) {
    bitmaps_.emplace_back(conditions_, options_.nips);
  }
  // Pre-register the pipeline metrics (merge/serialize counters included)
  // so a snapshot taken before any such event still lists them at zero.
  IMPLISTAT_IF_METRICS(NipsCiMetrics::Get());
}

void NipsCi::ObserveImpl(ItemsetKey a, ItemsetKey b) {
  Route route = RouteOf(a);
  bitmaps_[route.bitmap].ObserveAt(route.cell, a, b);
}

void NipsCi::ObserveBatch(std::span<const ItemsetPair> batch) {
  // Three passes per chunk: (1) hash — a tight loop with no memory
  // dependencies, (2) prefetch every target cell, (3) the per-cell
  // updates, whose leading loads now overlap instead of serializing on
  // misses. Per-bitmap observation order is exactly batch order, so the
  // sketch state is bit-identical to the per-tuple path.
  constexpr size_t kChunk = 32;
  Route routes[kChunk];
  for (size_t base = 0; base < batch.size(); base += kChunk) {
    const size_t n = std::min(kChunk, batch.size() - base);
    for (size_t i = 0; i < n; ++i) routes[i] = RouteOf(batch[base + i].a);
    for (size_t i = 0; i < n; ++i) {
      bitmaps_[routes[i].bitmap].PrefetchCell(routes[i].cell);
    }
    for (size_t i = 0; i < n; ++i) {
      const ItemsetPair& p = batch[base + i];
      bitmaps_[routes[i].bitmap].ObserveAt(routes[i].cell, p.a, p.b);
    }
  }
  // Keep ObserveCalls() exact without running the per-tuple countdown;
  // batch-fed tuples skip the sampled latency histogram.
  IMPLISTAT_IF_METRICS(observe_count_base_ += batch.size());
}

void NipsCi::Observe(ItemsetKey a, ItemsetKey b) {
  if constexpr (obs::kMetricsEnabled) {
    // The common path costs one decrement-and-test of a hot member; the
    // registry's atomics and the clock live in the outlined 1-in-1024
    // path (and in FlushMetrics at read boundaries).
    if (--sample_countdown_ == 0) [[unlikely]] {
      ObserveSampled(a, b);
      return;
    }
  }
  ObserveImpl(a, b);
}

__attribute__((noinline)) void NipsCi::ObserveSampled(ItemsetKey a,
                                                      ItemsetKey b) {
  // The countdown just hit zero: close this sampling window before the
  // refill so ObserveCalls() stays exact across the reset.
  observe_count_base_ += obs::kLatencySampleMask + 1;
  sample_countdown_ = obs::kLatencySampleMask + 1;
  NipsCiMetrics& m = NipsCiMetrics::Get();
  m.tuples_observed->Increment(ObserveCalls() - observe_flushed_);
  observe_flushed_ = ObserveCalls();
  obs::ScopedTimer timer(m.observe_latency_ns);
  ObserveImpl(a, b);
}

void NipsCi::FlushMetrics() const {
  if constexpr (obs::kMetricsEnabled) {
    if (ObserveCalls() != observe_flushed_) {
      NipsCiMetrics::Get().tuples_observed->Increment(ObserveCalls() -
                                                      observe_flushed_);
      observe_flushed_ = ObserveCalls();
    }
    for (const Nips& nips : bitmaps_) nips.FlushMetrics();
  }
}

CiEstimate NipsCi::Estimate() const {
  FlushMetrics();
  return CiFromEnsemble(std::span<const Nips>(bitmaps_));
}

double NipsCi::EstimateImplicationCount() const {
  return Estimate().implication;
}

double NipsCi::EstimateNonImplicationCount() const {
  return Estimate().non_implication;
}

double NipsCi::EstimateSupportedDistinct() const {
  return Estimate().supported_distinct;
}

double NipsCi::EstimateStdError() const {
  FlushMetrics();
  return CiEnsembleStdError(std::span<const Nips>(bitmaps_)).implication;
}

Status NipsCi::Merge(const NipsCi& other) {
  if (!(conditions_ == other.conditions_)) {
    return Status::InvalidArgument("NipsCi::Merge: conditions differ");
  }
  if (options_.num_bitmaps != other.options_.num_bitmaps ||
      options_.seed != other.options_.seed ||
      options_.hash_kind != other.options_.hash_kind) {
    return Status::InvalidArgument(
        "NipsCi::Merge: ensembles are not hash-compatible");
  }
  // A merge mutates fringe itemsets without stamping them, so every
  // remembered delta baseline becomes unsound; dropping the marks makes
  // the next SerializeDelta resync with a full snapshot.
  delta_marks_.clear();
  for (size_t i = 0; i < bitmaps_.size(); ++i) {
    IMPLISTAT_RETURN_NOT_OK(bitmaps_[i].Merge(other.bitmaps_[i]));
  }
  IMPLISTAT_IF_METRICS(NipsCiMetrics::Get().merges->Increment());
  return Status::OK();
}

namespace {
constexpr uint8_t kNipsCiFormatVersion = 1;
}  // namespace

std::string NipsCi::Serialize() const {
  FlushMetrics();
  ByteWriter out;
  out.PutU8(kNipsCiFormatVersion);
  out.PutU32(static_cast<uint32_t>(options_.num_bitmaps));
  out.PutU8(static_cast<uint8_t>(options_.hash_kind));
  out.PutU64(options_.seed);
  for (const Nips& nips : bitmaps_) nips.SerializeTo(&out);
  std::string bytes = out.Release();
  IMPLISTAT_IF_METRICS({
    NipsCiMetrics& m = NipsCiMetrics::Get();
    m.serializes->Increment();
    m.serialize_bytes->Increment(bytes.size());
  });
  return bytes;
}

StatusOr<NipsCi> NipsCi::Deserialize(std::string_view bytes) {
  ByteReader in(bytes);
  uint8_t version;
  IMPLISTAT_RETURN_NOT_OK(in.ReadU8(&version));
  if (version != kNipsCiFormatVersion) {
    return Status::InvalidArgument("NipsCi: unknown format version");
  }
  NipsCiOptions options;
  uint32_t num_bitmaps;
  uint8_t hash_kind;
  IMPLISTAT_RETURN_NOT_OK(in.ReadU32(&num_bitmaps));
  IMPLISTAT_RETURN_NOT_OK(in.ReadU8(&hash_kind));
  IMPLISTAT_RETURN_NOT_OK(in.ReadU64(&options.seed));
  if (num_bitmaps < 1 || num_bitmaps > (1u << 20) ||
      !IsPowerOfTwo(num_bitmaps)) {
    return Status::InvalidArgument("NipsCi: bad bitmap count");
  }
  if (hash_kind > static_cast<uint8_t>(HashKind::kLinearGf2)) {
    return Status::InvalidArgument("NipsCi: bad hash kind");
  }
  options.num_bitmaps = static_cast<int>(num_bitmaps);
  options.hash_kind = static_cast<HashKind>(hash_kind);

  std::vector<Nips> bitmaps;
  bitmaps.reserve(num_bitmaps);
  for (uint32_t i = 0; i < num_bitmaps; ++i) {
    IMPLISTAT_ASSIGN_OR_RETURN(Nips nips, Nips::Deserialize(&in));
    bitmaps.push_back(std::move(nips));
  }
  if (!in.AtEnd()) {
    return Status::InvalidArgument("NipsCi: trailing bytes");
  }
  // Reconstruct through the normal constructor so routing bits and
  // invariants are re-derived, then adopt the decoded bitmaps.
  options.nips = bitmaps.front().options();
  NipsCi out(bitmaps.front().conditions(), options);
  for (uint32_t i = 1; i < num_bitmaps; ++i) {
    if (!(bitmaps[i].conditions() == bitmaps[0].conditions())) {
      return Status::InvalidArgument("NipsCi: inconsistent conditions");
    }
  }
  out.bitmaps_ = std::move(bitmaps);
  IMPLISTAT_IF_METRICS(NipsCiMetrics::Get().deserializes->Increment());
  return out;
}

StatusOr<std::string> NipsCi::SerializeState() const {
  return WrapSnapshot(SnapshotKind::kNipsCi, Serialize());
}

Status NipsCi::RestoreState(std::string_view snapshot) {
  IMPLISTAT_ASSIGN_OR_RETURN(std::string_view payload,
                             UnwrapSnapshot(snapshot, SnapshotKind::kNipsCi));
  // Decode into a temporary first: *this is only touched once the whole
  // snapshot has validated, so a corrupt input cannot leave a half state.
  IMPLISTAT_ASSIGN_OR_RETURN(NipsCi restored, Deserialize(payload));
  *this = std::move(restored);
  return Status::OK();
}

Status NipsCi::MergeFrom(const ImplicationEstimator& other) {
  if (const auto* nips = dynamic_cast<const NipsCi*>(&other)) {
    return Merge(*nips);
  }
  // Anything else that snapshots as a NIPS/CI ensemble — the sharded
  // pipeline, instrumented wrappers — merges through the wire contract.
  IMPLISTAT_ASSIGN_OR_RETURN(std::string snapshot, other.SerializeState());
  IMPLISTAT_ASSIGN_OR_RETURN(std::string_view payload,
                             UnwrapSnapshot(snapshot, SnapshotKind::kNipsCi));
  IMPLISTAT_ASSIGN_OR_RETURN(NipsCi decoded, Deserialize(payload));
  return Merge(decoded);
}

namespace {
constexpr uint8_t kNipsCiDeltaVersion = 1;
}  // namespace

void NipsCi::RecordDeltaMark(uint64_t epoch) {
  std::vector<uint64_t> clocks;
  clocks.reserve(bitmaps_.size());
  for (const Nips& nips : bitmaps_) clocks.push_back(nips.change_clock());
  for (DeltaMark& mark : delta_marks_) {
    if (mark.epoch == epoch) {
      mark.clocks = std::move(clocks);
      return;
    }
  }
  delta_marks_.push_back(DeltaMark{epoch, std::move(clocks)});
  while (delta_marks_.size() > kMaxDeltaMarks) delta_marks_.pop_front();
}

const NipsCi::DeltaMark* NipsCi::FindDeltaMark(uint64_t epoch) const {
  for (const DeltaMark& mark : delta_marks_) {
    if (mark.epoch == epoch) return &mark;
  }
  return nullptr;
}

void NipsCi::NoteSnapshotEpoch(uint64_t epoch) const {
  NipsCi* self = const_cast<NipsCi*>(this);
  for (Nips& nips : self->bitmaps_) nips.EnableDeltaTracking();
  self->RecordDeltaMark(epoch);
}

StatusOr<std::string> NipsCi::SerializeDelta(uint64_t since_epoch,
                                             uint64_t current_epoch) const {
  const DeltaMark* mark = FindDeltaMark(since_epoch);
  if (mark == nullptr) {
    return Status::NotFound("NipsCi: no delta baseline at epoch " +
                            std::to_string(since_epoch));
  }
  FlushMetrics();
  ByteWriter out;
  out.PutU8(kNipsCiDeltaTag);
  out.PutU8(kNipsCiDeltaVersion);
  out.PutVarint64(bitmaps_.size());
  std::vector<bool> changed(bitmaps_.size());
  for (size_t i = 0; i < bitmaps_.size(); ++i) {
    changed[i] = bitmaps_[i].change_clock() != mark->clocks[i];
  }
  delta::EncodeMask(changed, &out);
  for (size_t i = 0; i < bitmaps_.size(); ++i) {
    if (changed[i]) bitmaps_[i].SerializeDeltaTo(mark->clocks[i], &out);
  }
  // The bytes just produced bring a receiver of the since_epoch snapshot
  // up to the current state; remember it as the next baseline.
  const_cast<NipsCi*>(this)->RecordDeltaMark(current_epoch);
  return out.Release();
}

StatusOr<NipsCi::DeltaFragment> NipsCi::DecodeDeltaFragment(
    std::string_view fragment) const {
  ByteReader in(fragment);
  uint8_t tag, version;
  IMPLISTAT_RETURN_NOT_OK(in.ReadU8(&tag));
  if (tag != kNipsCiDeltaTag) {
    return Status::InvalidArgument("NipsCi delta: wrong fragment kind");
  }
  IMPLISTAT_RETURN_NOT_OK(in.ReadU8(&version));
  if (version != kNipsCiDeltaVersion) {
    return Status::InvalidArgument("NipsCi delta: unknown format version");
  }
  uint64_t num_bitmaps;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&num_bitmaps));
  if (num_bitmaps != bitmaps_.size()) {
    return Status::InvalidArgument("NipsCi delta: bitmap count mismatch");
  }
  std::vector<bool> changed;
  IMPLISTAT_RETURN_NOT_OK(delta::DecodeMask(&in, bitmaps_.size(), &changed));
  DeltaFragment decoded;
  for (size_t i = 0; i < bitmaps_.size(); ++i) {
    if (!changed[i]) continue;
    IMPLISTAT_ASSIGN_OR_RETURN(Nips::DeltaPatch patch,
                               bitmaps_[i].DecodeDeltaSection(&in));
    decoded.bitmaps.emplace_back(i, std::move(patch));
  }
  if (!in.AtEnd()) {
    return Status::InvalidArgument("NipsCi delta: trailing bytes");
  }
  return decoded;
}

void NipsCi::ApplyDeltaFragment(DeltaFragment&& decoded) {
  for (auto& [index, patch] : decoded.bitmaps) {
    bitmaps_[index].ApplyDeltaPatch(std::move(patch));
  }
}

Status NipsCi::ApplyDelta(std::string_view fragment) {
  // Decode-and-validate into temporaries; only a fully validated
  // fragment mutates the bitmaps (same contract as RestoreState).
  IMPLISTAT_ASSIGN_OR_RETURN(DeltaFragment decoded,
                             DecodeDeltaFragment(fragment));
  ApplyDeltaFragment(std::move(decoded));
  return Status::OK();
}

size_t NipsCi::MemoryBytes() const {
  FlushMetrics();
  size_t bytes = sizeof(*this);
  for (const Nips& nips : bitmaps_) bytes += nips.MemoryBytes();
  return bytes;
}

size_t NipsCi::TrackedItemsets() const {
  FlushMetrics();
  size_t n = 0;
  for (const Nips& nips : bitmaps_) n += nips.TrackedItemsets();
  return n;
}

}  // namespace implistat
