#include "core/nips.h"

#include <algorithm>

#include "util/logging.h"

namespace implistat {

Nips::Nips(ImplicationConditions conditions, NipsOptions options)
    : conditions_(conditions),
      options_(options),
      cells_(static_cast<size_t>(options.bitmap_bits)) {
  IMPLISTAT_CHECK(options_.bitmap_bits >= 1 && options_.bitmap_bits <= 64)
      << "bitmap_bits out of range";
  IMPLISTAT_CHECK(conditions_.Validate().ok()) << "invalid conditions";
}

size_t Nips::ItemBudget() const {
  if (!bounded() || options_.capacity_factor <= 0) return 0;
  int f = std::min(options_.fringe_size, 40);
  return static_cast<size_t>(options_.capacity_factor) *
         ((size_t{1} << f) - 1);
}

void Nips::ObserveAt(int cell, ItemsetKey a, ItemsetKey b) {
  IMPLISTAT_DCHECK(cell >= 0);
  // Hash positions beyond the bitmap land in the last cell; with L = 58
  // this affects ~2^-58 of the keys.
  if (cell >= options_.bitmap_bits) cell = options_.bitmap_bits - 1;

  if (cell > fringe_right_) fringe_right_ = cell;
  if (cell < fringe_left_) return;  // Zone-1: value already 1, recorded
  Cell& c = cells_[cell];
  if (c.one) return;  // recorded events are never erased

  if (!c.data) c.data = std::make_unique<FringeCell>();
  size_t before = c.data->num_itemsets();
  FringeCell::Outcome outcome = c.data->Observe(a, b, conditions_);
  tracked_ += c.data->num_itemsets() - before;
  if (c.data->has_supported()) c.has_supported = true;

  if (outcome == FringeCell::Outcome::kNonImplication) {
    DecideOne(cell);
    ShrinkLeft();
  }
  EnforceBudget();
}

bool Nips::CellIsOne(int cell) const {
  if (cell < fringe_left_) return true;
  return cells_[cell].one;
}

int Nips::RNonImplication() const {
  int i = fringe_left_;
  while (i < options_.bitmap_bits && cells_[i].one) ++i;
  return i;
}

int Nips::RSupport() const {
  // §4.4: a fringe cell counts as (virtually) 1 for the F0_sup scan when
  // some itemset in it meets the minimum support; Zone-1 cells count by
  // definition.
  int i = fringe_left_;
  while (i < options_.bitmap_bits &&
         (cells_[i].one || cells_[i].has_supported)) {
    ++i;
  }
  return i;
}

Status Nips::Merge(const Nips& other) {
  if (!(conditions_ == other.conditions_)) {
    return Status::InvalidArgument("Nips::Merge: conditions differ");
  }
  if (options_.bitmap_bits != other.options_.bitmap_bits ||
      options_.fringe_size != other.options_.fringe_size ||
      options_.capacity_factor != other.options_.capacity_factor) {
    return Status::InvalidArgument("Nips::Merge: options differ");
  }
  if (other.fringe_right_ > fringe_right_) {
    fringe_right_ = other.fringe_right_;
  }
  for (int i = 0; i < options_.bitmap_bits; ++i) {
    Cell& mine = cells_[i];
    if (mine.one) continue;
    if (other.CellIsOne(i)) {
      DecideOne(i);
      continue;
    }
    const Cell& theirs = other.cells_[i];
    if (theirs.has_supported) mine.has_supported = true;
    if (theirs.data == nullptr) continue;
    if (mine.data == nullptr) mine.data = std::make_unique<FringeCell>();
    size_t before = mine.data->num_itemsets();
    FringeCell::Outcome outcome =
        mine.data->Merge(*theirs.data, conditions_);
    tracked_ += mine.data->num_itemsets() - before;
    if (mine.data->has_supported()) mine.has_supported = true;
    if (outcome == FringeCell::Outcome::kNonImplication) DecideOne(i);
  }
  ShrinkLeft();
  EnforceBudget();
  return Status::OK();
}

void Nips::SerializeTo(ByteWriter* out) const {
  conditions_.SerializeTo(out);
  out->PutU32(static_cast<uint32_t>(options_.fringe_size));
  out->PutU32(static_cast<uint32_t>(options_.capacity_factor));
  out->PutU32(static_cast<uint32_t>(options_.bitmap_bits));
  out->PutU32(static_cast<uint32_t>(fringe_left_));
  out->PutU32(static_cast<uint32_t>(fringe_right_ + 1));  // -1 → 0
  for (const Cell& cell : cells_) {
    out->PutBool(cell.one);
    out->PutBool(cell.has_supported);
    out->PutBool(cell.data != nullptr);
    if (cell.data) cell.data->SerializeTo(out);
  }
}

StatusOr<Nips> Nips::Deserialize(ByteReader* in) {
  IMPLISTAT_ASSIGN_OR_RETURN(ImplicationConditions cond,
                             ImplicationConditions::Deserialize(in));
  NipsOptions options;
  uint32_t fringe_size, capacity_factor, bitmap_bits, left, right_plus_1;
  IMPLISTAT_RETURN_NOT_OK(in->ReadU32(&fringe_size));
  IMPLISTAT_RETURN_NOT_OK(in->ReadU32(&capacity_factor));
  IMPLISTAT_RETURN_NOT_OK(in->ReadU32(&bitmap_bits));
  if (bitmap_bits < 1 || bitmap_bits > 64) {
    return Status::InvalidArgument("Nips: bad bitmap_bits");
  }
  options.fringe_size = static_cast<int>(fringe_size);
  options.capacity_factor = static_cast<int>(capacity_factor);
  options.bitmap_bits = static_cast<int>(bitmap_bits);
  Nips nips(cond, options);
  IMPLISTAT_RETURN_NOT_OK(in->ReadU32(&left));
  IMPLISTAT_RETURN_NOT_OK(in->ReadU32(&right_plus_1));
  if (left > bitmap_bits || right_plus_1 > bitmap_bits) {
    return Status::InvalidArgument("Nips: fringe out of range");
  }
  nips.fringe_left_ = static_cast<int>(left);
  nips.fringe_right_ = static_cast<int>(right_plus_1) - 1;
  for (Cell& cell : nips.cells_) {
    IMPLISTAT_RETURN_NOT_OK(in->ReadBool(&cell.one));
    IMPLISTAT_RETURN_NOT_OK(in->ReadBool(&cell.has_supported));
    bool has_data;
    IMPLISTAT_RETURN_NOT_OK(in->ReadBool(&has_data));
    if (has_data) {
      IMPLISTAT_ASSIGN_OR_RETURN(FringeCell fringe,
                                 FringeCell::Deserialize(in));
      nips.tracked_ += fringe.num_itemsets();
      cell.data = std::make_unique<FringeCell>(std::move(fringe));
    }
  }
  return nips;
}

size_t Nips::MemoryBytes() const {
  size_t bytes = sizeof(*this) + cells_.size() * sizeof(Cell);
  for (const Cell& c : cells_) {
    if (c.data) bytes += c.data->MemoryBytes();
  }
  return bytes;
}

void Nips::DecideOne(int cell) {
  Cell& c = cells_[cell];
  if (c.data) {
    tracked_ -= c.data->num_itemsets();
    c.data.reset();  // free all the memory allocated for the cell
  }
  c.one = true;
}

void Nips::ShrinkLeft() {
  while (fringe_left_ <= fringe_right_ &&
         fringe_left_ < options_.bitmap_bits && cells_[fringe_left_].one) {
    ++fringe_left_;
  }
}

void Nips::EnforceBudget() {
  size_t budget = ItemBudget();
  if (budget == 0) return;
  // Algorithm 1's "overflowed" branch: force the leftmost undecided cells
  // — the most populated ones, which a genuine non-implication would
  // decide first anyway — until the budget holds. This is the §4.3.3
  // fixation step; it introduces error only for non-implication counts
  // below ~2^-F · F0(A).
  while (tracked_ > budget && fringe_left_ < options_.bitmap_bits &&
         fringe_left_ <= fringe_right_) {
    DecideOne(fringe_left_);
    ShrinkLeft();
  }
}

}  // namespace implistat
