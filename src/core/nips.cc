#include "core/nips.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "delta/codec.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace implistat {

namespace {

// Fringe traffic counters (§4.3.2/§4.3.3 made observable). The intended
// invariant, checked by tests/core_nips_test.cc: across live bitmaps, at
// any read boundary (a point where FlushMetrics has run),
//   insertions − evictions − promotions == Σ TrackedItemsets().
// The hot path never touches these atomics: settle events accumulate in
// Nips::totals_ with plain adds, insertions are derived from the same
// invariant, and FlushMetrics pushes bulk deltas at read boundaries.
struct NipsMetrics {
  obs::Counter* insertions;
  obs::Counter* evictions;
  obs::Counter* promotions;
  obs::Counter* settled_non_implication;
  obs::Counter* settled_budget;
  obs::Counter* settled_merge;

  static NipsMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Global();
    static NipsMetrics m{
        reg.GetCounter("nips_fringe_insertions_total",
                       "Itemsets newly tracked in fringe cells (section "
                       "4.3.2 fringe population; includes merged and "
                       "deserialized itemsets)"),
        reg.GetCounter("nips_fringe_evictions_total",
                       "Tracked itemsets freed by the section 4.3.3 budget "
                       "fixation (cells forced to value 1 under memory "
                       "pressure)"),
        reg.GetCounter("nips_settled_promotions_total",
                       "Tracked itemsets freed because their cell settled "
                       "to value 1 through a discovered non-implication "
                       "or a merge"),
        reg.GetCounter("nips_cells_settled_total",
                       "Bitmap cells decided to value 1, by cause", "cause",
                       "non_implication"),
        reg.GetCounter("nips_cells_settled_total",
                       "Bitmap cells decided to value 1, by cause", "cause",
                       "budget"),
        reg.GetCounter("nips_cells_settled_total",
                       "Bitmap cells decided to value 1, by cause", "cause",
                       "merge"),
    };
    return m;
  }
};

}  // namespace

Nips::Nips(ImplicationConditions conditions, NipsOptions options)
    : conditions_(conditions),
      options_(options),
      cells_(static_cast<size_t>(options.bitmap_bits)) {
  IMPLISTAT_CHECK(options_.bitmap_bits >= 1 && options_.bitmap_bits <= 64)
      << "bitmap_bits out of range";
  IMPLISTAT_CHECK(conditions_.Validate().ok()) << "invalid conditions";
  // Pre-register the fringe and dirty-exclusion counters so snapshots
  // taken before any traffic still list them (at zero).
  IMPLISTAT_IF_METRICS(NipsMetrics::Get());
  FlushDirtyExclusionMetrics();
}

size_t Nips::TrackedItemsets() const {
  FlushMetrics();
  return tracked_;
}

void Nips::FlushMetrics() const {
  if constexpr (obs::kMetricsEnabled) {
    // Cumulative insertions are implied by the traffic invariant: every
    // itemset ever inserted is either still tracked or left through an
    // eviction/promotion. Deriving them here keeps ObserveAt free of any
    // metric bookkeeping at all.
    uint64_t insertions = tracked_ + totals_.evictions + totals_.promotions;
    const EventTotals& t = totals_;
    EventTotals& r = reported_;
    if (insertions != insertions_reported_ || t.evictions != r.evictions ||
        t.promotions != r.promotions ||
        t.settled_non_implication != r.settled_non_implication ||
        t.settled_budget != r.settled_budget ||
        t.settled_merge != r.settled_merge) {
      NipsMetrics& m = NipsMetrics::Get();
      m.insertions->Increment(insertions - insertions_reported_);
      m.evictions->Increment(t.evictions - r.evictions);
      m.promotions->Increment(t.promotions - r.promotions);
      m.settled_non_implication->Increment(t.settled_non_implication -
                                           r.settled_non_implication);
      m.settled_budget->Increment(t.settled_budget - r.settled_budget);
      m.settled_merge->Increment(t.settled_merge - r.settled_merge);
      insertions_reported_ = insertions;
      r = t;
    }
    FlushDirtyExclusionMetrics();
  }
}

size_t Nips::ItemBudget() const {
  if (!bounded() || options_.capacity_factor <= 0) return 0;
  int f = std::min(options_.fringe_size, 40);
  return static_cast<size_t>(options_.capacity_factor) *
         ((size_t{1} << f) - 1);
}

void Nips::ObserveAt(int cell, ItemsetKey a, ItemsetKey b) {
  IMPLISTAT_DCHECK(cell >= 0);
  // Hash positions beyond the bitmap land in the last cell; with L = 58
  // this affects ~2^-58 of the keys.
  if (cell >= options_.bitmap_bits) cell = options_.bitmap_bits - 1;

  if (cell > fringe_right_) {
    fringe_right_ = cell;
    // The serialized fringe header changed even if the cell observe below
    // turns out to be a no-op.
    if (delta_tracking_) ++clock_;
  }
  if (cell < fringe_left_) return;  // Zone-1: value already 1, recorded
  Cell& c = cells_[cell];
  if (c.one) return;  // recorded events are never erased

  if (!c.data) c.data = std::make_unique<FringeCell>();
  size_t before = c.data->num_itemsets();
  FringeCell::Outcome outcome = c.data->Observe(a, b, conditions_);
  size_t after = c.data->num_itemsets();
  tracked_ += after - before;  // an increase is an insertion; see FlushMetrics
  if (c.data->has_supported()) c.has_supported = true;
  if (delta_tracking_) {
    // A fringe observe always mutates the tracked state (at minimum the
    // itemset's support count). If the outcome settles the cell below,
    // DecideOne re-stamps it and frees the data (stamps included).
    ++clock_;
    c.stamp = clock_;
    c.data->NoteStamp(a, clock_);
  }

  if (outcome == FringeCell::Outcome::kNonImplication) {
    DecideOne(cell, SettleCause::kNonImplication);
    ShrinkLeft();
  }
  EnforceBudget();
}

bool Nips::CellIsOne(int cell) const {
  if (cell < fringe_left_) return true;
  return cells_[cell].one;
}

int Nips::RNonImplication() const {
  int i = fringe_left_;
  while (i < options_.bitmap_bits && cells_[i].one) ++i;
  return i;
}

int Nips::RSupport() const {
  // §4.4: a fringe cell counts as (virtually) 1 for the F0_sup scan when
  // some itemset in it meets the minimum support; Zone-1 cells count by
  // definition.
  int i = fringe_left_;
  while (i < options_.bitmap_bits &&
         (cells_[i].one || cells_[i].has_supported)) {
    ++i;
  }
  return i;
}

Status Nips::Merge(const Nips& other) {
  if (!(conditions_ == other.conditions_)) {
    return Status::InvalidArgument("Nips::Merge: conditions differ");
  }
  if (options_.bitmap_bits != other.options_.bitmap_bits ||
      options_.fringe_size != other.options_.fringe_size ||
      options_.capacity_factor != other.options_.capacity_factor) {
    return Status::InvalidArgument("Nips::Merge: options differ");
  }
  if (other.fringe_right_ > fringe_right_) {
    fringe_right_ = other.fringe_right_;
  }
  for (int i = 0; i < options_.bitmap_bits; ++i) {
    Cell& mine = cells_[i];
    if (mine.one) continue;
    if (other.CellIsOne(i)) {
      DecideOne(i, SettleCause::kMerge);
      continue;
    }
    const Cell& theirs = other.cells_[i];
    if (theirs.has_supported) mine.has_supported = true;
    if (theirs.data == nullptr) continue;
    if (mine.data == nullptr) mine.data = std::make_unique<FringeCell>();
    size_t before = mine.data->num_itemsets();
    FringeCell::Outcome outcome =
        mine.data->Merge(*theirs.data, conditions_);
    size_t after = mine.data->num_itemsets();
    tracked_ += after - before;
    if (mine.data->has_supported()) mine.has_supported = true;
    if (outcome == FringeCell::Outcome::kNonImplication) {
      DecideOne(i, SettleCause::kNonImplication);
    }
  }
  ShrinkLeft();
  EnforceBudget();
  return Status::OK();
}

void Nips::SerializeTo(ByteWriter* out) const {
  FlushMetrics();
  conditions_.SerializeTo(out);
  out->PutU32(static_cast<uint32_t>(options_.fringe_size));
  out->PutU32(static_cast<uint32_t>(options_.capacity_factor));
  out->PutU32(static_cast<uint32_t>(options_.bitmap_bits));
  out->PutU32(static_cast<uint32_t>(fringe_left_));
  out->PutU32(static_cast<uint32_t>(fringe_right_ + 1));  // -1 → 0
  for (const Cell& cell : cells_) {
    out->PutBool(cell.one);
    out->PutBool(cell.has_supported);
    out->PutBool(cell.data != nullptr);
    if (cell.data) cell.data->SerializeTo(out);
  }
}

StatusOr<Nips> Nips::Deserialize(ByteReader* in) {
  IMPLISTAT_ASSIGN_OR_RETURN(ImplicationConditions cond,
                             ImplicationConditions::Deserialize(in));
  NipsOptions options;
  uint32_t fringe_size, capacity_factor, bitmap_bits, left, right_plus_1;
  IMPLISTAT_RETURN_NOT_OK(in->ReadU32(&fringe_size));
  IMPLISTAT_RETURN_NOT_OK(in->ReadU32(&capacity_factor));
  IMPLISTAT_RETURN_NOT_OK(in->ReadU32(&bitmap_bits));
  if (bitmap_bits < 1 || bitmap_bits > 64) {
    return Status::InvalidArgument("Nips: bad bitmap_bits");
  }
  options.fringe_size = static_cast<int>(fringe_size);
  options.capacity_factor = static_cast<int>(capacity_factor);
  options.bitmap_bits = static_cast<int>(bitmap_bits);
  Nips nips(cond, options);
  IMPLISTAT_RETURN_NOT_OK(in->ReadU32(&left));
  IMPLISTAT_RETURN_NOT_OK(in->ReadU32(&right_plus_1));
  if (left > bitmap_bits || right_plus_1 > bitmap_bits) {
    return Status::InvalidArgument("Nips: fringe out of range");
  }
  nips.fringe_left_ = static_cast<int>(left);
  nips.fringe_right_ = static_cast<int>(right_plus_1) - 1;
  for (Cell& cell : nips.cells_) {
    IMPLISTAT_RETURN_NOT_OK(in->ReadBool(&cell.one));
    IMPLISTAT_RETURN_NOT_OK(in->ReadBool(&cell.has_supported));
    bool has_data;
    IMPLISTAT_RETURN_NOT_OK(in->ReadBool(&has_data));
    if (has_data) {
      IMPLISTAT_ASSIGN_OR_RETURN(FringeCell fringe,
                                 FringeCell::Deserialize(in));
      // Decoded itemsets enter this bitmap's fringe and count as
      // insertions — automatic, since insertions are derived from
      // tracked_ (see FlushMetrics).
      nips.tracked_ += fringe.num_itemsets();
      cell.data = std::make_unique<FringeCell>(std::move(fringe));
    }
  }
  return nips;
}

size_t Nips::MemoryBytes() const {
  FlushMetrics();
  size_t bytes = sizeof(*this) + cells_.size() * sizeof(Cell);
  for (const Cell& c : cells_) {
    if (c.data) bytes += c.data->MemoryBytes();
  }
  return bytes;
}

void Nips::SerializeDeltaTo(uint64_t since_clock, ByteWriter* out) const {
  FlushMetrics();
  out->PutVarint64(static_cast<uint64_t>(fringe_left_));
  out->PutVarint64(static_cast<uint64_t>(fringe_right_ + 1));  // -1 → 0
  std::vector<bool> changed(cells_.size());
  for (size_t i = 0; i < cells_.size(); ++i) {
    changed[i] = cells_[i].stamp > since_clock;
  }
  delta::EncodeMask(changed, out);
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (!changed[i]) continue;
    const Cell& c = cells_[i];
    if (c.one) {
      out->PutU8(0);  // settled since the baseline
      out->PutBool(c.has_supported);
    } else {
      out->PutU8(1);  // live: ship the touched itemsets
      out->PutBool(c.has_supported);
      if (c.data) {
        c.data->SerializeItemPatchTo(since_clock, out);
      } else {
        FringeCell().SerializeItemPatchTo(since_clock, out);
      }
    }
  }
}

StatusOr<Nips::DeltaPatch> Nips::DecodeDeltaSection(ByteReader* in) const {
  DeltaPatch patch;
  uint64_t left, right_plus_1;
  IMPLISTAT_RETURN_NOT_OK(in->ReadVarint64(&left));
  IMPLISTAT_RETURN_NOT_OK(in->ReadVarint64(&right_plus_1));
  const uint64_t bits = static_cast<uint64_t>(options_.bitmap_bits);
  if (left > bits || right_plus_1 > bits || left > right_plus_1) {
    return Status::InvalidArgument("Nips delta: fringe out of range");
  }
  // The sender only moved forward since the receiver's baseline; a
  // regressing fringe means the baseline is not what the sender assumed.
  if (static_cast<int>(left) < fringe_left_ ||
      static_cast<int>(right_plus_1) - 1 < fringe_right_) {
    return Status::InvalidArgument("Nips delta: fringe regressed");
  }
  patch.fringe_left = static_cast<int>(left);
  patch.fringe_right = static_cast<int>(right_plus_1) - 1;

  std::vector<bool> changed;
  IMPLISTAT_RETURN_NOT_OK(
      delta::DecodeMask(in, cells_.size(), &changed));
  std::vector<bool> settles(cells_.size(), false);
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (!changed[i]) continue;
    DeltaPatch::CellPatch cell;
    cell.index = static_cast<int>(i);
    uint8_t mode;
    IMPLISTAT_RETURN_NOT_OK(in->ReadU8(&mode));
    if (mode > 1) {
      return Status::InvalidArgument("Nips delta: unknown cell mode");
    }
    cell.settled = mode == 0;
    IMPLISTAT_RETURN_NOT_OK(in->ReadBool(&cell.cell_has_supported));
    // Either mode names a cell that was undecided at the baseline; one
    // that is already 1 here means sender and receiver disagree about
    // the baseline state — refuse and let the caller resync.
    if (cells_[i].one) {
      return Status::InvalidArgument("Nips delta: cell already settled");
    }
    if (cell.settled) {
      settles[i] = true;
    } else {
      if (cell.index < patch.fringe_left) {
        return Status::InvalidArgument(
            "Nips delta: live cell left of the fringe");
      }
      IMPLISTAT_ASSIGN_OR_RETURN(cell.items,
                                 FringeCell::DeserializeItemPatch(in));
      const size_t have =
          cells_[i].data ? cells_[i].data->num_itemsets() : 0;
      const size_t inserts =
          cells_[i].data ? cells_[i].data->NewKeys(cell.items)
                         : cell.items.items.size();
      if (have + inserts != cell.items.total_items) {
        return Status::InvalidArgument(
            "Nips delta: itemset count mismatch (desynced baseline)");
      }
    }
    patch.cells.push_back(std::move(cell));
  }
  // Advancing the fringe's left edge must leave only settled cells
  // behind it (Zone-1 invariant).
  for (int j = fringe_left_; j < patch.fringe_left; ++j) {
    if (!cells_[static_cast<size_t>(j)].one && !settles[static_cast<size_t>(j)]) {
      return Status::InvalidArgument(
          "Nips delta: fringe advanced over an undecided cell");
    }
  }
  return patch;
}

void Nips::ApplyDeltaPatch(DeltaPatch&& patch) {
  for (DeltaPatch::CellPatch& cell : patch.cells) {
    Cell& c = cells_[static_cast<size_t>(cell.index)];
    if (cell.settled) {
      DecideOne(cell.index, SettleCause::kMerge);
      c.has_supported = cell.cell_has_supported;
    } else {
      c.has_supported = cell.cell_has_supported;
      if (!c.data) c.data = std::make_unique<FringeCell>();
      tracked_ += c.data->ApplyItemPatch(std::move(cell.items));
    }
  }
  fringe_left_ = patch.fringe_left;
  fringe_right_ = patch.fringe_right;
}

void Nips::DecideOne(int cell, SettleCause cause) {
  Cell& c = cells_[cell];
  if (delta_tracking_) {
    ++clock_;
    c.stamp = clock_;
  }
  if (c.data) {
    size_t freed = c.data->num_itemsets();
    tracked_ -= freed;
    IMPLISTAT_IF_METRICS(
        (cause == SettleCause::kBudget ? totals_.evictions
                                       : totals_.promotions) += freed);
    c.data.reset();  // free all the memory allocated for the cell
  }
  IMPLISTAT_IF_METRICS({
    switch (cause) {
      case SettleCause::kNonImplication:
        ++totals_.settled_non_implication;
        break;
      case SettleCause::kBudget:
        ++totals_.settled_budget;
        break;
      case SettleCause::kMerge:
        ++totals_.settled_merge;
        break;
    }
  });
  c.one = true;
}

void Nips::ShrinkLeft() {
  while (fringe_left_ <= fringe_right_ &&
         fringe_left_ < options_.bitmap_bits && cells_[fringe_left_].one) {
    ++fringe_left_;
  }
}

void Nips::EnforceBudget() {
  size_t budget = ItemBudget();
  if (budget == 0) return;
  // Algorithm 1's "overflowed" branch: force the leftmost undecided cells
  // — the most populated ones, which a genuine non-implication would
  // decide first anyway — until the budget holds. This is the §4.3.3
  // fixation step; it introduces error only for non-implication counts
  // below ~2^-F · F0(A).
  while (tracked_ > budget && fringe_left_ < options_.bitmap_bits &&
         fringe_left_ <= fringe_right_) {
    DecideOne(fringe_left_, SettleCause::kBudget);
    ShrinkLeft();
  }
}

}  // namespace implistat
