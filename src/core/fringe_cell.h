// One undecided cell of the NIPS bitmap (§4.3.4).
//
// A fringe cell tracks every itemset a hashed into it together with the
// itemsets of B each appears with, so the cell can be assigned the value 1
// the moment one tracked itemset becomes a known non-implication.

#ifndef IMPLISTAT_CORE_FRINGE_CELL_H_
#define IMPLISTAT_CORE_FRINGE_CELL_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/conditions.h"
#include "stream/itemset.h"

namespace implistat {

/// Folds this thread's pending §3.1.1 dirty-exclusion counts into the
/// global metrics registry (no-op when metrics are compiled out). The
/// hot path only bumps a thread-local accumulator; Nips::FlushMetrics
/// calls this at every read boundary, so single-threaded pipelines see
/// exact counts in any snapshot taken after a read.
void FlushDirtyExclusionMetrics();

class FringeCell {
 public:
  enum class Outcome {
    kUndecided,        // no tracked itemset is a non-implication yet
    kNonImplication,   // `a` just became dirty: the cell's value is 1
  };

  /// Records one (a, b) occurrence.
  Outcome Observe(ItemsetKey a, ItemsetKey b,
                  const ImplicationConditions& cond);

  /// True when some tracked itemset meets the minimum support (drives the
  /// F0_sup scan of Algorithm 2 / §4.4).
  bool has_supported() const { return has_supported_; }

  /// Number of distinct itemsets a currently tracked (the fringe budget
  /// of §4.3.2 sums this across cells).
  size_t num_itemsets() const { return items_.size(); }

  /// Folds another cell's tracked itemsets into this one (distributed
  /// aggregation). Returns kNonImplication if any merged itemset is a
  /// known non-implication, i.e. the merged cell's value must become 1.
  Outcome Merge(const FringeCell& other, const ImplicationConditions& cond);

  size_t MemoryBytes() const;

  void SerializeTo(ByteWriter* out) const;
  static StatusOr<FringeCell> Deserialize(ByteReader* in);

  // --- Delta shipping (src/delta/) ---------------------------------------
  //
  // The fringe is where NIPS state churns, but per poll interval only the
  // itemsets actually observed mutate — a small slice of a mature cell's
  // population. The owning Nips bitmap stamps each touched itemset with
  // its change clock (NoteStamp); an item patch then ships exactly the
  // states whose stamp postdates the receiver's baseline, and the
  // receiver upserts them. Itemsets never leave a live cell (a settled
  // cell is shipped as a whole-cell event by the bitmap), so upserts plus
  // the shipped total count reconstruct the sender's cell byte-for-byte.

  /// Decoded form of one cell's item patch: the sender's has_supported
  /// flag, its total tracked-itemset count (a desync check), and the
  /// changed (key, state) pairs in canonical key order.
  struct ItemPatch {
    bool has_supported = false;
    uint64_t total_items = 0;
    std::vector<std::pair<ItemsetKey, ItemsetState>> items;
  };

  /// Records that itemset `a` changed at `stamp` (monotone, non-zero).
  void NoteStamp(ItemsetKey a, uint64_t stamp) { stamps_[a] = stamp; }

  /// Serializes the item patch for every itemset stamped after
  /// `since_stamp`. Itemsets never stamped (untouched since tracking
  /// began) are never shipped — the receiver's baseline already has them.
  void SerializeItemPatchTo(uint64_t since_stamp, ByteWriter* out) const;

  static StatusOr<ItemPatch> DeserializeItemPatch(ByteReader* in);

  /// Number of patch keys not currently tracked here (the upsert inserts;
  /// validation: num_itemsets() + NewKeys == patch.total_items).
  size_t NewKeys(const ItemPatch& patch) const;

  /// Applies a validated patch. Infallible: replaces/inserts the shipped
  /// states and adopts the sender's has_supported flag. Returns the
  /// change in num_itemsets() (always >= 0).
  size_t ApplyItemPatch(ItemPatch&& patch);

 private:
  std::unordered_map<ItemsetKey, ItemsetState> items_;
  // Last change stamp per itemset touched since the owning bitmap enabled
  // delta tracking; empty (and never populated) otherwise. Always a
  // subset of items_' keys, so the fringe budget bounds it too.
  std::unordered_map<ItemsetKey, uint64_t> stamps_;
  bool has_supported_ = false;
};

}  // namespace implistat

#endif  // IMPLISTAT_CORE_FRINGE_CELL_H_
