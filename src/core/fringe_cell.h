// One undecided cell of the NIPS bitmap (§4.3.4).
//
// A fringe cell tracks every itemset a hashed into it together with the
// itemsets of B each appears with, so the cell can be assigned the value 1
// the moment one tracked itemset becomes a known non-implication.

#ifndef IMPLISTAT_CORE_FRINGE_CELL_H_
#define IMPLISTAT_CORE_FRINGE_CELL_H_

#include <cstdint>
#include <unordered_map>

#include "core/conditions.h"
#include "stream/itemset.h"

namespace implistat {

/// Folds this thread's pending §3.1.1 dirty-exclusion counts into the
/// global metrics registry (no-op when metrics are compiled out). The
/// hot path only bumps a thread-local accumulator; Nips::FlushMetrics
/// calls this at every read boundary, so single-threaded pipelines see
/// exact counts in any snapshot taken after a read.
void FlushDirtyExclusionMetrics();

class FringeCell {
 public:
  enum class Outcome {
    kUndecided,        // no tracked itemset is a non-implication yet
    kNonImplication,   // `a` just became dirty: the cell's value is 1
  };

  /// Records one (a, b) occurrence.
  Outcome Observe(ItemsetKey a, ItemsetKey b,
                  const ImplicationConditions& cond);

  /// True when some tracked itemset meets the minimum support (drives the
  /// F0_sup scan of Algorithm 2 / §4.4).
  bool has_supported() const { return has_supported_; }

  /// Number of distinct itemsets a currently tracked (the fringe budget
  /// of §4.3.2 sums this across cells).
  size_t num_itemsets() const { return items_.size(); }

  /// Folds another cell's tracked itemsets into this one (distributed
  /// aggregation). Returns kNonImplication if any merged itemset is a
  /// known non-implication, i.e. the merged cell's value must become 1.
  Outcome Merge(const FringeCell& other, const ImplicationConditions& cond);

  size_t MemoryBytes() const;

  void SerializeTo(ByteWriter* out) const;
  static StatusOr<FringeCell> Deserialize(ByteReader* in);

 private:
  std::unordered_map<ItemsetKey, ItemsetState> items_;
  bool has_supported_ = false;
};

}  // namespace implistat

#endif  // IMPLISTAT_CORE_FRINGE_CELL_H_
