// Triggers over implication statistics (§2: "One can associate triggers
// when such implication counts exceed certain thresholds and could for
// example reroute traffic").
//
// A TriggerSet samples an estimator at a fixed tuple period and evaluates
// rules against the sample series:
//   * threshold rule — the statistic crosses an absolute level;
//   * rate rule — the per-period increment jumps above a multiple of its
//     trailing median (robust to the FM staircase), the netmon DDoS rule.
// Fired triggers are reported as events; callers poll or install a
// callback.

#ifndef IMPLISTAT_CORE_TRIGGER_H_
#define IMPLISTAT_CORE_TRIGGER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "core/estimator.h"

namespace implistat {

struct TriggerEvent {
  std::string rule;      // the rule's label
  uint64_t tuples;       // stream position at firing
  double value;          // statistic value that fired
  double reference;      // threshold or baseline it was compared against
};

class TriggerSet {
 public:
  /// Watches `estimator` (not owned; must outlive the TriggerSet),
  /// sampling every `period` tuples.
  TriggerSet(const ImplicationEstimator* estimator, uint64_t period);

  /// Fires when the implication count exceeds `threshold`. Re-arms only
  /// after the statistic falls back below `threshold` (hysteresis), so a
  /// sustained exceedance fires once.
  void AddThresholdRule(std::string label, double threshold);

  /// Fires when the per-period increment exceeds `factor` times the
  /// median of the last `history` increments (and `min_delta`
  /// absolutely). Quiet after fewer than 3 samples.
  void AddRateRule(std::string label, double factor, double min_delta,
                   size_t history = 8);

  /// Optional callback invoked at firing time, in addition to queueing.
  void SetCallback(std::function<void(const TriggerEvent&)> callback) {
    callback_ = std::move(callback);
  }

  /// Advances the tuple clock; samples and evaluates at period
  /// boundaries. Call once per observed tuple.
  void Tick();

  /// Fired events since the last call (cleared on return).
  std::vector<TriggerEvent> TakeEvents();

  uint64_t tuples_seen() const { return tuples_; }

 private:
  struct ThresholdRule {
    std::string label;
    double threshold;
    bool armed = true;
  };
  struct RateRule {
    std::string label;
    double factor;
    double min_delta;
    size_t history;
    std::deque<double> deltas;
  };

  void Evaluate();
  void Fire(const std::string& rule, double value, double reference);

  const ImplicationEstimator* estimator_;
  uint64_t period_;
  uint64_t tuples_ = 0;
  double last_value_ = 0;
  bool has_last_ = false;
  std::vector<ThresholdRule> threshold_rules_;
  std::vector<RateRule> rate_rules_;
  std::vector<TriggerEvent> events_;
  std::function<void(const TriggerEvent&)> callback_;
};

}  // namespace implistat

#endif  // IMPLISTAT_CORE_TRIGGER_H_
