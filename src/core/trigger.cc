#include "core/trigger.h"

#include <algorithm>

#include "util/logging.h"

namespace implistat {

TriggerSet::TriggerSet(const ImplicationEstimator* estimator,
                       uint64_t period)
    : estimator_(estimator), period_(period) {
  IMPLISTAT_CHECK(estimator_ != nullptr);
  IMPLISTAT_CHECK(period_ >= 1);
}

void TriggerSet::AddThresholdRule(std::string label, double threshold) {
  threshold_rules_.push_back(ThresholdRule{std::move(label), threshold});
}

void TriggerSet::AddRateRule(std::string label, double factor,
                             double min_delta, size_t history) {
  IMPLISTAT_CHECK(history >= 1);
  RateRule rule;
  rule.label = std::move(label);
  rule.factor = factor;
  rule.min_delta = min_delta;
  rule.history = history;
  rate_rules_.push_back(std::move(rule));
}

void TriggerSet::Tick() {
  ++tuples_;
  if (tuples_ % period_ == 0) Evaluate();
}

void TriggerSet::Evaluate() {
  double value = estimator_->EstimateImplicationCount();

  for (ThresholdRule& rule : threshold_rules_) {
    if (rule.armed && value > rule.threshold) {
      Fire(rule.label, value, rule.threshold);
      rule.armed = false;  // hysteresis: re-arm below the threshold
    } else if (!rule.armed && value <= rule.threshold) {
      rule.armed = true;
    }
  }

  if (has_last_) {
    double delta = value - last_value_;
    for (RateRule& rule : rate_rules_) {
      if (rule.deltas.size() >= 3) {
        std::vector<double> sorted(rule.deltas.begin(), rule.deltas.end());
        std::nth_element(sorted.begin(), sorted.begin() + sorted.size() / 2,
                         sorted.end());
        double median = sorted[sorted.size() / 2];
        if (delta > rule.factor * median && delta > rule.min_delta) {
          Fire(rule.label, delta, median);
        }
      }
      rule.deltas.push_back(delta);
      if (rule.deltas.size() > rule.history) rule.deltas.pop_front();
    }
  }
  last_value_ = value;
  has_last_ = true;
}

void TriggerSet::Fire(const std::string& rule, double value,
                      double reference) {
  TriggerEvent event{rule, tuples_, value, reference};
  if (callback_) callback_(event);
  events_.push_back(std::move(event));
}

std::vector<TriggerEvent> TriggerSet::TakeEvents() {
  std::vector<TriggerEvent> out;
  out.swap(events_);
  return out;
}

}  // namespace implistat
