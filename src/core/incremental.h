// Incremental implication counts (§3.2, Figure 1).
//
// The implication count is defined from a reference point where counting
// begins; the incremental count between two stream positions t1 < t2 — the
// number of *new* itemsets that appeared and satisfy the conditions — is
// ic(t2) − ic(t1). IncrementalTracker checkpoints an estimator at
// interesting positions and differences the checkpoints.

#ifndef IMPLISTAT_CORE_INCREMENTAL_H_
#define IMPLISTAT_CORE_INCREMENTAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/estimator.h"

namespace implistat {

struct Checkpoint {
  uint64_t tuples = 0;         // stream position t
  double implication = 0;      // ic(t)
  double non_implication = 0;  // ~S(t), when available
  std::string label;
};

class IncrementalTracker {
 public:
  /// Tracks an estimator it does not own; `estimator` must outlive this.
  explicit IncrementalTracker(const ImplicationEstimator* estimator);

  /// Feeds one element through to the estimator is the caller's job; this
  /// merely advances the tracker's notion of the stream position.
  void AdvanceTuples(uint64_t n = 1) { tuples_ += n; }

  /// Records the estimator's current answers as a named checkpoint and
  /// returns a copy (the internal list may reallocate on later Marks).
  Checkpoint Mark(std::string label = "");

  /// ic(to) − ic(from): the implication count contributed by itemsets new
  /// between the two checkpoints. May be slightly negative due to
  /// estimation noise; callers typically clamp.
  static double Delta(const Checkpoint& from, const Checkpoint& to) {
    return to.implication - from.implication;
  }

  const std::vector<Checkpoint>& checkpoints() const { return checkpoints_; }
  uint64_t tuples() const { return tuples_; }

  /// Durable state (kIncrementalTracker envelope): the stream clock and
  /// the checkpoint vector. The tracked estimator persists separately via
  /// its own SerializeState — together the pair survives a restart with
  /// incremental differencing intact.
  StatusOr<std::string> SerializeState() const;
  Status RestoreState(std::string_view snapshot);

 private:
  const ImplicationEstimator* estimator_;
  uint64_t tuples_ = 0;
  std::vector<Checkpoint> checkpoints_;
};

}  // namespace implistat

#endif  // IMPLISTAT_CORE_INCREMENTAL_H_
