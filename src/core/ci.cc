#include "core/ci.h"

#include <cmath>

#include "sketch/fm_sketch.h"
#include "util/logging.h"

namespace implistat {

namespace {

CiEstimate Finish(double supported, double non_impl) {
  CiEstimate est;
  est.supported_distinct = supported;
  est.non_implication = non_impl;
  est.implication = supported - non_impl;
  if (est.implication < 0) est.implication = 0;
  return est;
}

}  // namespace

namespace {

// Calibrated readout: invert the Poissonized expectation E[R̄](ν) (see
// sketch/fm_sketch.h). The classic asymptotic m/φ·2^R̄ formula carries
// load-dependent quantization bias at small per-bitmap loads, and the
// subtractive CI estimator would amplify the mismatch between its two
// terms' biases; the calibrated inverse is accurate across the range.
double FmReadout(double mean_rank, double num_bitmaps) {
  return num_bitmaps * FmInvertMeanRank(mean_rank);
}

}  // namespace

CiEstimate CiFromBitmap(const Nips& nips) {
  double supported = FmReadout(nips.RSupport(), 1.0);
  double non_impl = FmReadout(nips.RNonImplication(), 1.0);
  return Finish(supported, non_impl);
}

CiEstimate CiFromEnsemble(std::span<const Nips> bitmaps) {
  IMPLISTAT_CHECK(!bitmaps.empty());
  double sum_r_sup = 0;
  double sum_r_non = 0;
  for (const Nips& nips : bitmaps) {
    sum_r_sup += nips.RSupport();
    sum_r_non += nips.RNonImplication();
  }
  const double m = static_cast<double>(bitmaps.size());
  double supported = FmReadout(sum_r_sup / m, m);
  double non_impl = FmReadout(sum_r_non / m, m);
  return Finish(supported, non_impl);
}

double CiRawEstimate(const Nips& nips) {
  return std::pow(2.0, nips.RSupport()) -
         std::pow(2.0, nips.RNonImplication());
}

}  // namespace implistat
