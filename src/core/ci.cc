#include "core/ci.h"

#include <cmath>

#include "sketch/fm_sketch.h"
#include "util/logging.h"

namespace implistat {

namespace {

CiEstimate Finish(double supported, double non_impl) {
  CiEstimate est;
  est.supported_distinct = supported;
  est.non_implication = non_impl;
  est.implication = supported - non_impl;
  if (est.implication < 0) est.implication = 0;
  return est;
}

}  // namespace

namespace {

// Calibrated readout: invert the Poissonized expectation E[R̄](ν) (see
// sketch/fm_sketch.h). The classic asymptotic m/φ·2^R̄ formula carries
// load-dependent quantization bias at small per-bitmap loads, and the
// subtractive CI estimator would amplify the mismatch between its two
// terms' biases; the calibrated inverse is accurate across the range.
double FmReadout(double mean_rank, double num_bitmaps) {
  return num_bitmaps * FmInvertMeanRank(mean_rank);
}

}  // namespace

CiEstimate CiFromBitmap(const Nips& nips) {
  double supported = FmReadout(nips.RSupport(), 1.0);
  double non_impl = FmReadout(nips.RNonImplication(), 1.0);
  return Finish(supported, non_impl);
}

CiEstimate CiFromEnsemble(std::span<const Nips> bitmaps) {
  IMPLISTAT_CHECK(!bitmaps.empty());
  double sum_r_sup = 0;
  double sum_r_non = 0;
  for (const Nips& nips : bitmaps) {
    sum_r_sup += nips.RSupport();
    sum_r_non += nips.RNonImplication();
  }
  const double m = static_cast<double>(bitmaps.size());
  double supported = FmReadout(sum_r_sup / m, m);
  double non_impl = FmReadout(sum_r_non / m, m);
  return Finish(supported, non_impl);
}

CiEstimate CiEnsembleStdError(std::span<const Nips> bitmaps) {
  CiEstimate se;  // zero-initialized fields double as the m < 2 answer
  const size_t m = bitmaps.size();
  if (m < 2) return se;
  double sum_r_sup = 0;
  double sum_r_non = 0;
  for (const Nips& nips : bitmaps) {
    sum_r_sup += nips.RSupport();
    sum_r_non += nips.RNonImplication();
  }
  // Leave-one-out readouts, each rescaled from the (m−1)/m key share the
  // reduced ensemble saw back to the full stream.
  std::vector<CiEstimate> loo(m);
  CiEstimate mean;
  const double dm = static_cast<double>(m);
  for (size_t i = 0; i < m; ++i) {
    const double mean_sup = (sum_r_sup - bitmaps[i].RSupport()) / (dm - 1);
    const double mean_non =
        (sum_r_non - bitmaps[i].RNonImplication()) / (dm - 1);
    loo[i].supported_distinct = dm * FmInvertMeanRank(mean_sup);
    loo[i].non_implication = dm * FmInvertMeanRank(mean_non);
    loo[i].implication =
        std::max(0.0, loo[i].supported_distinct - loo[i].non_implication);
    mean.supported_distinct += loo[i].supported_distinct / dm;
    mean.non_implication += loo[i].non_implication / dm;
    mean.implication += loo[i].implication / dm;
  }
  double var_sup = 0, var_non = 0, var_impl = 0;
  for (const CiEstimate& est : loo) {
    var_sup += (est.supported_distinct - mean.supported_distinct) *
               (est.supported_distinct - mean.supported_distinct);
    var_non += (est.non_implication - mean.non_implication) *
               (est.non_implication - mean.non_implication);
    var_impl += (est.implication - mean.implication) *
                (est.implication - mean.implication);
  }
  const double scale = (dm - 1) / dm;
  se.supported_distinct = std::sqrt(scale * var_sup);
  se.non_implication = std::sqrt(scale * var_non);
  se.implication = std::sqrt(scale * var_impl);
  return se;
}

double CiRawEstimate(const Nips& nips) {
  return std::pow(2.0, nips.RSupport()) -
         std::pow(2.0, nips.RNonImplication());
}

}  // namespace implistat
