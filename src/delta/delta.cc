#include "delta/delta.h"

#include <string>
#include <utility>

#include "core/nips_ci_ensemble.h"
#include "core/sliding.h"
#include "delta/codec.h"
#include "util/serde.h"

namespace implistat {

std::string WrapDeltaSnapshot(uint64_t base_epoch, uint64_t new_epoch,
                              std::string_view fragment, bool allow_rle) {
  uint8_t flags = 0;
  std::string compressed;
  std::string_view body = fragment;
  if (allow_rle) {
    compressed = delta::RleCompress(fragment);
    if (compressed.size() < fragment.size()) {
      flags |= kDeltaFlagRle;
      body = compressed;
    }
  }
  ByteWriter out;
  out.PutU8(kDeltaFormatVersion);
  out.PutU8(flags);
  out.PutVarint64(base_epoch);
  out.PutVarint64(new_epoch);
  out.PutVarint64(fragment.size());
  out.PutBytes(body);
  return WrapSnapshot(SnapshotKind::kDeltaSnapshot, out.str());
}

namespace {

// Shared header parse; leaves `in` positioned at the body.
Status ReadDeltaHeader(ByteReader* in, DeltaInfo* info,
                       uint64_t* uncompressed_len) {
  uint8_t version, flags;
  IMPLISTAT_RETURN_NOT_OK(in->ReadU8(&version));
  if (version != kDeltaFormatVersion) {
    return Status::InvalidArgument("delta: unknown format version " +
                                   std::to_string(version));
  }
  IMPLISTAT_RETURN_NOT_OK(in->ReadU8(&flags));
  if (flags & ~kDeltaFlagRle) {
    return Status::InvalidArgument("delta: unknown flag bits");
  }
  IMPLISTAT_RETURN_NOT_OK(in->ReadVarint64(&info->base_epoch));
  IMPLISTAT_RETURN_NOT_OK(in->ReadVarint64(&info->new_epoch));
  IMPLISTAT_RETURN_NOT_OK(in->ReadVarint64(uncompressed_len));
  info->compressed = (flags & kDeltaFlagRle) != 0;
  return Status::OK();
}

}  // namespace

StatusOr<DeltaInfo> PeekDeltaInfo(std::string_view delta_snapshot) {
  IMPLISTAT_ASSIGN_OR_RETURN(
      std::string_view payload,
      UnwrapSnapshot(delta_snapshot, SnapshotKind::kDeltaSnapshot));
  ByteReader in(payload);
  DeltaInfo info;
  uint64_t uncompressed_len;
  IMPLISTAT_RETURN_NOT_OK(ReadDeltaHeader(&in, &info, &uncompressed_len));
  return info;
}

StatusOr<std::string> UnwrapDeltaSnapshot(std::string_view delta_snapshot,
                                          DeltaInfo* info) {
  IMPLISTAT_ASSIGN_OR_RETURN(
      std::string_view payload,
      UnwrapSnapshot(delta_snapshot, SnapshotKind::kDeltaSnapshot));
  ByteReader in(payload);
  DeltaInfo parsed;
  uint64_t uncompressed_len;
  IMPLISTAT_RETURN_NOT_OK(ReadDeltaHeader(&in, &parsed, &uncompressed_len));
  std::string_view body;
  IMPLISTAT_RETURN_NOT_OK(in.ReadBytes(in.remaining(), &body));
  std::string fragment;
  if (parsed.compressed) {
    IMPLISTAT_ASSIGN_OR_RETURN(fragment,
                               delta::RleDecompress(body, uncompressed_len));
  } else {
    if (body.size() != uncompressed_len) {
      return Status::InvalidArgument("delta: body length mismatch");
    }
    fragment.assign(body);
  }
  if (info != nullptr) *info = parsed;
  return fragment;
}

StatusOr<DeltaInfo> ApplyDeltaSnapshot(ImplicationEstimator* estimator,
                                       std::string_view delta_snapshot,
                                       uint64_t expected_base_epoch) {
  DeltaInfo info;
  IMPLISTAT_ASSIGN_OR_RETURN(std::string fragment,
                             UnwrapDeltaSnapshot(delta_snapshot, &info));
  if (info.base_epoch != expected_base_epoch) {
    return Status::FailedPrecondition(
        "delta: base epoch " + std::to_string(info.base_epoch) +
        " does not match the held snapshot epoch " +
        std::to_string(expected_base_epoch));
  }
  IMPLISTAT_RETURN_NOT_OK(estimator->ApplyDelta(fragment));
  return info;
}

StatusOr<std::unique_ptr<ImplicationEstimator>> MaterializeEstimator(
    std::string_view full_snapshot) {
  IMPLISTAT_ASSIGN_OR_RETURN(SnapshotKind kind,
                             PeekSnapshotKind(full_snapshot));
  switch (kind) {
    case SnapshotKind::kNipsCi: {
      IMPLISTAT_ASSIGN_OR_RETURN(
          std::string_view payload,
          UnwrapSnapshot(full_snapshot, SnapshotKind::kNipsCi));
      IMPLISTAT_ASSIGN_OR_RETURN(NipsCi decoded, NipsCi::Deserialize(payload));
      return std::unique_ptr<ImplicationEstimator>(
          std::make_unique<NipsCi>(std::move(decoded)));
    }
    case SnapshotKind::kSlidingNipsCi: {
      // Geometry and conditions are carried by the snapshot itself; the
      // placeholder construction never observes a tuple, so its defaults
      // are irrelevant after RestoreState.
      auto sliding = std::make_unique<SlidingNipsCiEstimator>(
          ImplicationConditions{}, SlidingOptions{});
      IMPLISTAT_RETURN_NOT_OK(sliding->RestoreState(full_snapshot));
      return std::unique_ptr<ImplicationEstimator>(std::move(sliding));
    }
    default:
      return Status::Unimplemented(
          std::string("delta: no estimator materialization for snapshot "
                      "kind ") +
          SnapshotKindName(kind));
  }
}

bool KindSupportsDeltas(SnapshotKind kind) {
  return kind == SnapshotKind::kNipsCi || kind == SnapshotKind::kSlidingNipsCi;
}

}  // namespace implistat
