#include "delta/codec.h"

#include <algorithm>

namespace implistat::delta {

void EncodeMask(const std::vector<bool>& bits, ByteWriter* out) {
  uint8_t byte = 0;
  for (size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) byte |= static_cast<uint8_t>(1u << (i % 8));
    if (i % 8 == 7) {
      out->PutU8(byte);
      byte = 0;
    }
  }
  if (bits.size() % 8 != 0) out->PutU8(byte);
}

Status DecodeMask(ByteReader* in, size_t n, std::vector<bool>* bits) {
  const size_t bytes = (n + 7) / 8;
  std::string_view raw;
  IMPLISTAT_RETURN_NOT_OK(in->ReadBytes(bytes, &raw));
  bits->assign(n, false);
  for (size_t i = 0; i < n; ++i) {
    if (static_cast<uint8_t>(raw[i / 8]) & (1u << (i % 8))) {
      (*bits)[i] = true;
    }
  }
  // Canonical form: padding bits in the final byte must be clear.
  if (n % 8 != 0 && bytes > 0) {
    const uint8_t last = static_cast<uint8_t>(raw[bytes - 1]);
    const uint8_t pad = static_cast<uint8_t>(0xffu << (n % 8));
    if ((last & pad) != 0) {
      return Status::InvalidArgument("mask: non-zero padding bits");
    }
  }
  return Status::OK();
}

namespace {

constexpr size_t kMaxLiteralRun = 128;  // control 0x00..0x7f
constexpr size_t kMinRepeatRun = 3;     // break-even vs. literal
constexpr size_t kMaxRepeatRun = 130;   // control 0x80..0xff

void FlushLiterals(std::string_view pending, std::string* out) {
  size_t pos = 0;
  while (pos < pending.size()) {
    const size_t run = std::min(kMaxLiteralRun, pending.size() - pos);
    out->push_back(static_cast<char>(run - 1));
    out->append(pending.substr(pos, run));
    pos += run;
  }
}

}  // namespace

std::string RleCompress(std::string_view bytes) {
  std::string out;
  out.reserve(bytes.size() / 2 + 16);
  size_t literal_start = 0;
  size_t i = 0;
  while (i < bytes.size()) {
    size_t run = 1;
    while (i + run < bytes.size() && run < kMaxRepeatRun &&
           bytes[i + run] == bytes[i]) {
      ++run;
    }
    if (run >= kMinRepeatRun) {
      FlushLiterals(bytes.substr(literal_start, i - literal_start), &out);
      out.push_back(
          static_cast<char>(0x80 + static_cast<uint8_t>(run - kMinRepeatRun)));
      out.push_back(bytes[i]);
      i += run;
      literal_start = i;
    } else {
      i += run;
    }
  }
  FlushLiterals(bytes.substr(literal_start, i - literal_start), &out);
  return out;
}

StatusOr<std::string> RleDecompress(std::string_view bytes,
                                    size_t expected_size) {
  std::string out;
  out.reserve(expected_size);
  size_t pos = 0;
  while (pos < bytes.size()) {
    const uint8_t control = static_cast<uint8_t>(bytes[pos++]);
    if (control < 0x80) {
      const size_t run = static_cast<size_t>(control) + 1;
      if (bytes.size() - pos < run) {
        return Status::InvalidArgument("rle: truncated literal run");
      }
      if (expected_size - out.size() < run) {
        return Status::InvalidArgument("rle: output overruns declared size");
      }
      out.append(bytes.substr(pos, run));
      pos += run;
    } else {
      const size_t run = static_cast<size_t>(control - 0x80) + kMinRepeatRun;
      if (pos >= bytes.size()) {
        return Status::InvalidArgument("rle: truncated repeat run");
      }
      if (expected_size - out.size() < run) {
        return Status::InvalidArgument("rle: output overruns declared size");
      }
      out.append(run, bytes[pos++]);
    }
  }
  if (out.size() != expected_size) {
    return Status::InvalidArgument("rle: output short of declared size");
  }
  return out;
}

}  // namespace implistat::delta
