// Delta snapshot shipping: the envelope and apply layer over the
// per-estimator delta fragments (core/estimator.h SerializeDelta /
// ApplyDelta).
//
// A delta snapshot is a kDeltaSnapshot envelope (util/envelope.h — magic,
// version, CRC32C) whose payload is:
//
//   offset  field
//   ------  -----------------------------------------------------------
//   0       delta format version (u8; currently 1)
//   1       flags (u8; bit 0 = body is RLE-compressed, see delta/codec.h)
//   2       base epoch (varint — the snapshot the receiver must hold)
//   ..      new epoch (varint — what the receiver holds after applying)
//   ..      uncompressed body length (varint)
//   ..      body: the estimator's delta fragment
//
// Epochs are opaque monotone counters assigned by whoever serves the
// snapshots (the server's per-query snapshot counter, the supervisor's
// per-edge ack). A receiver applies a delta if and only if its base epoch
// equals the epoch of the state it holds; anything else — epoch mismatch,
// decode refusal, unknown version — is answered by re-pulling a full
// snapshot (the resync path), never by a partial apply.

#ifndef IMPLISTAT_DELTA_DELTA_H_
#define IMPLISTAT_DELTA_DELTA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "core/estimator.h"
#include "util/envelope.h"
#include "util/status_or.h"

namespace implistat {

inline constexpr uint8_t kDeltaFormatVersion = 1;
inline constexpr uint8_t kDeltaFlagRle = 0x01;

struct DeltaInfo {
  uint64_t base_epoch = 0;
  uint64_t new_epoch = 0;
  bool compressed = false;
};

/// Seals an estimator delta fragment into a kDeltaSnapshot envelope.
/// With `allow_rle`, the body is RLE-compressed when that actually
/// shrinks it (bitmap-diff masks and sparse patches usually do; the flag
/// exists because compression is a negotiated capability on the wire —
/// see net/wire.h SNAPSHOT_DELTA).
std::string WrapDeltaSnapshot(uint64_t base_epoch, uint64_t new_epoch,
                              std::string_view fragment, bool allow_rle);

/// Reads the epochs and flags without decompressing the body (envelope
/// magic/version/CRC are still fully validated).
StatusOr<DeltaInfo> PeekDeltaInfo(std::string_view delta_snapshot);

/// Validates the envelope, decompresses if needed, and returns the raw
/// estimator fragment. `info` (optional) receives the header fields.
StatusOr<std::string> UnwrapDeltaSnapshot(std::string_view delta_snapshot,
                                          DeltaInfo* info);

/// The receiver-side fold: unwraps `delta_snapshot`, refuses unless its
/// base epoch equals `expected_base_epoch` (FailedPrecondition — the
/// caller resyncs with a full snapshot), then applies the fragment to
/// `estimator` under the no-partial-mutation contract. On success the
/// estimator's SerializeState is byte-identical to the sender's and the
/// caller should advance its epoch to the returned DeltaInfo::new_epoch.
StatusOr<DeltaInfo> ApplyDeltaSnapshot(ImplicationEstimator* estimator,
                                       std::string_view delta_snapshot,
                                       uint64_t expected_base_epoch);

/// Builds a live estimator from a full durable snapshot, dispatching on
/// the envelope's SnapshotKind. Supports the kinds that serve deltas
/// (kNipsCi, kSlidingNipsCi); everything else is Unimplemented and stays
/// on the full-snapshot pull path.
StatusOr<std::unique_ptr<ImplicationEstimator>> MaterializeEstimator(
    std::string_view full_snapshot);

/// True for snapshot kinds with a delta-capable estimator behind them.
bool KindSupportsDeltas(SnapshotKind kind);

}  // namespace implistat

#endif  // IMPLISTAT_DELTA_DELTA_H_
