// Compact byte codecs for delta snapshots (src/delta/).
//
// Two building blocks, both deliberately tiny and dependency-free:
//
//  * Bitpacked masks. A delta names "which of N slots changed" — bitmaps
//    in an ensemble, cells in a fringe window. Shipping one bit per slot
//    (LSB-first within each byte) beats a varint index list as soon as
//    more than N/8 slots are dirty, and is never worse than N/8 + 1
//    bytes. The mask length is implied by the caller's N, so the codec
//    never guesses: DecodeMask refuses when the reader holds fewer than
//    ceil(N/8) bytes, and rejects set padding bits in the final byte
//    (a canonical-form check that doubles as corruption detection).
//
//  * Byte-run RLE. Serialized sketch state is full of zero runs (empty
//    b_count lists, settled cells) and repeated small integers. This is
//    an LZ4-flavoured literal/match scheme restricted to run matches —
//    one control byte per run keeps the decoder branch-trivial and
//    bounds-checkable:
//        control < 0x80: literal run of (control + 1) bytes      [1..128]
//        control >= 0x80: repeat next byte (control - 0x80 + 3)×  [3..130]
//    Runs shorter than 3 are emitted as literals (a repeat run costs 2
//    bytes, so 3 is the break-even). Compression never expands by more
//    than 1 byte per 128 (the literal control overhead); callers ship
//    the uncompressed form when RleCompress fails to win (see delta.h's
//    flags byte).
//
// Neither codec frames itself: the delta envelope (delta.h) carries the
// uncompressed length, and masks are always decoded against a known N.

#ifndef IMPLISTAT_DELTA_CODEC_H_
#define IMPLISTAT_DELTA_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/serde.h"
#include "util/status.h"
#include "util/status_or.h"

namespace implistat::delta {

/// Appends ceil(bits.size()/8) bytes to `out`, LSB-first. An empty mask
/// appends nothing.
void EncodeMask(const std::vector<bool>& bits, ByteWriter* out);

/// Reads ceil(n/8) bytes from `in` and expands them into an n-entry
/// mask. Rejects short reads and non-zero padding bits in the last byte.
Status DecodeMask(ByteReader* in, size_t n, std::vector<bool>* bits);

/// Run-length compresses `bytes`. Worst case (no runs ≥ 3) the output is
/// bytes.size() + ceil(bytes.size()/128); callers should compare sizes
/// and keep the original when compression loses.
std::string RleCompress(std::string_view bytes);

/// Decompresses RleCompress output. `expected_size` is the exact
/// uncompressed length (carried in the delta envelope); any mismatch —
/// short input, trailing input, or output over/undershoot — is an
/// InvalidArgument, never a crash or overallocation beyond
/// expected_size.
StatusOr<std::string> RleDecompress(std::string_view bytes,
                                    size_t expected_size);

}  // namespace implistat::delta

#endif  // IMPLISTAT_DELTA_CODEC_H_
