#include "sketch/space_saving.h"

#include <algorithm>

#include "util/logging.h"

namespace implistat {

SpaceSaving::SpaceSaving(size_t capacity) : capacity_(capacity) {
  IMPLISTAT_CHECK(capacity_ >= 1);
}

void SpaceSaving::Bump(uint64_t key, uint64_t old_count) {
  auto bucket_it = by_count_.find(old_count);
  IMPLISTAT_DCHECK(bucket_it != by_count_.end());
  std::vector<uint64_t>& bucket = bucket_it->second;
  auto pos = std::find(bucket.begin(), bucket.end(), key);
  IMPLISTAT_DCHECK(pos != bucket.end());
  *pos = bucket.back();
  bucket.pop_back();
  if (bucket.empty()) by_count_.erase(bucket_it);
  by_count_[old_count + 1].push_back(key);
}

void SpaceSaving::Observe(uint64_t key) {
  ++total_;
  auto it = counters_.find(key);
  if (it != counters_.end()) {
    Bump(key, it->second.count);
    ++it->second.count;
    return;
  }
  if (counters_.size() < capacity_) {
    counters_.emplace(key, Counter{1, 0});
    by_count_[1].push_back(key);
    return;
  }
  // Replace a minimum-count entry; the newcomer inherits its count as
  // error bound (the space-saving invariant).
  auto min_bucket = by_count_.begin();
  uint64_t min_count = min_bucket->first;
  uint64_t victim = min_bucket->second.back();
  min_bucket->second.pop_back();
  if (min_bucket->second.empty()) by_count_.erase(min_bucket);
  counters_.erase(victim);
  counters_.emplace(key, Counter{min_count + 1, min_count});
  by_count_[min_count + 1].push_back(key);
}

std::vector<SpaceSaving::Entry> SpaceSaving::Items() const {
  std::vector<Entry> items;
  items.reserve(counters_.size());
  for (const auto& [key, counter] : counters_) {
    items.push_back(Entry{key, counter.count, counter.error});
  }
  std::sort(items.begin(), items.end(),
            [](const Entry& a, const Entry& b) { return a.count > b.count; });
  return items;
}

std::vector<SpaceSaving::Entry> SpaceSaving::GuaranteedAbove(
    uint64_t threshold) const {
  std::vector<Entry> out;
  for (const Entry& entry : Items()) {
    if (entry.count - entry.error > threshold) out.push_back(entry);
  }
  return out;
}

size_t SpaceSaving::MemoryBytes() const {
  return counters_.size() * (sizeof(uint64_t) + sizeof(Counter) +
                             2 * sizeof(void*)) +
         by_count_.size() * (sizeof(uint64_t) + 3 * sizeof(void*)) +
         counters_.size() * sizeof(uint64_t);
}

}  // namespace implistat
