#include "sketch/count_min.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace implistat {

CountMinSketch::CountMinSketch(int depth, size_t width, uint64_t seed)
    : depth_(depth), width_(width), counters_(depth * width, 0) {
  IMPLISTAT_CHECK(depth_ >= 1 && width_ >= 1);
  HashFamily family(HashKind::kMix, seed);
  hashers_.reserve(static_cast<size_t>(depth_));
  for (int d = 0; d < depth_; ++d) hashers_.push_back(family.Make(d));
}

CountMinSketch CountMinSketch::FromErrorBounds(double epsilon, double delta,
                                               uint64_t seed) {
  IMPLISTAT_CHECK(epsilon > 0 && epsilon < 1);
  IMPLISTAT_CHECK(delta > 0 && delta < 1);
  int depth = static_cast<int>(std::ceil(std::log(1.0 / delta)));
  size_t width =
      static_cast<size_t>(std::ceil(std::exp(1.0) / epsilon));
  return CountMinSketch(std::max(depth, 1), width, seed);
}

void CountMinSketch::Add(uint64_t key, uint64_t count) {
  total_ += count;
  for (int d = 0; d < depth_; ++d) {
    size_t cell = hashers_[d]->Hash(key) % width_;
    counters_[static_cast<size_t>(d) * width_ + cell] += count;
  }
}

uint64_t CountMinSketch::Estimate(uint64_t key) const {
  uint64_t best = ~uint64_t{0};
  for (int d = 0; d < depth_; ++d) {
    size_t cell = hashers_[d]->Hash(key) % width_;
    best = std::min(best, counters_[static_cast<size_t>(d) * width_ + cell]);
  }
  return best == ~uint64_t{0} ? 0 : best;
}

size_t CountMinSketch::MemoryBytes() const {
  return counters_.size() * sizeof(uint64_t) +
         static_cast<size_t>(depth_) * sizeof(uint64_t);
}

}  // namespace implistat
