// PCSA — Probabilistic Counting with Stochastic Averaging.
//
// The variance-reduction scheme the paper applies to NIPS/CI (§6.1 "we used
// 64 bitmaps ... stochastic averaging"): m bitmaps, each element routed to
// one by the low log2(m) hash bits, remaining bits feed p(); the estimate
// is m·2^mean(R)/φ. Standard error ≈ 0.78/√m.

#ifndef IMPLISTAT_SKETCH_PCSA_H_
#define IMPLISTAT_SKETCH_PCSA_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "hash/hash64.h"
#include "sketch/distinct_counter.h"

namespace implistat {

class Pcsa final : public DistinctCounter {
 public:
  /// `num_bitmaps` must be a power of two.
  Pcsa(std::unique_ptr<Hasher64> hasher, int num_bitmaps, int bits = 58);

  void Add(uint64_t key) override;
  double Estimate() const override;
  size_t MemoryBytes() const override;

  int num_bitmaps() const { return static_cast<int>(bitmaps_.size()); }

 private:
  std::unique_ptr<Hasher64> hasher_;
  std::vector<uint64_t> bitmaps_;
  int route_bits_;
  int bits_;
};

}  // namespace implistat

#endif  // IMPLISTAT_SKETCH_PCSA_H_
