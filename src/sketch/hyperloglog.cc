#include "sketch/hyperloglog.h"

#include <bit>
#include <cmath>

#include "util/bits.h"
#include "util/logging.h"

namespace implistat {

HyperLogLog::HyperLogLog(std::unique_ptr<Hasher64> hasher, int precision)
    : hasher_(std::move(hasher)),
      registers_(size_t{1} << precision, 0),
      precision_(precision) {
  IMPLISTAT_CHECK(precision_ >= 4 && precision_ <= 18)
      << "precision out of range";
}

void HyperLogLog::Add(uint64_t key) {
  uint64_t h = hasher_->Hash(key);
  size_t idx = h >> (64 - precision_);
  // The remaining bits, left-aligned; its leading-zero count (plus one) is
  // the register rank. rest == 0 means all 64-p payload bits were zero.
  uint64_t rest = h << precision_;
  int rank = rest == 0 ? (64 - precision_) + 1
                       : std::countl_zero(rest) + 1;
  if (rank > registers_[idx]) registers_[idx] = static_cast<uint8_t>(rank);
}

double HyperLogLog::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double alpha;
  switch (precision_) {
    case 4:
      alpha = 0.673;
      break;
    case 5:
      alpha = 0.697;
      break;
    case 6:
      alpha = 0.709;
      break;
    default:
      alpha = 0.7213 / (1.0 + 1.079 / m);
  }
  double inv_sum = 0;
  int zeros = 0;
  for (uint8_t reg : registers_) {
    inv_sum += std::pow(2.0, -static_cast<double>(reg));
    if (reg == 0) ++zeros;
  }
  double raw = alpha * m * m / inv_sum;
  if (raw <= 2.5 * m && zeros > 0) {
    // Small-range correction: fall back to linear counting.
    return m * std::log(m / static_cast<double>(zeros));
  }
  return raw;
}

size_t HyperLogLog::MemoryBytes() const {
  return registers_.size() + sizeof(uint64_t);
}

}  // namespace implistat
