#include "sketch/fm_sketch.h"

#include <cmath>
#include <cstring>
#include <unordered_map>

#include "util/bits.h"
#include "util/logging.h"

namespace implistat {

double FmExpectedRank(double load) {
  if (load <= 0) return 0;
  double expectation = 0;
  double prefix_all_hit = 1.0;
  for (int i = 0; i < 64 && prefix_all_hit > 1e-12; ++i) {
    prefix_all_hit *= 1.0 - std::exp(-load * std::pow(2.0, -(i + 1)));
    expectation += prefix_all_hit;  // adds P(R >= i+1)
  }
  return expectation;
}

double FmInvertMeanRank(double mean_rank) {
  if (mean_rank <= 0) return 0;
  // Ensemble readouts feed this integral rank sums divided by small
  // ensemble sizes — a tiny input domain hit over and over (trigger
  // evaluation polls the estimate every epoch), while each bisection
  // below costs thousands of exp/pow calls. Memoize per thread; the
  // function is pure, so the cache can only return what the bisection
  // would have.
  thread_local std::unordered_map<uint64_t, double> memo;
  uint64_t key;
  static_assert(sizeof(key) == sizeof(mean_rank));
  std::memcpy(&key, &mean_rank, sizeof(key));
  if (auto it = memo.find(key); it != memo.end()) return it->second;
  // E[R](ν) is strictly increasing; bisect on log2(ν).
  double lo = -20, hi = 62;
  for (int iter = 0; iter < 80; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (FmExpectedRank(std::pow(2.0, mid)) < mean_rank) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  double inverted = std::pow(2.0, 0.5 * (lo + hi));
  if (memo.size() >= (1u << 16)) memo.clear();  // hostile-input backstop
  memo.emplace(key, inverted);
  return inverted;
}

FmSketch::FmSketch(std::unique_ptr<Hasher64> hasher, int bits)
    : hasher_(std::move(hasher)), bits_(bits) {
  IMPLISTAT_CHECK(bits_ >= 1 && bits_ <= 64) << "bitmap length out of range";
  IMPLISTAT_CHECK(hasher_ != nullptr);
}

void FmSketch::Add(uint64_t key) {
  int i = RhoLsb(hasher_->Hash(key));
  if (i < bits_) bitmap_ |= uint64_t{1} << i;
}

int FmSketch::LeftmostZero() const {
  int r = RhoLsb(~bitmap_);
  return r > bits_ ? bits_ : r;
}

double FmSketch::Estimate() const {
  return std::pow(2.0, LeftmostZero()) / kFmPhi;
}

size_t FmSketch::MemoryBytes() const {
  // The bitmap itself plus the hasher seed; L bits rounded up.
  return static_cast<size_t>((bits_ + 7) / 8) + sizeof(uint64_t);
}

}  // namespace implistat
