// Count-Min sketch (Cormode & Muthukrishnan 2005).
//
// The canonical frequency summary of the heavy-hitter literature the
// paper contrasts against (§1, §5): point queries overestimate by at most
// εT with probability 1−δ using depth·width counters. Included so the
// benchmark suite can demonstrate the paper's core argument — frequency
// machinery cannot see the cumulative effect of many small-count items
// (bench/heavy_hitter_blindspot).

#ifndef IMPLISTAT_SKETCH_COUNT_MIN_H_
#define IMPLISTAT_SKETCH_COUNT_MIN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "hash/hash_family.h"

namespace implistat {

class CountMinSketch {
 public:
  /// depth rows of width counters; ε ≈ e/width, δ ≈ e^-depth.
  CountMinSketch(int depth, size_t width, uint64_t seed);

  /// Convenience: dimensions from accuracy targets.
  static CountMinSketch FromErrorBounds(double epsilon, double delta,
                                        uint64_t seed);

  void Add(uint64_t key, uint64_t count = 1);

  /// Point estimate: >= true count, <= true count + εT w.h.p.
  uint64_t Estimate(uint64_t key) const;

  uint64_t total() const { return total_; }
  int depth() const { return depth_; }
  size_t width() const { return width_; }
  size_t MemoryBytes() const;

 private:
  int depth_;
  size_t width_;
  std::vector<std::unique_ptr<Hasher64>> hashers_;
  std::vector<uint64_t> counters_;  // row-major depth x width
  uint64_t total_ = 0;
};

}  // namespace implistat

#endif  // IMPLISTAT_SKETCH_COUNT_MIN_H_
