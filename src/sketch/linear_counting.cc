#include "sketch/linear_counting.h"

#include <cmath>

#include "util/logging.h"

namespace implistat {

LinearCounting::LinearCounting(std::unique_ptr<Hasher64> hasher,
                               size_t num_cells)
    : hasher_(std::move(hasher)),
      words_((num_cells + 63) / 64, 0),
      num_cells_(num_cells),
      zero_cells_(num_cells) {
  IMPLISTAT_CHECK(num_cells_ >= 1);
}

void LinearCounting::Add(uint64_t key) {
  uint64_t h = hasher_->Hash(key) % num_cells_;
  uint64_t& word = words_[h >> 6];
  uint64_t mask = uint64_t{1} << (h & 63);
  if (!(word & mask)) {
    word |= mask;
    --zero_cells_;
  }
}

double LinearCounting::Estimate() const {
  if (zero_cells_ == 0) {
    // Saturated: report the (unreachable-from-below) upper bound.
    return static_cast<double>(num_cells_) *
           std::log(static_cast<double>(num_cells_));
  }
  return static_cast<double>(num_cells_) *
         std::log(static_cast<double>(num_cells_) /
                  static_cast<double>(zero_cells_));
}

size_t LinearCounting::MemoryBytes() const {
  return words_.size() * sizeof(uint64_t) + sizeof(uint64_t);
}

}  // namespace implistat
