// HyperLogLog (Flajolet et al. 2007).
//
// Not in the 2005 paper — included as the modern descendant of the FM
// machinery so the benchmark suite can show where the distinct-count
// substrate stands against the estimator that later became standard.

#ifndef IMPLISTAT_SKETCH_HYPERLOGLOG_H_
#define IMPLISTAT_SKETCH_HYPERLOGLOG_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "hash/hash64.h"
#include "sketch/distinct_counter.h"

namespace implistat {

class HyperLogLog final : public DistinctCounter {
 public:
  /// `precision` p in [4, 18]: m = 2^p registers.
  HyperLogLog(std::unique_ptr<Hasher64> hasher, int precision);

  void Add(uint64_t key) override;
  double Estimate() const override;
  size_t MemoryBytes() const override;

  int precision() const { return precision_; }

 private:
  std::unique_ptr<Hasher64> hasher_;
  std::vector<uint8_t> registers_;
  int precision_;
};

}  // namespace implistat

#endif  // IMPLISTAT_SKETCH_HYPERLOGLOG_H_
