// Common interface for distinct-count (F0) estimators.

#ifndef IMPLISTAT_SKETCH_DISTINCT_COUNTER_H_
#define IMPLISTAT_SKETCH_DISTINCT_COUNTER_H_

#include <cstdint>

namespace implistat {

class DistinctCounter {
 public:
  virtual ~DistinctCounter() = default;

  /// Observes one element (duplicates allowed, by definition of F0).
  virtual void Add(uint64_t key) = 0;

  /// Current estimate of the number of distinct elements seen.
  virtual double Estimate() const = 0;

  /// Approximate memory footprint in bytes (constrained-environment
  /// accounting; see §4.6).
  virtual size_t MemoryBytes() const = 0;
};

}  // namespace implistat

#endif  // IMPLISTAT_SKETCH_DISTINCT_COUNTER_H_
