// Flajolet–Martin probabilistic counting (the paper's §4.1.1 substrate).
//
// A bitmap of L cells; element a sets cell p(hash(a)), the position of the
// least significant 1-bit. The position R of the leftmost zero estimates
// log2(φ·F0) with φ = 0.775351, so F̂0 = 2^R / φ. Lemma 1: cell i is hit by
// ~F0/2^(i+1) distinct elements.

#ifndef IMPLISTAT_SKETCH_FM_SKETCH_H_
#define IMPLISTAT_SKETCH_FM_SKETCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "hash/hash64.h"
#include "sketch/distinct_counter.h"

namespace implistat {

/// Flajolet–Martin's bias correction constant: E[R] ≈ log2(φ F0).
inline constexpr double kFmPhi = 0.775351;

/// Calibrated readout for (ensembles of) FM bitmaps: returns the
/// per-bitmap load ν whose expected leftmost-zero rank equals `mean_rank`
/// under the Poissonized cell model
///
///   E[R](ν) = Σ_{k≥1} Π_{i=0}^{k−1} (1 − e^{−ν·2^{−(i+1)}}).
///
/// Unlike the asymptotic 2^R/φ formula this is accurate at small loads,
/// which matters for the subtractive CI estimator (core/ci.h) whose two
/// terms would otherwise inherit different quantization biases.
double FmInvertMeanRank(double mean_rank);

/// The model's forward map E[R](ν) (exposed for tests).
double FmExpectedRank(double load);

class FmSketch final : public DistinctCounter {
 public:
  /// `bits` is the bitmap length L (cells); 64 suffices for any count.
  FmSketch(std::unique_ptr<Hasher64> hasher, int bits = 64);

  void Add(uint64_t key) override;
  double Estimate() const override;
  size_t MemoryBytes() const override;

  /// Position of the leftmost (least significant) zero cell — the raw
  /// estimator R. Equals `bits` when every cell is set.
  int LeftmostZero() const;

  /// Direct cell access for tests (0-based from the least significant).
  bool CellSet(int i) const { return (bitmap_ >> i) & 1; }

  int bits() const { return bits_; }

 private:
  std::unique_ptr<Hasher64> hasher_;
  uint64_t bitmap_ = 0;
  int bits_;
};

}  // namespace implistat

#endif  // IMPLISTAT_SKETCH_FM_SKETCH_H_
