// Linear (probabilistic) counting — Whang, Vander-Zanden & Taylor, TODS'90
// (the paper's reference [26]).
//
// A bitmap of m cells addressed uniformly; the estimate is m·ln(m/z) where
// z is the number of zero cells. Accurate while the load factor is modest;
// included as a classic comparator and for exact-ish small-range counting.

#ifndef IMPLISTAT_SKETCH_LINEAR_COUNTING_H_
#define IMPLISTAT_SKETCH_LINEAR_COUNTING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "hash/hash64.h"
#include "sketch/distinct_counter.h"

namespace implistat {

class LinearCounting final : public DistinctCounter {
 public:
  LinearCounting(std::unique_ptr<Hasher64> hasher, size_t num_cells);

  void Add(uint64_t key) override;
  double Estimate() const override;
  size_t MemoryBytes() const override;

  size_t zero_cells() const { return zero_cells_; }

 private:
  std::unique_ptr<Hasher64> hasher_;
  std::vector<uint64_t> words_;
  size_t num_cells_;
  size_t zero_cells_;
};

}  // namespace implistat

#endif  // IMPLISTAT_SKETCH_LINEAR_COUNTING_H_
