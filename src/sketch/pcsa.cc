#include "sketch/pcsa.h"

#include <cmath>

#include "sketch/fm_sketch.h"
#include "util/bits.h"
#include "util/logging.h"

namespace implistat {

Pcsa::Pcsa(std::unique_ptr<Hasher64> hasher, int num_bitmaps, int bits)
    : hasher_(std::move(hasher)),
      bitmaps_(static_cast<size_t>(num_bitmaps), 0),
      route_bits_(CeilLog2(static_cast<uint64_t>(num_bitmaps))),
      bits_(bits) {
  IMPLISTAT_CHECK(num_bitmaps >= 1 &&
                  IsPowerOfTwo(static_cast<uint64_t>(num_bitmaps)))
      << "num_bitmaps must be a power of two";
  // Routing consumes log2(m) hash bits; shrink the bitmap to what the
  // remaining bits can feed (56 cells already cover ~10^17 per bitmap).
  if (bits_ + route_bits_ > 64) bits_ = 64 - route_bits_;
  IMPLISTAT_CHECK(bits_ >= 1) << "too many bitmaps for a 64-bit hash";
}

void Pcsa::Add(uint64_t key) {
  uint64_t h = hasher_->Hash(key);
  size_t which = h & (bitmaps_.size() - 1);
  int i = RhoLsb(h >> route_bits_);
  if (i < bits_) bitmaps_[which] |= uint64_t{1} << i;
}

double Pcsa::Estimate() const {
  double sum_r = 0;
  for (uint64_t bm : bitmaps_) {
    int r = RhoLsb(~bm);
    sum_r += r > bits_ ? bits_ : r;
  }
  double mean_r = sum_r / static_cast<double>(bitmaps_.size());
  // Flajolet–Martin's correction for the estimator's initial
  // nonlinearity: m/φ·(2^R̄ − 2^(−κ·R̄)) with κ ≈ 1.75 removes the strong
  // positive bias when the per-bitmap load n/m is small (and yields 0 for
  // an empty sketch).
  return static_cast<double>(bitmaps_.size()) *
         (std::pow(2.0, mean_r) - std::pow(2.0, -1.75 * mean_r)) / kFmPhi;
}

size_t Pcsa::MemoryBytes() const {
  return bitmaps_.size() * sizeof(uint64_t) + sizeof(uint64_t);
}

}  // namespace implistat
