// Space-Saving heavy hitters (Metwally, Agrawal & El Abbadi 2005).
//
// Maintains the top-k frequent keys with k counters: an unseen key
// replaces the minimum counter and inherits its count as error bound.
// Every key with true frequency > T/k is guaranteed to be tracked. The
// second frequency-era comparator for bench/heavy_hitter_blindspot: a
// DDoS of single-packet spoofed sources never produces a heavy hitter,
// while its implication count explodes.

#ifndef IMPLISTAT_SKETCH_SPACE_SAVING_H_
#define IMPLISTAT_SKETCH_SPACE_SAVING_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace implistat {

class SpaceSaving {
 public:
  explicit SpaceSaving(size_t capacity);

  void Observe(uint64_t key);

  struct Entry {
    uint64_t key;
    uint64_t count;  // upper bound on true frequency
    uint64_t error;  // count − error is a lower bound
  };

  /// Tracked entries, most frequent first.
  std::vector<Entry> Items() const;

  /// Keys whose guaranteed (lower-bound) frequency exceeds `threshold`.
  std::vector<Entry> GuaranteedAbove(uint64_t threshold) const;

  uint64_t tuples_seen() const { return total_; }
  size_t capacity() const { return capacity_; }
  size_t MemoryBytes() const;

 private:
  struct Counter {
    uint64_t count;
    uint64_t error;
  };

  size_t capacity_;
  uint64_t total_ = 0;
  std::unordered_map<uint64_t, Counter> counters_;
  // count -> keys with that count; supports O(log n) min lookup.
  std::map<uint64_t, std::vector<uint64_t>> by_count_;

  void Bump(uint64_t key, uint64_t old_count);
};

}  // namespace implistat

#endif  // IMPLISTAT_SKETCH_SPACE_SAVING_H_
