#include "datagen/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace implistat {

ZipfSampler::ZipfSampler(uint64_t n, double theta) : n_(n), theta_(theta) {
  IMPLISTAT_CHECK(n_ >= 1);
  IMPLISTAT_CHECK(theta_ >= 0.0);
  IMPLISTAT_CHECK(n_ <= (uint64_t{1} << 24))
      << "ZipfSampler table bounded at 2^24 entries";
  cdf_.resize(n_);
  double acc = 0;
  for (uint64_t k = 0; k < n_; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), theta_);
    cdf_[k] = acc;
  }
  for (double& v : cdf_) v /= acc;
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace implistat
