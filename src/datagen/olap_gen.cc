#include "datagen/olap_gen.h"

#include <cmath>

#include "hash/hash64.h"
#include "util/logging.h"

namespace implistat {

namespace {

constexpr const char* kDimNames[8] = {"A", "B", "C", "D", "E", "F", "G", "H"};

// Hash-derived uniform double in [0, 1).
double HashUnit(uint64_t key, uint64_t seed) {
  return static_cast<double>(MixHash(key, seed) >> 11) * 0x1.0p-53;
}

}  // namespace

OlapGenerator::OlapGenerator(OlapGenParams params)
    : params_(params), rng_(SplitMix64(params.seed + 0x01a9)), row_(8) {
  IMPLISTAT_CHECK(params_.loyal_b_pool >= 1 &&
                  params_.loyal_b_pool < params_.cardinalities[1])
      << "loyal B pool must leave room for promiscuous B values";
  for (int i = 0; i < 8; ++i) {
    IMPLISTAT_CHECK(
        schema_.AddAttribute(kDimNames[i], params_.cardinalities[i]).ok());
  }
}

ValueId OlapGenerator::PoolPartnerE(ValueId pool_b) const {
  return static_cast<ValueId>(MixHash(pool_b, params_.seed + 0xc0b4) %
                              params_.cardinalities[4]);
}

OlapGenerator::Combo OlapGenerator::MakeCombo(uint64_t index) const {
  // Coordinates are a pure function of (seed, index): the unbounded combo
  // population costs no memory.
  uint64_t h1 = MixHash(index, params_.seed + 0xc0b0);
  uint64_t h2 = MixHash(index, params_.seed + 0xc0b1);
  uint64_t h3 = MixHash(index, params_.seed + 0xc0b2);
  Combo combo;
  combo.a = static_cast<ValueId>(h1 % params_.cardinalities[0]);
  combo.e = static_cast<ValueId>((h1 >> 32) % params_.cardinalities[4]);
  combo.f = static_cast<ValueId>(h2 % params_.cardinalities[5]);
  combo.loyal =
      (static_cast<double>(h2 >> 11) * 0x1.0p-53) < params_.loyal_fraction;
  combo.noise =
      (static_cast<double>(h3 >> 11) * 0x1.0p-53) * params_.max_noise;
  combo.loyal_b = 0;
  if (combo.loyal) {
    // Adoption window widens with the combo index, so fresh pool values
    // (fresh B → E implications) keep surfacing as the stream grows.
    double u = HashUnit(index, params_.seed + 0xc0b3);
    double window =
        std::min(static_cast<double>(params_.loyal_b_pool),
                 params_.pool_adoption_offset +
                     static_cast<double>(index) / params_.pool_adoption_rate);
    combo.loyal_b = static_cast<ValueId>(u * window);
    if (combo.loyal_b >= params_.loyal_b_pool) {
      combo.loyal_b = static_cast<ValueId>(params_.loyal_b_pool - 1);
    }
    // Pool membership forces this combo's E to the value's fixed partner
    // so the implication B → E holds (up to the per-value noise below).
    combo.e = PoolPartnerE(combo.loyal_b);
  }
  return combo;
}

std::optional<TupleRef> OlapGenerator::Next() {
  uint64_t index;
  if (next_combo_ == 0 || rng_.Bernoulli(params_.new_combo_rate)) {
    index = next_combo_++;
  } else {
    // Skewed revisit favouring older combos.
    double u = rng_.NextDouble();
    index = static_cast<uint64_t>(std::pow(u, params_.revisit_skew) *
                                  static_cast<double>(next_combo_));
    if (index >= next_combo_) index = next_combo_ - 1;
  }
  Combo combo = MakeCombo(index);

  ValueId b;
  ValueId e = combo.e;
  if (combo.loyal && !rng_.Bernoulli(combo.noise)) {
    b = combo.loyal_b;
    // Per-pool-value E noise: the B → E implication is approximate, which
    // is what separates the γ = 0.6 and γ = 0.8 truths.
    double b_noise =
        HashUnit(b, params_.seed + 0xc0b5) * params_.max_noise;
    if (rng_.Bernoulli(b_noise)) {
      e = static_cast<ValueId>(rng_.Uniform(params_.cardinalities[4]));
    }
  } else {
    // Noise/promiscuous draw outside the loyal pool (so pool values keep
    // their single-E property). A skewed component keeps a growing slice
    // of noise values above the support threshold; a uniform component
    // scatters one-off observations across the dimension.
    double u = rng_.Bernoulli(params_.noise_uniform_fraction)
                   ? rng_.NextDouble()
                   : std::pow(rng_.NextDouble(), params_.noise_skew);
    b = static_cast<ValueId>(
        params_.loyal_b_pool +
        static_cast<uint64_t>(
            u * static_cast<double>(params_.cardinalities[1] -
                                    params_.loyal_b_pool)));
    if (b >= params_.cardinalities[1]) {
      b = static_cast<ValueId>(params_.cardinalities[1] - 1);
    }
  }

  row_[0] = combo.a;
  row_[1] = b;
  row_[2] = static_cast<ValueId>(rng_.Uniform(params_.cardinalities[2]));
  row_[3] = static_cast<ValueId>(rng_.Uniform(params_.cardinalities[3]));
  row_[4] = e;
  row_[5] = combo.f;
  // G correlates softly with A (a CORDS-style dependency for the
  // dependency-audit example); H is uniform.
  if (rng_.Bernoulli(0.5)) {
    row_[6] = static_cast<ValueId>(MixHash(combo.a, params_.seed + 0x6006) %
                                   params_.cardinalities[6]);
  } else {
    row_[6] = static_cast<ValueId>(rng_.Uniform(params_.cardinalities[6]));
  }
  row_[7] = static_cast<ValueId>(rng_.Uniform(params_.cardinalities[7]));
  return TupleRef(row_.data(), row_.size());
}

}  // namespace implistat
