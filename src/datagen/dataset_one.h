// Dataset One — the synthetic workload of §6.1 with imposed implication
// counts.
//
// The recipe (per itemset of A):
//  * S qualifying itemsets: u ~ Uniform[1, c] itemsets of B, `pair_support`
//    (50) tuples per pair, then `qualifying_extra_b` (4) fresh b's with one
//    tuple each — support 50u+4, top-c confidence 50u/(50u+4) ≈ 92%, so
//    the itemset implies B under γ = 90%.
//  * (|A|−S)/3 confidence-noise itemsets: u real pairs at 50 tuples plus
//    8 fresh b's with `conf_noise_tuples_per_b` tuples each, pushing the
//    top-c confidence below γ for every c. (The paper writes one tuple per
//    extra b, which only violates γ = 90% at c = 1; we use 8 so the
//    violation holds for c ∈ {1, 2, 4} — same intent, see EXPERIMENTS.md.)
//  * (|A|−S)/3 multiplicity-noise itemsets: support 50 spread round-robin
//    over u ~ Uniform[c+1, c+10] distinct b's — top-c confidence ≈ c/u.
//  * (|A|−S)/3 low-support itemsets: one pair, 40 tuples (< σ = 50).
// The output is shuffled (the algorithm is order-independent).
//
// The matching conditions are K = c, σ = 50, γ = 0.90 at top-c, with the
// tracking-bound multiplicity semantics (strict_multiplicity = false) the
// paper's generator implies — see core/conditions.h.

#ifndef IMPLISTAT_DATAGEN_DATASET_ONE_H_
#define IMPLISTAT_DATAGEN_DATASET_ONE_H_

#include <cstdint>

#include "core/conditions.h"
#include "stream/tuple_stream.h"

namespace implistat {

struct DatasetOneParams {
  uint64_t cardinality_a = 1000;  // |A|
  uint64_t implied_count = 500;   // S, the imposed implication count
  uint32_t c = 1;                 // one-to-c implications
  uint64_t pair_support = 50;     // tuples per real (a, b) pair; also σ
  uint32_t qualifying_extra_b = 4;
  uint32_t conf_noise_extra_b = 8;
  uint64_t conf_noise_tuples_per_b = 8;
  uint64_t low_support_tuples = 40;
  uint64_t seed = 0;
};

struct DatasetOne {
  /// Two attributes, "A" then "B", with observed cardinalities.
  Schema schema;
  /// The shuffled tuple stream.
  VectorStream stream;
  /// The conditions under which `true_implication_count` is the answer.
  ImplicationConditions conditions;
  /// Imposed S.
  uint64_t true_implication_count = 0;
  /// Imposed ~S (supported itemsets violating a condition).
  uint64_t true_non_implication_count = 0;
  /// Imposed F0_sup(A).
  uint64_t true_supported_distinct = 0;
};

DatasetOne GenerateDatasetOne(const DatasetOneParams& params);

}  // namespace implistat

#endif  // IMPLISTAT_DATAGEN_DATASET_ONE_H_
