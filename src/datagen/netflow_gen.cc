#include "datagen/netflow_gen.h"

#include "hash/hash64.h"
#include "util/logging.h"

namespace implistat {

NetflowGenerator::NetflowGenerator(NetflowGenParams params)
    : params_(params),
      rng_(SplitMix64(params.seed + 0xf10f)),
      source_dist_(params.num_sources, params.source_skew),
      dest_dist_(params.num_destinations, params.destination_skew),
      service_dist_(params.num_services, params.service_skew),
      row_(4) {
  IMPLISTAT_CHECK(schema_.AddAttribute("Source", params_.num_sources).ok());
  IMPLISTAT_CHECK(
      schema_.AddAttribute("Destination", params_.num_destinations).ok());
  IMPLISTAT_CHECK(schema_.AddAttribute("Service", params_.num_services).ok());
  IMPLISTAT_CHECK(schema_.AddAttribute("Hour", params_.num_hours).ok());
}

std::optional<TupleRef> NetflowGenerator::Next() {
  const Episode* active = nullptr;
  for (const Episode& episode : params_.episodes) {
    if (tuples_ >= episode.start_tuple &&
        tuples_ < episode.start_tuple + episode.length) {
      active = &episode;
      break;
    }
  }
  if (active != nullptr && rng_.Bernoulli(active->intensity)) {
    EmitEpisode(*active);
  } else {
    EmitBase();
  }
  row_[kHour] = static_cast<ValueId>(
      (tuples_ / params_.tuples_per_hour) % params_.num_hours);
  ++tuples_;
  return TupleRef(row_.data(), row_.size());
}

void NetflowGenerator::EmitBase() {
  row_[kSource] = static_cast<ValueId>(source_dist_.Sample(rng_));
  row_[kDestination] = static_cast<ValueId>(dest_dist_.Sample(rng_));
  row_[kService] = static_cast<ValueId>(service_dist_.Sample(rng_));
}

void NetflowGenerator::EmitEpisode(const Episode& episode) {
  switch (episode.kind) {
    case EpisodeKind::kFlashCrowd:
      // Many distinct (mostly fresh) sources, one destination, WWW-ish
      // service.
      row_[kSource] = static_cast<ValueId>(source_dist_.Sample(rng_));
      row_[kDestination] = episode.focus;
      row_[kService] = 0;
      break;
    case EpisodeKind::kDdos:
      // Spoofed sources drawn uniformly from the whole space: each
      // individual source contributes a tiny count, the aggregate is huge.
      row_[kSource] =
          static_cast<ValueId>(rng_.Uniform(params_.num_sources));
      row_[kDestination] = episode.focus;
      row_[kService] =
          static_cast<ValueId>(rng_.Uniform(params_.num_services));
      break;
    case EpisodeKind::kPortScan:
      // One source probing destinations sequentially.
      row_[kSource] = episode.focus;
      row_[kDestination] =
          static_cast<ValueId>(rng_.Uniform(params_.num_destinations));
      row_[kService] =
          static_cast<ValueId>(rng_.Uniform(params_.num_services));
      break;
  }
}

}  // namespace implistat
