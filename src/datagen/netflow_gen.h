// NetflowGenerator — synthetic router traffic in the shape of Table 1:
// (Source, Destination, Service, Hour).
//
// Base traffic is Zipf-skewed on every dimension. On top of it the
// generator injects the episode types the paper's introduction motivates:
//
//  * Flash crowd — a burst of many distinct sources hitting one
//    destination (e.g. Olympics results page).
//  * DDoS — a large number of spoofed sources, each sending a handful of
//    packets to one victim ("the counts are very small at the first hop
//    but significantly contributing to the cumulative effect").
//  * Port scan — one source probing many destinations.
//
// The example applications (examples/netmon.cc) run implication queries
// against this stream and show the episode signatures in the counts.

#ifndef IMPLISTAT_DATAGEN_NETFLOW_GEN_H_
#define IMPLISTAT_DATAGEN_NETFLOW_GEN_H_

#include <cstdint>
#include <vector>

#include "datagen/zipf.h"
#include "stream/tuple_stream.h"
#include "util/random.h"

namespace implistat {

enum class EpisodeKind { kFlashCrowd, kDdos, kPortScan };

struct Episode {
  EpisodeKind kind;
  uint64_t start_tuple = 0;  // stream position at which the episode begins
  uint64_t length = 0;       // episode tuples, interleaved with base traffic
  /// Fraction of stream tuples devoted to the episode while active.
  double intensity = 0.5;
  /// The fixed endpoint: the crowded/attacked destination, or the
  /// scanning source.
  ValueId focus = 0;
};

struct NetflowGenParams {
  uint64_t num_sources = 1 << 16;
  uint64_t num_destinations = 1 << 14;
  uint64_t num_services = 24;
  uint64_t num_hours = 24;
  double source_skew = 1.1;
  double destination_skew = 1.1;
  double service_skew = 0.9;
  /// Tuples per simulated hour (drives the Hour attribute).
  uint64_t tuples_per_hour = 50000;
  std::vector<Episode> episodes;
  uint64_t seed = 0;
};

class NetflowGenerator final : public TupleStream {
 public:
  explicit NetflowGenerator(NetflowGenParams params);

  const Schema& schema() const override { return schema_; }
  std::optional<TupleRef> Next() override;

  uint64_t tuples_emitted() const { return tuples_; }

  /// Attribute indices in the schema, for query construction.
  static constexpr int kSource = 0;
  static constexpr int kDestination = 1;
  static constexpr int kService = 2;
  static constexpr int kHour = 3;

 private:
  void EmitBase();
  void EmitEpisode(const Episode& episode);

  NetflowGenParams params_;
  Schema schema_;
  Rng rng_;
  ZipfSampler source_dist_;
  ZipfSampler dest_dist_;
  ZipfSampler service_dist_;
  uint64_t tuples_ = 0;
  std::vector<ValueId> row_;
};

}  // namespace implistat

#endif  // IMPLISTAT_DATAGEN_NETFLOW_GEN_H_
