// OlapGenerator — synthetic stand-in for the proprietary 8-dimension OLAP
// dataset of §6.2 (Tables 3–4, Figure 7).
//
// The real data cannot be redistributed ("given to us by an OLAP company
// whose name we cannot disclose"), so this generator synthesizes a stream
// with the same per-dimension cardinalities (Table 3) and an embedded,
// tunable implication structure:
//
//  * Tuples are drawn from an ever-growing population of "combos" — latent
//    entities with fixed (A, E, F) coordinates. A combo is *loyal* with
//    probability `loyal_fraction`: it emits a fixed B value except for a
//    per-combo noise rate ν ~ Uniform[0, max_noise), so its top-1
//    confidence is ≈ 1 − ν and the workload-A truth — the compound
//    implication (A, E, F) → B — depends on γ and grows with the stream
//    like Table 4's first column. Promiscuous combos draw B at random
//    every time and go dirty once supported.
//
//  * Loyal combos draw their fixed B from a *pool* of `loyal_b_pool`
//    values with a power-skewed rank (tail values adopted late, so fresh
//    implications keep appearing). A pool value co-occurs with a single
//    fixed E value except for per-value noise, so the workload-B truth —
//    B → E — is small, γ-sensitive, and saturates slowly like Table 4's
//    second column. B values outside the pool are pure noise (drawn
//    uniformly by promiscuous combos) and mix E partners quickly.
//
// Old combos are revisited with a skewed distribution so supports keep
// growing; new combos appear at `new_combo_rate` so the distinct
// population keeps growing. Absolute counts differ from the paper's
// private data, but the estimators face the same regime: large compound
// cardinality, counts dominated by small implications, truth evolving
// with T. EXPERIMENTS.md records our measured Table 4.

#ifndef IMPLISTAT_DATAGEN_OLAP_GEN_H_
#define IMPLISTAT_DATAGEN_OLAP_GEN_H_

#include <array>
#include <cstdint>

#include "stream/tuple_stream.h"
#include "util/random.h"

namespace implistat {

struct OlapGenParams {
  /// Table 3 cardinalities for dimensions A..H.
  std::array<uint64_t, 8> cardinalities = {1557, 2669, 2,   2,
                                           3363, 131,  660, 693};
  /// Probability that a tuple starts a brand-new combo.
  double new_combo_rate = 0.05;
  /// Fraction of combos that are loyal to one B value.
  double loyal_fraction = 0.75;
  /// Per-combo B noise ν ~ Uniform[0, max_noise) for loyal combos, and
  /// per-pool-value E noise of the same magnitude; keeps the γ = 0.6 and
  /// γ = 0.8 truths distinct for both workloads.
  double max_noise = 0.35;
  /// Number of B values reserved for the B → E implication pool.
  uint64_t loyal_b_pool = 300;
  /// Pool adoption widens with the combo population: combo i draws its
  /// pool rank uniformly from [0, min(pool, offset + i/rate)), so fresh
  /// pool values keep crossing the support threshold throughout the
  /// stream and the workload-B count grows gradually (Table 4's shape).
  double pool_adoption_offset = 40;
  double pool_adoption_rate = 1200;
  /// Skew of the noise/promiscuous B draws: value pool + floor((|B|−pool)
  /// · u^noise_skew), so the supported slice of the non-pool B values also
  /// evolves with the stream instead of saturating instantly.
  double noise_skew = 2.5;
  /// Fraction of noise draws taken uniformly over the *whole* B dimension
  /// (one-off observations): keeps the number of distinct observed B
  /// values near the full cardinality — what pressures Distinct
  /// Sampling's fixed budget — without inflating F0_sup.
  double noise_uniform_fraction = 0.3;
  /// Skew of revisits: a revisit picks combo floor(next · U^revisit_skew),
  /// so larger values favour older combos (more support accumulation).
  double revisit_skew = 2.0;
  uint64_t seed = 0;
};

/// Streams tuples forever (bounded by the caller); single-pass.
class OlapGenerator final : public TupleStream {
 public:
  explicit OlapGenerator(OlapGenParams params);

  const Schema& schema() const override { return schema_; }
  std::optional<TupleRef> Next() override;

  /// Number of distinct combos materialized so far.
  uint64_t num_combos() const { return next_combo_; }

  /// The fixed E partner of a loyal-pool B value (for tests).
  ValueId PoolPartnerE(ValueId pool_b) const;

  const OlapGenParams& params() const { return params_; }

 private:
  // Deterministic per-combo coordinates, derived from the seed and combo
  // index — the combo population needs no storage.
  struct Combo {
    ValueId a, e, f;
    ValueId loyal_b;   // fixed (pool) B for loyal combos
    bool loyal;
    double noise;      // ν for loyal combos
  };
  Combo MakeCombo(uint64_t index) const;

  OlapGenParams params_;
  Schema schema_;
  Rng rng_;
  uint64_t next_combo_ = 0;
  std::vector<ValueId> row_;
};

}  // namespace implistat

#endif  // IMPLISTAT_DATAGEN_OLAP_GEN_H_
