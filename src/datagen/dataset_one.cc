#include "datagen/dataset_one.h"

#include <vector>

#include "util/logging.h"
#include "util/random.h"

namespace implistat {

namespace {

// Appends `count` copies of (a, b) to the flat (A, B) tuple buffer.
void Emit(std::vector<ValueId>* flat, ValueId a, ValueId b, uint64_t count) {
  for (uint64_t i = 0; i < count; ++i) {
    flat->push_back(a);
    flat->push_back(b);
  }
}

}  // namespace

DatasetOne GenerateDatasetOne(const DatasetOneParams& params) {
  IMPLISTAT_CHECK(params.implied_count <= params.cardinality_a)
      << "imposed count S cannot exceed |A|";
  IMPLISTAT_CHECK(params.c >= 1);
  Rng rng(SplitMix64(params.seed + 0xd5e1));

  const uint64_t noise_total = params.cardinality_a - params.implied_count;
  // Three noise kinds, each 1/3 of the noise itemsets; the remainder goes
  // to the low-support kind (which affects neither S nor ~S).
  const uint64_t kind1 = noise_total / 3;  // confidence violators
  const uint64_t kind2 = noise_total / 3;  // multiplicity violators
  const uint64_t kind3 = noise_total - kind1 - kind2;  // below support

  std::vector<ValueId> flat;
  ValueId next_a = 0;
  ValueId next_b = 0;

  // Step 1: S qualifying itemsets (a → B holds).
  for (uint64_t s = 0; s < params.implied_count; ++s) {
    ValueId a = next_a++;
    uint64_t u = rng.UniformRange(1, params.c);
    for (uint64_t j = 0; j < u; ++j) {
      Emit(&flat, a, next_b++, params.pair_support);
    }
    for (uint32_t j = 0; j < params.qualifying_extra_b; ++j) {
      Emit(&flat, a, next_b++, 1);
    }
  }

  // Step 2: confidence-noise itemsets — satisfy support (and the tracked
  // multiplicity) but fail the top-c confidence.
  for (uint64_t s = 0; s < kind1; ++s) {
    ValueId a = next_a++;
    uint64_t u = rng.UniformRange(1, params.c);
    for (uint64_t j = 0; j < u; ++j) {
      Emit(&flat, a, next_b++, params.pair_support);
    }
    for (uint32_t j = 0; j < params.conf_noise_extra_b; ++j) {
      Emit(&flat, a, next_b++, params.conf_noise_tuples_per_b);
    }
  }

  // Step 3: multiplicity-noise itemsets — support spread thinly over
  // u ∈ [c+1, c+10] distinct b's, so the top-c confidence ≈ c/u < γ.
  for (uint64_t s = 0; s < kind2; ++s) {
    ValueId a = next_a++;
    uint64_t u = rng.UniformRange(params.c + 1, params.c + 10);
    std::vector<ValueId> bs;
    bs.reserve(u);
    for (uint64_t j = 0; j < u; ++j) bs.push_back(next_b++);
    for (uint64_t t = 0; t < params.pair_support; ++t) {
      Emit(&flat, a, bs[t % u], 1);
    }
  }

  // Step 4: below-support itemsets — one pair, too few tuples to matter.
  for (uint64_t s = 0; s < kind3; ++s) {
    Emit(&flat, next_a++, next_b++, params.low_support_tuples);
  }

  // Shuffle tuples (Fisher–Yates over rows); §6.1 shuffles the output file
  // to demonstrate order independence.
  const size_t rows = flat.size() / 2;
  for (size_t i = rows - 1; i > 0; --i) {
    size_t j = rng.Uniform(i + 1);
    std::swap(flat[2 * i], flat[2 * j]);
    std::swap(flat[2 * i + 1], flat[2 * j + 1]);
  }

  DatasetOne out;
  Schema schema;
  IMPLISTAT_CHECK(schema.AddAttribute("A", next_a).ok());
  IMPLISTAT_CHECK(schema.AddAttribute("B", next_b).ok());
  out.schema = schema;
  out.stream = VectorStream(schema, std::move(flat));
  out.conditions.max_multiplicity = params.c;
  out.conditions.min_support = params.pair_support;
  out.conditions.min_top_confidence = 0.90;
  out.conditions.confidence_c = params.c;
  out.conditions.strict_multiplicity = false;
  out.true_implication_count = params.implied_count;
  out.true_non_implication_count = kind1 + kind2;
  out.true_supported_distinct = params.implied_count + kind1 + kind2;
  return out;
}

}  // namespace implistat
