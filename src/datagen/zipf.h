// Zipf-distributed sampling for skewed synthetic workloads.

#ifndef IMPLISTAT_DATAGEN_ZIPF_H_
#define IMPLISTAT_DATAGEN_ZIPF_H_

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace implistat {

/// Samples from Zipf(n, theta): P(k) ∝ 1/(k+1)^theta for k in [0, n).
/// theta = 0 degenerates to uniform. Uses an inverted-CDF table, so
/// construction is O(n) and sampling O(log n); n is bounded to keep the
/// table affordable.
class ZipfSampler {
 public:
  ZipfSampler(uint64_t n, double theta);

  uint64_t Sample(Rng& rng) const;

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  uint64_t n_;
  double theta_;
  std::vector<double> cdf_;
};

}  // namespace implistat

#endif  // IMPLISTAT_DATAGEN_ZIPF_H_
