// Client: blocking request/response connection to an implistat server.
//
// One method per protocol request (net/wire.h); each sends a frame and
// blocks until the matching response arrives (responses come back in
// request order, so no correlation bookkeeping). The outer Status/
// StatusOr reports transport or wire-format trouble; a server-side
// refusal (bad query id, unknown value, backpressure) comes back as the
// decoded Status itself.
//
// Deadlines: ClientOptions carries a connect timeout and a per-request
// deadline. A request that misses its deadline fails with
// kDeadlineExceeded — and because the response may still be in flight,
// the connection is desynchronized and marked lost.
//
// Failure taxonomy (what the aggregation tier keys its retry logic on):
//  * kUnavailable    — CONNECTION_LOST: the transport failed (send/recv
//    error, peer hung up) or a previous failure already poisoned the
//    connection. Reconnect() and retry is safe.
//  * kDeadlineExceeded — the per-request deadline fired. Also marks the
//    connection lost (a late response would answer the wrong request).
//  * anything else from the outer Status — a malformed or out-of-order
//    response: the peer speaks the protocol wrongly. Reconnecting may
//    not help; report it rather than hot-loop.
// After any of these, connection_lost() is true and every call returns
// kUnavailable until Reconnect() succeeds — one Client object serves a
// peer across arbitrarily many peer restarts.
//
// Pipelining: Submit() ships a request without waiting; Await() blocks
// for the oldest outstanding response. Responses arrive in request order
// (the wire protocol's FIFO contract), so correlation is positional —
// the client keeps a deque of expected types and matches strictly in
// order. The in-flight window is bounded by ClientOptions::max_in_flight
// (keep it at or under the server's max_pipeline_depth, or the server
// pauses reading and the pipeline degrades to TCP flow control). Submit
// never deadlocks against a full send buffer: while blocked on POLLOUT
// it also drains POLLIN into the decode buffer, so the server can always
// make progress. Mixing styles is refused: RoundTrip() while requests
// are in flight fails rather than desynchronize.
//
// Not thread-safe: one connection, one thread. Open several clients for
// concurrency — the server multiplexes them.

#ifndef IMPLISTAT_NET_CLIENT_H_
#define IMPLISTAT_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/messages.h"
#include "net/wire.h"

namespace implistat::net {

struct ClientOptions {
  /// Largest response frame to accept (metrics text and estimator
  /// snapshots are the big ones).
  size_t max_frame_bytes = 64u << 20;
  /// TCP connect timeout in milliseconds; 0 blocks on the OS default
  /// (minutes against a black-holed peer — supervisors want seconds).
  int64_t connect_timeout_ms = 0;
  /// Per-request deadline in milliseconds, covering send + wait + recv of
  /// one RoundTrip; 0 means no deadline. A hung server then costs at most
  /// one deadline, not a wedged caller. For pipelined use, the deadline
  /// applies separately to each Submit (send) and Await (wait + recv).
  int64_t request_timeout_ms = 0;
  /// Pipelining window: Submit() refuses once this many requests are
  /// outstanding. Keep at or under the server's max_pipeline_depth.
  size_t max_in_flight = 64;
  /// Wire dialect to speak. There is no in-band negotiation — a server
  /// refuses envelopes newer than itself at the version check — so a
  /// caller that must talk to an older peer pins the peer's version
  /// here. Requests encode at this version; v6-only calls
  /// (SnapshotDelta) refuse locally when it is pinned below 6.
  uint64_t wire_version = kWireProtocolVersion;
};

class Client {
 public:
  /// Connects to `host:port` (IPv4 dotted quad or "localhost").
  static StatusOr<Client> Connect(const std::string& host, uint16_t port,
                                  ClientOptions options = ClientOptions());

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Drops the current connection (if any) and dials the same host:port
  /// with the same options again. Clears connection_lost() on success; on
  /// failure the client stays lost and Reconnect() may be retried.
  Status Reconnect();

  /// True once a transport failure, deadline, or protocol violation has
  /// poisoned the connection; every request refuses with kUnavailable
  /// until Reconnect() succeeds.
  bool connection_lost() const { return lost_ || fd_ < 0; }

  /// Liveness probe.
  Status Ping();

  /// Ships a batch of tuples; returns the server's total tuple count
  /// after ingesting it.
  StatusOr<uint64_t> ObserveBatch(const ObserveBatchRequest& request);

  /// Fetches estimates (and error bars) for the given query ids, or for
  /// every registered query when `ids` is empty.
  StatusOr<QueryResponse> Query(const std::vector<uint32_t>& ids = {});

  /// Pulls query `id`'s serialized estimator state — the kilobyte
  /// summary an edge ships instead of its stream — together with the
  /// edge's epoch (its tuples_seen at serialize time).
  StatusOr<SnapshotResponse> Snapshot(uint32_t query_id);

  /// Pulls query `id`'s state as a delta against `since_epoch` (wire
  /// v6): the response is either a kDeltaSnapshot patch or — when the
  /// server holds no baseline for that epoch — a full snapshot, flagged
  /// by DeltaSnapshotResponse::is_delta. `since_epoch` 0 asks for a full
  /// snapshot (bootstrap); `capabilities` advertises kDeltaCap* codec
  /// support. Refuses locally when wire_version is pinned below 6.
  StatusOr<DeltaSnapshotResponse> SnapshotDelta(uint32_t query_id,
                                                uint64_t since_epoch,
                                                uint8_t capabilities);

  /// The wire dialect this client speaks (ClientOptions::wire_version as
  /// pinned at construction). An aggregator logs this when a peer's
  /// pinned dialect predates v6 and forces full-snapshot pulls.
  uint64_t negotiated_version() const { return options_.wire_version; }

  /// Folds a snapshot (from this or another node's Snapshot call) into
  /// the server's query `id`.
  Status Merge(uint32_t query_id, std::string_view snapshot);

  /// The server's metrics registry as Prometheus text.
  StatusOr<std::string> Metrics();

  /// The server's recent spans as Chrome trace_event JSON (loads in
  /// Perfetto). An empty traceEvents list means the server was built
  /// with tracing compiled out or has recorded nothing yet.
  StatusOr<std::string> TraceDump();

  /// Asks the server to write its engine checkpoint; returns the path.
  StatusOr<std::string> Checkpoint();

  /// Asks the server to drain and exit.
  Status Shutdown();

  // --- trigger subscriptions (wire v5) ---

  /// Called for every TRIGGER_FIRED push the client demultiplexes —
  /// pushes can surface inside any blocking read (RoundTrip, Await,
  /// WaitForTrigger), so the callback must not call back into this
  /// client. The second argument is the server's delivery trace context
  /// (invalid when the server sent none).
  using TriggerCallback =
      std::function<void(const TriggerFired&, const obs::SpanContext&)>;
  void set_on_trigger(TriggerCallback callback) {
    on_trigger_ = std::move(callback);
  }

  /// Installs the request's CREATE TRIGGER statements (if any) and
  /// subscribes this connection to firings. Later pushes are handed to
  /// the on_trigger callback.
  StatusOr<SubscribeResponse> Subscribe(const SubscribeRequest& request);

  /// Drops this connection's subscription.
  Status Unsubscribe();

  /// Blocks until at least one TRIGGER_FIRED push has been dispatched to
  /// the callback, or `timeout_ms` elapses (kDeadlineExceeded); negative
  /// means no timeout. Refuses (kFailedPrecondition) while pipelined
  /// requests are in flight — their Awaits already dispatch pushes.
  Status WaitForTrigger(int64_t timeout_ms = -1);

  /// Sends one request frame and waits for its response body, checking
  /// type and embedded status. Building block for the typed calls above.
  /// Refuses (kFailedPrecondition) while pipelined requests are in
  /// flight — Await() them first. When `response_version` is non-null it
  /// receives the response frame's wire dialect, which version-sensitive
  /// decoders (QUERY) need.
  StatusOr<std::string> RoundTrip(MsgType type, std::string_view payload,
                                  uint64_t* response_version = nullptr);

  // --- pipelined mode ---

  /// Ships one request without waiting for its response. Refuses with
  /// kResourceExhausted when the in-flight window is full (Await() to
  /// make room). `frame` must be a pre-encoded request frame when
  /// `pre_encoded` is true (EncodeRequestFrame; benchmarks pre-encode
  /// outside the timed region), otherwise it is the request payload.
  Status Submit(MsgType type, std::string_view bytes,
                bool pre_encoded = false);

  /// Blocks for the oldest in-flight response and returns its body (the
  /// embedded server status is unwrapped, exactly like RoundTrip).
  /// Refuses (kFailedPrecondition) when nothing is in flight.
  StatusOr<std::string> Await();

  /// Outstanding pipelined requests (submitted, not yet awaited).
  size_t in_flight() const { return pipeline_.size(); }

  /// Writes raw bytes to the socket, bypassing framing — robustness
  /// tests inject garbage and truncations with this.
  Status SendRaw(std::string_view bytes);

  /// The underlying socket (tests: abrupt disconnects, timeouts).
  int fd() const { return fd_; }

 private:
  Client(int fd, std::string host, uint16_t port, ClientOptions options);

  /// Marks the connection unusable and passes `status` through.
  Status MarkLost(Status status);

  // `deadline_ms` is an absolute CLOCK_MONOTONIC time; -1 means none.
  Status SendAll(std::string_view bytes, int64_t deadline_ms);
  /// SendAll that also drains inbound bytes into the decoder while the
  /// send buffer is full — the pipelined send path (see header comment).
  Status SendDraining(std::string_view bytes, int64_t deadline_ms);
  StatusOr<Frame> ReadResponse(MsgType expected_type, int64_t deadline_ms);
  /// Decodes a demultiplexed TRIGGER_FIRED frame and runs the callback.
  /// A malformed push is a protocol violation (connection-fatal).
  Status DispatchTriggerPush(const Frame& frame);

  int fd_ = -1;
  bool lost_ = false;
  std::string host_;
  uint16_t port_ = 0;
  ClientOptions options_;
  std::unique_ptr<FrameDecoder> decoder_;
  std::deque<MsgType> pipeline_;  // expected response types, FIFO
  TriggerCallback on_trigger_;    // null drops pushes on the floor
};

}  // namespace implistat::net

#endif  // IMPLISTAT_NET_CLIENT_H_
