// Client: blocking request/response connection to an implistat server.
//
// One method per protocol request (net/wire.h); each sends a frame and
// blocks until the matching response arrives (responses come back in
// request order, so no correlation bookkeeping). The outer Status/
// StatusOr reports transport or wire-format trouble; a server-side
// refusal (bad query id, unknown value, backpressure) comes back as the
// decoded Status itself.
//
// Not thread-safe: one connection, one thread. Open several clients for
// concurrency — the server multiplexes them.

#ifndef IMPLISTAT_NET_CLIENT_H_
#define IMPLISTAT_NET_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/messages.h"
#include "net/wire.h"

namespace implistat::net {

struct ClientOptions {
  /// Largest response frame to accept (metrics text and estimator
  /// snapshots are the big ones).
  size_t max_frame_bytes = 64u << 20;
};

class Client {
 public:
  /// Connects to `host:port` (IPv4 dotted quad or "localhost").
  static StatusOr<Client> Connect(const std::string& host, uint16_t port,
                                  ClientOptions options = ClientOptions());

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Liveness probe.
  Status Ping();

  /// Ships a batch of tuples; returns the server's total tuple count
  /// after ingesting it.
  StatusOr<uint64_t> ObserveBatch(const ObserveBatchRequest& request);

  /// Fetches estimates (and error bars) for the given query ids, or for
  /// every registered query when `ids` is empty.
  StatusOr<QueryResponse> Query(const std::vector<uint32_t>& ids = {});

  /// Pulls query `id`'s serialized estimator state — the kilobyte
  /// summary an edge ships instead of its stream.
  StatusOr<std::string> Snapshot(uint32_t query_id);

  /// Folds a snapshot (from this or another node's Snapshot call) into
  /// the server's query `id`.
  Status Merge(uint32_t query_id, std::string_view snapshot);

  /// The server's metrics registry as Prometheus text.
  StatusOr<std::string> Metrics();

  /// Asks the server to write its engine checkpoint; returns the path.
  StatusOr<std::string> Checkpoint();

  /// Asks the server to drain and exit.
  Status Shutdown();

  /// Sends one request frame and waits for its response body, checking
  /// type and embedded status. Building block for the typed calls above.
  StatusOr<std::string> RoundTrip(MsgType type, std::string_view payload);

  /// Writes raw bytes to the socket, bypassing framing — robustness
  /// tests inject garbage and truncations with this.
  Status SendRaw(std::string_view bytes);

  /// The underlying socket (tests: abrupt disconnects, timeouts).
  int fd() const { return fd_; }

 private:
  Client(int fd, ClientOptions options);

  Status SendAll(std::string_view bytes);
  StatusOr<Frame> ReadResponse(MsgType expected_type);

  int fd_ = -1;
  ClientOptions options_;
  std::unique_ptr<FrameDecoder> decoder_;
};

}  // namespace implistat::net

#endif  // IMPLISTAT_NET_CLIENT_H_
