// Reactor: one epoll event loop owning a shard of the server's
// connections — the concurrency half of the serving path.
//
// Topology (see net/server.h for the whole picture): the thread running
// Server::Run() is the WRITER — it owns the listener and the engine, and
// nothing else ever touches either. N reactor threads own the accepted
// connections, sharded round-robin at accept time; a connection lives on
// exactly one reactor for its whole life, so per-connection state needs
// no locks. Reactors do all socket I/O, all frame decode/encode, and all
// request validation; the only thing they ship to the writer is a fully
// decoded, fully validated EngineOp. The writer applies ops in arrival
// order and posts Completions back; the reactor encodes each completion
// in the dialect its request arrived in and writes responses out in
// strict per-connection FIFO order (the wire protocol's no-correlation-id
// contract).
//
// Request FIFO across the thread hop: every parsed request opens a Slot
// in the connection's slot deque. Engine-free requests (PING, METRICS,
// TRACE_DUMP, malformed payloads) complete their slot immediately on the
// reactor; engine-bound ones complete when the writer's Completion comes
// back. Only the contiguous completed prefix of the deque is ever
// encoded into the write buffer, so responses can never reorder even
// though local and remote completions race.
//
// Backpressure, two bounds:
//  * max_pipeline_depth caps open slots per connection; at the cap the
//    reactor stops parsing (and reading — bytes stay in the kernel), and
//    resumes when completions drain the deque. A client that pipelines
//    harder than the server can answer is flow-controlled by TCP.
//  * max_write_buffer_bytes caps pending response bytes; the response
//    that would cross it is replaced by RESOURCE_EXHAUSTED and the
//    connection closes once that flushes (net/server.h's slow-consumer
//    bound, unchanged).
// Responses for requests of one burst accumulate before flushing (see
// kFlushLowWaterBytes), so the write bound observes the same
// accumulate-then-flush semantics the single-threaded server had, and a
// pipelining client gets its whole window in one writev-sized burst.
//
// Shutdown handshake (driven by the writer):
//  1. BeginDrain(): the reactor stops reading new bytes, then acks via
//     Server::NotifyQuiesced() — after the ack, it will never post
//     another EngineOp.
//  2. The writer drains its op queue and posts the final completions.
//  3. RequestExit(deadline): the reactor keeps processing completions
//     and flushing until every connection's buffer is empty or the
//     deadline passes, then closes everything and exits.

#ifndef IMPLISTAT_NET_REACTOR_H_
#define IMPLISTAT_NET_REACTOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/schema.h"
#include "stream/types.h"
#include "stream/value_dictionary.h"

namespace implistat::net {

class Server;

/// Metric handles shared by the writer and every reactor. All handles
/// point at atomics, so any thread may bump them; registered once,
/// process-wide (the registry dedupes by name+label).
struct NetMetrics {
  // Per-type arrays are indexed by MsgType value; slot 0 is unused.
  static constexpr int kMaxType = static_cast<int>(MsgType::kSnapshotDelta);
  obs::Counter* requests_by_type[kMaxType + 1];
  obs::Histogram* duration_by_type[kMaxType + 1];
  obs::Histogram* request_bytes_by_type[kMaxType + 1];
  obs::Histogram* response_bytes_by_type[kMaxType + 1];
  obs::Counter* bytes_rx;
  obs::Counter* bytes_tx;
  obs::Counter* frame_errors;
  obs::Gauge* connections;
  obs::Gauge* write_buffer_bytes;
  obs::Gauge* writer_queue_depth;

  static const NetMetrics& Get();
};

/// One validated engine-bound request, decoded by a reactor and shipped
/// to the writer. Everything the writer needs is pre-chewed: for an
/// OBSERVE_BATCH the tuples arrive as cardinality-checked row-major ids
/// (net/batch_decode.h), so the writer's work is pure engine apply.
struct EngineOp {
  MsgType type = MsgType::kPing;
  int reactor = 0;
  uint64_t conn_id = 0;
  uint64_t seq = 0;
  /// The reactor's handle-span context; parents server.reactor_handoff.
  obs::SpanContext trace;
  /// CLOCK_MONOTONIC ns at handoff, for queue-wait accounting.
  uint64_t enqueue_ns = 0;
  /// The request frame's wire dialect; the writer encodes
  /// version-sensitive response bodies (QUERY) to match.
  uint64_t version = kWireProtocolVersion;
  /// OBSERVE_BATCH: validated row-major value ids.
  std::vector<ValueId> flat;
  /// QUERY: requested ids (empty = every registered query).
  std::vector<uint32_t> query_ids;
  /// SNAPSHOT / SNAPSHOT_DELTA / MERGE: target query.
  uint32_t query_id = 0;
  /// SNAPSHOT_DELTA: the epoch the caller last acked (0 = bootstrap).
  uint64_t since_epoch = 0;
  /// SNAPSHOT_DELTA: kDeltaCap* bits.
  uint8_t capabilities = 0;
  /// MERGE: the shipped estimator state.
  std::string snapshot;
  /// SUBSCRIBE: CREATE TRIGGER statements to install first.
  std::vector<std::string> statements;
  /// SUBSCRIBE: trigger-name filter (empty = all, present and future).
  std::vector<std::string> trigger_names;
  /// UNSUBSCRIBE shipped by the reactor itself when a subscribed
  /// connection dies — prunes the writer's registry; the completion it
  /// generates finds the connection gone and is dropped.
  bool implicit = false;
};

/// The writer's answer to one EngineOp, routed back to the reactor that
/// owns (conn_id, seq). The reactor encodes it in the slot's dialect.
struct Completion {
  uint64_t conn_id = 0;
  uint64_t seq = 0;
  Status status;
  std::string body;
  /// Close the connection once this response flushes (SHUTDOWN ack).
  bool close_conn = false;
};

/// One encoded TRIGGER_FIRED push frame bound for a subscribed
/// connection. The writer encodes the frame (it owns the trigger engine
/// and the firing's trace context); the reactor only appends bytes —
/// whole frames, so responses and pushes never interleave mid-frame.
struct TriggerPush {
  uint64_t conn_id = 0;
  std::string frame;
};

/// The slice of ServerOptions a reactor needs, plus read-only views of
/// the engine's immutable-while-serving schema and dictionaries — the
/// one sanctioned way a reactor "sees" the engine (pure reads of state
/// that cannot change while the server runs).
struct ReactorConfig {
  size_t max_frame_bytes = 64u << 20;
  size_t max_write_buffer_bytes = 4u << 20;
  size_t max_pipeline_depth = 128;
  int64_t idle_timeout_ms = 0;
  const Schema* schema = nullptr;
  const std::vector<ValueDictionary>* dicts = nullptr;
};

class Reactor {
 public:
  /// Responses accumulate in the write buffer while earlier requests are
  /// still outstanding; a flush happens when the slot deque empties, the
  /// buffer crosses this mark, or the connection is closing. Batches one
  /// pipelined window into one send() burst.
  static constexpr size_t kFlushLowWaterBytes = 64u << 10;

  Reactor(Server* server, int index, ReactorConfig config);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Creates the epoll set and wake eventfd (no thread yet).
  Status Init();
  /// Spawns the loop thread. Call after Init() succeeded.
  void Start();
  void Join();

  // --- cross-thread entry points (called by the writer) ---

  /// Hands over an accepted, non-blocking socket; the reactor owns the
  /// fd from here on.
  void AddConnection(int fd);
  /// Delivers a batch of writer completions (one wakeup for the batch).
  void PostCompletions(std::vector<Completion> completions);
  /// Delivers encoded TRIGGER_FIRED frames for this reactor's subscribed
  /// connections (one wakeup for the batch). Frames for connections that
  /// closed in the meantime are dropped.
  void PostPushes(std::vector<TriggerPush> pushes);
  /// Drain step 1: stop reading; ack via Server::NotifyQuiesced().
  void BeginDrain();
  /// Drain step 3: flush and exit by `deadline_ms` (CLOCK_MONOTONIC).
  void RequestExit(int64_t deadline_ms);

  int index() const { return index_; }

 private:
  /// One parsed request awaiting its response. `seq` is dense per
  /// connection, so a slot's deque position is seq - front.seq.
  struct Slot {
    uint64_t seq = 0;
    MsgType type = MsgType::kPing;
    uint64_t version = kWireProtocolVersion;
    uint64_t start_ns = 0;
    obs::SpanContext trace;  // handle-span ctx; parents encode/write
    bool done = false;
    bool close_conn = false;
    std::string frame;  // encoded response frame, valid once done
  };

  struct Conn {
    Conn(uint64_t id_in, int fd_in, size_t max_frame_bytes)
        : id(id_in), fd(fd_in), decoder(max_frame_bytes) {}

    uint64_t id;
    int fd;
    FrameDecoder decoder;
    std::string write_buf;
    size_t write_pos = 0;
    std::deque<Slot> slots;
    uint64_t next_seq = 0;
    bool close_after_flush = false;
    bool read_paused = false;
    /// Saw a SUBSCRIBE on this connection; on close, the reactor ships
    /// an implicit UNSUBSCRIBE so the writer's registry never leaks.
    bool subscribed = false;
    /// Set instead of erasing mid-callback; reaped at loop safe points.
    bool dead = false;
    int64_t last_active_ms = 0;
    /// Context of the most recently completed request; parents the write
    /// span (which runs after the handle span has closed).
    obs::SpanContext last_trace;

    size_t pending() const { return write_buf.size() - write_pos; }
  };

  void Loop();
  void ProcessInbox();
  void HandleConnEvent(uint64_t id, uint32_t events);
  void HandleReadable(Conn* conn);
  Status ParseFrames(Conn* conn);
  void HandleFrame(Conn* conn, const FrameView& view);
  void CompleteSlot(Conn* conn, uint64_t seq, const Status& status,
                    std::string_view body, bool close_conn);
  void DeliverPush(Conn* conn, const std::string& frame);
  void AppendCompletedPrefix(Conn* conn);
  void MaybeFlush(Conn* conn);
  Status FlushWrites(Conn* conn);
  /// Flushes pending_ops_ to the writer (one lock, one wakeup).
  void ShipOps();
  void ReapIfDead(uint64_t id);
  void DropConnection(Conn* conn, const char* reason);
  void SweepIdle(int64_t now_ms);
  int EpollTimeoutMs(int64_t now_ms, bool exiting) const;

  Server* server_;
  const int index_;
  const std::string index_label_;
  ReactorConfig config_;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  std::thread thread_;

  std::mutex inbox_mu_;
  std::vector<int> inbox_fds_;
  std::vector<Completion> inbox_completions_;
  std::vector<TriggerPush> inbox_pushes_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> exiting_{false};
  std::atomic<int64_t> exit_deadline_ms_{0};
  bool drain_acked_ = false;  // loop thread only

  uint64_t next_conn_id_ = 1;  // 0 is the eventfd's epoll token
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  std::vector<EngineOp> pending_ops_;  // batched per event round
  size_t local_pending_bytes_ = 0;     // this reactor's share of the gauge

  const NetMetrics* metrics_ = nullptr;
  obs::Gauge* reactor_connections_ = nullptr;
  obs::Counter* reactor_wakeups_ = nullptr;
};

}  // namespace implistat::net

#endif  // IMPLISTAT_NET_REACTOR_H_
