#include "net/batch_decode.h"

#include <limits>

namespace implistat::net {

namespace {

// Inline varint reader with a one-byte fast path. Returns nullptr on a
// truncated or over-long encoding; the caller turns that into a Status
// once, outside the per-cell loop.
inline const uint8_t* ReadVarint(const uint8_t* p, const uint8_t* end,
                                 uint64_t* v) {
  if (p < end && *p < 0x80) {
    *v = *p;
    return p + 1;
  }
  uint64_t result = 0;
  int shift = 0;
  while (p < end && shift < 64) {
    const uint8_t byte = *p++;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return p;
    }
    shift += 7;
  }
  return nullptr;
}

Status TruncatedBatch() {
  return Status::InvalidArgument("observe_batch: truncated payload");
}

}  // namespace

StatusOr<size_t> DecodeObserveBatchInto(
    std::string_view payload, const Schema& schema,
    const std::vector<ValueDictionary>& dicts, std::vector<ValueId>* flat) {
  const size_t restore_size = flat->size();
  const uint8_t* p = reinterpret_cast<const uint8_t*>(payload.data());
  const uint8_t* const end = p + payload.size();

  if (p >= end) return TruncatedBatch();
  const uint8_t encoding = *p++;
  if (encoding > static_cast<uint8_t>(ObserveEncoding::kValues)) {
    return Status::InvalidArgument("observe_batch: unknown tuple encoding " +
                                   std::to_string(encoding));
  }
  uint64_t width;
  if ((p = ReadVarint(p, end, &width)) == nullptr) return TruncatedBatch();
  uint64_t tuples;
  if ((p = ReadVarint(p, end, &tuples)) == nullptr) return TruncatedBatch();

  const uint64_t schema_width =
      static_cast<uint64_t>(schema.num_attributes());
  if (width != schema_width) {
    return Status::InvalidArgument(
        "observe_batch: width " + std::to_string(width) +
        " disagrees with schema width " + std::to_string(schema_width));
  }
  if (tuples != 0 && width == 0) {
    return Status::InvalidArgument("observe_batch: tuples with zero width");
  }
  // Every cell costs at least one byte on the wire, so a count whose
  // cells exceed the remaining bytes is hostile; checking before the
  // resize keeps a forged header from ballooning an allocation. The
  // division keeps the check overflow-proof.
  const size_t remaining = static_cast<size_t>(end - p);
  if (tuples != 0 && tuples > remaining / width) {
    return Status::InvalidArgument("observe_batch: implausible tuple count " +
                                   std::to_string(tuples));
  }
  const size_t cells = static_cast<size_t>(tuples * width);

  if (encoding == static_cast<uint8_t>(ObserveEncoding::kIds)) {
    // Snapshot the per-column cardinality bounds once; the cell loop
    // then validates with one compare per id (card 0 = unbounded, mapped
    // to the id domain maximum so the compare stays branch-free).
    constexpr uint64_t kNoBound =
        static_cast<uint64_t>(std::numeric_limits<ValueId>::max()) + 1;
    std::vector<uint64_t> bounds(static_cast<size_t>(width));
    for (size_t col = 0; col < bounds.size(); ++col) {
      const uint64_t card = schema.attribute(static_cast<int>(col)).cardinality;
      bounds[col] = (card == 0 || card > kNoBound) ? kNoBound : card;
    }
    flat->resize(restore_size + cells);
    ValueId* out = flat->data() + restore_size;
    size_t col = 0;
    for (size_t i = 0; i < cells; ++i) {
      uint64_t id;
      if ((p = ReadVarint(p, end, &id)) == nullptr) {
        flat->resize(restore_size);
        return TruncatedBatch();
      }
      if (id >= bounds[col]) {
        flat->resize(restore_size);
        if (id > std::numeric_limits<ValueId>::max()) {
          return Status::InvalidArgument("observe_batch: value id overflow");
        }
        return Status::InvalidArgument("observe_batch: value id " +
                                       std::to_string(id) +
                                       " outside declared cardinality");
      }
      out[i] = static_cast<ValueId>(id);
      col = col + 1 == width ? 0 : col + 1;
    }
  } else {
    if (dicts.size() < width) {
      return Status::FailedPrecondition(
          "observe_batch: server has no value dictionaries; send ids");
    }
    flat->reserve(restore_size + cells);
    size_t col = 0;
    for (size_t i = 0; i < cells; ++i) {
      uint64_t len;
      if ((p = ReadVarint(p, end, &len)) == nullptr ||
          len > static_cast<size_t>(end - p)) {
        flat->resize(restore_size);
        return TruncatedBatch();
      }
      const std::string_view value(reinterpret_cast<const char*>(p),
                                   static_cast<size_t>(len));
      p += len;
      StatusOr<ValueId> id = dicts[col].Find(value);
      if (!id.ok()) {
        flat->resize(restore_size);
        return id.status();
      }
      flat->push_back(*id);
      col = col + 1 == width ? 0 : col + 1;
    }
  }
  if (p != end) {
    flat->resize(restore_size);
    return Status::InvalidArgument("observe_batch: trailing bytes");
  }
  return static_cast<size_t>(tuples);
}

}  // namespace implistat::net
