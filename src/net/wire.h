// Wire protocol framing for the implistat serving layer.
//
// A frame is a length-prefixed envelope (util/envelope.h) — the same
// magic / version / tag / payload-length / CRC32C discipline that guards
// checkpoints, under a distinct magic so a frame can never be mistaken
// for a snapshot file (or vice versa):
//
//   offset  field
//   ------  -----------------------------------------------------------
//   0       frame length N (little-endian u32; bytes that follow)
//   4       magic "IMPW" (little-endian u32 0x57504d49)
//   8       protocol version (varint; currently kWireProtocolVersion)
//   ..      message type (1 byte; high bit set on responses)
//   ..      payload length (varint; redundant with N, cross-checked)
//   ..      payload bytes
//   4+N-4   CRC32C (little-endian u32) over bytes [4, 4+N-4)
//
// The outer length prefix lets a stream reader buffer exactly one frame
// before validating it; the inner envelope then rejects truncation,
// bit-flips, version skew and length mismatch exactly like a corrupt
// checkpoint — decode goes into temporaries, the connection state never
// partially mutates. Corrupt frames are connection-fatal: a peer that
// fails CRC once cannot be trusted to be in sync again.
//
// Requests and responses travel in strict order on a connection (the
// server is a single-threaded event loop), so no correlation id is
// needed: the k-th response answers the k-th request. Responses carry a
// Status header in the payload (see EncodeResponsePayload).

#ifndef IMPLISTAT_NET_WIRE_H_
#define IMPLISTAT_NET_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "obs/trace.h"
#include "util/envelope.h"
#include "util/serde.h"

namespace implistat::net {

/// Request types of the serving protocol. Part of the wire format —
/// append only, never renumber. The response to type T is tagged
/// T | kResponseFlag.
enum class MsgType : uint8_t {
  kPing = 1,          // liveness probe; empty payload both ways
  kObserveBatch = 2,  // packed tuples -> engine ObserveStream
  kQuery = 3,         // estimates + error bars per registered query
  kSnapshot = 4,      // ship one estimator's serialized state
  kMerge = 5,         // fold a shipped estimator state into a query
  kMetrics = 6,       // Prometheus text of the global registry
  kCheckpoint = 7,    // trigger a durable engine checkpoint
  kShutdown = 8,      // graceful drain (final checkpoint, then exit)
  kTraceDump = 9,     // Chrome trace_event JSON of recent spans (v3+)
  kSubscribe = 10,    // install trigger rules + subscribe to firings (v5+)
  kUnsubscribe = 11,  // drop this connection's subscriptions (v5+)
  kTriggerFired = 12,  // unsolicited server push; never a request (v5+)
  kSnapshotDelta = 13,  // ship only the changes since an acked epoch (v6+)
};

inline constexpr uint8_t kResponseFlag = 0x80;

const char* MsgTypeName(MsgType type);

inline constexpr uint32_t kWireMagic = 0x57504d49;  // "IMPW"
/// v2: SNAPSHOT responses carry an epoch header (see
/// messages.h SnapshotResponse) and QUERY responses a trailing warnings
/// section.
/// v3: the envelope payload gains a leading extension block —
/// varint ext length, then (u8 tag, varint length, bytes) entries —
/// before the message payload. Unknown extension tags are skipped, so
/// v3 readers tolerate fields minted after them. Defined tags:
///   1  trace context (25 bytes: u64 trace_hi, u64 trace_lo,
///      u64 span_id, u8 flags; flag bit 0 = sampled) — propagates one
///      trace across client->server and supervisor->edge hops.
/// v4: QUERY responses carry a per-result derivation section — u8
/// derived flag plus the entailment bounds [lower, upper] (see
/// messages.h QueryResult) — so a client can tell a bound-derived
/// answer from a dedicated-estimator one. Request formats are
/// unchanged.
/// v5: SUBSCRIBE/UNSUBSCRIBE requests and the TRIGGER_FIRED push — the
/// first server-initiated frame. Pushes are tagged
/// kTriggerFired | kResponseFlag and are delivered only on connections
/// that sent a v5 SUBSCRIBE, so the k-th-response-answers-the-k-th-
/// request discipline still holds for every older dialect: a v4 client
/// can never receive one.
/// v6: the SNAPSHOT_DELTA request — a snapshot pull keyed by the epoch
/// the caller last acked, answered with either a kDeltaSnapshot patch
/// (src/delta/) or a full snapshot when the server holds no baseline for
/// that epoch (restart, merge, evicted mark — the resync path). Request
/// and response codecs live in messages.h (DeltaSnapshotRequest/
/// DeltaSnapshotResponse). There is no in-band version negotiation (an
/// older endpoint refuses a v6 envelope at the version check), so
/// callers pin the dialect via ClientOptions::wire_version; a v6 server
/// answers a pinned v5 client's SNAPSHOT_DELTA with InvalidArgument and
/// the caller falls back to full SNAPSHOT pulls.
/// An endpoint still accepts older frames (down to
/// kWireMinProtocolVersion) and answers them in the request's dialect,
/// so old clients keep working; versions outside
/// [kWireMinProtocolVersion, kWireProtocolVersion] are refused at the
/// envelope check rather than misparsing payloads.
inline constexpr uint64_t kWireProtocolVersion = 6;
inline constexpr uint64_t kWireMinProtocolVersion = 2;

inline constexpr EnvelopeFamily kWireEnvelope{kWireMagic,
                                              kWireProtocolVersion, "frame"};

/// Extension tags of the v3 extension block (append only).
inline constexpr uint8_t kExtTagTraceContext = 1;
/// Encoded size of the trace-context extension value.
inline constexpr size_t kTraceContextExtBytes = 8 + 8 + 8 + 1;
inline constexpr uint8_t kTraceFlagSampled = 0x01;

/// Hard ceiling on the envelope part of a frame (the u32 length prefix
/// could name 4 GiB; nothing legitimate comes close). Individual servers
/// and clients configure tighter bounds.
inline constexpr size_t kAbsoluteMaxFrameBytes = 256u << 20;

/// One decoded frame: the raw tag (type byte, response flag included),
/// an owned copy of the message payload (extension block already
/// stripped), the envelope version it arrived in, and the trace context
/// if the peer attached one (invalid otherwise).
struct Frame {
  uint8_t tag = 0;
  std::string payload;
  uint64_t version = kWireProtocolVersion;
  obs::SpanContext trace;

  MsgType type() const {
    return static_cast<MsgType>(tag & ~kResponseFlag);
  }
  bool is_response() const { return (tag & kResponseFlag) != 0; }
};

/// A decoded frame whose payload aliases the decoder's buffer instead of
/// owning a copy — the zero-copy fast path the server's reactors decode
/// OBSERVE_BATCH tuples straight out of. The view is valid only until
/// the next Append()/Next()/NextView() call on the decoder that produced
/// it; copy (or finish decoding) before touching the decoder again.
struct FrameView {
  uint8_t tag = 0;
  std::string_view payload;
  uint64_t version = kWireProtocolVersion;
  obs::SpanContext trace;

  MsgType type() const {
    return static_cast<MsgType>(tag & ~kResponseFlag);
  }
  bool is_response() const { return (tag & kResponseFlag) != 0; }
};

/// Encodes a request frame (length prefix + envelope). With a valid
/// `trace`, the context rides the v3 extension block; `version` lets
/// compatibility tests and v2-pinned callers emit the old dialect
/// (which has no extension block — any trace is dropped).
std::string EncodeRequestFrame(MsgType type, std::string_view payload,
                               const obs::SpanContext& trace = {},
                               uint64_t version = kWireProtocolVersion);

/// Encodes a response frame for `type` (tag = type | kResponseFlag) in
/// the dialect of `version` — servers answer in the version the request
/// arrived with, so a v2 client never sees a v3 payload.
std::string EncodeResponseFrame(MsgType type, std::string_view payload,
                                uint64_t version = kWireProtocolVersion);

/// Encodes a server-initiated push frame (v5+): tagged like a response
/// (type | kResponseFlag) so stream direction stays uniform, but not
/// answering any request. With a valid `trace`, the delivery context
/// rides the v3 extension block exactly as on requests.
std::string EncodePushFrame(MsgType type, std::string_view payload,
                            const obs::SpanContext& trace = {},
                            uint64_t version = kWireProtocolVersion);

// ---------------------------------------------------------------------------
// Response payload = Status header + body:
//   varint status code, length-prefixed message, then the body bytes.
// An OK response carries code 0 and an empty message.
// ---------------------------------------------------------------------------

std::string EncodeResponsePayload(const Status& status,
                                  std::string_view body = {});

/// Splits a response payload into its Status and body view (aliasing
/// `payload`). The outer StatusOr is a wire-format error; the inner
/// Status is the server's verdict on the request.
StatusOr<std::pair<Status, std::string_view>> DecodeResponsePayload(
    std::string_view payload);

// ---------------------------------------------------------------------------
// Incremental frame decoder for a stream socket. Append() raw bytes as
// they arrive; Next() yields complete validated frames. Any framing or
// checksum failure is sticky and connection-fatal.
// ---------------------------------------------------------------------------

class FrameDecoder {
 public:
  /// `max_frame_bytes` bounds the envelope size a peer may declare; a
  /// larger declared frame fails immediately (no buffering of the body),
  /// so a hostile length prefix cannot balloon memory.
  explicit FrameDecoder(size_t max_frame_bytes);

  /// Buffers incoming bytes. Fails (sticky) if the peer overruns the
  /// frame bound.
  Status Append(std::string_view bytes);

  /// Returns the next complete frame, std::nullopt if more bytes are
  /// needed, or a sticky error on protocol violation. Owns its payload;
  /// use NextView() on hot paths that can decode in place.
  StatusOr<std::optional<Frame>> Next();

  /// Zero-copy variant of Next(): the returned frame's payload aliases
  /// the decoder buffer and is invalidated by the next Append()/Next()/
  /// NextView() call. Everything else (validation order, sticky errors,
  /// consumption) is identical to Next().
  StatusOr<std::optional<FrameView>> NextView();

  /// Bytes currently buffered (tests and backpressure accounting).
  size_t buffered() const { return buf_.size() - pos_; }

  /// Heap currently held by the internal buffer. After a large frame is
  /// consumed the buffer shrinks back under kBufferShrinkBytes on the
  /// next Append(), so one oversize batch cannot pin a connection's
  /// memory at its high-water mark forever.
  size_t buffer_capacity() const { return buf_.capacity(); }

  /// Retained-capacity cap: an empty buffer holding more than this is
  /// released before new bytes are appended.
  static constexpr size_t kBufferShrinkBytes = 64u << 10;

 private:
  size_t max_frame_bytes_;
  std::string buf_;
  size_t pos_ = 0;  // consumed prefix of buf_
  Status failed_;   // sticky protocol error
};

}  // namespace implistat::net

#endif  // IMPLISTAT_NET_WIRE_H_
