// Request/response payload codecs for the serving protocol (net/wire.h).
//
// Payloads are plain serde byte strings — no nested envelope (the frame
// already carries magic/version/CRC). Every decoder validates lengths and
// counts against the bytes actually present, so a hostile payload yields
// a Status, never an allocation balloon or an overread.

#ifndef IMPLISTAT_NET_MESSAGES_H_
#define IMPLISTAT_NET_MESSAGES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "stream/types.h"
#include "util/serde.h"

namespace implistat::net {

// --- OBSERVE_BATCH ---------------------------------------------------------
//
// Two tuple encodings, picked by the first byte:
//  * kIds: rows of varint value ids, width values per row — the
//    constrained-edge fast path (edges are dictionary-coded already;
//    synthetic generators mint ids directly).
//  * kValues: rows of length-prefixed value strings. The server interns
//    each through its dictionaries with Find (never GetOrAdd — itemset
//    packers sized at registration must stay sound), so a value outside
//    the server's universe is a clean InvalidArgument, and matching rows
//    decode to the same ids regardless of client-side interning order.

enum class ObserveEncoding : uint8_t { kIds = 0, kValues = 1 };

struct ObserveBatchRequest {
  ObserveEncoding encoding = ObserveEncoding::kIds;
  uint32_t width = 0;
  /// kIds: row-major value ids, num_tuples() * width entries.
  std::vector<ValueId> ids;
  /// kValues: row-major value strings, num_tuples() * width entries.
  std::vector<std::string> values;

  size_t num_tuples() const {
    const size_t cells =
        encoding == ObserveEncoding::kIds ? ids.size() : values.size();
    return width == 0 ? 0 : cells / width;
  }
};

std::string EncodeObserveBatchRequest(const ObserveBatchRequest& request);
StatusOr<ObserveBatchRequest> DecodeObserveBatchRequest(
    std::string_view payload);

/// Response body: varint tuples_seen (the server's total after the batch).
std::string EncodeObserveBatchResponse(uint64_t tuples_seen);
StatusOr<uint64_t> DecodeObserveBatchResponse(std::string_view body);

// --- QUERY -----------------------------------------------------------------

/// Request body: varint count of query ids, then the ids; count 0 asks
/// for every registered query.
std::string EncodeQueryRequest(const std::vector<uint32_t>& ids = {});
StatusOr<std::vector<uint32_t>> DecodeQueryRequest(std::string_view payload);

struct QueryResult {
  uint32_t id = 0;
  std::string label;
  std::string estimator_name;
  /// The query's answer (S, or ~S for complement queries).
  double estimate = 0;
  /// 1σ error bar on the implication-count estimate (leave-one-bitmap-out
  /// jackknife for NIPS/CI, 0 for exact); negative when the estimator
  /// cannot quantify its uncertainty. For derived answers, the bound
  /// half-width.
  double std_error = -1;
  uint64_t memory_bytes = 0;
  /// True when the answer came from entailment bounds over existing
  /// synopses instead of a dedicated estimator (wire v4+; always false
  /// when decoded from an older dialect).
  bool derived = false;
  /// The entailment interval; only meaningful when derived.
  double lower = 0;
  double upper = 0;
};

struct QueryResponse {
  uint64_t tuples_seen = 0;
  std::vector<QueryResult> results;
  /// Server-side caveats about the answers — an aggregator lists peers
  /// whose contribution is excluded as STALE here, so a reader knows the
  /// estimate is a partial view. Empty on healthy nodes.
  std::vector<std::string> warnings;
};

/// `version` is the wire dialect of the conversation (the request
/// frame's version on the server, the response frame's on the client):
/// v4 bodies carry the per-result derivation section, older ones do not.
std::string EncodeQueryResponse(const QueryResponse& response,
                                uint64_t version = 4);
StatusOr<QueryResponse> DecodeQueryResponse(std::string_view body,
                                            uint64_t version = 4);

// --- SNAPSHOT / MERGE ------------------------------------------------------

/// SNAPSHOT request body: varint query id. Response body: varint epoch,
/// then the raw estimator snapshot envelope (SerializeState bytes).
std::string EncodeSnapshotRequest(uint32_t query_id);
StatusOr<uint32_t> DecodeSnapshotRequest(std::string_view payload);

/// A shipped snapshot plus the edge's epoch — the server's tuples_seen at
/// serialize time. The epoch keys replace-then-refold at an aggregator:
/// an unchanged epoch means an unchanged snapshot (skip the refold), and
/// a regressed epoch flags an edge that restarted from a checkpoint.
struct SnapshotResponse {
  uint64_t epoch = 0;
  std::string state;
};

std::string EncodeSnapshotResponse(uint64_t epoch, std::string_view state);
StatusOr<SnapshotResponse> DecodeSnapshotResponse(std::string_view body);

// --- SNAPSHOT_DELTA (wire v6) ----------------------------------------------
//
// A snapshot pull keyed by the epoch the caller last acked. The server
// answers with a kDeltaSnapshot patch (src/delta/delta.h) when the
// queried estimator still holds a baseline for that epoch, and with a
// full snapshot otherwise — a caller never has to guess which resync
// path to take, the mode byte says so.

/// Capability bit: the caller can decode RLE-compressed delta bodies.
inline constexpr uint8_t kDeltaCapRle = 0x01;

struct DeltaSnapshotRequest {
  uint32_t query_id = 0;
  /// The epoch of the state the caller holds (a previous response's
  /// epoch); 0 asks for a full snapshot unconditionally (bootstrap).
  uint64_t since_epoch = 0;
  /// kDeltaCap* bits.
  uint8_t capabilities = 0;
};

std::string EncodeDeltaSnapshotRequest(const DeltaSnapshotRequest& request);
StatusOr<DeltaSnapshotRequest> DecodeDeltaSnapshotRequest(
    std::string_view payload);

struct DeltaSnapshotResponse {
  /// True: `state` is a kDeltaSnapshot envelope patching since_epoch ->
  /// epoch. False: `state` is a full snapshot envelope (resync or
  /// bootstrap).
  bool is_delta = false;
  /// The server's tuples_seen at serialize time — what the caller acks
  /// as since_epoch on its next pull.
  uint64_t epoch = 0;
  std::string state;
};

std::string EncodeDeltaSnapshotResponse(const DeltaSnapshotResponse& response);
StatusOr<DeltaSnapshotResponse> DecodeDeltaSnapshotResponse(
    std::string_view body);

/// MERGE request body: varint query id, then the snapshot bytes verbatim
/// to the end of the payload. Response body: empty.
std::string EncodeMergeRequest(uint32_t query_id, std::string_view snapshot);
StatusOr<std::pair<uint32_t, std::string_view>> DecodeMergeRequest(
    std::string_view payload);

// --- CHECKPOINT ------------------------------------------------------------

/// Request body: empty. Response body: length-prefixed path written.
std::string EncodeCheckpointResponse(std::string_view path);
StatusOr<std::string> DecodeCheckpointResponse(std::string_view body);

// --- SUBSCRIBE / UNSUBSCRIBE / TRIGGER_FIRED (wire v5) ---------------------
//
// SUBSCRIBE optionally installs CREATE TRIGGER statements (compiled on
// the engine thread against the registered query labels), then marks the
// connection as a firing subscriber. TRIGGER_FIRED frames are pushed
// unsolicited to subscribed connections only — older-dialect clients
// never see one (wire.h v5 notes).

struct SubscribeRequest {
  /// CREATE TRIGGER statements to install before subscribing; may be
  /// empty to subscribe to triggers installed elsewhere.
  std::vector<std::string> statements;
  /// Trigger names to subscribe to; empty = all triggers, present and
  /// future.
  std::vector<std::string> triggers;
};

std::string EncodeSubscribeRequest(const SubscribeRequest& request);
StatusOr<SubscribeRequest> DecodeSubscribeRequest(std::string_view payload);

/// Response body: how many statements were installed and how many armed
/// triggers the subscription currently matches.
struct SubscribeResponse {
  uint64_t installed = 0;
  uint64_t matched = 0;
};

std::string EncodeSubscribeResponse(const SubscribeResponse& response);
StatusOr<SubscribeResponse> DecodeSubscribeResponse(std::string_view body);

// UNSUBSCRIBE request body: empty (drops the connection's subscription
// wholesale). Response body: empty.

/// One firing, pushed from server to subscriber. The delivery trace
/// context rides the frame extension block, not this payload.
struct TriggerFired {
  std::string trigger;   // CREATE TRIGGER name
  uint64_t epoch = 0;    // server tuples_seen at the firing evaluation
  double value = 0.0;    // evaluated WHEN-expression value
};

std::string EncodeTriggerFired(const TriggerFired& fired);
StatusOr<TriggerFired> DecodeTriggerFired(std::string_view payload);

// PING, METRICS and SHUTDOWN need no codecs: empty request bodies, and
// METRICS answers with the raw Prometheus text.

}  // namespace implistat::net

#endif  // IMPLISTAT_NET_MESSAGES_H_
