#include "net/wire.h"

#include <cstring>

namespace implistat::net {

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kPing: return "ping";
    case MsgType::kObserveBatch: return "observe_batch";
    case MsgType::kQuery: return "query";
    case MsgType::kSnapshot: return "snapshot";
    case MsgType::kMerge: return "merge";
    case MsgType::kMetrics: return "metrics";
    case MsgType::kCheckpoint: return "checkpoint";
    case MsgType::kShutdown: return "shutdown";
    case MsgType::kTraceDump: return "trace_dump";
    case MsgType::kSubscribe: return "subscribe";
    case MsgType::kUnsubscribe: return "unsubscribe";
    case MsgType::kTriggerFired: return "trigger_fired";
    case MsgType::kSnapshotDelta: return "snapshot_delta";
  }
  return "unknown";
}

namespace {

// v3 envelope payload: extension block (length-prefixed TLV run) then
// the message payload. v2 has no extension block.
std::string EncodeFramePayload(std::string_view payload,
                               const obs::SpanContext& trace,
                               uint64_t version) {
  if (version < 3) return std::string(payload);
  ByteWriter ext;
  if (trace.valid()) {
    ext.PutU8(kExtTagTraceContext);
    ext.PutVarint64(kTraceContextExtBytes);
    ext.PutU64(trace.trace_hi);
    ext.PutU64(trace.trace_lo);
    ext.PutU64(trace.span_id);
    ext.PutU8(trace.sampled ? kTraceFlagSampled : 0);
  }
  std::string ext_bytes = ext.Release();
  ByteWriter out;
  out.PutVarint64(ext_bytes.size());
  out.PutBytes(ext_bytes);
  out.PutBytes(payload);
  return out.Release();
}

std::string EncodeFrame(uint8_t tag, std::string_view payload,
                        const obs::SpanContext& trace, uint64_t version) {
  std::string envelope = WrapEnvelopeAt(
      kWireEnvelope, version, tag, EncodeFramePayload(payload, trace, version));
  std::string frame;
  frame.reserve(sizeof(uint32_t) + envelope.size());
  uint32_t len = static_cast<uint32_t>(envelope.size());
  frame.append(reinterpret_cast<const char*>(&len), sizeof(len));
  frame.append(envelope);
  return frame;
}

// Splits a v3 envelope payload into extension block and message payload
// (a view into `envelope_payload`), filling `trace` from a trace-context
// entry if present. Unknown extension tags are skipped (forward
// compatibility); structural damage (truncated TLV, length overrun) is
// an error — the extension block is CRC-protected with the rest of the
// envelope, so damage here means a peer that cannot be trusted.
Status DecodeFramePayloadV3(std::string_view envelope_payload,
                            obs::SpanContext* trace,
                            std::string_view* message_payload) {
  ByteReader in(envelope_payload);
  uint64_t ext_len;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&ext_len));
  if (ext_len > in.remaining()) {
    return Status::InvalidArgument("frame: truncated extension block");
  }
  std::string_view ext;
  IMPLISTAT_RETURN_NOT_OK(in.ReadBytes(ext_len, &ext));
  ByteReader ext_in(ext);
  while (ext_in.remaining() > 0) {
    uint8_t ext_tag;
    IMPLISTAT_RETURN_NOT_OK(ext_in.ReadU8(&ext_tag));
    uint64_t entry_len;
    IMPLISTAT_RETURN_NOT_OK(ext_in.ReadVarint64(&entry_len));
    if (entry_len > ext_in.remaining()) {
      return Status::InvalidArgument("frame: truncated extension entry");
    }
    std::string_view entry;
    IMPLISTAT_RETURN_NOT_OK(ext_in.ReadBytes(entry_len, &entry));
    if (ext_tag == kExtTagTraceContext &&
        entry.size() == kTraceContextExtBytes) {
      ByteReader tc(entry);
      uint8_t flags;
      IMPLISTAT_RETURN_NOT_OK(tc.ReadU64(&trace->trace_hi));
      IMPLISTAT_RETURN_NOT_OK(tc.ReadU64(&trace->trace_lo));
      IMPLISTAT_RETURN_NOT_OK(tc.ReadU64(&trace->span_id));
      IMPLISTAT_RETURN_NOT_OK(tc.ReadU8(&flags));
      trace->sampled = (flags & kTraceFlagSampled) != 0;
    }
    // Any other tag (or a trace entry of an unexpected size, i.e. a
    // future revision) is deliberately ignored.
  }
  IMPLISTAT_RETURN_NOT_OK(in.ReadBytes(in.remaining(), message_payload));
  return Status::OK();
}

}  // namespace

std::string EncodeRequestFrame(MsgType type, std::string_view payload,
                               const obs::SpanContext& trace,
                               uint64_t version) {
  return EncodeFrame(static_cast<uint8_t>(type), payload, trace, version);
}

std::string EncodeResponseFrame(MsgType type, std::string_view payload,
                                uint64_t version) {
  return EncodeFrame(static_cast<uint8_t>(type) | kResponseFlag, payload,
                     obs::SpanContext(), version);
}

std::string EncodePushFrame(MsgType type, std::string_view payload,
                            const obs::SpanContext& trace, uint64_t version) {
  return EncodeFrame(static_cast<uint8_t>(type) | kResponseFlag, payload,
                     trace, version);
}

std::string EncodeResponsePayload(const Status& status,
                                  std::string_view body) {
  ByteWriter out;
  out.PutVarint64(static_cast<uint64_t>(status.code()));
  out.PutLengthPrefixed(status.message());
  out.PutBytes(body);
  return out.Release();
}

StatusOr<std::pair<Status, std::string_view>> DecodeResponsePayload(
    std::string_view payload) {
  ByteReader in(payload);
  uint64_t code;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&code));
  if (code > static_cast<uint64_t>(StatusCode::kDeadlineExceeded)) {
    return Status::InvalidArgument("response: unknown status code " +
                                   std::to_string(code));
  }
  std::string_view message;
  IMPLISTAT_RETURN_NOT_OK(in.ReadLengthPrefixed(&message));
  std::string_view body;
  IMPLISTAT_RETURN_NOT_OK(in.ReadBytes(in.remaining(), &body));
  return std::make_pair(
      Status(static_cast<StatusCode>(code), std::string(message)), body);
}

FrameDecoder::FrameDecoder(size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes < kAbsoluteMaxFrameBytes
                           ? max_frame_bytes
                           : kAbsoluteMaxFrameBytes) {}

Status FrameDecoder::Append(std::string_view bytes) {
  IMPLISTAT_RETURN_NOT_OK(failed_);
  if (pos_ > 0 && pos_ == buf_.size()) {
    // Fully drained. Reset, and give back the heap a large frame left
    // behind — a connection that shipped one oversize batch must not pin
    // that high-water mark for its whole lifetime.
    buf_.clear();
    pos_ = 0;
    if (buf_.capacity() > kBufferShrinkBytes) buf_.shrink_to_fit();
  } else if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    // Compact once the consumed prefix dominates, so a long-lived
    // connection doesn't grow its buffer without bound. If a large
    // consumed frame left the capacity far above the surviving tail
    // (e.g. a partial next frame buffered behind an oversize batch),
    // rebuild small instead of compacting in place — same no-pinning
    // guarantee as the fully-drained branch.
    if (buf_.capacity() > kBufferShrinkBytes &&
        buf_.size() - pos_ < kBufferShrinkBytes / 2) {
      std::string tail(buf_, pos_);
      buf_.swap(tail);
      buf_.shrink_to_fit();
    } else {
      buf_.erase(0, pos_);
    }
    pos_ = 0;
  }
  buf_.append(bytes);
  return Status::OK();
}

StatusOr<std::optional<FrameView>> FrameDecoder::NextView() {
  IMPLISTAT_RETURN_NOT_OK(failed_);
  const std::string_view pending = std::string_view(buf_).substr(pos_);
  if (pending.size() < sizeof(uint32_t)) return std::optional<FrameView>();
  uint32_t envelope_len;
  std::memcpy(&envelope_len, pending.data(), sizeof(envelope_len));
  if (envelope_len > max_frame_bytes_) {
    failed_ = Status::ResourceExhausted(
        "frame: declared length " + std::to_string(envelope_len) +
        " exceeds the frame bound " + std::to_string(max_frame_bytes_));
    return failed_;
  }
  // A frame smaller than the envelope overhead (magic + version + tag +
  // zero-length payload + CRC) cannot be valid; fail fast instead of
  // waiting for bytes that will only confirm the corruption.
  constexpr uint32_t kMinEnvelopeBytes = 4 + 1 + 1 + 1 + 4;
  if (envelope_len < kMinEnvelopeBytes) {
    failed_ = Status::InvalidArgument("frame: declared length " +
                                      std::to_string(envelope_len) +
                                      " is below the envelope minimum");
    return failed_;
  }
  if (pending.size() - sizeof(uint32_t) < envelope_len) {
    return std::optional<FrameView>();
  }
  const std::string_view envelope =
      pending.substr(sizeof(uint32_t), envelope_len);
  uint8_t tag;
  uint64_t version;
  auto payload = UnwrapEnvelopeRange(kWireEnvelope, kWireMinProtocolVersion,
                                     envelope, &tag, &version);
  if (!payload.ok()) {
    failed_ = payload.status();
    return failed_;
  }
  FrameView frame;
  frame.tag = tag;
  frame.version = version;
  if (version >= 3) {
    Status ext = DecodeFramePayloadV3(*payload, &frame.trace, &frame.payload);
    if (!ext.ok()) {
      failed_ = ext;
      return failed_;
    }
  } else {
    frame.payload = *payload;
  }
  pos_ += sizeof(uint32_t) + envelope_len;
  return std::optional<FrameView>(frame);
}

StatusOr<std::optional<Frame>> FrameDecoder::Next() {
  IMPLISTAT_ASSIGN_OR_RETURN(std::optional<FrameView> view, NextView());
  if (!view.has_value()) return std::optional<Frame>();
  Frame frame;
  frame.tag = view->tag;
  frame.version = view->version;
  frame.trace = view->trace;
  frame.payload = std::string(view->payload);
  return std::optional<Frame>(std::move(frame));
}

}  // namespace implistat::net
