#include "net/wire.h"

#include <cstring>

namespace implistat::net {

const char* MsgTypeName(MsgType type) {
  switch (type) {
    case MsgType::kPing: return "ping";
    case MsgType::kObserveBatch: return "observe_batch";
    case MsgType::kQuery: return "query";
    case MsgType::kSnapshot: return "snapshot";
    case MsgType::kMerge: return "merge";
    case MsgType::kMetrics: return "metrics";
    case MsgType::kCheckpoint: return "checkpoint";
    case MsgType::kShutdown: return "shutdown";
  }
  return "unknown";
}

namespace {

std::string EncodeFrame(uint8_t tag, std::string_view payload) {
  std::string envelope = WrapEnvelope(kWireEnvelope, tag, payload);
  std::string frame;
  frame.reserve(sizeof(uint32_t) + envelope.size());
  uint32_t len = static_cast<uint32_t>(envelope.size());
  frame.append(reinterpret_cast<const char*>(&len), sizeof(len));
  frame.append(envelope);
  return frame;
}

}  // namespace

std::string EncodeRequestFrame(MsgType type, std::string_view payload) {
  return EncodeFrame(static_cast<uint8_t>(type), payload);
}

std::string EncodeResponseFrame(MsgType type, std::string_view payload) {
  return EncodeFrame(static_cast<uint8_t>(type) | kResponseFlag, payload);
}

std::string EncodeResponsePayload(const Status& status,
                                  std::string_view body) {
  ByteWriter out;
  out.PutVarint64(static_cast<uint64_t>(status.code()));
  out.PutLengthPrefixed(status.message());
  out.PutBytes(body);
  return out.Release();
}

StatusOr<std::pair<Status, std::string_view>> DecodeResponsePayload(
    std::string_view payload) {
  ByteReader in(payload);
  uint64_t code;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&code));
  if (code > static_cast<uint64_t>(StatusCode::kDeadlineExceeded)) {
    return Status::InvalidArgument("response: unknown status code " +
                                   std::to_string(code));
  }
  std::string_view message;
  IMPLISTAT_RETURN_NOT_OK(in.ReadLengthPrefixed(&message));
  std::string_view body;
  IMPLISTAT_RETURN_NOT_OK(in.ReadBytes(in.remaining(), &body));
  return std::make_pair(
      Status(static_cast<StatusCode>(code), std::string(message)), body);
}

FrameDecoder::FrameDecoder(size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes < kAbsoluteMaxFrameBytes
                           ? max_frame_bytes
                           : kAbsoluteMaxFrameBytes) {}

Status FrameDecoder::Append(std::string_view bytes) {
  IMPLISTAT_RETURN_NOT_OK(failed_);
  // Compact once the consumed prefix dominates, so a long-lived
  // connection doesn't grow its buffer without bound.
  if (pos_ > 0 && pos_ >= buf_.size() / 2) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(bytes);
  return Status::OK();
}

StatusOr<std::optional<Frame>> FrameDecoder::Next() {
  IMPLISTAT_RETURN_NOT_OK(failed_);
  const std::string_view pending = std::string_view(buf_).substr(pos_);
  if (pending.size() < sizeof(uint32_t)) return std::optional<Frame>();
  uint32_t envelope_len;
  std::memcpy(&envelope_len, pending.data(), sizeof(envelope_len));
  if (envelope_len > max_frame_bytes_) {
    failed_ = Status::ResourceExhausted(
        "frame: declared length " + std::to_string(envelope_len) +
        " exceeds the frame bound " + std::to_string(max_frame_bytes_));
    return failed_;
  }
  // A frame smaller than the envelope overhead (magic + version + tag +
  // zero-length payload + CRC) cannot be valid; fail fast instead of
  // waiting for bytes that will only confirm the corruption.
  constexpr uint32_t kMinEnvelopeBytes = 4 + 1 + 1 + 1 + 4;
  if (envelope_len < kMinEnvelopeBytes) {
    failed_ = Status::InvalidArgument("frame: declared length " +
                                      std::to_string(envelope_len) +
                                      " is below the envelope minimum");
    return failed_;
  }
  if (pending.size() - sizeof(uint32_t) < envelope_len) {
    return std::optional<Frame>();
  }
  const std::string_view envelope =
      pending.substr(sizeof(uint32_t), envelope_len);
  uint8_t tag;
  auto payload = UnwrapEnvelope(kWireEnvelope, envelope, &tag);
  if (!payload.ok()) {
    failed_ = payload.status();
    return failed_;
  }
  Frame frame;
  frame.tag = tag;
  frame.payload = std::string(*payload);
  pos_ += sizeof(uint32_t) + envelope_len;
  return std::optional<Frame>(std::move(frame));
}

}  // namespace implistat::net
