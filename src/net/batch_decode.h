// Zero-copy OBSERVE_BATCH decode for the serving hot path.
//
// DecodeObserveBatchInto() parses an OBSERVE_BATCH request payload
// straight out of the connection's frame buffer (a FrameDecoder::
// NextView() span) into a caller-owned flat id buffer, fusing the three
// passes the generic codec path takes — varint decode, per-column
// cardinality validation, and dictionary interning for value-encoded
// rows — into one. Nothing is buffered twice: the payload bytes are
// never copied, and the output vector is reused across batches by the
// caller (a reactor), so the steady state allocates nothing.
//
// The decode is all-or-nothing: on any error the output vector is
// restored to its length on entry, so a hostile batch can never leave a
// half-decoded row behind for the engine.

#ifndef IMPLISTAT_NET_BATCH_DECODE_H_
#define IMPLISTAT_NET_BATCH_DECODE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "net/messages.h"
#include "stream/schema.h"
#include "stream/types.h"
#include "stream/value_dictionary.h"
#include "util/status_or.h"

namespace implistat::net {

/// Validates and decodes an OBSERVE_BATCH payload against `schema`,
/// appending row-major value ids to `*flat`. Width must equal the schema
/// width; every id is checked against its column's declared cardinality
/// (0 = unbounded). Value-encoded rows are interned through `dicts`
/// (Find, never GetOrAdd — the value universe closed at registration);
/// pass an empty span to refuse them. Returns the number of tuples
/// appended. Thread-safe: reads only immutable schema/dictionary state.
StatusOr<size_t> DecodeObserveBatchInto(std::string_view payload,
                                        const Schema& schema,
                                        const std::vector<ValueDictionary>& dicts,
                                        std::vector<ValueId>* flat);

}  // namespace implistat::net

#endif  // IMPLISTAT_NET_BATCH_DECODE_H_
