// Server: a poll()-driven event loop hosting a QueryEngine behind the
// wire protocol (net/wire.h) — the "node in a distributed environment"
// of §3, reachable over a socket.
//
// Topology (§1-2, §5): edges run their own engines, stream locally, and
// either ship OBSERVE_BATCH tuples upward or — the constrained-link mode
// — ship kilobyte SNAPSHOT summaries that an aggregator folds in with
// MERGE. One server plays either role; examples/implistat_server.cc is
// the binary.
//
// Concurrency model: a single thread owns everything — listener,
// connections, and the engine. Requests on one connection are answered
// strictly in order; requests across connections interleave at frame
// granularity. The engine may itself run a sharded ingest pipeline
// (EstimatorConfig::threads): its quiesce-before-read contract holds
// because only the loop thread ever touches it. Shutdown() is the one
// cross-thread (and async-signal-safe) entry point: it writes a byte to
// a self-pipe the loop polls.
//
// Robustness:
//  * Corrupt frames (bad magic/version/CRC/framing) are connection-fatal
//    — the decoder's sticky error closes the connection; engine state is
//    untouched (decode-into-temporaries end to end).
//  * Malformed request payloads inside valid frames get an error
//    response; the connection lives on.
//  * Bounded buffers: reads are bounded by the frame-size cap; a
//    connection whose pending writes exceed max_write_buffer_bytes gets
//    its oversized response replaced by a RESOURCE_EXHAUSTED response
//    and is closed once that flushes — a slow consumer can never grow
//    server memory without bound.
//  * Idle connections are closed after idle_timeout_ms of silence.
//  * Graceful drain: on Shutdown (or a SHUTDOWN request) the listener
//    closes, pending responses flush, and — when a checkpoint path is
//    configured — a final engine checkpoint is written before Run()
//    returns.

#ifndef IMPLISTAT_NET_SERVER_H_
#define IMPLISTAT_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/wire.h"
#include "obs/metrics.h"
#include "query/engine.h"

namespace implistat::net {

struct ServerOptions {
  /// Interface to bind; loopback by default (tests, single-host demos).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  int listen_backlog = 64;
  /// Largest frame a client may send (envelope part, past the length
  /// prefix). Snapshots of big exact counters are the largest legitimate
  /// request payloads.
  size_t max_frame_bytes = 64u << 20;
  /// Pending-response bound per connection; exceeding it triggers the
  /// RESOURCE_EXHAUSTED backpressure path.
  size_t max_write_buffer_bytes = 4u << 20;
  /// Close connections silent for this long; 0 disables the timeout.
  int64_t idle_timeout_ms = 0;
  /// Where CHECKPOINT requests and the shutdown drain write the engine
  /// checkpoint; empty refuses CHECKPOINT and skips the drain write.
  std::string checkpoint_path;
  /// Optional per-QUERY warning source: each QUERY response carries
  /// whatever strings this returns at answer time. An aggregator wires
  /// its supervisor's stale-peer report in here so clients can see that
  /// an estimate is a partial view. Called on the loop thread; must be
  /// thread-safe if the provider mutates state elsewhere.
  std::function<std::vector<std::string>()> query_warnings;
};

class Server {
 public:
  /// The engine is borrowed, not owned; it must outlive the server, and
  /// after Start() only the thread running Run() may touch it.
  Server(QueryEngine* engine, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens. After it returns OK, port() is the bound port
  /// and clients may connect (frames queue in the accept backlog until
  /// Run() starts servicing them).
  Status Start();

  /// The bound TCP port (valid after Start()).
  uint16_t port() const { return port_; }

  /// Serves until Shutdown() — blocks the calling thread. Returns OK on
  /// a clean drain, or the error that stopped the loop.
  Status Run();

  /// Requests a graceful drain. Async-signal-safe and callable from any
  /// thread (a SIGTERM handler is the intended caller): the only work
  /// here is an atomic store and a write() to a self-pipe.
  void Shutdown();

  /// Enqueues `task` to run on the loop thread between poll rounds — the
  /// one sanctioned way for another thread to touch the hosted engine
  /// (the aggregation tier injects its snapshot folds through here).
  /// Thread-safe; tasks run in FIFO order. Tasks still queued when the
  /// loop drains are executed before the final checkpoint, so a fold
  /// that raced shutdown is not lost.
  void InjectTask(std::function<void()> task);

 private:
  struct Connection;

  Status HandleReadable(Connection* conn);
  void HandleFrame(Connection* conn, const Frame& frame);
  // Appends a response frame, applying the write-buffer bound: an
  // oversize result is dropped in favor of a RESOURCE_EXHAUSTED response
  // and the connection is marked close-after-flush.
  void EnqueueResponse(Connection* conn, MsgType type, const Status& status,
                       std::string_view body = {});
  Status FlushWrites(Connection* conn);
  void AcceptPending();
  void CloseConnection(size_t index);
  Status DrainAndClose();

  // Request handlers: each returns the response (status, body) pair via
  // EnqueueResponse.
  void HandleObserveBatch(Connection* conn, std::string_view payload);
  void HandleQuery(Connection* conn, std::string_view payload);
  void HandleSnapshot(Connection* conn, std::string_view payload);
  void HandleMerge(Connection* conn, std::string_view payload);
  void HandleMetrics(Connection* conn);
  void HandleCheckpoint(Connection* conn);
  void HandleTraceDump(Connection* conn);

  void RunInjectedTasks();

  QueryEngine* engine_;
  ServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [read, write]
  bool shutdown_requested_ = false;
  std::atomic<bool> stop_flag_{false};
  std::mutex task_mu_;
  std::vector<std::function<void()>> tasks_;
  std::vector<std::unique_ptr<Connection>> connections_;

  struct Metrics;
  const Metrics* metrics_ = nullptr;  // registered lazily in Start()
};

}  // namespace implistat::net

#endif  // IMPLISTAT_NET_SERVER_H_
