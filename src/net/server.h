// Server: a multi-reactor epoll server hosting a QueryEngine behind the
// wire protocol (net/wire.h) — the "node in a distributed environment"
// of §3, reachable over a socket.
//
// Topology (§1-2, §5): edges run their own engines, stream locally, and
// either ship OBSERVE_BATCH tuples upward or — the constrained-link mode
// — ship kilobyte SNAPSHOT summaries that an aggregator folds in with
// MERGE. One server plays either role; examples/implistat_server.cc is
// the binary.
//
// Concurrency model — one writer, N reactors:
//
//             accept ──round robin──┐
//   ┌──────────────┐          ┌─────▼─────┐ epoll, decode, validate
//   │ WRITER       │◄──ops────┤ reactor 0 │ encode, flush
//   │ Run() thread │──done───►└───────────┘
//   │ owns engine  │          ┌───────────┐
//   │ + listener   │◄──ops────┤ reactor 1 │ ...
//   └──────────────┘──done───►└───────────┘
//
// The thread running Run() is the engine's single writer: it accepts,
// hands each connection to a reactor (round-robin), applies the decoded
// EngineOps the reactors ship over an MPSC queue, and posts completions
// back. Reactors (net/reactor.h) own connections and do every byte of
// socket I/O and codec work — they never touch the engine (their only
// engine knowledge is a read-only view of the immutable-while-serving
// schema and dictionaries). Requests on one connection are answered
// strictly in order; requests across connections interleave at frame
// granularity, exactly as before — the single writer serializes all
// engine mutation, so estimator state remains identical to a
// single-threaded run over the same arrival order.
//
// Robustness (unchanged contracts, now enforced per reactor):
//  * Corrupt frames (bad magic/version/CRC/framing) are connection-fatal
//    — the decoder's sticky error closes the connection; engine state is
//    untouched (decode-into-temporaries end to end).
//  * Malformed request payloads inside valid frames get an error
//    response; the connection lives on.
//  * Bounded buffers: reads are bounded by the frame-size cap and the
//    pipeline-depth cap (a client that pipelines past it is paused via
//    TCP flow control); a connection whose pending writes exceed
//    max_write_buffer_bytes gets its oversized response replaced by a
//    RESOURCE_EXHAUSTED response and is closed once that flushes.
//  * Idle connections are closed after idle_timeout_ms of silence.
//  * Graceful drain: on Shutdown (or a SHUTDOWN request) the listener
//    closes, reactors quiesce, in-flight ops complete and flush, and —
//    when a checkpoint path is configured — a final engine checkpoint is
//    written before Run() returns.

#ifndef IMPLISTAT_NET_SERVER_H_
#define IMPLISTAT_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/reactor.h"
#include "net/wire.h"
#include "query/engine.h"

namespace implistat::net {

struct ServerOptions {
  /// Interface to bind; loopback by default (tests, single-host demos).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  int listen_backlog = 64;
  /// Reactor (event-loop) threads serving connections; the engine still
  /// runs on exactly one thread regardless. Clamped to at least 1.
  int reactors = 1;
  /// Largest frame a client may send (envelope part, past the length
  /// prefix). Snapshots of big exact counters are the largest legitimate
  /// request payloads.
  size_t max_frame_bytes = 64u << 20;
  /// Pending-response bound per connection; exceeding it triggers the
  /// RESOURCE_EXHAUSTED backpressure path.
  size_t max_write_buffer_bytes = 4u << 20;
  /// Open (answered-later) requests allowed per connection before the
  /// server stops reading from it — the pipelining bound a client's
  /// in-flight window must stay under to avoid TCP-level stalls.
  size_t max_pipeline_depth = 128;
  /// Close connections silent for this long; 0 disables the timeout.
  int64_t idle_timeout_ms = 0;
  /// Where CHECKPOINT requests and the shutdown drain write the engine
  /// checkpoint; empty refuses CHECKPOINT and skips the drain write.
  std::string checkpoint_path;
  /// Optional per-QUERY warning source: each QUERY response carries
  /// whatever strings this returns at answer time. An aggregator wires
  /// its supervisor's stale-peer report in here so clients can see that
  /// an estimate is a partial view. Called on the writer thread; must be
  /// thread-safe if the provider mutates state elsewhere.
  std::function<std::vector<std::string>()> query_warnings;
};

class Server {
 public:
  /// The engine is borrowed, not owned; it must outlive the server, and
  /// after Start() only the thread running Run() may touch it.
  Server(QueryEngine* engine, ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and initializes the reactors. After it returns OK,
  /// port() is the bound port and clients may connect (frames queue in
  /// the accept backlog until Run() starts servicing them).
  Status Start();

  /// The bound TCP port (valid after Start()).
  uint16_t port() const { return port_; }

  /// Serves until Shutdown() — blocks the calling thread, which becomes
  /// the engine's single writer. Returns OK on a clean drain, or the
  /// error that stopped the loop.
  Status Run();

  /// Requests a graceful drain. Async-signal-safe and callable from any
  /// thread (a SIGTERM handler is the intended caller): the only work
  /// here is an atomic store and a write() to a self-pipe.
  void Shutdown();

  /// Enqueues `task` to run on the writer thread between rounds — the
  /// one sanctioned way for another thread to touch the hosted engine
  /// (the aggregation tier injects its snapshot folds through here).
  /// Thread-safe; tasks run in FIFO order. Tasks still queued when the
  /// loop drains are executed before the final checkpoint, so a fold
  /// that raced shutdown is not lost.
  void InjectTask(std::function<void()> task);

 private:
  friend class Reactor;

  // --- reactor -> writer entry points (any reactor thread) ---

  /// Appends a batch of decoded ops to the writer queue (one wakeup).
  void EnqueueOps(std::vector<EngineOp> ops);
  /// Acks BeginDrain(): this reactor will post no further ops.
  void NotifyQuiesced();

  // --- writer thread ---

  void AcceptPending();
  void ProcessOps();
  void CheckWriterThread() const;
  Completion ApplyOp(EngineOp& op);
  void ApplyObserveBatch(EngineOp& op, Completion* done);
  void ApplyQuery(EngineOp& op, Completion* done);
  void ApplySnapshot(EngineOp& op, Completion* done);
  void ApplySnapshotDelta(EngineOp& op, Completion* done);
  void ApplyMerge(EngineOp& op, Completion* done);
  void ApplyCheckpoint(Completion* done);
  void ApplySubscribe(EngineOp& op, Completion* done);
  void ApplyUnsubscribe(EngineOp& op, Completion* done);
  /// Drains the engine's pending trigger firings and fans encoded
  /// TRIGGER_FIRED frames out to subscribed connections, one push batch
  /// per reactor. Runs after every op/task round, so firings caused by
  /// injected folds (the aggregation tier) push exactly like firings
  /// caused by OBSERVE_BATCH.
  void DispatchTriggerFirings();
  void RunInjectedTasks();
  Status DrainAndClose();

  QueryEngine* engine_;
  ServerOptions options_;
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [read, write]
  bool shutdown_requested_ = false;
  std::atomic<bool> stop_flag_{false};

  std::vector<std::unique_ptr<Reactor>> reactors_;
  size_t next_reactor_ = 0;  // round-robin accept cursor
  std::thread::id writer_thread_;  // set when Run() enters; per instance

  std::mutex op_mu_;
  std::vector<EngineOp> ops_;
  std::atomic<int> quiesced_{0};

  std::mutex task_mu_;
  std::vector<std::function<void()>> tasks_;

  /// One subscribed connection (writer thread only). Cardinality is
  /// small — a handful of monitoring clients — so linear scans beat a
  /// keyed map.
  struct Subscriber {
    int reactor = 0;
    uint64_t conn_id = 0;
    /// Empty = every trigger, present and future.
    std::vector<std::string> names;

    bool Matches(const std::string& trigger) const {
      if (names.empty()) return true;
      for (const std::string& name : names) {
        if (name == trigger) return true;
      }
      return false;
    }
  };
  std::vector<Subscriber> subscribers_;

  const NetMetrics* metrics_ = nullptr;  // registered lazily in Start()
  obs::Counter* trigger_pushes_ = nullptr;
};

}  // namespace implistat::net

#endif  // IMPLISTAT_NET_SERVER_H_
