#include "net/reactor.h"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "net/batch_decode.h"
#include "net/messages.h"
#include "net/server.h"
#include "obs/export_prometheus.h"
#include "obs/log.h"

namespace implistat::net {

namespace {

int64_t NowMs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

uint64_t NowNs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace

const NetMetrics& NetMetrics::Get() {
  static const NetMetrics metrics = [] {
    auto& reg = obs::MetricsRegistry::Global();
    NetMetrics m{};
    for (int t = 1; t <= kMaxType; ++t) {
      const char* name = MsgTypeName(static_cast<MsgType>(t));
      m.requests_by_type[t] = reg.GetCounter(
          "implistat_net_requests_total", "Requests handled, by type", "type",
          name);
      m.duration_by_type[t] = reg.GetHistogram(
          "implistat_net_request_duration_ns",
          "Wall time from complete request frame to enqueued response",
          "type", name);
      m.request_bytes_by_type[t] = reg.GetHistogram(
          "implistat_net_request_payload_bytes",
          "Request payload size per handled frame", "type", name);
      m.response_bytes_by_type[t] = reg.GetHistogram(
          "implistat_net_response_payload_bytes",
          "Response payload size per enqueued response", "type", name);
    }
    m.bytes_rx = reg.GetCounter("implistat_net_bytes_rx_total",
                                "Bytes read from client sockets");
    m.bytes_tx = reg.GetCounter("implistat_net_bytes_tx_total",
                                "Bytes written to client sockets");
    m.frame_errors = reg.GetCounter(
        "implistat_net_frame_errors_total",
        "Connections dropped for framing/CRC violations");
    m.connections = reg.GetGauge("implistat_net_connections",
                                 "Currently open client connections");
    m.write_buffer_bytes = reg.GetGauge(
        "implistat_net_write_buffer_bytes",
        "Pending response bytes across all connections (queue depth)");
    m.writer_queue_depth = reg.GetGauge(
        "implistat_writer_queue_depth",
        "Engine ops handed off by reactors, not yet applied by the writer");
    return m;
  }();
  return metrics;
}

Reactor::Reactor(Server* server, int index, ReactorConfig config)
    : server_(server),
      index_(index),
      index_label_(std::to_string(index)),
      config_(config) {}

Reactor::~Reactor() {
  Join();
  // Sockets handed over but never registered (the loop never ran).
  for (int fd : inbox_fds_) close(fd);
  for (auto& entry : conns_) close(entry.second->fd);
  conns_.clear();
  if (event_fd_ >= 0) close(event_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

Status Reactor::Init() {
  metrics_ = &NetMetrics::Get();
  auto& reg = obs::MetricsRegistry::Global();
  reactor_connections_ =
      reg.GetGauge("implistat_reactor_connections",
                   "Open connections owned by each reactor", "reactor",
                   index_label_);
  reactor_wakeups_ =
      reg.GetCounter("implistat_reactor_wakeups_total",
                     "epoll_wait returns per reactor", "reactor",
                     index_label_);
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IOError(std::string("epoll_create1: ") + strerror(errno));
  }
  event_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (event_fd_ < 0) {
    return Status::IOError(std::string("eventfd: ") + strerror(errno));
  }
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;  // level-triggered: drained on every wakeup
  ev.data.u64 = 0;      // conn ids start at 1
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev) != 0) {
    return Status::IOError(std::string("epoll_ctl(eventfd): ") +
                           strerror(errno));
  }
  return Status::OK();
}

void Reactor::Start() {
  thread_ = std::thread([this] { Loop(); });
}

void Reactor::Join() {
  if (thread_.joinable()) thread_.join();
}

void Reactor::AddConnection(int fd) {
  {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    inbox_fds_.push_back(fd);
  }
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(event_fd_, &one, sizeof(one));
}

void Reactor::PostCompletions(std::vector<Completion> completions) {
  {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    if (inbox_completions_.empty()) {
      inbox_completions_ = std::move(completions);
    } else {
      for (auto& completion : completions) {
        inbox_completions_.push_back(std::move(completion));
      }
    }
  }
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(event_fd_, &one, sizeof(one));
}

void Reactor::PostPushes(std::vector<TriggerPush> pushes) {
  {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    if (inbox_pushes_.empty()) {
      inbox_pushes_ = std::move(pushes);
    } else {
      for (auto& push : pushes) {
        inbox_pushes_.push_back(std::move(push));
      }
    }
  }
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(event_fd_, &one, sizeof(one));
}

void Reactor::BeginDrain() {
  draining_.store(true, std::memory_order_release);
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(event_fd_, &one, sizeof(one));
}

void Reactor::RequestExit(int64_t deadline_ms) {
  exit_deadline_ms_.store(deadline_ms, std::memory_order_relaxed);
  exiting_.store(true, std::memory_order_release);
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(event_fd_, &one, sizeof(one));
}

void Reactor::ShipOps() {
  if (pending_ops_.empty()) return;
  server_->EnqueueOps(std::move(pending_ops_));
  pending_ops_.clear();
}

int Reactor::EpollTimeoutMs(int64_t now_ms, bool exiting) const {
  int64_t timeout = -1;
  if (config_.idle_timeout_ms > 0 && !conns_.empty()) {
    int64_t soonest = config_.idle_timeout_ms;
    for (const auto& entry : conns_) {
      const int64_t left =
          entry.second->last_active_ms + config_.idle_timeout_ms - now_ms;
      soonest = std::min(soonest, std::max<int64_t>(left, 0));
    }
    timeout = std::min<int64_t>(soonest, 60'000) + 1;
  }
  if (exiting) {
    const int64_t left =
        std::max<int64_t>(
            exit_deadline_ms_.load(std::memory_order_relaxed) - now_ms, 0) +
        1;
    timeout = timeout < 0 ? left : std::min(timeout, left);
  }
  return static_cast<int>(timeout);
}

void Reactor::Loop() {
  struct epoll_event events[64];
  for (;;) {
    const bool exiting = exiting_.load(std::memory_order_acquire);
    if (exiting) {
      bool busy = false;
      for (const auto& entry : conns_) {
        if (!entry.second->dead && entry.second->pending() > 0) {
          busy = true;
          break;
        }
      }
      if (!busy) {
        std::lock_guard<std::mutex> lock(inbox_mu_);
        busy = !inbox_completions_.empty();
      }
      if (!busy ||
          NowMs() >= exit_deadline_ms_.load(std::memory_order_relaxed)) {
        break;
      }
    }
    const int timeout = EpollTimeoutMs(NowMs(), exiting);
    const int n = epoll_wait(epoll_fd_, events, 64, timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      obs::LogEvent(obs::LogLevel::kError, "net.reactor", "epoll_error")
          .U64("reactor", static_cast<uint64_t>(index_))
          .Str("error", strerror(errno));
      break;
    }
    reactor_wakeups_->Increment();
    bool woken = false;
    for (int i = 0; i < n; ++i) {
      if (events[i].data.u64 == 0) {
        woken = true;
        continue;
      }
      HandleConnEvent(events[i].data.u64, events[i].events);
    }
    if (woken) {
      uint64_t drained;
      while (read(event_fd_, &drained, sizeof(drained)) > 0) {
      }
    }
    ProcessInbox();
    ShipOps();
    // The quiesce ack comes after this round's ops have shipped, and
    // reads are suppressed from the instant draining_ is set — so after
    // the ack, the writer will never see another op from this reactor.
    if (draining_.load(std::memory_order_acquire) && !drain_acked_) {
      drain_acked_ = true;
      server_->NotifyQuiesced();
    }
    if (config_.idle_timeout_ms > 0) SweepIdle(NowMs());
  }
  for (auto& entry : conns_) {
    Conn* conn = entry.second.get();
    metrics_->write_buffer_bytes->Add(
        -static_cast<int64_t>(conn->pending()));
    metrics_->connections->Add(-1);
    close(conn->fd);
  }
  conns_.clear();
  reactor_connections_->Set(0);
}

void Reactor::ProcessInbox() {
  std::vector<int> fds;
  std::vector<Completion> completions;
  std::vector<TriggerPush> pushes;
  {
    std::lock_guard<std::mutex> lock(inbox_mu_);
    fds.swap(inbox_fds_);
    completions.swap(inbox_completions_);
    pushes.swap(inbox_pushes_);
  }
  const bool draining = draining_.load(std::memory_order_acquire);
  for (int fd : fds) {
    if (draining) {  // the writer stopped accepting; stragglers close
      close(fd);
      continue;
    }
    const uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Conn>(id, fd, config_.max_frame_bytes);
    conn->last_active_ms = NowMs();
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
    ev.data.u64 = id;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      close(fd);
      continue;
    }
    conns_.emplace(id, std::move(conn));
    metrics_->connections->Add(1);
    reactor_connections_->Set(static_cast<int64_t>(conns_.size()));
    obs::LogEvent(obs::LogLevel::kDebug, "net.reactor", "conn_accept")
        .U64("fd", static_cast<uint64_t>(fd))
        .U64("reactor", static_cast<uint64_t>(index_))
        .U64("connections", conns_.size());
  }
  // Completions: fill slots, ship contiguous prefixes, then resume reads
  // on connections whose pipeline dropped back under the bound.
  std::vector<uint64_t> resumed;
  for (Completion& completion : completions) {
    auto it = conns_.find(completion.conn_id);
    if (it == conns_.end()) continue;  // closed while the op was in flight
    Conn* conn = it->second.get();
    if (conn->dead) continue;
    const bool was_paused = conn->read_paused;
    CompleteSlot(conn, completion.seq, completion.status, completion.body,
                 completion.close_conn);
    if (was_paused && !conn->read_paused && !conn->dead && !draining) {
      resumed.push_back(conn->id);
    }
  }
  for (const Completion& completion : completions) {
    ReapIfDead(completion.conn_id);
  }
  // Pushes ride outside the slot FIFO: whole pre-encoded frames appended
  // straight to the write buffer, so the k-th-response ordering of real
  // requests is untouched. A push for a connection that closed while the
  // firing was in flight is dropped (the implicit UNSUBSCRIBE the close
  // shipped prunes the writer's registry).
  for (TriggerPush& push : pushes) {
    auto it = conns_.find(push.conn_id);
    if (it == conns_.end() || it->second->dead) continue;
    DeliverPush(it->second.get(), push.frame);
    ReapIfDead(push.conn_id);
  }
  for (uint64_t id : resumed) {
    auto it = conns_.find(id);
    if (it == conns_.end() || it->second->dead) continue;
    // Frames buffered past the pause point parse now; edge-triggered
    // epoll will not re-announce bytes we already left in the kernel, so
    // the resume must drive the read path itself.
    HandleReadable(it->second.get());
    ReapIfDead(id);
  }
}

void Reactor::HandleConnEvent(uint64_t id, uint32_t events) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;  // closed earlier this round
  Conn* conn = it->second.get();
  if (conn->dead) {
    ReapIfDead(id);
    return;
  }
  if ((events & EPOLLERR) != 0 ||
      ((events & EPOLLHUP) != 0 && (events & EPOLLIN) == 0)) {
    conn->dead = true;
    ReapIfDead(id);
    return;
  }
  if ((events & (EPOLLIN | EPOLLRDHUP)) != 0 &&
      !draining_.load(std::memory_order_acquire)) {
    HandleReadable(conn);
  }
  if (!conn->dead && (events & EPOLLOUT) != 0 && conn->pending() > 0) {
    if (!FlushWrites(conn).ok()) {
      conn->dead = true;
    } else if (conn->close_after_flush && conn->pending() == 0) {
      conn->dead = true;
    }
  }
  ReapIfDead(id);
}

void Reactor::HandleReadable(Conn* conn) {
  // A resume (or a frame left half-parsed at the pause point) starts
  // from the decoder's buffer, not the socket.
  Status status = ParseFrames(conn);
  char buf[65536];
  while (status.ok() && !conn->read_paused && !conn->close_after_flush &&
         !conn->dead) {
    const ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      metrics_->bytes_rx->Increment(static_cast<uint64_t>(n));
      conn->last_active_ms = NowMs();
      status =
          conn->decoder.Append(std::string_view(buf, static_cast<size_t>(n)));
      if (status.ok()) status = ParseFrames(conn);
      // A short read drained the kernel buffer; edge-triggered epoll
      // re-arms on the next arrival.
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n == 0) {
      status = Status::IOError("peer closed");
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    status = Status::IOError(std::string("recv: ") + strerror(errno));
    break;
  }
  if (!status.ok()) {
    metrics_->frame_errors->Increment();
    obs::LogEvent(obs::LogLevel::kWarn, "net.reactor", "conn_error")
        .U64("fd", static_cast<uint64_t>(conn->fd))
        .U64("reactor", static_cast<uint64_t>(index_))
        .Str("error", status.ToString());
    conn->dead = true;
  }
}

Status Reactor::ParseFrames(Conn* conn) {
  while (!conn->read_paused && !conn->close_after_flush && !conn->dead) {
    IMPLISTAT_ASSIGN_OR_RETURN(std::optional<FrameView> view,
                               conn->decoder.NextView());
    if (!view.has_value()) break;
    HandleFrame(conn, *view);
  }
  return Status::OK();
}

void Reactor::HandleFrame(Conn* conn, const FrameView& view) {
  const uint64_t start_ns = NowNs();
  // The handle span adopts the client's trace context when the frame
  // carried one (v3), so the client's RPC span and every server phase
  // share one trace id across the socket.
  obs::ScopedSpan handle("server.handle", "server", view.trace);
  handle.SetDetail(MsgTypeName(view.type()));
  handle.Annotate("payload_bytes", view.payload.size());
  handle.Annotate("reactor", static_cast<uint64_t>(index_));
  const uint8_t raw = view.tag & ~kResponseFlag;
  if (raw >= 1 && raw <= NetMetrics::kMaxType) {
    metrics_->requests_by_type[raw]->Increment();
    metrics_->request_bytes_by_type[raw]->Record(view.payload.size());
  }
  if (view.is_response()) {
    // A server never receives responses; protocol confusion is fatal.
    conn->close_after_flush = true;
    return;
  }

  Slot& slot = conn->slots.emplace_back();
  slot.seq = conn->next_seq++;
  slot.type = view.type();
  slot.version = view.version;
  slot.start_ns = start_ns;
  slot.trace = handle.context();
  const uint64_t seq = slot.seq;
  if (conn->slots.size() >= config_.max_pipeline_depth) {
    conn->read_paused = true;
  }

  EngineOp op;
  op.type = view.type();
  op.reactor = index_;
  op.conn_id = conn->id;
  op.seq = seq;
  op.trace = handle.context();
  op.version = view.version;

  switch (view.type()) {
    case MsgType::kPing:
      CompleteSlot(conn, seq, Status::OK(), {}, false);
      return;
    case MsgType::kMetrics:
      // Registry snapshots are thread-safe; no engine involved.
      CompleteSlot(conn, seq, Status::OK(),
                   obs::WriteMetricsPrometheus(
                       obs::MetricsRegistry::Global().Snapshot()),
                   false);
      return;
    case MsgType::kTraceDump:
      CompleteSlot(conn, seq, Status::OK(),
                   obs::WriteTraceJson(obs::Tracer::Snapshot()), false);
      return;
    case MsgType::kObserveBatch: {
      // The zero-copy fast path: tuples are validated against the schema
      // and decoded straight out of the frame buffer here, so the writer
      // only ever applies pre-chewed ids.
      StatusOr<size_t> tuples = [&] {
        obs::ScopedSpan decode("server.decode", "server");
        return DecodeObserveBatchInto(view.payload, *config_.schema,
                                      *config_.dicts, &op.flat);
      }();
      if (!tuples.ok()) {
        CompleteSlot(conn, seq, tuples.status(), {}, false);
        return;
      }
      handle.Annotate("tuples", *tuples);
      break;
    }
    case MsgType::kQuery: {
      StatusOr<std::vector<uint32_t>> ids = [&] {
        obs::ScopedSpan decode("server.decode", "server");
        return DecodeQueryRequest(view.payload);
      }();
      if (!ids.ok()) {
        CompleteSlot(conn, seq, ids.status(), {}, false);
        return;
      }
      op.query_ids = *std::move(ids);
      break;
    }
    case MsgType::kSnapshot: {
      StatusOr<uint32_t> id = DecodeSnapshotRequest(view.payload);
      if (!id.ok()) {
        CompleteSlot(conn, seq, id.status(), {}, false);
        return;
      }
      op.query_id = *id;
      break;
    }
    case MsgType::kMerge: {
      auto decoded = DecodeMergeRequest(view.payload);
      if (!decoded.ok()) {
        CompleteSlot(conn, seq, decoded.status(), {}, false);
        return;
      }
      op.query_id = decoded->first;
      op.snapshot = std::string(decoded->second);  // the view dies with us
      break;
    }
    case MsgType::kSnapshotDelta: {
      if (view.version < 6) {
        CompleteSlot(conn, seq,
                     Status::InvalidArgument(
                         "SNAPSHOT_DELTA requires wire protocol v6"),
                     {}, false);
        return;
      }
      auto decoded = DecodeDeltaSnapshotRequest(view.payload);
      if (!decoded.ok()) {
        CompleteSlot(conn, seq, decoded.status(), {}, false);
        return;
      }
      op.query_id = decoded->query_id;
      op.since_epoch = decoded->since_epoch;
      op.capabilities = decoded->capabilities;
      break;
    }
    case MsgType::kSubscribe: {
      if (view.version < 5) {
        CompleteSlot(conn, seq,
                     Status::InvalidArgument(
                         "SUBSCRIBE requires wire protocol v5"),
                     {}, false);
        return;
      }
      auto decoded = DecodeSubscribeRequest(view.payload);
      if (!decoded.ok()) {
        CompleteSlot(conn, seq, decoded.status(), {}, false);
        return;
      }
      op.statements = std::move(decoded->statements);
      op.trigger_names = std::move(decoded->triggers);
      // Marked eagerly so a close always prunes the writer's registry;
      // if the writer rejects the subscribe, the implicit UNSUBSCRIBE
      // finds nothing and is a no-op.
      conn->subscribed = true;
      break;
    }
    case MsgType::kUnsubscribe: {
      if (view.version < 5) {
        CompleteSlot(conn, seq,
                     Status::InvalidArgument(
                         "UNSUBSCRIBE requires wire protocol v5"),
                     {}, false);
        return;
      }
      if (!view.payload.empty()) {
        CompleteSlot(conn, seq,
                     Status::InvalidArgument(
                         "unsubscribe: unexpected request payload"),
                     {}, false);
        return;
      }
      conn->subscribed = false;
      break;
    }
    case MsgType::kCheckpoint:
      break;  // no payload; the writer owns the path check
    case MsgType::kShutdown:
      obs::LogEvent(obs::LogLevel::kInfo, "net.reactor", "shutdown_request")
          .U64("fd", static_cast<uint64_t>(conn->fd))
          .U64("reactor", static_cast<uint64_t>(index_));
      break;
    default:
      CompleteSlot(conn, seq,
                   Status::InvalidArgument(
                       "unknown request type " +
                       std::to_string(static_cast<int>(view.tag))),
                   {}, false);
      return;
  }
  op.enqueue_ns = NowNs();
  pending_ops_.push_back(std::move(op));
}

void Reactor::CompleteSlot(Conn* conn, uint64_t seq, const Status& status,
                           std::string_view body, bool close_conn) {
  if (conn->slots.empty() || seq < conn->slots.front().seq) return;
  const size_t idx = static_cast<size_t>(seq - conn->slots.front().seq);
  if (idx >= conn->slots.size()) return;
  Slot& slot = conn->slots[idx];
  {
    obs::ScopedSpan span("server.encode", "server", slot.trace);
    span.Annotate("body_bytes", body.size());
    const int t = static_cast<int>(slot.type);
    if (t >= 1 && t <= NetMetrics::kMaxType) {
      metrics_->response_bytes_by_type[t]->Record(body.size());
      metrics_->duration_by_type[t]->Record(NowNs() - slot.start_ns);
    }
    slot.frame = EncodeResponseFrame(
        slot.type, EncodeResponsePayload(status, body), slot.version);
  }
  slot.done = true;
  slot.close_conn = close_conn;
  conn->last_trace = slot.trace;
  AppendCompletedPrefix(conn);
  MaybeFlush(conn);
  if (conn->read_paused && !conn->close_after_flush && !conn->dead &&
      conn->slots.size() < config_.max_pipeline_depth) {
    // Unpause; the caller re-enters the read path at a safe depth (a
    // local completion is already inside ParseFrames' loop, a writer
    // completion resumes from ProcessInbox).
    conn->read_paused = false;
  }
}

void Reactor::DeliverPush(Conn* conn, const std::string& frame) {
  if (conn->close_after_flush) return;  // already past its last frame
  if (conn->pending() + frame.size() > config_.max_write_buffer_bytes) {
    // A subscriber that cannot drain its firings gets the same
    // slow-consumer treatment as an oversized response — there is no
    // request to answer with an error, so the connection just closes.
    obs::LogEvent(obs::LogLevel::kWarn, "net.reactor", "push_backpressure")
        .U64("fd", static_cast<uint64_t>(conn->fd))
        .U64("push_bytes", frame.size())
        .U64("pending_bytes", conn->pending())
        .U64("bound_bytes", config_.max_write_buffer_bytes);
    conn->close_after_flush = true;
    MaybeFlush(conn);
    return;
  }
  const int t = static_cast<int>(MsgType::kTriggerFired);
  metrics_->response_bytes_by_type[t]->Record(frame.size());
  if (conn->write_pos > 0) {
    conn->write_buf.erase(0, conn->write_pos);
    conn->write_pos = 0;
  }
  conn->write_buf.append(frame);
  metrics_->write_buffer_bytes->Add(static_cast<int64_t>(frame.size()));
  MaybeFlush(conn);
}

void Reactor::AppendCompletedPrefix(Conn* conn) {
  const int64_t before = static_cast<int64_t>(conn->pending());
  while (!conn->slots.empty() && conn->slots.front().done) {
    Slot& slot = conn->slots.front();
    if (conn->pending() + slot.frame.size() >
        config_.max_write_buffer_bytes) {
      // Backpressure: the consumer is not keeping up. Drop the oversized
      // result, answer with a small RESOURCE_EXHAUSTED instead, and
      // close once it flushes — pending bytes stay bounded by the cap
      // plus one error frame.
      obs::LogEvent(obs::LogLevel::kWarn, "net.reactor", "backpressure_close")
          .U64("fd", static_cast<uint64_t>(conn->fd))
          .Str("type", MsgTypeName(slot.type))
          .U64("response_bytes", slot.frame.size())
          .U64("pending_bytes", conn->pending())
          .U64("bound_bytes", config_.max_write_buffer_bytes);
      slot.frame = EncodeResponseFrame(
          slot.type,
          EncodeResponsePayload(Status::ResourceExhausted(
              "response exceeds the connection's write-buffer bound")),
          slot.version);
      conn->close_after_flush = true;
    }
    if (conn->write_pos > 0) {
      conn->write_buf.erase(0, conn->write_pos);
      conn->write_pos = 0;
    }
    conn->write_buf.append(slot.frame);
    if (slot.close_conn) conn->close_after_flush = true;
    const bool stop = conn->close_after_flush;
    conn->slots.pop_front();
    if (stop) {
      // Requests behind the cut-off are never answered; their writer
      // completions (if any) will find the connection gone.
      conn->slots.clear();
      break;
    }
  }
  metrics_->write_buffer_bytes->Add(static_cast<int64_t>(conn->pending()) -
                                    before);
}

void Reactor::MaybeFlush(Conn* conn) {
  if (conn->dead) return;
  if (conn->pending() == 0) {
    if (conn->close_after_flush) conn->dead = true;
    return;
  }
  // Hold small responses back while earlier requests are still open:
  // one pipelined window then flushes as one burst, and the write-buffer
  // bound keeps its accumulate-before-flush semantics.
  if (!conn->close_after_flush && !conn->slots.empty() &&
      conn->pending() < kFlushLowWaterBytes) {
    return;
  }
  if (!FlushWrites(conn).ok()) {
    conn->dead = true;
    return;
  }
  if (conn->close_after_flush && conn->pending() == 0) conn->dead = true;
}

Status Reactor::FlushWrites(Conn* conn) {
  // The write phase runs after the handle span closed, so it parents
  // itself on the most recent completed request's context.
  obs::ScopedSpan span("server.write", "server", conn->last_trace);
  span.Annotate("pending_bytes", conn->pending());
  const int64_t before = static_cast<int64_t>(conn->pending());
  Status out = Status::OK();
  while (conn->pending() > 0) {
    const ssize_t n =
        send(conn->fd, conn->write_buf.data() + conn->write_pos,
             conn->pending(), MSG_NOSIGNAL);
    if (n > 0) {
      metrics_->bytes_tx->Increment(static_cast<uint64_t>(n));
      conn->write_pos += static_cast<size_t>(n);
      conn->last_active_ms = NowMs();
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    out = Status::IOError(std::string("send: ") + strerror(errno));
    break;
  }
  if (conn->write_pos > 0 && conn->write_pos == conn->write_buf.size()) {
    conn->write_buf.clear();
    conn->write_pos = 0;
  }
  metrics_->write_buffer_bytes->Add(
      static_cast<int64_t>(conn->pending()) - before);
  return out;
}

void Reactor::ReapIfDead(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end() || !it->second->dead) return;
  Conn* conn = it->second.get();
  if (conn->subscribed && !draining_.load(std::memory_order_acquire)) {
    // Prune the writer's subscriber registry. Post-quiesce the op may
    // never ship (the drain contract forbids it); the registry dies with
    // the server then anyway.
    EngineOp op;
    op.type = MsgType::kUnsubscribe;
    op.reactor = index_;
    op.conn_id = conn->id;
    op.implicit = true;
    op.enqueue_ns = NowNs();
    pending_ops_.push_back(std::move(op));
  }
  obs::LogEvent(obs::LogLevel::kDebug, "net.reactor", "conn_close")
      .U64("fd", static_cast<uint64_t>(conn->fd))
      .U64("reactor", static_cast<uint64_t>(index_))
      .U64("connections", conns_.size() - 1);
  metrics_->write_buffer_bytes->Add(-static_cast<int64_t>(conn->pending()));
  metrics_->connections->Add(-1);
  close(conn->fd);  // also deregisters from the epoll set
  conns_.erase(it);
  reactor_connections_->Set(static_cast<int64_t>(conns_.size()));
}

void Reactor::SweepIdle(int64_t now_ms) {
  std::vector<uint64_t> idle;
  for (const auto& entry : conns_) {
    if (now_ms - entry.second->last_active_ms >= config_.idle_timeout_ms) {
      entry.second->dead = true;
      idle.push_back(entry.first);
    }
  }
  for (uint64_t id : idle) ReapIfDead(id);
}

}  // namespace implistat::net
