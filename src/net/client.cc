#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <utility>

#include "obs/trace.h"

namespace implistat::net {

namespace {

int64_t NowMs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

Status SetBlocking(int fd, bool blocking) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    return Status::IOError(std::string("fcntl: ") + strerror(errno));
  }
  flags = blocking ? (flags & ~O_NONBLOCK) : (flags | O_NONBLOCK);
  if (fcntl(fd, F_SETFL, flags) < 0) {
    return Status::IOError(std::string("fcntl: ") + strerror(errno));
  }
  return Status::OK();
}

// Waits for `events` on `fd` until the absolute deadline (-1 = forever).
// OK means ready; kDeadlineExceeded means the deadline fired first.
Status PollUntil(int fd, short events, int64_t deadline_ms,
                 const char* what) {
  for (;;) {
    int timeout = -1;
    if (deadline_ms >= 0) {
      const int64_t left = deadline_ms - NowMs();
      if (left <= 0) {
        return Status::DeadlineExceeded(std::string(what) +
                                        ": deadline exceeded");
      }
      timeout = static_cast<int>(left);
    }
    struct pollfd pfd{fd, events, 0};
    int ready = poll(&pfd, 1, timeout);
    if (ready > 0) return Status::OK();
    if (ready == 0) {
      return Status::DeadlineExceeded(std::string(what) +
                                      ": deadline exceeded");
    }
    if (errno == EINTR) continue;
    return Status::IOError(std::string("poll: ") + strerror(errno));
  }
}

// Dials host:port; a positive timeout bounds the TCP handshake via a
// non-blocking connect + poll (the socket is returned in blocking mode).
StatusOr<int> Dial(const std::string& host, uint16_t port,
                   int64_t connect_timeout_ms) {
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address: " + host);
  }
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + strerror(errno));
  }
  Status status = Status::OK();
  if (connect_timeout_ms > 0) {
    status = SetBlocking(fd, false);
    if (status.ok() &&
        connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
      if (errno == EINPROGRESS) {
        status = PollUntil(fd, POLLOUT, NowMs() + connect_timeout_ms,
                           "connect");
        if (status.ok()) {
          int err = 0;
          socklen_t len = sizeof(err);
          if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
              err != 0) {
            status = Status::IOError(std::string("connect: ") +
                                     strerror(err != 0 ? err : errno));
          }
        }
      } else {
        status = Status::IOError(std::string("connect: ") + strerror(errno));
      }
    }
    if (status.ok()) status = SetBlocking(fd, true);
  } else if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr)) != 0) {
    status = Status::IOError(std::string("connect: ") + strerror(errno));
  }
  if (!status.ok()) {
    close(fd);
    return status;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

StatusOr<Client> Client::Connect(const std::string& host, uint16_t port,
                                 ClientOptions options) {
  IMPLISTAT_ASSIGN_OR_RETURN(int fd,
                             Dial(host, port, options.connect_timeout_ms));
  return Client(fd, host, port, std::move(options));
}

Client::Client(int fd, std::string host, uint16_t port, ClientOptions options)
    : fd_(fd),
      host_(std::move(host)),
      port_(port),
      options_(options),
      decoder_(std::make_unique<FrameDecoder>(options.max_frame_bytes)) {}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      lost_(other.lost_),
      host_(std::move(other.host_)),
      port_(other.port_),
      options_(other.options_),
      decoder_(std::move(other.decoder_)),
      pipeline_(std::move(other.pipeline_)),
      on_trigger_(std::move(other.on_trigger_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    lost_ = other.lost_;
    host_ = std::move(other.host_);
    port_ = other.port_;
    options_ = other.options_;
    decoder_ = std::move(other.decoder_);
    pipeline_ = std::move(other.pipeline_);
    on_trigger_ = std::move(other.on_trigger_);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

Status Client::Reconnect() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  lost_ = true;  // stays lost if the dial fails
  IMPLISTAT_ASSIGN_OR_RETURN(int fd,
                             Dial(host_, port_, options_.connect_timeout_ms));
  fd_ = fd;
  lost_ = false;
  // A fresh decoder: any half-buffered response from the old connection
  // is garbage on the new one. In-flight pipelined requests died with
  // the old connection; their Awaits must not eat new responses.
  decoder_ = std::make_unique<FrameDecoder>(options_.max_frame_bytes);
  pipeline_.clear();
  return Status::OK();
}

Status Client::MarkLost(Status status) {
  lost_ = true;
  return status;
}

Status Client::SendAll(std::string_view bytes, int64_t deadline_ms) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    if (deadline_ms >= 0) {
      Status ready = PollUntil(fd_, POLLOUT, deadline_ms, "send");
      if (!ready.ok()) {
        return MarkLost(ready.code() == StatusCode::kDeadlineExceeded
                            ? std::move(ready)
                            : Status::Unavailable("connection lost: " +
                                                  ready.ToString()));
      }
    }
    ssize_t n = send(fd_, bytes.data() + sent, bytes.size() - sent,
                     MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return MarkLost(Status::Unavailable(std::string("connection lost: send: ") +
                                        strerror(errno)));
  }
  return Status::OK();
}

Status Client::SendRaw(std::string_view bytes) {
  if (connection_lost()) {
    return Status::Unavailable("connection lost (call Reconnect)");
  }
  return SendAll(bytes, -1);
}

StatusOr<Frame> Client::ReadResponse(MsgType expected_type,
                                     int64_t deadline_ms) {
  char buf[65536];
  for (;;) {
    IMPLISTAT_ASSIGN_OR_RETURN(std::optional<Frame> frame, decoder_->Next());
    if (frame.has_value()) {
      // Unsolicited pushes interleave with responses on a subscribed
      // connection; peel them off before the positional FIFO match so
      // pipelined correlation never slips.
      if (frame->is_response() && frame->type() == MsgType::kTriggerFired) {
        Status dispatched = DispatchTriggerPush(*frame);
        if (!dispatched.ok()) return MarkLost(std::move(dispatched));
        continue;
      }
      if (!frame->is_response() || frame->type() != expected_type) {
        return MarkLost(Status::Internal(
            "out-of-order response: expected " +
            std::string(MsgTypeName(expected_type)) + ", got tag " +
            std::to_string(static_cast<int>(frame->tag))));
      }
      return *std::move(frame);
    }
    if (deadline_ms >= 0) {
      Status ready = PollUntil(fd_, POLLIN, deadline_ms, "recv");
      if (!ready.ok()) {
        return MarkLost(ready.code() == StatusCode::kDeadlineExceeded
                            ? std::move(ready)
                            : Status::Unavailable("connection lost: " +
                                                  ready.ToString()));
      }
    }
    ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      IMPLISTAT_RETURN_NOT_OK(
          decoder_->Append(std::string_view(buf, static_cast<size_t>(n))));
      continue;
    }
    if (n == 0) {
      return MarkLost(
          Status::Unavailable("connection lost: server closed the "
                              "connection mid-response"));
    }
    if (errno == EINTR) continue;
    return MarkLost(Status::Unavailable(std::string("connection lost: recv: ") +
                                        strerror(errno)));
  }
}

Status Client::SendDraining(std::string_view bytes, int64_t deadline_ms) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_DONTWAIT on a blocking socket: try the write, and when the
    // send buffer is full, wait for EITHER direction — draining inbound
    // responses into the decode buffer is what frees the server to read
    // (and therefore, eventually, our send buffer). Waiting on POLLOUT
    // alone deadlocks once both directions fill.
    ssize_t n = send(fd_, bytes.data() + sent, bytes.size() - sent,
                     MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return MarkLost(Status::Unavailable(
          std::string("connection lost: send: ") + strerror(errno)));
    }
    Status ready = PollUntil(fd_, POLLOUT | POLLIN, deadline_ms, "send");
    if (!ready.ok()) {
      return MarkLost(ready.code() == StatusCode::kDeadlineExceeded
                          ? std::move(ready)
                          : Status::Unavailable("connection lost: " +
                                                ready.ToString()));
    }
    char buf[65536];
    ssize_t r = recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
    if (r > 0) {
      Status appended =
          decoder_->Append(std::string_view(buf, static_cast<size_t>(r)));
      if (!appended.ok()) return MarkLost(std::move(appended));
    } else if (r == 0) {
      return MarkLost(Status::Unavailable(
          "connection lost: server closed the connection mid-send"));
    }
  }
  return Status::OK();
}

Status Client::Submit(MsgType type, std::string_view bytes,
                      bool pre_encoded) {
  if (connection_lost()) {
    return Status::Unavailable("connection lost (call Reconnect)");
  }
  if (pipeline_.size() >= options_.max_in_flight) {
    return Status::ResourceExhausted(
        "pipeline window full (" + std::to_string(pipeline_.size()) +
        " in flight); Await() to make room");
  }
  const int64_t deadline_ms = options_.request_timeout_ms > 0
                                  ? NowMs() + options_.request_timeout_ms
                                  : -1;
  Status sent;
  if (pre_encoded) {
    sent = SendDraining(bytes, deadline_ms);
  } else {
    sent = SendDraining(
        EncodeRequestFrame(type, bytes, obs::Tracer::CurrentContext(),
                           options_.wire_version),
        deadline_ms);
  }
  IMPLISTAT_RETURN_NOT_OK(std::move(sent));
  pipeline_.push_back(type);
  return Status::OK();
}

StatusOr<std::string> Client::Await() {
  if (pipeline_.empty()) {
    return Status::FailedPrecondition("Await() with nothing in flight");
  }
  if (connection_lost()) {
    return Status::Unavailable("connection lost (call Reconnect)");
  }
  const int64_t deadline_ms = options_.request_timeout_ms > 0
                                  ? NowMs() + options_.request_timeout_ms
                                  : -1;
  StatusOr<Frame> frame = ReadResponse(pipeline_.front(), deadline_ms);
  if (!frame.ok()) {
    lost_ = true;
    return frame.status();
  }
  pipeline_.pop_front();
  IMPLISTAT_ASSIGN_OR_RETURN(auto decoded,
                             DecodeResponsePayload(frame->payload));
  IMPLISTAT_RETURN_NOT_OK(decoded.first);
  return std::string(decoded.second);
}

StatusOr<std::string> Client::RoundTrip(MsgType type,
                                        std::string_view payload,
                                        uint64_t* response_version) {
  if (connection_lost()) {
    return Status::Unavailable("connection lost (call Reconnect)");
  }
  if (!pipeline_.empty()) {
    return Status::FailedPrecondition(
        "RoundTrip with " + std::to_string(pipeline_.size()) +
        " pipelined requests in flight; Await() them first");
  }
  // The RPC span covers send + wait + decode; its context rides the v3
  // frame so the server's handle span joins the same trace. When the
  // caller already has a span open (a supervisor pull, a traced tool)
  // this nests under it; otherwise it roots a new sampled-1-in-N trace.
  obs::ScopedSpan span("client.roundtrip", "client");
  span.SetDetail(MsgTypeName(type));
  span.Annotate("request_bytes", payload.size());
  const int64_t deadline_ms = options_.request_timeout_ms > 0
                                  ? NowMs() + options_.request_timeout_ms
                                  : -1;
  IMPLISTAT_RETURN_NOT_OK(SendAll(
      EncodeRequestFrame(type, payload, span.context(), options_.wire_version),
      deadline_ms));
  StatusOr<Frame> frame = ReadResponse(type, deadline_ms);
  if (!frame.ok()) {
    // Framing/CRC violations leave the stream unparseable; after one, no
    // later response can be trusted to line up with its request.
    lost_ = true;
    return frame.status();
  }
  IMPLISTAT_ASSIGN_OR_RETURN(auto decoded,
                             DecodeResponsePayload(frame->payload));
  IMPLISTAT_RETURN_NOT_OK(decoded.first);
  span.Annotate("response_bytes", decoded.second.size());
  if (response_version != nullptr) *response_version = frame->version;
  return std::string(decoded.second);
}

Status Client::Ping() { return RoundTrip(MsgType::kPing, {}).status(); }

StatusOr<uint64_t> Client::ObserveBatch(const ObserveBatchRequest& request) {
  IMPLISTAT_ASSIGN_OR_RETURN(
      std::string body,
      RoundTrip(MsgType::kObserveBatch, EncodeObserveBatchRequest(request)));
  return DecodeObserveBatchResponse(body);
}

StatusOr<QueryResponse> Client::Query(const std::vector<uint32_t>& ids) {
  // The response dialect drives the decode: a v3 server answers a v4
  // client in v3 (no derivation section), and the decoder must agree.
  uint64_t version = kWireProtocolVersion;
  IMPLISTAT_ASSIGN_OR_RETURN(
      std::string body,
      RoundTrip(MsgType::kQuery, EncodeQueryRequest(ids), &version));
  return DecodeQueryResponse(body, version);
}

StatusOr<SnapshotResponse> Client::Snapshot(uint32_t query_id) {
  IMPLISTAT_ASSIGN_OR_RETURN(
      std::string body,
      RoundTrip(MsgType::kSnapshot, EncodeSnapshotRequest(query_id)));
  return DecodeSnapshotResponse(body);
}

StatusOr<DeltaSnapshotResponse> Client::SnapshotDelta(uint32_t query_id,
                                                      uint64_t since_epoch,
                                                      uint8_t capabilities) {
  if (options_.wire_version < 6) {
    return Status::FailedPrecondition(
        "SNAPSHOT_DELTA requires wire protocol v6; this client is pinned "
        "to v" +
        std::to_string(options_.wire_version));
  }
  DeltaSnapshotRequest request;
  request.query_id = query_id;
  request.since_epoch = since_epoch;
  request.capabilities = capabilities;
  IMPLISTAT_ASSIGN_OR_RETURN(
      std::string body, RoundTrip(MsgType::kSnapshotDelta,
                                  EncodeDeltaSnapshotRequest(request)));
  return DecodeDeltaSnapshotResponse(body);
}

Status Client::Merge(uint32_t query_id, std::string_view snapshot) {
  return RoundTrip(MsgType::kMerge,
                   EncodeMergeRequest(query_id, snapshot))
      .status();
}

StatusOr<std::string> Client::Metrics() {
  return RoundTrip(MsgType::kMetrics, {});
}

StatusOr<std::string> Client::TraceDump() {
  return RoundTrip(MsgType::kTraceDump, {});
}

StatusOr<std::string> Client::Checkpoint() {
  IMPLISTAT_ASSIGN_OR_RETURN(std::string body,
                             RoundTrip(MsgType::kCheckpoint, {}));
  return DecodeCheckpointResponse(body);
}

Status Client::Shutdown() {
  return RoundTrip(MsgType::kShutdown, {}).status();
}

Status Client::DispatchTriggerPush(const Frame& frame) {
  StatusOr<TriggerFired> fired = DecodeTriggerFired(frame.payload);
  if (!fired.ok()) {
    return Status::Internal("malformed TRIGGER_FIRED push: " +
                            fired.status().ToString());
  }
  if (on_trigger_) on_trigger_(*fired, frame.trace);
  return Status::OK();
}

StatusOr<SubscribeResponse> Client::Subscribe(const SubscribeRequest& request) {
  IMPLISTAT_ASSIGN_OR_RETURN(
      std::string body,
      RoundTrip(MsgType::kSubscribe, EncodeSubscribeRequest(request)));
  return DecodeSubscribeResponse(body);
}

Status Client::Unsubscribe() {
  return RoundTrip(MsgType::kUnsubscribe, {}).status();
}

Status Client::WaitForTrigger(int64_t timeout_ms) {
  if (connection_lost()) {
    return Status::Unavailable("connection lost (call Reconnect)");
  }
  if (!pipeline_.empty()) {
    return Status::FailedPrecondition(
        "WaitForTrigger with pipelined requests in flight; their Awaits "
        "dispatch pushes");
  }
  const int64_t deadline_ms = timeout_ms >= 0 ? NowMs() + timeout_ms : -1;
  char buf[65536];
  for (;;) {
    IMPLISTAT_ASSIGN_OR_RETURN(std::optional<Frame> frame, decoder_->Next());
    if (frame.has_value()) {
      if (!frame->is_response() ||
          frame->type() != MsgType::kTriggerFired) {
        return MarkLost(Status::Internal(
            "unexpected frame while waiting for a push: tag " +
            std::to_string(static_cast<int>(frame->tag))));
      }
      Status dispatched = DispatchTriggerPush(*frame);
      if (!dispatched.ok()) return MarkLost(std::move(dispatched));
      return Status::OK();
    }
    if (deadline_ms >= 0) {
      Status ready = PollUntil(fd_, POLLIN, deadline_ms, "wait_for_trigger");
      if (!ready.ok()) {
        // A timeout here does NOT poison the connection — nothing is in
        // flight, so the stream is still aligned; the caller may keep
        // waiting or issue requests.
        if (ready.code() == StatusCode::kDeadlineExceeded) return ready;
        return MarkLost(
            Status::Unavailable("connection lost: " + ready.ToString()));
      }
    }
    ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      IMPLISTAT_RETURN_NOT_OK(
          decoder_->Append(std::string_view(buf, static_cast<size_t>(n))));
      continue;
    }
    if (n == 0) {
      return MarkLost(
          Status::Unavailable("connection lost: server closed the "
                              "connection while subscribed"));
    }
    if (errno == EINTR) continue;
    return MarkLost(Status::Unavailable(std::string("connection lost: recv: ") +
                                        strerror(errno)));
  }
}

}  // namespace implistat::net
