#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace implistat::net {

StatusOr<Client> Client::Connect(const std::string& host, uint16_t port,
                                 ClientOptions options) {
  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad host address: " + host);
  }
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + strerror(errno));
  }
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = Status::IOError(std::string("connect: ") +
                                    strerror(errno));
    close(fd);
    return status;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Client(fd, std::move(options));
}

Client::Client(int fd, ClientOptions options)
    : fd_(fd),
      options_(options),
      decoder_(std::make_unique<FrameDecoder>(options.max_frame_bytes)) {}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      options_(other.options_),
      decoder_(std::move(other.decoder_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    options_ = other.options_;
    decoder_ = std::move(other.decoder_);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) close(fd_);
}

Status Client::SendAll(std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = send(fd_, bytes.data() + sent, bytes.size() - sent,
                     MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return Status::IOError(std::string("send: ") + strerror(errno));
  }
  return Status::OK();
}

Status Client::SendRaw(std::string_view bytes) { return SendAll(bytes); }

StatusOr<Frame> Client::ReadResponse(MsgType expected_type) {
  char buf[65536];
  for (;;) {
    IMPLISTAT_ASSIGN_OR_RETURN(std::optional<Frame> frame, decoder_->Next());
    if (frame.has_value()) {
      if (!frame->is_response() || frame->type() != expected_type) {
        return Status::Internal(
            "out-of-order response: expected " +
            std::string(MsgTypeName(expected_type)) + ", got tag " +
            std::to_string(static_cast<int>(frame->tag)));
      }
      return *std::move(frame);
    }
    ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      IMPLISTAT_RETURN_NOT_OK(
          decoder_->Append(std::string_view(buf, static_cast<size_t>(n))));
      continue;
    }
    if (n == 0) {
      return Status::IOError("server closed the connection mid-response");
    }
    if (errno == EINTR) continue;
    return Status::IOError(std::string("recv: ") + strerror(errno));
  }
}

StatusOr<std::string> Client::RoundTrip(MsgType type,
                                        std::string_view payload) {
  IMPLISTAT_RETURN_NOT_OK(SendAll(EncodeRequestFrame(type, payload)));
  IMPLISTAT_ASSIGN_OR_RETURN(Frame frame, ReadResponse(type));
  IMPLISTAT_ASSIGN_OR_RETURN(auto decoded,
                             DecodeResponsePayload(frame.payload));
  IMPLISTAT_RETURN_NOT_OK(decoded.first);
  return std::string(decoded.second);
}

Status Client::Ping() { return RoundTrip(MsgType::kPing, {}).status(); }

StatusOr<uint64_t> Client::ObserveBatch(const ObserveBatchRequest& request) {
  IMPLISTAT_ASSIGN_OR_RETURN(
      std::string body,
      RoundTrip(MsgType::kObserveBatch, EncodeObserveBatchRequest(request)));
  return DecodeObserveBatchResponse(body);
}

StatusOr<QueryResponse> Client::Query(const std::vector<uint32_t>& ids) {
  IMPLISTAT_ASSIGN_OR_RETURN(
      std::string body, RoundTrip(MsgType::kQuery, EncodeQueryRequest(ids)));
  return DecodeQueryResponse(body);
}

StatusOr<std::string> Client::Snapshot(uint32_t query_id) {
  return RoundTrip(MsgType::kSnapshot, EncodeSnapshotRequest(query_id));
}

Status Client::Merge(uint32_t query_id, std::string_view snapshot) {
  return RoundTrip(MsgType::kMerge,
                   EncodeMergeRequest(query_id, snapshot))
      .status();
}

StatusOr<std::string> Client::Metrics() {
  return RoundTrip(MsgType::kMetrics, {});
}

StatusOr<std::string> Client::Checkpoint() {
  IMPLISTAT_ASSIGN_OR_RETURN(std::string body,
                             RoundTrip(MsgType::kCheckpoint, {}));
  return DecodeCheckpointResponse(body);
}

Status Client::Shutdown() {
  return RoundTrip(MsgType::kShutdown, {}).status();
}

}  // namespace implistat::net
