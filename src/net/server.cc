#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "delta/delta.h"
#include "net/messages.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "stream/tuple_stream.h"

namespace implistat::net {

namespace {

int64_t NowMs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

uint64_t NowNs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(ts.tv_nsec);
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("fcntl: ") + strerror(errno));
  }
  return Status::OK();
}

}  // namespace

/// The single-writer check: every engine apply verifies it runs on the
/// thread that entered this instance's Run(). Always on (one thread-id
/// compare per op, not per tuple) — a violation means estimator state
/// is being mutated concurrently, which corrupts silently; aborting
/// loudly is strictly better.
void Server::CheckWriterThread() const {
  if (std::this_thread::get_id() != writer_thread_) {
    std::fprintf(stderr,
                 "implistat fatal: engine op applied off the writer thread "
                 "(single-writer invariant violated)\n");
    std::abort();
  }
}

Server::Server(QueryEngine* engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {}

Server::~Server() {
  reactors_.clear();  // joins threads, closes owned connections
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_fds_[0] >= 0) close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) close(wake_fds_[1]);
}

Status Server::Start() {
  metrics_ = &NetMetrics::Get();
  trigger_pushes_ = obs::MetricsRegistry::Global().GetCounter(
      "implistat_trigger_pushes_total",
      "TRIGGER_FIRED frames fanned out to subscribed connections");
  if (pipe(wake_fds_) != 0) {
    return Status::IOError(std::string("pipe: ") + strerror(errno));
  }
  IMPLISTAT_RETURN_NOT_OK(SetNonBlocking(wake_fds_[0]));
  IMPLISTAT_RETURN_NOT_OK(SetNonBlocking(wake_fds_[1]));

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    return Status::IOError(std::string("bind: ") + strerror(errno));
  }
  if (listen(listen_fd_, options_.listen_backlog) != 0) {
    return Status::IOError(std::string("listen: ") + strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                  &len) != 0) {
    return Status::IOError(std::string("getsockname: ") + strerror(errno));
  }
  port_ = ntohs(addr.sin_port);
  IMPLISTAT_RETURN_NOT_OK(SetNonBlocking(listen_fd_));

  ReactorConfig config;
  config.max_frame_bytes = options_.max_frame_bytes;
  config.max_write_buffer_bytes = options_.max_write_buffer_bytes;
  config.max_pipeline_depth = std::max<size_t>(options_.max_pipeline_depth,
                                               1);
  config.idle_timeout_ms = options_.idle_timeout_ms;
  config.schema = &engine_->schema();
  config.dicts = &engine_->dictionaries();
  const int n = std::max(options_.reactors, 1);
  for (int i = 0; i < n; ++i) {
    reactors_.push_back(std::make_unique<Reactor>(this, i, config));
    IMPLISTAT_RETURN_NOT_OK(reactors_.back()->Init());
  }
  return Status::OK();
}

void Server::Shutdown() {
  // Async-signal-safe: an atomic store plus a single write to the
  // self-pipe. A full pipe means a wakeup is already pending, which is
  // just as good.
  stop_flag_.store(true, std::memory_order_release);
  char byte = 1;
  [[maybe_unused]] ssize_t n = write(wake_fds_[1], &byte, 1);
}

void Server::InjectTask(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    tasks_.push_back(std::move(task));
  }
  char byte = 1;
  [[maybe_unused]] ssize_t n = write(wake_fds_[1], &byte, 1);
}

void Server::RunInjectedTasks() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    tasks.swap(tasks_);
  }
  if (tasks.empty()) return;
  for (auto& task : tasks) task();
  // An aggregator's injected folds advance the engine exactly like
  // OBSERVE_BATCH ops, so its fold-level triggers forward here.
  DispatchTriggerFirings();
}

void Server::EnqueueOps(std::vector<EngineOp> ops) {
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(op_mu_);
    if (ops_.empty()) {
      ops_ = std::move(ops);
    } else {
      for (auto& op : ops) ops_.push_back(std::move(op));
    }
    depth = ops_.size();
  }
  metrics_->writer_queue_depth->Set(static_cast<int64_t>(depth));
  char byte = 1;
  [[maybe_unused]] ssize_t n = write(wake_fds_[1], &byte, 1);
}

void Server::NotifyQuiesced() {
  quiesced_.fetch_add(1, std::memory_order_acq_rel);
  char byte = 1;
  [[maybe_unused]] ssize_t n = write(wake_fds_[1], &byte, 1);
}

void Server::AcceptPending() {
  for (;;) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      // EAGAIN: backlog drained. Anything else: transient; retry on the
      // next round rather than killing the server.
      return;
    }
    if (!SetNonBlocking(fd).ok()) {
      close(fd);
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    reactors_[next_reactor_]->AddConnection(fd);
    next_reactor_ = (next_reactor_ + 1) % reactors_.size();
  }
}

void Server::ProcessOps() {
  std::vector<EngineOp> ops;
  {
    std::lock_guard<std::mutex> lock(op_mu_);
    ops.swap(ops_);
  }
  if (ops.empty()) return;
  metrics_->writer_queue_depth->Set(0);
  // One completion batch per reactor: the owning reactor gets a single
  // wakeup for everything this round produced for it.
  std::vector<std::vector<Completion>> done(reactors_.size());
  for (EngineOp& op : ops) {
    const size_t r = static_cast<size_t>(op.reactor);
    done[r].push_back(ApplyOp(op));
  }
  for (size_t r = 0; r < done.size(); ++r) {
    if (!done[r].empty()) reactors_[r]->PostCompletions(std::move(done[r]));
  }
  // Epoch boundaries crossed by this round's observes/merges may have
  // fired triggers; push them in the same round their responses go out.
  DispatchTriggerFirings();
}

Completion Server::ApplyOp(EngineOp& op) {
  CheckWriterThread();
  Completion done;
  done.conn_id = op.conn_id;
  done.seq = op.seq;
  // The handoff span stitches the reactor's handle span to the writer's
  // apply in trace dumps, and prices the queue wait.
  obs::ScopedSpan handoff("server.reactor_handoff", "server", op.trace);
  handoff.SetDetail(MsgTypeName(op.type));
  handoff.Annotate("reactor", static_cast<uint64_t>(op.reactor));
  handoff.Annotate("queue_ns", NowNs() - op.enqueue_ns);
  switch (op.type) {
    case MsgType::kObserveBatch:
      ApplyObserveBatch(op, &done);
      break;
    case MsgType::kQuery:
      ApplyQuery(op, &done);
      break;
    case MsgType::kSnapshot:
      ApplySnapshot(op, &done);
      break;
    case MsgType::kSnapshotDelta:
      ApplySnapshotDelta(op, &done);
      break;
    case MsgType::kMerge:
      ApplyMerge(op, &done);
      break;
    case MsgType::kCheckpoint:
      ApplyCheckpoint(&done);
      break;
    case MsgType::kSubscribe:
      ApplySubscribe(op, &done);
      break;
    case MsgType::kUnsubscribe:
      ApplyUnsubscribe(op, &done);
      break;
    case MsgType::kShutdown:
      obs::LogEvent(obs::LogLevel::kInfo, "net.server", "shutdown_request")
          .U64("reactor", static_cast<uint64_t>(op.reactor));
      done.status = Status::OK();
      done.close_conn = true;
      shutdown_requested_ = true;
      break;
    default:
      // Reactors only post the types above.
      done.status = Status::Internal("unroutable engine op");
      break;
  }
  return done;
}

void Server::ApplyObserveBatch(EngineOp& op, Completion* done) {
  // The reactor already validated every id against the schema, so this
  // is pure apply: no decode, no allocation beyond the stream wrapper.
  VectorStream stream(engine_->schema(), std::move(op.flat));
  Status status = [&] {
    obs::ScopedSpan apply("server.apply", "server");
    apply.Annotate("tuples", stream.num_tuples());
    return engine_->ObserveStream(stream);
  }();
  if (!status.ok()) {
    done->status = std::move(status);
    return;
  }
  done->body = EncodeObserveBatchResponse(engine_->tuples_seen());
}

void Server::ApplyQuery(EngineOp& op, Completion* done) {
  std::vector<uint32_t>& ids = op.query_ids;
  if (ids.empty()) {
    for (QueryId id : engine_->ActiveQueryIds()) {
      ids.push_back(static_cast<uint32_t>(id));
    }
  }
  QueryResponse response;
  response.tuples_seen = engine_->tuples_seen();
  {
    obs::ScopedSpan apply("server.apply", "server");
    apply.Annotate("queries", ids.size());
    for (uint32_t id : ids) {
      StatusOr<QueryAnswer> answer =
          engine_->AnswerEx(static_cast<QueryId>(id));
      if (!answer.ok()) {
        done->status = answer.status();
        return;
      }
      const ImplicationEstimator* est =
          engine_->Estimator(static_cast<QueryId>(id)).value();
      const ImplicationQuerySpec* spec =
          engine_->Spec(static_cast<QueryId>(id)).value();
      QueryResult result;
      result.id = id;
      result.label = spec->label;
      result.estimator_name = est->name();
      result.estimate = answer->estimate;
      result.std_error = answer->std_error;
      result.memory_bytes = est->MemoryBytes();
      result.derived = answer->derived;
      result.lower = answer->lower;
      result.upper = answer->upper;
      response.results.push_back(std::move(result));
    }
  }
  if (options_.query_warnings) {
    response.warnings = options_.query_warnings();
  }
  // Answer in the request's dialect: v4 carries the derivation section,
  // older clients get the pre-derivation layout.
  done->body = EncodeQueryResponse(response, op.version);
}

void Server::ApplySnapshot(EngineOp& op, Completion* done) {
  StatusOr<const ImplicationEstimator*> est =
      engine_->Estimator(static_cast<QueryId>(op.query_id));
  if (!est.ok()) {
    done->status = est.status();
    return;
  }
  StatusOr<std::string> snapshot = [&] {
    obs::ScopedSpan apply("server.apply", "server");
    return (*est)->SerializeState();
  }();
  if (!snapshot.ok()) {
    done->status = snapshot.status();
    return;
  }
  // The epoch stamps how much stream this state covers; an aggregator
  // skips refolding a peer whose epoch (and therefore state) is
  // unchanged, and spots an edge that restarted from a checkpoint.
  //
  // Noting the epoch records a delta baseline, so the caller may follow
  // this full pull with SNAPSHOT_DELTA keyed by the epoch it just got.
  (*est)->NoteSnapshotEpoch(engine_->tuples_seen());
  done->body = EncodeSnapshotResponse(engine_->tuples_seen(), *snapshot);
}

void Server::ApplySnapshotDelta(EngineOp& op, Completion* done) {
  StatusOr<const ImplicationEstimator*> est =
      engine_->Estimator(static_cast<QueryId>(op.query_id));
  if (!est.ok()) {
    done->status = est.status();
    return;
  }
  obs::ScopedSpan apply("server.apply", "server");
  const uint64_t epoch = engine_->tuples_seen();
  DeltaSnapshotResponse response;
  response.epoch = epoch;
  // since_epoch 0 is an explicit bootstrap; a non-zero epoch the
  // estimator no longer has a baseline for (restart, merge, evicted
  // mark, or an epoch from the future after a server restart) comes
  // back NotFound and resyncs the same way. Estimator kinds without
  // delta support answer Unimplemented and always take the full path.
  if (op.since_epoch != 0) {
    StatusOr<std::string> fragment =
        (*est)->SerializeDelta(op.since_epoch, epoch);
    if (fragment.ok()) {
      response.is_delta = true;
      response.state =
          WrapDeltaSnapshot(op.since_epoch, epoch, *fragment,
                            (op.capabilities & kDeltaCapRle) != 0);
    } else if (fragment.status().code() != StatusCode::kNotFound &&
               fragment.status().code() != StatusCode::kUnimplemented) {
      done->status = fragment.status();
      return;
    }
  }
  if (!response.is_delta) {
    StatusOr<std::string> snapshot = (*est)->SerializeState();
    if (!snapshot.ok()) {
      done->status = snapshot.status();
      return;
    }
    (*est)->NoteSnapshotEpoch(epoch);
    response.state = *std::move(snapshot);
  }
  apply.Annotate("delta", response.is_delta ? 1u : 0u);
  apply.Annotate("state_bytes", response.state.size());
  done->body = EncodeDeltaSnapshotResponse(response);
}

void Server::ApplyMerge(EngineOp& op, Completion* done) {
  done->status = [&] {
    obs::ScopedSpan apply("server.apply", "server");
    apply.Annotate("state_bytes", op.snapshot.size());
    return engine_->MergeEstimatorState(static_cast<QueryId>(op.query_id),
                                        op.snapshot);
  }();
}

void Server::ApplyCheckpoint(Completion* done) {
  if (options_.checkpoint_path.empty()) {
    done->status = Status::FailedPrecondition(
        "server started without a checkpoint path");
    return;
  }
  Status status = [&] {
    obs::ScopedSpan apply("server.apply", "server");
    return engine_->Checkpoint(options_.checkpoint_path);
  }();
  if (!status.ok()) {
    obs::LogEvent(obs::LogLevel::kError, "net.server", "checkpoint_failed")
        .Str("path", options_.checkpoint_path)
        .Str("error", status.ToString());
    done->status = std::move(status);
    return;
  }
  obs::LogEvent(obs::LogLevel::kInfo, "net.server", "checkpoint_written")
      .Str("path", options_.checkpoint_path)
      .U64("tuples_seen", engine_->tuples_seen());
  done->body = EncodeCheckpointResponse(options_.checkpoint_path);
}

void Server::ApplySubscribe(EngineOp& op, Completion* done) {
  obs::ScopedSpan apply("server.apply", "server");
  apply.Annotate("statements", op.statements.size());
  uint64_t installed = 0;
  for (const std::string& statement : op.statements) {
    StatusOr<std::string> name = engine_->InstallTrigger(statement);
    if (!name.ok()) {
      // Nothing subscribed; statements installed before the bad one stay
      // armed (installation is not transactional — the error names the
      // offending statement via the caret diagnostic).
      done->status = name.status();
      return;
    }
    obs::LogEvent(obs::LogLevel::kInfo, "net.server", "trigger_installed")
        .Str("trigger", *name)
        .U64("reactor", static_cast<uint64_t>(op.reactor));
    ++installed;
  }
  // Re-subscribing replaces this connection's previous filter.
  for (auto it = subscribers_.begin(); it != subscribers_.end();) {
    if (it->reactor == op.reactor && it->conn_id == op.conn_id) {
      it = subscribers_.erase(it);
    } else {
      ++it;
    }
  }
  Subscriber sub;
  sub.reactor = op.reactor;
  sub.conn_id = op.conn_id;
  sub.names = std::move(op.trigger_names);
  uint64_t matched = 0;
  if (engine_->triggers() != nullptr) {
    for (const cql::TriggerInfo& info : engine_->triggers()->List()) {
      if (sub.Matches(info.name)) ++matched;
    }
  }
  subscribers_.push_back(std::move(sub));
  SubscribeResponse response;
  response.installed = installed;
  response.matched = matched;
  done->body = EncodeSubscribeResponse(response);
}

void Server::ApplyUnsubscribe(EngineOp& op, Completion* done) {
  for (auto it = subscribers_.begin(); it != subscribers_.end();) {
    if (it->reactor == op.reactor && it->conn_id == op.conn_id) {
      it = subscribers_.erase(it);
    } else {
      ++it;
    }
  }
  done->status = Status::OK();  // idempotent; implicit prunes land here too
}

void Server::DispatchTriggerFirings() {
  if (!engine_->has_pending_trigger_firings()) return;
  // Always drain — firings must not accumulate while nobody listens.
  std::vector<cql::TriggerFiring> firings = engine_->TakeTriggerFirings();
  if (firings.empty() || subscribers_.empty()) return;
  obs::ScopedSpan span("trigger.deliver", "server");
  span.Annotate("firings", firings.size());
  std::vector<std::vector<TriggerPush>> pushes(reactors_.size());
  uint64_t delivered = 0;
  for (const cql::TriggerFiring& firing : firings) {
    TriggerFired fired;
    fired.trigger = firing.trigger;
    fired.epoch = firing.epoch;
    fired.value = firing.value;
    // One frame per firing, shared by every matching subscriber; the
    // delivery span context rides the frame's extension block.
    std::string frame;
    for (const Subscriber& sub : subscribers_) {
      if (!sub.Matches(firing.trigger)) continue;
      if (frame.empty()) {
        frame = EncodePushFrame(MsgType::kTriggerFired,
                                EncodeTriggerFired(fired), span.context());
      }
      pushes[static_cast<size_t>(sub.reactor)].push_back(
          TriggerPush{sub.conn_id, frame});
      ++delivered;
    }
  }
  span.Annotate("pushes", delivered);
  if (trigger_pushes_ != nullptr) trigger_pushes_->Increment(delivered);
  for (size_t r = 0; r < pushes.size(); ++r) {
    if (!pushes[r].empty()) reactors_[r]->PostPushes(std::move(pushes[r]));
  }
}

Status Server::Run() {
  if (listen_fd_ < 0) {
    return Status::FailedPrecondition("Run() before Start()");
  }
  writer_thread_ = std::this_thread::get_id();
  for (auto& reactor : reactors_) reactor->Start();

  struct pollfd fds[2];
  while (!shutdown_requested_) {
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_fds_[0], POLLIN, 0};
    const int ready = poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      const Status status =
          Status::IOError(std::string("poll: ") + strerror(errno));
      (void)DrainAndClose();
      return status;
    }
    if ((fds[1].revents & POLLIN) != 0) {
      char drain[64];
      while (read(wake_fds_[0], drain, sizeof(drain)) > 0) {
      }
    }
    // The self-pipe wakes the loop for reactor ops, injected tasks, and
    // Shutdown; all three are cheap to check unconditionally.
    ProcessOps();
    RunInjectedTasks();
    if (stop_flag_.load(std::memory_order_acquire)) {
      shutdown_requested_ = true;
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) AcceptPending();
  }
  return DrainAndClose();
}

Status Server::DrainAndClose() {
  // 1. Stop accepting.
  close(listen_fd_);
  listen_fd_ = -1;

  // 2. Quiesce the reactors: each stops reading, then acks; ops already
  //    in flight keep arriving until the last ack, so keep applying.
  for (auto& reactor : reactors_) reactor->BeginDrain();
  const int64_t quiesce_deadline = NowMs() + 2000;
  while (quiesced_.load(std::memory_order_acquire) <
             static_cast<int>(reactors_.size()) &&
         NowMs() < quiesce_deadline) {
    struct pollfd p = {wake_fds_[0], POLLIN, 0};
    const int ready = poll(
        &p, 1,
        static_cast<int>(std::max<int64_t>(quiesce_deadline - NowMs(), 1)));
    if (ready < 0 && errno != EINTR) break;
    char drain[64];
    while (read(wake_fds_[0], drain, sizeof(drain)) > 0) {
    }
    ProcessOps();
  }
  // After the last ack the queue can no longer grow; one final sweep
  // posts the last completions.
  ProcessOps();

  // 3. Let the reactors flush pending responses (bounded: a stuck peer
  //    gets a short grace window, not a hung server), then exit.
  const int64_t exit_deadline = NowMs() + 2000;
  for (auto& reactor : reactors_) reactor->RequestExit(exit_deadline);
  for (auto& reactor : reactors_) reactor->Join();

  // Folds injected while the loop was draining still land before the
  // final checkpoint.
  RunInjectedTasks();

  if (!options_.checkpoint_path.empty()) {
    // The drain checkpoint: SIGTERM (or a SHUTDOWN request) leaves a
    // restorable engine state behind.
    Status status = engine_->Checkpoint(options_.checkpoint_path);
    if (!status.ok()) {
      obs::LogEvent(obs::LogLevel::kError, "net.server", "checkpoint_failed")
          .Str("path", options_.checkpoint_path)
          .Str("error", status.ToString());
      return status;
    }
    obs::LogEvent(obs::LogLevel::kInfo, "net.server", "checkpoint_written")
        .Str("path", options_.checkpoint_path)
        .U64("tuples_seen", engine_->tuples_seen())
        .Bool("drain", true);
  }
  return Status::OK();
}

}  // namespace implistat::net
