#include "net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "net/messages.h"
#include "obs/export_prometheus.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "stream/tuple_stream.h"

namespace implistat::net {

namespace {

int64_t NowMs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("fcntl: ") + strerror(errno));
  }
  return Status::OK();
}

}  // namespace

// Per-request instrumentation (the PR 1 registry). Counters and
// histograms are labelled by message type — one latency distribution per
// type, not a single global one, so a cheap PING can no longer hide a
// slow SNAPSHOT in a shared median. Handles are cached once at Start().
struct Server::Metrics {
  // All per-type arrays are indexed by MsgType value; slot 0 is unused.
  static constexpr int kMaxType = static_cast<int>(MsgType::kTraceDump);
  obs::Counter* requests_by_type[kMaxType + 1];
  obs::Histogram* duration_by_type[kMaxType + 1];
  obs::Histogram* request_bytes_by_type[kMaxType + 1];
  obs::Histogram* response_bytes_by_type[kMaxType + 1];
  obs::Counter* bytes_rx;
  obs::Counter* bytes_tx;
  obs::Counter* frame_errors;
  obs::Gauge* connections;
  obs::Gauge* write_buffer_bytes;

  static const Metrics& Get() {
    static const Metrics metrics = [] {
      auto& reg = obs::MetricsRegistry::Global();
      Metrics m{};
      for (int t = 1; t <= kMaxType; ++t) {
        const char* name = MsgTypeName(static_cast<MsgType>(t));
        m.requests_by_type[t] = reg.GetCounter(
            "implistat_net_requests_total", "Requests handled, by type",
            "type", name);
        m.duration_by_type[t] = reg.GetHistogram(
            "implistat_net_request_duration_ns",
            "Wall time from complete request frame to enqueued response",
            "type", name);
        m.request_bytes_by_type[t] = reg.GetHistogram(
            "implistat_net_request_payload_bytes",
            "Request payload size per handled frame", "type", name);
        m.response_bytes_by_type[t] = reg.GetHistogram(
            "implistat_net_response_payload_bytes",
            "Response payload size per enqueued response", "type", name);
      }
      m.bytes_rx = reg.GetCounter("implistat_net_bytes_rx_total",
                                  "Bytes read from client sockets");
      m.bytes_tx = reg.GetCounter("implistat_net_bytes_tx_total",
                                  "Bytes written to client sockets");
      m.frame_errors = reg.GetCounter(
          "implistat_net_frame_errors_total",
          "Connections dropped for framing/CRC violations");
      m.connections = reg.GetGauge("implistat_net_connections",
                                   "Currently open client connections");
      m.write_buffer_bytes = reg.GetGauge(
          "implistat_net_write_buffer_bytes",
          "Pending response bytes across all connections (queue depth)");
      return m;
    }();
    return metrics;
  }
};

struct Server::Connection {
  explicit Connection(int fd_in, size_t max_frame_bytes)
      : fd(fd_in), decoder(max_frame_bytes) {}

  int fd;
  FrameDecoder decoder;
  std::string write_buf;
  size_t write_pos = 0;
  bool close_after_flush = false;
  int64_t last_active_ms = 0;
  /// Dialect of the most recent request; responses are encoded in it so
  /// a v2 client never sees a v3 payload.
  uint64_t version = kWireProtocolVersion;
  /// Span context of the request being handled — parents the write-phase
  /// span, which runs after the handle span has closed.
  obs::SpanContext active_trace;

  size_t pending() const { return write_buf.size() - write_pos; }
};

Server::Server(QueryEngine* engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {}

Server::~Server() {
  for (auto& conn : connections_) {
    if (conn->fd >= 0) close(conn->fd);
  }
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_fds_[0] >= 0) close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) close(wake_fds_[1]);
}

Status Server::Start() {
  metrics_ = &Metrics::Get();
  if (pipe(wake_fds_) != 0) {
    return Status::IOError(std::string("pipe: ") + strerror(errno));
  }
  IMPLISTAT_RETURN_NOT_OK(SetNonBlocking(wake_fds_[0]));
  IMPLISTAT_RETURN_NOT_OK(SetNonBlocking(wake_fds_[1]));

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + strerror(errno));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    return Status::IOError(std::string("bind: ") + strerror(errno));
  }
  if (listen(listen_fd_, options_.listen_backlog) != 0) {
    return Status::IOError(std::string("listen: ") + strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                  &len) != 0) {
    return Status::IOError(std::string("getsockname: ") + strerror(errno));
  }
  port_ = ntohs(addr.sin_port);
  IMPLISTAT_RETURN_NOT_OK(SetNonBlocking(listen_fd_));
  return Status::OK();
}

void Server::Shutdown() {
  // Async-signal-safe: an atomic store plus a single write to the
  // self-pipe. A full pipe means a wakeup is already pending, which is
  // just as good.
  stop_flag_.store(true, std::memory_order_release);
  char byte = 1;
  [[maybe_unused]] ssize_t n = write(wake_fds_[1], &byte, 1);
}

void Server::InjectTask(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    tasks_.push_back(std::move(task));
  }
  char byte = 1;
  [[maybe_unused]] ssize_t n = write(wake_fds_[1], &byte, 1);
}

void Server::RunInjectedTasks() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(task_mu_);
    tasks.swap(tasks_);
  }
  for (auto& task : tasks) task();
}

void Server::AcceptPending() {
  for (;;) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      // EAGAIN: backlog drained. Anything else: transient; retry on the
      // next poll round rather than killing the server.
      return;
    }
    if (!SetNonBlocking(fd).ok()) {
      close(fd);
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>(fd, options_.max_frame_bytes);
    conn->last_active_ms = NowMs();
    connections_.push_back(std::move(conn));
    metrics_->connections->Set(static_cast<int64_t>(connections_.size()));
    obs::LogEvent(obs::LogLevel::kDebug, "net.server", "conn_accept")
        .U64("fd", static_cast<uint64_t>(fd))
        .U64("connections", connections_.size());
  }
}

void Server::CloseConnection(size_t index) {
  obs::LogEvent(obs::LogLevel::kDebug, "net.server", "conn_close")
      .U64("fd", static_cast<uint64_t>(connections_[index]->fd))
      .U64("connections", connections_.size() - 1);
  close(connections_[index]->fd);
  connections_.erase(connections_.begin() + static_cast<long>(index));
  metrics_->connections->Set(static_cast<int64_t>(connections_.size()));
}

void Server::EnqueueResponse(Connection* conn, MsgType type,
                             const Status& status, std::string_view body) {
  obs::ScopedSpan span("server.encode", "server");
  span.Annotate("body_bytes", body.size());
  const int t = static_cast<int>(type);
  if (t >= 1 && t <= Metrics::kMaxType) {
    metrics_->response_bytes_by_type[t]->Record(body.size());
  }
  std::string frame = EncodeResponseFrame(
      type, EncodeResponsePayload(status, body), conn->version);
  if (conn->pending() + frame.size() > options_.max_write_buffer_bytes) {
    // Backpressure: the consumer is not keeping up. Drop the oversized
    // result, answer with a small RESOURCE_EXHAUSTED instead, and close
    // once it flushes — pending bytes stay bounded by the cap plus one
    // error frame.
    obs::LogEvent(obs::LogLevel::kWarn, "net.server", "backpressure_close")
        .U64("fd", static_cast<uint64_t>(conn->fd))
        .Str("type", MsgTypeName(type))
        .U64("response_bytes", frame.size())
        .U64("pending_bytes", conn->pending())
        .U64("bound_bytes", options_.max_write_buffer_bytes);
    frame = EncodeResponseFrame(
        type, EncodeResponsePayload(Status::ResourceExhausted(
                  "response exceeds the connection's write-buffer bound")),
        conn->version);
    conn->close_after_flush = true;
  }
  // Compact the consumed prefix before growing the buffer.
  if (conn->write_pos > 0) {
    conn->write_buf.erase(0, conn->write_pos);
    conn->write_pos = 0;
  }
  conn->write_buf.append(frame);
}

void Server::HandleObserveBatch(Connection* conn, std::string_view payload) {
  StatusOr<ObserveBatchRequest> request = [&] {
    obs::ScopedSpan decode("server.decode", "server");
    return DecodeObserveBatchRequest(payload);
  }();
  if (!request.ok()) {
    EnqueueResponse(conn, MsgType::kObserveBatch, request.status());
    return;
  }
  const Schema& schema = engine_->schema();
  if (request->width != static_cast<uint32_t>(schema.num_attributes())) {
    EnqueueResponse(conn, MsgType::kObserveBatch,
                    Status::InvalidArgument(
                        "observe_batch: width " +
                        std::to_string(request->width) +
                        " disagrees with schema width " +
                        std::to_string(schema.num_attributes())));
    return;
  }
  // Validate (or intern) every cell into an id row-major buffer before
  // any tuple reaches the engine, so a bad batch mutates nothing.
  std::vector<ValueId> flat;
  if (request->encoding == ObserveEncoding::kIds) {
    for (size_t i = 0; i < request->ids.size(); ++i) {
      const uint64_t card =
          schema.attribute(static_cast<int>(i % request->width)).cardinality;
      if (card != 0 && request->ids[i] >= card) {
        EnqueueResponse(conn, MsgType::kObserveBatch,
                        Status::InvalidArgument(
                            "observe_batch: value id " +
                            std::to_string(request->ids[i]) +
                            " outside declared cardinality"));
        return;
      }
    }
    flat = std::move(request->ids);
  } else {
    const std::vector<ValueDictionary>& dicts = engine_->dictionaries();
    if (dicts.empty()) {
      EnqueueResponse(
          conn, MsgType::kObserveBatch,
          Status::FailedPrecondition(
              "observe_batch: server has no value dictionaries; send ids"));
      return;
    }
    flat.reserve(request->values.size());
    for (size_t i = 0; i < request->values.size(); ++i) {
      // Find, never GetOrAdd: itemset packers were sized at registration,
      // so the value universe is closed.
      StatusOr<ValueId> id =
          dicts[i % request->width].Find(request->values[i]);
      if (!id.ok()) {
        EnqueueResponse(conn, MsgType::kObserveBatch, id.status());
        return;
      }
      flat.push_back(*id);
    }
  }
  VectorStream stream(engine_->schema(), std::move(flat));
  Status status = [&] {
    obs::ScopedSpan apply("server.apply", "server");
    apply.Annotate("tuples", stream.num_tuples());
    return engine_->ObserveStream(stream);
  }();
  if (!status.ok()) {
    EnqueueResponse(conn, MsgType::kObserveBatch, status);
    return;
  }
  EnqueueResponse(conn, MsgType::kObserveBatch, Status::OK(),
                  EncodeObserveBatchResponse(engine_->tuples_seen()));
}

void Server::HandleQuery(Connection* conn, std::string_view payload) {
  StatusOr<std::vector<uint32_t>> ids = [&] {
    obs::ScopedSpan decode("server.decode", "server");
    return DecodeQueryRequest(payload);
  }();
  if (!ids.ok()) {
    EnqueueResponse(conn, MsgType::kQuery, ids.status());
    return;
  }
  if (ids->empty()) {
    for (int i = 0; i < engine_->num_queries(); ++i) {
      ids->push_back(static_cast<uint32_t>(i));
    }
  }
  QueryResponse response;
  response.tuples_seen = engine_->tuples_seen();
  {
    obs::ScopedSpan apply("server.apply", "server");
    apply.Annotate("queries", ids->size());
    for (uint32_t id : *ids) {
      StatusOr<double> answer = engine_->Answer(static_cast<QueryId>(id));
      if (!answer.ok()) {
        EnqueueResponse(conn, MsgType::kQuery, answer.status());
        return;
      }
      const ImplicationEstimator* est =
          engine_->Estimator(static_cast<QueryId>(id)).value();
      const ImplicationQuerySpec* spec =
          engine_->Spec(static_cast<QueryId>(id)).value();
      QueryResult result;
      result.id = id;
      result.label = spec->label;
      result.estimator_name = est->name();
      result.estimate = *answer;
      result.std_error = est->EstimateStdError();
      result.memory_bytes = est->MemoryBytes();
      response.results.push_back(std::move(result));
    }
  }
  if (options_.query_warnings) {
    response.warnings = options_.query_warnings();
  }
  EnqueueResponse(conn, MsgType::kQuery, Status::OK(),
                  EncodeQueryResponse(response));
}

void Server::HandleSnapshot(Connection* conn, std::string_view payload) {
  StatusOr<uint32_t> id = DecodeSnapshotRequest(payload);
  if (!id.ok()) {
    EnqueueResponse(conn, MsgType::kSnapshot, id.status());
    return;
  }
  StatusOr<const ImplicationEstimator*> est =
      engine_->Estimator(static_cast<QueryId>(*id));
  if (!est.ok()) {
    EnqueueResponse(conn, MsgType::kSnapshot, est.status());
    return;
  }
  StatusOr<std::string> snapshot = [&] {
    obs::ScopedSpan apply("server.apply", "server");
    return (*est)->SerializeState();
  }();
  if (!snapshot.ok()) {
    EnqueueResponse(conn, MsgType::kSnapshot, snapshot.status());
    return;
  }
  // The epoch stamps how much stream this state covers; an aggregator
  // skips refolding a peer whose epoch (and therefore state) is
  // unchanged, and spots an edge that restarted from a checkpoint.
  EnqueueResponse(conn, MsgType::kSnapshot, Status::OK(),
                  EncodeSnapshotResponse(engine_->tuples_seen(), *snapshot));
}

void Server::HandleMerge(Connection* conn, std::string_view payload) {
  auto decoded = DecodeMergeRequest(payload);
  if (!decoded.ok()) {
    EnqueueResponse(conn, MsgType::kMerge, decoded.status());
    return;
  }
  Status status = [&] {
    obs::ScopedSpan apply("server.apply", "server");
    apply.Annotate("state_bytes", decoded->second.size());
    return engine_->MergeEstimatorState(static_cast<QueryId>(decoded->first),
                                        decoded->second);
  }();
  EnqueueResponse(conn, MsgType::kMerge, status);
}

void Server::HandleMetrics(Connection* conn) {
  obs::RegistrySnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  EnqueueResponse(conn, MsgType::kMetrics, Status::OK(),
                  obs::WriteMetricsPrometheus(snapshot));
}

void Server::HandleTraceDump(Connection* conn) {
  // Every thread's recent spans as Chrome trace_event JSON. In a build
  // with tracing compiled out the snapshot is empty and the body is a
  // valid JSON document with zero events — remote tooling need not care
  // how the server was built.
  EnqueueResponse(conn, MsgType::kTraceDump, Status::OK(),
                  obs::WriteTraceJson(obs::Tracer::Snapshot()));
}

void Server::HandleCheckpoint(Connection* conn) {
  if (options_.checkpoint_path.empty()) {
    EnqueueResponse(conn, MsgType::kCheckpoint,
                    Status::FailedPrecondition(
                        "server started without a checkpoint path"));
    return;
  }
  Status status = [&] {
    obs::ScopedSpan apply("server.apply", "server");
    return engine_->Checkpoint(options_.checkpoint_path);
  }();
  if (!status.ok()) {
    obs::LogEvent(obs::LogLevel::kError, "net.server", "checkpoint_failed")
        .Str("path", options_.checkpoint_path)
        .Str("error", status.ToString());
    EnqueueResponse(conn, MsgType::kCheckpoint, status);
    return;
  }
  obs::LogEvent(obs::LogLevel::kInfo, "net.server", "checkpoint_written")
      .Str("path", options_.checkpoint_path)
      .U64("tuples_seen", engine_->tuples_seen());
  EnqueueResponse(conn, MsgType::kCheckpoint, Status::OK(),
                  EncodeCheckpointResponse(options_.checkpoint_path));
}

void Server::HandleFrame(Connection* conn, const Frame& frame) {
  conn->version = frame.version;
  // The handle span adopts the client's trace context when the frame
  // carried one (v3), so the client's RPC span and every server phase
  // below share one trace id across the socket.
  obs::ScopedSpan span("server.handle", "server", frame.trace);
  span.SetDetail(MsgTypeName(frame.type()));
  span.Annotate("payload_bytes", frame.payload.size());
  conn->active_trace = span.context();
  const uint8_t raw = frame.tag & ~kResponseFlag;
  obs::ScopedTimer timer(
      raw >= 1 && raw <= Metrics::kMaxType ? metrics_->duration_by_type[raw]
                                           : nullptr);
  if (raw >= 1 && raw <= Metrics::kMaxType) {
    metrics_->requests_by_type[raw]->Increment();
    metrics_->request_bytes_by_type[raw]->Record(frame.payload.size());
  }
  if (frame.is_response()) {
    // A server never receives responses; protocol confusion is fatal.
    conn->close_after_flush = true;
    return;
  }
  switch (frame.type()) {
    case MsgType::kPing:
      EnqueueResponse(conn, MsgType::kPing, Status::OK());
      return;
    case MsgType::kObserveBatch:
      HandleObserveBatch(conn, frame.payload);
      return;
    case MsgType::kQuery:
      HandleQuery(conn, frame.payload);
      return;
    case MsgType::kSnapshot:
      HandleSnapshot(conn, frame.payload);
      return;
    case MsgType::kMerge:
      HandleMerge(conn, frame.payload);
      return;
    case MsgType::kMetrics:
      HandleMetrics(conn);
      return;
    case MsgType::kCheckpoint:
      HandleCheckpoint(conn);
      return;
    case MsgType::kShutdown:
      obs::LogEvent(obs::LogLevel::kInfo, "net.server", "shutdown_request")
          .U64("fd", static_cast<uint64_t>(conn->fd));
      EnqueueResponse(conn, MsgType::kShutdown, Status::OK());
      conn->close_after_flush = true;
      shutdown_requested_ = true;
      return;
    case MsgType::kTraceDump:
      HandleTraceDump(conn);
      return;
  }
  EnqueueResponse(conn, frame.type(),
                  Status::InvalidArgument(
                      "unknown request type " +
                      std::to_string(static_cast<int>(frame.tag))));
}

Status Server::HandleReadable(Connection* conn) {
  char buf[65536];
  for (;;) {
    ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      metrics_->bytes_rx->Increment(static_cast<uint64_t>(n));
      conn->last_active_ms = NowMs();
      IMPLISTAT_RETURN_NOT_OK(
          conn->decoder.Append(std::string_view(buf, static_cast<size_t>(n))));
      for (;;) {
        IMPLISTAT_ASSIGN_OR_RETURN(std::optional<Frame> frame,
                                   conn->decoder.Next());
        if (!frame.has_value()) break;
        HandleFrame(conn, *frame);
        // Backpressure: once marked for close, stop servicing pipelined
        // requests — their bytes stay unread in the kernel.
        if (conn->close_after_flush) return Status::OK();
      }
      if (n < static_cast<ssize_t>(sizeof(buf))) return Status::OK();
      continue;  // buffer was full; more may be waiting
    }
    if (n == 0) return Status::IOError("peer closed");
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
    if (errno == EINTR) continue;
    return Status::IOError(std::string("recv: ") + strerror(errno));
  }
}

Status Server::FlushWrites(Connection* conn) {
  // The write phase runs after the handle span closed, so it parents
  // itself on the recorded request context rather than the span stack.
  obs::ScopedSpan span("server.write", "server", conn->active_trace);
  span.Annotate("pending_bytes", conn->pending());
  while (conn->pending() > 0) {
    ssize_t n = send(conn->fd, conn->write_buf.data() + conn->write_pos,
                     conn->pending(), MSG_NOSIGNAL);
    if (n > 0) {
      metrics_->bytes_tx->Increment(static_cast<uint64_t>(n));
      conn->write_pos += static_cast<size_t>(n);
      conn->last_active_ms = NowMs();
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::OK();
    if (errno == EINTR) continue;
    return Status::IOError(std::string("send: ") + strerror(errno));
  }
  if (conn->write_pos > 0) {
    conn->write_buf.clear();
    conn->write_pos = 0;
  }
  return Status::OK();
}

Status Server::Run() {
  if (listen_fd_ < 0) {
    return Status::FailedPrecondition("Run() before Start()");
  }
  std::vector<struct pollfd> fds;
  while (!shutdown_requested_) {
    fds.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_fds_[0], POLLIN, 0});
    // Only this prefix of connections_ has a pollfd this round; accepts
    // during the round append past it and wait for the next poll.
    const size_t polled = connections_.size();
    for (const auto& conn : connections_) {
      short events = 0;
      // Stop reading once a connection is closing — flush only.
      if (!conn->close_after_flush) events |= POLLIN;
      if (conn->pending() > 0) events |= POLLOUT;
      fds.push_back({conn->fd, events, 0});
    }

    int timeout_ms = -1;
    if (options_.idle_timeout_ms > 0 && !connections_.empty()) {
      const int64_t now = NowMs();
      int64_t soonest = options_.idle_timeout_ms;
      for (const auto& conn : connections_) {
        const int64_t left =
            conn->last_active_ms + options_.idle_timeout_ms - now;
        soonest = std::min(soonest, std::max<int64_t>(left, 0));
      }
      timeout_ms = static_cast<int>(std::min<int64_t>(soonest, 60'000) + 1);
    }

    int ready = poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("poll: ") + strerror(errno));
    }

    if ((fds[1].revents & POLLIN) != 0) {
      char drain[64];
      while (read(wake_fds_[0], drain, sizeof(drain)) > 0) {
      }
      // The self-pipe wakes the loop for two reasons: injected tasks
      // (run them, keep serving) and Shutdown (drain and exit).
      RunInjectedTasks();
      if (stop_flag_.load(std::memory_order_acquire)) {
        shutdown_requested_ = true;
        break;
      }
    }
    if ((fds[0].revents & POLLIN) != 0) AcceptPending();

    // Walk connections back to front so CloseConnection's erase cannot
    // shift an index we have yet to visit.
    const int64_t now = NowMs();
    for (size_t i = polled; i-- > 0;) {
      Connection* conn = connections_[i].get();
      const short revents = fds[2 + i].revents;
      bool drop = (revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
                  (revents & POLLIN) == 0;
      if (!drop && (revents & POLLIN) != 0) {
        Status status = HandleReadable(conn);
        if (!status.ok()) {
          metrics_->frame_errors->Increment();
          obs::LogEvent(obs::LogLevel::kWarn, "net.server", "conn_error")
              .U64("fd", static_cast<uint64_t>(conn->fd))
              .Str("error", status.ToString());
          drop = true;
        }
      }
      if (!drop && conn->pending() > 0) {
        drop = !FlushWrites(conn).ok();
      }
      if (!drop && conn->close_after_flush && conn->pending() == 0) {
        drop = true;
      }
      if (!drop && options_.idle_timeout_ms > 0 &&
          now - conn->last_active_ms >= options_.idle_timeout_ms) {
        drop = true;
      }
      if (drop) CloseConnection(i);
    }

    size_t pending_total = 0;
    for (const auto& conn : connections_) pending_total += conn->pending();
    metrics_->write_buffer_bytes->Set(static_cast<int64_t>(pending_total));

    if (shutdown_requested_) break;
  }
  return DrainAndClose();
}

Status Server::DrainAndClose() {
  // Stop accepting, flush what is pending (bounded: a stuck peer gets a
  // short grace window, not a hung server), then close everything.
  close(listen_fd_);
  listen_fd_ = -1;
  const int64_t deadline = NowMs() + 2000;
  while (!connections_.empty() && NowMs() < deadline) {
    std::vector<struct pollfd> fds;
    bool any_pending = false;
    for (const auto& conn : connections_) {
      fds.push_back(
          {conn->fd, static_cast<short>(conn->pending() > 0 ? POLLOUT : 0),
           0});
      any_pending = any_pending || conn->pending() > 0;
    }
    if (!any_pending) break;
    int ready = poll(fds.data(), fds.size(),
                     static_cast<int>(std::max<int64_t>(deadline - NowMs(),
                                                        0)));
    if (ready <= 0 && errno != EINTR) break;
    for (size_t i = connections_.size(); i-- > 0;) {
      if ((fds[i].revents & POLLOUT) != 0 &&
          !FlushWrites(connections_[i].get()).ok()) {
        CloseConnection(i);
      }
    }
  }
  while (!connections_.empty()) CloseConnection(connections_.size() - 1);

  // Folds injected while the loop was draining still land before the
  // final checkpoint.
  RunInjectedTasks();

  if (!options_.checkpoint_path.empty()) {
    // The drain checkpoint: SIGTERM (or a SHUTDOWN request) leaves a
    // restorable engine state behind.
    Status status = engine_->Checkpoint(options_.checkpoint_path);
    if (!status.ok()) {
      obs::LogEvent(obs::LogLevel::kError, "net.server", "checkpoint_failed")
          .Str("path", options_.checkpoint_path)
          .Str("error", status.ToString());
      return status;
    }
    obs::LogEvent(obs::LogLevel::kInfo, "net.server", "checkpoint_written")
        .Str("path", options_.checkpoint_path)
        .U64("tuples_seen", engine_->tuples_seen())
        .Bool("drain", true);
  }
  return Status::OK();
}

}  // namespace implistat::net
