#include "net/messages.h"

#include <limits>

namespace implistat::net {

namespace {

// Every row costs at least one byte per cell on the wire, so a count
// whose cells exceed the remaining bytes is hostile; checking before the
// reserve keeps a forged header from ballooning an allocation.
Status CheckCellCount(uint64_t tuples, uint64_t width,
                      size_t remaining_bytes) {
  if (tuples == 0) return Status::OK();
  if (width == 0) {
    return Status::InvalidArgument("observe_batch: tuples with zero width");
  }
  // Dividing keeps the check overflow-proof for hostile counts.
  if (tuples > remaining_bytes / width) {
    return Status::InvalidArgument(
        "observe_batch: implausible tuple count " + std::to_string(tuples));
  }
  return Status::OK();
}

}  // namespace

std::string EncodeObserveBatchRequest(const ObserveBatchRequest& request) {
  ByteWriter out;
  out.PutU8(static_cast<uint8_t>(request.encoding));
  out.PutVarint64(request.width);
  out.PutVarint64(request.num_tuples());
  if (request.encoding == ObserveEncoding::kIds) {
    for (ValueId id : request.ids) out.PutVarint64(id);
  } else {
    for (const std::string& value : request.values) {
      out.PutLengthPrefixed(value);
    }
  }
  return out.Release();
}

StatusOr<ObserveBatchRequest> DecodeObserveBatchRequest(
    std::string_view payload) {
  ByteReader in(payload);
  uint8_t encoding;
  IMPLISTAT_RETURN_NOT_OK(in.ReadU8(&encoding));
  if (encoding > static_cast<uint8_t>(ObserveEncoding::kValues)) {
    return Status::InvalidArgument("observe_batch: unknown tuple encoding " +
                                   std::to_string(encoding));
  }
  uint64_t width;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&width));
  if (width > 4096) {
    return Status::InvalidArgument("observe_batch: implausible width " +
                                   std::to_string(width));
  }
  uint64_t tuples;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&tuples));
  IMPLISTAT_RETURN_NOT_OK(CheckCellCount(tuples, width, in.remaining()));
  ObserveBatchRequest request;
  request.encoding = static_cast<ObserveEncoding>(encoding);
  request.width = static_cast<uint32_t>(width);
  const size_t cells = static_cast<size_t>(tuples * width);
  if (request.encoding == ObserveEncoding::kIds) {
    request.ids.reserve(cells);
    for (size_t i = 0; i < cells; ++i) {
      uint64_t id;
      IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&id));
      if (id > std::numeric_limits<ValueId>::max()) {
        return Status::InvalidArgument("observe_batch: value id overflow");
      }
      request.ids.push_back(static_cast<ValueId>(id));
    }
  } else {
    request.values.reserve(cells);
    for (size_t i = 0; i < cells; ++i) {
      std::string_view value;
      IMPLISTAT_RETURN_NOT_OK(in.ReadLengthPrefixed(&value));
      request.values.emplace_back(value);
    }
  }
  if (in.remaining() != 0) {
    return Status::InvalidArgument("observe_batch: trailing bytes");
  }
  return request;
}

std::string EncodeObserveBatchResponse(uint64_t tuples_seen) {
  ByteWriter out;
  out.PutVarint64(tuples_seen);
  return out.Release();
}

StatusOr<uint64_t> DecodeObserveBatchResponse(std::string_view body) {
  ByteReader in(body);
  uint64_t tuples_seen;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&tuples_seen));
  if (in.remaining() != 0) {
    return Status::InvalidArgument("observe_batch response: trailing bytes");
  }
  return tuples_seen;
}

std::string EncodeQueryRequest(const std::vector<uint32_t>& ids) {
  ByteWriter out;
  out.PutVarint64(ids.size());
  for (uint32_t id : ids) out.PutVarint64(id);
  return out.Release();
}

StatusOr<std::vector<uint32_t>> DecodeQueryRequest(std::string_view payload) {
  ByteReader in(payload);
  uint64_t count;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&count));
  if (count > in.remaining()) {
    return Status::InvalidArgument("query: implausible id count");
  }
  std::vector<uint32_t> ids;
  ids.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id;
    IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&id));
    if (id > std::numeric_limits<uint32_t>::max()) {
      return Status::InvalidArgument("query: id overflow");
    }
    ids.push_back(static_cast<uint32_t>(id));
  }
  if (in.remaining() != 0) {
    return Status::InvalidArgument("query: trailing bytes");
  }
  return ids;
}

std::string EncodeQueryResponse(const QueryResponse& response,
                                uint64_t version) {
  ByteWriter out;
  out.PutVarint64(response.tuples_seen);
  out.PutVarint64(response.results.size());
  for (const QueryResult& result : response.results) {
    out.PutVarint64(result.id);
    out.PutLengthPrefixed(result.label);
    out.PutLengthPrefixed(result.estimator_name);
    out.PutDouble(result.estimate);
    out.PutDouble(result.std_error);
    out.PutVarint64(result.memory_bytes);
    // v4 derivation section. Older dialects drop it — a v2/v3 client
    // sees the midpoint estimate with the half-width as std_error,
    // which degrades honestly.
    if (version >= 4) {
      out.PutU8(result.derived ? 1 : 0);
      out.PutDouble(result.lower);
      out.PutDouble(result.upper);
    }
  }
  out.PutVarint64(response.warnings.size());
  for (const std::string& warning : response.warnings) {
    out.PutLengthPrefixed(warning);
  }
  return out.Release();
}

StatusOr<QueryResponse> DecodeQueryResponse(std::string_view body,
                                            uint64_t version) {
  ByteReader in(body);
  QueryResponse response;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&response.tuples_seen));
  uint64_t count;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&count));
  if (count > in.remaining()) {
    return Status::InvalidArgument("query response: implausible result count");
  }
  response.results.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    QueryResult result;
    uint64_t id;
    IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&id));
    if (id > std::numeric_limits<uint32_t>::max()) {
      return Status::InvalidArgument("query response: id overflow");
    }
    result.id = static_cast<uint32_t>(id);
    std::string_view label;
    IMPLISTAT_RETURN_NOT_OK(in.ReadLengthPrefixed(&label));
    result.label = std::string(label);
    std::string_view name;
    IMPLISTAT_RETURN_NOT_OK(in.ReadLengthPrefixed(&name));
    result.estimator_name = std::string(name);
    IMPLISTAT_RETURN_NOT_OK(in.ReadDouble(&result.estimate));
    IMPLISTAT_RETURN_NOT_OK(in.ReadDouble(&result.std_error));
    IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&result.memory_bytes));
    if (version >= 4) {
      uint8_t derived;
      IMPLISTAT_RETURN_NOT_OK(in.ReadU8(&derived));
      if (derived > 1) {
        return Status::InvalidArgument("query response: bad derived flag");
      }
      result.derived = derived != 0;
      IMPLISTAT_RETURN_NOT_OK(in.ReadDouble(&result.lower));
      IMPLISTAT_RETURN_NOT_OK(in.ReadDouble(&result.upper));
    }
    response.results.push_back(std::move(result));
  }
  uint64_t warning_count;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&warning_count));
  if (warning_count > in.remaining()) {
    return Status::InvalidArgument(
        "query response: implausible warning count");
  }
  response.warnings.reserve(static_cast<size_t>(warning_count));
  for (uint64_t i = 0; i < warning_count; ++i) {
    std::string_view warning;
    IMPLISTAT_RETURN_NOT_OK(in.ReadLengthPrefixed(&warning));
    response.warnings.emplace_back(warning);
  }
  if (in.remaining() != 0) {
    return Status::InvalidArgument("query response: trailing bytes");
  }
  return response;
}

std::string EncodeSnapshotRequest(uint32_t query_id) {
  ByteWriter out;
  out.PutVarint64(query_id);
  return out.Release();
}

StatusOr<uint32_t> DecodeSnapshotRequest(std::string_view payload) {
  ByteReader in(payload);
  uint64_t id;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&id));
  if (id > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("snapshot: id overflow");
  }
  if (in.remaining() != 0) {
    return Status::InvalidArgument("snapshot: trailing bytes");
  }
  return static_cast<uint32_t>(id);
}

std::string EncodeSnapshotResponse(uint64_t epoch, std::string_view state) {
  ByteWriter out;
  out.PutVarint64(epoch);
  out.PutBytes(state);
  return out.Release();
}

StatusOr<SnapshotResponse> DecodeSnapshotResponse(std::string_view body) {
  ByteReader in(body);
  SnapshotResponse response;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&response.epoch));
  std::string_view state;
  IMPLISTAT_RETURN_NOT_OK(in.ReadBytes(in.remaining(), &state));
  response.state = std::string(state);
  return response;
}

std::string EncodeDeltaSnapshotRequest(const DeltaSnapshotRequest& request) {
  ByteWriter out;
  out.PutVarint64(request.query_id);
  out.PutVarint64(request.since_epoch);
  out.PutU8(request.capabilities);
  return out.Release();
}

StatusOr<DeltaSnapshotRequest> DecodeDeltaSnapshotRequest(
    std::string_view payload) {
  ByteReader in(payload);
  DeltaSnapshotRequest request;
  uint64_t id;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&id));
  if (id > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("snapshot_delta: id overflow");
  }
  request.query_id = static_cast<uint32_t>(id);
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&request.since_epoch));
  IMPLISTAT_RETURN_NOT_OK(in.ReadU8(&request.capabilities));
  if (in.remaining() != 0) {
    return Status::InvalidArgument("snapshot_delta: trailing bytes");
  }
  return request;
}

std::string EncodeDeltaSnapshotResponse(
    const DeltaSnapshotResponse& response) {
  ByteWriter out;
  out.PutU8(response.is_delta ? 1 : 0);
  out.PutVarint64(response.epoch);
  out.PutBytes(response.state);
  return out.Release();
}

StatusOr<DeltaSnapshotResponse> DecodeDeltaSnapshotResponse(
    std::string_view body) {
  ByteReader in(body);
  DeltaSnapshotResponse response;
  uint8_t mode;
  IMPLISTAT_RETURN_NOT_OK(in.ReadU8(&mode));
  if (mode > 1) {
    return Status::InvalidArgument("snapshot_delta: bad mode byte");
  }
  response.is_delta = mode == 1;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&response.epoch));
  std::string_view state;
  IMPLISTAT_RETURN_NOT_OK(in.ReadBytes(in.remaining(), &state));
  response.state = std::string(state);
  return response;
}

std::string EncodeMergeRequest(uint32_t query_id, std::string_view snapshot) {
  ByteWriter out;
  out.PutVarint64(query_id);
  out.PutBytes(snapshot);
  return out.Release();
}

StatusOr<std::pair<uint32_t, std::string_view>> DecodeMergeRequest(
    std::string_view payload) {
  ByteReader in(payload);
  uint64_t id;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&id));
  if (id > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("merge: id overflow");
  }
  std::string_view snapshot;
  IMPLISTAT_RETURN_NOT_OK(in.ReadBytes(in.remaining(), &snapshot));
  return std::make_pair(static_cast<uint32_t>(id), snapshot);
}

std::string EncodeCheckpointResponse(std::string_view path) {
  ByteWriter out;
  out.PutLengthPrefixed(path);
  return out.Release();
}

StatusOr<std::string> DecodeCheckpointResponse(std::string_view body) {
  ByteReader in(body);
  std::string_view path;
  IMPLISTAT_RETURN_NOT_OK(in.ReadLengthPrefixed(&path));
  if (in.remaining() != 0) {
    return Status::InvalidArgument("checkpoint response: trailing bytes");
  }
  return std::string(path);
}

namespace {

Status DecodeStringList(ByteReader* in, std::string_view what,
                        std::vector<std::string>* out) {
  uint64_t count;
  IMPLISTAT_RETURN_NOT_OK(in->ReadVarint64(&count));
  if (count > in->remaining()) {
    return Status::InvalidArgument("subscribe: implausible " +
                                   std::string(what) + " count");
  }
  out->reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view item;
    IMPLISTAT_RETURN_NOT_OK(in->ReadLengthPrefixed(&item));
    out->emplace_back(item);
  }
  return Status::OK();
}

}  // namespace

std::string EncodeSubscribeRequest(const SubscribeRequest& request) {
  ByteWriter out;
  out.PutVarint64(request.statements.size());
  for (const std::string& statement : request.statements) {
    out.PutLengthPrefixed(statement);
  }
  out.PutVarint64(request.triggers.size());
  for (const std::string& trigger : request.triggers) {
    out.PutLengthPrefixed(trigger);
  }
  return out.Release();
}

StatusOr<SubscribeRequest> DecodeSubscribeRequest(std::string_view payload) {
  ByteReader in(payload);
  SubscribeRequest request;
  IMPLISTAT_RETURN_NOT_OK(
      DecodeStringList(&in, "statement", &request.statements));
  IMPLISTAT_RETURN_NOT_OK(DecodeStringList(&in, "trigger", &request.triggers));
  if (in.remaining() != 0) {
    return Status::InvalidArgument("subscribe: trailing bytes");
  }
  return request;
}

std::string EncodeSubscribeResponse(const SubscribeResponse& response) {
  ByteWriter out;
  out.PutVarint64(response.installed);
  out.PutVarint64(response.matched);
  return out.Release();
}

StatusOr<SubscribeResponse> DecodeSubscribeResponse(std::string_view body) {
  ByteReader in(body);
  SubscribeResponse response;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&response.installed));
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&response.matched));
  if (in.remaining() != 0) {
    return Status::InvalidArgument("subscribe response: trailing bytes");
  }
  return response;
}

std::string EncodeTriggerFired(const TriggerFired& fired) {
  ByteWriter out;
  out.PutLengthPrefixed(fired.trigger);
  out.PutVarint64(fired.epoch);
  out.PutDouble(fired.value);
  return out.Release();
}

StatusOr<TriggerFired> DecodeTriggerFired(std::string_view payload) {
  ByteReader in(payload);
  TriggerFired fired;
  std::string_view trigger;
  IMPLISTAT_RETURN_NOT_OK(in.ReadLengthPrefixed(&trigger));
  if (trigger.empty()) {
    return Status::InvalidArgument("trigger_fired: empty trigger name");
  }
  fired.trigger = std::string(trigger);
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&fired.epoch));
  IMPLISTAT_RETURN_NOT_OK(in.ReadDouble(&fired.value));
  if (in.remaining() != 0) {
    return Status::InvalidArgument("trigger_fired: trailing bytes");
  }
  return fired;
}

}  // namespace implistat::net
