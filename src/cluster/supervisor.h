// Cluster aggregation tier: a supervisor that owns a fleet of edge
// servers and keeps an aggregate QueryEngine fresh from their shipped
// snapshots — the paper's constrained-environment topology (§1, §6)
// operationalized: cheap edges summarize their local streams, and this
// component pulls the kilobyte summaries upward, survives edge crashes,
// and folds them into the answer a single process over the union stream
// would give.
//
// Semantics: replace-then-refold. The supervisor remembers every peer's
// latest snapshot per query (keyed by the peer's epoch — its tuples_seen
// at serialize time) and rebuilds the aggregate from scratch whenever any
// contribution changes: aggregate = fold(base, peers' latest snapshots).
// Nothing ever accumulates into the aggregate twice, so a retried or
// duplicated ship is idempotent by construction, and an edge that
// crashes, restores from checkpoint and rejoins simply replaces its own
// stale contribution — the aggregate converges back to the
// single-process answer as soon as the edge catches up.
//
// Bandwidth: against wire-v6 peers the supervisor pulls SNAPSHOT_DELTA
// patches keyed by the last acked epoch and folds each into a local twin
// estimator (one per peer per fold unit). The twin's serialized state is
// byte-identical to the full snapshot the edge would have shipped, so
// replace-then-refold semantics — and the bytes the fold sees — are
// unchanged; only the wire cost shrinks. Any refusal (edge restart,
// evicted baseline, corrupt patch, delta-incapable synopsis kind) falls
// back to a full snapshot in the same round — a "resync", counted in
// implistat_delta_resyncs_total — and re-arms delta pulls from there.
//
// Health state machine, per peer:
//
//   HEALTHY --failure--> DEGRADED --(stale_after_failures)--> STALE
//      ^                    |  ^                                |
//      +---- success -------+  +------------- success ---------+
//
// DEGRADED peers keep their last snapshot in the fold (the data is good,
// just aging); STALE peers are excluded from the fold and reported in
// QUERY warnings until they answer again. Failed peers are retried on a
// bounded exponential backoff with deterministic jitter so a rebooting
// fleet does not see synchronized retry storms.
//
// Threading: PollOnce does all peer I/O and must be called from one
// thread at a time (Start() runs it on an internal thread). Folds are
// handed to a TaskRunner — inline by default (the supervisor owns the
// engine), or Server::InjectTask when the aggregate is simultaneously
// served over the wire (the fold then runs on the serving loop thread,
// preserving the engine's single-thread contract). PeerStatuses() and
// QueryWarnings() are thread-safe readers.
//
// Hierarchy: an aggregator is itself a server, and its SNAPSHOT response
// carries its folded state with epoch = sum of folded peer epochs, so a
// higher tier supervises aggregators exactly like edges — edge →
// mid-tier → root composes without new machinery.

#ifndef IMPLISTAT_CLUSTER_SUPERVISOR_H_
#define IMPLISTAT_CLUSTER_SUPERVISOR_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "obs/metrics.h"
#include "query/engine.h"
#include "util/random.h"

namespace implistat::cluster {

struct PeerConfig {
  std::string host;
  uint16_t port = 0;
  /// Metrics label and log identity; defaults to "host:port" when empty.
  std::string name;
};

/// Parses "host:port" (e.g. "127.0.0.1:7070") into a PeerConfig.
StatusOr<PeerConfig> ParsePeerSpec(std::string_view spec);

enum class PeerHealth : uint8_t { kHealthy = 0, kDegraded = 1, kStale = 2 };

const char* PeerHealthName(PeerHealth health);

struct SupervisorOptions {
  /// Target gap between successful pulls from one peer.
  int64_t poll_interval_ms = 1000;
  /// Per-RPC deadline for SNAPSHOT pulls (net::ClientOptions
  /// request_timeout_ms); a hung edge costs one deadline, never a wedge.
  int64_t rpc_deadline_ms = 2000;
  /// TCP connect timeout when (re)dialing a peer.
  int64_t connect_timeout_ms = 2000;
  /// Bounded exponential backoff after failures: the nth consecutive
  /// failure waits min(backoff_max_ms, backoff_initial_ms * 2^(n-1)),
  /// jittered uniformly into [delay/2, delay].
  int64_t backoff_initial_ms = 100;
  int64_t backoff_max_ms = 5000;
  /// Consecutive failures before a DEGRADED peer is declared STALE and
  /// its contribution dropped from the fold.
  int stale_after_failures = 3;
  /// Seed for the deterministic backoff jitter (tests pin it).
  uint64_t jitter_seed = 0xc105ce5;
  /// Pull SNAPSHOT_DELTA patches (wire v6) against the last acked epoch
  /// instead of full snapshots. Peers pinned below v6 and snapshot kinds
  /// without delta support fall back to full pulls automatically; any
  /// refused patch resyncs with a full snapshot in the same round.
  bool use_deltas = true;
  /// Wire dialect to speak to peers (net::ClientOptions::wire_version —
  /// there is no in-band negotiation). Pin below 6 while a fleet still
  /// runs older edges; the supervisor then stays on full-snapshot pulls
  /// and logs that the pinned dialect forced it.
  uint64_t wire_version = net::kWireProtocolVersion;
};

/// The jittered backoff delay before retry number `consecutive_failures`
/// (>= 1). Exposed for unit tests; `rng` advances one draw per call.
int64_t BackoffDelayMs(const SupervisorOptions& options,
                       int consecutive_failures, Rng& rng);

/// Read-only view of one peer for status reporting and tests.
struct PeerStatus {
  std::string name;
  PeerHealth health = PeerHealth::kHealthy;
  int consecutive_failures = 0;
  /// Last successfully pulled epoch (the edge's tuples_seen).
  uint64_t epoch = 0;
  /// Milliseconds since the last successful pull; -1 before the first.
  int64_t last_success_age_ms = -1;
  /// Times the peer's epoch went backwards — an edge restart that
  /// rejoined from an older checkpoint.
  uint64_t epoch_regressions = 0;
  std::string last_error;
};

/// What one poll round did (tests drive PollOnce directly off these).
struct PollStats {
  int attempted = 0;  // peers whose backoff window was due
  int succeeded = 0;
  int failed = 0;
  /// True when the round changed any contribution (new epoch/snapshot,
  /// or a peer entered/left the fold) and a refold was scheduled.
  bool refolded = false;
  /// Per-fold-unit pull outcomes this round: patches applied to a twin,
  /// full snapshots shipped, and fulls that replaced an established
  /// delta baseline (edge restarted, baseline evicted, patch refused).
  int delta_pulls = 0;
  int full_pulls = 0;
  int resyncs = 0;
};

/// Runs a fold closure; see the threading note above.
using TaskRunner = std::function<void(std::function<void()>)>;

class AggregatorSupervisor {
 public:
  /// The engine is borrowed and must outlive the supervisor. With the
  /// default (inline) runner the supervisor may touch it from the poll
  /// thread; pass a Server::InjectTask-backed runner when the engine is
  /// simultaneously being served.
  AggregatorSupervisor(QueryEngine* aggregate, std::vector<PeerConfig> peers,
                       SupervisorOptions options = SupervisorOptions(),
                       TaskRunner fold_runner = TaskRunner());

  ~AggregatorSupervisor();

  AggregatorSupervisor(const AggregatorSupervisor&) = delete;
  AggregatorSupervisor& operator=(const AggregatorSupervisor&) = delete;

  /// Captures the aggregate engine's own pre-supervision state (a locally
  /// ingested CSV, a restored checkpoint) as a base contribution included
  /// in every refold. Call once, before any poll, while the engine is
  /// still safe to touch from this thread.
  Status Init();

  /// One supervision round at (monotonic) time `now_ms`: attempts every
  /// peer whose backoff window is due, updates health states and metrics,
  /// and schedules a refold if any contribution changed. Tests pass a
  /// synthetic clock to step through backoff and staleness transitions
  /// deterministically; Start() feeds the real one.
  PollStats PollOnce(int64_t now_ms);
  PollStats PollOnce();

  /// Runs PollOnce on an internal thread until Stop(). Idempotent.
  void Start();
  void Stop();

  /// When the next peer attempt is due (for the internal sleep and for
  /// tests); now + poll interval when nothing is pending.
  int64_t NextAttemptAtMs(int64_t now_ms) const;

  std::vector<PeerStatus> PeerStatuses() const;

  /// Human-readable exclusion report: one line per STALE peer. Wire this
  /// into ServerOptions::query_warnings so remote QUERY readers see that
  /// the aggregate is a partial view. Thread-safe.
  std::vector<std::string> QueryWarnings() const;

  /// Completed refolds (mirrors implistat_cluster_folds_total).
  uint64_t folds_completed() const;

 private:
  struct Peer;
  struct Metrics;

  // Pulls every fold unit's snapshot from `peer`; OK only if all arrive.
  // Pull-mode counts and resyncs are tallied into `stats`.
  Status PullPeer(Peer& peer, int64_t now_ms, PollStats* stats);
  // One fold unit's delta-aware pull: requests a patch against the acked
  // baseline, folds it into the peer's twin estimator, and returns the
  // full serialized state the refold uses (byte-identical to what a full
  // SNAPSHOT would have shipped). Refusals resync via a full pull.
  StatusOr<std::string> PullUnitDelta(Peer& peer, size_t unit_index,
                                      uint32_t query_id, uint64_t* epoch,
                                      PollStats* stats);
  void ScheduleRefold(int64_t now_ms);
  void RunLoop();

  QueryEngine* engine_;
  SupervisorOptions options_;
  TaskRunner fold_runner_;
  /// The aggregate engine's fold units, captured at Init(): one per live
  /// synopsis, addressed over the wire by its representative query id.
  /// Folding per unit (not per query) means a synopsis shared by n
  /// queries is pulled and refolded exactly once per round instead of n
  /// times — and can never double-count.
  std::vector<QueryEngine::FoldUnit> fold_units_;

  // Base contribution (the engine's own pre-supervision state).
  std::vector<std::string> base_snapshots_;
  uint64_t base_tuples_ = 0;
  bool initialized_ = false;

  // Poll-thread state: peers (clients, snapshots, schedule) and jitter.
  std::vector<std::unique_ptr<Peer>> peers_;
  Rng jitter_rng_;
  bool fold_dirty_ = false;

  // Reader-visible state is guarded by mu_ (PollOnce writes, any thread
  // reads); folds_completed_ is written by the fold closure, which may
  // run on a different thread than the poller.
  mutable std::mutex mu_;
  std::shared_ptr<std::atomic<uint64_t>> folds_completed_ =
      std::make_shared<std::atomic<uint64_t>>(0);

  // Run loop machinery.
  std::thread thread_;
  std::mutex loop_mu_;
  std::condition_variable loop_cv_;
  bool stop_requested_ = false;

  const Metrics* metrics_ = nullptr;
};

}  // namespace implistat::cluster

#endif  // IMPLISTAT_CLUSTER_SUPERVISOR_H_
