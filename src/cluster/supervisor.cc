#include "cluster/supervisor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <utility>

#include "delta/delta.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace implistat::cluster {

namespace {

int64_t MonotonicNowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

StatusOr<PeerConfig> ParsePeerSpec(std::string_view spec) {
  size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    return Status::InvalidArgument("peer spec must be host:port, got '" +
                                   std::string(spec) + "'");
  }
  PeerConfig config;
  config.host = std::string(spec.substr(0, colon));
  std::string port_text(spec.substr(colon + 1));
  char* end = nullptr;
  long port = std::strtol(port_text.c_str(), &end, 10);
  if (end == port_text.c_str() || *end != '\0' || port <= 0 || port > 65535) {
    return Status::InvalidArgument("bad peer port in '" + std::string(spec) +
                                   "'");
  }
  config.port = static_cast<uint16_t>(port);
  config.name = std::string(spec);
  return config;
}

const char* PeerHealthName(PeerHealth health) {
  switch (health) {
    case PeerHealth::kHealthy:
      return "HEALTHY";
    case PeerHealth::kDegraded:
      return "DEGRADED";
    case PeerHealth::kStale:
      return "STALE";
  }
  return "UNKNOWN";
}

int64_t BackoffDelayMs(const SupervisorOptions& options,
                       int consecutive_failures, Rng& rng) {
  int64_t delay = options.backoff_initial_ms;
  for (int i = 1; i < consecutive_failures && delay < options.backoff_max_ms;
       ++i) {
    delay = std::min(options.backoff_max_ms, delay * 2);
  }
  delay = std::min(delay, options.backoff_max_ms);
  if (delay <= 0) {
    rng.Next64();  // keep the one-draw-per-call contract
    return 0;
  }
  int64_t half = delay / 2;
  return half +
         static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(delay - half) + 1));
}

// Unlabelled cluster-wide handles; per-peer gauges live on each Peer.
struct AggregatorSupervisor::Metrics {
  obs::Counter* folds_total;
  obs::Counter* fold_errors_total;
  obs::Counter* refolds_skipped_total;
  obs::Counter* pulls_total;
  obs::Counter* pull_failures_total;
  obs::Counter* snapshot_bytes_total;
  obs::Counter* delta_bytes_total;
  obs::Counter* delta_resyncs_total;

  static const Metrics* Get() {
    static const Metrics* m = [] {
      auto& reg = obs::MetricsRegistry::Global();
      auto* metrics = new Metrics();
      metrics->folds_total = reg.GetCounter(
          "implistat_cluster_folds_total",
          "Completed replace-then-refold passes over the aggregate engine");
      metrics->fold_errors_total = reg.GetCounter(
          "implistat_cluster_fold_errors_total",
          "Refold passes that failed and left the previous aggregate in place");
      metrics->refolds_skipped_total = reg.GetCounter(
          "implistat_cluster_refolds_skipped_total",
          "Successful poll rounds that changed nothing (epochs unchanged)");
      metrics->pulls_total =
          reg.GetCounter("implistat_cluster_pulls_total",
                         "SNAPSHOT pull attempts across all peers");
      metrics->pull_failures_total =
          reg.GetCounter("implistat_cluster_pull_failures_total",
                         "SNAPSHOT pull attempts that failed");
      metrics->snapshot_bytes_total = reg.GetCounter(
          "implistat_snapshot_bytes_total",
          "Bytes received as full snapshot payloads across all peers");
      metrics->delta_bytes_total = reg.GetCounter(
          "implistat_delta_bytes_total",
          "Bytes received as SNAPSHOT_DELTA patch payloads across all peers");
      metrics->delta_resyncs_total = reg.GetCounter(
          "implistat_delta_resyncs_total",
          "Full snapshots that replaced an established delta baseline "
          "(edge restart, evicted baseline, or refused patch)");
      return metrics;
    }();
    return m;
  }
};

struct AggregatorSupervisor::Peer {
  PeerConfig config;
  std::optional<net::Client> client;

  // Contribution: the latest full set of per-query snapshots, keyed by
  // the epoch they were serialized at. Poll-thread only.
  std::vector<std::string> snapshots;
  bool has_contribution = false;

  // Delta shipping state, one slot per fold unit (poll-thread only): the
  // twin mirrors the peer's estimator so SNAPSHOT_DELTA patches fold
  // locally, and acked_epoch names the baseline the next pull builds on.
  struct UnitState {
    std::unique_ptr<ImplicationEstimator> twin;
    uint64_t acked_epoch = 0;
    bool delta_capable = true;  // false: the kind has no delta materializer
  };
  std::vector<UnitState> units;
  bool logged_full_mode = false;

  // Reader-visible fields (guarded by the supervisor's mu_).
  PeerHealth health = PeerHealth::kHealthy;
  int consecutive_failures = 0;
  uint64_t epoch = 0;
  int64_t last_success_ms = -1;
  uint64_t epoch_regressions = 0;
  std::string last_error;

  // Schedule (poll-thread only).
  int64_t next_attempt_ms = 0;

  // Per-peer metric handles (label: peer name).
  obs::Gauge* age_gauge = nullptr;
  obs::Gauge* failures_gauge = nullptr;
  obs::Gauge* health_gauge = nullptr;
  obs::Counter* regressions_total = nullptr;
};

AggregatorSupervisor::AggregatorSupervisor(QueryEngine* aggregate,
                                           std::vector<PeerConfig> peers,
                                           SupervisorOptions options,
                                           TaskRunner fold_runner)
    : engine_(aggregate),
      options_(options),
      fold_runner_(std::move(fold_runner)),
      jitter_rng_(SplitMix64(options.jitter_seed)) {
  if (!fold_runner_) {
    fold_runner_ = [](std::function<void()> task) { task(); };
  }
  metrics_ = Metrics::Get();
  auto& reg = obs::MetricsRegistry::Global();
  for (PeerConfig& config : peers) {
    auto peer = std::make_unique<Peer>();
    if (config.name.empty()) {
      config.name = config.host + ":" + std::to_string(config.port);
    }
    peer->config = std::move(config);
    const std::string& name = peer->config.name;
    peer->age_gauge = reg.GetGauge(
        "implistat_peer_last_success_age_ms",
        "Milliseconds since the last successful snapshot pull (-1: never)",
        "peer", name);
    peer->age_gauge->Set(-1);
    peer->failures_gauge = reg.GetGauge(
        "implistat_peer_consecutive_failures",
        "Consecutive failed pull attempts against this peer", "peer", name);
    peer->health_gauge = reg.GetGauge(
        "implistat_peer_health",
        "Peer health state: 0 HEALTHY, 1 DEGRADED, 2 STALE", "peer", name);
    peer->regressions_total = reg.GetCounter(
        "implistat_peer_epoch_regressions_total",
        "Pulls whose epoch went backwards (edge restarted from checkpoint)",
        "peer", name);
    peers_.push_back(std::move(peer));
  }
}

AggregatorSupervisor::~AggregatorSupervisor() { Stop(); }

Status AggregatorSupervisor::Init() {
  if (initialized_) {
    return Status::FailedPrecondition("supervisor already initialized");
  }
  fold_units_ = engine_->FoldUnits();
  if (fold_units_.empty()) {
    return Status::FailedPrecondition(
        "aggregate engine has no registered queries to supervise");
  }
  if (engine_->tuples_seen() > 0) {
    base_tuples_ = engine_->tuples_seen();
    base_snapshots_.reserve(fold_units_.size());
    for (const QueryEngine::FoldUnit& unit : fold_units_) {
      IMPLISTAT_ASSIGN_OR_RETURN(const ImplicationEstimator* estimator,
                                 engine_->Estimator(unit.representative));
      IMPLISTAT_ASSIGN_OR_RETURN(std::string state,
                                 estimator->SerializeState());
      base_snapshots_.push_back(std::move(state));
    }
  }
  initialized_ = true;
  return Status::OK();
}

StatusOr<std::string> AggregatorSupervisor::PullUnitDelta(Peer& peer,
                                                          size_t unit_index,
                                                          uint32_t query_id,
                                                          uint64_t* epoch,
                                                          PollStats* stats) {
  Peer::UnitState& state = peer.units[unit_index];
  const uint64_t since = state.twin != nullptr ? state.acked_epoch : 0;
  auto response = peer.client->SnapshotDelta(query_id, since, net::kDeltaCapRle);
  if (!response.ok()) return response.status();
  if (response->is_delta && since == 0) {
    return Status::InvalidArgument(
        "peer answered a bootstrap (since_epoch 0) pull with a delta");
  }
  // True once an established baseline had to be replaced by a full
  // snapshot — the resync the metrics and stats count.
  bool lost_baseline = false;
  if (response->is_delta) {
    StatusOr<DeltaInfo> applied =
        ApplyDeltaSnapshot(state.twin.get(), response->state, since);
    if (applied.ok()) {
      ++stats->delta_pulls;
      metrics_->delta_bytes_total->Increment(response->state.size());
      state.acked_epoch = response->epoch;
      *epoch = response->epoch;
      // The twin now mirrors the edge exactly, so its serialized state is
      // the same bytes a full SNAPSHOT would have shipped — the fold path
      // below cannot tell the difference.
      return state.twin->SerializeState();
    }
    // Refused patch (corrupt, wrong base, stale twin): drop the baseline
    // and resync with an explicit full pull in this same round rather
    // than serving a stale contribution until the next one.
    obs::LogEvent(obs::LogLevel::kWarn, "cluster", "delta_refused")
        .Str("peer", peer.config.name)
        .U64("query", query_id)
        .Str("error", applied.status().ToString());
    state.twin.reset();
    state.acked_epoch = 0;
    lost_baseline = true;
    response = peer.client->SnapshotDelta(query_id, 0, net::kDeltaCapRle);
    if (!response.ok()) return response.status();
    if (response->is_delta) {
      return Status::InvalidArgument(
          "peer answered a full-resync (since_epoch 0) pull with a delta");
    }
  } else if (since != 0) {
    // We asked for a patch and got a full snapshot: the edge restarted,
    // its epoch regressed, or our baseline fell off its mark window.
    lost_baseline = true;
  }

  ++stats->full_pulls;
  metrics_->snapshot_bytes_total->Increment(response->state.size());
  if (lost_baseline) {
    ++stats->resyncs;
    metrics_->delta_resyncs_total->Increment();
  }
  // Rebuild the twin from the full snapshot so the next round can patch.
  StatusOr<std::unique_ptr<ImplicationEstimator>> twin =
      MaterializeEstimator(response->state);
  if (twin.ok()) {
    state.twin = std::move(*twin);
    state.acked_epoch = response->epoch;
  } else if (twin.status().code() == StatusCode::kUnimplemented) {
    // Snapshot kind without delta support: stay on plain full pulls.
    state.delta_capable = false;
    state.twin.reset();
    state.acked_epoch = 0;
  } else {
    return twin.status();
  }
  *epoch = response->epoch;
  return std::move(response)->state;
}

Status AggregatorSupervisor::PullPeer(Peer& peer, int64_t now_ms,
                                      PollStats* stats) {
  (void)now_ms;
  if (!peer.client.has_value()) {
    net::ClientOptions client_options;
    client_options.connect_timeout_ms = options_.connect_timeout_ms;
    client_options.request_timeout_ms = options_.rpc_deadline_ms;
    client_options.wire_version = options_.wire_version;
    auto connected = net::Client::Connect(peer.config.host, peer.config.port,
                                          client_options);
    if (!connected.ok()) return connected.status();
    peer.client.emplace(std::move(connected).value());
  } else if (peer.client->connection_lost()) {
    IMPLISTAT_RETURN_NOT_OK(peer.client->Reconnect());
  }

  const bool deltas_enabled =
      options_.use_deltas && peer.client->negotiated_version() >= 6;
  if (options_.use_deltas && !deltas_enabled && !peer.logged_full_mode) {
    // The pinned dialect predates SNAPSHOT_DELTA — say so once per peer
    // so an operator can see why this edge ships full snapshots.
    obs::LogEvent(obs::LogLevel::kInfo, "cluster", "delta_unsupported")
        .Str("peer", peer.config.name)
        .U64("negotiated_version", peer.client->negotiated_version());
    peer.logged_full_mode = true;
  }
  if (peer.units.size() != fold_units_.size()) {
    peer.units.clear();
    peer.units.resize(fold_units_.size());
  }

  // Pull one snapshot per fold unit, addressed by the unit's
  // representative query id (the wire names estimator state by query;
  // the edge resolves it to the same shared synopsis). The edge may keep
  // ingesting between the per-unit round trips, so the epochs can differ
  // slightly; the set is keyed by the last one (refolds are estimates
  // over near-simultaneous views, and the next poll replaces the set
  // wholesale anyway).
  uint64_t epoch = 0;
  std::vector<std::string> snapshots;
  snapshots.reserve(fold_units_.size());
  for (size_t u = 0; u < fold_units_.size(); ++u) {
    const uint32_t query_id =
        static_cast<uint32_t>(fold_units_[u].representative);
    Peer::UnitState& state = peer.units[u];
    if (deltas_enabled && state.delta_capable) {
      IMPLISTAT_ASSIGN_OR_RETURN(
          std::string full, PullUnitDelta(peer, u, query_id, &epoch, stats));
      snapshots.push_back(std::move(full));
      continue;
    }
    auto response = peer.client->Snapshot(query_id);
    if (!response.ok()) return response.status();
    ++stats->full_pulls;
    metrics_->snapshot_bytes_total->Increment(response->state.size());
    epoch = response->epoch;
    snapshots.push_back(std::move(response->state));
  }

  bool changed = !peer.has_contribution || epoch != peer.epoch ||
                 snapshots != peer.snapshots;
  bool was_included = peer.has_contribution && peer.health != PeerHealth::kStale;
  if (peer.has_contribution && epoch < peer.epoch) {
    peer.regressions_total->Increment();
    obs::LogEvent(obs::LogLevel::kInfo, "cluster", "epoch_regression")
        .Str("peer", peer.config.name)
        .U64("previous_epoch", peer.epoch)
        .U64("epoch", epoch);
    std::lock_guard<std::mutex> lock(mu_);
    ++peer.epoch_regressions;
  }
  peer.snapshots = std::move(snapshots);
  peer.has_contribution = true;
  if (changed || !was_included) {
    fold_dirty_ = true;
  } else {
    metrics_->refolds_skipped_total->Increment();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    peer.epoch = epoch;
  }
  return Status::OK();
}

void AggregatorSupervisor::ScheduleRefold(int64_t now_ms) {
  (void)now_ms;
  // Assemble the fold input: base contribution plus every included
  // (non-STALE, pulled-at-least-once) peer's latest snapshots. Copies are
  // taken so the closure is self-contained — it may run later, on another
  // thread (Server::InjectTask), after peers_ has moved on.
  const size_t num_units = fold_units_.size();
  auto per_unit = std::make_shared<std::vector<std::vector<std::string>>>();
  per_unit->resize(num_units);
  uint64_t total_tuples = base_tuples_;
  for (size_t u = 0; u < num_units; ++u) {
    if (!base_snapshots_.empty()) {
      (*per_unit)[u].push_back(base_snapshots_[u]);
    }
  }
  for (const auto& peer : peers_) {
    if (!peer->has_contribution || peer->health == PeerHealth::kStale) {
      continue;
    }
    total_tuples += peer->epoch;
    for (size_t u = 0; u < num_units; ++u) {
      (*per_unit)[u].push_back(peer->snapshots[u]);
    }
  }

  QueryEngine* engine = engine_;
  const Metrics* metrics = metrics_;
  auto folds_completed = folds_completed_;
  // Copied so the closure stays self-contained off-thread.
  std::vector<QueryEngine::FoldUnit> fold_units = fold_units_;
  // The fold may run later on another thread (Server::InjectTask), where
  // the poll span is no longer on the stack — so its context is captured
  // by value and handed to the fold span as an explicit parent, keeping
  // the whole poll -> pull -> fold chain on one trace id.
  const obs::SpanContext poll_context = obs::Tracer::CurrentContext();
  fold_runner_([engine, metrics, folds_completed, fold_units, per_unit,
                total_tuples, poll_context] {
    obs::ScopedSpan span("cluster.fold", "cluster", poll_context);
    span.Annotate("fold_units", static_cast<uint64_t>(fold_units.size()));
    span.Annotate("tuples", total_tuples);
    bool ok = true;
    for (size_t u = 0; u < fold_units.size(); ++u) {
      const std::vector<std::string>& contributions = (*per_unit)[u];
      std::vector<std::string_view> views(contributions.begin(),
                                          contributions.end());
      // Keyed by synopsis: every query sharing it sees this one fold.
      Status status =
          engine->RefoldSynopsisState(fold_units[u].synopsis, views);
      if (!status.ok()) {
        obs::LogEvent(obs::LogLevel::kError, "cluster", "refold_failed")
            .U64("synopsis", static_cast<uint64_t>(fold_units[u].synopsis))
            .Str("error", status.ToString());
        ok = false;
      }
    }
    if (ok) {
      engine->SetTuplesSeen(total_tuples);
      metrics->folds_total->Increment();
      folds_completed->fetch_add(1, std::memory_order_release);
    } else {
      metrics->fold_errors_total->Increment();
    }
  });
}

PollStats AggregatorSupervisor::PollOnce(int64_t now_ms) {
  IMPLISTAT_CHECK(initialized_) << "PollOnce before Init()";
  PollStats stats;
  // The round's root span; per-peer pulls (and the fold the round
  // schedules) hang off it, so one poll reads as one trace covering the
  // whole fan-out.
  obs::ScopedSpan poll_span("cluster.poll", "cluster");
  for (auto& peer_ptr : peers_) {
    Peer& peer = *peer_ptr;
    if (now_ms < peer.next_attempt_ms) continue;
    ++stats.attempted;
    metrics_->pulls_total->Increment();
    Status status;
    {
      obs::ScopedSpan pull_span("cluster.pull", "cluster");
      pull_span.SetDetail(peer.config.name.c_str());
      status = PullPeer(peer, now_ms, &stats);
    }
    const PeerHealth previous_health = peer.health;
    std::lock_guard<std::mutex> lock(mu_);
    if (status.ok()) {
      ++stats.succeeded;
      bool was_stale = peer.health == PeerHealth::kStale;
      peer.health = PeerHealth::kHealthy;
      peer.consecutive_failures = 0;
      peer.last_success_ms = now_ms;
      peer.last_error.clear();
      peer.next_attempt_ms = now_ms + options_.poll_interval_ms;
      if (was_stale) fold_dirty_ = true;  // re-inclusion changes the fold
    } else {
      ++stats.failed;
      metrics_->pull_failures_total->Increment();
      ++peer.consecutive_failures;
      bool was_included =
          peer.has_contribution && peer.health != PeerHealth::kStale;
      peer.health = peer.consecutive_failures >= options_.stale_after_failures
                        ? PeerHealth::kStale
                        : PeerHealth::kDegraded;
      if (was_included && peer.health == PeerHealth::kStale) {
        fold_dirty_ = true;  // exclusion changes the fold
      }
      peer.last_error = status.ToString();
      peer.next_attempt_ms =
          now_ms +
          BackoffDelayMs(options_, peer.consecutive_failures, jitter_rng_);
    }
    if (peer.health != previous_health) {
      // STALE means the peer left the fold — that is operator-visible
      // (warn); the intermediate downgrade and the recovery are info.
      obs::LogEvent(peer.health == PeerHealth::kStale ? obs::LogLevel::kWarn
                                                      : obs::LogLevel::kInfo,
                    "cluster", "peer_health")
          .Str("peer", peer.config.name)
          .Str("from", PeerHealthName(previous_health))
          .Str("to", PeerHealthName(peer.health))
          .U64("consecutive_failures",
               static_cast<uint64_t>(peer.consecutive_failures))
          .Str("last_error", peer.last_error);
    }
    peer.failures_gauge->Set(peer.consecutive_failures);
    peer.health_gauge->Set(static_cast<int64_t>(peer.health));
  }
  for (auto& peer_ptr : peers_) {
    Peer& peer = *peer_ptr;
    std::lock_guard<std::mutex> lock(mu_);
    peer.age_gauge->Set(peer.last_success_ms < 0 ? -1
                                                 : now_ms - peer.last_success_ms);
  }
  if (fold_dirty_) {
    fold_dirty_ = false;
    stats.refolded = true;
    ScheduleRefold(now_ms);
  }
  return stats;
}

PollStats AggregatorSupervisor::PollOnce() { return PollOnce(MonotonicNowMs()); }

int64_t AggregatorSupervisor::NextAttemptAtMs(int64_t now_ms) const {
  int64_t next = now_ms + options_.poll_interval_ms;
  for (const auto& peer : peers_) {
    next = std::min(next, peer->next_attempt_ms);
  }
  return std::max(next, now_ms);
}

void AggregatorSupervisor::Start() {
  if (thread_.joinable()) return;
  {
    std::lock_guard<std::mutex> lock(loop_mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { RunLoop(); });
}

void AggregatorSupervisor::Stop() {
  {
    std::lock_guard<std::mutex> lock(loop_mu_);
    stop_requested_ = true;
  }
  loop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void AggregatorSupervisor::RunLoop() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(loop_mu_);
      if (stop_requested_) return;
    }
    int64_t now = MonotonicNowMs();
    PollOnce(now);
    int64_t wake_at = NextAttemptAtMs(MonotonicNowMs());
    int64_t sleep_ms = std::max<int64_t>(wake_at - MonotonicNowMs(), 10);
    std::unique_lock<std::mutex> lock(loop_mu_);
    loop_cv_.wait_for(lock, std::chrono::milliseconds(sleep_ms),
                      [this] { return stop_requested_; });
    if (stop_requested_) return;
  }
}

std::vector<PeerStatus> AggregatorSupervisor::PeerStatuses() const {
  int64_t now = MonotonicNowMs();
  std::vector<PeerStatus> statuses;
  statuses.reserve(peers_.size());
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& peer : peers_) {
    PeerStatus status;
    status.name = peer->config.name;
    status.health = peer->health;
    status.consecutive_failures = peer->consecutive_failures;
    status.epoch = peer->epoch;
    status.last_success_age_ms =
        peer->last_success_ms < 0 ? -1 : now - peer->last_success_ms;
    status.epoch_regressions = peer->epoch_regressions;
    status.last_error = peer->last_error;
    statuses.push_back(std::move(status));
  }
  return statuses;
}

std::vector<std::string> AggregatorSupervisor::QueryWarnings() const {
  std::vector<std::string> warnings;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& peer : peers_) {
    if (peer->health != PeerHealth::kStale) continue;
    std::ostringstream line;
    line << "peer " << peer->config.name
         << " STALE: excluded from aggregate (consecutive_failures="
         << peer->consecutive_failures;
    if (!peer->last_error.empty()) {
      line << ", last error: " << peer->last_error;
    }
    line << ")";
    warnings.push_back(line.str());
  }
  return warnings;
}

uint64_t AggregatorSupervisor::folds_completed() const {
  return folds_completed_->load(std::memory_order_acquire);
}

}  // namespace implistat::cluster
