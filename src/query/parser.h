// Parser for the paper's SQL-like implication query format (§3):
//
//   SELECT COUNT(DISTINCT Destination) FROM traffic
//   WHERE Destination IMPLIES Source
//     AND Time = 'Morning'
//   WITH K = 1, SUPPORT = 5, CONFIDENCE = 0.8, C = 1
//
// Grammar (keywords case-insensitive; [] optional):
//
//   query    := SELECT COUNT '(' DISTINCT attrs ')' FROM ident
//               WHERE [NOT] attrs IMPLIES attrs (AND cond)*
//               [WITH param (',' param)*]
//   attrs    := ident (',' ident)*
//   cond     := ident ('=' | '!=') value
//   param    := (K | MULTIPLICITY) '=' int
//             | (SUPPORT | SIGMA)  '=' int
//             | (CONFIDENCE | GAMMA) '=' float
//             | (C | TOP) '=' int
//             | STRICT '=' bool
//             | ESTIMATOR '=' (NIPS | EXACT | DS | ILC | ISS)
//             | WINDOW '=' int            -- sliding window, in tuples
//             | STRIDE '=' int            -- window granularity
//
// `NOT ... IMPLIES` asks for the complement (non-implication) count.
// Values in conditions are either 'quoted strings' (resolved against the
// attribute's dictionary) or bare integers (taken as value ids).
//
// Parsing is split from binding: Parse() needs no schema and returns a
// ParsedQuery; Bind() resolves attribute names and condition values
// against a schema (and optional dictionaries) into an
// ImplicationQuerySpec ready for QueryEngine::Register.

#ifndef IMPLISTAT_QUERY_PARSER_H_
#define IMPLISTAT_QUERY_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "query/query.h"
#include "stream/value_dictionary.h"

namespace implistat {

struct TextCondition {
  std::string attribute;
  bool negated = false;  // '!=' instead of '='
  std::string value;
  bool quoted = false;  // value came from a quoted string literal
};

struct ParsedQuery {
  std::vector<std::string> count_attributes;  // SELECT COUNT(DISTINCT ...)
  std::string relation;                       // FROM ...
  std::vector<std::string> a_attributes;      // lhs of IMPLIES
  std::vector<std::string> b_attributes;      // rhs of IMPLIES
  bool complement = false;                    // NOT ... IMPLIES
  std::vector<TextCondition> conditions;      // AND attr = value
  ImplicationConditions implication;          // WITH parameters
  EstimatorKind estimator = EstimatorKind::kNipsCi;
  uint64_t window = 0;  // WITH WINDOW = n (tuples); 0 = lifetime
  uint64_t stride = 0;  // WITH STRIDE = n
};

/// Parses the query text. Defaults when WITH is absent: K=1, SUPPORT=1,
/// CONFIDENCE=1.0, C=1, STRICT=true, ESTIMATOR=NIPS.
StatusOr<ParsedQuery> ParseImplicationQuery(std::string_view text);

/// Binds a parsed query against `schema`. Condition values are resolved
/// through `dictionaries` (one per attribute, may be null — then values
/// must be integer ids). The COUNT attribute list must equal the IMPLIES
/// left-hand side.
StatusOr<ImplicationQuerySpec> BindQuery(
    const ParsedQuery& parsed, const Schema& schema,
    const std::vector<ValueDictionary>* dictionaries);

}  // namespace implistat

#endif  // IMPLISTAT_QUERY_PARSER_H_
