// SynopsisStore: shared ownership of estimator state across registered
// queries.
//
// The paper's constrained-environment premise (§1, §4.6: memory is the
// scarce resource) breaks down when every registered query owns a private
// estimator — at thousands of overlapping queries both memory and the
// ingest hot path grow linearly even though many queries maintain the
// same statistic. The store fixes the ownership model: an estimator
// ("synopsis") is keyed by everything that determines the bytes it will
// ever hold —
//
//   (A attribute indices, B attribute indices, WHERE predicate bytes,
//    implication conditions, estimator config)
//
// — and reference-counted by the queries bound to it. Two queries whose
// keys match share one synopsis and observe the stream once; their
// answers are byte-identical to dedicated runs because the estimator is
// deterministic in (config, observation sequence) and the key pins both.
// The complement flag and the label are deliberately OUTSIDE the key:
// the same synopsis answers S and ~S, and labels are reporting-only.
//
// Entries are addressed by a dense SynopsisId assigned in first-creation
// order; ids never shift (a released entry leaves a tombstone), so
// checkpoints, cluster fold units and metrics can reference synopses
// stably. When the last reference drops, the estimator is destroyed and
// its memory returns — the tombstone costs a few hundred bytes, not a
// bitmap ensemble.

#ifndef IMPLISTAT_QUERY_SYNOPSIS_STORE_H_
#define IMPLISTAT_QUERY_SYNOPSIS_STORE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "query/query.h"
#include "stream/itemset.h"
#include "stream/schema.h"
#include "util/status_or.h"

namespace implistat {

using SynopsisId = int;

/// Canonical key bytes for a synopsis: an unambiguous serialization of
/// everything that determines estimator state. Specs that agree on this
/// key would hold bit-identical estimators after any stream, so they can
/// share one.
std::string CanonicalSynopsisKey(const AttributeSet& a_set,
                                 const AttributeSet& b_set,
                                 const Predicate* where,
                                 const ImplicationConditions& conditions,
                                 const EstimatorConfig& config);

/// One shared synopsis: the projection packers, the WHERE filter and the
/// estimator every bound query reads through. `estimator == nullptr`
/// marks a tombstone (all references released).
struct SynopsisEntry {
  std::string key;
  AttributeSet a_set;
  AttributeSet b_set;
  ItemsetPacker a_packer;
  ItemsetPacker b_packer;
  std::shared_ptr<const Predicate> where;  // null = unconditional
  ImplicationConditions conditions;
  EstimatorConfig config;
  std::shared_ptr<ImplicationEstimator> estimator;
  int refcount = 0;

  bool live() const { return estimator != nullptr; }
};

class SynopsisStore {
 public:
  explicit SynopsisStore(const Schema* schema) : schema_(schema) {}

  SynopsisStore(const SynopsisStore&) = delete;
  SynopsisStore& operator=(const SynopsisStore&) = delete;
  SynopsisStore(SynopsisStore&&) = default;
  SynopsisStore& operator=(SynopsisStore&&) = default;

  /// The live entry whose key matches, or -1. Tombstones and entries
  /// shadowed by an earlier identical key (possible after restoring a
  /// no-sharing checkpoint) are not found.
  SynopsisId Find(const std::string& key) const;

  /// Builds a new entry (estimator constructed from conditions + config,
  /// instrumented like every engine-built estimator) with refcount 0; the
  /// caller binds queries via AddRef. The key is registered for Find only
  /// if no live entry already claims it.
  StatusOr<SynopsisId> Create(const AttributeSet& a_set,
                              const AttributeSet& b_set,
                              std::shared_ptr<const Predicate> where,
                              const ImplicationConditions& conditions,
                              const EstimatorConfig& config);

  /// Restore-path helper: appends a dead entry (no key, no estimator) so
  /// ids recreated from a checkpoint line up with its dense numbering.
  SynopsisId CreateTombstone();

  void AddRef(SynopsisId id);

  /// Drops one reference; at zero the estimator is destroyed (memory
  /// returns) and the id becomes a tombstone. Ids never shift.
  void Release(SynopsisId id);

  int size() const { return static_cast<int>(entries_.size()); }
  int num_live() const;

  SynopsisEntry& entry(SynopsisId id) { return entries_[id]; }
  const SynopsisEntry& entry(SynopsisId id) const { return entries_[id]; }
  std::vector<SynopsisEntry>& entries() { return entries_; }
  const std::vector<SynopsisEntry>& entries() const { return entries_; }

  /// Sum of MemoryBytes over live synopses — each shared estimator
  /// counted once, which is the point of the store.
  uint64_t TotalMemoryBytes() const;

  void Clear();

 private:
  const Schema* schema_;
  std::vector<SynopsisEntry> entries_;
  std::unordered_map<std::string, SynopsisId> by_key_;
};

}  // namespace implistat

#endif  // IMPLISTAT_QUERY_SYNOPSIS_STORE_H_
