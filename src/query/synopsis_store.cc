#include "query/synopsis_store.h"

#include <utility>

#include "obs/instrumented_estimator.h"
#include "obs/metrics.h"
#include "util/serde.h"

namespace implistat {

namespace {

struct StoreMetrics {
  obs::Counter* synopses_total;

  static const StoreMetrics& Get() {
    static const StoreMetrics metrics = [] {
      auto& reg = obs::MetricsRegistry::Global();
      return StoreMetrics{
          reg.GetCounter("implistat_synopses_total",
                         "Synopses (shared estimator instances) created"),
      };
    }();
    return metrics;
  }
};

}  // namespace

std::string CanonicalSynopsisKey(const AttributeSet& a_set,
                                 const AttributeSet& b_set,
                                 const Predicate* where,
                                 const ImplicationConditions& conditions,
                                 const EstimatorConfig& config) {
  // Lengths are prefixed so (a=[1], b=[2,3]) cannot collide with
  // (a=[1,2], b=[3]); the predicate's pre-order tree serialization and
  // the frozen config/conditions wire formats are canonical already.
  ByteWriter key;
  key.PutVarint64(static_cast<uint64_t>(a_set.size()));
  for (int index : a_set.indices()) {
    key.PutVarint64(static_cast<uint64_t>(index));
  }
  key.PutVarint64(static_cast<uint64_t>(b_set.size()));
  for (int index : b_set.indices()) {
    key.PutVarint64(static_cast<uint64_t>(index));
  }
  key.PutBool(where != nullptr);
  if (where != nullptr) where->SerializeTo(&key);
  conditions.SerializeTo(&key);
  config.SerializeTo(&key);
  return key.Release();
}

SynopsisId SynopsisStore::Find(const std::string& key) const {
  auto it = by_key_.find(key);
  if (it == by_key_.end()) return -1;
  return entries_[it->second].live() ? it->second : -1;
}

StatusOr<SynopsisId> SynopsisStore::Create(
    const AttributeSet& a_set, const AttributeSet& b_set,
    std::shared_ptr<const Predicate> where,
    const ImplicationConditions& conditions, const EstimatorConfig& config) {
  IMPLISTAT_ASSIGN_OR_RETURN(std::unique_ptr<ImplicationEstimator> estimator,
                             MakeEstimator(conditions, config));
  SynopsisEntry entry{
      CanonicalSynopsisKey(a_set, b_set, where.get(), conditions, config),
      a_set,
      b_set,
      ItemsetPacker(*schema_, a_set),
      ItemsetPacker(*schema_, b_set),
      std::move(where),
      conditions,
      config,
      // Same instrumentation wrap as the old per-query path, so
      // per-estimator ingest metrics survive the refactor.
      obs::MaybeInstrument(std::move(estimator)),
      0,
  };
  const SynopsisId id = static_cast<SynopsisId>(entries_.size());
  // First live claim wins the Find slot; duplicates (a restored
  // no-sharing checkpoint) stay addressable by id only.
  by_key_.emplace(entry.key, id);
  entries_.push_back(std::move(entry));
  StoreMetrics::Get().synopses_total->Increment();
  return id;
}

SynopsisId SynopsisStore::CreateTombstone() {
  const AttributeSet empty{std::vector<int>{}};
  entries_.push_back(SynopsisEntry{std::string(), empty, empty,
                                   ItemsetPacker(*schema_, empty),
                                   ItemsetPacker(*schema_, empty), nullptr,
                                   ImplicationConditions{}, EstimatorConfig{},
                                   nullptr, 0});
  return static_cast<SynopsisId>(entries_.size()) - 1;
}

void SynopsisStore::AddRef(SynopsisId id) { ++entries_[id].refcount; }

void SynopsisStore::Release(SynopsisId id) {
  SynopsisEntry& entry = entries_[id];
  if (--entry.refcount > 0) return;
  entry.estimator.reset();  // the memory returns; the id stays a tombstone
  auto it = by_key_.find(entry.key);
  if (it != by_key_.end() && it->second == id) by_key_.erase(it);
}

int SynopsisStore::num_live() const {
  int live = 0;
  for (const SynopsisEntry& entry : entries_) {
    if (entry.live()) ++live;
  }
  return live;
}

uint64_t SynopsisStore::TotalMemoryBytes() const {
  uint64_t total = 0;
  for (const SynopsisEntry& entry : entries_) {
    if (entry.live()) total += entry.estimator->MemoryBytes();
  }
  return total;
}

void SynopsisStore::Clear() {
  entries_.clear();
  by_key_.clear();
}

}  // namespace implistat
