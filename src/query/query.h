// Implication query specification.
//
// Expresses the paper's general query (§3)
//
//   SELECT COUNT(DISTINCT A) FROM R WHERE A implies B
//
// with the full Table 2 taxonomy:
//   * distinct count        — empty B (degenerates to F0 of A),
//   * one-to-one/one-to-many — via max_multiplicity / confidence_c,
//   * with noise            — via min_top_confidence < 1,
//   * complement            — count non-implications instead,
//   * conditional           — via a WHERE predicate on the tuple,
//   * compound              — by putting the grouping attribute into A
//                             (e.g. "one target per service" makes
//                             A = {Source, Service}).

#ifndef IMPLISTAT_QUERY_QUERY_H_
#define IMPLISTAT_QUERY_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "baseline/distinct_sampling.h"
#include "baseline/ilc.h"
#include "baseline/sticky_sampling.h"
#include "core/conditions.h"
#include "core/estimator.h"
#include "core/nips_ci_ensemble.h"
#include "query/predicate.h"
#include "stream/attribute_set.h"

namespace implistat {

enum class EstimatorKind {
  kNipsCi,            // the paper's algorithm (default)
  kExact,             // hash-table ground truth
  kDistinctSampling,  // DS baseline
  kIlc,               // Implication Lossy Counting baseline
  kIss,               // Implication Sticky Sampling baseline
};

struct EstimatorConfig {
  EstimatorKind kind = EstimatorKind::kNipsCi;
  /// Ingest worker threads for the NIPS/CI estimator. > 1 builds the
  /// sharded parallel pipeline (src/parallel/sharded_nips_ci.h) with
  /// min(threads, num_bitmaps) workers — estimates stay bit-identical to
  /// the sequential estimator. Ignored (sequential) for windowed queries
  /// and for the baseline estimators.
  int threads = 1;
  /// Sliding window in tuples; 0 = lifetime counts (§3.2). Windowed
  /// queries require the NIPS/CI estimator.
  uint64_t window = 0;
  /// Window granularity; defaults to window/8 (rounded up) when 0.
  uint64_t stride = 0;
  NipsCiOptions nips;
  DistinctSamplingOptions ds;
  IlcOptions ilc;
  StickySamplingOptions iss;

  /// Checkpoint wire format (raw fields, no envelope — configs only travel
  /// inside a kQueryEngine snapshot). Deserialize re-validates every field
  /// an estimator constructor would assert on, so a corrupt-but-CRC-valid
  /// checkpoint yields a Status instead of an abort.
  void SerializeTo(ByteWriter* out) const;
  static StatusOr<EstimatorConfig> Deserialize(ByteReader* in);
};

struct ImplicationQuerySpec {
  /// Attribute names of A (the counted side) and B (the implied side);
  /// resolved against the engine's schema. Must be disjoint and nonempty.
  std::vector<std::string> a_attributes;
  std::vector<std::string> b_attributes;
  ImplicationConditions conditions;
  /// Optional WHERE filter; null means unconditional.
  std::shared_ptr<const Predicate> where;
  /// Count non-implications (~S) instead of implications (S).
  bool complement = false;
  EstimatorConfig estimator;
  /// Optional human-readable label for reports. Registration rejects a
  /// non-empty label that another active query already carries.
  std::string label;
  /// Lets the engine answer this query by entailment bounds from
  /// already-maintained synopses (query/entailment.h) instead of
  /// allocating a dedicated estimator, when a sound derivation exists.
  /// Derived answers are flagged and carry [lower, upper] bounds rather
  /// than a byte-identical estimate, so this is opt-in. Not part of the
  /// frozen v1 spec wire format — it rides in the kQueryEngineV2
  /// checkpoint container instead (see engine.cc).
  bool allow_derived = false;

  /// Checkpoint wire format for the whole spec, WHERE clause included.
  /// `num_attributes` is the schema width the restored query will run
  /// over; predicate attribute indices are validated against it.
  void SerializeTo(ByteWriter* out) const;
  static StatusOr<ImplicationQuerySpec> Deserialize(ByteReader* in,
                                                    int num_attributes);
};

/// Builds the configured estimator. Fails for invalid combinations
/// (e.g. a window with a non-NIPS estimator).
StatusOr<std::unique_ptr<ImplicationEstimator>> MakeEstimator(
    const ImplicationConditions& conditions, const EstimatorConfig& config);

}  // namespace implistat

#endif  // IMPLISTAT_QUERY_QUERY_H_
