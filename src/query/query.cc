#include "query/query.h"

#include <algorithm>

#include "baseline/exact_counter.h"
#include "core/sliding.h"
#include "parallel/sharded_nips_ci.h"
#include "util/logging.h"

namespace implistat {

namespace {

// Shared field readers for the config wire format. Every value an
// estimator constructor IMPLISTAT_CHECKs is re-validated here so decoding
// hostile bytes returns a Status instead of aborting the process.

Status ReadHashKind(ByteReader* in, HashKind* out) {
  uint8_t byte;
  IMPLISTAT_RETURN_NOT_OK(in->ReadU8(&byte));
  if (byte > static_cast<uint8_t>(HashKind::kLinearGf2)) {
    return Status::InvalidArgument("estimator config: unknown hash kind");
  }
  *out = static_cast<HashKind>(byte);
  return Status::OK();
}

Status ReadUnitInterval(ByteReader* in, const char* what, double* out) {
  double v;
  IMPLISTAT_RETURN_NOT_OK(in->ReadDouble(&v));
  // Positively phrased so NaN (which fails every comparison) is rejected.
  if (!(v > 0.0 && v < 1.0)) {
    return Status::InvalidArgument(std::string("estimator config: ") + what +
                                   " outside (0, 1)");
  }
  *out = v;
  return Status::OK();
}

Status ReadI32(ByteReader* in, int* out) {
  uint32_t v;
  IMPLISTAT_RETURN_NOT_OK(in->ReadU32(&v));
  *out = static_cast<int32_t>(v);
  return Status::OK();
}

}  // namespace

void EstimatorConfig::SerializeTo(ByteWriter* out) const {
  out->PutU8(static_cast<uint8_t>(kind));
  out->PutVarint64(static_cast<uint64_t>(threads));
  out->PutVarint64(window);
  out->PutVarint64(stride);
  out->PutVarint64(static_cast<uint64_t>(nips.num_bitmaps));
  out->PutU32(static_cast<uint32_t>(nips.nips.fringe_size));
  out->PutU32(static_cast<uint32_t>(nips.nips.capacity_factor));
  out->PutU32(static_cast<uint32_t>(nips.nips.bitmap_bits));
  out->PutU8(static_cast<uint8_t>(nips.hash_kind));
  out->PutU64(nips.seed);
  out->PutVarint64(ds.max_sample_entries);
  out->PutVarint64(ds.per_value_bound);
  out->PutU8(static_cast<uint8_t>(ds.hash_kind));
  out->PutU64(ds.seed);
  out->PutDouble(ilc.epsilon);
  out->PutDouble(iss.epsilon);
  out->PutDouble(iss.delta);
  out->PutDouble(iss.support);
  out->PutU64(iss.seed);
}

StatusOr<EstimatorConfig> EstimatorConfig::Deserialize(ByteReader* in) {
  EstimatorConfig config;
  uint8_t kind_byte;
  IMPLISTAT_RETURN_NOT_OK(in->ReadU8(&kind_byte));
  if (kind_byte > static_cast<uint8_t>(EstimatorKind::kIss)) {
    return Status::InvalidArgument("estimator config: unknown kind");
  }
  config.kind = static_cast<EstimatorKind>(kind_byte);
  uint64_t threads;
  IMPLISTAT_RETURN_NOT_OK(in->ReadVarint64(&threads));
  if (threads < 1 || threads > (uint64_t{1} << 20)) {
    return Status::InvalidArgument("estimator config: bad thread count");
  }
  config.threads = static_cast<int>(threads);
  IMPLISTAT_RETURN_NOT_OK(in->ReadVarint64(&config.window));
  IMPLISTAT_RETURN_NOT_OK(in->ReadVarint64(&config.stride));
  // Window/stride geometry is re-checked by MakeEstimator (it returns a
  // Status, never aborts), so only the constructor-asserted fields need
  // explicit validation here.
  uint64_t num_bitmaps;
  IMPLISTAT_RETURN_NOT_OK(in->ReadVarint64(&num_bitmaps));
  if (num_bitmaps < 1 || num_bitmaps > (uint64_t{1} << 20) ||
      (num_bitmaps & (num_bitmaps - 1)) != 0) {
    return Status::InvalidArgument(
        "estimator config: num_bitmaps must be a power of two");
  }
  config.nips.num_bitmaps = static_cast<int>(num_bitmaps);
  IMPLISTAT_RETURN_NOT_OK(ReadI32(in, &config.nips.nips.fringe_size));
  if (config.nips.nips.fringe_size > 20) {
    return Status::InvalidArgument("estimator config: implausible fringe size");
  }
  IMPLISTAT_RETURN_NOT_OK(ReadI32(in, &config.nips.nips.capacity_factor));
  if (config.nips.nips.capacity_factor > (1 << 20)) {
    return Status::InvalidArgument(
        "estimator config: implausible capacity factor");
  }
  IMPLISTAT_RETURN_NOT_OK(ReadI32(in, &config.nips.nips.bitmap_bits));
  if (config.nips.nips.bitmap_bits < 1 || config.nips.nips.bitmap_bits > 64) {
    return Status::InvalidArgument(
        "estimator config: bitmap_bits outside [1, 64]");
  }
  IMPLISTAT_RETURN_NOT_OK(ReadHashKind(in, &config.nips.hash_kind));
  IMPLISTAT_RETURN_NOT_OK(in->ReadU64(&config.nips.seed));
  uint64_t max_entries;
  IMPLISTAT_RETURN_NOT_OK(in->ReadVarint64(&max_entries));
  if (max_entries < 1 || max_entries > (uint64_t{1} << 32)) {
    return Status::InvalidArgument(
        "estimator config: DS sample budget out of range");
  }
  config.ds.max_sample_entries = static_cast<size_t>(max_entries);
  uint64_t per_value;
  IMPLISTAT_RETURN_NOT_OK(in->ReadVarint64(&per_value));
  if (per_value > (uint64_t{1} << 32)) {
    return Status::InvalidArgument(
        "estimator config: DS per-value bound out of range");
  }
  config.ds.per_value_bound = static_cast<size_t>(per_value);
  IMPLISTAT_RETURN_NOT_OK(ReadHashKind(in, &config.ds.hash_kind));
  IMPLISTAT_RETURN_NOT_OK(in->ReadU64(&config.ds.seed));
  IMPLISTAT_RETURN_NOT_OK(ReadUnitInterval(in, "ILC epsilon",
                                           &config.ilc.epsilon));
  IMPLISTAT_RETURN_NOT_OK(ReadUnitInterval(in, "ISS epsilon",
                                           &config.iss.epsilon));
  IMPLISTAT_RETURN_NOT_OK(ReadUnitInterval(in, "ISS delta",
                                           &config.iss.delta));
  IMPLISTAT_RETURN_NOT_OK(ReadUnitInterval(in, "ISS support",
                                           &config.iss.support));
  IMPLISTAT_RETURN_NOT_OK(in->ReadU64(&config.iss.seed));
  return config;
}

void ImplicationQuerySpec::SerializeTo(ByteWriter* out) const {
  out->PutVarint64(a_attributes.size());
  for (const std::string& name : a_attributes) out->PutLengthPrefixed(name);
  out->PutVarint64(b_attributes.size());
  for (const std::string& name : b_attributes) out->PutLengthPrefixed(name);
  conditions.SerializeTo(out);
  out->PutBool(where != nullptr);
  if (where != nullptr) where->SerializeTo(out);
  out->PutBool(complement);
  estimator.SerializeTo(out);
  out->PutLengthPrefixed(label);
}

namespace {

Status ReadAttributeNames(ByteReader* in, const char* side,
                          std::vector<std::string>* out) {
  uint64_t count;
  IMPLISTAT_RETURN_NOT_OK(in->ReadVarint64(&count));
  if (count > in->remaining()) {  // every name costs >= 1 length byte
    return Status::InvalidArgument(std::string("query spec: implausible ") +
                                   side + " attribute count");
  }
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view name;
    IMPLISTAT_RETURN_NOT_OK(in->ReadLengthPrefixed(&name));
    out->emplace_back(name);
  }
  return Status::OK();
}

}  // namespace

StatusOr<ImplicationQuerySpec> ImplicationQuerySpec::Deserialize(
    ByteReader* in, int num_attributes) {
  ImplicationQuerySpec spec;
  IMPLISTAT_RETURN_NOT_OK(ReadAttributeNames(in, "A", &spec.a_attributes));
  IMPLISTAT_RETURN_NOT_OK(ReadAttributeNames(in, "B", &spec.b_attributes));
  IMPLISTAT_ASSIGN_OR_RETURN(spec.conditions,
                             ImplicationConditions::Deserialize(in));
  bool has_where;
  IMPLISTAT_RETURN_NOT_OK(in->ReadBool(&has_where));
  if (has_where) {
    IMPLISTAT_ASSIGN_OR_RETURN(spec.where,
                               DeserializePredicate(in, num_attributes));
  }
  IMPLISTAT_RETURN_NOT_OK(in->ReadBool(&spec.complement));
  IMPLISTAT_ASSIGN_OR_RETURN(spec.estimator, EstimatorConfig::Deserialize(in));
  std::string_view label;
  IMPLISTAT_RETURN_NOT_OK(in->ReadLengthPrefixed(&label));
  spec.label = std::string(label);
  return spec;
}

StatusOr<std::unique_ptr<ImplicationEstimator>> MakeEstimator(
    const ImplicationConditions& conditions, const EstimatorConfig& config) {
  if (config.window > 0) {
    if (config.kind != EstimatorKind::kNipsCi) {
      return Status::InvalidArgument(
          "windowed queries require the NIPS/CI estimator");
    }
    SlidingOptions sliding;
    sliding.window = config.window;
    sliding.stride =
        config.stride > 0 ? config.stride : (config.window + 7) / 8;
    if (sliding.stride > sliding.window) sliding.stride = sliding.window;
    // The rotation scheme retires estimators at exact multiples.
    if (sliding.window % sliding.stride != 0) {
      return Status::InvalidArgument("stride must divide the window");
    }
    sliding.estimator = config.nips;
    return std::unique_ptr<ImplicationEstimator>(
        std::make_unique<SlidingNipsCiEstimator>(conditions, sliding));
  }
  switch (config.kind) {
    case EstimatorKind::kNipsCi:
      if (config.threads > 1) {
        ShardedNipsCiOptions sharded;
        sharded.threads = std::min(config.threads, config.nips.num_bitmaps);
        sharded.ensemble = config.nips;
        return std::unique_ptr<ImplicationEstimator>(
            std::make_unique<ShardedNipsCi>(conditions, sharded));
      }
      return std::unique_ptr<ImplicationEstimator>(
          std::make_unique<NipsCi>(conditions, config.nips));
    case EstimatorKind::kExact:
      return std::unique_ptr<ImplicationEstimator>(
          std::make_unique<ExactImplicationCounter>(conditions));
    case EstimatorKind::kDistinctSampling:
      return std::unique_ptr<ImplicationEstimator>(
          std::make_unique<DistinctSampling>(conditions, config.ds));
    case EstimatorKind::kIlc:
      return std::unique_ptr<ImplicationEstimator>(
          std::make_unique<Ilc>(conditions, config.ilc));
    case EstimatorKind::kIss:
      return std::unique_ptr<ImplicationEstimator>(
          std::make_unique<ImplicationStickySampling>(conditions,
                                                      config.iss));
  }
  IMPLISTAT_CHECK(false) << "unknown EstimatorKind";
  return Status::Internal("unreachable");
}

}  // namespace implistat
