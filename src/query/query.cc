#include "query/query.h"

#include <algorithm>

#include "baseline/exact_counter.h"
#include "core/sliding.h"
#include "parallel/sharded_nips_ci.h"
#include "util/logging.h"

namespace implistat {

StatusOr<std::unique_ptr<ImplicationEstimator>> MakeEstimator(
    const ImplicationConditions& conditions, const EstimatorConfig& config) {
  if (config.window > 0) {
    if (config.kind != EstimatorKind::kNipsCi) {
      return Status::InvalidArgument(
          "windowed queries require the NIPS/CI estimator");
    }
    SlidingOptions sliding;
    sliding.window = config.window;
    sliding.stride =
        config.stride > 0 ? config.stride : (config.window + 7) / 8;
    if (sliding.stride > sliding.window) sliding.stride = sliding.window;
    // The rotation scheme retires estimators at exact multiples.
    if (sliding.window % sliding.stride != 0) {
      return Status::InvalidArgument("stride must divide the window");
    }
    sliding.estimator = config.nips;
    return std::unique_ptr<ImplicationEstimator>(
        std::make_unique<SlidingNipsCiEstimator>(conditions, sliding));
  }
  switch (config.kind) {
    case EstimatorKind::kNipsCi:
      if (config.threads > 1) {
        ShardedNipsCiOptions sharded;
        sharded.threads = std::min(config.threads, config.nips.num_bitmaps);
        sharded.ensemble = config.nips;
        return std::unique_ptr<ImplicationEstimator>(
            std::make_unique<ShardedNipsCi>(conditions, sharded));
      }
      return std::unique_ptr<ImplicationEstimator>(
          std::make_unique<NipsCi>(conditions, config.nips));
    case EstimatorKind::kExact:
      return std::unique_ptr<ImplicationEstimator>(
          std::make_unique<ExactImplicationCounter>(conditions));
    case EstimatorKind::kDistinctSampling:
      return std::unique_ptr<ImplicationEstimator>(
          std::make_unique<DistinctSampling>(conditions, config.ds));
    case EstimatorKind::kIlc:
      return std::unique_ptr<ImplicationEstimator>(
          std::make_unique<Ilc>(conditions, config.ilc));
    case EstimatorKind::kIss:
      return std::unique_ptr<ImplicationEstimator>(
          std::make_unique<ImplicationStickySampling>(conditions,
                                                      config.iss));
  }
  IMPLISTAT_CHECK(false) << "unknown EstimatorKind";
  return Status::Internal("unreachable");
}

}  // namespace implistat
