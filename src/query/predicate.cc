#include "query/predicate.h"

#include <algorithm>

namespace implistat {

bool InSetPredicate::Matches(TupleRef tuple) const {
  ValueId v = tuple[attribute_];
  return std::find(values_.begin(), values_.end(), v) != values_.end();
}

bool AndPredicate::Matches(TupleRef tuple) const {
  for (const auto& part : parts_) {
    if (!part->Matches(tuple)) return false;
  }
  return true;
}

bool OrPredicate::Matches(TupleRef tuple) const {
  for (const auto& part : parts_) {
    if (part->Matches(tuple)) return true;
  }
  return false;
}

// Wire tags, part of the checkpoint format (append-only; see DESIGN.md §7).
namespace {
enum PredicateTag : uint8_t {
  kTrueTag = 0,
  kEqualsTag = 1,
  kInSetTag = 2,
  kRangeTag = 3,
  kAndTag = 4,
  kOrTag = 5,
  kNotTag = 6,
};

// Deep enough for any parser-built WHERE clause; shallow enough that a
// crafted checkpoint cannot blow the stack.
constexpr int kMaxPredicateDepth = 64;

StatusOr<std::shared_ptr<const Predicate>> DeserializeNode(
    ByteReader* in, int num_attributes, int depth) {
  if (depth > kMaxPredicateDepth) {
    return Status::InvalidArgument("predicate: tree too deep");
  }
  uint8_t tag;
  IMPLISTAT_RETURN_NOT_OK(in->ReadU8(&tag));
  auto read_attribute = [&](int* attribute) -> Status {
    uint64_t index;
    IMPLISTAT_RETURN_NOT_OK(in->ReadVarint64(&index));
    if (index >= static_cast<uint64_t>(num_attributes)) {
      return Status::InvalidArgument(
          "predicate: attribute index out of schema range");
    }
    *attribute = static_cast<int>(index);
    return Status::OK();
  };
  auto read_children =
      [&](std::vector<std::shared_ptr<const Predicate>>* parts) -> Status {
    uint64_t n;
    IMPLISTAT_RETURN_NOT_OK(in->ReadVarint64(&n));
    if (n > in->remaining()) {  // every child costs >= 1 byte
      return Status::InvalidArgument("predicate: implausible child count");
    }
    parts->reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      IMPLISTAT_ASSIGN_OR_RETURN(
          std::shared_ptr<const Predicate> child,
          DeserializeNode(in, num_attributes, depth + 1));
      parts->push_back(std::move(child));
    }
    return Status::OK();
  };
  switch (tag) {
    case kTrueTag:
      return std::shared_ptr<const Predicate>(
          std::make_shared<TruePredicate>());
    case kEqualsTag: {
      int attribute = 0;
      uint32_t value;
      IMPLISTAT_RETURN_NOT_OK(read_attribute(&attribute));
      IMPLISTAT_RETURN_NOT_OK(in->ReadU32(&value));
      return std::shared_ptr<const Predicate>(
          std::make_shared<EqualsPredicate>(attribute, value));
    }
    case kInSetTag: {
      int attribute = 0;
      IMPLISTAT_RETURN_NOT_OK(read_attribute(&attribute));
      uint64_t n;
      IMPLISTAT_RETURN_NOT_OK(in->ReadVarint64(&n));
      if (n > in->remaining() / sizeof(ValueId) + 1) {
        return Status::InvalidArgument("predicate: implausible set size");
      }
      std::vector<ValueId> values;
      values.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        uint32_t v;
        IMPLISTAT_RETURN_NOT_OK(in->ReadU32(&v));
        values.push_back(v);
      }
      return std::shared_ptr<const Predicate>(
          std::make_shared<InSetPredicate>(attribute, std::move(values)));
    }
    case kRangeTag: {
      int attribute = 0;
      uint32_t lo, hi;
      IMPLISTAT_RETURN_NOT_OK(read_attribute(&attribute));
      IMPLISTAT_RETURN_NOT_OK(in->ReadU32(&lo));
      IMPLISTAT_RETURN_NOT_OK(in->ReadU32(&hi));
      return std::shared_ptr<const Predicate>(
          std::make_shared<RangePredicate>(attribute, lo, hi));
    }
    case kAndTag: {
      std::vector<std::shared_ptr<const Predicate>> parts;
      IMPLISTAT_RETURN_NOT_OK(read_children(&parts));
      return std::shared_ptr<const Predicate>(
          std::make_shared<AndPredicate>(std::move(parts)));
    }
    case kOrTag: {
      std::vector<std::shared_ptr<const Predicate>> parts;
      IMPLISTAT_RETURN_NOT_OK(read_children(&parts));
      return std::shared_ptr<const Predicate>(
          std::make_shared<OrPredicate>(std::move(parts)));
    }
    case kNotTag: {
      IMPLISTAT_ASSIGN_OR_RETURN(
          std::shared_ptr<const Predicate> inner,
          DeserializeNode(in, num_attributes, depth + 1));
      return std::shared_ptr<const Predicate>(
          std::make_shared<NotPredicate>(std::move(inner)));
    }
    default:
      return Status::InvalidArgument("predicate: unknown node tag");
  }
}

}  // namespace

StatusOr<std::shared_ptr<const Predicate>> DeserializePredicate(
    ByteReader* in, int num_attributes) {
  if (num_attributes < 0) {
    return Status::InvalidArgument("predicate: negative schema width");
  }
  return DeserializeNode(in, num_attributes, 0);
}

void TruePredicate::SerializeTo(ByteWriter* out) const {
  out->PutU8(kTrueTag);
}

void EqualsPredicate::SerializeTo(ByteWriter* out) const {
  out->PutU8(kEqualsTag);
  out->PutVarint64(static_cast<uint64_t>(attribute_));
  out->PutU32(value_);
}

void InSetPredicate::SerializeTo(ByteWriter* out) const {
  out->PutU8(kInSetTag);
  out->PutVarint64(static_cast<uint64_t>(attribute_));
  out->PutVarint64(values_.size());
  for (ValueId v : values_) out->PutU32(v);
}

void RangePredicate::SerializeTo(ByteWriter* out) const {
  out->PutU8(kRangeTag);
  out->PutVarint64(static_cast<uint64_t>(attribute_));
  out->PutU32(lo_);
  out->PutU32(hi_);
}

void AndPredicate::SerializeTo(ByteWriter* out) const {
  out->PutU8(kAndTag);
  out->PutVarint64(parts_.size());
  for (const auto& part : parts_) part->SerializeTo(out);
}

void OrPredicate::SerializeTo(ByteWriter* out) const {
  out->PutU8(kOrTag);
  out->PutVarint64(parts_.size());
  for (const auto& part : parts_) part->SerializeTo(out);
}

void NotPredicate::SerializeTo(ByteWriter* out) const {
  out->PutU8(kNotTag);
  inner_->SerializeTo(out);
}

}  // namespace implistat
