#include "query/predicate.h"

#include <algorithm>

namespace implistat {

bool InSetPredicate::Matches(TupleRef tuple) const {
  ValueId v = tuple[attribute_];
  return std::find(values_.begin(), values_.end(), v) != values_.end();
}

bool AndPredicate::Matches(TupleRef tuple) const {
  for (const auto& part : parts_) {
    if (!part->Matches(tuple)) return false;
  }
  return true;
}

bool OrPredicate::Matches(TupleRef tuple) const {
  for (const auto& part : parts_) {
    if (part->Matches(tuple)) return true;
  }
  return false;
}

}  // namespace implistat
