// Tuple predicates for conditional implication queries (Table 2:
// "How many sources contact only one destination *during the morning*").
//
// A predicate filters the stream before the implication machinery sees it;
// the composition classes cover the conjunctive/disjunctive conditions of
// the paper's example queries.
//
// Predicates serialize as a tagged pre-order tree so registered queries —
// WHERE clause included — survive a QueryEngine checkpoint/restore.
// DeserializePredicate validates every attribute index against the schema
// width and bounds the tree depth, so a corrupt checkpoint can never
// produce a predicate that reads out of a tuple's bounds.

#ifndef IMPLISTAT_QUERY_PREDICATE_H_
#define IMPLISTAT_QUERY_PREDICATE_H_

#include <memory>
#include <vector>

#include "stream/itemset.h"
#include "util/serde.h"
#include "util/status_or.h"

namespace implistat {

class Predicate {
 public:
  virtual ~Predicate() = default;
  virtual bool Matches(TupleRef tuple) const = 0;

  /// Appends this node (tag + operands + children, pre-order) to `out`.
  virtual void SerializeTo(ByteWriter* out) const = 0;
};

/// Reads one predicate tree written by SerializeTo. Attribute indices are
/// validated against `num_attributes` (the schema width the restored
/// query will run over) and nesting is capped, so malformed bytes yield a
/// Status, never an out-of-bounds tuple access or unbounded recursion.
StatusOr<std::shared_ptr<const Predicate>> DeserializePredicate(
    ByteReader* in, int num_attributes);

/// Matches everything (the unconditional query).
class TruePredicate final : public Predicate {
 public:
  bool Matches(TupleRef) const override { return true; }
  void SerializeTo(ByteWriter* out) const override;
};

/// attribute == value.
class EqualsPredicate final : public Predicate {
 public:
  EqualsPredicate(int attribute_index, ValueId value)
      : attribute_(attribute_index), value_(value) {}
  bool Matches(TupleRef tuple) const override {
    return tuple[attribute_] == value_;
  }
  void SerializeTo(ByteWriter* out) const override;

 private:
  int attribute_;
  ValueId value_;
};

/// attribute ∈ {values}.
class InSetPredicate final : public Predicate {
 public:
  InSetPredicate(int attribute_index, std::vector<ValueId> values)
      : attribute_(attribute_index), values_(std::move(values)) {}
  bool Matches(TupleRef tuple) const override;
  void SerializeTo(ByteWriter* out) const override;

 private:
  int attribute_;
  std::vector<ValueId> values_;
};

/// lo <= attribute <= hi (useful for dictionary-ordered ranges such as
/// time buckets).
class RangePredicate final : public Predicate {
 public:
  RangePredicate(int attribute_index, ValueId lo, ValueId hi)
      : attribute_(attribute_index), lo_(lo), hi_(hi) {}
  bool Matches(TupleRef tuple) const override {
    ValueId v = tuple[attribute_];
    return lo_ <= v && v <= hi_;
  }
  void SerializeTo(ByteWriter* out) const override;

 private:
  int attribute_;
  ValueId lo_;
  ValueId hi_;
};

class AndPredicate final : public Predicate {
 public:
  explicit AndPredicate(std::vector<std::shared_ptr<const Predicate>> parts)
      : parts_(std::move(parts)) {}
  bool Matches(TupleRef tuple) const override;
  void SerializeTo(ByteWriter* out) const override;

 private:
  std::vector<std::shared_ptr<const Predicate>> parts_;
};

class OrPredicate final : public Predicate {
 public:
  explicit OrPredicate(std::vector<std::shared_ptr<const Predicate>> parts)
      : parts_(std::move(parts)) {}
  bool Matches(TupleRef tuple) const override;
  void SerializeTo(ByteWriter* out) const override;

 private:
  std::vector<std::shared_ptr<const Predicate>> parts_;
};

class NotPredicate final : public Predicate {
 public:
  explicit NotPredicate(std::shared_ptr<const Predicate> inner)
      : inner_(std::move(inner)) {}
  bool Matches(TupleRef tuple) const override {
    return !inner_->Matches(tuple);
  }
  void SerializeTo(ByteWriter* out) const override;

 private:
  std::shared_ptr<const Predicate> inner_;
};

}  // namespace implistat

#endif  // IMPLISTAT_QUERY_PREDICATE_H_
