// Entailment-aware derivation: answering a new implication query from
// synopses the engine already maintains, instead of allocating another
// estimator.
//
// Theory (ROADMAP "entailment-aware multi-query optimizer"; Borchmann's
// entailment of implications with support/confidence bounds and the
// Calders–Goethals non-derivable-itemset idea of bounding a count by its
// neighbours in the attribute-set lattice): under the paper's
// monotone-dirty semantics (core/conditions.h) the implication count
//
//   S(A → B; K, σ, γ, c)  over a fixed (A, WHERE, σ)
//
// is monotone in every remaining parameter, with a shared supported
// universe. At every stream prefix, for the same itemset a of A:
//
//   * B' ⊇ B merges nothing: the distinct-b count under B' is >= the
//     count under the coarser projection B, and the top-c mass is <=
//     (projection merges pair counters, concentrating confidence). So a
//     violation under B implies one under B' — S is DECREASING in B.
//   * K only loosens condition 1 — S is INCREASING in K.
//   * γ only tightens condition 3 — S is DECREASING in γ.
//   * c only grows the top-c mass — S is INCREASING in c.
//   * σ is NOT monotone (it gates both counting and dirtiness), so
//     derivation requires equal σ. Same for the WHERE clause and A.
//
// Dirtiness is "some prefix was supported while violating 1 or 3"; each
// implication above holds prefix-by-prefix, so it survives the forever
// semantics. The argument needs strict multiplicity (the Algorithm 1
// eviction heuristic breaks per-prefix comparability), lifetime counts
// (windows change the universe), and non-complement queries.
//
// A candidate synopsis C with the same (A, WHERE, σ), both strict and
// unwindowed, therefore bounds the new query Q:
//
//   lower source:  B_C ⊇ B_Q, K_C <= K_Q, γ_C >= γ_Q, c_C <= c_Q
//                  (C is harder everywhere: S_C <= S_Q)
//   upper source:  the reverse comparisons (S_C >= S_Q)
//   F0 cap:        any C whose estimator answers EstimateSupportedDistinct
//                  — S_Q counts a subset of the supported universe, so
//                  S_Q <= F0_sup(A).
//
// The derived answer is the interval [best lower, best upper]; the engine
// reports its midpoint with derived=true and half-width as the error
// bound. Bounds are estimates of bounds: exact for kExact sources,
// estimator-accurate otherwise.

#ifndef IMPLISTAT_QUERY_ENTAILMENT_H_
#define IMPLISTAT_QUERY_ENTAILMENT_H_

#include "query/synopsis_store.h"

namespace implistat {

/// Which existing synopses bound a derived query; -1 = no source found
/// on that side. Serialized into kQueryEngineV2 checkpoints (engine.cc),
/// so the meaning of each field is part of the checkpoint format.
struct DerivationSources {
  SynopsisId lower = -1;  // its S lower-bounds the query's S
  SynopsisId upper = -1;  // its S upper-bounds the query's S
  SynopsisId f0 = -1;     // its F0_sup(A) caps the query's S

  /// A derivation is worth answering from only when something caps the
  /// count (a lower bound alone degenerates to [S_C, ∞)).
  bool viable() const { return upper != -1 || f0 != -1; }

  /// The synopsis exposed as the derived query's estimator (snapshots,
  /// memory accounting): the tightest upper source, else the F0 cap,
  /// else the lower source.
  SynopsisId primary() const {
    if (upper != -1) return upper;
    if (f0 != -1) return f0;
    return lower;
  }
};

/// Evaluated bounds at answer time.
struct DerivedBounds {
  double lower = 0;
  double upper = 0;
};

/// Scans the store's live synopses for sound bound sources for a query
/// over (a_set → b_set) under `conditions`. Returns a non-viable result
/// when the query is ineligible (windowed, complement, non-strict) or no
/// capping source exists; the caller then allocates a dedicated synopsis.
DerivationSources DeriveFromSynopses(const AttributeSet& a_set,
                                     const AttributeSet& b_set,
                                     const Predicate* where,
                                     const ImplicationConditions& conditions,
                                     const EstimatorConfig& config,
                                     bool complement,
                                     const SynopsisStore& store);

/// Evaluates the sources' current estimates into [lower, upper]. The
/// interval is normalized (lower clamped to >= 0 and <= upper) so noisy
/// non-exact sources can never invert it.
DerivedBounds EvaluateDerivedBounds(const DerivationSources& sources,
                                    const SynopsisStore& store);

}  // namespace implistat

#endif  // IMPLISTAT_QUERY_ENTAILMENT_H_
