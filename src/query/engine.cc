#include "query/engine.h"

#include "obs/instrumented_estimator.h"
#include "obs/metrics.h"
#include "query/parser.h"
#include "util/fileio.h"
#include "util/serde.h"

namespace implistat {

namespace {

// Checkpoint instrumentation (PR 1 registry). Registered lazily on the
// first checkpoint/restore — this is a cold path, so no flush batching.
struct CheckpointMetrics {
  obs::Counter* checkpoints_total;
  obs::Counter* restores_total;
  obs::Histogram* bytes;
  obs::Histogram* checkpoint_duration_ns;
  obs::Histogram* restore_duration_ns;

  static const CheckpointMetrics& Get() {
    static const CheckpointMetrics metrics = [] {
      auto& reg = obs::MetricsRegistry::Global();
      return CheckpointMetrics{
          reg.GetCounter("implistat_checkpoints_total",
                         "Engine checkpoints successfully written"),
          reg.GetCounter("implistat_restores_total",
                         "Engine restores successfully completed"),
          reg.GetHistogram("implistat_checkpoint_bytes",
                           "Serialized checkpoint size in bytes "
                           "(envelope included)"),
          reg.GetHistogram("implistat_checkpoint_duration_ns",
                           "Wall time of QueryEngine::Checkpoint — "
                           "serialize, atomic write, fsync"),
          reg.GetHistogram("implistat_restore_duration_ns",
                           "Wall time of QueryEngine::Restore — read, "
                           "decode, re-register"),
      };
    }();
    return metrics;
  }
};

}  // namespace

uint64_t SchemaFingerprint(const Schema& schema) {
  // Digest an unambiguous encoding (lengths prefixed) so ("ab","c")
  // cannot collide with ("a","bc").
  ByteWriter buf;
  buf.PutVarint64(static_cast<uint64_t>(schema.num_attributes()));
  for (int i = 0; i < schema.num_attributes(); ++i) {
    const AttributeDef& attr = schema.attribute(i);
    buf.PutLengthPrefixed(attr.name);
    buf.PutVarint64(attr.cardinality);
  }
  const std::string bytes = buf.Release();
  uint64_t h = 14695981039346656037ull;  // FNV-1a 64
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

QueryEngine::QueryEngine(Schema schema) : schema_(std::move(schema)) {}

StatusOr<QueryId> QueryEngine::RegisterSql(
    std::string_view text,
    const std::vector<ValueDictionary>* dictionaries) {
  IMPLISTAT_ASSIGN_OR_RETURN(ParsedQuery parsed,
                             ParseImplicationQuery(text));
  IMPLISTAT_ASSIGN_OR_RETURN(ImplicationQuerySpec spec,
                             BindQuery(parsed, schema_, dictionaries));
  spec.label = std::string(text);
  return Register(std::move(spec));
}

StatusOr<QueryId> QueryEngine::Register(ImplicationQuerySpec spec) {
  if (spec.a_attributes.empty()) {
    return Status::InvalidArgument("query needs at least one A attribute");
  }
  if (spec.b_attributes.empty()) {
    return Status::InvalidArgument("query needs at least one B attribute");
  }
  IMPLISTAT_RETURN_NOT_OK(spec.conditions.Validate());
  IMPLISTAT_ASSIGN_OR_RETURN(
      AttributeSet a_set, AttributeSet::FromNames(schema_, spec.a_attributes));
  IMPLISTAT_ASSIGN_OR_RETURN(
      AttributeSet b_set, AttributeSet::FromNames(schema_, spec.b_attributes));
  if (!a_set.DisjointFrom(b_set)) {
    return Status::InvalidArgument("A and B attribute sets must be disjoint");
  }
  if (spec.complement &&
      (spec.estimator.kind == EstimatorKind::kIlc ||
       spec.estimator.kind == EstimatorKind::kIss)) {
    return Status::InvalidArgument(
        "complement queries need an estimator that answers ~S "
        "(NIPS/CI, Exact or DS)");
  }
  RegisteredQuery query{
      std::move(spec),
      ItemsetPacker(schema_, a_set),
      ItemsetPacker(schema_, b_set),
      nullptr,
  };
  IMPLISTAT_ASSIGN_OR_RETURN(
      query.estimator,
      MakeEstimator(query.spec.conditions, query.spec.estimator));
  // Every engine-built estimator reports comparable per-estimator ingest
  // metrics (no-op wrapper removal when metrics are compiled out).
  query.estimator = obs::MaybeInstrument(std::move(query.estimator));
  queries_.push_back(std::move(query));
  return static_cast<QueryId>(queries_.size()) - 1;
}

void QueryEngine::ObserveTuple(TupleRef tuple) {
  ++tuples_;
  for (RegisteredQuery& query : queries_) {
    if (query.spec.where != nullptr && !query.spec.where->Matches(tuple)) {
      continue;
    }
    query.estimator->Observe(query.a_packer.Pack(tuple),
                             query.b_packer.Pack(tuple));
  }
}

Status QueryEngine::ObserveStream(TupleStream& stream) {
  if (stream.schema().num_attributes() != schema_.num_attributes()) {
    return Status::InvalidArgument("stream schema width mismatch");
  }
  // Batched drain: per-query pair buffers feed the estimators through
  // ObserveBatch, amortizing the virtual dispatch and enabling the
  // NipsCi/ShardedNipsCi fast paths. Each estimator still sees its
  // elements in exact stream order, so answers are identical to the
  // per-tuple ObserveTuple path.
  constexpr size_t kBatch = 256;
  std::vector<std::vector<ItemsetPair>> pending(queries_.size());
  for (auto& batch : pending) batch.reserve(kBatch);
  while (auto tuple = stream.Next()) {
    ++tuples_;
    for (size_t i = 0; i < queries_.size(); ++i) {
      RegisteredQuery& query = queries_[i];
      if (query.spec.where != nullptr && !query.spec.where->Matches(*tuple)) {
        continue;
      }
      pending[i].push_back(ItemsetPair{query.a_packer.Pack(*tuple),
                                       query.b_packer.Pack(*tuple)});
      if (pending[i].size() == kBatch) {
        query.estimator->ObserveBatch(pending[i]);
        pending[i].clear();
      }
    }
  }
  for (size_t i = 0; i < queries_.size(); ++i) {
    if (!pending[i].empty()) queries_[i].estimator->ObserveBatch(pending[i]);
  }
  return Status::OK();
}

StatusOr<double> QueryEngine::Answer(QueryId id) const {
  IMPLISTAT_ASSIGN_OR_RETURN(const ImplicationEstimator* est, Estimator(id));
  if (queries_[id].spec.complement) {
    double non_impl = est->EstimateNonImplicationCount();
    if (non_impl < 0) {
      return Status::FailedPrecondition(
          "estimator cannot answer non-implication counts");
    }
    return non_impl;
  }
  return est->EstimateImplicationCount();
}

StatusOr<const ImplicationEstimator*> QueryEngine::Estimator(
    QueryId id) const {
  if (id < 0 || id >= num_queries()) {
    return Status::NotFound("no such query id");
  }
  return const_cast<const ImplicationEstimator*>(
      queries_[id].estimator.get());
}

StatusOr<const ImplicationQuerySpec*> QueryEngine::Spec(QueryId id) const {
  if (id < 0 || id >= num_queries()) {
    return Status::NotFound("no such query id");
  }
  return &queries_[id].spec;
}

Status QueryEngine::MergeEstimatorState(QueryId id,
                                        std::string_view snapshot) {
  if (id < 0 || id >= num_queries()) {
    return Status::NotFound("no such query id");
  }
  RegisteredQuery& query = queries_[id];
  // Decode into a sequential twin built from the same config: cheap to
  // construct, and sharded/sequential snapshots are interchangeable, so a
  // threads=1 twin accepts either without spinning up a pipeline.
  EstimatorConfig twin_config = query.spec.estimator;
  twin_config.threads = 1;
  IMPLISTAT_ASSIGN_OR_RETURN(
      std::unique_ptr<ImplicationEstimator> twin,
      MakeEstimator(query.spec.conditions, twin_config));
  IMPLISTAT_RETURN_NOT_OK(twin->RestoreState(snapshot));
  // MergeFrom leaves the target untouched on failure (estimator
  // contract), so a bad snapshot never half-mutates the live query.
  return query.estimator->MergeFrom(*twin);
}

Status QueryEngine::RefoldEstimatorState(
    QueryId id, const std::vector<std::string_view>& snapshots) {
  if (id < 0 || id >= num_queries()) {
    return Status::NotFound("no such query id");
  }
  RegisteredQuery& query = queries_[id];
  // Build the replacement from the registered config so the refolded
  // query keeps its ingest shape (threads, window), then fold each
  // snapshot through a sequential twin exactly like MergeEstimatorState.
  IMPLISTAT_ASSIGN_OR_RETURN(
      std::unique_ptr<ImplicationEstimator> fresh,
      MakeEstimator(query.spec.conditions, query.spec.estimator));
  EstimatorConfig twin_config = query.spec.estimator;
  twin_config.threads = 1;
  for (std::string_view snapshot : snapshots) {
    IMPLISTAT_ASSIGN_OR_RETURN(
        std::unique_ptr<ImplicationEstimator> twin,
        MakeEstimator(query.spec.conditions, twin_config));
    IMPLISTAT_RETURN_NOT_OK(twin->RestoreState(snapshot));
    IMPLISTAT_RETURN_NOT_OK(fresh->MergeFrom(*twin));
  }
  // Everything decoded and folded cleanly — only now replace the live
  // estimator (same instrumentation wrap as Register).
  query.estimator = obs::MaybeInstrument(std::move(fresh));
  return Status::OK();
}

Status QueryEngine::SetDictionaries(
    std::vector<ValueDictionary> dictionaries) {
  if (!dictionaries.empty() &&
      dictionaries.size() !=
          static_cast<size_t>(schema_.num_attributes())) {
    return Status::InvalidArgument(
        "need one dictionary per schema attribute (or none)");
  }
  dictionaries_ = std::move(dictionaries);
  return Status::OK();
}

StatusOr<std::string> QueryEngine::SerializeState() const {
  ByteWriter payload;
  payload.PutU64(SchemaFingerprint(schema_));
  payload.PutVarint64(static_cast<uint64_t>(schema_.num_attributes()));
  payload.PutVarint64(tuples_);
  // Dictionary section (before the specs, so PeekCheckpointDictionaries
  // can stop here): presence byte, then a nested kValueDictionary
  // envelope — its own CRC makes the blob independently checkable.
  payload.PutU8(dictionaries_.empty() ? 0 : 1);
  if (!dictionaries_.empty()) {
    payload.PutLengthPrefixed(SerializeValueDictionaries(dictionaries_));
  }
  payload.PutVarint64(queries_.size());
  for (const RegisteredQuery& query : queries_) {
    query.spec.SerializeTo(&payload);
    IMPLISTAT_ASSIGN_OR_RETURN(std::string estimator_state,
                               query.estimator->SerializeState());
    payload.PutLengthPrefixed(estimator_state);
  }
  return WrapSnapshot(SnapshotKind::kQueryEngine, payload.Release());
}

Status QueryEngine::RestoreState(std::string_view snapshot) {
  if (!queries_.empty() || tuples_ != 0) {
    return Status::FailedPrecondition(
        "restore requires a fresh engine (no queries, no observed tuples)");
  }
  Status status = RestoreStateImpl(snapshot);
  if (!status.ok()) {
    // The engine was fresh on entry, so dropping everything restores it
    // exactly — no partially registered query survives a bad snapshot.
    queries_.clear();
    tuples_ = 0;
  }
  return status;
}

Status QueryEngine::RestoreStateImpl(std::string_view snapshot) {
  IMPLISTAT_ASSIGN_OR_RETURN(
      std::string_view payload,
      UnwrapSnapshot(snapshot, SnapshotKind::kQueryEngine));
  ByteReader in(payload);
  uint64_t fingerprint;
  IMPLISTAT_RETURN_NOT_OK(in.ReadU64(&fingerprint));
  if (fingerprint != SchemaFingerprint(schema_)) {
    return Status::FailedPrecondition(
        "checkpoint was taken over a different schema");
  }
  uint64_t width;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&width));
  if (width != static_cast<uint64_t>(schema_.num_attributes())) {
    return Status::InvalidArgument(
        "checkpoint: schema width disagrees with fingerprint");
  }
  uint64_t tuples;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&tuples));
  uint8_t has_dictionaries;
  IMPLISTAT_RETURN_NOT_OK(in.ReadU8(&has_dictionaries));
  if (has_dictionaries > 1) {
    return Status::InvalidArgument("checkpoint: bad dictionary flag");
  }
  std::vector<ValueDictionary> dictionaries;
  if (has_dictionaries != 0) {
    std::string_view blob;
    IMPLISTAT_RETURN_NOT_OK(in.ReadLengthPrefixed(&blob));
    IMPLISTAT_ASSIGN_OR_RETURN(dictionaries, RestoreValueDictionaries(blob));
    if (dictionaries.size() !=
        static_cast<size_t>(schema_.num_attributes())) {
      return Status::InvalidArgument(
          "checkpoint: dictionary count disagrees with schema width");
    }
  }
  uint64_t num_queries;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&num_queries));
  if (num_queries > in.remaining()) {  // every query costs many bytes
    return Status::InvalidArgument("checkpoint: implausible query count");
  }
  for (uint64_t i = 0; i < num_queries; ++i) {
    IMPLISTAT_ASSIGN_OR_RETURN(
        ImplicationQuerySpec spec,
        ImplicationQuerySpec::Deserialize(&in, schema_.num_attributes()));
    std::string_view estimator_state;
    IMPLISTAT_RETURN_NOT_OK(in.ReadLengthPrefixed(&estimator_state));
    IMPLISTAT_ASSIGN_OR_RETURN(QueryId id, Register(std::move(spec)));
    IMPLISTAT_RETURN_NOT_OK(
        queries_[id].estimator->RestoreState(estimator_state));
  }
  if (in.remaining() != 0) {
    return Status::InvalidArgument("checkpoint: trailing bytes");
  }
  tuples_ = tuples;
  dictionaries_ = std::move(dictionaries);
  return Status::OK();
}

StatusOr<std::vector<ValueDictionary>> PeekCheckpointDictionaries(
    std::string_view snapshot) {
  IMPLISTAT_ASSIGN_OR_RETURN(
      std::string_view payload,
      UnwrapSnapshot(snapshot, SnapshotKind::kQueryEngine));
  ByteReader in(payload);
  uint64_t fingerprint, width, tuples;
  IMPLISTAT_RETURN_NOT_OK(in.ReadU64(&fingerprint));
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&width));
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&tuples));
  uint8_t has_dictionaries;
  IMPLISTAT_RETURN_NOT_OK(in.ReadU8(&has_dictionaries));
  if (has_dictionaries > 1) {
    return Status::InvalidArgument("checkpoint: bad dictionary flag");
  }
  if (has_dictionaries == 0) return std::vector<ValueDictionary>{};
  std::string_view blob;
  IMPLISTAT_RETURN_NOT_OK(in.ReadLengthPrefixed(&blob));
  return RestoreValueDictionaries(blob);
}

Status QueryEngine::Checkpoint(const std::string& path) const {
  obs::ScopedTimer timer(CheckpointMetrics::Get().checkpoint_duration_ns);
  IMPLISTAT_ASSIGN_OR_RETURN(std::string bytes, SerializeState());
  IMPLISTAT_RETURN_NOT_OK(WriteFileAtomic(path, bytes));
  const CheckpointMetrics& metrics = CheckpointMetrics::Get();
  metrics.checkpoints_total->Increment();
  metrics.bytes->Record(bytes.size());
  return Status::OK();
}

Status QueryEngine::Restore(const std::string& path) {
  obs::ScopedTimer timer(CheckpointMetrics::Get().restore_duration_ns);
  IMPLISTAT_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  IMPLISTAT_RETURN_NOT_OK(RestoreState(bytes));
  CheckpointMetrics::Get().restores_total->Increment();
  return Status::OK();
}

}  // namespace implistat
