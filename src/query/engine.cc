#include "query/engine.h"

#include <algorithm>

#include "obs/instrumented_estimator.h"
#include "obs/metrics.h"
#include "query/parser.h"
#include "util/envelope.h"
#include "util/fileio.h"
#include "util/serde.h"

namespace implistat {

namespace {

// Checkpoint instrumentation (PR 1 registry). Registered lazily on the
// first checkpoint/restore — this is a cold path, so no flush batching.
struct CheckpointMetrics {
  obs::Counter* checkpoints_total;
  obs::Counter* restores_total;
  obs::Histogram* bytes;
  obs::Histogram* checkpoint_duration_ns;
  obs::Histogram* restore_duration_ns;

  static const CheckpointMetrics& Get() {
    static const CheckpointMetrics metrics = [] {
      auto& reg = obs::MetricsRegistry::Global();
      return CheckpointMetrics{
          reg.GetCounter("implistat_checkpoints_total",
                         "Engine checkpoints successfully written"),
          reg.GetCounter("implistat_restores_total",
                         "Engine restores successfully completed"),
          reg.GetHistogram("implistat_checkpoint_bytes",
                           "Serialized checkpoint size in bytes "
                           "(envelope included)"),
          reg.GetHistogram("implistat_checkpoint_duration_ns",
                           "Wall time of QueryEngine::Checkpoint — "
                           "serialize, atomic write, fsync"),
          reg.GetHistogram("implistat_restore_duration_ns",
                           "Wall time of QueryEngine::Restore — read, "
                           "decode, re-register"),
      };
    }();
    return metrics;
  }
};

// Multi-query sharing instrumentation.
struct SharingMetrics {
  obs::Counter* queries_shared_total;
  obs::Counter* derived_answers_total;

  static const SharingMetrics& Get() {
    static const SharingMetrics metrics = [] {
      auto& reg = obs::MetricsRegistry::Global();
      return SharingMetrics{
          reg.GetCounter("implistat_queries_shared_total",
                         "Registrations answered by an existing synopsis "
                         "(exact key hit)"),
          reg.GetCounter("implistat_derived_answers_total",
                         "Answers produced from entailment bounds instead "
                         "of a dedicated estimator"),
      };
    }();
    return metrics;
  }
};

// The sources a derived query holds references on, deduplicated (the
// same synopsis can serve as both upper source and F0 cap).
std::vector<SynopsisId> DistinctSources(const DerivationSources& d) {
  std::vector<SynopsisId> out;
  for (SynopsisId id : {d.lower, d.upper, d.f0}) {
    if (id == -1) continue;
    if (std::find(out.begin(), out.end(), id) == out.end()) out.push_back(id);
  }
  return out;
}

// Query-record flag bits in the kQueryEngineV2 container.
constexpr uint8_t kFlagActive = 1;
constexpr uint8_t kFlagAllowDerived = 2;

}  // namespace

uint64_t SchemaFingerprint(const Schema& schema) {
  // Digest an unambiguous encoding (lengths prefixed) so ("ab","c")
  // cannot collide with ("a","bc").
  ByteWriter buf;
  buf.PutVarint64(static_cast<uint64_t>(schema.num_attributes()));
  for (int i = 0; i < schema.num_attributes(); ++i) {
    const AttributeDef& attr = schema.attribute(i);
    buf.PutLengthPrefixed(attr.name);
    buf.PutVarint64(attr.cardinality);
  }
  const std::string bytes = buf.Release();
  uint64_t h = 14695981039346656037ull;  // FNV-1a 64
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

QueryEngine::QueryEngine(Schema schema, QueryEngineOptions options)
    : schema_(std::move(schema)), options_(options), store_(&schema_) {}

StatusOr<QueryId> QueryEngine::RegisterSql(
    std::string_view text,
    const std::vector<ValueDictionary>* dictionaries) {
  IMPLISTAT_ASSIGN_OR_RETURN(ParsedQuery parsed,
                             ParseImplicationQuery(text));
  IMPLISTAT_ASSIGN_OR_RETURN(ImplicationQuerySpec spec,
                             BindQuery(parsed, schema_, dictionaries));
  spec.label = std::string(text);
  return Register(std::move(spec));
}

StatusOr<QueryId> QueryEngine::Register(ImplicationQuerySpec spec) {
  return RegisterInternal(std::move(spec),
                          /*force_new_synopsis=*/!options_.query_sharing,
                          /*check_label=*/true);
}

StatusOr<QueryId> QueryEngine::RegisterInternal(ImplicationQuerySpec spec,
                                                bool force_new_synopsis,
                                                bool check_label) {
  if (spec.a_attributes.empty()) {
    return Status::InvalidArgument("query needs at least one A attribute");
  }
  if (spec.b_attributes.empty()) {
    return Status::InvalidArgument("query needs at least one B attribute");
  }
  IMPLISTAT_RETURN_NOT_OK(spec.conditions.Validate());
  IMPLISTAT_ASSIGN_OR_RETURN(
      AttributeSet a_set, AttributeSet::FromNames(schema_, spec.a_attributes));
  IMPLISTAT_ASSIGN_OR_RETURN(
      AttributeSet b_set, AttributeSet::FromNames(schema_, spec.b_attributes));
  if (!a_set.DisjointFrom(b_set)) {
    return Status::InvalidArgument("A and B attribute sets must be disjoint");
  }
  if (spec.complement &&
      (spec.estimator.kind == EstimatorKind::kIlc ||
       spec.estimator.kind == EstimatorKind::kIss)) {
    return Status::InvalidArgument(
        "complement queries need an estimator that answers ~S "
        "(NIPS/CI, Exact or DS)");
  }
  if (check_label && !spec.label.empty()) {
    for (const RegisteredQuery& query : queries_) {
      if (query.active && query.spec.label == spec.label) {
        return Status::AlreadyExists(
            "a registered query already carries this label");
      }
    }
  }

  RegisteredQuery query;
  if (!force_new_synopsis) {
    // Exact-key hit: an existing synopsis already maintains precisely
    // this statistic — bind to it and skip the allocation entirely.
    const std::string key = CanonicalSynopsisKey(
        a_set, b_set, spec.where.get(), spec.conditions, spec.estimator);
    const SynopsisId hit = store_.Find(key);
    if (hit != -1) {
      store_.AddRef(hit);
      query.binding = QueryBinding::kShared;
      query.synopsis = hit;
      query.spec = std::move(spec);
      queries_.push_back(std::move(query));
      SharingMetrics::Get().queries_shared_total->Increment();
      return static_cast<QueryId>(queries_.size()) - 1;
    }
    if (spec.allow_derived) {
      const DerivationSources sources =
          DeriveFromSynopses(a_set, b_set, spec.where.get(), spec.conditions,
                             spec.estimator, spec.complement, store_);
      if (sources.viable()) {
        for (SynopsisId id : DistinctSources(sources)) store_.AddRef(id);
        query.binding = QueryBinding::kDerived;
        query.synopsis = sources.primary();
        query.derivation = sources;
        query.spec = std::move(spec);
        queries_.push_back(std::move(query));
        return static_cast<QueryId>(queries_.size()) - 1;
      }
    }
  }

  IMPLISTAT_ASSIGN_OR_RETURN(
      SynopsisId sid,
      store_.Create(a_set, b_set, spec.where, spec.conditions,
                    spec.estimator));
  store_.AddRef(sid);
  query.binding = QueryBinding::kOwner;
  query.synopsis = sid;
  query.spec = std::move(spec);
  queries_.push_back(std::move(query));
  return static_cast<QueryId>(queries_.size()) - 1;
}

Status QueryEngine::CheckQueryId(QueryId id) const {
  if (id < 0 || id >= num_queries()) {
    return Status::NotFound("no such query id");
  }
  if (!queries_[id].active) {
    return Status::NotFound("query was deregistered");
  }
  return Status::OK();
}

const SynopsisEntry& QueryEngine::EntryOf(const RegisteredQuery& query) const {
  return store_.entry(query.synopsis);
}

Status QueryEngine::Deregister(QueryId id) {
  IMPLISTAT_RETURN_NOT_OK(CheckQueryId(id));
  RegisteredQuery& query = queries_[id];
  if (query.binding == QueryBinding::kDerived) {
    for (SynopsisId sid : DistinctSources(query.derivation)) {
      store_.Release(sid);
    }
  } else {
    store_.Release(query.synopsis);
  }
  query.active = false;
  return Status::OK();
}

void QueryEngine::ObserveTuple(TupleRef tuple) {
  ++tuples_;
  // Synopses, not queries: a statistic shared by n queries filters and
  // packs the tuple once.
  for (SynopsisEntry& entry : store_.entries()) {
    if (!entry.live()) continue;
    if (entry.where != nullptr && !entry.where->Matches(tuple)) continue;
    entry.estimator->Observe(entry.a_packer.Pack(tuple),
                             entry.b_packer.Pack(tuple));
  }
  // Off the per-tuple path in effect: Tick is one compare against the
  // earliest due epoch (bench/trigger_overhead prices this).
  if (triggers_ != nullptr) triggers_->Tick(tuples_);
}

Status QueryEngine::ObserveStream(TupleStream& stream) {
  if (stream.schema().num_attributes() != schema_.num_attributes()) {
    return Status::InvalidArgument("stream schema width mismatch");
  }
  // Batched drain: per-synopsis pair buffers feed the estimators through
  // ObserveBatch, amortizing the virtual dispatch and enabling the
  // NipsCi/ShardedNipsCi fast paths. Each estimator still sees its
  // elements in exact stream order, so answers are identical to the
  // per-tuple ObserveTuple path.
  constexpr size_t kBatch = 256;
  std::vector<SynopsisEntry>& entries = store_.entries();
  std::vector<std::vector<ItemsetPair>> pending(entries.size());
  for (auto& batch : pending) batch.reserve(kBatch);
  while (auto tuple = stream.Next()) {
    ++tuples_;
    for (size_t i = 0; i < entries.size(); ++i) {
      SynopsisEntry& entry = entries[i];
      if (!entry.live()) continue;
      if (entry.where != nullptr && !entry.where->Matches(*tuple)) continue;
      pending[i].push_back(ItemsetPair{entry.a_packer.Pack(*tuple),
                                       entry.b_packer.Pack(*tuple)});
      if (pending[i].size() == kBatch) {
        entry.estimator->ObserveBatch(pending[i]);
        pending[i].clear();
      }
    }
  }
  for (size_t i = 0; i < entries.size(); ++i) {
    if (!pending[i].empty()) entries[i].estimator->ObserveBatch(pending[i]);
  }
  // Triggers evaluate at the stream edge, once every synopsis has seen
  // its full batch — estimates are fresh and epoch crossings inside the
  // batch collapse to one evaluation (see TriggerEngine::Evaluate).
  if (triggers_ != nullptr) triggers_->Tick(tuples_);
  return Status::OK();
}

StatusOr<double> QueryEngine::Answer(QueryId id) const {
  // Deliberately NOT AnswerEx minus fields: the std-error readout runs a
  // leave-one-out pass over the whole ensemble (two FM inversions per
  // bitmap), which dwarfs the point estimate. Estimate-only callers —
  // trigger evaluation polls this every epoch — skip it entirely.
  IMPLISTAT_RETURN_NOT_OK(CheckQueryId(id));
  const RegisteredQuery& query = queries_[id];
  if (query.binding == QueryBinding::kDerived) {
    const DerivedBounds bounds =
        EvaluateDerivedBounds(query.derivation, store_);
    SharingMetrics::Get().derived_answers_total->Increment();
    return (bounds.lower + bounds.upper) / 2;
  }
  const ImplicationEstimator* est = EntryOf(query).estimator.get();
  if (query.spec.complement) {
    const double non_impl = est->EstimateNonImplicationCount();
    if (non_impl < 0) {
      return Status::FailedPrecondition(
          "estimator cannot answer non-implication counts");
    }
    return non_impl;
  }
  return est->EstimateImplicationCount();
}

QueryId QueryEngine::FindActiveByLabel(std::string_view label) const {
  if (label.empty()) return -1;
  for (size_t i = 0; i < queries_.size(); ++i) {
    if (queries_[i].active && queries_[i].spec.label == label) {
      return static_cast<QueryId>(i);
    }
  }
  // Positional fallback: `q<N>` names the N-th registered query when no
  // explicit label claims the name.
  if (label.size() >= 2 && label[0] == 'q') {
    uint64_t id = 0;
    for (size_t i = 1; i < label.size(); ++i) {
      if (label[i] < '0' || label[i] > '9') return -1;
      id = id * 10 + static_cast<uint64_t>(label[i] - '0');
      if (id > queries_.size()) return -1;  // also caps overflow
    }
    if (id < queries_.size() && queries_[id].active) {
      return static_cast<QueryId>(id);
    }
  }
  return -1;
}

bool QueryEngine::LabelSource::HasLabel(std::string_view label) const {
  return engine_->FindActiveByLabel(label) >= 0;
}

StatusOr<double> QueryEngine::LabelSource::EstimateForLabel(
    std::string_view label) const {
  QueryId id = engine_->FindActiveByLabel(label);
  if (id < 0) {
    return Status::NotFound("no active query labeled '" + std::string(label) +
                            "'");
  }
  return engine_->Answer(id);
}

StatusOr<std::string> QueryEngine::InstallTrigger(std::string_view statement) {
  if (triggers_ == nullptr) {
    triggers_ = std::make_unique<cql::TriggerEngine>(&label_source_);
  }
  return triggers_->Install(statement, tuples_);
}

Status QueryEngine::RemoveTrigger(std::string_view name) {
  if (triggers_ == nullptr) {
    return Status::NotFound("no trigger named '" + std::string(name) + "'");
  }
  return triggers_->Remove(name);
}

std::vector<cql::TriggerFiring> QueryEngine::TakeTriggerFirings() {
  if (triggers_ == nullptr) return {};
  return triggers_->TakeFirings();
}

StatusOr<QueryAnswer> QueryEngine::AnswerEx(QueryId id) const {
  IMPLISTAT_RETURN_NOT_OK(CheckQueryId(id));
  const RegisteredQuery& query = queries_[id];
  QueryAnswer answer;
  if (query.binding == QueryBinding::kDerived) {
    const DerivedBounds bounds =
        EvaluateDerivedBounds(query.derivation, store_);
    answer.derived = true;
    answer.lower = bounds.lower;
    answer.upper = bounds.upper;
    answer.estimate = (bounds.lower + bounds.upper) / 2;
    answer.std_error = (bounds.upper - bounds.lower) / 2;
    SharingMetrics::Get().derived_answers_total->Increment();
    return answer;
  }
  const ImplicationEstimator* est = EntryOf(query).estimator.get();
  if (query.spec.complement) {
    const double non_impl = est->EstimateNonImplicationCount();
    if (non_impl < 0) {
      return Status::FailedPrecondition(
          "estimator cannot answer non-implication counts");
    }
    answer.estimate = non_impl;
  } else {
    answer.estimate = est->EstimateImplicationCount();
  }
  answer.std_error = est->EstimateStdError();
  return answer;
}

StatusOr<const ImplicationEstimator*> QueryEngine::Estimator(
    QueryId id) const {
  IMPLISTAT_RETURN_NOT_OK(CheckQueryId(id));
  return const_cast<const ImplicationEstimator*>(
      EntryOf(queries_[id]).estimator.get());
}

StatusOr<const ImplicationQuerySpec*> QueryEngine::Spec(QueryId id) const {
  IMPLISTAT_RETURN_NOT_OK(CheckQueryId(id));
  return &queries_[id].spec;
}

StatusOr<QueryBinding> QueryEngine::Binding(QueryId id) const {
  IMPLISTAT_RETURN_NOT_OK(CheckQueryId(id));
  return queries_[id].binding;
}

StatusOr<SynopsisId> QueryEngine::SynopsisOf(QueryId id) const {
  IMPLISTAT_RETURN_NOT_OK(CheckQueryId(id));
  return queries_[id].synopsis;
}

std::vector<QueryId> QueryEngine::ActiveQueryIds() const {
  std::vector<QueryId> ids;
  for (QueryId id = 0; id < num_queries(); ++id) {
    if (queries_[id].active) ids.push_back(id);
  }
  return ids;
}

Status QueryEngine::MergeEstimatorState(QueryId id,
                                        std::string_view snapshot) {
  IMPLISTAT_RETURN_NOT_OK(CheckQueryId(id));
  const RegisteredQuery& query = queries_[id];
  if (query.binding == QueryBinding::kDerived) {
    return Status::FailedPrecondition(
        "derived queries own no synopsis to merge into");
  }
  SynopsisEntry& entry = store_.entry(query.synopsis);
  // Decode into a sequential twin built from the same config: cheap to
  // construct, and sharded/sequential snapshots are interchangeable, so a
  // threads=1 twin accepts either without spinning up a pipeline.
  EstimatorConfig twin_config = entry.config;
  twin_config.threads = 1;
  IMPLISTAT_ASSIGN_OR_RETURN(std::unique_ptr<ImplicationEstimator> twin,
                             MakeEstimator(entry.conditions, twin_config));
  IMPLISTAT_RETURN_NOT_OK(twin->RestoreState(snapshot));
  // MergeFrom leaves the target untouched on failure (estimator
  // contract), so a bad snapshot never half-mutates the live synopsis.
  return entry.estimator->MergeFrom(*twin);
}

Status QueryEngine::RefoldEstimatorState(
    QueryId id, const std::vector<std::string_view>& snapshots) {
  IMPLISTAT_RETURN_NOT_OK(CheckQueryId(id));
  const RegisteredQuery& query = queries_[id];
  if (query.binding == QueryBinding::kDerived) {
    return Status::FailedPrecondition(
        "derived queries own no synopsis to refold");
  }
  return RefoldSynopsisState(query.synopsis, snapshots);
}

Status QueryEngine::RefoldSynopsisState(
    SynopsisId id, const std::vector<std::string_view>& snapshots) {
  if (id < 0 || id >= store_.size() || !store_.entry(id).live()) {
    return Status::NotFound("no such synopsis");
  }
  SynopsisEntry& entry = store_.entry(id);
  // Build the replacement from the synopsis config so the refolded
  // estimator keeps its ingest shape (threads, window), then fold each
  // snapshot through a sequential twin exactly like MergeEstimatorState.
  IMPLISTAT_ASSIGN_OR_RETURN(std::unique_ptr<ImplicationEstimator> fresh,
                             MakeEstimator(entry.conditions, entry.config));
  EstimatorConfig twin_config = entry.config;
  twin_config.threads = 1;
  for (std::string_view snapshot : snapshots) {
    IMPLISTAT_ASSIGN_OR_RETURN(std::unique_ptr<ImplicationEstimator> twin,
                               MakeEstimator(entry.conditions, twin_config));
    IMPLISTAT_RETURN_NOT_OK(twin->RestoreState(snapshot));
    IMPLISTAT_RETURN_NOT_OK(fresh->MergeFrom(*twin));
  }
  // Everything decoded and folded cleanly — only now replace the live
  // estimator (same instrumentation wrap as Register).
  entry.estimator = obs::MaybeInstrument(std::move(fresh));
  return Status::OK();
}

std::vector<QueryEngine::FoldUnit> QueryEngine::FoldUnits() const {
  std::vector<FoldUnit> units;
  for (SynopsisId sid = 0; sid < store_.size(); ++sid) {
    if (!store_.entry(sid).live()) continue;
    for (QueryId qid = 0; qid < num_queries(); ++qid) {
      const RegisteredQuery& query = queries_[qid];
      if (query.active && query.binding != QueryBinding::kDerived &&
          query.synopsis == sid) {
        units.push_back(FoldUnit{sid, qid});
        break;
      }
    }
  }
  return units;
}

Status QueryEngine::SetDictionaries(
    std::vector<ValueDictionary> dictionaries) {
  if (!dictionaries.empty() &&
      dictionaries.size() !=
          static_cast<size_t>(schema_.num_attributes())) {
    return Status::InvalidArgument(
        "need one dictionary per schema attribute (or none)");
  }
  dictionaries_ = std::move(dictionaries);
  return Status::OK();
}

StatusOr<std::string> QueryEngine::SerializeSynopsisStore() const {
  // Self-contained section: per live synopsis the full recipe (attribute
  // indices, WHERE bytes, conditions, config) plus the estimator state.
  // Restore reconstructs entries from here alone — a synopsis can outlive
  // every owning query (kept alive by derived references), so deriving
  // the recipes from query specs would not cover all entries. Tombstones
  // serialize as a single dead byte to keep ids dense.
  ByteWriter payload;
  payload.PutVarint64(static_cast<uint64_t>(store_.size()));
  for (SynopsisId sid = 0; sid < store_.size(); ++sid) {
    const SynopsisEntry& entry = store_.entry(sid);
    payload.PutU8(entry.live() ? 1 : 0);
    if (!entry.live()) continue;
    payload.PutVarint64(static_cast<uint64_t>(entry.a_set.size()));
    for (int index : entry.a_set.indices()) {
      payload.PutVarint64(static_cast<uint64_t>(index));
    }
    payload.PutVarint64(static_cast<uint64_t>(entry.b_set.size()));
    for (int index : entry.b_set.indices()) {
      payload.PutVarint64(static_cast<uint64_t>(index));
    }
    payload.PutBool(entry.where != nullptr);
    if (entry.where != nullptr) entry.where->SerializeTo(&payload);
    entry.conditions.SerializeTo(&payload);
    entry.config.SerializeTo(&payload);
    IMPLISTAT_ASSIGN_OR_RETURN(std::string state,
                               entry.estimator->SerializeState());
    payload.PutLengthPrefixed(state);
  }
  return WrapSnapshot(SnapshotKind::kSynopsisStore, payload.Release());
}

Status QueryEngine::RestoreSynopsisStore(std::string_view blob) {
  IMPLISTAT_ASSIGN_OR_RETURN(
      std::string_view payload,
      UnwrapSnapshot(blob, SnapshotKind::kSynopsisStore));
  ByteReader in(payload);
  uint64_t num_entries;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&num_entries));
  if (num_entries > in.remaining() + 1) {  // every entry costs >= 1 byte
    return Status::InvalidArgument(
        "synopsis store: implausible entry count");
  }
  const uint64_t width = static_cast<uint64_t>(schema_.num_attributes());
  for (uint64_t i = 0; i < num_entries; ++i) {
    uint8_t live;
    IMPLISTAT_RETURN_NOT_OK(in.ReadU8(&live));
    if (live > 1) {
      return Status::InvalidArgument("synopsis store: bad liveness flag");
    }
    if (live == 0) {
      store_.CreateTombstone();
      continue;
    }
    auto read_indices =
        [&](std::vector<int>* out) -> Status {
      uint64_t count;
      IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&count));
      if (count == 0 || count > width) {
        return Status::InvalidArgument(
            "synopsis store: bad attribute set size");
      }
      for (uint64_t k = 0; k < count; ++k) {
        uint64_t index;
        IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&index));
        if (index >= width) {
          return Status::InvalidArgument(
              "synopsis store: attribute index out of range");
        }
        out->push_back(static_cast<int>(index));
      }
      return Status::OK();
    };
    std::vector<int> a_indices, b_indices;
    IMPLISTAT_RETURN_NOT_OK(read_indices(&a_indices));
    IMPLISTAT_RETURN_NOT_OK(read_indices(&b_indices));
    bool has_where;
    IMPLISTAT_RETURN_NOT_OK(in.ReadBool(&has_where));
    std::shared_ptr<const Predicate> where;
    if (has_where) {
      IMPLISTAT_ASSIGN_OR_RETURN(
          where, DeserializePredicate(&in, schema_.num_attributes()));
    }
    IMPLISTAT_ASSIGN_OR_RETURN(ImplicationConditions conditions,
                               ImplicationConditions::Deserialize(&in));
    IMPLISTAT_ASSIGN_OR_RETURN(EstimatorConfig config,
                               EstimatorConfig::Deserialize(&in));
    std::string_view state;
    IMPLISTAT_RETURN_NOT_OK(in.ReadLengthPrefixed(&state));
    IMPLISTAT_ASSIGN_OR_RETURN(
        SynopsisId sid,
        store_.Create(AttributeSet(std::move(a_indices)),
                      AttributeSet(std::move(b_indices)), std::move(where),
                      conditions, config));
    IMPLISTAT_RETURN_NOT_OK(
        store_.entry(sid).estimator->RestoreState(state));
  }
  if (in.remaining() != 0) {
    return Status::InvalidArgument("synopsis store: trailing bytes");
  }
  return Status::OK();
}

StatusOr<std::string> QueryEngine::SerializeState() const {
  ByteWriter payload;
  payload.PutU64(SchemaFingerprint(schema_));
  payload.PutVarint64(static_cast<uint64_t>(schema_.num_attributes()));
  payload.PutVarint64(tuples_);
  // Dictionary section (before the specs, so PeekCheckpointDictionaries
  // can stop here): presence byte, then a nested kValueDictionary
  // envelope — its own CRC makes the blob independently checkable.
  payload.PutU8(dictionaries_.empty() ? 0 : 1);
  if (!dictionaries_.empty()) {
    payload.PutLengthPrefixed(SerializeValueDictionaries(dictionaries_));
  }
  // The synopsis store rides as a nested envelope: every shared
  // estimator serialized once, then the query records reference entries
  // by id.
  IMPLISTAT_ASSIGN_OR_RETURN(std::string store_blob,
                             SerializeSynopsisStore());
  payload.PutLengthPrefixed(store_blob);
  payload.PutVarint64(queries_.size());
  for (const RegisteredQuery& query : queries_) {
    query.spec.SerializeTo(&payload);
    // allow_derived postdates the frozen v1 spec format, so it rides in
    // the container's flag byte instead.
    uint8_t flags = 0;
    if (query.active) flags |= kFlagActive;
    if (query.spec.allow_derived) flags |= kFlagAllowDerived;
    payload.PutU8(flags);
    payload.PutU8(static_cast<uint8_t>(query.binding));
    if (query.binding == QueryBinding::kDerived) {
      // +1 bias so the no-source sentinel (-1) encodes as 0.
      payload.PutVarint64(
          static_cast<uint64_t>(query.derivation.lower + 1));
      payload.PutVarint64(
          static_cast<uint64_t>(query.derivation.upper + 1));
      payload.PutVarint64(static_cast<uint64_t>(query.derivation.f0 + 1));
    } else {
      payload.PutVarint64(static_cast<uint64_t>(query.synopsis));
    }
  }
  // Armed-trigger section: optional, so trigger-free checkpoints stay
  // byte-identical to the pre-trigger format (and restorable by older
  // readers). Nested kTriggerStore envelope — its own version byte and
  // CRC make the blob independently checkable.
  if (triggers_ != nullptr && triggers_->num_triggers() > 0) {
    ByteWriter trigger_payload;
    triggers_->SerializeTo(&trigger_payload);
    payload.PutLengthPrefixed(
        WrapSnapshot(SnapshotKind::kTriggerStore, trigger_payload.Release()));
  }
  return WrapSnapshot(SnapshotKind::kQueryEngineV2, payload.Release());
}

Status QueryEngine::RestoreState(std::string_view snapshot) {
  if (!queries_.empty() || store_.size() != 0 || tuples_ != 0) {
    return Status::FailedPrecondition(
        "restore requires a fresh engine (no queries, no observed tuples)");
  }
  Status status = RestoreStateImpl(snapshot);
  if (!status.ok()) {
    // The engine was fresh on entry, so dropping everything restores it
    // exactly — no partially registered query or synopsis survives a bad
    // snapshot.
    queries_.clear();
    store_.Clear();
    tuples_ = 0;
    triggers_.reset();
  }
  return status;
}

Status QueryEngine::RestoreStateImpl(std::string_view snapshot) {
  IMPLISTAT_ASSIGN_OR_RETURN(SnapshotKind kind, PeekSnapshotKind(snapshot));
  if (kind == SnapshotKind::kQueryEngine) {
    IMPLISTAT_ASSIGN_OR_RETURN(
        std::string_view payload,
        UnwrapSnapshot(snapshot, SnapshotKind::kQueryEngine));
    return RestoreLegacy(payload);
  }
  if (kind == SnapshotKind::kQueryEngineV2) {
    IMPLISTAT_ASSIGN_OR_RETURN(
        std::string_view payload,
        UnwrapSnapshot(snapshot, SnapshotKind::kQueryEngineV2));
    return RestoreV2(payload);
  }
  return Status::InvalidArgument("not a query engine checkpoint");
}

// Shared prefix of the legacy and v2 layouts: fingerprint, width, tuple
// count, optional dictionary blob.
namespace {

struct CheckpointPrefix {
  uint64_t tuples = 0;
  std::vector<ValueDictionary> dictionaries;
};

Status ReadCheckpointPrefix(ByteReader* in, const Schema& schema,
                            CheckpointPrefix* out) {
  uint64_t fingerprint;
  IMPLISTAT_RETURN_NOT_OK(in->ReadU64(&fingerprint));
  if (fingerprint != SchemaFingerprint(schema)) {
    return Status::FailedPrecondition(
        "checkpoint was taken over a different schema");
  }
  uint64_t width;
  IMPLISTAT_RETURN_NOT_OK(in->ReadVarint64(&width));
  if (width != static_cast<uint64_t>(schema.num_attributes())) {
    return Status::InvalidArgument(
        "checkpoint: schema width disagrees with fingerprint");
  }
  IMPLISTAT_RETURN_NOT_OK(in->ReadVarint64(&out->tuples));
  uint8_t has_dictionaries;
  IMPLISTAT_RETURN_NOT_OK(in->ReadU8(&has_dictionaries));
  if (has_dictionaries > 1) {
    return Status::InvalidArgument("checkpoint: bad dictionary flag");
  }
  if (has_dictionaries != 0) {
    std::string_view blob;
    IMPLISTAT_RETURN_NOT_OK(in->ReadLengthPrefixed(&blob));
    IMPLISTAT_ASSIGN_OR_RETURN(out->dictionaries,
                               RestoreValueDictionaries(blob));
    if (out->dictionaries.size() !=
        static_cast<size_t>(schema.num_attributes())) {
      return Status::InvalidArgument(
          "checkpoint: dictionary count disagrees with schema width");
    }
  }
  return Status::OK();
}

}  // namespace

Status QueryEngine::RestoreLegacy(std::string_view payload) {
  ByteReader in(payload);
  CheckpointPrefix prefix;
  IMPLISTAT_RETURN_NOT_OK(ReadCheckpointPrefix(&in, schema_, &prefix));
  uint64_t num_queries;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&num_queries));
  if (num_queries > in.remaining()) {  // every query costs many bytes
    return Status::InvalidArgument("checkpoint: implausible query count");
  }
  for (uint64_t i = 0; i < num_queries; ++i) {
    IMPLISTAT_ASSIGN_OR_RETURN(
        ImplicationQuerySpec spec,
        ImplicationQuerySpec::Deserialize(&in, schema_.num_attributes()));
    std::string_view estimator_state;
    IMPLISTAT_RETURN_NOT_OK(in.ReadLengthPrefixed(&estimator_state));
    // Legacy checkpoints predate the store: every query owned its own
    // estimator, and two key-identical estimators could still hold
    // different bytes (independent merges). Force a dedicated synopsis
    // per query so each restores its own state; the label check stays
    // off because old engines accepted duplicates.
    IMPLISTAT_ASSIGN_OR_RETURN(
        QueryId id, RegisterInternal(std::move(spec),
                                     /*force_new_synopsis=*/true,
                                     /*check_label=*/false));
    IMPLISTAT_RETURN_NOT_OK(store_.entry(queries_[id].synopsis)
                                .estimator->RestoreState(estimator_state));
  }
  if (in.remaining() != 0) {
    return Status::InvalidArgument("checkpoint: trailing bytes");
  }
  tuples_ = prefix.tuples;
  dictionaries_ = std::move(prefix.dictionaries);
  return Status::OK();
}

Status QueryEngine::RestoreV2(std::string_view payload) {
  ByteReader in(payload);
  CheckpointPrefix prefix;
  IMPLISTAT_RETURN_NOT_OK(ReadCheckpointPrefix(&in, schema_, &prefix));
  std::string_view store_blob;
  IMPLISTAT_RETURN_NOT_OK(in.ReadLengthPrefixed(&store_blob));
  IMPLISTAT_RETURN_NOT_OK(RestoreSynopsisStore(store_blob));
  uint64_t num_queries;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&num_queries));
  if (num_queries > in.remaining()) {  // every query costs many bytes
    return Status::InvalidArgument("checkpoint: implausible query count");
  }
  for (uint64_t i = 0; i < num_queries; ++i) {
    IMPLISTAT_ASSIGN_OR_RETURN(
        ImplicationQuerySpec spec,
        ImplicationQuerySpec::Deserialize(&in, schema_.num_attributes()));
    uint8_t flags;
    IMPLISTAT_RETURN_NOT_OK(in.ReadU8(&flags));
    if (flags > (kFlagActive | kFlagAllowDerived)) {
      return Status::InvalidArgument("checkpoint: bad query flags");
    }
    uint8_t binding_byte;
    IMPLISTAT_RETURN_NOT_OK(in.ReadU8(&binding_byte));
    if (binding_byte > static_cast<uint8_t>(QueryBinding::kDerived)) {
      return Status::InvalidArgument("checkpoint: bad query binding");
    }
    RegisteredQuery query;
    query.binding = static_cast<QueryBinding>(binding_byte);
    query.active = (flags & kFlagActive) != 0;
    spec.allow_derived = (flags & kFlagAllowDerived) != 0;

    auto read_ref = [&](int bias, SynopsisId* out) -> Status {
      uint64_t raw;
      IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&raw));
      const int64_t sid = static_cast<int64_t>(raw) - bias;
      if (sid < (bias == 0 ? 0 : -1) ||
          sid >= static_cast<int64_t>(store_.size())) {
        return Status::InvalidArgument(
            "checkpoint: dangling synopsis reference");
      }
      *out = static_cast<SynopsisId>(sid);
      return Status::OK();
    };
    if (query.binding == QueryBinding::kDerived) {
      IMPLISTAT_RETURN_NOT_OK(read_ref(1, &query.derivation.lower));
      IMPLISTAT_RETURN_NOT_OK(read_ref(1, &query.derivation.upper));
      IMPLISTAT_RETURN_NOT_OK(read_ref(1, &query.derivation.f0));
      query.synopsis = query.derivation.primary();
      if (query.active) {
        if (!query.derivation.viable()) {
          return Status::InvalidArgument(
              "checkpoint: derived query without a capping source");
        }
        for (SynopsisId sid : DistinctSources(query.derivation)) {
          if (!store_.entry(sid).live()) {
            return Status::InvalidArgument(
                "checkpoint: dangling synopsis reference");
          }
          store_.AddRef(sid);
        }
      }
    } else {
      IMPLISTAT_RETURN_NOT_OK(read_ref(0, &query.synopsis));
      if (query.active) {
        const SynopsisEntry& entry = store_.entry(query.synopsis);
        if (!entry.live()) {
          return Status::InvalidArgument(
              "checkpoint: dangling synopsis reference");
        }
        // Structural cross-check the envelope CRC cannot do: the bound
        // synopsis must maintain exactly the statistic the spec asks
        // for. Registration only ever binds on key equality, so a
        // mismatch here means a corrupted or hand-edited checkpoint.
        IMPLISTAT_ASSIGN_OR_RETURN(
            AttributeSet a_set,
            AttributeSet::FromNames(schema_, spec.a_attributes));
        IMPLISTAT_ASSIGN_OR_RETURN(
            AttributeSet b_set,
            AttributeSet::FromNames(schema_, spec.b_attributes));
        if (entry.key !=
            CanonicalSynopsisKey(a_set, b_set, spec.where.get(),
                                 spec.conditions, spec.estimator)) {
          return Status::InvalidArgument(
              "checkpoint: query bound to a mismatched synopsis");
        }
        store_.AddRef(query.synopsis);
      }
    }
    query.spec = std::move(spec);
    queries_.push_back(std::move(query));
  }
  // Optional armed-trigger section (absent in trigger-free checkpoints).
  // Restored after the queries so trigger labels resolve against the
  // recovered catalog; a bad section refuses the whole restore.
  if (in.remaining() != 0) {
    std::string_view trigger_blob;
    IMPLISTAT_RETURN_NOT_OK(in.ReadLengthPrefixed(&trigger_blob));
    if (in.remaining() != 0) {
      return Status::InvalidArgument("checkpoint: trailing bytes");
    }
    IMPLISTAT_ASSIGN_OR_RETURN(
        std::string_view trigger_payload,
        UnwrapSnapshot(trigger_blob, SnapshotKind::kTriggerStore));
    auto restored = std::make_unique<cql::TriggerEngine>(&label_source_);
    IMPLISTAT_RETURN_NOT_OK(restored->RestoreFrom(trigger_payload));
    triggers_ = std::move(restored);
  }
  tuples_ = prefix.tuples;
  dictionaries_ = std::move(prefix.dictionaries);
  return Status::OK();
}

StatusOr<std::vector<ValueDictionary>> PeekCheckpointDictionaries(
    std::string_view snapshot) {
  IMPLISTAT_ASSIGN_OR_RETURN(SnapshotKind kind, PeekSnapshotKind(snapshot));
  if (kind != SnapshotKind::kQueryEngine &&
      kind != SnapshotKind::kQueryEngineV2) {
    return Status::InvalidArgument("not a query engine checkpoint");
  }
  IMPLISTAT_ASSIGN_OR_RETURN(std::string_view payload,
                             UnwrapSnapshot(snapshot, kind));
  ByteReader in(payload);
  uint64_t fingerprint, width, tuples;
  IMPLISTAT_RETURN_NOT_OK(in.ReadU64(&fingerprint));
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&width));
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&tuples));
  uint8_t has_dictionaries;
  IMPLISTAT_RETURN_NOT_OK(in.ReadU8(&has_dictionaries));
  if (has_dictionaries > 1) {
    return Status::InvalidArgument("checkpoint: bad dictionary flag");
  }
  if (has_dictionaries == 0) return std::vector<ValueDictionary>{};
  std::string_view blob;
  IMPLISTAT_RETURN_NOT_OK(in.ReadLengthPrefixed(&blob));
  return RestoreValueDictionaries(blob);
}

Status QueryEngine::Checkpoint(const std::string& path) const {
  obs::ScopedTimer timer(CheckpointMetrics::Get().checkpoint_duration_ns);
  IMPLISTAT_ASSIGN_OR_RETURN(std::string bytes, SerializeState());
  IMPLISTAT_RETURN_NOT_OK(WriteFileAtomic(path, bytes));
  const CheckpointMetrics& metrics = CheckpointMetrics::Get();
  metrics.checkpoints_total->Increment();
  metrics.bytes->Record(bytes.size());
  return Status::OK();
}

Status QueryEngine::Restore(const std::string& path) {
  obs::ScopedTimer timer(CheckpointMetrics::Get().restore_duration_ns);
  IMPLISTAT_ASSIGN_OR_RETURN(std::string bytes, ReadFileToString(path));
  IMPLISTAT_RETURN_NOT_OK(RestoreState(bytes));
  CheckpointMetrics::Get().restores_total->Increment();
  return Status::OK();
}

}  // namespace implistat
