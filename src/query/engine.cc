#include "query/engine.h"

#include "obs/instrumented_estimator.h"
#include "query/parser.h"

namespace implistat {

QueryEngine::QueryEngine(Schema schema) : schema_(std::move(schema)) {}

StatusOr<QueryId> QueryEngine::RegisterSql(
    std::string_view text,
    const std::vector<ValueDictionary>* dictionaries) {
  IMPLISTAT_ASSIGN_OR_RETURN(ParsedQuery parsed,
                             ParseImplicationQuery(text));
  IMPLISTAT_ASSIGN_OR_RETURN(ImplicationQuerySpec spec,
                             BindQuery(parsed, schema_, dictionaries));
  spec.label = std::string(text);
  return Register(std::move(spec));
}

StatusOr<QueryId> QueryEngine::Register(ImplicationQuerySpec spec) {
  if (spec.a_attributes.empty()) {
    return Status::InvalidArgument("query needs at least one A attribute");
  }
  if (spec.b_attributes.empty()) {
    return Status::InvalidArgument("query needs at least one B attribute");
  }
  IMPLISTAT_RETURN_NOT_OK(spec.conditions.Validate());
  IMPLISTAT_ASSIGN_OR_RETURN(
      AttributeSet a_set, AttributeSet::FromNames(schema_, spec.a_attributes));
  IMPLISTAT_ASSIGN_OR_RETURN(
      AttributeSet b_set, AttributeSet::FromNames(schema_, spec.b_attributes));
  if (!a_set.DisjointFrom(b_set)) {
    return Status::InvalidArgument("A and B attribute sets must be disjoint");
  }
  if (spec.complement &&
      (spec.estimator.kind == EstimatorKind::kIlc ||
       spec.estimator.kind == EstimatorKind::kIss)) {
    return Status::InvalidArgument(
        "complement queries need an estimator that answers ~S "
        "(NIPS/CI, Exact or DS)");
  }
  RegisteredQuery query{
      std::move(spec),
      ItemsetPacker(schema_, a_set),
      ItemsetPacker(schema_, b_set),
      nullptr,
  };
  IMPLISTAT_ASSIGN_OR_RETURN(
      query.estimator,
      MakeEstimator(query.spec.conditions, query.spec.estimator));
  // Every engine-built estimator reports comparable per-estimator ingest
  // metrics (no-op wrapper removal when metrics are compiled out).
  query.estimator = obs::MaybeInstrument(std::move(query.estimator));
  queries_.push_back(std::move(query));
  return static_cast<QueryId>(queries_.size()) - 1;
}

void QueryEngine::ObserveTuple(TupleRef tuple) {
  ++tuples_;
  for (RegisteredQuery& query : queries_) {
    if (query.spec.where != nullptr && !query.spec.where->Matches(tuple)) {
      continue;
    }
    query.estimator->Observe(query.a_packer.Pack(tuple),
                             query.b_packer.Pack(tuple));
  }
}

Status QueryEngine::ObserveStream(TupleStream& stream) {
  if (stream.schema().num_attributes() != schema_.num_attributes()) {
    return Status::InvalidArgument("stream schema width mismatch");
  }
  // Batched drain: per-query pair buffers feed the estimators through
  // ObserveBatch, amortizing the virtual dispatch and enabling the
  // NipsCi/ShardedNipsCi fast paths. Each estimator still sees its
  // elements in exact stream order, so answers are identical to the
  // per-tuple ObserveTuple path.
  constexpr size_t kBatch = 256;
  std::vector<std::vector<ItemsetPair>> pending(queries_.size());
  for (auto& batch : pending) batch.reserve(kBatch);
  while (auto tuple = stream.Next()) {
    ++tuples_;
    for (size_t i = 0; i < queries_.size(); ++i) {
      RegisteredQuery& query = queries_[i];
      if (query.spec.where != nullptr && !query.spec.where->Matches(*tuple)) {
        continue;
      }
      pending[i].push_back(ItemsetPair{query.a_packer.Pack(*tuple),
                                       query.b_packer.Pack(*tuple)});
      if (pending[i].size() == kBatch) {
        query.estimator->ObserveBatch(pending[i]);
        pending[i].clear();
      }
    }
  }
  for (size_t i = 0; i < queries_.size(); ++i) {
    if (!pending[i].empty()) queries_[i].estimator->ObserveBatch(pending[i]);
  }
  return Status::OK();
}

StatusOr<double> QueryEngine::Answer(QueryId id) const {
  IMPLISTAT_ASSIGN_OR_RETURN(const ImplicationEstimator* est, Estimator(id));
  if (queries_[id].spec.complement) {
    double non_impl = est->EstimateNonImplicationCount();
    if (non_impl < 0) {
      return Status::FailedPrecondition(
          "estimator cannot answer non-implication counts");
    }
    return non_impl;
  }
  return est->EstimateImplicationCount();
}

StatusOr<const ImplicationEstimator*> QueryEngine::Estimator(
    QueryId id) const {
  if (id < 0 || id >= num_queries()) {
    return Status::NotFound("no such query id");
  }
  return const_cast<const ImplicationEstimator*>(
      queries_[id].estimator.get());
}

}  // namespace implistat
