#include "query/parser.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "cql/diag.h"

namespace implistat {

namespace {

// Caret-diagnostic prefix for every error out of this parser; the
// rendering machinery is shared with the trigger language (cql/diag.h).
constexpr std::string_view kDiagPrefix = "query parse error";

enum class TokenKind {
  kIdent,    // bareword: keyword, attribute, number
  kString,   // 'quoted'
  kSymbol,   // ( ) , = !=
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  cql::SourceSpan span;
};

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return out;
}

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  StatusOr<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    while (pos_ < text_.size()) {
      const size_t start = pos_;
      char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '(' || c == ')' || c == ',' || c == '=') {
        tokens.push_back(Token{TokenKind::kSymbol, std::string(1, c),
                               cql::SourceSpan{start, 1}});
        ++pos_;
        continue;
      }
      if (c == '!') {
        if (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '=') {
          return Fail(cql::SourceSpan{start, 1}, "expected '=' after '!'");
        }
        tokens.push_back(
            Token{TokenKind::kSymbol, "!=", cql::SourceSpan{start, 2}});
        pos_ += 2;
        continue;
      }
      if (c == '\'') {
        ++pos_;
        std::string value;
        while (pos_ < text_.size() && text_[pos_] != '\'') {
          value.push_back(text_[pos_++]);
        }
        if (pos_ >= text_.size()) {
          return Fail(cql::SourceSpan{start, pos_ - start},
                      "unterminated string");
        }
        ++pos_;  // closing quote
        tokens.push_back(Token{TokenKind::kString, std::move(value),
                               cql::SourceSpan{start, pos_ - start}});
        continue;
      }
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.' || c == '-') {
        std::string word;
        while (pos_ < text_.size()) {
          char w = text_[pos_];
          if (std::isalnum(static_cast<unsigned char>(w)) || w == '_' ||
              w == '.' || w == '-') {
            word.push_back(w);
            ++pos_;
          } else {
            break;
          }
        }
        tokens.push_back(Token{TokenKind::kIdent, std::move(word),
                               cql::SourceSpan{start, pos_ - start}});
        continue;
      }
      return Fail(cql::SourceSpan{start, 1},
                  std::string("bad character '") + c + "'");
    }
    tokens.push_back(
        Token{TokenKind::kEnd, "", cql::SourceSpan{text_.size(), 1}});
    return tokens;
  }

 private:
  Status Fail(cql::SourceSpan span, std::string message) const {
    return cql::DiagnosticToStatus(
        text_, cql::Diagnostic{std::move(message), span}, kDiagPrefix);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

class Parser {
 public:
  Parser(std::string_view text, std::vector<Token> tokens)
      : text_(text), tokens_(std::move(tokens)) {}

  StatusOr<ParsedQuery> Run() {
    ParsedQuery query;
    IMPLISTAT_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    IMPLISTAT_RETURN_NOT_OK(ExpectKeyword("COUNT"));
    IMPLISTAT_RETURN_NOT_OK(ExpectSymbol("("));
    IMPLISTAT_RETURN_NOT_OK(ExpectKeyword("DISTINCT"));
    IMPLISTAT_ASSIGN_OR_RETURN(query.count_attributes, ParseAttrList());
    IMPLISTAT_RETURN_NOT_OK(ExpectSymbol(")"));
    IMPLISTAT_RETURN_NOT_OK(ExpectKeyword("FROM"));
    IMPLISTAT_ASSIGN_OR_RETURN(query.relation, ExpectIdent());
    IMPLISTAT_RETURN_NOT_OK(ExpectKeyword("WHERE"));
    if (PeekKeyword("NOT")) {
      Advance();
      query.complement = true;
    }
    IMPLISTAT_ASSIGN_OR_RETURN(query.a_attributes, ParseAttrList());
    IMPLISTAT_RETURN_NOT_OK(ExpectKeyword("IMPLIES"));
    IMPLISTAT_ASSIGN_OR_RETURN(query.b_attributes, ParseAttrList());
    while (PeekKeyword("AND")) {
      Advance();
      IMPLISTAT_ASSIGN_OR_RETURN(TextCondition cond, ParseCondition());
      query.conditions.push_back(std::move(cond));
    }
    if (PeekKeyword("WITH")) {
      Advance();
      IMPLISTAT_RETURN_NOT_OK(ParseParams(&query));
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Fail(Peek().span, "trailing tokens from '" + Peek().text + "'");
    }
    IMPLISTAT_RETURN_NOT_OK(query.implication.Validate());
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  Status Fail(cql::SourceSpan span, std::string message) const {
    return cql::DiagnosticToStatus(
        text_, cql::Diagnostic{std::move(message), span}, kDiagPrefix);
  }

  std::string Found() const {
    return Peek().kind == TokenKind::kEnd ? std::string("end of input")
                                          : "'" + Peek().text + "'";
  }

  bool PeekKeyword(std::string_view keyword) const {
    return Peek().kind == TokenKind::kIdent &&
           ToUpper(Peek().text) == keyword;
  }

  Status ExpectKeyword(std::string_view keyword) {
    if (!PeekKeyword(keyword)) {
      return Fail(Peek().span, "expected " + std::string(keyword) +
                                   ", found " + Found());
    }
    Advance();
    return Status::OK();
  }

  Status ExpectSymbol(std::string_view symbol) {
    if (Peek().kind != TokenKind::kSymbol || Peek().text != symbol) {
      return Fail(Peek().span, "expected '" + std::string(symbol) +
                                   "', found " + Found());
    }
    Advance();
    return Status::OK();
  }

  StatusOr<std::string> ExpectIdent() {
    if (Peek().kind != TokenKind::kIdent) {
      return Fail(Peek().span, "expected identifier, found " + Found());
    }
    std::string text = Peek().text;
    Advance();
    return text;
  }

  StatusOr<std::vector<std::string>> ParseAttrList() {
    std::vector<std::string> attrs;
    IMPLISTAT_ASSIGN_OR_RETURN(std::string first, ExpectIdent());
    attrs.push_back(std::move(first));
    while (Peek().kind == TokenKind::kSymbol && Peek().text == ",") {
      // A comma also separates WITH parameters; only continue while the
      // next token cannot start a keyword clause.
      Advance();
      IMPLISTAT_ASSIGN_OR_RETURN(std::string next, ExpectIdent());
      attrs.push_back(std::move(next));
    }
    return attrs;
  }

  StatusOr<TextCondition> ParseCondition() {
    TextCondition cond;
    IMPLISTAT_ASSIGN_OR_RETURN(cond.attribute, ExpectIdent());
    if (Peek().kind == TokenKind::kSymbol && Peek().text == "!=") {
      cond.negated = true;
      Advance();
    } else {
      IMPLISTAT_RETURN_NOT_OK(ExpectSymbol("="));
    }
    if (Peek().kind == TokenKind::kString) {
      cond.value = Peek().text;
      cond.quoted = true;
      Advance();
    } else {
      IMPLISTAT_ASSIGN_OR_RETURN(cond.value, ExpectIdent());
    }
    return cond;
  }

  Status ParseParams(ParsedQuery* query) {
    while (true) {
      const cql::SourceSpan name_span = Peek().span;
      IMPLISTAT_ASSIGN_OR_RETURN(std::string name, ExpectIdent());
      std::string key = ToUpper(name);
      IMPLISTAT_RETURN_NOT_OK(ExpectSymbol("="));
      const cql::SourceSpan value_span = Peek().span;
      IMPLISTAT_ASSIGN_OR_RETURN(std::string value, ExpectIdent());
      IMPLISTAT_RETURN_NOT_OK(
          ApplyParam(key, value, name_span, value_span, query));
      if (Peek().kind == TokenKind::kSymbol && Peek().text == ",") {
        Advance();
        continue;
      }
      return Status::OK();
    }
  }

  Status ApplyParam(const std::string& key, const std::string& value,
                    cql::SourceSpan name_span, cql::SourceSpan value_span,
                    ParsedQuery* query) {
    auto parse_u64 = [&](uint64_t* out) -> Status {
      char* end = nullptr;
      *out = std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Fail(value_span, "bad integer for " + key);
      }
      return Status::OK();
    };
    auto parse_double = [&](double* out) -> Status {
      char* end = nullptr;
      *out = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Fail(value_span, "bad number for " + key);
      }
      return Status::OK();
    };
    ImplicationConditions& cond = query->implication;
    if (key == "K" || key == "MULTIPLICITY") {
      uint64_t v;
      IMPLISTAT_RETURN_NOT_OK(parse_u64(&v));
      cond.max_multiplicity = static_cast<uint32_t>(v);
    } else if (key == "SUPPORT" || key == "SIGMA") {
      IMPLISTAT_RETURN_NOT_OK(parse_u64(&cond.min_support));
    } else if (key == "CONFIDENCE" || key == "GAMMA") {
      IMPLISTAT_RETURN_NOT_OK(parse_double(&cond.min_top_confidence));
    } else if (key == "C" || key == "TOP") {
      uint64_t v;
      IMPLISTAT_RETURN_NOT_OK(parse_u64(&v));
      cond.confidence_c = static_cast<uint32_t>(v);
    } else if (key == "WINDOW") {
      IMPLISTAT_RETURN_NOT_OK(parse_u64(&query->window));
    } else if (key == "STRIDE") {
      IMPLISTAT_RETURN_NOT_OK(parse_u64(&query->stride));
    } else if (key == "STRICT") {
      std::string upper = ToUpper(value);
      if (upper != "TRUE" && upper != "FALSE") {
        return Fail(value_span, "STRICT must be true/false");
      }
      cond.strict_multiplicity = upper == "TRUE";
    } else if (key == "ESTIMATOR") {
      std::string upper = ToUpper(value);
      if (upper == "NIPS") {
        query->estimator = EstimatorKind::kNipsCi;
      } else if (upper == "EXACT") {
        query->estimator = EstimatorKind::kExact;
      } else if (upper == "DS") {
        query->estimator = EstimatorKind::kDistinctSampling;
      } else if (upper == "ILC") {
        query->estimator = EstimatorKind::kIlc;
      } else if (upper == "ISS") {
        query->estimator = EstimatorKind::kIss;
      } else {
        return Fail(value_span, "unknown estimator " + value);
      }
    } else {
      return Fail(name_span, "unknown WITH parameter " + key);
    }
    return Status::OK();
  }

  std::string_view text_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<ParsedQuery> ParseImplicationQuery(std::string_view text) {
  Lexer lexer(text);
  IMPLISTAT_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  return Parser(text, std::move(tokens)).Run();
}

StatusOr<ImplicationQuerySpec> BindQuery(
    const ParsedQuery& parsed, const Schema& schema,
    const std::vector<ValueDictionary>* dictionaries) {
  if (parsed.count_attributes != parsed.a_attributes) {
    return Status::InvalidArgument(
        "query: COUNT(DISTINCT ...) attributes must match the IMPLIES "
        "left-hand side");
  }
  ImplicationQuerySpec spec;
  spec.a_attributes = parsed.a_attributes;
  spec.b_attributes = parsed.b_attributes;
  spec.conditions = parsed.implication;
  spec.complement = parsed.complement;
  spec.estimator.kind = parsed.estimator;
  spec.estimator.window = parsed.window;
  spec.estimator.stride = parsed.stride;

  std::vector<std::shared_ptr<const Predicate>> predicates;
  for (const TextCondition& cond : parsed.conditions) {
    IMPLISTAT_ASSIGN_OR_RETURN(int attr, schema.IndexOf(cond.attribute));
    const ValueDictionary* dict =
        dictionaries != nullptr &&
                static_cast<size_t>(attr) < dictionaries->size()
            ? &(*dictionaries)[attr]
            : nullptr;
    ValueId value;
    if (cond.quoted) {
      // Quoted literals are dictionary values by definition.
      if (dict == nullptr) {
        return Status::InvalidArgument(
            "query: string value '" + cond.value +
            "' needs a dictionary for " + cond.attribute);
      }
      IMPLISTAT_ASSIGN_OR_RETURN(value, dict->Find(cond.value));
    } else if (dict != nullptr && dict->Find(cond.value).ok()) {
      value = dict->Find(cond.value).value();
    } else {
      // Bare token: fall back to a raw value id.
      char* end = nullptr;
      unsigned long long raw = std::strtoull(cond.value.c_str(), &end, 10);
      if (end == cond.value.c_str() || *end != '\0') {
        return Status::InvalidArgument("query: cannot resolve value '" +
                                       cond.value + "' for " +
                                       cond.attribute);
      }
      value = static_cast<ValueId>(raw);
    }
    std::shared_ptr<const Predicate> pred =
        std::make_shared<EqualsPredicate>(attr, value);
    if (cond.negated) pred = std::make_shared<NotPredicate>(std::move(pred));
    predicates.push_back(std::move(pred));
  }
  if (predicates.size() == 1) {
    spec.where = predicates.front();
  } else if (predicates.size() > 1) {
    spec.where = std::make_shared<AndPredicate>(std::move(predicates));
  }
  return spec;
}

}  // namespace implistat
