// QueryEngine: maintains many concurrent implication queries over one
// stream — the "node in a distributed environment [that] receives a stream
// of data and wants to maintain a series of statistics about various
// implicated attributes" of §3.
//
// Each registered query gets its own projection packers, WHERE filter and
// estimator; ObserveTuple routes a tuple to every matching query in one
// pass.

#ifndef IMPLISTAT_QUERY_ENGINE_H_
#define IMPLISTAT_QUERY_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "query/query.h"
#include "stream/itemset.h"
#include "stream/schema.h"
#include "stream/tuple_stream.h"
#include "stream/value_dictionary.h"
#include "util/status_or.h"

namespace implistat {

using QueryId = int;

class QueryEngine {
 public:
  explicit QueryEngine(Schema schema);

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Validates and registers a query; returns its id.
  StatusOr<QueryId> Register(ImplicationQuerySpec spec);

  /// Parses, binds and registers a query in the paper's SQL-like syntax
  /// (see query/parser.h). `dictionaries` resolve quoted condition
  /// values; may be null when conditions use raw value ids.
  StatusOr<QueryId> RegisterSql(
      std::string_view text,
      const std::vector<ValueDictionary>* dictionaries = nullptr);

  /// Feeds one tuple to every registered query.
  void ObserveTuple(TupleRef tuple);

  /// Drains a whole stream. The stream's schema must match.
  Status ObserveStream(TupleStream& stream);

  /// The query's current answer: S, or ~S for complement queries.
  StatusOr<double> Answer(QueryId id) const;

  /// Direct access to the underlying estimator (for the richer readouts
  /// such as F0_sup or memory accounting).
  StatusOr<const ImplicationEstimator*> Estimator(QueryId id) const;

  /// The registered spec (label, conditions, estimator config).
  StatusOr<const ImplicationQuerySpec*> Spec(QueryId id) const;

  /// Folds a remote estimator snapshot (SerializeState bytes from a
  /// compatible estimator) into query `id`'s estimator: decode into a
  /// twin built from the same config, then MergeFrom. This is the
  /// aggregation half of the paper's edge→aggregator topology — edges
  /// ship kilobyte summaries, the aggregator merges them as if it had
  /// observed the combined stream. On failure the query is unchanged.
  /// The shipped tuple count is the caller's to account (the snapshot
  /// does not carry one).
  Status MergeEstimatorState(QueryId id, std::string_view snapshot);

  /// Replace-then-refold: rebuilds query `id`'s estimator from scratch
  /// and folds every snapshot in `snapshots` into the fresh instance,
  /// then swaps it in for the old one. Unlike MergeEstimatorState (which
  /// accumulates), refolding is idempotent by construction — feeding the
  /// same set of per-peer snapshots twice yields the same state, so a
  /// retried or duplicated ship can never double-count. This is the
  /// aggregation tier's fold primitive (src/cluster/): the aggregate is
  /// always "the fold of every peer's latest snapshot", never a running
  /// sum. Builds into temporaries and swaps last: on failure the query
  /// keeps its previous estimator untouched.
  Status RefoldEstimatorState(QueryId id,
                              const std::vector<std::string_view>& snapshots);

  /// Overrides the tuples-seen counter. Aggregation-tier hook only: a
  /// refolded aggregate did not observe its tuples through ObserveTuple,
  /// so the supervisor sets the sum of the folded peers' epochs here to
  /// keep QUERY readouts meaningful.
  void SetTuplesSeen(uint64_t tuples) { tuples_ = tuples; }

  const Schema& schema() const { return schema_; }
  uint64_t tuples_seen() const { return tuples_; }
  int num_queries() const { return static_cast<int>(queries_.size()); }

  // --- Value dictionaries --------------------------------------------------
  //
  // Dictionary-coded text streams (CSV) assign ids by first appearance,
  // so an estimator state is only meaningful together with the mapping
  // that produced it. An engine fed from text carries that mapping here;
  // checkpoints embed it, and PeekCheckpointDictionaries recovers it
  // before the schema is even known — restart seeds its CSV reader with
  // the old mapping and ids line up no matter how the replayed file is
  // ordered.

  /// Attaches the per-attribute dictionaries (one per schema attribute,
  /// or empty to detach). They ride along in SerializeState/Checkpoint.
  Status SetDictionaries(std::vector<ValueDictionary> dictionaries);

  /// The attached dictionaries; empty when the stream is id-coded.
  const std::vector<ValueDictionary>& dictionaries() const {
    return dictionaries_;
  }

  // --- Durable state -------------------------------------------------------
  //
  // A checkpoint captures the whole engine — schema fingerprint, every
  // registered query spec (WHERE clause included), tuples_seen, and each
  // estimator's serialized state — in one kQueryEngine snapshot envelope
  // (util/serde.h). Restoring onto an engine built over the same schema
  // re-registers the queries and resumes the stream exactly where the
  // checkpoint left it.

  /// Serializes the engine into a kQueryEngine snapshot envelope.
  StatusOr<std::string> SerializeState() const;

  /// Rebuilds the engine from SerializeState bytes. Requires a fresh
  /// engine (no registered queries, no observed tuples) whose schema
  /// matches the one the checkpoint was taken over. On failure the
  /// engine is left fresh (no partial registration survives).
  Status RestoreState(std::string_view snapshot);

  /// Writes SerializeState to `path` atomically (write temp file, fsync,
  /// rename), so a crash mid-checkpoint never clobbers the previous one.
  Status Checkpoint(const std::string& path) const;

  /// Reads a Checkpoint file and RestoreStates from it.
  Status Restore(const std::string& path);

 private:
  struct RegisteredQuery {
    ImplicationQuerySpec spec;
    ItemsetPacker a_packer;
    ItemsetPacker b_packer;
    std::unique_ptr<ImplicationEstimator> estimator;
  };

  Status RestoreStateImpl(std::string_view snapshot);

  Schema schema_;
  std::vector<RegisteredQuery> queries_;
  std::vector<ValueDictionary> dictionaries_;
  uint64_t tuples_ = 0;
};

/// Extracts the value dictionaries embedded in a kQueryEngine checkpoint
/// without restoring it (and without knowing the schema — the dictionary
/// section precedes the query specs). Returns an empty vector when the
/// checkpoint carries none (id-coded streams).
StatusOr<std::vector<ValueDictionary>> PeekCheckpointDictionaries(
    std::string_view snapshot);

/// Order-sensitive digest (FNV-1a 64) of the schema's attribute names and
/// declared cardinalities. Stored in every checkpoint; restore refuses a
/// snapshot whose fingerprint differs from the restoring engine's schema.
uint64_t SchemaFingerprint(const Schema& schema);

}  // namespace implistat

#endif  // IMPLISTAT_QUERY_ENGINE_H_
