// QueryEngine: maintains many concurrent implication queries over one
// stream — the "node in a distributed environment [that] receives a stream
// of data and wants to maintain a series of statistics about various
// implicated attributes" of §3.
//
// Ownership model (the multi-tenant refactor): queries do not own
// estimators. A SynopsisStore (query/synopsis_store.h) holds each
// estimator once, keyed by everything that determines its bytes, and
// queries hold reference-counted bindings:
//
//   * kOwner  — the query created the synopsis.
//   * kShared — registration hit an existing key; answers are
//               byte-identical to a dedicated run (same estimator, same
//               observation sequence) at 1/n the memory.
//   * kDerived — no key hit, but the entailment pass
//               (query/entailment.h) found existing synopses that bound
//               the answer; the query allocates nothing and answers with
//               derived=true plus [lower, upper] bounds (opt-in via
//               ImplicationQuerySpec::allow_derived).
//
// ObserveTuple/ObserveStream iterate synopses, not queries, so a WHERE
// clause shared by a thousand queries is evaluated once per tuple.
// Sharing is on by default; QueryEngineOptions::query_sharing = false
// (the --no-query-sharing flag) restores the degenerate 1:1 layout for
// A/B tests and bisection.

#ifndef IMPLISTAT_QUERY_ENGINE_H_
#define IMPLISTAT_QUERY_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cql/trigger_engine.h"
#include "query/entailment.h"
#include "query/query.h"
#include "query/synopsis_store.h"
#include "stream/itemset.h"
#include "stream/schema.h"
#include "stream/tuple_stream.h"
#include "stream/value_dictionary.h"
#include "util/status_or.h"

namespace implistat {

using QueryId = int;

/// How a registered query is bound to its synopsis. Values are part of
/// the kQueryEngineV2 checkpoint format — append only.
enum class QueryBinding : uint8_t { kOwner = 0, kShared = 1, kDerived = 2 };

struct QueryEngineOptions {
  /// Share synopses between key-identical queries and run the entailment
  /// pass for allow_derived ones. Off = every query gets a dedicated
  /// estimator (the pre-refactor behavior).
  bool query_sharing = true;
};

/// A query's full answer: the estimate plus the derivation metadata the
/// wire QUERY response carries.
struct QueryAnswer {
  double estimate = 0;
  /// 1σ error bar from the estimator; for derived answers, the bound
  /// half-width (upper - lower) / 2. Negative = unquantified.
  double std_error = -1;
  bool derived = false;
  /// Entailment bounds; only meaningful when derived.
  double lower = 0;
  double upper = 0;
};

class QueryEngine {
 public:
  explicit QueryEngine(Schema schema, QueryEngineOptions options = {});

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Validates and registers a query; returns its id. A non-empty label
  /// already carried by an active query is rejected with AlreadyExists —
  /// a silent shadow registration was never answerable by label.
  StatusOr<QueryId> Register(ImplicationQuerySpec spec);

  /// Parses, binds and registers a query in the paper's SQL-like syntax
  /// (see query/parser.h). `dictionaries` resolve quoted condition
  /// values; may be null when conditions use raw value ids.
  StatusOr<QueryId> RegisterSql(
      std::string_view text,
      const std::vector<ValueDictionary>* dictionaries = nullptr);

  /// Unbinds the query and drops its synopsis references; an estimator
  /// whose last reference drops is freed. The id stays allocated (ids
  /// never shift) but answers NotFound from here on.
  Status Deregister(QueryId id);

  /// Feeds one tuple to every live synopsis.
  void ObserveTuple(TupleRef tuple);

  /// Drains a whole stream. The stream's schema must match.
  Status ObserveStream(TupleStream& stream);

  /// The query's current answer: S, or ~S for complement queries. For
  /// derived queries, the bound midpoint (see AnswerEx). Estimate only —
  /// unlike AnswerEx it skips the leave-one-out std-error pass, so it is
  /// cheap enough for per-epoch polling (trigger evaluation).
  StatusOr<double> Answer(QueryId id) const;

  /// Answer plus derivation metadata (flag, bounds, error bar).
  StatusOr<QueryAnswer> AnswerEx(QueryId id) const;

  /// Direct access to the underlying estimator (for the richer readouts
  /// such as F0_sup or memory accounting). For kShared queries this is
  /// the shared instance; for kDerived, the primary bound source.
  StatusOr<const ImplicationEstimator*> Estimator(QueryId id) const;

  /// The registered spec (label, conditions, estimator config).
  StatusOr<const ImplicationQuerySpec*> Spec(QueryId id) const;

  /// The query's binding mode and synopsis id.
  StatusOr<QueryBinding> Binding(QueryId id) const;
  StatusOr<SynopsisId> SynopsisOf(QueryId id) const;

  /// Ids of queries that are registered and not deregistered — what a
  /// QUERY request with no explicit ids enumerates.
  std::vector<QueryId> ActiveQueryIds() const;

  /// Folds a remote estimator snapshot (SerializeState bytes from a
  /// compatible estimator) into query `id`'s synopsis: decode into a
  /// twin built from the same config, then MergeFrom. This is the
  /// aggregation half of the paper's edge→aggregator topology — edges
  /// ship kilobyte summaries, the aggregator merges them as if it had
  /// observed the combined stream. On failure the synopsis is unchanged.
  /// Every query sharing the synopsis sees the fold; derived queries
  /// (which own no synopsis) refuse with FailedPrecondition.
  Status MergeEstimatorState(QueryId id, std::string_view snapshot);

  /// Replace-then-refold on query `id`'s synopsis — see
  /// RefoldSynopsisState. Derived queries refuse.
  Status RefoldEstimatorState(QueryId id,
                              const std::vector<std::string_view>& snapshots);

  /// Replace-then-refold: rebuilds the synopsis's estimator from scratch
  /// and folds every snapshot in `snapshots` into the fresh instance,
  /// then swaps it in. Unlike MergeEstimatorState (which accumulates),
  /// refolding is idempotent by construction — feeding the same set of
  /// per-peer snapshots twice yields the same state, so a retried or
  /// duplicated ship can never double-count. This is the aggregation
  /// tier's fold primitive (src/cluster/), keyed by synopsis so a shared
  /// estimator folds exactly once per fleet poll. Builds into
  /// temporaries and swaps last: on failure the previous estimator
  /// stays untouched.
  Status RefoldSynopsisState(SynopsisId id,
                             const std::vector<std::string_view>& snapshots);

  /// One fold unit per live synopsis: the synopsis id plus a
  /// representative (first active, non-derived) query bound to it — the
  /// query id an aggregator uses for SNAPSHOT pulls, since the wire
  /// addresses estimator state by query id. Synopses alive only through
  /// derived references have no representative and are omitted.
  struct FoldUnit {
    SynopsisId synopsis = -1;
    QueryId representative = -1;
  };
  std::vector<FoldUnit> FoldUnits() const;

  /// Overrides the tuples-seen counter. Aggregation-tier hook only: a
  /// refolded aggregate did not observe its tuples through ObserveTuple,
  /// so the supervisor sets the sum of the folded peers' epochs here to
  /// keep QUERY readouts meaningful.
  void SetTuplesSeen(uint64_t tuples) { tuples_ = tuples; }

  // --- Continuous triggers -------------------------------------------------
  //
  // CREATE TRIGGER statements (src/cql/) compile against the registered
  // query labels and arm on the ingest path: the trigger engine is
  // ticked with the tuple count from ObserveTuple/ObserveStream and
  // evaluates due programs at their epoch boundaries. Firings accumulate
  // until TakeTriggerFirings drains them (the net/ writer does this
  // after every engine-mutating op and fans them out to subscribers).

  /// Compiles and arms one CREATE TRIGGER statement; returns its name.
  StatusOr<std::string> InstallTrigger(std::string_view statement);

  Status RemoveTrigger(std::string_view name);

  /// The armed trigger engine, or null when none was ever installed.
  cql::TriggerEngine* triggers() { return triggers_.get(); }
  const cql::TriggerEngine* triggers() const { return triggers_.get(); }

  bool has_pending_trigger_firings() const {
    return triggers_ != nullptr && triggers_->has_pending_firings();
  }
  std::vector<cql::TriggerFiring> TakeTriggerFirings();

  const Schema& schema() const { return schema_; }
  uint64_t tuples_seen() const { return tuples_; }
  int num_queries() const { return static_cast<int>(queries_.size()); }
  /// Live (estimator-holding) synopses. Equal to the number of active
  /// queries with sharing off; sub-linear in it with sharing on.
  int num_synopses() const { return store_.num_live(); }
  /// Memory over live synopses, each shared estimator counted once.
  uint64_t TotalSynopsisMemoryBytes() const {
    return store_.TotalMemoryBytes();
  }
  bool query_sharing() const { return options_.query_sharing; }

  // --- Value dictionaries --------------------------------------------------
  //
  // Dictionary-coded text streams (CSV) assign ids by first appearance,
  // so an estimator state is only meaningful together with the mapping
  // that produced it. An engine fed from text carries that mapping here;
  // checkpoints embed it, and PeekCheckpointDictionaries recovers it
  // before the schema is even known — restart seeds its CSV reader with
  // the old mapping and ids line up no matter how the replayed file is
  // ordered.

  /// Attaches the per-attribute dictionaries (one per schema attribute,
  /// or empty to detach). They ride along in SerializeState/Checkpoint.
  Status SetDictionaries(std::vector<ValueDictionary> dictionaries);

  /// The attached dictionaries; empty when the stream is id-coded.
  const std::vector<ValueDictionary>& dictionaries() const {
    return dictionaries_;
  }

  // --- Durable state -------------------------------------------------------
  //
  // A checkpoint captures the whole engine — schema fingerprint, every
  // registered query spec (WHERE clause included), tuples_seen, and the
  // synopsis store (each shared estimator serialized ONCE, with
  // query→synopsis references) — in one kQueryEngineV2 snapshot
  // envelope. Legacy kQueryEngine checkpoints (pre-store, one estimator
  // per query) still restore, into a degenerate 1:1 store. Restoring
  // onto an engine built over the same schema re-registers the queries,
  // re-establishes the sharing structure recorded in the checkpoint, and
  // resumes the stream exactly where the checkpoint left it.

  /// Serializes the engine into a kQueryEngineV2 snapshot envelope.
  StatusOr<std::string> SerializeState() const;

  /// Rebuilds the engine from SerializeState bytes (kQueryEngineV2 or
  /// legacy kQueryEngine). Requires a fresh engine (no registered
  /// queries, no observed tuples) whose schema matches the one the
  /// checkpoint was taken over. On failure the engine is left fresh (no
  /// partial registration survives); dangling query→synopsis references
  /// refuse the restore outright.
  Status RestoreState(std::string_view snapshot);

  /// Writes SerializeState to `path` atomically (write temp file, fsync,
  /// rename), so a crash mid-checkpoint never clobbers the previous one.
  Status Checkpoint(const std::string& path) const;

  /// Reads a Checkpoint file and RestoreStates from it.
  Status Restore(const std::string& path);

 private:
  /// Adapter the trigger subsystem resolves labels/estimates through —
  /// cql/ stays below query/ in the library graph.
  class LabelSource : public cql::EstimateSource {
   public:
    explicit LabelSource(const QueryEngine* engine) : engine_(engine) {}
    bool HasLabel(std::string_view label) const override;
    StatusOr<double> EstimateForLabel(std::string_view label) const override;

   private:
    const QueryEngine* engine_;
  };

  struct RegisteredQuery {
    ImplicationQuerySpec spec;
    QueryBinding binding = QueryBinding::kOwner;
    /// kOwner/kShared: the bound synopsis. kDerived: the primary source.
    SynopsisId synopsis = -1;
    DerivationSources derivation;  // meaningful for kDerived only
    bool active = true;
  };

  StatusOr<QueryId> RegisterInternal(ImplicationQuerySpec spec,
                                     bool force_new_synopsis,
                                     bool check_label);
  Status CheckQueryId(QueryId id) const;
  const SynopsisEntry& EntryOf(const RegisteredQuery& query) const;
  Status RestoreStateImpl(std::string_view snapshot);
  Status RestoreLegacy(std::string_view payload);
  Status RestoreV2(std::string_view payload);
  StatusOr<std::string> SerializeSynopsisStore() const;
  Status RestoreSynopsisStore(std::string_view blob);

  /// Resolves a trigger's query label: an explicit spec.label match
  /// first, then the positional form `q<N>` for the N-th registered
  /// query (SQL registration assigns no label, so `q0` is how wire
  /// clients name the first query). Returns -1 when nothing matches.
  QueryId FindActiveByLabel(std::string_view label) const;

  Schema schema_;
  QueryEngineOptions options_;
  SynopsisStore store_;
  std::vector<RegisteredQuery> queries_;
  std::vector<ValueDictionary> dictionaries_;
  uint64_t tuples_ = 0;
  LabelSource label_source_{this};
  std::unique_ptr<cql::TriggerEngine> triggers_;  // lazy: null until install
};

/// Extracts the value dictionaries embedded in a kQueryEngine or
/// kQueryEngineV2 checkpoint without restoring it (and without knowing
/// the schema — the dictionary section precedes the query specs).
/// Returns an empty vector when the checkpoint carries none (id-coded
/// streams).
StatusOr<std::vector<ValueDictionary>> PeekCheckpointDictionaries(
    std::string_view snapshot);

/// Order-sensitive digest (FNV-1a 64) of the schema's attribute names and
/// declared cardinalities. Stored in every checkpoint; restore refuses a
/// snapshot whose fingerprint differs from the restoring engine's schema.
uint64_t SchemaFingerprint(const Schema& schema);

}  // namespace implistat

#endif  // IMPLISTAT_QUERY_ENGINE_H_
