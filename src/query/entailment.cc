#include "query/entailment.h"

#include <algorithm>

#include "util/serde.h"

namespace implistat {

namespace {

// Ordered-subset test over the sets' sorted-free index lists. Attribute
// sets preserve declaration order, so membership is checked pairwise.
bool IsSubsetOf(const AttributeSet& small, const AttributeSet& big) {
  for (int index : small.indices()) {
    const auto& haystack = big.indices();
    if (std::find(haystack.begin(), haystack.end(), index) ==
        haystack.end()) {
      return false;
    }
  }
  return true;
}

bool SameAttributeSet(const AttributeSet& a, const AttributeSet& b) {
  return IsSubsetOf(a, b) && IsSubsetOf(b, a);
}

std::string PredicateBytes(const Predicate* where) {
  if (where == nullptr) return {};
  ByteWriter out;
  where->SerializeTo(&out);
  return out.Release();
}

// Shared-universe preconditions: same counted side, same stream filter,
// same support threshold, both strict-multiplicity lifetime synopses.
bool SharesUniverse(const SynopsisEntry& entry, const AttributeSet& a_set,
                    const std::string& where_bytes,
                    const ImplicationConditions& conditions) {
  if (!entry.live()) return false;
  if (entry.config.window != 0) return false;
  if (!entry.conditions.strict_multiplicity) return false;
  if (entry.conditions.min_support != conditions.min_support) return false;
  if (!SameAttributeSet(entry.a_set, a_set)) return false;
  return PredicateBytes(entry.where.get()) == where_bytes;
}

}  // namespace

DerivationSources DeriveFromSynopses(const AttributeSet& a_set,
                                     const AttributeSet& b_set,
                                     const Predicate* where,
                                     const ImplicationConditions& conditions,
                                     const EstimatorConfig& config,
                                     bool complement,
                                     const SynopsisStore& store) {
  DerivationSources sources;
  // Eligibility of the query itself — see the header's soundness notes.
  if (complement || config.window != 0 || !conditions.strict_multiplicity) {
    return sources;
  }
  const std::string where_bytes = PredicateBytes(where);

  double best_lower = -1;
  double best_upper = -1;
  double best_f0 = -1;
  for (SynopsisId id = 0; id < store.size(); ++id) {
    const SynopsisEntry& entry = store.entry(id);
    if (!SharesUniverse(entry, a_set, where_bytes, conditions)) continue;
    const ImplicationConditions& c = entry.conditions;

    // F0 cap: S <= supported-distinct of A, from any universe-sharing
    // synopsis whose estimator can answer it.
    const double f0 = entry.estimator->EstimateSupportedDistinct();
    if (f0 >= 0 && (sources.f0 == -1 || f0 < best_f0)) {
      sources.f0 = id;
      best_f0 = f0;
    }

    const bool b_superset = IsSubsetOf(b_set, entry.b_set);
    const bool b_subset = IsSubsetOf(entry.b_set, b_set);

    // Lower source: the candidate is at least as strict on every axis,
    // so every itemset it counts, the query counts too.
    if (b_superset && c.max_multiplicity <= conditions.max_multiplicity &&
        c.min_top_confidence >= conditions.min_top_confidence &&
        c.confidence_c <= conditions.confidence_c) {
      const double estimate = entry.estimator->EstimateImplicationCount();
      if (sources.lower == -1 || estimate > best_lower) {
        sources.lower = id;
        best_lower = estimate;
      }
    }
    // Upper source: at least as lenient on every axis.
    if (b_subset && c.max_multiplicity >= conditions.max_multiplicity &&
        c.min_top_confidence <= conditions.min_top_confidence &&
        c.confidence_c >= conditions.confidence_c) {
      const double estimate = entry.estimator->EstimateImplicationCount();
      if (sources.upper == -1 || estimate < best_upper) {
        sources.upper = id;
        best_upper = estimate;
      }
    }
  }
  return sources;
}

DerivedBounds EvaluateDerivedBounds(const DerivationSources& sources,
                                    const SynopsisStore& store) {
  DerivedBounds bounds;
  bounds.lower = 0;
  if (sources.lower != -1) {
    bounds.lower = std::max(
        0.0, store.entry(sources.lower).estimator->EstimateImplicationCount());
  }
  double upper = -1;
  if (sources.upper != -1) {
    upper = store.entry(sources.upper).estimator->EstimateImplicationCount();
  }
  if (sources.f0 != -1) {
    const double f0 =
        store.entry(sources.f0).estimator->EstimateSupportedDistinct();
    if (f0 >= 0 && (upper < 0 || f0 < upper)) upper = f0;
  }
  bounds.upper = std::max(upper, bounds.lower);
  return bounds;
}

}  // namespace implistat
