#include "baseline/exact_counter.h"

#include "util/logging.h"

namespace implistat {

ExactImplicationCounter::ExactImplicationCounter(
    ImplicationConditions conditions)
    : conditions_(conditions) {
  IMPLISTAT_CHECK(conditions_.Validate().ok()) << "invalid conditions";
}

void ExactImplicationCounter::Observe(ItemsetKey a, ItemsetKey b) {
  ++tuples_;
  // Unlimited pair tracking: the ground truth evaluates the conditions on
  // exact counts, not on a K-bounded summary.
  ItemsetState& state =
      items_.try_emplace(a, /*unlimited_tracking=*/true).first->second;
  bool was_supported = state.supported(conditions_);
  bool was_dirty = state.dirty();
  state.Observe(b, conditions_);
  if (!was_supported && state.supported(conditions_)) ++supported_;
  if (!was_dirty && state.dirty()) ++dirty_;
}

size_t ExactImplicationCounter::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [key, state] : items_) {
    bytes += sizeof(key) + state.MemoryBytes() + 2 * sizeof(void*);
  }
  return bytes;
}

}  // namespace implistat
