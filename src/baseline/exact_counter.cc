#include "baseline/exact_counter.h"

#include "util/logging.h"

namespace implistat {

ExactImplicationCounter::ExactImplicationCounter(
    ImplicationConditions conditions)
    : conditions_(conditions) {
  IMPLISTAT_CHECK(conditions_.Validate().ok()) << "invalid conditions";
}

void ExactImplicationCounter::Observe(ItemsetKey a, ItemsetKey b) {
  ++tuples_;
  // Unlimited pair tracking: the ground truth evaluates the conditions on
  // exact counts, not on a K-bounded summary.
  ItemsetState& state =
      items_.try_emplace(a, /*unlimited_tracking=*/true).first->second;
  bool was_supported = state.supported(conditions_);
  bool was_dirty = state.dirty();
  state.Observe(b, conditions_);
  if (!was_supported && state.supported(conditions_)) ++supported_;
  if (!was_dirty && state.dirty()) ++dirty_;
}

size_t ExactImplicationCounter::MemoryBytes() const {
  // Bucket array + per-node overhead + the states themselves (the same
  // accounting FringeCell::MemoryBytes uses for its table).
  size_t bytes = sizeof(*this) + items_.bucket_count() * sizeof(void*);
  for (const auto& [key, state] : items_) {
    bytes += sizeof(key) + state.MemoryBytes() + 2 * sizeof(void*);
  }
  return bytes;
}

StatusOr<std::string> ExactImplicationCounter::SerializeState() const {
  ByteWriter out;
  conditions_.SerializeTo(&out);
  out.PutVarint64(tuples_);
  out.PutVarint64(items_.size());
  for (const auto& [key, state] : items_) {
    out.PutU64(key);
    state.SerializeTo(&out);
  }
  return WrapSnapshot(SnapshotKind::kExactCounter, out.Release());
}

Status ExactImplicationCounter::RestoreState(std::string_view snapshot) {
  IMPLISTAT_ASSIGN_OR_RETURN(
      std::string_view payload,
      UnwrapSnapshot(snapshot, SnapshotKind::kExactCounter));
  ByteReader in(payload);
  IMPLISTAT_ASSIGN_OR_RETURN(ImplicationConditions conditions,
                             ImplicationConditions::Deserialize(&in));
  uint64_t tuples;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&tuples));
  uint64_t num_items;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&num_items));
  // Each entry is at least 9 bytes on the wire (u64 key + minimal state);
  // bound the count by the bytes present before reserving.
  if (num_items > in.remaining() / 9 + 1) {
    return Status::InvalidArgument("ExactCounter: implausible item count");
  }
  // Decode into a temporary table; *this is untouched until the whole
  // snapshot has validated.
  std::unordered_map<ItemsetKey, ItemsetState> items;
  items.reserve(num_items);
  uint64_t supported = 0;
  uint64_t dirty = 0;
  for (uint64_t i = 0; i < num_items; ++i) {
    ItemsetKey key;
    IMPLISTAT_RETURN_NOT_OK(in.ReadU64(&key));
    IMPLISTAT_ASSIGN_OR_RETURN(ItemsetState state,
                               ItemsetState::Deserialize(&in));
    if (state.supported(conditions)) ++supported;
    if (state.dirty()) ++dirty;
    if (!items.emplace(key, std::move(state)).second) {
      return Status::InvalidArgument("ExactCounter: duplicate itemset key");
    }
  }
  if (!in.AtEnd()) {
    return Status::InvalidArgument("ExactCounter: trailing bytes");
  }
  conditions_ = conditions;
  items_ = std::move(items);
  supported_ = supported;
  dirty_ = dirty;
  tuples_ = tuples;
  return Status::OK();
}

Status ExactImplicationCounter::Merge(const ExactImplicationCounter& other) {
  if (!(conditions_ == other.conditions_)) {
    return Status::InvalidArgument("ExactCounter::Merge: conditions differ");
  }
  for (const auto& [key, state] : other.items_) {
    auto [it, inserted] =
        items_.try_emplace(key, /*unlimited_tracking=*/true);
    if (inserted) {
      it->second = state;
    } else {
      it->second.Merge(state, conditions_);
    }
  }
  tuples_ += other.tuples_;
  // Supports add across nodes, so supported/dirty membership can change
  // for merged entries; recount rather than patch.
  supported_ = 0;
  dirty_ = 0;
  for (const auto& [key, state] : items_) {
    if (state.supported(conditions_)) ++supported_;
    if (state.dirty()) ++dirty_;
  }
  return Status::OK();
}

Status ExactImplicationCounter::MergeFrom(const ImplicationEstimator& other) {
  if (const auto* exact =
          dynamic_cast<const ExactImplicationCounter*>(&other)) {
    return Merge(*exact);
  }
  // Wire-contract fallback (e.g. an instrumented wrapper around an exact
  // counter): decode the snapshot into a temporary and merge that.
  IMPLISTAT_ASSIGN_OR_RETURN(std::string snapshot, other.SerializeState());
  ExactImplicationCounter decoded(conditions_);
  IMPLISTAT_RETURN_NOT_OK(decoded.RestoreState(snapshot));
  return Merge(decoded);
}

}  // namespace implistat
