// Distinct Sampling (Gibbons, VLDB 2001 — the paper's reference [17]),
// adapted to implication counting as the "DS" baseline of §6.2.
//
// A level-based sample of the *distinct* itemsets of A: itemset a is in
// the sample while level(a) = p(hash(a)) ≥ l, and the sampling level l
// rises whenever the sample outgrows its budget, halving the expected
// sample. For every sampled itemset the full per-(a, b) detail needed to
// evaluate the implication conditions is kept (bounded per itemset, see
// ItemsetState). The implication count is estimated by scaling the number
// of *qualifying* sampled itemsets by 2^l — the scaling step whose
// variance the paper's experiments expose ("the data in the sample is not
// representative of the implication").

#ifndef IMPLISTAT_BASELINE_DISTINCT_SAMPLING_H_
#define IMPLISTAT_BASELINE_DISTINCT_SAMPLING_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/conditions.h"
#include "core/estimator.h"
#include "hash/hash_family.h"

namespace implistat {

struct DistinctSamplingOptions {
  /// Total budget in itemset entries; the paper gives DS "the exact same
  /// sample space" as NIPS/CI, 1920 entries (Table 5). An entry is one
  /// tracked itemset of A together with its O(K) pair counters.
  size_t max_sample_entries = 1920;
  /// Per-itemset bound t on tracked detail (Table 5 sets t = 39 =
  /// 1920/50, "following the suggestion in [17]"): at most t distinct b
  /// itemsets are tracked per sampled a before the itemset's confidence
  /// bookkeeping saturates. Effective only when t < K + 1.
  size_t per_value_bound = 39;
  HashKind hash_kind = HashKind::kMix;
  uint64_t seed = 0;
};

class DistinctSampling final : public ImplicationEstimator {
 public:
  DistinctSampling(ImplicationConditions conditions,
                   DistinctSamplingOptions options);

  void Observe(ItemsetKey a, ItemsetKey b) override;

  double EstimateImplicationCount() const override;
  double EstimateNonImplicationCount() const override;
  double EstimateSupportedDistinct() const override;
  size_t MemoryBytes() const override;
  std::string name() const override { return "DS"; }

  /// Average multiplicity among the qualifying (supported, implying)
  /// itemsets in the sample — the aggregate behind Table 2's "average
  /// number of destinations ..." query. Level-invariant: the subsample is
  /// uniform over distinct itemsets, so the mean needs no 2^level
  /// scaling. Returns 0 when no sampled itemset qualifies.
  double AverageMultiplicity() const;

  int level() const { return level_; }
  size_t sample_size() const { return sample_.size(); }

  /// Durable-state contract (core/estimator.h): level, options, and the
  /// full sample round-trip, so a restored DS continues the identical
  /// sampling process. MergeFrom unions two samples taken with the same
  /// hash (level rises to the max of the two, then to fit the budget) —
  /// the classic distinct-sampling composability.
  StatusOr<std::string> SerializeState() const override;
  Status RestoreState(std::string_view snapshot) override;
  Status MergeFrom(const ImplicationEstimator& other) override;

  /// Direct merge of another DS with identical conditions and options.
  Status Merge(const DistinctSampling& other);

 private:
  // Drops every sampled itemset whose level is below the (raised)
  // sampling level.
  void RaiseLevel();

  double ScaleFactor() const;

  ImplicationConditions conditions_;
  DistinctSamplingOptions options_;
  std::unique_ptr<Hasher64> hasher_;
  std::unordered_map<ItemsetKey, ItemsetState> sample_;
  int level_ = 0;
};

}  // namespace implistat

#endif  // IMPLISTAT_BASELINE_DISTINCT_SAMPLING_H_
