// Exact implication counting with hash tables.
//
// The ground truth the paper compares against for the real-data
// experiments (§6.2: "we used an exact method based on hash tables").
// Memory grows with the number of distinct itemsets of A — exactly the
// cost the constrained-environment algorithms avoid — so this is a test
// oracle and offline tool, not a router-grade estimator.

#ifndef IMPLISTAT_BASELINE_EXACT_COUNTER_H_
#define IMPLISTAT_BASELINE_EXACT_COUNTER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/conditions.h"
#include "core/estimator.h"

namespace implistat {

class ExactImplicationCounter final : public ImplicationEstimator {
 public:
  explicit ExactImplicationCounter(ImplicationConditions conditions);

  void Observe(ItemsetKey a, ItemsetKey b) override;

  double EstimateImplicationCount() const override {
    return static_cast<double>(ImplicationCount());
  }
  double EstimateNonImplicationCount() const override {
    return static_cast<double>(NonImplicationCount());
  }
  double EstimateSupportedDistinct() const override {
    return static_cast<double>(SupportedDistinct());
  }
  double EstimateStdError() const override { return 0.0; }  // exact
  size_t MemoryBytes() const override;
  std::string name() const override { return "Exact"; }

  /// S: itemsets that meet the minimum support and were never dirty.
  uint64_t ImplicationCount() const { return supported_ - dirty_; }
  /// ~S: supported itemsets that violated a condition at some point.
  uint64_t NonImplicationCount() const { return dirty_; }
  /// F0_sup(A).
  uint64_t SupportedDistinct() const { return supported_; }
  /// F0(A): all distinct itemsets of A, regardless of support.
  uint64_t DistinctA() const { return items_.size(); }
  uint64_t tuples_seen() const { return tuples_; }

  const ImplicationConditions& conditions() const { return conditions_; }

  /// Durable-state contract (core/estimator.h): the full hash table —
  /// every itemset's state machine — round-trips, so a restored counter
  /// answers identically on any stream suffix. MergeFrom folds another
  /// exact counter's table in (distributed ground truth).
  StatusOr<std::string> SerializeState() const override;
  Status RestoreState(std::string_view snapshot) override;
  Status MergeFrom(const ImplicationEstimator& other) override;

  /// Direct merge of another exact counter with the same conditions.
  Status Merge(const ExactImplicationCounter& other);

  /// Buckets in the underlying hash table; exposed so tests can assert
  /// the MemoryBytes accounting covers the bucket array.
  size_t HashBucketCount() const { return items_.bucket_count(); }

 private:
  ImplicationConditions conditions_;
  std::unordered_map<ItemsetKey, ItemsetState> items_;
  uint64_t supported_ = 0;
  uint64_t dirty_ = 0;
  uint64_t tuples_ = 0;
};

}  // namespace implistat

#endif  // IMPLISTAT_BASELINE_EXACT_COUNTER_H_
