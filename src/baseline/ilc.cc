#include "baseline/ilc.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace implistat {

namespace {
constexpr double kConfidenceEpsilon = 1e-9;
}  // namespace

Ilc::Ilc(ImplicationConditions conditions, IlcOptions options)
    : conditions_(conditions),
      options_(options),
      width_(static_cast<uint64_t>(std::ceil(1.0 / options.epsilon))) {
  IMPLISTAT_CHECK(conditions_.Validate().ok()) << "invalid conditions";
  IMPLISTAT_CHECK(options_.epsilon > 0.0 && options_.epsilon < 1.0);
}

void Ilc::Observe(ItemsetKey a, ItemsetKey b) {
  ++count_;
  if (!dirty_.contains(a)) {
    auto it = entries_.find(a);
    if (it == entries_.end()) {
      Entry entry;
      entry.count = 1;
      entry.delta = current_bucket_ - 1;
      entry.pairs.push_back(PairEntry{b, 1, current_bucket_ - 1});
      entries_.emplace(a, std::move(entry));
    } else {
      Entry& entry = it->second;
      ++entry.count;
      auto pair_it =
          std::find_if(entry.pairs.begin(), entry.pairs.end(),
                       [b](const PairEntry& p) { return p.b == b; });
      if (pair_it != entry.pairs.end()) {
        ++pair_it->count;
      } else {
        entry.pairs.push_back(PairEntry{b, 1, current_bucket_ - 1});
      }
      if (ViolatesConditions(entry)) {
        // Mark dirty and delete all pair entries for this itemset (§5.1).
        dirty_.insert(a);
        entries_.erase(it);
      }
    }
  }
  if (count_ % width_ == 0) {
    PruneBucket();
    ++current_bucket_;
  }
}

bool Ilc::ViolatesConditions(const Entry& entry) const {
  if (entry.count < conditions_.min_support) return false;
  if (entry.pairs.size() > conditions_.max_multiplicity &&
      conditions_.strict_multiplicity) {
    return true;
  }
  // Top-c confidence over the lossy pair counters.
  std::vector<uint64_t> counts;
  counts.reserve(entry.pairs.size());
  for (const PairEntry& p : entry.pairs) counts.push_back(p.count);
  size_t take = std::min<size_t>(conditions_.confidence_c, counts.size());
  std::partial_sort(counts.begin(), counts.begin() + take, counts.end(),
                    std::greater<uint64_t>());
  uint64_t sum = 0;
  for (size_t i = 0; i < take; ++i) sum += counts[i];
  double conf = static_cast<double>(sum) / static_cast<double>(entry.count);
  return conf + kConfidenceEpsilon < conditions_.min_top_confidence;
}

void Ilc::PruneBucket() {
  for (auto it = entries_.begin(); it != entries_.end();) {
    Entry& entry = it->second;
    if (entry.count + entry.delta <= current_bucket_) {
      // Below the lossy threshold: drop the itemset and its pair entries.
      it = entries_.erase(it);
      continue;
    }
    // Pair entries follow the same pruning rule independently.
    std::erase_if(entry.pairs, [this](const PairEntry& p) {
      return p.count + p.delta <= current_bucket_;
    });
    ++it;
  }
}

double Ilc::EstimateImplicationCount() const {
  uint64_t qualifying = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry.count >= conditions_.min_support) ++qualifying;
  }
  return static_cast<double>(qualifying);
}

std::vector<ItemsetKey> Ilc::ImplicatedItemsets() const {
  std::vector<ItemsetKey> out;
  for (const auto& [key, entry] : entries_) {
    if (entry.count >= conditions_.min_support) out.push_back(key);
  }
  return out;
}

size_t Ilc::MemoryBytes() const {
  size_t bytes = sizeof(*this) +
                 entries_.bucket_count() * sizeof(void*) +
                 dirty_.bucket_count() * sizeof(void*);
  for (const auto& [key, entry] : entries_) {
    bytes += sizeof(key) + sizeof(Entry) +
             entry.pairs.capacity() * sizeof(PairEntry) + 2 * sizeof(void*);
  }
  bytes += dirty_.size() * (sizeof(ItemsetKey) + 2 * sizeof(void*));
  return bytes;
}

StatusOr<std::string> Ilc::SerializeState() const {
  ByteWriter out;
  conditions_.SerializeTo(&out);
  out.PutDouble(options_.epsilon);
  out.PutVarint64(count_);
  out.PutVarint64(entries_.size());
  for (const auto& [key, entry] : entries_) {
    out.PutU64(key);
    out.PutVarint64(entry.count);
    out.PutVarint64(entry.delta);
    out.PutVarint64(entry.pairs.size());
    for (const PairEntry& p : entry.pairs) {
      out.PutU64(p.b);
      out.PutVarint64(p.count);
      out.PutVarint64(p.delta);
    }
  }
  out.PutVarint64(dirty_.size());
  for (ItemsetKey key : dirty_) out.PutU64(key);
  return WrapSnapshot(SnapshotKind::kIlc, out.Release());
}

Status Ilc::RestoreState(std::string_view snapshot) {
  IMPLISTAT_ASSIGN_OR_RETURN(std::string_view payload,
                             UnwrapSnapshot(snapshot, SnapshotKind::kIlc));
  ByteReader in(payload);
  IMPLISTAT_ASSIGN_OR_RETURN(ImplicationConditions conditions,
                             ImplicationConditions::Deserialize(&in));
  IlcOptions options;
  IMPLISTAT_RETURN_NOT_OK(in.ReadDouble(&options.epsilon));
  // Positively phrased so NaN fails: the constructor CHECK-aborts on a
  // bad ε, so a corrupt snapshot must be rejected here with a Status.
  if (!(options.epsilon > 0.0 && options.epsilon < 1.0)) {
    return Status::InvalidArgument("ILC: bad epsilon");
  }
  const uint64_t width =
      static_cast<uint64_t>(std::ceil(1.0 / options.epsilon));
  uint64_t count;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&count));
  uint64_t num_entries;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&num_entries));
  if (num_entries > in.remaining() / 11 + 1) {
    return Status::InvalidArgument("ILC: implausible entry count");
  }
  std::unordered_map<ItemsetKey, Entry> entries;
  entries.reserve(num_entries);
  for (uint64_t i = 0; i < num_entries; ++i) {
    ItemsetKey key;
    Entry entry;
    IMPLISTAT_RETURN_NOT_OK(in.ReadU64(&key));
    IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&entry.count));
    IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&entry.delta));
    uint64_t num_pairs;
    IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&num_pairs));
    if (num_pairs > in.remaining() / 10 + 1) {
      return Status::InvalidArgument("ILC: implausible pair count");
    }
    entry.pairs.reserve(num_pairs);
    for (uint64_t j = 0; j < num_pairs; ++j) {
      PairEntry p;
      IMPLISTAT_RETURN_NOT_OK(in.ReadU64(&p.b));
      IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&p.count));
      IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&p.delta));
      entry.pairs.push_back(p);
    }
    if (!entries.emplace(key, std::move(entry)).second) {
      return Status::InvalidArgument("ILC: duplicate entry key");
    }
  }
  uint64_t num_dirty;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&num_dirty));
  if (num_dirty > in.remaining() / 8 + 1) {
    return Status::InvalidArgument("ILC: implausible dirty count");
  }
  std::unordered_set<ItemsetKey> dirty;
  dirty.reserve(num_dirty);
  for (uint64_t i = 0; i < num_dirty; ++i) {
    ItemsetKey key;
    IMPLISTAT_RETURN_NOT_OK(in.ReadU64(&key));
    if (entries.contains(key)) {
      return Status::InvalidArgument("ILC: key both live and dirty");
    }
    if (!dirty.insert(key).second) {
      return Status::InvalidArgument("ILC: duplicate dirty key");
    }
  }
  if (!in.AtEnd()) return Status::InvalidArgument("ILC: trailing bytes");
  conditions_ = conditions;
  options_ = options;
  width_ = width;
  count_ = count;
  // The bucket clock is derived, not stored: Observe advances it right
  // after the count_ % width_ == 0 prune, so this is the unique value
  // consistent with count_.
  current_bucket_ = count_ / width_ + 1;
  entries_ = std::move(entries);
  dirty_ = std::move(dirty);
  return Status::OK();
}

Status Ilc::Merge(const Ilc& other) {
  if (!(conditions_ == other.conditions_)) {
    return Status::InvalidArgument("ILC::Merge: conditions differ");
  }
  if (options_.epsilon != other.options_.epsilon) {
    return Status::InvalidArgument("ILC::Merge: epsilon differs");
  }
  // Manku–Motwani distributed merge: frequencies add; an entry absent on
  // one side could have been pruned there with count up to bucket-1, so
  // the missing side contributes that much to Δ. Dirtiness is permanent
  // on either side.
  const uint64_t my_slack = current_bucket_ - 1;
  const uint64_t other_slack = other.current_bucket_ - 1;
  for (ItemsetKey key : other.dirty_) {
    dirty_.insert(key);
    entries_.erase(key);
  }
  for (const auto& [key, other_entry] : other.entries_) {
    if (dirty_.contains(key)) continue;
    auto [it, inserted] = entries_.try_emplace(key);
    Entry& entry = it->second;
    if (inserted) {
      entry.count = other_entry.count;
      entry.delta = other_entry.delta + my_slack;
      entry.pairs = other_entry.pairs;
      for (PairEntry& p : entry.pairs) p.delta += my_slack;
    } else {
      entry.count += other_entry.count;
      entry.delta += other_entry.delta;
      for (const PairEntry& op : other_entry.pairs) {
        auto pair_it =
            std::find_if(entry.pairs.begin(), entry.pairs.end(),
                         [&op](const PairEntry& p) { return p.b == op.b; });
        if (pair_it != entry.pairs.end()) {
          pair_it->count += op.count;
          pair_it->delta += op.delta;
        } else {
          entry.pairs.push_back(
              PairEntry{op.b, op.count, op.delta + my_slack});
        }
      }
    }
    if (ViolatesConditions(entry)) {
      dirty_.insert(key);
      entries_.erase(it);
    }
  }
  // Entries the other side never saw pick up its pruning slack.
  for (auto& [key, entry] : entries_) {
    if (!other.entries_.contains(key) && !other.dirty_.contains(key)) {
      entry.delta += other_slack;
      for (PairEntry& p : entry.pairs) p.delta += other_slack;
    }
  }
  count_ += other.count_;
  current_bucket_ = count_ / width_ + 1;
  PruneBucket();
  return Status::OK();
}

Status Ilc::MergeFrom(const ImplicationEstimator& other) {
  if (const auto* ilc = dynamic_cast<const Ilc*>(&other)) {
    return Merge(*ilc);
  }
  IMPLISTAT_ASSIGN_OR_RETURN(std::string snapshot, other.SerializeState());
  Ilc decoded(conditions_, options_);
  IMPLISTAT_RETURN_NOT_OK(decoded.RestoreState(snapshot));
  return Merge(decoded);
}

}  // namespace implistat
