#include "baseline/ilc.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace implistat {

namespace {
constexpr double kConfidenceEpsilon = 1e-9;
}  // namespace

Ilc::Ilc(ImplicationConditions conditions, IlcOptions options)
    : conditions_(conditions),
      options_(options),
      width_(static_cast<uint64_t>(std::ceil(1.0 / options.epsilon))) {
  IMPLISTAT_CHECK(conditions_.Validate().ok()) << "invalid conditions";
  IMPLISTAT_CHECK(options_.epsilon > 0.0 && options_.epsilon < 1.0);
}

void Ilc::Observe(ItemsetKey a, ItemsetKey b) {
  ++count_;
  if (!dirty_.contains(a)) {
    auto it = entries_.find(a);
    if (it == entries_.end()) {
      Entry entry;
      entry.count = 1;
      entry.delta = current_bucket_ - 1;
      entry.pairs.push_back(PairEntry{b, 1, current_bucket_ - 1});
      entries_.emplace(a, std::move(entry));
    } else {
      Entry& entry = it->second;
      ++entry.count;
      auto pair_it =
          std::find_if(entry.pairs.begin(), entry.pairs.end(),
                       [b](const PairEntry& p) { return p.b == b; });
      if (pair_it != entry.pairs.end()) {
        ++pair_it->count;
      } else {
        entry.pairs.push_back(PairEntry{b, 1, current_bucket_ - 1});
      }
      if (ViolatesConditions(entry)) {
        // Mark dirty and delete all pair entries for this itemset (§5.1).
        dirty_.insert(a);
        entries_.erase(it);
      }
    }
  }
  if (count_ % width_ == 0) {
    PruneBucket();
    ++current_bucket_;
  }
}

bool Ilc::ViolatesConditions(const Entry& entry) const {
  if (entry.count < conditions_.min_support) return false;
  if (entry.pairs.size() > conditions_.max_multiplicity &&
      conditions_.strict_multiplicity) {
    return true;
  }
  // Top-c confidence over the lossy pair counters.
  std::vector<uint64_t> counts;
  counts.reserve(entry.pairs.size());
  for (const PairEntry& p : entry.pairs) counts.push_back(p.count);
  size_t take = std::min<size_t>(conditions_.confidence_c, counts.size());
  std::partial_sort(counts.begin(), counts.begin() + take, counts.end(),
                    std::greater<uint64_t>());
  uint64_t sum = 0;
  for (size_t i = 0; i < take; ++i) sum += counts[i];
  double conf = static_cast<double>(sum) / static_cast<double>(entry.count);
  return conf + kConfidenceEpsilon < conditions_.min_top_confidence;
}

void Ilc::PruneBucket() {
  for (auto it = entries_.begin(); it != entries_.end();) {
    Entry& entry = it->second;
    if (entry.count + entry.delta <= current_bucket_) {
      // Below the lossy threshold: drop the itemset and its pair entries.
      it = entries_.erase(it);
      continue;
    }
    // Pair entries follow the same pruning rule independently.
    std::erase_if(entry.pairs, [this](const PairEntry& p) {
      return p.count + p.delta <= current_bucket_;
    });
    ++it;
  }
}

double Ilc::EstimateImplicationCount() const {
  uint64_t qualifying = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry.count >= conditions_.min_support) ++qualifying;
  }
  return static_cast<double>(qualifying);
}

std::vector<ItemsetKey> Ilc::ImplicatedItemsets() const {
  std::vector<ItemsetKey> out;
  for (const auto& [key, entry] : entries_) {
    if (entry.count >= conditions_.min_support) out.push_back(key);
  }
  return out;
}

size_t Ilc::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [key, entry] : entries_) {
    bytes += sizeof(key) + sizeof(Entry) +
             entry.pairs.capacity() * sizeof(PairEntry) + 2 * sizeof(void*);
  }
  bytes += dirty_.size() * (sizeof(ItemsetKey) + 2 * sizeof(void*));
  return bytes;
}

}  // namespace implistat
