// Lossy Counting (Manku & Motwani, VLDB 2002 — the paper's reference [22]).
//
// The deterministic frequency-count synopsis ILC builds on: the stream is
// divided into buckets of width w = ceil(1/ε); an entry (key, count, Δ)
// guarantees count ≤ true frequency ≤ count + Δ; at bucket boundaries
// entries with count + Δ ≤ b_current are pruned. Every key with true
// frequency ≥ εT survives.

#ifndef IMPLISTAT_BASELINE_LOSSY_COUNTING_H_
#define IMPLISTAT_BASELINE_LOSSY_COUNTING_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"
#include "util/status_or.h"

namespace implistat {

class LossyCounting {
 public:
  /// `epsilon` in (0, 1): the approximation parameter; bucket width is
  /// ceil(1/epsilon).
  explicit LossyCounting(double epsilon);

  void Observe(uint64_t key);

  /// Estimated frequency (the stored count; true frequency is within
  /// [count, count + Δ]). 0 if pruned/absent.
  uint64_t EstimatedCount(uint64_t key) const;

  /// All keys whose estimated count ≥ threshold, i.e. the classic output
  /// rule "count ≥ (s − ε)·T" with threshold = (s − ε)·T precomputed by
  /// the caller.
  std::vector<std::pair<uint64_t, uint64_t>> ItemsAbove(
      uint64_t threshold) const;

  size_t num_entries() const { return entries_.size(); }
  uint64_t tuples_seen() const { return count_; }
  double epsilon() const { return epsilon_; }

  /// Durable state: the same envelope contract the estimators implement
  /// (kLossyCounting kind), non-virtual since LossyCounting is not an
  /// ImplicationEstimator. A restored synopsis continues the stream with
  /// identical answers.
  StatusOr<std::string> SerializeState() const;
  Status RestoreState(std::string_view snapshot);

 private:
  struct Entry {
    uint64_t count;
    uint64_t delta;
  };

  void PruneBucket();

  double epsilon_;
  uint64_t width_;
  uint64_t count_ = 0;
  uint64_t current_bucket_ = 1;
  std::unordered_map<uint64_t, Entry> entries_;
};

}  // namespace implistat

#endif  // IMPLISTAT_BASELINE_LOSSY_COUNTING_H_
