// ILC — Implication Lossy Counting (§5.1).
//
// The paper's extension of Lossy Counting to implication conditions, built
// to show why frequent-itemset synopses cannot replace NIPS/CI. Entries
// (a, count, Δ) and ((a,b), count, Δ) are sampled; when an itemset is seen
// to satisfy the support condition while violating multiplicity or top-c
// confidence it is marked *dirty* and its pair entries are dropped. Dirty
// entries are never pruned — one of the two failure modes the paper
// documents (memory grows with the number of implicated itemsets). The
// other failure mode is the relative minimum support: entries whose
// frequency stays below ε·T are pruned at bucket boundaries, so the
// cumulative contribution of small implications is lost as T grows
// (§5.1.1). Both emerge naturally from this implementation.
//
// Unlike the count-only estimators, ILC can return the implicated itemsets
// themselves — see ImplicatedItemsets().

#ifndef IMPLISTAT_BASELINE_ILC_H_
#define IMPLISTAT_BASELINE_ILC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/conditions.h"
#include "core/estimator.h"

namespace implistat {

struct IlcOptions {
  /// Approximation parameter ε; bucket width is ceil(1/ε). The paper's
  /// experiments use 0.01 (Table 5). Must satisfy ε ≤ the relative
  /// support of the itemsets of interest for the guarantees to hold — the
  /// constraint the paper shows breaking as T grows.
  double epsilon = 0.01;
};

class Ilc final : public ImplicationEstimator {
 public:
  Ilc(ImplicationConditions conditions, IlcOptions options);

  void Observe(ItemsetKey a, ItemsetKey b) override;

  /// Number of non-dirty sampled itemsets meeting the (absolute) minimum
  /// support — ILC's answer to the implication count. No scaling: ILC
  /// enumerates itemsets rather than estimating cardinalities.
  double EstimateImplicationCount() const override;
  size_t MemoryBytes() const override;
  std::string name() const override { return "ILC"; }

  /// The itemsets ILC believes imply B (the capability NIPS/CI trades
  /// away for bounded memory).
  std::vector<ItemsetKey> ImplicatedItemsets() const;

  size_t num_entries() const { return entries_.size() + dirty_.size(); }
  size_t num_dirty() const { return dirty_.size(); }
  uint64_t tuples_seen() const { return count_; }

  /// Durable-state contract (core/estimator.h). The full synopsis —
  /// live entries with their pair counters, the dirty set, and the
  /// bucket clock — round-trips exactly. MergeFrom combines two ILC
  /// synopses the Manku–Motwani way: counts add, error terms (Δ) add,
  /// then one prune pass at the combined bucket; the ε·T guarantee holds
  /// for the concatenated stream with the summed error bound.
  StatusOr<std::string> SerializeState() const override;
  Status RestoreState(std::string_view snapshot) override;
  Status MergeFrom(const ImplicationEstimator& other) override;

  /// Direct merge of another ILC with identical conditions and ε.
  Status Merge(const Ilc& other);

 private:
  struct PairEntry {
    ItemsetKey b;
    uint64_t count;
    uint64_t delta;
  };
  struct Entry {
    uint64_t count = 0;
    uint64_t delta = 0;
    std::vector<PairEntry> pairs;
  };

  // True when the entry currently satisfies support while violating
  // multiplicity or top-c confidence (evaluated on the lossy counters).
  bool ViolatesConditions(const Entry& entry) const;

  void PruneBucket();

  ImplicationConditions conditions_;
  IlcOptions options_;
  uint64_t width_;
  uint64_t count_ = 0;
  uint64_t current_bucket_ = 1;
  // Live (non-dirty) entries, subject to lossy pruning.
  std::unordered_map<ItemsetKey, Entry> entries_;
  // Dirty itemsets persist forever (§5.1) and need no pair bookkeeping;
  // keeping them out of `entries_` keeps bucket pruning O(live entries).
  std::unordered_set<ItemsetKey> dirty_;
};

}  // namespace implistat

#endif  // IMPLISTAT_BASELINE_ILC_H_
