#include "baseline/sticky_sampling.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace implistat {

namespace {

constexpr double kConfidenceEpsilon = 1e-9;

uint64_t ComputeT(const StickySamplingOptions& options) {
  IMPLISTAT_CHECK(options.epsilon > 0 && options.epsilon < 1);
  IMPLISTAT_CHECK(options.delta > 0 && options.delta < 1);
  IMPLISTAT_CHECK(options.support > 0 && options.support < 1);
  double t = (1.0 / options.epsilon) *
             std::log(1.0 / (options.support * options.delta));
  return std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(t)));
}

}  // namespace

StickySampling::StickySampling(StickySamplingOptions options)
    : options_(options),
      rng_(SplitMix64(options.seed + 0xabcd)),
      t_(ComputeT(options)),
      window_end_(2 * t_) {}

void StickySampling::Observe(uint64_t key) {
  ++count_;
  MaybeAdvanceRate();
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++it->second;
    return;
  }
  // Not tracked: admit with probability 1/rate.
  if (rate_ == 1 || rng_.Uniform(rate_) == 0) entries_.emplace(key, 1);
}

void StickySampling::MaybeAdvanceRate() {
  if (count_ <= window_end_) return;
  rate_ *= 2;
  window_end_ += rate_ * t_;
  DiminishEntries();
}

void StickySampling::DiminishEntries() {
  // For each entry, repeatedly toss an unbiased coin and diminish the
  // count by one per tail, stopping at the first head; drop on zero. This
  // re-levels counts as if sampled at the doubled rate from the start.
  for (auto it = entries_.begin(); it != entries_.end();) {
    uint64_t& c = it->second;
    while (c > 0 && rng_.Bernoulli(0.5)) --c;
    if (c == 0) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

uint64_t StickySampling::EstimatedCount(uint64_t key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? 0 : it->second;
}

std::vector<std::pair<uint64_t, uint64_t>> StickySampling::ItemsAbove(
    uint64_t threshold) const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (const auto& [key, count] : entries_) {
    if (count >= threshold) out.emplace_back(key, count);
  }
  return out;
}

ImplicationStickySampling::ImplicationStickySampling(
    ImplicationConditions conditions, StickySamplingOptions options)
    : conditions_(conditions),
      options_(options),
      rng_(SplitMix64(options.seed + 0x515)),
      t_(ComputeT(options)),
      window_end_(2 * t_) {
  IMPLISTAT_CHECK(conditions_.Validate().ok()) << "invalid conditions";
}

void ImplicationStickySampling::Observe(ItemsetKey a, ItemsetKey b) {
  ++count_;
  MaybeAdvanceRate();
  if (dirty_.contains(a)) return;
  auto it = entries_.find(a);
  if (it == entries_.end()) {
    if (rate_ != 1 && rng_.Uniform(rate_) != 0) return;
    Entry entry;
    entry.count = 1;
    entry.pairs.push_back(PairCount{b, 1});
    entries_.emplace(a, std::move(entry));
    return;
  }
  Entry& entry = it->second;
  ++entry.count;
  auto pair_it = std::find_if(entry.pairs.begin(), entry.pairs.end(),
                              [b](const PairCount& p) { return p.b == b; });
  if (pair_it != entry.pairs.end()) {
    ++pair_it->count;
  } else {
    entry.pairs.push_back(PairCount{b, 1});
  }
  if (ViolatesConditions(entry)) {
    dirty_.insert(a);
    entries_.erase(it);
  }
}

bool ImplicationStickySampling::ViolatesConditions(const Entry& entry) const {
  if (entry.count < conditions_.min_support) return false;
  if (entry.pairs.size() > conditions_.max_multiplicity &&
      conditions_.strict_multiplicity) {
    return true;
  }
  std::vector<uint64_t> counts;
  counts.reserve(entry.pairs.size());
  for (const PairCount& p : entry.pairs) counts.push_back(p.count);
  size_t take = std::min<size_t>(conditions_.confidence_c, counts.size());
  std::partial_sort(counts.begin(), counts.begin() + take, counts.end(),
                    std::greater<uint64_t>());
  uint64_t sum = 0;
  for (size_t i = 0; i < take; ++i) sum += counts[i];
  double conf = static_cast<double>(sum) / static_cast<double>(entry.count);
  return conf + kConfidenceEpsilon < conditions_.min_top_confidence;
}

void ImplicationStickySampling::MaybeAdvanceRate() {
  if (count_ <= window_end_) return;
  rate_ *= 2;
  window_end_ += rate_ * t_;
  DiminishEntries();
}

void ImplicationStickySampling::DiminishEntries() {
  // Dirty itemsets live in their own set and are never diminished; only
  // the counts of live entries are re-leveled.
  for (auto it = entries_.begin(); it != entries_.end();) {
    Entry& entry = it->second;
    while (entry.count > 0 && rng_.Bernoulli(0.5)) --entry.count;
    if (entry.count == 0) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

double ImplicationStickySampling::EstimateImplicationCount() const {
  uint64_t qualifying = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry.count >= conditions_.min_support) ++qualifying;
  }
  return static_cast<double>(qualifying);
}

size_t ImplicationStickySampling::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [key, entry] : entries_) {
    bytes += sizeof(key) + sizeof(Entry) +
             entry.pairs.capacity() * sizeof(PairCount) + 2 * sizeof(void*);
  }
  bytes += dirty_.size() * (sizeof(ItemsetKey) + 2 * sizeof(void*));
  return bytes;
}

}  // namespace implistat
