#include "baseline/sticky_sampling.h"

#include <algorithm>
#include <cmath>

#include "util/bits.h"
#include "util/logging.h"
#include "util/serde.h"

namespace implistat {

namespace {

constexpr double kConfidenceEpsilon = 1e-9;

uint64_t ComputeT(const StickySamplingOptions& options) {
  IMPLISTAT_CHECK(options.epsilon > 0 && options.epsilon < 1);
  IMPLISTAT_CHECK(options.delta > 0 && options.delta < 1);
  IMPLISTAT_CHECK(options.support > 0 && options.support < 1);
  double t = (1.0 / options.epsilon) *
             std::log(1.0 / (options.support * options.delta));
  return std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(t)));
}

// Snapshot helpers shared by StickySampling and ImplicationStickySampling.
// ComputeT (and the constructors) CHECK-abort on bad parameters, so a
// snapshot's options must be fully validated — positively phrased, which
// rejects NaN — before anything is constructed from them.
Status ValidateStickyOptions(const StickySamplingOptions& options) {
  if (!(options.epsilon > 0 && options.epsilon < 1) ||
      !(options.delta > 0 && options.delta < 1) ||
      !(options.support > 0 && options.support < 1)) {
    return Status::InvalidArgument("StickySampling: bad options");
  }
  return Status::OK();
}

void PutStickyOptions(ByteWriter* out, const StickySamplingOptions& options) {
  out->PutDouble(options.epsilon);
  out->PutDouble(options.delta);
  out->PutDouble(options.support);
  out->PutU64(options.seed);
}

Status ReadStickyOptions(ByteReader* in, StickySamplingOptions* options) {
  IMPLISTAT_RETURN_NOT_OK(in->ReadDouble(&options->epsilon));
  IMPLISTAT_RETURN_NOT_OK(in->ReadDouble(&options->delta));
  IMPLISTAT_RETURN_NOT_OK(in->ReadDouble(&options->support));
  IMPLISTAT_RETURN_NOT_OK(in->ReadU64(&options->seed));
  return ValidateStickyOptions(*options);
}

void PutRngState(ByteWriter* out, const Rng& rng) {
  Rng::State state = rng.state();
  for (uint64_t word : state.words) out->PutU64(word);
}

Status ReadRngState(ByteReader* in, Rng* rng) {
  Rng::State state;
  for (uint64_t& word : state.words) {
    IMPLISTAT_RETURN_NOT_OK(in->ReadU64(&word));
  }
  if (!rng->set_state(state)) {
    return Status::InvalidArgument("StickySampling: all-zero PRNG state");
  }
  return Status::OK();
}

// The rate schedule invariant: rate doubles from 1 (so it is a power of
// two) and the window boundary is always 2·rate·t. Validating both keeps
// a corrupt snapshot from installing an unreachable schedule.
Status ValidateRateSchedule(uint64_t rate, uint64_t count, uint64_t t,
                            uint64_t* window_end) {
  if (rate == 0 || !IsPowerOfTwo(rate) || rate > (uint64_t{1} << 48) ||
      t > ~uint64_t{0} / (2 * rate)) {
    return Status::InvalidArgument("StickySampling: bad sampling rate");
  }
  *window_end = 2 * rate * t;
  if (count > *window_end) {
    return Status::InvalidArgument(
        "StickySampling: count past the window boundary");
  }
  return Status::OK();
}

}  // namespace

StickySampling::StickySampling(StickySamplingOptions options)
    : options_(options),
      rng_(SplitMix64(options.seed + 0xabcd)),
      t_(ComputeT(options)),
      window_end_(2 * t_) {}

void StickySampling::Observe(uint64_t key) {
  ++count_;
  MaybeAdvanceRate();
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++it->second;
    return;
  }
  // Not tracked: admit with probability 1/rate.
  if (rate_ == 1 || rng_.Uniform(rate_) == 0) entries_.emplace(key, 1);
}

void StickySampling::MaybeAdvanceRate() {
  if (count_ <= window_end_) return;
  rate_ *= 2;
  window_end_ += rate_ * t_;
  DiminishEntries();
}

void StickySampling::DiminishEntries() {
  // For each entry, repeatedly toss an unbiased coin and diminish the
  // count by one per tail, stopping at the first head; drop on zero. This
  // re-levels counts as if sampled at the doubled rate from the start.
  // Visit keys in sorted order so the coin-flip sequence is a function of
  // the synopsis contents, not of the hash table's insertion history — a
  // checkpoint-restored synopsis must spend its (serialized) PRNG state
  // on the same entries the uninterrupted one does.
  std::vector<uint64_t> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, count] : entries_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (uint64_t key : keys) {
    auto it = entries_.find(key);
    uint64_t& c = it->second;
    while (c > 0 && rng_.Bernoulli(0.5)) --c;
    if (c == 0) entries_.erase(it);
  }
}

uint64_t StickySampling::EstimatedCount(uint64_t key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? 0 : it->second;
}

std::vector<std::pair<uint64_t, uint64_t>> StickySampling::ItemsAbove(
    uint64_t threshold) const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (const auto& [key, count] : entries_) {
    if (count >= threshold) out.emplace_back(key, count);
  }
  return out;
}

StatusOr<std::string> StickySampling::SerializeState() const {
  ByteWriter out;
  PutStickyOptions(&out, options_);
  PutRngState(&out, rng_);
  out.PutVarint64(count_);
  out.PutVarint64(rate_);
  out.PutVarint64(entries_.size());
  for (const auto& [key, count] : entries_) {
    out.PutU64(key);
    out.PutVarint64(count);
  }
  return WrapSnapshot(SnapshotKind::kStickySampling, out.Release());
}

Status StickySampling::RestoreState(std::string_view snapshot) {
  IMPLISTAT_ASSIGN_OR_RETURN(
      std::string_view payload,
      UnwrapSnapshot(snapshot, SnapshotKind::kStickySampling));
  ByteReader in(payload);
  StickySamplingOptions options;
  IMPLISTAT_RETURN_NOT_OK(ReadStickyOptions(&in, &options));
  Rng rng(0);
  IMPLISTAT_RETURN_NOT_OK(ReadRngState(&in, &rng));
  uint64_t count, rate;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&count));
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&rate));
  const uint64_t t = ComputeT(options);  // options validated above
  uint64_t window_end;
  IMPLISTAT_RETURN_NOT_OK(ValidateRateSchedule(rate, count, t, &window_end));
  uint64_t num_entries;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&num_entries));
  if (num_entries > in.remaining() / 9 + 1) {
    return Status::InvalidArgument("StickySampling: implausible entry count");
  }
  std::unordered_map<uint64_t, uint64_t> entries;
  entries.reserve(num_entries);
  for (uint64_t i = 0; i < num_entries; ++i) {
    uint64_t key, c;
    IMPLISTAT_RETURN_NOT_OK(in.ReadU64(&key));
    IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&c));
    if (c == 0) {
      return Status::InvalidArgument("StickySampling: zero-count entry");
    }
    if (!entries.emplace(key, c).second) {
      return Status::InvalidArgument("StickySampling: duplicate key");
    }
  }
  if (!in.AtEnd()) {
    return Status::InvalidArgument("StickySampling: trailing bytes");
  }
  options_ = options;
  rng_ = rng;
  t_ = t;
  count_ = count;
  rate_ = rate;
  window_end_ = window_end;
  entries_ = std::move(entries);
  return Status::OK();
}

ImplicationStickySampling::ImplicationStickySampling(
    ImplicationConditions conditions, StickySamplingOptions options)
    : conditions_(conditions),
      options_(options),
      rng_(SplitMix64(options.seed + 0x515)),
      t_(ComputeT(options)),
      window_end_(2 * t_) {
  IMPLISTAT_CHECK(conditions_.Validate().ok()) << "invalid conditions";
}

void ImplicationStickySampling::Observe(ItemsetKey a, ItemsetKey b) {
  ++count_;
  MaybeAdvanceRate();
  if (dirty_.contains(a)) return;
  auto it = entries_.find(a);
  if (it == entries_.end()) {
    if (rate_ != 1 && rng_.Uniform(rate_) != 0) return;
    Entry entry;
    entry.count = 1;
    entry.pairs.push_back(PairCount{b, 1});
    entries_.emplace(a, std::move(entry));
    return;
  }
  Entry& entry = it->second;
  ++entry.count;
  auto pair_it = std::find_if(entry.pairs.begin(), entry.pairs.end(),
                              [b](const PairCount& p) { return p.b == b; });
  if (pair_it != entry.pairs.end()) {
    ++pair_it->count;
  } else {
    entry.pairs.push_back(PairCount{b, 1});
  }
  if (ViolatesConditions(entry)) {
    dirty_.insert(a);
    entries_.erase(it);
  }
}

bool ImplicationStickySampling::ViolatesConditions(const Entry& entry) const {
  if (entry.count < conditions_.min_support) return false;
  if (entry.pairs.size() > conditions_.max_multiplicity &&
      conditions_.strict_multiplicity) {
    return true;
  }
  std::vector<uint64_t> counts;
  counts.reserve(entry.pairs.size());
  for (const PairCount& p : entry.pairs) counts.push_back(p.count);
  size_t take = std::min<size_t>(conditions_.confidence_c, counts.size());
  std::partial_sort(counts.begin(), counts.begin() + take, counts.end(),
                    std::greater<uint64_t>());
  uint64_t sum = 0;
  for (size_t i = 0; i < take; ++i) sum += counts[i];
  double conf = static_cast<double>(sum) / static_cast<double>(entry.count);
  return conf + kConfidenceEpsilon < conditions_.min_top_confidence;
}

void ImplicationStickySampling::MaybeAdvanceRate() {
  if (count_ <= window_end_) return;
  rate_ *= 2;
  window_end_ += rate_ * t_;
  DiminishEntries();
}

void ImplicationStickySampling::DiminishEntries() {
  // Dirty itemsets live in their own set and are never diminished; only
  // the counts of live entries are re-leveled. Sorted key order for the
  // same reason as StickySampling::DiminishEntries: the PRNG draws must
  // depend on the synopsis contents, not the map's insertion history, or
  // a restored synopsis diverges from its uninterrupted twin.
  std::vector<ItemsetKey> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (ItemsetKey key : keys) {
    auto it = entries_.find(key);
    Entry& entry = it->second;
    while (entry.count > 0 && rng_.Bernoulli(0.5)) --entry.count;
    if (entry.count == 0) entries_.erase(it);
  }
}

double ImplicationStickySampling::EstimateImplicationCount() const {
  uint64_t qualifying = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry.count >= conditions_.min_support) ++qualifying;
  }
  return static_cast<double>(qualifying);
}

size_t ImplicationStickySampling::MemoryBytes() const {
  size_t bytes = sizeof(*this) +
                 entries_.bucket_count() * sizeof(void*) +
                 dirty_.bucket_count() * sizeof(void*);
  for (const auto& [key, entry] : entries_) {
    bytes += sizeof(key) + sizeof(Entry) +
             entry.pairs.capacity() * sizeof(PairCount) + 2 * sizeof(void*);
  }
  bytes += dirty_.size() * (sizeof(ItemsetKey) + 2 * sizeof(void*));
  return bytes;
}

StatusOr<std::string> ImplicationStickySampling::SerializeState() const {
  ByteWriter out;
  conditions_.SerializeTo(&out);
  PutStickyOptions(&out, options_);
  PutRngState(&out, rng_);
  out.PutVarint64(count_);
  out.PutVarint64(rate_);
  out.PutVarint64(entries_.size());
  for (const auto& [key, entry] : entries_) {
    out.PutU64(key);
    out.PutVarint64(entry.count);
    out.PutVarint64(entry.pairs.size());
    for (const PairCount& p : entry.pairs) {
      out.PutU64(p.b);
      out.PutVarint64(p.count);
    }
  }
  out.PutVarint64(dirty_.size());
  for (ItemsetKey key : dirty_) out.PutU64(key);
  return WrapSnapshot(SnapshotKind::kIss, out.Release());
}

Status ImplicationStickySampling::RestoreState(std::string_view snapshot) {
  IMPLISTAT_ASSIGN_OR_RETURN(std::string_view payload,
                             UnwrapSnapshot(snapshot, SnapshotKind::kIss));
  ByteReader in(payload);
  IMPLISTAT_ASSIGN_OR_RETURN(ImplicationConditions conditions,
                             ImplicationConditions::Deserialize(&in));
  StickySamplingOptions options;
  IMPLISTAT_RETURN_NOT_OK(ReadStickyOptions(&in, &options));
  Rng rng(0);
  IMPLISTAT_RETURN_NOT_OK(ReadRngState(&in, &rng));
  uint64_t count, rate;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&count));
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&rate));
  const uint64_t t = ComputeT(options);  // options validated above
  uint64_t window_end;
  IMPLISTAT_RETURN_NOT_OK(ValidateRateSchedule(rate, count, t, &window_end));
  uint64_t num_entries;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&num_entries));
  if (num_entries > in.remaining() / 10 + 1) {
    return Status::InvalidArgument("ISS: implausible entry count");
  }
  std::unordered_map<ItemsetKey, Entry> entries;
  entries.reserve(num_entries);
  for (uint64_t i = 0; i < num_entries; ++i) {
    ItemsetKey key;
    Entry entry;
    IMPLISTAT_RETURN_NOT_OK(in.ReadU64(&key));
    IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&entry.count));
    if (entry.count == 0) {
      return Status::InvalidArgument("ISS: zero-count entry");
    }
    uint64_t num_pairs;
    IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&num_pairs));
    if (num_pairs > in.remaining() / 9 + 1) {
      return Status::InvalidArgument("ISS: implausible pair count");
    }
    entry.pairs.reserve(num_pairs);
    for (uint64_t j = 0; j < num_pairs; ++j) {
      PairCount p;
      IMPLISTAT_RETURN_NOT_OK(in.ReadU64(&p.b));
      IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&p.count));
      entry.pairs.push_back(p);
    }
    if (!entries.emplace(key, std::move(entry)).second) {
      return Status::InvalidArgument("ISS: duplicate entry key");
    }
  }
  uint64_t num_dirty;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&num_dirty));
  if (num_dirty > in.remaining() / 8 + 1) {
    return Status::InvalidArgument("ISS: implausible dirty count");
  }
  std::unordered_set<ItemsetKey> dirty;
  dirty.reserve(num_dirty);
  for (uint64_t i = 0; i < num_dirty; ++i) {
    ItemsetKey key;
    IMPLISTAT_RETURN_NOT_OK(in.ReadU64(&key));
    if (entries.contains(key)) {
      return Status::InvalidArgument("ISS: key both live and dirty");
    }
    if (!dirty.insert(key).second) {
      return Status::InvalidArgument("ISS: duplicate dirty key");
    }
  }
  if (!in.AtEnd()) return Status::InvalidArgument("ISS: trailing bytes");
  conditions_ = conditions;
  options_ = options;
  rng_ = rng;
  t_ = t;
  count_ = count;
  rate_ = rate;
  window_end_ = window_end;
  entries_ = std::move(entries);
  dirty_ = std::move(dirty);
  return Status::OK();
}

}  // namespace implistat
