#include "baseline/lossy_counting.h"

#include <cmath>

#include "util/logging.h"

namespace implistat {

LossyCounting::LossyCounting(double epsilon)
    : epsilon_(epsilon),
      width_(static_cast<uint64_t>(std::ceil(1.0 / epsilon))) {
  IMPLISTAT_CHECK(epsilon > 0.0 && epsilon < 1.0) << "epsilon out of range";
}

void LossyCounting::Observe(uint64_t key) {
  ++count_;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++it->second.count;
  } else {
    entries_.emplace(key, Entry{1, current_bucket_ - 1});
  }
  if (count_ % width_ == 0) {
    PruneBucket();
    ++current_bucket_;
  }
}

void LossyCounting::PruneBucket() {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.count + it->second.delta <= current_bucket_) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

uint64_t LossyCounting::EstimatedCount(uint64_t key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? 0 : it->second.count;
}

std::vector<std::pair<uint64_t, uint64_t>> LossyCounting::ItemsAbove(
    uint64_t threshold) const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (const auto& [key, entry] : entries_) {
    if (entry.count >= threshold) out.emplace_back(key, entry.count);
  }
  return out;
}

}  // namespace implistat
