#include "baseline/lossy_counting.h"

#include <cmath>

#include "util/logging.h"
#include "util/serde.h"

namespace implistat {

LossyCounting::LossyCounting(double epsilon)
    : epsilon_(epsilon),
      width_(static_cast<uint64_t>(std::ceil(1.0 / epsilon))) {
  IMPLISTAT_CHECK(epsilon > 0.0 && epsilon < 1.0) << "epsilon out of range";
}

void LossyCounting::Observe(uint64_t key) {
  ++count_;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++it->second.count;
  } else {
    entries_.emplace(key, Entry{1, current_bucket_ - 1});
  }
  if (count_ % width_ == 0) {
    PruneBucket();
    ++current_bucket_;
  }
}

void LossyCounting::PruneBucket() {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.count + it->second.delta <= current_bucket_) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

uint64_t LossyCounting::EstimatedCount(uint64_t key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? 0 : it->second.count;
}

std::vector<std::pair<uint64_t, uint64_t>> LossyCounting::ItemsAbove(
    uint64_t threshold) const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (const auto& [key, entry] : entries_) {
    if (entry.count >= threshold) out.emplace_back(key, entry.count);
  }
  return out;
}

StatusOr<std::string> LossyCounting::SerializeState() const {
  ByteWriter out;
  out.PutDouble(epsilon_);
  out.PutVarint64(count_);
  out.PutVarint64(entries_.size());
  for (const auto& [key, entry] : entries_) {
    out.PutU64(key);
    out.PutVarint64(entry.count);
    out.PutVarint64(entry.delta);
  }
  return WrapSnapshot(SnapshotKind::kLossyCounting, out.Release());
}

Status LossyCounting::RestoreState(std::string_view snapshot) {
  IMPLISTAT_ASSIGN_OR_RETURN(
      std::string_view payload,
      UnwrapSnapshot(snapshot, SnapshotKind::kLossyCounting));
  ByteReader in(payload);
  double epsilon;
  IMPLISTAT_RETURN_NOT_OK(in.ReadDouble(&epsilon));
  // Positively phrased so NaN fails (the constructor CHECK-aborts on a
  // bad ε; corrupt snapshots must fail with a Status instead).
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    return Status::InvalidArgument("LossyCounting: bad epsilon");
  }
  uint64_t count;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&count));
  uint64_t num_entries;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&num_entries));
  if (num_entries > in.remaining() / 10 + 1) {
    return Status::InvalidArgument("LossyCounting: implausible entry count");
  }
  std::unordered_map<uint64_t, Entry> entries;
  entries.reserve(num_entries);
  for (uint64_t i = 0; i < num_entries; ++i) {
    uint64_t key;
    Entry entry;
    IMPLISTAT_RETURN_NOT_OK(in.ReadU64(&key));
    IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&entry.count));
    IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&entry.delta));
    if (!entries.emplace(key, entry).second) {
      return Status::InvalidArgument("LossyCounting: duplicate key");
    }
  }
  if (!in.AtEnd()) {
    return Status::InvalidArgument("LossyCounting: trailing bytes");
  }
  epsilon_ = epsilon;
  width_ = static_cast<uint64_t>(std::ceil(1.0 / epsilon));
  count_ = count;
  // Derived: Observe advances the bucket right after each full width, so
  // this is the unique clock value consistent with count_.
  current_bucket_ = count_ / width_ + 1;
  entries_ = std::move(entries);
  return Status::OK();
}

}  // namespace implistat
