#include "baseline/distinct_sampling.h"

#include <cmath>
#include <vector>

#include "util/bits.h"
#include "util/logging.h"

namespace implistat {

DistinctSampling::DistinctSampling(ImplicationConditions conditions,
                                   DistinctSamplingOptions options)
    : conditions_(conditions),
      options_(options),
      hasher_(MakeHasher(options.hash_kind, options.seed)) {
  IMPLISTAT_CHECK(conditions_.Validate().ok()) << "invalid conditions";
  IMPLISTAT_CHECK(options_.max_sample_entries >= 1);
}

void DistinctSampling::Observe(ItemsetKey a, ItemsetKey b) {
  int item_level = RhoLsb(hasher_->Hash(a));
  if (item_level < level_) return;  // not (or no longer) in the sample
  // Per-value detail is bounded by t (Table 5): unlimited tracking only
  // when t exceeds the K counters the conditions need anyway.
  ItemsetState& state =
      sample_
          .try_emplace(a, options_.per_value_bound >
                              conditions_.max_multiplicity)
          .first->second;
  state.Observe(b, conditions_);
  while (sample_.size() > options_.max_sample_entries && level_ < 63) {
    RaiseLevel();
  }
}

void DistinctSampling::RaiseLevel() {
  ++level_;
  for (auto it = sample_.begin(); it != sample_.end();) {
    if (RhoLsb(hasher_->Hash(it->first)) < level_) {
      it = sample_.erase(it);
    } else {
      ++it;
    }
  }
}

double DistinctSampling::ScaleFactor() const {
  return std::pow(2.0, level_);
}

double DistinctSampling::EstimateImplicationCount() const {
  uint64_t qualifying = 0;
  for (const auto& [key, state] : sample_) {
    if (state.supported(conditions_) && !state.dirty()) ++qualifying;
  }
  return static_cast<double>(qualifying) * ScaleFactor();
}

double DistinctSampling::EstimateNonImplicationCount() const {
  uint64_t dirty = 0;
  for (const auto& [key, state] : sample_) {
    if (state.dirty()) ++dirty;
  }
  return static_cast<double>(dirty) * ScaleFactor();
}

double DistinctSampling::EstimateSupportedDistinct() const {
  uint64_t supported = 0;
  for (const auto& [key, state] : sample_) {
    if (state.supported(conditions_)) ++supported;
  }
  return static_cast<double>(supported) * ScaleFactor();
}

double DistinctSampling::AverageMultiplicity() const {
  uint64_t qualifying = 0;
  uint64_t total_multiplicity = 0;
  for (const auto& [key, state] : sample_) {
    if (state.supported(conditions_) && !state.dirty()) {
      ++qualifying;
      total_multiplicity += state.multiplicity();
    }
  }
  return qualifying == 0 ? 0.0
                         : static_cast<double>(total_multiplicity) /
                               static_cast<double>(qualifying);
}

size_t DistinctSampling::MemoryBytes() const {
  size_t bytes = sizeof(*this) + sample_.bucket_count() * sizeof(void*);
  for (const auto& [key, state] : sample_) {
    bytes += sizeof(key) + state.MemoryBytes() + 2 * sizeof(void*);
  }
  return bytes;
}

StatusOr<std::string> DistinctSampling::SerializeState() const {
  ByteWriter out;
  conditions_.SerializeTo(&out);
  out.PutVarint64(options_.max_sample_entries);
  out.PutVarint64(options_.per_value_bound);
  out.PutU8(static_cast<uint8_t>(options_.hash_kind));
  out.PutU64(options_.seed);
  out.PutVarint64(static_cast<uint64_t>(level_));
  out.PutVarint64(sample_.size());
  for (const auto& [key, state] : sample_) {
    out.PutU64(key);
    state.SerializeTo(&out);
  }
  return WrapSnapshot(SnapshotKind::kDistinctSampling, out.Release());
}

Status DistinctSampling::RestoreState(std::string_view snapshot) {
  IMPLISTAT_ASSIGN_OR_RETURN(
      std::string_view payload,
      UnwrapSnapshot(snapshot, SnapshotKind::kDistinctSampling));
  ByteReader in(payload);
  IMPLISTAT_ASSIGN_OR_RETURN(ImplicationConditions conditions,
                             ImplicationConditions::Deserialize(&in));
  DistinctSamplingOptions options;
  uint64_t max_entries, per_value_bound;
  uint8_t hash_kind;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&max_entries));
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&per_value_bound));
  IMPLISTAT_RETURN_NOT_OK(in.ReadU8(&hash_kind));
  IMPLISTAT_RETURN_NOT_OK(in.ReadU64(&options.seed));
  if (max_entries < 1 || max_entries > (uint64_t{1} << 32)) {
    return Status::InvalidArgument("DS: bad sample budget");
  }
  if (hash_kind > static_cast<uint8_t>(HashKind::kLinearGf2)) {
    return Status::InvalidArgument("DS: bad hash kind");
  }
  options.max_sample_entries = static_cast<size_t>(max_entries);
  options.per_value_bound = static_cast<size_t>(per_value_bound);
  options.hash_kind = static_cast<HashKind>(hash_kind);
  uint64_t level;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&level));
  if (level > 63) return Status::InvalidArgument("DS: bad sampling level");
  uint64_t num_entries;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&num_entries));
  if (num_entries > in.remaining() / 9 + 1) {
    return Status::InvalidArgument("DS: implausible sample size");
  }
  std::unique_ptr<Hasher64> hasher =
      MakeHasher(options.hash_kind, options.seed);
  std::unordered_map<ItemsetKey, ItemsetState> sample;
  sample.reserve(num_entries);
  for (uint64_t i = 0; i < num_entries; ++i) {
    ItemsetKey key;
    IMPLISTAT_RETURN_NOT_OK(in.ReadU64(&key));
    IMPLISTAT_ASSIGN_OR_RETURN(ItemsetState state,
                               ItemsetState::Deserialize(&in));
    // Sample invariant: only itemsets at or above the sampling level are
    // retained; an entry below it marks a corrupt or forged snapshot.
    if (RhoLsb(hasher->Hash(key)) < static_cast<int>(level)) {
      return Status::InvalidArgument("DS: sample entry below level");
    }
    if (!sample.emplace(key, std::move(state)).second) {
      return Status::InvalidArgument("DS: duplicate sample key");
    }
  }
  if (!in.AtEnd()) return Status::InvalidArgument("DS: trailing bytes");
  conditions_ = conditions;
  options_ = options;
  hasher_ = std::move(hasher);
  sample_ = std::move(sample);
  level_ = static_cast<int>(level);
  return Status::OK();
}

Status DistinctSampling::Merge(const DistinctSampling& other) {
  if (!(conditions_ == other.conditions_)) {
    return Status::InvalidArgument("DS::Merge: conditions differ");
  }
  if (options_.hash_kind != other.options_.hash_kind ||
      options_.seed != other.options_.seed ||
      options_.max_sample_entries != other.options_.max_sample_entries ||
      options_.per_value_bound != other.options_.per_value_bound) {
    return Status::InvalidArgument("DS::Merge: samples are not compatible");
  }
  // Union at the coarser of the two levels, then shrink to the budget.
  // Both samples used the same hash, so "level(a) >= l" agrees across
  // nodes and the union is exactly the sample a single node would hold.
  if (other.level_ > level_) {
    level_ = other.level_;
    RaiseLevel();
  }
  for (const auto& [key, state] : other.sample_) {
    if (RhoLsb(hasher_->Hash(key)) < level_) continue;
    auto [it, inserted] = sample_.try_emplace(
        key, options_.per_value_bound > conditions_.max_multiplicity);
    if (inserted) {
      it->second = state;
    } else {
      it->second.Merge(state, conditions_);
    }
  }
  while (sample_.size() > options_.max_sample_entries && level_ < 63) {
    RaiseLevel();
  }
  return Status::OK();
}

Status DistinctSampling::MergeFrom(const ImplicationEstimator& other) {
  if (const auto* ds = dynamic_cast<const DistinctSampling*>(&other)) {
    return Merge(*ds);
  }
  IMPLISTAT_ASSIGN_OR_RETURN(std::string snapshot, other.SerializeState());
  DistinctSampling decoded(conditions_, options_);
  IMPLISTAT_RETURN_NOT_OK(decoded.RestoreState(snapshot));
  return Merge(decoded);
}

}  // namespace implistat
