#include "baseline/distinct_sampling.h"

#include <cmath>
#include <vector>

#include "util/bits.h"
#include "util/logging.h"

namespace implistat {

DistinctSampling::DistinctSampling(ImplicationConditions conditions,
                                   DistinctSamplingOptions options)
    : conditions_(conditions),
      options_(options),
      hasher_(MakeHasher(options.hash_kind, options.seed)) {
  IMPLISTAT_CHECK(conditions_.Validate().ok()) << "invalid conditions";
  IMPLISTAT_CHECK(options_.max_sample_entries >= 1);
}

void DistinctSampling::Observe(ItemsetKey a, ItemsetKey b) {
  int item_level = RhoLsb(hasher_->Hash(a));
  if (item_level < level_) return;  // not (or no longer) in the sample
  // Per-value detail is bounded by t (Table 5): unlimited tracking only
  // when t exceeds the K counters the conditions need anyway.
  ItemsetState& state =
      sample_
          .try_emplace(a, options_.per_value_bound >
                              conditions_.max_multiplicity)
          .first->second;
  state.Observe(b, conditions_);
  while (sample_.size() > options_.max_sample_entries && level_ < 63) {
    RaiseLevel();
  }
}

void DistinctSampling::RaiseLevel() {
  ++level_;
  for (auto it = sample_.begin(); it != sample_.end();) {
    if (RhoLsb(hasher_->Hash(it->first)) < level_) {
      it = sample_.erase(it);
    } else {
      ++it;
    }
  }
}

double DistinctSampling::ScaleFactor() const {
  return std::pow(2.0, level_);
}

double DistinctSampling::EstimateImplicationCount() const {
  uint64_t qualifying = 0;
  for (const auto& [key, state] : sample_) {
    if (state.supported(conditions_) && !state.dirty()) ++qualifying;
  }
  return static_cast<double>(qualifying) * ScaleFactor();
}

double DistinctSampling::EstimateNonImplicationCount() const {
  uint64_t dirty = 0;
  for (const auto& [key, state] : sample_) {
    if (state.dirty()) ++dirty;
  }
  return static_cast<double>(dirty) * ScaleFactor();
}

double DistinctSampling::EstimateSupportedDistinct() const {
  uint64_t supported = 0;
  for (const auto& [key, state] : sample_) {
    if (state.supported(conditions_)) ++supported;
  }
  return static_cast<double>(supported) * ScaleFactor();
}

double DistinctSampling::AverageMultiplicity() const {
  uint64_t qualifying = 0;
  uint64_t total_multiplicity = 0;
  for (const auto& [key, state] : sample_) {
    if (state.supported(conditions_) && !state.dirty()) {
      ++qualifying;
      total_multiplicity += state.multiplicity();
    }
  }
  return qualifying == 0 ? 0.0
                         : static_cast<double>(total_multiplicity) /
                               static_cast<double>(qualifying);
}

size_t DistinctSampling::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const auto& [key, state] : sample_) {
    bytes += sizeof(key) + state.MemoryBytes() + 2 * sizeof(void*);
  }
  return bytes;
}

}  // namespace implistat
