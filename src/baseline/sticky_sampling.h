// Sticky Sampling (Manku & Motwani, VLDB 2002) and its implication
// extension (§5.1: "It is possible to make the same modifications to the
// Sticky Sampling algorithm ... but the issue with the relative minimum
// support remains").
//
// StickySampling is the probabilistic frequency synopsis: elements are
// sampled at a rate r that doubles as the stream grows; on each rate
// change existing counters are diminished by geometric coin flips so every
// entry looks as if it had been sampled at the new rate from the start.
// ImplicationStickySampling adds per-pair tracking and the monotone dirty
// marking, mirroring ILC.

#ifndef IMPLISTAT_BASELINE_STICKY_SAMPLING_H_
#define IMPLISTAT_BASELINE_STICKY_SAMPLING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/conditions.h"
#include "core/estimator.h"
#include "util/random.h"

namespace implistat {

struct StickySamplingOptions {
  double epsilon = 0.01;   // approximation parameter
  double delta = 0.01;     // failure probability
  double support = 0.1;    // the s of t = (1/ε)·ln(1/(s·δ))
  uint64_t seed = 0;
};

class StickySampling {
 public:
  explicit StickySampling(StickySamplingOptions options);

  void Observe(uint64_t key);

  uint64_t EstimatedCount(uint64_t key) const;
  std::vector<std::pair<uint64_t, uint64_t>> ItemsAbove(
      uint64_t threshold) const;

  size_t num_entries() const { return entries_.size(); }
  uint64_t sampling_rate() const { return rate_; }
  uint64_t tuples_seen() const { return count_; }

  /// Durable state (kStickySampling envelope; non-virtual — this is not
  /// an ImplicationEstimator). The PRNG state rides along, so a restored
  /// synopsis makes the exact coin flips the saved one would have.
  StatusOr<std::string> SerializeState() const;
  Status RestoreState(std::string_view snapshot);

 private:
  void MaybeAdvanceRate();
  void DiminishEntries();

  StickySamplingOptions options_;
  Rng rng_;
  uint64_t t_;             // window scale
  uint64_t count_ = 0;
  uint64_t rate_ = 1;
  uint64_t window_end_;    // stream position at which the rate doubles
  std::unordered_map<uint64_t, uint64_t> entries_;
};

class ImplicationStickySampling final : public ImplicationEstimator {
 public:
  ImplicationStickySampling(ImplicationConditions conditions,
                            StickySamplingOptions options);

  void Observe(ItemsetKey a, ItemsetKey b) override;

  /// Count of non-dirty sampled itemsets meeting the minimum support.
  double EstimateImplicationCount() const override;
  size_t MemoryBytes() const override;
  std::string name() const override { return "ISS"; }

  size_t num_entries() const { return entries_.size() + dirty_.size(); }
  size_t num_dirty() const { return dirty_.size(); }

  /// Durable-state contract (core/estimator.h). The sample, the dirty
  /// set, the rate schedule, and the PRNG state all round-trip, so a
  /// restored ISS is bit-identical to the uninterrupted run on any
  /// stream suffix. MergeFrom stays Unimplemented: two sticky samples
  /// taken at independent rate schedules have no sound combination.
  StatusOr<std::string> SerializeState() const override;
  Status RestoreState(std::string_view snapshot) override;

 private:
  struct PairCount {
    ItemsetKey b;
    uint64_t count;
  };
  struct Entry {
    uint64_t count = 0;
    std::vector<PairCount> pairs;
  };

  bool ViolatesConditions(const Entry& entry) const;
  void MaybeAdvanceRate();
  void DiminishEntries();

  ImplicationConditions conditions_;
  StickySamplingOptions options_;
  Rng rng_;
  uint64_t t_;
  uint64_t count_ = 0;
  uint64_t rate_ = 1;
  uint64_t window_end_;
  // Live sampled entries; dirty itemsets persist in their own set and are
  // exempt from diminishing (they are definitive evidence, §5.1).
  std::unordered_map<ItemsetKey, Entry> entries_;
  std::unordered_set<ItemsetKey> dirty_;
};

}  // namespace implistat

#endif  // IMPLISTAT_BASELINE_STICKY_SAMPLING_H_
