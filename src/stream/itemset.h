// Itemsets: projections of tuples onto attribute sets, packed into 64-bit
// keys (paper §3.1: "the projection of a single tuple on the attributes of
// A is defined as an itemset a").
//
// The packer prefers an exact encoding — per-attribute bit fields sized by
// declared cardinality — so distinct itemsets always map to distinct keys.
// When the widths do not fit in 64 bits it falls back to hash combining
// (collision probability ~ n²/2⁶⁵, negligible at stream scale) and reports
// exact() == false so callers can decide.

#ifndef IMPLISTAT_STREAM_ITEMSET_H_
#define IMPLISTAT_STREAM_ITEMSET_H_

#include <cstdint>
#include <span>
#include <vector>

#include "stream/attribute_set.h"
#include "stream/schema.h"
#include "stream/types.h"

namespace implistat {

/// A tuple is a borrowed span of dictionary-coded values, one per schema
/// attribute.
using TupleRef = std::span<const ValueId>;

/// Packed itemset key.
using ItemsetKey = uint64_t;

class ItemsetPacker {
 public:
  ItemsetPacker(const Schema& schema, AttributeSet attrs);

  /// Projects `tuple` on the attribute set and packs the result.
  ItemsetKey Pack(TupleRef tuple) const;

  /// True when packing is injective (bit fields fit in 64 bits).
  bool exact() const { return exact_; }

  const AttributeSet& attributes() const { return attrs_; }

 private:
  AttributeSet attrs_;
  std::vector<int> shifts_;  // bit offset per attribute (exact mode)
  bool exact_;
};

}  // namespace implistat

#endif  // IMPLISTAT_STREAM_ITEMSET_H_
