// Dictionary coding of attribute values.
//
// Streams in this library carry dictionary-coded tuples: every attribute
// value is a dense ValueId. A ValueDictionary maintains the per-attribute
// string <-> id mapping for streams that originate from textual data (CSV,
// the Table 1 toy example); synthetic generators mint ids directly.

#ifndef IMPLISTAT_STREAM_VALUE_DICTIONARY_H_
#define IMPLISTAT_STREAM_VALUE_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "stream/types.h"
#include "util/serde.h"
#include "util/status_or.h"

namespace implistat {

class ValueDictionary {
 public:
  /// Returns the id for `value`, inserting it if unseen.
  ValueId GetOrAdd(std::string_view value);

  /// Returns the id for `value` or NotFound.
  StatusOr<ValueId> Find(std::string_view value) const;

  /// Inverse lookup; id must be < size().
  const std::string& ValueOf(ValueId id) const;

  size_t size() const { return values_.size(); }

  /// Checkpoint wire format: values in id order (raw fields, no envelope —
  /// dictionaries travel inside a kValueDictionary blob or a kQueryEngine
  /// snapshot). Deserialize rejects duplicate values, so ids round-trip
  /// exactly: ValueOf/Find on the restored dictionary answer as before.
  void SerializeTo(ByteWriter* out) const;
  static StatusOr<ValueDictionary> Deserialize(ByteReader* in);

 private:
  std::unordered_map<std::string, ValueId> index_;
  std::vector<std::string> values_;
};

/// Wraps the per-attribute dictionaries of a stream in a kValueDictionary
/// snapshot envelope (util/envelope.h) — the persistence fix for
/// dictionary-coded text streams: ids assigned by first appearance only
/// stay meaningful across restarts if the mapping itself is durable.
std::string SerializeValueDictionaries(
    const std::vector<ValueDictionary>& dictionaries);
StatusOr<std::vector<ValueDictionary>> RestoreValueDictionaries(
    std::string_view snapshot);

}  // namespace implistat

#endif  // IMPLISTAT_STREAM_VALUE_DICTIONARY_H_
