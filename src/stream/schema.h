// Stream schema: named attributes with (optionally declared) cardinalities.
//
// The paper's model (§3) is a relation R over attribute sets; cardinality
// declarations let itemset packing pick exact bit widths and let queries
// compute the compound cardinality |A| (product of attribute cardinalities).

#ifndef IMPLISTAT_STREAM_SCHEMA_H_
#define IMPLISTAT_STREAM_SCHEMA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status_or.h"

namespace implistat {

struct AttributeDef {
  std::string name;
  // Declared number of distinct values, or 0 when unknown/unbounded.
  uint64_t cardinality = 0;
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<AttributeDef> attributes);

  /// Appends an attribute; name must be unique. Returns its index.
  StatusOr<int> AddAttribute(std::string name, uint64_t cardinality = 0);

  StatusOr<int> IndexOf(std::string_view name) const;
  const AttributeDef& attribute(int index) const { return attributes_[index]; }
  int num_attributes() const { return static_cast<int>(attributes_.size()); }

 private:
  std::vector<AttributeDef> attributes_;
};

}  // namespace implistat

#endif  // IMPLISTAT_STREAM_SCHEMA_H_
