#include "stream/csv_io.h"

#include <istream>
#include <ostream>
#include <sstream>

namespace implistat {

namespace {

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(field);
      field.clear();
    } else if (c != '\r') {
      field.push_back(c);
    }
  }
  fields.push_back(field);
  return fields;
}

}  // namespace

StatusOr<CsvTable> ReadCsv(std::istream& in) {
  return ReadCsv(in, {});
}

StatusOr<CsvTable> ReadCsv(std::istream& in,
                           std::vector<ValueDictionary> seed) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty CSV input (no header)");
  }
  std::vector<std::string> names = SplitLine(line);
  Schema schema;
  for (auto& name : names) {
    IMPLISTAT_RETURN_NOT_OK(schema.AddAttribute(name).status());
  }
  if (!seed.empty() && seed.size() != names.size()) {
    return Status::InvalidArgument("seed dictionaries disagree with header");
  }
  std::vector<ValueDictionary> dictionaries =
      seed.empty() ? std::vector<ValueDictionary>(names.size())
                   : std::move(seed);
  std::vector<ValueId> flat;
  size_t row = 1;
  while (std::getline(in, line)) {
    ++row;
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitLine(line);
    if (fields.size() != names.size()) {
      std::ostringstream msg;
      msg << "row " << row << " has " << fields.size() << " fields, expected "
          << names.size();
      return Status::InvalidArgument(msg.str());
    }
    for (size_t i = 0; i < fields.size(); ++i) {
      flat.push_back(dictionaries[i].GetOrAdd(fields[i]));
    }
  }
  // Record observed cardinalities so itemset packing can be exact.
  Schema sized;
  for (size_t i = 0; i < names.size(); ++i) {
    IMPLISTAT_RETURN_NOT_OK(
        sized.AddAttribute(names[i], dictionaries[i].size()).status());
  }
  VectorStream stream(sized, std::move(flat));
  return CsvTable{std::move(sized), std::move(dictionaries),
                  std::move(stream)};
}

StatusOr<CsvTable> ReadCsvString(const std::string& text) {
  std::istringstream in(text);
  return ReadCsv(in);
}

Status WriteCsv(TupleStream& stream,
                const std::vector<ValueDictionary>* dictionaries,
                std::ostream& out) {
  const Schema& schema = stream.schema();
  (void)stream.Reset();  // best effort; single-pass streams write from here
  for (int i = 0; i < schema.num_attributes(); ++i) {
    if (i > 0) out << ',';
    out << schema.attribute(i).name;
  }
  out << '\n';
  while (auto tuple = stream.Next()) {
    for (size_t i = 0; i < tuple->size(); ++i) {
      if (i > 0) out << ',';
      ValueId id = (*tuple)[i];
      if (dictionaries != nullptr && i < dictionaries->size() &&
          id < (*dictionaries)[i].size()) {
        out << (*dictionaries)[i].ValueOf(id);
      } else {
        out << id;
      }
    }
    out << '\n';
  }
  if (!out.good()) return Status::IOError("CSV write failed");
  return Status::OK();
}

}  // namespace implistat
