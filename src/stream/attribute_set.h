// Attribute sets: the A and B of an implication query (§3).
//
// An AttributeSet is an ordered list of attribute indices into a Schema.
// It knows its compound cardinality |A| — the product of the attribute
// cardinalities (paper §3.1) — when every member declares one.

#ifndef IMPLISTAT_STREAM_ATTRIBUTE_SET_H_
#define IMPLISTAT_STREAM_ATTRIBUTE_SET_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "stream/schema.h"
#include "util/status_or.h"

namespace implistat {

class AttributeSet {
 public:
  AttributeSet() = default;
  explicit AttributeSet(std::vector<int> indices);
  AttributeSet(std::initializer_list<int> indices)
      : AttributeSet(std::vector<int>(indices)) {}

  /// Resolves attribute names against `schema`.
  static StatusOr<AttributeSet> FromNames(
      const Schema& schema, const std::vector<std::string>& names);

  const std::vector<int>& indices() const { return indices_; }
  int size() const { return static_cast<int>(indices_.size()); }
  bool empty() const { return indices_.empty(); }

  /// True when the two sets share no attribute (the paper assumes
  /// A ∩ B = ∅ w.l.o.g.).
  bool DisjointFrom(const AttributeSet& other) const;

  /// Compound cardinality |A| = ∏ cardinalities, or 0 if any member's
  /// cardinality is undeclared. Saturates at UINT64_MAX on overflow.
  uint64_t CompoundCardinality(const Schema& schema) const;

 private:
  std::vector<int> indices_;
};

}  // namespace implistat

#endif  // IMPLISTAT_STREAM_ATTRIBUTE_SET_H_
