#include "stream/attribute_set.h"

#include <limits>

#include "util/logging.h"

namespace implistat {

AttributeSet::AttributeSet(std::vector<int> indices)
    : indices_(std::move(indices)) {
  for (size_t i = 0; i < indices_.size(); ++i) {
    IMPLISTAT_CHECK(indices_[i] >= 0) << "negative attribute index";
    for (size_t j = i + 1; j < indices_.size(); ++j) {
      IMPLISTAT_CHECK(indices_[i] != indices_[j])
          << "duplicate attribute index " << indices_[i];
    }
  }
}

StatusOr<AttributeSet> AttributeSet::FromNames(
    const Schema& schema, const std::vector<std::string>& names) {
  std::vector<int> indices;
  indices.reserve(names.size());
  for (const auto& name : names) {
    IMPLISTAT_ASSIGN_OR_RETURN(int idx, schema.IndexOf(name));
    indices.push_back(idx);
  }
  return AttributeSet(std::move(indices));
}

bool AttributeSet::DisjointFrom(const AttributeSet& other) const {
  for (int a : indices_) {
    for (int b : other.indices_) {
      if (a == b) return false;
    }
  }
  return true;
}

uint64_t AttributeSet::CompoundCardinality(const Schema& schema) const {
  uint64_t product = 1;
  for (int idx : indices_) {
    uint64_t card = schema.attribute(idx).cardinality;
    if (card == 0) return 0;
    if (product > std::numeric_limits<uint64_t>::max() / card) {
      return std::numeric_limits<uint64_t>::max();
    }
    product *= card;
  }
  return product;
}

}  // namespace implistat
