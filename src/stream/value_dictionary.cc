#include "stream/value_dictionary.h"

#include "util/envelope.h"
#include "util/logging.h"

namespace implistat {

ValueId ValueDictionary::GetOrAdd(std::string_view value) {
  auto it = index_.find(std::string(value));
  if (it != index_.end()) return it->second;
  ValueId id = static_cast<ValueId>(values_.size());
  values_.emplace_back(value);
  index_.emplace(values_.back(), id);
  return id;
}

StatusOr<ValueId> ValueDictionary::Find(std::string_view value) const {
  auto it = index_.find(std::string(value));
  if (it == index_.end()) {
    return Status::NotFound("value not in dictionary: " + std::string(value));
  }
  return it->second;
}

const std::string& ValueDictionary::ValueOf(ValueId id) const {
  IMPLISTAT_CHECK(id < values_.size()) << "value id out of range";
  return values_[id];
}

void ValueDictionary::SerializeTo(ByteWriter* out) const {
  out->PutVarint64(values_.size());
  for (const std::string& value : values_) out->PutLengthPrefixed(value);
}

StatusOr<ValueDictionary> ValueDictionary::Deserialize(ByteReader* in) {
  uint64_t count;
  IMPLISTAT_RETURN_NOT_OK(in->ReadVarint64(&count));
  // Every entry costs at least its length byte, so a count beyond the
  // remaining bytes is hostile; check before reserving.
  if (count > in->remaining()) {
    return Status::InvalidArgument("value dictionary: implausible entry count");
  }
  ValueDictionary dict;
  dict.values_.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    std::string_view value;
    IMPLISTAT_RETURN_NOT_OK(in->ReadLengthPrefixed(&value));
    if (dict.GetOrAdd(value) != i) {
      return Status::InvalidArgument(
          "value dictionary: duplicate value '" + std::string(value) + "'");
    }
  }
  return dict;
}

std::string SerializeValueDictionaries(
    const std::vector<ValueDictionary>& dictionaries) {
  ByteWriter payload;
  payload.PutVarint64(dictionaries.size());
  for (const ValueDictionary& dict : dictionaries) dict.SerializeTo(&payload);
  return WrapSnapshot(SnapshotKind::kValueDictionary, payload.Release());
}

StatusOr<std::vector<ValueDictionary>> RestoreValueDictionaries(
    std::string_view snapshot) {
  IMPLISTAT_ASSIGN_OR_RETURN(
      std::string_view payload,
      UnwrapSnapshot(snapshot, SnapshotKind::kValueDictionary));
  ByteReader in(payload);
  uint64_t count;
  IMPLISTAT_RETURN_NOT_OK(in.ReadVarint64(&count));
  if (count > in.remaining()) {
    return Status::InvalidArgument(
        "value dictionaries: implausible attribute count");
  }
  std::vector<ValueDictionary> dictionaries;
  dictionaries.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    IMPLISTAT_ASSIGN_OR_RETURN(ValueDictionary dict,
                               ValueDictionary::Deserialize(&in));
    dictionaries.push_back(std::move(dict));
  }
  if (in.remaining() != 0) {
    return Status::InvalidArgument("value dictionaries: trailing bytes");
  }
  return dictionaries;
}

}  // namespace implistat
