#include "stream/value_dictionary.h"

#include "util/logging.h"

namespace implistat {

ValueId ValueDictionary::GetOrAdd(std::string_view value) {
  auto it = index_.find(std::string(value));
  if (it != index_.end()) return it->second;
  ValueId id = static_cast<ValueId>(values_.size());
  values_.emplace_back(value);
  index_.emplace(values_.back(), id);
  return id;
}

StatusOr<ValueId> ValueDictionary::Find(std::string_view value) const {
  auto it = index_.find(std::string(value));
  if (it == index_.end()) {
    return Status::NotFound("value not in dictionary: " + std::string(value));
  }
  return it->second;
}

const std::string& ValueDictionary::ValueOf(ValueId id) const {
  IMPLISTAT_CHECK(id < values_.size()) << "value id out of range";
  return values_[id];
}

}  // namespace implistat
