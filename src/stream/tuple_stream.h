// Tuple streams: the data-stream model of §3.
//
// A TupleStream yields dictionary-coded tuples one at a time. Streams are
// single-pass by default (the constrained-environment assumption); streams
// that can rewind say so via Reset(). Concrete sources: in-memory vectors,
// callback generators, and the synthetic workload generators in
// src/datagen.

#ifndef IMPLISTAT_STREAM_TUPLE_STREAM_H_
#define IMPLISTAT_STREAM_TUPLE_STREAM_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "stream/itemset.h"
#include "stream/schema.h"
#include "util/status.h"

namespace implistat {

class TupleStream {
 public:
  virtual ~TupleStream() = default;

  /// The schema every yielded tuple conforms to.
  virtual const Schema& schema() const = 0;

  /// Yields the next tuple, or nullopt at end of stream. The returned span
  /// is valid until the next call to Next() or the stream's destruction.
  virtual std::optional<TupleRef> Next() = 0;

  /// Rewinds to the beginning. Default: Unimplemented (single-pass).
  virtual Status Reset() {
    return Status::Unimplemented("stream is single-pass");
  }
};

/// A materialized stream over a flat row-major buffer.
class VectorStream final : public TupleStream {
 public:
  /// An empty stream over an empty schema.
  VectorStream() : width_(0) {}
  VectorStream(Schema schema, std::vector<ValueId> flat_rows);

  const Schema& schema() const override { return schema_; }
  std::optional<TupleRef> Next() override;
  Status Reset() override;

  /// Appends one tuple; must have exactly schema().num_attributes() values.
  void Append(TupleRef tuple);

  size_t num_tuples() const {
    return width_ == 0 ? 0 : flat_.size() / width_;
  }

 private:
  Schema schema_;
  std::vector<ValueId> flat_;
  size_t width_;
  size_t pos_ = 0;  // next row index
};

/// A stream produced by a callback: the callback fills `row` and returns
/// false at end of stream. Used by the synthetic generators.
class GeneratorStream final : public TupleStream {
 public:
  using Producer = std::function<bool(std::vector<ValueId>& row)>;

  GeneratorStream(Schema schema, Producer producer);

  const Schema& schema() const override { return schema_; }
  std::optional<TupleRef> Next() override;

 private:
  Schema schema_;
  Producer producer_;
  std::vector<ValueId> row_;
};

/// Drains `stream` into a VectorStream (materializes it).
VectorStream Materialize(TupleStream& stream);

}  // namespace implistat

#endif  // IMPLISTAT_STREAM_TUPLE_STREAM_H_
