// Core stream value types.

#ifndef IMPLISTAT_STREAM_TYPES_H_
#define IMPLISTAT_STREAM_TYPES_H_

#include <cstdint>

namespace implistat {

/// Dictionary-coded attribute value: a dense id per attribute.
using ValueId = uint32_t;

}  // namespace implistat

#endif  // IMPLISTAT_STREAM_TYPES_H_
