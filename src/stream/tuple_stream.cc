#include "stream/tuple_stream.h"

#include "util/logging.h"

namespace implistat {

VectorStream::VectorStream(Schema schema, std::vector<ValueId> flat_rows)
    : schema_(std::move(schema)),
      flat_(std::move(flat_rows)),
      width_(static_cast<size_t>(schema_.num_attributes())) {
  IMPLISTAT_CHECK(width_ == 0 || flat_.size() % width_ == 0)
      << "flat buffer size not a multiple of schema width";
}

std::optional<TupleRef> VectorStream::Next() {
  if (width_ == 0 || pos_ * width_ >= flat_.size()) return std::nullopt;
  TupleRef ref(&flat_[pos_ * width_], width_);
  ++pos_;
  return ref;
}

Status VectorStream::Reset() {
  pos_ = 0;
  return Status::OK();
}

void VectorStream::Append(TupleRef tuple) {
  IMPLISTAT_CHECK(tuple.size() == width_) << "tuple width mismatch";
  flat_.insert(flat_.end(), tuple.begin(), tuple.end());
}

GeneratorStream::GeneratorStream(Schema schema, Producer producer)
    : schema_(std::move(schema)),
      producer_(std::move(producer)),
      row_(static_cast<size_t>(schema_.num_attributes())) {}

std::optional<TupleRef> GeneratorStream::Next() {
  if (!producer_(row_)) return std::nullopt;
  IMPLISTAT_CHECK(row_.size() ==
                  static_cast<size_t>(schema_.num_attributes()))
      << "generator resized the row";
  return TupleRef(row_.data(), row_.size());
}

VectorStream Materialize(TupleStream& stream) {
  VectorStream out(stream.schema(), {});
  while (auto tuple = stream.Next()) out.Append(*tuple);
  return out;
}

}  // namespace implistat
