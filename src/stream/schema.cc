#include "stream/schema.h"

#include "util/logging.h"

namespace implistat {

Schema::Schema(std::vector<AttributeDef> attributes)
    : attributes_(std::move(attributes)) {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    for (size_t j = i + 1; j < attributes_.size(); ++j) {
      IMPLISTAT_CHECK(attributes_[i].name != attributes_[j].name)
          << "duplicate attribute name " << attributes_[i].name;
    }
  }
}

StatusOr<int> Schema::AddAttribute(std::string name, uint64_t cardinality) {
  for (const auto& attr : attributes_) {
    if (attr.name == name) {
      return Status::AlreadyExists("attribute already defined: " + name);
    }
  }
  attributes_.push_back(AttributeDef{std::move(name), cardinality});
  return static_cast<int>(attributes_.size()) - 1;
}

StatusOr<int> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return static_cast<int>(i);
  }
  return Status::NotFound("no such attribute: " + std::string(name));
}

}  // namespace implistat
