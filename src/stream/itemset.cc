#include "stream/itemset.h"

#include "util/bits.h"
#include "util/logging.h"
#include "util/random.h"

namespace implistat {

ItemsetPacker::ItemsetPacker(const Schema& schema, AttributeSet attrs)
    : attrs_(std::move(attrs)) {
  int total_bits = 0;
  shifts_.reserve(attrs_.size());
  for (int idx : attrs_.indices()) {
    IMPLISTAT_CHECK(idx < schema.num_attributes())
        << "attribute index " << idx << " outside schema";
    uint64_t card = schema.attribute(idx).cardinality;
    // Undeclared cardinality costs the full 32 bits of a ValueId.
    int bits = card == 0 ? 32 : CeilLog2(card == 1 ? 2 : card);
    shifts_.push_back(total_bits);
    total_bits += bits;
  }
  exact_ = total_bits <= 64;
}

ItemsetKey ItemsetPacker::Pack(TupleRef tuple) const {
  const auto& indices = attrs_.indices();
  if (exact_) {
    ItemsetKey key = 0;
    for (size_t i = 0; i < indices.size(); ++i) {
      key |= static_cast<uint64_t>(tuple[indices[i]]) << shifts_[i];
    }
    return key;
  }
  // Hash-combine fallback: mix each value with its position.
  ItemsetKey key = 0x9e3779b97f4a7c15ULL;
  for (size_t i = 0; i < indices.size(); ++i) {
    key = SplitMix64(key ^ (static_cast<uint64_t>(tuple[indices[i]]) +
                            (static_cast<uint64_t>(i) << 32)));
  }
  return key;
}

}  // namespace implistat
