// CSV import/export for tuple streams.
//
// Text interchange for examples and small datasets: the first line is a
// header of attribute names; values are dictionary-coded on read. Not a
// streaming-speed path — synthetic generators feed the benchmarks directly.

#ifndef IMPLISTAT_STREAM_CSV_IO_H_
#define IMPLISTAT_STREAM_CSV_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "stream/tuple_stream.h"
#include "stream/value_dictionary.h"
#include "util/status_or.h"

namespace implistat {

struct CsvTable {
  Schema schema;
  // One dictionary per attribute.
  std::vector<ValueDictionary> dictionaries;
  VectorStream stream;
};

/// Parses CSV text (header + comma-separated rows, no quoting/escapes).
/// Cardinalities in the returned schema are the observed distinct counts.
StatusOr<CsvTable> ReadCsv(std::istream& in);

/// As above, but interns values into `seed` dictionaries (one per header
/// attribute, checked) instead of starting empty. Seeding with the
/// dictionaries recovered from a checkpoint (PeekCheckpointDictionaries)
/// makes re-read ids match the original run no matter how the replayed
/// file is ordered — the restart path for dictionary-coded text streams.
StatusOr<CsvTable> ReadCsv(std::istream& in,
                           std::vector<ValueDictionary> seed);

/// Convenience overload over a string.
StatusOr<CsvTable> ReadCsvString(const std::string& text);

/// Writes `stream` (rewound first if possible) using `dictionaries` to
/// render values; an attribute without a dictionary is written numerically.
Status WriteCsv(TupleStream& stream,
                const std::vector<ValueDictionary>* dictionaries,
                std::ostream& out);

}  // namespace implistat

#endif  // IMPLISTAT_STREAM_CSV_IO_H_
