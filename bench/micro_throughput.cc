// Micro-benchmarks (§4.6): per-tuple update cost of the estimators and
// the distinct-count substrates, via google-benchmark.
//
// NIPS's O(K log K) per-item bound means its update cost must be flat in
// both attribute cardinality and stream length — compare against the
// hash-table exact counter whose cost (and memory) grows.

#include <benchmark/benchmark.h>

#include <span>
#include <vector>

#include "baseline/distinct_sampling.h"
#include "baseline/exact_counter.h"
#include "baseline/ilc.h"
#include "baseline/sticky_sampling.h"
#include "core/nips_ci_ensemble.h"
#include "hash/hash_family.h"
#include "parallel/sharded_nips_ci.h"
#include "sketch/fm_sketch.h"
#include "sketch/hyperloglog.h"
#include "sketch/linear_counting.h"
#include "sketch/pcsa.h"
#include "util/random.h"

namespace implistat {
namespace {

ImplicationConditions BenchConditions() {
  ImplicationConditions cond;
  cond.max_multiplicity = 2;
  cond.min_support = 5;
  cond.min_top_confidence = 0.8;
  cond.confidence_c = 1;
  cond.strict_multiplicity = false;
  return cond;
}

// Pre-generated workload: `range(0)` distinct itemsets, 8 tuples each,
// half implications half violators.
std::vector<std::pair<ItemsetKey, ItemsetKey>> MakeTuples(int64_t distinct) {
  std::vector<std::pair<ItemsetKey, ItemsetKey>> tuples;
  tuples.reserve(static_cast<size_t>(distinct) * 8);
  Rng rng(99);
  for (int64_t a = 0; a < distinct; ++a) {
    bool loyal = (a % 2) == 0;
    for (int rep = 0; rep < 8; ++rep) {
      tuples.emplace_back(static_cast<ItemsetKey>(a),
                          loyal ? 7 : rng.Uniform(1000));
    }
  }
  for (size_t i = tuples.size() - 1; i > 0; --i) {
    size_t j = rng.Uniform(i + 1);
    std::swap(tuples[i], tuples[j]);
  }
  return tuples;
}

template <typename MakeEstimator>
void RunEstimatorBenchmark(benchmark::State& state,
                           MakeEstimator make_estimator) {
  auto tuples = MakeTuples(state.range(0));
  size_t memory = 0;
  for (auto _ : state) {
    auto estimator = make_estimator();
    for (const auto& [a, b] : tuples) estimator->Observe(a, b);
    benchmark::DoNotOptimize(estimator->EstimateImplicationCount());
    memory = estimator->MemoryBytes();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(tuples.size()));
  state.counters["memory_bytes"] = static_cast<double>(memory);
}

void BM_NipsCi(benchmark::State& state) {
  RunEstimatorBenchmark(state, [] {
    NipsCiOptions opts;
    opts.seed = 3;
    return std::make_unique<NipsCi>(BenchConditions(), opts);
  });
}
BENCHMARK(BM_NipsCi)->Arg(1000)->Arg(10000)->Arg(100000);

// The batched ingest fast path: identical sketch, amortized dispatch,
// precomputed hashes, prefetched cells. The delta against BM_NipsCi at
// the same arg is the ObserveBatch win.
void BM_NipsCiObserveBatch(benchmark::State& state) {
  auto pairs = MakeTuples(state.range(0));
  std::vector<ItemsetPair> tuples;
  tuples.reserve(pairs.size());
  for (const auto& [a, b] : pairs) tuples.push_back(ItemsetPair{a, b});
  constexpr size_t kSpan = 4096;
  size_t memory = 0;
  for (auto _ : state) {
    NipsCiOptions opts;
    opts.seed = 3;
    NipsCi estimator(BenchConditions(), opts);
    std::span<const ItemsetPair> all(tuples);
    for (size_t i = 0; i < all.size(); i += kSpan) {
      estimator.ObserveBatch(all.subspan(i, std::min(kSpan, all.size() - i)));
    }
    benchmark::DoNotOptimize(estimator.EstimateImplicationCount());
    memory = estimator.MemoryBytes();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(tuples.size()));
  state.counters["memory_bytes"] = static_cast<double>(memory);
}
BENCHMARK(BM_NipsCiObserveBatch)->Arg(1000)->Arg(10000)->Arg(100000);

// The full parallel pipeline at 2 workers — on a multi-core host this
// should beat BM_NipsCiObserveBatch; on one core it prices the
// router/queue overhead.
void BM_ShardedNipsCi(benchmark::State& state) {
  auto pairs = MakeTuples(state.range(0));
  std::vector<ItemsetPair> tuples;
  tuples.reserve(pairs.size());
  for (const auto& [a, b] : pairs) tuples.push_back(ItemsetPair{a, b});
  constexpr size_t kSpan = 4096;
  for (auto _ : state) {
    ShardedNipsCiOptions opts;
    opts.threads = 2;
    opts.ensemble.seed = 3;
    ShardedNipsCi estimator(BenchConditions(), opts);
    std::span<const ItemsetPair> all(tuples);
    for (size_t i = 0; i < all.size(); i += kSpan) {
      estimator.ObserveBatch(all.subspan(i, std::min(kSpan, all.size() - i)));
    }
    benchmark::DoNotOptimize(estimator.EstimateImplicationCount());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(tuples.size()));
}
BENCHMARK(BM_ShardedNipsCi)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Exact(benchmark::State& state) {
  RunEstimatorBenchmark(state, [] {
    return std::make_unique<ExactImplicationCounter>(BenchConditions());
  });
}
BENCHMARK(BM_Exact)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_DistinctSampling(benchmark::State& state) {
  RunEstimatorBenchmark(state, [] {
    DistinctSamplingOptions opts;
    opts.seed = 3;
    return std::make_unique<DistinctSampling>(BenchConditions(), opts);
  });
}
BENCHMARK(BM_DistinctSampling)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Ilc(benchmark::State& state) {
  RunEstimatorBenchmark(state, [] {
    return std::make_unique<Ilc>(BenchConditions(), IlcOptions{});
  });
}
BENCHMARK(BM_Ilc)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_Iss(benchmark::State& state) {
  RunEstimatorBenchmark(state, [] {
    StickySamplingOptions opts;
    opts.seed = 3;
    return std::make_unique<ImplicationStickySampling>(BenchConditions(),
                                                       opts);
  });
}
BENCHMARK(BM_Iss)->Arg(1000)->Arg(10000)->Arg(100000);

// Distributed-aggregation path: serialize + deserialize + merge of a
// loaded 64-bitmap ensemble (what an edge router ships per interval).
void BM_SerializeMergeRoundTrip(benchmark::State& state) {
  auto tuples = MakeTuples(20000);
  NipsCiOptions opts;
  opts.seed = 3;
  NipsCi edge(BenchConditions(), opts);
  for (const auto& [a, b] : tuples) edge.Observe(a, b);
  const std::string bytes = edge.Serialize();
  for (auto _ : state) {
    NipsCi core(BenchConditions(), opts);
    auto shipped = NipsCi::Deserialize(bytes);
    if (!shipped.ok() || !core.Merge(*shipped).ok()) {
      state.SkipWithError("round trip failed");
      return;
    }
    benchmark::DoNotOptimize(core.EstimateImplicationCount());
  }
  state.counters["wire_bytes"] = static_cast<double>(bytes.size());
}
BENCHMARK(BM_SerializeMergeRoundTrip);

// Distinct-count substrates: raw Add() throughput.
template <typename Sketch, typename... Args>
void RunSketchBenchmark(benchmark::State& state, Args... args) {
  Sketch sketch(MakeHasher(HashKind::kMix, 1), args...);
  uint64_t key = 0;
  for (auto _ : state) {
    sketch.Add(SplitMix64(key++));
    benchmark::DoNotOptimize(sketch);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_FmSketchAdd(benchmark::State& state) {
  RunSketchBenchmark<FmSketch>(state);
}
BENCHMARK(BM_FmSketchAdd);

void BM_PcsaAdd(benchmark::State& state) {
  RunSketchBenchmark<Pcsa>(state, 64);
}
BENCHMARK(BM_PcsaAdd);

void BM_HyperLogLogAdd(benchmark::State& state) {
  RunSketchBenchmark<HyperLogLog>(state, 12);
}
BENCHMARK(BM_HyperLogLogAdd);

void BM_LinearCountingAdd(benchmark::State& state) {
  RunSketchBenchmark<LinearCounting>(state, size_t{1} << 16);
}
BENCHMARK(BM_LinearCountingAdd);

}  // namespace
}  // namespace implistat

BENCHMARK_MAIN();
