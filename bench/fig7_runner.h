// Figure 7 driver: relative error vs. stream size for NIPS/CI, Distinct
// Sampling and ILC on an OLAP workload, two panels (sigma = 5 and 50),
// with the gamma = 0.6 / 0.8 variants of each algorithm as in the paper's
// legends "NIPS/CI(.6)", "DS(.6)", "ILC(.6)", etc.
//
// All estimators see the identical stream in one pass; the exact counter
// provides the truth at each checkpoint. Table 5 parameters: NIPS/CI 64
// bitmaps and K = 2, DS sample size 1920 with bound t = 39, ILC
// epsilon = 0.01.

#ifndef IMPLISTAT_BENCH_FIG7_RUNNER_H_
#define IMPLISTAT_BENCH_FIG7_RUNNER_H_

#include <array>

#include "olap_workload.h"

namespace implistat::bench {

inline void RunFig7(const char* figure_name, OlapWorkload workload) {
  std::printf("== %s: relative error vs stream size, workload %s ==\n",
              figure_name, WorkloadName(workload));
  std::printf("-- Table 5 params: NIPS/CI m=64 K=2, DS sample=1920 t=39,\n"
              "-- ILC eps=0.01; errors in %%%s\n",
              EnvFull() ? " [FULL: 5.38M tuples]"
                        : " (IMPLISTAT_FULL=1 extends to 5.38M tuples)");

  const std::array<uint64_t, 2> sigmas = {5, 50};
  const std::array<double, 2> gammas = {0.6, 0.8};

  for (uint64_t sigma : sigmas) {
    std::printf("\n(panel sigma = %" PRIu64 ")\n", sigma);
    std::printf("%10s %12s %12s %10s %10s %10s %10s %10s %10s\n", "tuples",
                "truth(.6)", "truth(.8)", "NIPS(.6)", "NIPS(.8)", "DS(.6)",
                "DS(.8)", "ILC(.6)", "ILC(.8)");

    OlapGenParams params;
    params.seed = 42;  // same stream as the Table 4 bench
    OlapGenerator gen(params);
    std::unique_ptr<ItemsetPacker> a_packer, b_packer;
    MakePackers(gen.schema(), workload, &a_packer, &b_packer);

    struct Lane {
      std::unique_ptr<ExactImplicationCounter> exact;
      std::unique_ptr<NipsCi> nips;
      std::unique_ptr<DistinctSampling> ds;
      std::unique_ptr<Ilc> ilc;
    };
    std::array<Lane, 2> lanes;  // one per gamma
    for (size_t g = 0; g < gammas.size(); ++g) {
      ImplicationConditions cond = WorkloadConditions(sigma, gammas[g]);
      lanes[g].exact = std::make_unique<ExactImplicationCounter>(cond);
      NipsCiOptions nips_opts;
      nips_opts.num_bitmaps = 64;
      nips_opts.seed = 1000 + g;
      lanes[g].nips = std::make_unique<NipsCi>(cond, nips_opts);
      DistinctSamplingOptions ds_opts;
      ds_opts.max_sample_entries = 1920;
      ds_opts.per_value_bound = 39;
      ds_opts.seed = 2000 + g;
      lanes[g].ds = std::make_unique<DistinctSampling>(cond, ds_opts);
      IlcOptions ilc_opts;
      ilc_opts.epsilon = 0.01;
      lanes[g].ilc = std::make_unique<Ilc>(cond, ilc_opts);
    }

    uint64_t tuples = 0;
    for (uint64_t checkpoint : Checkpoints()) {
      while (tuples < checkpoint) {
        auto tuple = gen.Next();
        ItemsetKey a = a_packer->Pack(*tuple);
        ItemsetKey b = b_packer->Pack(*tuple);
        for (Lane& lane : lanes) {
          lane.exact->Observe(a, b);
          lane.nips->Observe(a, b);
          lane.ds->Observe(a, b);
          lane.ilc->Observe(a, b);
        }
        ++tuples;
      }
      std::array<double, 2> truth;
      std::array<double, 6> errs;
      for (size_t g = 0; g < 2; ++g) {
        truth[g] = static_cast<double>(lanes[g].exact->ImplicationCount());
        errs[g] = RelativeError(truth[g],
                                lanes[g].nips->EstimateImplicationCount());
        errs[2 + g] = RelativeError(
            truth[g], lanes[g].ds->EstimateImplicationCount());
        errs[4 + g] = RelativeError(
            truth[g], lanes[g].ilc->EstimateImplicationCount());
      }
      std::printf("%10" PRIu64 " %12.0f %12.0f %10.1f %10.1f %10.1f %10.1f "
                  "%10.1f %10.1f\n",
                  tuples, truth[0], truth[1], 100 * errs[0], 100 * errs[1],
                  100 * errs[2], 100 * errs[3], 100 * errs[4],
                  100 * errs[5]);
    }
    std::printf("  memory: NIPS/CI %zu B, DS %zu B, ILC %zu B, exact %zu "
                "B\n",
                lanes[0].nips->MemoryBytes(), lanes[0].ds->MemoryBytes(),
                lanes[0].ilc->MemoryBytes(), lanes[0].exact->MemoryBytes());
  }
  std::printf("\n(paper: NIPS/CI stays near/below 10%%; DS swings widely;\n"
              " ILC returns very erroneous results and uses more memory)\n");
}

}  // namespace implistat::bench

#endif  // IMPLISTAT_BENCH_FIG7_RUNNER_H_
