// Ablation (§4.7 / Table 5): stochastic-averaging width m vs accuracy.
//
// The error of the averaged FM estimator scales like 0.78/sqrt(m); the
// paper fixes m = 64 for ~10%. This bench sweeps m and reports the mean
// relative error of the implication count on Dataset One.

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/nips_ci_ensemble.h"
#include "datagen/dataset_one.h"
#include "stream/itemset.h"

int main() {
  using namespace implistat;
  using namespace implistat::bench;

  const int trials = EnvTrials(5);
  const uint64_t cardinality = EnvFull() ? 20000 : 5000;
  PrintHeaderBanner("Ablation: number of bitmaps m (stochastic averaging)",
                    "Dataset One, c=1, S=|A|/2, F=4");
  std::printf("|A| = %" PRIu64 ", %d trial(s)\n\n", cardinality, trials);

  const std::vector<int> bitmap_counts = {8, 16, 32, 64, 128, 256};
  std::printf("%8s %12s %12s %16s %14s\n", "m", "mean-err", "stddev",
              "0.78/sqrt(m)", "memory-bytes");
  for (int m : bitmap_counts) {
    std::vector<double> errs;
    size_t memory = 0;
    for (int trial = 0; trial < trials; ++trial) {
      DatasetOneParams params;
      params.cardinality_a = cardinality;
      params.implied_count = cardinality / 2;
      params.c = 1;
      params.seed = m * 104729ull + trial;
      DatasetOne data = GenerateDatasetOne(params);
      NipsCiOptions opts;
      opts.num_bitmaps = m;
      opts.seed = params.seed ^ 0xcd;
      NipsCi est(data.conditions, opts);
      ItemsetPacker a_packer(data.schema, AttributeSet({0}));
      ItemsetPacker b_packer(data.schema, AttributeSet({1}));
      while (auto tuple = data.stream.Next()) {
        est.Observe(a_packer.Pack(*tuple), b_packer.Pack(*tuple));
      }
      errs.push_back(
          RelativeError(static_cast<double>(data.true_implication_count),
                        est.EstimateImplicationCount()));
      memory = est.MemoryBytes();
    }
    MeanStd stats = Summarize(errs);
    std::printf("%8d %12.4f %12.4f %16.4f %14zu\n", m, stats.mean,
                stats.stddev, 0.78 / std::sqrt(static_cast<double>(m)),
                memory);
  }
  std::printf("\n(expected: error shrinks ~1/sqrt(m); m=64 lands near the\n"
              " paper's 10%% working point)\n");
  return 0;
}
