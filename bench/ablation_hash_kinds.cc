// Ablation: hash family vs. estimator accuracy.
//
// §4.7.1's analysis assumes linear (over GF(2)) hash functions; practical
// deployments reach for cheaper mixers. This bench runs NIPS/CI over
// Dataset One with each of the library's families — strong mixer,
// 2-independent multiply-shift, 3-independent tabulation, GF(2)-linear —
// and reports mean error and update throughput.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/nips_ci_ensemble.h"
#include "datagen/dataset_one.h"
#include "stream/itemset.h"

int main() {
  using namespace implistat;
  using namespace implistat::bench;

  const int trials = EnvTrials(5);
  const uint64_t cardinality = EnvFull() ? 20000 : 5000;
  PrintHeaderBanner("Ablation: hash family",
                    "NIPS/CI on Dataset One, c=1, S=|A|/2, m=64, F=4");
  std::printf("|A| = %" PRIu64 ", %d trial(s)\n\n", cardinality, trials);

  struct Family {
    HashKind kind;
    const char* name;
  };
  const std::vector<Family> families = {
      {HashKind::kMix, "mix (SplitMix64)"},
      {HashKind::kMultiplyShift, "multiply-shift (2-indep)"},
      {HashKind::kTabulation, "tabulation (3-indep)"},
      {HashKind::kLinearGf2, "GF(2) linear"},
  };

  std::printf("%-26s %10s %10s %14s\n", "family", "mean-err", "stddev",
              "Mtuples/s");
  for (const Family& family : families) {
    std::vector<double> errs;
    double total_seconds = 0;
    uint64_t total_tuples = 0;
    for (int trial = 0; trial < trials; ++trial) {
      DatasetOneParams params;
      params.cardinality_a = cardinality;
      params.implied_count = cardinality / 2;
      params.c = 1;
      params.seed = static_cast<uint64_t>(family.kind) * 7907 + trial;
      DatasetOne data = GenerateDatasetOne(params);
      NipsCiOptions opts;
      opts.hash_kind = family.kind;
      opts.seed = params.seed ^ 0xfa;
      NipsCi est(data.conditions, opts);
      ItemsetPacker a_packer(data.schema, AttributeSet({0}));
      ItemsetPacker b_packer(data.schema, AttributeSet({1}));
      auto start = std::chrono::steady_clock::now();
      while (auto tuple = data.stream.Next()) {
        est.Observe(a_packer.Pack(*tuple), b_packer.Pack(*tuple));
        ++total_tuples;
      }
      total_seconds += std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
      errs.push_back(
          RelativeError(static_cast<double>(data.true_implication_count),
                        est.EstimateImplicationCount()));
    }
    MeanStd stats = Summarize(errs);
    std::printf("%-26s %10.4f %10.4f %14.1f\n", family.name, stats.mean,
                stats.stddev,
                total_tuples / total_seconds / 1e6);
  }
  std::printf(
      "\n(finding: pairwise independence is NOT enough in practice. The\n"
      " itemset ids here are sequential — the adversarial-but-common\n"
      " case — and both multiply-shift and the GF(2)-linear family map\n"
      " arithmetic progressions onto rigidly structured outputs whose\n"
      " joint rank statistics are far from the independent model the\n"
      " estimator assumes; their errors are several times larger. The\n"
      " strong mixer and 3-independent tabulation stay in the expected\n"
      " 0.78/sqrt(64) band. The paper's (eps,delta) analysis cites linear\n"
      " hashes for the theory; deployments should mix harder.)\n");
  return 0;
}
