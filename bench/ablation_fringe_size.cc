// Ablation (§4.3.3 / Lemma 2): error of the bounded fringe as a function
// of the fringe size F and the smallness of the non-implication count.
//
// Fixing the fringe introduces error only when the non-implication count
// falls below ~2^-F · F0(A); sweeping the imposed implication count toward
// |A| (i.e. ~S toward 0) shows where each F breaks down, and why the
// paper's default F = 4 suffices for "most applications".

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/nips_ci_ensemble.h"
#include "datagen/dataset_one.h"
#include "stream/itemset.h"

int main() {
  using namespace implistat;
  using namespace implistat::bench;

  const int trials = EnvTrials();
  const uint64_t cardinality = EnvFull() ? 20000 : 5000;
  PrintHeaderBanner("Ablation: fringe size F vs small non-implication "
                    "counts",
                    "Dataset One, c=1; error of the NON-implication "
                    "estimate ~S");
  std::printf("|A| = %" PRIu64 ", %d trial(s)\n\n", cardinality, trials);

  const std::vector<int> fringe_sizes = {2, 3, 4, 6, 8};
  // Imposed S as a fraction of |A|; ~S = 2/3 of the rest.
  const std::vector<int> impl_pcts = {50, 80, 90, 96, 99};

  std::printf("%14s %14s", "impl-count", "nonimpl-count");
  for (int f : fringe_sizes) std::printf("      F=%d", f);
  std::printf("%9s\n", "unbnd");
  for (int pct : impl_pcts) {
    uint64_t s = cardinality * pct / 100;
    std::vector<std::vector<double>> errs(fringe_sizes.size() + 1);
    uint64_t true_non_impl = 0;
    for (int trial = 0; trial < trials; ++trial) {
      DatasetOneParams params;
      params.cardinality_a = cardinality;
      params.implied_count = s;
      params.c = 1;
      params.seed = pct * 7919ull + trial;
      DatasetOne data = GenerateDatasetOne(params);
      true_non_impl = data.true_non_implication_count;

      std::vector<NipsCi> estimators;
      for (size_t i = 0; i < fringe_sizes.size() + 1; ++i) {
        NipsCiOptions opts;
        opts.num_bitmaps = 64;
        opts.nips.fringe_size =
            i < fringe_sizes.size() ? fringe_sizes[i] : 0;
        opts.seed = params.seed ^ 0xab;
        estimators.emplace_back(data.conditions, opts);
      }
      ItemsetPacker a_packer(data.schema, AttributeSet({0}));
      ItemsetPacker b_packer(data.schema, AttributeSet({1}));
      while (auto tuple = data.stream.Next()) {
        ItemsetKey a = a_packer.Pack(*tuple);
        ItemsetKey b = b_packer.Pack(*tuple);
        for (NipsCi& est : estimators) est.Observe(a, b);
      }
      for (size_t i = 0; i < estimators.size(); ++i) {
        errs[i].push_back(RelativeError(
            static_cast<double>(data.true_non_implication_count),
            estimators[i].EstimateNonImplicationCount()));
      }
    }
    std::printf("%14" PRIu64 " %14" PRIu64, s, true_non_impl);
    for (const auto& column : errs) {
      std::printf(" %8.3f", Summarize(column).mean);
    }
    std::printf("\n");
  }
  std::printf("\n(expected: small F inflates ~S estimates once the true\n"
              " non-implication count sinks below 2^-F per bitmap share;\n"
              " F=4 holds until ~6%% of F0, matching §4.3.3)\n");
  return 0;
}
