// High-concurrency serving benchmark: >=128 pipelined connections
// ingesting through the multi-reactor server while a query client
// measures round-trip tail latency under that load. Self-verifying the
// strongest way available: every OBSERVE response carries the server's
// cumulative tuple count, which (with equal-sized batches) reconstructs
// the exact server-side arrival order; an in-process twin engine replays
// the batches in that order and its serialized state must be
// BYTE-IDENTICAL to the served engine's.
//
// All request frames are pre-encoded outside the timed region, so the
// measured path is: client send/recv syscalls + reactor decode/validate
// + single-writer apply + response encode/flush.
//
// Scale knobs: IMPLISTAT_FULL=1 (8x the batches), IMPLISTAT_REACTORS=N
// (default 2). An optional argv[1] names a JSON output file
// (results/BENCH_net_concurrent.json is the checked-in copy).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "net/client.h"
#include "net/messages.h"
#include "net/server.h"
#include "net/wire.h"
#include "query/engine.h"
#include "util/random.h"

namespace implistat {
namespace {

constexpr int kConnections = 128;
constexpr int kClientThreads = 4;  // 32 pipelined connections each
constexpr size_t kBatchSize = 4096;
constexpr size_t kWindow = 8;  // in-flight batches per connection

Schema BenchSchema() { return Schema({{"A", 200000}, {"B", 1000}}); }

ImplicationQuerySpec BenchSpec() {
  ImplicationQuerySpec spec;
  spec.a_attributes = {"A"};
  spec.b_attributes = {"B"};
  spec.conditions.max_multiplicity = 2;
  spec.conditions.min_support = 5;
  spec.conditions.min_top_confidence = 0.8;
  spec.conditions.confidence_c = 1;
  spec.conditions.strict_multiplicity = false;
  spec.estimator.kind = EstimatorKind::kNipsCi;
  spec.label = "bench";
  return spec;
}

double NowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Batch `g` of the loyal/violator workload, deterministic in g so the
// twin can regenerate it during replay.
std::vector<ValueId> BatchIds(uint64_t g) {
  Rng rng(0x5eed + g);
  std::vector<ValueId> ids;
  ids.reserve(kBatchSize * 2);
  for (size_t i = 0; i < kBatchSize; ++i) {
    const ValueId a = static_cast<ValueId>(rng.Uniform(200000));
    const bool loyal = (a % 2) == 0;
    const ValueId b =
        static_cast<ValueId>(loyal ? 7 : rng.Uniform(1000));
    ids.push_back(a);
    ids.push_back(b);
  }
  return ids;
}

double Percentile(std::vector<double>& xs, double p) {
  std::sort(xs.begin(), xs.end());
  const size_t at = static_cast<size_t>(p * static_cast<double>(xs.size()));
  return xs[std::min(at, xs.size() - 1)];
}

}  // namespace
}  // namespace implistat

int main(int argc, char** argv) {
  using namespace implistat;
  const uint64_t batches_per_conn = bench::EnvFull() ? 32 : 4;
  const uint64_t total_batches =
      static_cast<uint64_t>(kConnections) * batches_per_conn;
  const uint64_t total_tuples = total_batches * kBatchSize;
  int reactors = 2;
  if (const char* env = std::getenv("IMPLISTAT_REACTORS")) {
    reactors = std::max(1, std::atoi(env));
  }

  bench::PrintHeaderBanner(
      "Concurrent serving throughput (128 pipelined connections)",
      "multi-reactor server, single-writer engine; arrival order "
      "reconstructed from response epochs and replayed into a twin — "
      "serialized states must match byte for byte");
  std::printf(
      "connections=%d threads=%d reactors=%d batch=%zu window=%zu "
      "tuples=%llu\n\n",
      kConnections, kClientThreads, reactors, kBatchSize, kWindow,
      static_cast<unsigned long long>(total_tuples));

  QueryEngine engine(BenchSchema());
  if (!engine.Register(BenchSpec()).ok()) {
    std::fprintf(stderr, "register failed\n");
    return 1;
  }

  net::ServerOptions options;
  options.reactors = reactors;
  net::Server server(&engine, options);
  if (Status started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 std::string(started.message()).c_str());
    return 1;
  }
  std::thread loop([&server] { (void)server.Run(); });

  // Pre-encode every request frame outside the timed region.
  std::printf("pre-encoding %llu frames...\n",
              static_cast<unsigned long long>(total_batches));
  std::vector<std::string> frames(total_batches);
  for (uint64_t g = 0; g < total_batches; ++g) {
    net::ObserveBatchRequest batch;
    batch.encoding = net::ObserveEncoding::kIds;
    batch.width = 2;
    batch.ids = BatchIds(g);
    frames[g] = net::EncodeRequestFrame(net::MsgType::kObserveBatch,
                                        net::EncodeObserveBatchRequest(batch));
  }

  // Connect everything before the clock starts.
  net::ClientOptions copts;
  copts.max_in_flight = kWindow;
  std::vector<std::unique_ptr<net::Client>> conns;
  conns.reserve(kConnections);
  for (int i = 0; i < kConnections; ++i) {
    auto client = net::Client::Connect("127.0.0.1", server.port(), copts);
    if (!client.ok()) {
      std::fprintf(stderr, "connect %d failed\n", i);
      return 1;
    }
    conns.push_back(std::make_unique<net::Client>(std::move(*client)));
  }
  auto querier = net::Client::Connect("127.0.0.1", server.port());
  if (!querier.ok()) {
    std::fprintf(stderr, "querier connect failed\n");
    return 1;
  }

  // arrivals[g] = server tuples_seen after batch g applied.
  std::vector<uint64_t> arrivals(total_batches, 0);
  std::atomic<int> failures{0};
  std::atomic<bool> ingest_done{false};

  // Query tail latency under full ingest load, on its own connection.
  // Probes are periodic (a monitoring cadence), not back-to-back: a
  // QUERY recomputes the jackknife error bars on the writer thread, so
  // saturating with queries would measure a query-bound server, not
  // ingest tail latency.
  int probe_interval_ms = 20;
  if (const char* env = std::getenv("IMPLISTAT_PROBE_MS")) {
    probe_interval_ms = std::max(0, std::atoi(env));
  }
  std::vector<double> query_us;
  std::thread query_thread([&] {
    while (!ingest_done.load(std::memory_order_relaxed)) {
      const double q0 = NowUs();
      auto response = querier->Query({0});
      if (!response.ok()) {
        failures.fetch_add(1);
        return;
      }
      query_us.push_back(NowUs() - q0);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(probe_interval_ms));
    }
  });

  const double start_us = NowUs();
  std::vector<std::thread> threads;
  const int conns_per_thread = kConnections / kClientThreads;
  for (int t = 0; t < kClientThreads; ++t) {
    threads.emplace_back([&, t] {
      struct ConnState {
        net::Client* client;
        uint64_t base;       // first global batch id for this connection
        uint64_t submitted = 0;
        uint64_t awaited = 0;
      };
      std::vector<ConnState> mine;
      for (int i = t * conns_per_thread; i < (t + 1) * conns_per_thread;
           ++i) {
        mine.push_back({conns[static_cast<size_t>(i)].get(),
                        static_cast<uint64_t>(i) * batches_per_conn});
      }
      // Round-robin: keep every connection's window full; while one
      // connection's response is awaited, the server keeps chewing on
      // the other 31 pipelines.
      bool work = true;
      while (work) {
        work = false;
        for (ConnState& cs : mine) {
          while (cs.submitted < batches_per_conn &&
                 cs.client->in_flight() < kWindow) {
            Status sent = cs.client->Submit(
                net::MsgType::kObserveBatch,
                frames[cs.base + cs.submitted], /*pre_encoded=*/true);
            if (!sent.ok()) {
              failures.fetch_add(1);
              return;
            }
            ++cs.submitted;
          }
          if (cs.awaited < cs.submitted) {
            auto body = cs.client->Await();
            if (!body.ok()) {
              failures.fetch_add(1);
              return;
            }
            auto seen = net::DecodeObserveBatchResponse(*body);
            if (!seen.ok()) {
              failures.fetch_add(1);
              return;
            }
            arrivals[cs.base + cs.awaited] = *seen;
            ++cs.awaited;
          }
          if (cs.awaited < batches_per_conn) work = true;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double ingest_us = NowUs() - start_us;
  ingest_done.store(true);
  query_thread.join();

  if (failures.load() != 0) {
    std::fprintf(stderr, "FAILED: %d transport errors\n", failures.load());
    return 1;
  }

  // Grab the remote estimate before shutting down, for the twin check.
  auto final_response = querier->Query({0});
  if (!final_response.ok() || final_response->results.size() != 1) {
    std::fprintf(stderr, "final query failed\n");
    return 1;
  }
  server.Shutdown();
  loop.join();

  if (engine.tuples_seen() != total_tuples) {
    std::fprintf(stderr, "VERIFY FAILED: server saw %llu of %llu tuples\n",
                 static_cast<unsigned long long>(engine.tuples_seen()),
                 static_cast<unsigned long long>(total_tuples));
    return 1;
  }

  // Replay in server arrival order: sort global batch ids by the epoch
  // each response reported. Epochs are distinct multiples of the batch
  // size, so the order is total.
  std::printf("verifying: replaying %llu batches into a twin engine...\n",
              static_cast<unsigned long long>(total_batches));
  std::vector<uint64_t> order(total_batches);
  for (uint64_t g = 0; g < total_batches; ++g) order[g] = g;
  std::sort(order.begin(), order.end(), [&](uint64_t a, uint64_t b) {
    return arrivals[a] < arrivals[b];
  });
  for (uint64_t i = 0; i < total_batches; ++i) {
    if (arrivals[order[i]] != (i + 1) * kBatchSize) {
      std::fprintf(stderr, "VERIFY FAILED: epoch gap at arrival %llu\n",
                   static_cast<unsigned long long>(i));
      return 1;
    }
  }
  QueryEngine twin(BenchSchema());
  (void)twin.Register(BenchSpec());
  for (uint64_t g : order) {
    const std::vector<ValueId> ids = BatchIds(g);
    for (size_t i = 0; i < ids.size(); i += 2) {
      std::vector<ValueId> tuple = {ids[i], ids[i + 1]};
      twin.ObserveTuple(TupleRef(tuple.data(), tuple.size()));
    }
  }
  auto state = engine.SerializeState();
  auto twin_state = twin.SerializeState();
  if (!state.ok() || !twin_state.ok() || *state != *twin_state) {
    std::fprintf(stderr,
                 "VERIFY FAILED: served state != twin state (byte compare)\n");
    return 1;
  }
  const double expected = *twin.Answer(0);
  if (final_response->results[0].estimate != expected) {
    std::fprintf(stderr, "VERIFY FAILED: remote %.17g != twin %.17g\n",
                 final_response->results[0].estimate, expected);
    return 1;
  }

  const double mtps = static_cast<double>(total_tuples) / ingest_us;
  double p50 = 0;
  double p99 = 0;
  double p999 = 0;
  if (!query_us.empty()) {
    p50 = Percentile(query_us, 0.50);
    p99 = Percentile(query_us, 0.99);
    p999 = Percentile(query_us, 0.999);
  }

  std::printf("\ningest: %.3f Mtuples/s over %d pipelined connections\n",
              mtps, kConnections);
  std::printf("query RTT under load (%zu probes): p50=%.1fus p99=%.1fus "
              "p999=%.1fus\n",
              query_us.size(), p50, p99, p999);
  std::printf("\nstate verified byte-identical to arrival-order twin\n");

  if (argc > 1) {
    std::ofstream json(argv[1]);
    if (!json) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    json << "{\n"
         << "  \"bench\": \"net_concurrent\",\n"
         << "  \"workload\": \"loyal/violator, 200k distinct itemsets, "
         << "TCP loopback\",\n"
         << "  \"host_cpus\": " << std::thread::hardware_concurrency()
         << ",\n"
         << "  \"connections\": " << kConnections << ",\n"
         << "  \"client_threads\": " << kClientThreads << ",\n"
         << "  \"reactors\": " << reactors << ",\n"
         << "  \"batch_size\": " << kBatchSize << ",\n"
         << "  \"pipeline_window\": " << kWindow << ",\n"
         << "  \"total_tuples\": " << total_tuples << ",\n"
         << "  \"note\": \"frames pre-encoded outside the timed region; "
         << "server arrival order reconstructed from response epochs and "
         << "replayed into a twin engine whose serialized state matched "
         << "byte for byte\",\n"
         << "  \"ingest_million_tuples_per_sec\": " << mtps << ",\n"
         << "  \"query_probes_under_load\": " << query_us.size() << ",\n"
         << "  \"query_p50_us\": " << p50 << ",\n"
         << "  \"query_p99_us\": " << p99 << ",\n"
         << "  \"query_p999_us\": " << p999 << "\n"
         << "}\n";
    std::fprintf(stderr, "[implistat] net concurrent -> %s\n", argv[1]);
  }
  bench::MaybeWriteMetricsJson();
  return 0;
}
