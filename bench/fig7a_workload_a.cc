// Regenerates Figure 7(A): relative error vs stream size, workload A.

#include "fig7_runner.h"

int main() {
  implistat::bench::RunFig7("Figure 7(A)",
                            implistat::bench::OlapWorkload::kA);
  return 0;
}
