// Regenerates Table 3: the per-dimension cardinalities of the real-data
// stand-in. The paper's table lists the declared cardinalities of the
// proprietary OLAP dataset; here we verify the synthetic generator both
// declares them and approaches them in a finite stream.

#include <cinttypes>
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "bench_util.h"
#include "datagen/olap_gen.h"

int main() {
  using namespace implistat;
  bench::PrintHeaderBanner(
      "Table 3: dimension cardinalities",
      "synthetic OLAP stand-in (proprietary source unavailable)");

  OlapGenParams params;
  params.seed = 1;
  OlapGenerator gen(params);
  const uint64_t tuples = bench::EnvFull() ? 5000000 : 1000000;
  std::vector<std::unordered_set<ValueId>> seen(8);
  for (uint64_t i = 0; i < tuples; ++i) {
    auto tuple = gen.Next();
    for (int d = 0; d < 8; ++d) seen[d].insert((*tuple)[d]);
  }
  std::printf("%10s %10s %12s %14s\n", "dimension", "paper", "declared",
              "observed");
  const uint64_t paper[8] = {1557, 2669, 2, 2, 3363, 131, 660, 693};
  for (int d = 0; d < 8; ++d) {
    std::printf("%10s %10" PRIu64 " %12" PRIu64 " %14zu\n",
                gen.schema().attribute(d).name.c_str(), paper[d],
                gen.schema().attribute(d).cardinality, seen[d].size());
  }
  std::printf("\n(observed counts converge to the declared Table 3 values\n"
              " as the stream grows; %" PRIu64 " tuples here)\n", tuples);
  return 0;
}
