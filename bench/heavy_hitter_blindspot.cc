// Extension bench: the frequency blind spot (§1, §5).
//
// "The cumulative effect of many objects whose frequency of appearance is
// less than the given threshold may overwhelm the implication statistics
// although these objects are not identified [by heavy-hitter methods]."
//
// A spoofed-source DDoS is streamed next to quiet traffic. Three
// summaries watch the same packets:
//   * Space-Saving top-k over sources (the heavy-hitter answer),
//   * Count-Min point queries for the attack sources,
//   * NIPS/CI's implication count of Source → Destination (K = 1).
// The heavy-hitter view shows nothing — no spoofed source clears any
// sensible threshold, each sent one packet. The implication count jumps
// by the size of the spoofed population.

#include <cinttypes>
#include <cstdio>

#include "bench_util.h"
#include "core/nips_ci_ensemble.h"
#include "datagen/netflow_gen.h"
#include "sketch/count_min.h"
#include "sketch/space_saving.h"
#include "util/random.h"

int main() {
  using namespace implistat;
  using namespace implistat::bench;

  PrintHeaderBanner("Extension: heavy-hitter blind spot vs implication "
                    "counts",
                    "spoofed-source DDoS; Space-Saving k=256, Count-Min "
                    "eps=1e-4, NIPS/CI m=64");

  const uint64_t quiet_tuples = EnvFull() ? 2000000 : 500000;
  const uint64_t attack_tuples = quiet_tuples / 5;

  NetflowGenParams params;
  params.seed = 77;
  params.num_sources = 1 << 20;
  Episode ddos;
  ddos.kind = EpisodeKind::kDdos;
  ddos.start_tuple = quiet_tuples;
  ddos.length = attack_tuples;
  ddos.intensity = 0.5;
  ddos.focus = 42;
  params.episodes = {ddos};
  NetflowGenerator gen(params);

  SpaceSaving heavy(256);
  CountMinSketch cm = CountMinSketch::FromErrorBounds(1e-4, 0.01, 3);
  ImplicationConditions cond;
  cond.max_multiplicity = 1;
  cond.min_support = 1;
  cond.min_top_confidence = 1.0;
  cond.confidence_c = 1;
  NipsCi nips(cond, NipsCiOptions{});

  auto report = [&](const char* phase, uint64_t tuples) {
    // Heavy hitters above 0.5% of the stream.
    auto hitters = heavy.GuaranteedAbove(tuples / 200);
    uint64_t top_count = 0;
    if (!heavy.Items().empty()) top_count = heavy.Items().front().count;
    std::printf("%-18s %10" PRIu64 " tuples | heavy hitters(>0.5%%): %zu "
                "(top count %" PRIu64 ") | S(src->dst): %10.0f\n",
                phase, tuples, hitters.size(), top_count,
                nips.EstimateImplicationCount());
  };

  uint64_t tuples = 0;
  for (; tuples < quiet_tuples; ++tuples) {
    auto tuple = gen.Next();
    ValueId src = (*tuple)[NetflowGenerator::kSource];
    ValueId dst = (*tuple)[NetflowGenerator::kDestination];
    heavy.Observe(src);
    cm.Add(src);
    nips.Observe(src, dst);
  }
  report("quiet baseline", tuples);

  for (; tuples < quiet_tuples + attack_tuples; ++tuples) {
    auto tuple = gen.Next();
    ValueId src = (*tuple)[NetflowGenerator::kSource];
    ValueId dst = (*tuple)[NetflowGenerator::kDestination];
    heavy.Observe(src);
    cm.Add(src);
    nips.Observe(src, dst);
  }
  report("after DDoS", tuples);

  // Spot-check Count-Min on actual spoofed sources: re-generate some
  // attack packets to know which sources they used.
  NetflowGenParams replay = params;
  NetflowGenerator regen(replay);
  for (uint64_t i = 0; i < quiet_tuples; ++i) regen.Next();
  uint64_t max_spoofed_estimate = 0;
  double sum_estimate = 0;
  int spoofed_seen = 0;
  for (uint64_t i = 0; i < attack_tuples && spoofed_seen < 1000; ++i) {
    auto tuple = regen.Next();
    if ((*tuple)[NetflowGenerator::kDestination] != ddos.focus) continue;
    uint64_t est = cm.Estimate((*tuple)[NetflowGenerator::kSource]);
    max_spoofed_estimate = std::max(max_spoofed_estimate, est);
    sum_estimate += static_cast<double>(est);
    ++spoofed_seen;
  }
  std::printf(
      "\nCount-Min on %d sampled spoofed sources: mean estimate %.1f, max "
      "%" PRIu64 "\n(threshold for 0.5%% heavy-hitter status: %" PRIu64
      ")\n",
      spoofed_seen, sum_estimate / spoofed_seen, max_spoofed_estimate,
      tuples / 200);
  std::printf(
      "\nNo spoofed source comes anywhere near any frequency threshold —\n"
      "each sent ~1 packet — so Space-Saving and Count-Min report a quiet\n"
      "network, while the implication count of single-destination sources\n"
      "jumps by the spoofed population. Memory: SS %zu B, CM %zu B,\n"
      "NIPS/CI %zu B.\n",
      heavy.MemoryBytes(), cm.MemoryBytes(), nips.MemoryBytes());
  return 0;
}
