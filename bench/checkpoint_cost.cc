// Checkpoint cost: snapshot size and save/restore latency for every
// durable estimator kind after ingesting a 1M-tuple stream.
//
// The paper's constrained-environment pitch is that the summaries are
// small; this bench shows the durable-state layer keeps that property:
// a NIPS/CI checkpoint is kilobytes and microseconds while the exact
// hash table pays megabytes. Restores are verified (the restored
// estimator must answer identically) before a row is reported.
//
// Scale knobs: IMPLISTAT_TRIALS (default 3), IMPLISTAT_FULL=1 (4M
// tuples). An optional argv[1] names a JSON output file
// (results/BENCH_checkpoint.json is the checked-in copy).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "baseline/distinct_sampling.h"
#include "baseline/exact_counter.h"
#include "baseline/ilc.h"
#include "baseline/sticky_sampling.h"
#include "bench_util.h"
#include "core/estimator.h"
#include "core/nips_ci_ensemble.h"
#include "core/sliding.h"
#include "parallel/sharded_nips_ci.h"
#include "util/random.h"

namespace implistat {
namespace {

ImplicationConditions BenchConditions() {
  ImplicationConditions cond;
  cond.max_multiplicity = 2;
  cond.min_support = 5;
  cond.min_top_confidence = 0.8;
  cond.confidence_c = 1;
  cond.strict_multiplicity = false;
  return cond;
}

NipsCiOptions EnsembleOptions() {
  NipsCiOptions opts;
  opts.seed = 17;
  return opts;
}

struct KindSpec {
  std::string name;
  std::function<std::unique_ptr<ImplicationEstimator>()> make;
};

std::vector<KindSpec> AllKinds() {
  std::vector<KindSpec> kinds;
  kinds.push_back({"nips_ci", [] {
                     return std::make_unique<NipsCi>(BenchConditions(),
                                                     EnsembleOptions());
                   }});
  kinds.push_back({"sharded_nips_ci_t4", [] {
                     ShardedNipsCiOptions opts;
                     opts.threads = 4;
                     opts.ensemble = EnsembleOptions();
                     return std::make_unique<ShardedNipsCi>(BenchConditions(),
                                                            opts);
                   }});
  kinds.push_back({"sliding_nips_ci", [] {
                     SlidingOptions opts;
                     opts.window = 1 << 16;
                     opts.stride = 1 << 13;
                     opts.estimator = EnsembleOptions();
                     return std::make_unique<SlidingNipsCiEstimator>(
                         BenchConditions(), opts);
                   }});
  kinds.push_back({"distinct_sampling", [] {
                     DistinctSamplingOptions opts;
                     opts.seed = 5;
                     return std::make_unique<DistinctSampling>(
                         BenchConditions(), opts);
                   }});
  kinds.push_back({"ilc", [] {
                     IlcOptions opts;
                     opts.epsilon = 0.01;
                     return std::make_unique<Ilc>(BenchConditions(), opts);
                   }});
  kinds.push_back({"sticky_sampling", [] {
                     StickySamplingOptions opts;
                     opts.epsilon = 0.001;
                     opts.delta = 0.01;
                     opts.support = 0.01;
                     opts.seed = 13;
                     return std::make_unique<ImplicationStickySampling>(
                         BenchConditions(), opts);
                   }});
  kinds.push_back({"exact", [] {
                     return std::make_unique<ExactImplicationCounter>(
                         BenchConditions());
                   }});
  return kinds;
}

struct Row {
  std::string name;
  size_t snapshot_bytes = 0;
  size_t memory_bytes = 0;
  bench::MeanStd serialize_us;
  bench::MeanStd restore_us;
};

double ElapsedUs(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  std::chrono::duration<double, std::micro> elapsed =
      std::chrono::steady_clock::now() - start;
  return elapsed.count();
}

}  // namespace
}  // namespace implistat

int main(int argc, char** argv) {
  using namespace implistat;
  const uint64_t n = bench::EnvFull() ? 4000000 : 1000000;
  const int trials = bench::EnvTrials();

  bench::PrintHeaderBanner(
      "Checkpoint cost (snapshot size, save/restore latency)",
      "loyal/violator workload; restored estimators verified before "
      "reporting");
  std::printf("n=%llu tuples, trials=%d\n\n",
              static_cast<unsigned long long>(n), trials);

  // Same workload family as parallel_scaling: half loyal itemsets (one
  // b forever), half violators (random b), 200k distinct itemsets.
  Rng workload_rng(99);
  std::vector<ItemsetPair> tuples;
  tuples.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    ItemsetKey a = workload_rng.Uniform(200000);
    bool loyal = (a % 2) == 0;
    tuples.push_back(ItemsetPair{a, loyal ? 7 : workload_rng.Uniform(1000)});
  }

  std::vector<Row> rows;
  for (const KindSpec& kind : AllKinds()) {
    std::unique_ptr<ImplicationEstimator> est = kind.make();
    for (const ItemsetPair& p : tuples) est->Observe(p.a, p.b);
    const double answer = est->EstimateImplicationCount();

    Row row;
    row.name = kind.name;
    row.memory_bytes = est->MemoryBytes();
    std::string snapshot;
    std::vector<double> save_us, load_us;
    for (int t = 0; t < trials; ++t) {
      save_us.push_back(ElapsedUs([&] {
        auto s = est->SerializeState();
        if (!s.ok()) {
          std::fprintf(stderr, "%s: serialize failed: %s\n",
                       kind.name.c_str(), std::string(s.status().message())
                                              .c_str());
          std::exit(1);
        }
        snapshot = std::move(*s);
      }));
      std::unique_ptr<ImplicationEstimator> restored = kind.make();
      load_us.push_back(ElapsedUs([&] {
        Status s = restored->RestoreState(snapshot);
        if (!s.ok()) {
          std::fprintf(stderr, "%s: restore failed: %s\n", kind.name.c_str(),
                       std::string(s.message()).c_str());
          std::exit(1);
        }
      }));
      if (restored->EstimateImplicationCount() != answer) {
        std::fprintf(stderr, "%s: restored answer diverged\n",
                     kind.name.c_str());
        return 1;
      }
    }
    row.snapshot_bytes = snapshot.size();
    row.serialize_us = bench::Summarize(save_us);
    row.restore_us = bench::Summarize(load_us);
    rows.push_back(row);
  }

  std::printf("%-20s %14s %14s %12s %12s\n", "kind", "snapshot_B",
              "memory_B", "save_us", "restore_us");
  for (const Row& r : rows) {
    std::printf("%-20s %14zu %14zu %12.0f %12.0f\n", r.name.c_str(),
                r.snapshot_bytes, r.memory_bytes, r.serialize_us.mean,
                r.restore_us.mean);
  }

  if (argc > 1) {
    std::ofstream json(argv[1]);
    if (!json) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    json << "{\n"
         << "  \"bench\": \"checkpoint_cost\",\n"
         << "  \"workload\": \"loyal/violator, 200k distinct itemsets\",\n"
         << "  \"n_tuples\": " << n << ",\n"
         << "  \"trials\": " << trials << ",\n"
         << "  \"note\": \"snapshot_bytes includes the versioned envelope "
         << "(magic, version, kind, length, CRC32C); every restore is "
         << "verified to answer identically before timing is reported\",\n"
         << "  \"kinds\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      json << "    {\"name\": \"" << r.name << "\", \"snapshot_bytes\": "
           << r.snapshot_bytes << ", \"memory_bytes\": " << r.memory_bytes
           << ", \"serialize_us\": "
           << static_cast<uint64_t>(r.serialize_us.mean)
           << ", \"serialize_us_stddev\": "
           << static_cast<uint64_t>(r.serialize_us.stddev)
           << ", \"restore_us\": "
           << static_cast<uint64_t>(r.restore_us.mean)
           << ", \"restore_us_stddev\": "
           << static_cast<uint64_t>(r.restore_us.stddev) << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::fprintf(stderr, "[implistat] checkpoint cost -> %s\n", argv[1]);
  }
  bench::MaybeWriteMetricsJson();
  return 0;
}
