// Driver shared by the Figure 4/5/6 benches: the §6.1 experiment.
//
// For each attribute cardinality |A| and each imposed implication count S
// in 10%..90% of |A|, generate Dataset One, run NIPS/CI with a bounded
// fringe (F = 4) and with an unbounded fringe over the same stream, and
// report the mean relative error over the trials. Mirrors the paper's
// series "Bounded Fringe" / "Unbounded Fringe"; the paper averaged 100
// trials, IMPLISTAT_TRIALS controls ours.

#ifndef IMPLISTAT_BENCH_DATASET_ONE_FIGURE_H_
#define IMPLISTAT_BENCH_DATASET_ONE_FIGURE_H_

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/nips_ci_ensemble.h"
#include "datagen/dataset_one.h"
#include "obs/estimator_probe.h"
#include "obs/progress.h"
#include "stream/itemset.h"

namespace implistat::bench {

inline void RunDatasetOneFigure(const char* figure_name, uint32_t c) {
  const int trials = EnvTrials();

  // Progress/metrics plumbing (IMPLISTAT_METRICS_EVERY / _JSON). The probe
  // follows the bounded estimator of whichever trial is draining; between
  // trials it replays the last completed trial's stats so the final report
  // and the JSON gauges are not zeroed out.
  obs::ProgressStats last_stats;
  const ImplicationEstimator* live_estimator = nullptr;
  obs::StreamProgressOptions progress_options;
  progress_options.every = EnvMetricsEvery();
  progress_options.tag = figure_name;
  obs::StreamProgressReporter reporter(
      progress_options, [&live_estimator, &last_stats]() {
        return live_estimator != nullptr ? obs::ProbeEstimator(*live_estimator)
                                         : last_stats;
      });
  std::vector<uint64_t> cardinalities = {100, 1000};
  if (EnvFull()) {
    cardinalities.push_back(10000);
    cardinalities.push_back(100000);
  } else {
    cardinalities.push_back(10000);
  }

  std::printf("== %s: Dataset One, one-to-%u implications ==\n", figure_name,
              c);
  std::printf(
      "-- sigma=50, gamma=0.90 (imposed ~92%%), K=c=%u, m=64 bitmaps,\n"
      "-- bounded fringe F=4 vs unbounded; %d trial(s)%s\n",
      c, trials,
      EnvFull() ? " [FULL]" : " (IMPLISTAT_FULL=1 adds |A|=100000)");

  for (uint64_t cardinality : cardinalities) {
    std::printf("\n|A| = %" PRIu64 "\n", cardinality);
    std::printf("%12s %16s %16s %12s %12s\n", "impl-count", "bounded-err",
                "unbounded-err", "bounded-sd", "unbound-sd");
    for (int pct = 10; pct <= 90; pct += 10) {
      uint64_t s = cardinality * pct / 100;
      std::vector<double> bounded_errs, unbounded_errs;
      for (int trial = 0; trial < trials; ++trial) {
        DatasetOneParams params;
        params.cardinality_a = cardinality;
        params.implied_count = s;
        params.c = c;
        params.seed =
            cardinality * 1315423911ull + pct * 2654435761ull + trial;
        DatasetOne data = GenerateDatasetOne(params);

        NipsCiOptions bounded_opts;
        bounded_opts.num_bitmaps = 64;
        bounded_opts.nips.fringe_size = 4;
        bounded_opts.seed = params.seed ^ 0xb0;
        NipsCi bounded(data.conditions, bounded_opts);
        NipsCiOptions unbounded_opts = bounded_opts;
        unbounded_opts.nips.fringe_size = 0;
        unbounded_opts.seed = params.seed ^ 0xb0;  // identical hashing
        NipsCi unbounded(data.conditions, unbounded_opts);

        ItemsetPacker a_packer(data.schema, AttributeSet({0}));
        ItemsetPacker b_packer(data.schema, AttributeSet({1}));
        live_estimator = &bounded;
        while (auto tuple = data.stream.Next()) {
          ItemsetKey a = a_packer.Pack(*tuple);
          ItemsetKey b = b_packer.Pack(*tuple);
          bounded.Observe(a, b);
          unbounded.Observe(a, b);
          reporter.Tick();
        }
        last_stats = obs::ProbeEstimator(bounded);
        live_estimator = nullptr;  // `bounded` dies with this trial
        double truth = static_cast<double>(data.true_implication_count);
        bounded_errs.push_back(
            RelativeError(truth, bounded.EstimateImplicationCount()));
        unbounded_errs.push_back(
            RelativeError(truth, unbounded.EstimateImplicationCount()));
      }
      MeanStd b = Summarize(bounded_errs);
      MeanStd u = Summarize(unbounded_errs);
      std::printf("%12" PRIu64 " %16.4f %16.4f %12.4f %12.4f\n", s, b.mean,
                  u.mean, b.stddev, u.stddev);
    }
  }
  std::printf("\n(paper: mean error ~0.05-0.10 across the sweep, bounded\n"
              " and unbounded fringes indistinguishable)\n");

  if (MetricsRequested()) {
    reporter.Finish();
    MaybeWriteMetricsJson();
  }
}

}  // namespace implistat::bench

#endif  // IMPLISTAT_BENCH_DATASET_ONE_FIGURE_H_
