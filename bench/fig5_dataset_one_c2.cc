// Regenerates Figure 5: Dataset One accuracy with c = 2.

#include "dataset_one_figure.h"

int main() {
  implistat::bench::RunDatasetOneFigure("Figure 5", /*c=*/2);
  return 0;
}
